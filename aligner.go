package meraligner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/merx"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// This file is the persistent half of the public API: build the seed index
// once with Build, then serve query batches against the resident index with
// (*Aligner).Align from any number of goroutines. The one-shot functions
// (Align, AlignThreaded, AlignFiles) are convenience wrappers that compose
// these two steps for a single batch.

// Re-exported option halves: IndexOptions configures what Build constructs
// (seed length, index construction mode, fragmentation, cache budgets);
// QueryOptions configures a single Align call (sensitivity threshold,
// stride, scoring, extension). See core.Options for the one-shot union.
type (
	IndexOptions = core.IndexOptions
	QueryOptions = core.QueryOptions

	// QueryStatus and QueryStat surface per-query admission and accounting:
	// Results.TooShort lists reads shorter than K (typed QueryTooShort
	// status instead of a silent drop), and Results.PerQuery carries one
	// QueryStat per read when QueryOptions.CollectPerQuery is set — the
	// latency source behind a service's p50/p99 reporting.
	QueryStatus = core.QueryStatus
	QueryStat   = core.QueryStat
)

// Per-query statuses (see Results.TooShort and Results.PerQuery).
const (
	QueryOK       = core.QueryOK
	QueryTooShort = core.QueryTooShort
)

// DefaultIndexOptions returns the paper's build-time configuration for seed
// length k (51 for the human/wheat runs, 19 for E. coli).
func DefaultIndexOptions(k int) IndexOptions { return core.DefaultIndexOptions(k) }

// DefaultQueryOptions returns the paper's query-time configuration.
func DefaultQueryOptions() QueryOptions { return core.DefaultQueryOptions() }

// Aligner is a resident, concurrency-safe aligner over one target set: the
// product of Build. The seed index, fragment table, and single-copy flags
// are constructed exactly once; afterwards the Aligner is immutable, and
// Align may be called from any number of goroutines concurrently.
type Aligner struct {
	ix      *core.ThreadedIndex
	threads int

	// Close/Align coordination: Align holds the read side for the duration
	// of its engine call, Close takes the write side, so Close blocks until
	// every in-flight Align drains and no Align can start against a released
	// mapping (it gets ErrAlignerClosed instead of a fault).
	mu     sync.RWMutex
	closed bool
}

// ErrAlignerClosed is returned by Align calls that arrive after Close: the
// snapshot mapping (if any) is released and the Aligner must not be used.
var ErrAlignerClosed = errors.New("meraligner: aligner is closed")

// acquire pins the Aligner for one engine call; the caller must release()
// when the call returns. It fails once Close has begun.
func (a *Aligner) acquire() error {
	a.mu.RLock()
	if a.closed {
		a.mu.RUnlock()
		return ErrAlignerClosed
	}
	return nil
}

func (a *Aligner) release() { a.mu.RUnlock() }

// Build constructs the seed index over targets with the threaded engine
// (§III of the paper: fragmentation, parallel seed extraction with
// aggregating stores, lock-free drain, single-copy marking) and returns the
// resident Aligner. threads is the worker-pool size used both for
// construction and as the default pool size of each Align call.
func Build(threads int, opt IndexOptions, targets []Seq) (*Aligner, error) {
	ix, err := core.BuildIndex(threads, opt, targets)
	if err != nil {
		return nil, err
	}
	return &Aligner{ix: ix, threads: threads}, nil
}

// BuildFiles reads targets from a FASTA file (gzip transparently handled)
// and builds the resident Aligner; the parsed targets are available via
// (*Aligner).Targets.
func BuildFiles(threads int, opt IndexOptions, targetPath string) (*Aligner, error) {
	targets, err := ReadFasta(targetPath)
	if err != nil {
		return nil, fmt.Errorf("meraligner: reading targets: %w", err)
	}
	return Build(threads, opt, targets)
}

// alignSerialMax is the batch size at or below which Align skips the worker
// pool and aligns in-line on the calling goroutine: single-read and tiny
// service requests are latency-bound, and pool setup dwarfs their work.
const alignSerialMax = 16

// Align aligns one batch of queries against the resident index (the
// aligning phase of Algorithm 1 with the exact-match fast path, seed-hit
// threshold, and striped Smith-Waterman). It is safe to call concurrently:
// every call owns its worker pool and result buffers. Cancellation is
// honored between work chunks — when ctx is done, Align stops claiming
// query batches and returns ctx.Err(). Results carry this call's
// wall-clock align-phase stat; alignments are byte-identical to a one-shot
// AlignThreaded run over the same inputs and options.
//
// Tiny batches (at most alignSerialMax reads) take a cheap serial path with
// no worker pool — same algorithm, same results, a fraction of the per-call
// overhead. Use AlignWorkers to force a pool of a specific size.
func (a *Aligner) Align(ctx context.Context, queries []Seq, opt QueryOptions) (*Results, error) {
	if err := a.acquire(); err != nil {
		return nil, err
	}
	defer a.release()
	if len(queries) <= alignSerialMax {
		return a.ix.QuerySerial(ctx, opt, queries)
	}
	return a.ix.Query(ctx, a.threads, opt, queries)
}

// AlignWorkers is Align with an explicit worker-pool size for this call,
// overriding the Build-time default — e.g. a server dedicating fewer
// workers per request under concurrent load.
func (a *Aligner) AlignWorkers(ctx context.Context, workers int, queries []Seq, opt QueryOptions) (*Results, error) {
	if err := a.acquire(); err != nil {
		return nil, err
	}
	defer a.release()
	return a.ix.Query(ctx, workers, opt, queries)
}

// Targets returns the target set the index was built over (needed by the
// SAM writers).
func (a *Aligner) Targets() []Seq { return a.ix.Targets() }

// Threads returns the Build-time worker-pool size — the default pool of
// each Align call (services sizing their own pools start from it).
func (a *Aligner) Threads() int { return a.threads }

// IndexOptions returns the build-time options of the resident index.
func (a *Aligner) IndexOptions() IndexOptions { return a.ix.Options() }

// IndexStats returns the seed-index statistics snapshot taken when the
// build sealed the table.
func (a *Aligner) IndexStats() dht.Stats { return a.ix.Stats() }

// BuildPhases returns the wall-clock phase stats of index construction.
func (a *Aligner) BuildPhases() []upc.PhaseStat { return a.ix.BuildPhases() }

// BuildWall is the end-to-end wall-clock seconds of index construction.
func (a *Aligner) BuildWall() float64 { return a.ix.BuildWall() }

// ResidentBytes estimates the memory held by the resident index: the
// sealed seed table plus the unpacked target codes used for extension. For
// an Aligner produced by Open, the seed-table portion is file-backed — it
// lives in the shared page cache rather than this process's heap, and
// replicas serving the same snapshot on one host pay for it once.
func (a *Aligner) ResidentBytes() int64 {
	return a.ix.ResidentBytes() + a.ix.TargetCodesBytes()
}

// Snapshot persistence: ErrCorruptIndex matches (with errors.Is) every
// error Open returns for a damaged snapshot — truncated file, checksum
// mismatch, impossible offsets — and ErrIncompatibleIndex every error for a
// file this build cannot use: not a .merx snapshot, a future format
// version, or a different struct layout. The concrete error types carry the
// failing section and reason.
var (
	ErrCorruptIndex      = merx.ErrCorrupt
	ErrIncompatibleIndex = merx.ErrIncompatible
)

// Typed snapshot errors: CorruptIndexError names the damaged file section
// ("header", "section table", "META", "TARG", "DHTS") and the validation
// that failed; IncompatibleIndexError explains why the file, though
// possibly intact, cannot be used by this build.
type (
	CorruptIndexError      = merx.CorruptError
	IncompatibleIndexError = merx.IncompatibleError
)

// Save writes the resident index as a .merx snapshot at path: a versioned,
// checksummed binary image of the sealed seed table, the packed reference,
// and the build options (docs/INDEX_FORMAT.md specifies the format). The
// write is atomic — a temporary file renamed into place — so a crash never
// leaves a truncated snapshot where Open might find it. The snapshot
// depends only on the index contents, not on the worker count that built
// it; a saved-then-opened Aligner produces byte-identical alignments.
func (a *Aligner) Save(path string) error {
	if err := a.acquire(); err != nil {
		return err
	}
	defer a.release()
	return a.ix.Save(path)
}

// Open memory-maps a .merx snapshot written by Save and returns a resident
// Aligner without rebuilding anything: the sealed seed table and the packed
// reference are used zero-copy from the read-only mapping, so cold start
// costs milliseconds instead of an index construction, and N replicas
// opening the same file on one host share a single physical copy of the
// table through the page cache. The Align-call default worker-pool size is
// the host CPU count; use OpenThreads to pick another.
//
// Damaged files fail with an error matching ErrCorruptIndex (naming the
// bad section); files this build cannot use fail with one matching
// ErrIncompatibleIndex. Release the mapping with Close when done.
func Open(path string) (*Aligner, error) { return OpenThreads(runtime.NumCPU(), path) }

// OpenThreads is Open with an explicit default worker-pool size for Align
// calls (the role Build's threads parameter plays for built indexes).
func OpenThreads(threads int, path string) (*Aligner, error) {
	ix, err := core.LoadIndex(threads, path)
	if err != nil {
		return nil, err
	}
	return &Aligner{ix: ix, threads: threads}, nil
}

// Mapped reports whether this Aligner serves a memory-mapped snapshot
// (true after Open) rather than a heap-built index (false after Build).
func (a *Aligner) Mapped() bool { return a.ix.Mapped() }

// Close releases the snapshot mapping of an Aligner produced by Open; the
// Aligner must not be used afterwards. Close is drain-aware: it blocks
// until every in-flight Align/AlignWorkers/Save call has returned, then
// releases the mapping, and any call racing past that point fails with
// ErrAlignerClosed instead of touching unmapped memory. On a
// Build-produced Aligner the mapping release is a no-op, but the
// closed-state transition still applies, so deferring Close is always
// safe. Close is idempotent.
func (a *Aligner) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	a.closed = true
	return a.ix.Close()
}
