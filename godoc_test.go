package meraligner_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestPublicSurfaceDocumented enforces the godoc contract on the public
// packages (the root package and client): every exported type, function,
// method, const, and var carries a doc comment. CI runs this on every
// push, so the public surface cannot silently grow undocumented symbols.
func TestPublicSurfaceDocumented(t *testing.T) {
	for _, dir := range []string{".", "client"} {
		missing := undocumentedExports(t, dir)
		for _, m := range missing {
			t.Errorf("%s: exported %s has no doc comment", dir, m)
		}
	}
}

// undocumentedExports parses the non-test Go files of dir and returns the
// exported declarations lacking doc comments.
func undocumentedExports(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var missing []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				missing = append(missing, undocumentedInDecl(decl)...)
			}
		}
	}
	return missing
}

// undocumentedInDecl returns the exported, undocumented symbols of one
// top-level declaration.
func undocumentedInDecl(decl ast.Decl) []string {
	var missing []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		name := d.Name.Name
		if d.Recv != nil && len(d.Recv.List) > 0 {
			name = fmt.Sprintf("method (%s).%s", recvString(d.Recv.List[0].Type), name)
		} else {
			name = "func " + name
		}
		missing = append(missing, name)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					missing = append(missing, "type "+s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						missing = append(missing, fmt.Sprintf("%s %s", d.Tok, n.Name))
					}
				}
			}
		}
	}
	return missing
}

// recvString renders a method receiver type for the error message.
func recvString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return "*" + recvString(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvString(t.X)
	}
	return "?"
}
