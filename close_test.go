package meraligner_test

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/genome"
)

// closeWorkload is a small data set for the Close/Align interaction tests:
// big enough that Align calls take real time, small enough to hammer.
func closeWorkload(t *testing.T) *genome.DataSet {
	t.Helper()
	p := genome.EColiLike()
	p.GenomeLen = 40_000
	p.Depth = 2
	p.ContigMean = 8_000
	p.InsertMean = 0
	p.Seed = 11
	ds, err := genome.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestCloseDrainsInFlightAligns is the contract the catalog's eviction
// cycle leans on: Close on a mapped Aligner blocks until every in-flight
// Align has returned, so no engine call ever reads an unmapped table. Many
// goroutines align in a loop while one closes; every Align must either
// finish normally (started before the drain) or fail with
// ErrAlignerClosed (arrived after) — never fault, never corrupt results.
func TestCloseDrainsInFlightAligns(t *testing.T) {
	ds := closeWorkload(t)
	built, err := meraligner.Build(2, meraligner.DefaultIndexOptions(19), ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.merx")
	if err := built.Save(path); err != nil {
		t.Fatal(err)
	}
	qopt := meraligner.DefaultQueryOptions()
	qopt.CollectAlignments = true

	// The oracle: what a completed Align over this batch must produce.
	wantRes, err := built.Align(context.Background(), ds.Reads, qopt)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := meraligner.WriteSAM(&want, wantRes, built.Targets(), ds.Reads); err != nil {
		t.Fatal(err)
	}
	targets := built.Targets() // heap copy source for post-close rendering

	const rounds = 8
	for round := 0; round < rounds; round++ {
		al, err := meraligner.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		const aligners = 4
		var (
			wg       sync.WaitGroup
			started  sync.WaitGroup
			ok, shut atomic.Int64
			failures = make(chan error, aligners)
		)
		started.Add(aligners)
		for g := 0; g < aligners; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				started.Done()
				for {
					res, err := al.Align(context.Background(), ds.Reads, qopt)
					if errors.Is(err, meraligner.ErrAlignerClosed) {
						shut.Add(1)
						return
					}
					if err != nil {
						failures <- err
						return
					}
					// A successful Align must be complete and correct even
					// though Close was racing it. Render against the
					// pre-copied targets (the aligner may be closed by now).
					var got bytes.Buffer
					if werr := meraligner.WriteSAM(&got, res, targets, ds.Reads); werr != nil {
						failures <- werr
						return
					}
					if !bytes.Equal(got.Bytes(), want.Bytes()) {
						failures <- errors.New("racing Align produced wrong SAM bytes")
						return
					}
					ok.Add(1)
				}
			}()
		}
		started.Wait()
		if err := al.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		close(failures)
		for err := range failures {
			t.Fatal(err)
		}
		if shut.Load() != aligners {
			t.Fatalf("round %d: %d goroutines saw ErrAlignerClosed, want %d", round, shut.Load(), aligners)
		}
		// Idempotent, and Align after Close keeps failing typed.
		if err := al.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		if _, err := al.Align(context.Background(), ds.Reads[:1], qopt); !errors.Is(err, meraligner.ErrAlignerClosed) {
			t.Fatalf("Align after Close = %v, want ErrAlignerClosed", err)
		}
	}
}

// TestCloseOnBuiltAlignerIsSafe: Close on a heap-built Aligner has no
// mapping to release but still transitions to the closed state.
func TestCloseOnBuiltAlignerIsSafe(t *testing.T) {
	ds := closeWorkload(t)
	al, err := meraligner.Build(2, meraligner.DefaultIndexOptions(19), ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	if err := al.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := al.Align(context.Background(), ds.Reads[:1], meraligner.DefaultQueryOptions()); !errors.Is(err, meraligner.ErrAlignerClosed) {
		t.Fatalf("Align after Close = %v, want ErrAlignerClosed", err)
	}
	if err := al.Save(filepath.Join(t.TempDir(), "x.merx")); !errors.Is(err, meraligner.ErrAlignerClosed) {
		t.Fatalf("Save after Close = %v, want ErrAlignerClosed", err)
	}
}
