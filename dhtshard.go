package meraligner

import "github.com/lbl-repro/meraligner/internal/core"

// Seed-hash sharding: the producer half of the distributed seed DHT.
// Where SaveShards cuts the *reference* into slices (each shard a complete
// aligner over part of the reference), SaveSeedShards cuts the *seed table*
// by hash: every snapshot carries the whole reference but only the seed
// entries whose internal shard hashes to its owner position — the paper's
// distributed hash table materialized as N .merx files. Each file is served
// by `merserved -seed-shard` as a batched binary lookup endpoint; a query
// node (meraligner -dht-nodes) aligns with its local reference while
// resolving seeds remotely through internal/dhtnet, producing byte-identical
// output. The DHTP section spec lives in docs/INDEX_FORMAT.md.

// SeedShardInfo is one seed shard's identity within a partitioned DHT:
// owner position, fleet size, seed length, internal shard count, and the
// partition fingerprint every sibling must share.
type SeedShardInfo = core.SeedShardInfo

// SeedShardPath names seed shard id within dir, the layout SaveSeedShards
// produces (seed-shard-000.merx, ...).
func SeedShardPath(dir string, id int) string { return core.SeedShardPath(dir, id) }

// SaveSeedShards hash-partitions the resident index's seed table across
// count owner nodes and writes one self-contained snapshot per owner under
// dir, returning the paths in owner order. Writes are atomic per file; a
// failure partway leaves the finished shards on disk.
func (a *Aligner) SaveSeedShards(dir string, count int) ([]string, error) {
	if err := a.acquire(); err != nil {
		return nil, err
	}
	defer a.release()
	return a.ix.SaveSeedShards(dir, count)
}

// SeedTableShards returns the internal shard count of the resident seed
// table — the routing input a seed-lookup client needs alongside K.
func (a *Aligner) SeedTableShards() int { return a.ix.SeedTableShards() }

// SeedPartitionFingerprint returns the fingerprint a count-way seed-shard
// fleet built from this index must report; a query node verifies it against
// every node before trusting remote answers.
func (a *Aligner) SeedPartitionFingerprint(count int) (uint64, error) {
	return a.ix.SeedPartitionFingerprint(count)
}
