package meraligner_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	meraligner "github.com/lbl-repro/meraligner"
)

// exampleTarget is a fixed 240 bp reference for the runnable examples.
const exampleTarget = "ACGTGACTTACGGATCAGTCAGGACTATCGGTTACCAGTGACCATTTGGCAGCTAAGGTC" +
	"CATGGATCCTAGGCATTACGGACCATTGCCAGATCCTTAGGCATCAGTTTACCGGATCAG" +
	"GCATTAGCGGATCAGTTACGGACCATCAGGCATTACCGGTTAGCATCAGGCATACGGATT" +
	"CAGGCATTACCGGATCAGTCAGGCATTACGGATCCAGTCAGGCATTAACGGATCAGTCAG"

// mustSeq packs a literal sequence, panicking on typos in the example
// itself.
func mustSeq(name, bases string) meraligner.Seq {
	s, err := meraligner.NewSeq(name, bases)
	if err != nil {
		panic(err)
	}
	return s
}

// ExampleAligner_Save builds a small index and persists it as a .merx
// snapshot — the expensive build happens once, the snapshot serves forever.
func ExampleAligner_Save() {
	a, err := meraligner.Build(2, meraligner.DefaultIndexOptions(21),
		[]meraligner.Seq{mustSeq("contig1", exampleTarget)})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "merx")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	path := filepath.Join(dir, "reference.merx")
	if err := a.Save(path); err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("snapshot saved:", st.Size() > 0)
	// Output: snapshot saved: true
}

// ExampleOpen memory-maps a saved snapshot and serves queries from it —
// the warm-start path every replica takes instead of rebuilding the index.
func ExampleOpen() {
	// A snapshot produced earlier (in real deployments, by
	// `meraligner -save-index` or a previous Aligner.Save).
	builder, err := meraligner.Build(2, meraligner.DefaultIndexOptions(21),
		[]meraligner.Seq{mustSeq("contig1", exampleTarget)})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "merx")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "reference.merx")
	if err := builder.Save(path); err != nil {
		log.Fatal(err)
	}

	// Cold start: no rebuild, the sealed table is used straight from the
	// mapped file.
	a, err := meraligner.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()

	read := mustSeq("read1", strings.ToUpper(exampleTarget[30:130]))
	qopt := meraligner.DefaultQueryOptions()
	qopt.CollectAlignments = true
	res, err := a.Align(context.Background(), []meraligner.Seq{read}, qopt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mapped:", a.Mapped())
	fmt.Printf("aligned %d of %d reads\n", res.AlignedReads, res.TotalReads)
	// Output:
	// mapped: true
	// aligned 1 of 1 reads
}
