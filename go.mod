module github.com/lbl-repro/meraligner

go 1.24.0
