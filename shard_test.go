package meraligner_test

import (
	"fmt"
	"path/filepath"
	"testing"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/genome"
)

// shardWorkload is a small multi-contig reference for shard producer tests.
func shardWorkload(t *testing.T) *genome.DataSet {
	t.Helper()
	p := genome.EColiLike()
	p.GenomeLen = 40_000
	p.Depth = 1
	p.ContigMean = 4_000
	p.InsertMean = 0
	p.Seed = 13
	ds, err := genome.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestShardRangesCoverAndBalance(t *testing.T) {
	ds := shardWorkload(t)
	const n = 3
	ranges, err := meraligner.ShardRanges(ds.Contigs, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != n {
		t.Fatalf("%d ranges for %d shards", len(ranges), n)
	}
	// Contiguous cover of [0, len(targets)), no shard empty.
	at := 0
	for i, r := range ranges {
		if r[0] != at || r[1] <= r[0] {
			t.Fatalf("range %d = %v, want contiguous nonempty from %d", i, r, at)
		}
		at = r[1]
	}
	if at != len(ds.Contigs) {
		t.Fatalf("ranges end at %d, want %d", at, len(ds.Contigs))
	}
}

func TestShardRangesErrors(t *testing.T) {
	ds := shardWorkload(t)
	if _, err := meraligner.ShardRanges(ds.Contigs, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := meraligner.ShardRanges(ds.Contigs, -2); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := meraligner.ShardRanges(ds.Contigs, len(ds.Contigs)+1); err == nil {
		t.Error("more shards than targets accepted")
	}
}

// TestSaveShardsRoundTrip is the shard producer contract: every snapshot
// reopens as a normal aligner whose targets are exactly its slice of the
// global target list, stamped with a consistent fleet identity.
func TestSaveShardsRoundTrip(t *testing.T) {
	ds := shardWorkload(t)
	const n = 3
	iopt := meraligner.DefaultIndexOptions(19)
	dir := t.TempDir()

	paths, err := meraligner.SaveShards(2, iopt, ds.Contigs, n, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != n {
		t.Fatalf("%d paths for %d shards", len(paths), n)
	}
	ranges, err := meraligner.ShardRanges(ds.Contigs, n)
	if err != nil {
		t.Fatal(err)
	}

	covered := 0
	lastFragBase := -1
	for id, path := range paths {
		if want := filepath.Join(dir, fmt.Sprintf("shard-%03d.merx", id)); path != want {
			t.Fatalf("shard %d path = %s, want %s", id, path, want)
		}
		sa, err := meraligner.Open(path)
		if err != nil {
			t.Fatalf("reopening shard %d: %v", id, err)
		}
		defer sa.Close()

		si := sa.ShardInfo()
		if si == nil {
			t.Fatalf("shard %d snapshot has no shard identity", id)
		}
		if si.ID != id || si.Count != n {
			t.Fatalf("shard %d identity = %+v", id, si)
		}
		if si.TargetBase != ranges[id][0] {
			t.Fatalf("shard %d TargetBase = %d, want %d", id, si.TargetBase, ranges[id][0])
		}
		if si.FragmentBase <= lastFragBase {
			t.Fatalf("shard %d FragmentBase %d not increasing past %d", id, si.FragmentBase, lastFragBase)
		}
		if id == 0 && (si.TargetBase != 0 || si.FragmentBase != 0) {
			t.Fatalf("shard 0 bases = %+v, want zero offsets", si)
		}
		lastFragBase = si.FragmentBase

		if sa.IndexOptions().K != iopt.K {
			t.Fatalf("shard %d K = %d, want %d", id, sa.IndexOptions().K, iopt.K)
		}
		slice := ds.Contigs[ranges[id][0]:ranges[id][1]]
		got := sa.Targets()
		if len(got) != len(slice) {
			t.Fatalf("shard %d serves %d targets, slice has %d", id, len(got), len(slice))
		}
		for i := range slice {
			if got[i].Name != slice[i].Name || got[i].Seq.Len() != slice[i].Seq.Len() {
				t.Fatalf("shard %d target %d = %s/%d, want %s/%d",
					id, i, got[i].Name, got[i].Seq.Len(), slice[i].Name, slice[i].Seq.Len())
			}
		}
		covered += len(got)
	}
	if covered != len(ds.Contigs) {
		t.Fatalf("fleet serves %d targets, reference has %d", covered, len(ds.Contigs))
	}

	// A whole-reference index carries no shard identity.
	whole, err := meraligner.Build(2, iopt, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	if whole.ShardInfo() != nil {
		t.Fatalf("unsharded index reports shard identity %+v", whole.ShardInfo())
	}
}

func TestSaveShardsRejectsImpossiblePartition(t *testing.T) {
	ds := shardWorkload(t)
	if _, err := meraligner.SaveShards(2, meraligner.DefaultIndexOptions(19), ds.Contigs, len(ds.Contigs)+5, t.TempDir()); err == nil {
		t.Fatal("SaveShards accepted more shards than targets")
	}
}
