package meraligner_test

// Benchmarks and the recorded baseline of the merserved serving layer: the
// dynamic micro-batcher coalescing concurrent single-read requests into
// shared engine calls versus one engine call per request (the naive server
// shape). The measurement drives the service's in-process serving path
// (service.Server.AlignBatched) — identical admission, batching, and demux
// to POST /v1/align with the HTTP transport (which costs the same in both
// modes) excluded. The loopback-HTTP view of the same comparison is the
// merbench "service" experiment.

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/genome"
	"github.com/lbl-repro/meraligner/internal/service"
)

// serviceWorkload is the serving data set: a short-read (36bp) profile —
// the regime where per-call engine overhead rivals per-read align work, so
// serving single reads uncoalesced visibly wastes the engine.
func serviceWorkload(tb testing.TB) (*meraligner.Aligner, []meraligner.Seq) {
	tb.Helper()
	p := genome.EColiLike()
	p.GenomeLen = 120_000
	p.Depth = 3
	p.ReadLen = 36
	p.InsertMean = 0
	p.Seed = 11
	ds, err := genome.Generate(p)
	if err != nil {
		tb.Fatal(err)
	}
	al, err := meraligner.Build(2, meraligner.DefaultIndexOptions(19), ds.Contigs)
	if err != nil {
		tb.Fatal(err)
	}
	reads := ds.Reads
	if len(reads) > 4000 {
		reads = reads[:4000]
	}
	return al, reads
}

// serveSingleReads pushes every read through the service as its own
// single-read request from `clients` concurrent submitters and returns the
// wall seconds plus the server's observed mean batch size.
func serveSingleReads(tb testing.TB, al *meraligner.Aligner, reads []meraligner.Seq, clients int, coalesce bool) (wallS, meanBatch float64) {
	tb.Helper()
	qopt := meraligner.DefaultQueryOptions()
	qopt.MaxSeedHits = 200
	cfg := service.Config{
		Aligner:    al,
		Query:      qopt,
		Workers:    2,
		QueueReads: len(reads) + 1,
	}
	if coalesce {
		cfg.MaxBatch = 256
		cfg.MaxWait = 2 * time.Millisecond
	} else {
		cfg.MaxBatch = 1 // one engine call per request: the naive shape
		cfg.MaxWait = -1 // and no window-holding at all
	}
	srv, err := service.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ctx := context.Background()

	var next atomic.Int64
	errs := make([]error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reads) {
					return
				}
				if _, err := srv.AlignBatched(ctx, reads[i:i+1]); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			tb.Fatal(err)
		}
	}
	st := srv.Snapshot()
	if err := srv.Drain(ctx); err != nil {
		tb.Fatal(err)
	}
	return wall, st.MeanBatchReads
}

const serviceClients = 16

// BenchmarkServiceMicroBatching runs the two serving shapes side by side;
// the coalesced row must stay well ahead (see BENCH_service.json).
func BenchmarkServiceMicroBatching(b *testing.B) {
	al, reads := serviceWorkload(b)
	for _, mode := range []struct {
		name     string
		coalesce bool
	}{
		{"per-request", false},
		{"coalesced", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var readsDone, wall float64
			for i := 0; i < b.N; i++ {
				w, mean := serveSingleReads(b, al, reads, serviceClients, mode.coalesce)
				wall += w
				readsDone += float64(len(reads))
				if i == 0 {
					b.ReportMetric(mean, "reads/batch")
				}
			}
			b.ReportMetric(readsDone/wall, "reads/s")
		})
	}
}

// TestRecordServiceBaseline writes BENCH_service.json — the committed
// micro-batching baseline — when MERALIGNER_RECORD_BASELINE=1:
//
//	MERALIGNER_RECORD_BASELINE=1 go test -run TestRecordServiceBaseline .
func TestRecordServiceBaseline(t *testing.T) {
	if os.Getenv("MERALIGNER_RECORD_BASELINE") == "" {
		t.Skip("set MERALIGNER_RECORD_BASELINE=1 to (re)record BENCH_service.json")
	}
	al, reads := serviceWorkload(t)

	measure := func(coalesce bool) (bestWall, meanBatch float64) {
		for i := 0; i < 3; i++ {
			wall, mean := serveSingleReads(t, al, reads, serviceClients, coalesce)
			if bestWall == 0 || wall < bestWall {
				bestWall, meanBatch = wall, mean
			}
		}
		return bestWall, meanBatch
	}
	uncoalescedS, _ := measure(false)
	coalescedS, meanBatch := measure(true)

	baseline := struct {
		Workload       string  `json:"workload"`
		Reads          int     `json:"reads"`
		Clients        int     `json:"clients"`
		K              int     `json:"k"`
		Workers        int     `json:"workers"`
		HostCPUs       int     `json:"host_cpus"`
		GoOS           string  `json:"goos"`
		GoArch         string  `json:"goarch"`
		UncoalescedS   float64 `json:"uncoalesced_single_read_s"`
		UncoalescedRPS float64 `json:"uncoalesced_reads_per_s"`
		CoalescedS     float64 `json:"coalesced_s"`
		CoalescedRPS   float64 `json:"coalesced_reads_per_s"`
		MeanBatchReads float64 `json:"coalesced_mean_batch_reads"`
		Speedup        float64 `json:"speedup"`
		Description    string  `json:"description"`
	}{
		Workload: "ecoli-like 120kb, depth 3, 36bp reads, k=19",
		Reads:    len(reads), Clients: serviceClients, K: 19, Workers: 2,
		HostCPUs: runtime.NumCPU(), GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		UncoalescedS: uncoalescedS, UncoalescedRPS: float64(len(reads)) / uncoalescedS,
		CoalescedS: coalescedS, CoalescedRPS: float64(len(reads)) / coalescedS,
		MeanBatchReads: meanBatch,
		Speedup:        uncoalescedS / coalescedS,
		Description: "merserved micro-batching baseline: N concurrent clients each submit " +
			"single-read requests through the service's serving path (AlignBatched — identical " +
			"admission/batching/demux to POST /v1/align, HTTP transport excluded since it costs " +
			"the same in both modes). uncoalesced_single_read_s is MaxBatch=1 (one engine call " +
			"per request, the naive server); coalesced_s is continuous micro-batching (MaxBatch " +
			"256 / MaxWait 2ms); best of 3 each. Coalesced must stay >= 2x ahead — regressions " +
			"mean the batcher is adding latency instead of amortizing per-call engine overhead",
	}
	out, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_service.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recorded BENCH_service.json:\n%s", out)
	if baseline.Speedup < 2 {
		t.Errorf("coalesced speedup %.2fx < 2x over uncoalesced single-read serving", baseline.Speedup)
	}
}
