package meraligner_test

// One benchmark per table and figure of the paper's evaluation (§VI), each
// regenerating the corresponding experiment on a smoke-test workload via
// the same harness `cmd/merbench` uses at full size, plus micro-benchmarks
// of the pipeline's hot components. Run:
//
//	go test -bench=. -benchmem
//
// The shapes (who wins, by what factor) match the paper; see EXPERIMENTS.md
// for the full-size numbers.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/expt"
	"github.com/lbl-repro/meraligner/internal/genome"
)

func benchCfg() expt.Config {
	cfg := expt.QuickConfig()
	cfg.Workers = 0 // all host cores
	return cfg
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rep, err := expt.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

// BenchmarkFig1StrongScaling regenerates Fig 1: end-to-end strong scaling
// of merAligner (human-like and wheat-like) with pMap baseline points.
func BenchmarkFig1StrongScaling(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig7SeedReuse regenerates Fig 7: the analytic + Monte-Carlo
// probability of on-node seed reuse as a function of core count.
func BenchmarkFig7SeedReuse(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8AggregatingStores regenerates Fig 8: distributed seed-index
// construction with and without the aggregating-stores optimization.
func BenchmarkFig8AggregatingStores(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9SoftwareCaching regenerates Fig 9: aligning-phase
// communication with and without the per-node software caches.
func BenchmarkFig9SoftwareCaching(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10ExactMatch regenerates Fig 10: the aligning phase with and
// without the exact-match optimization.
func BenchmarkFig10ExactMatch(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkTable1LoadBalancing regenerates Table I: computation and total
// time distributions with and without the input permutation.
func BenchmarkTable1LoadBalancing(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2Comparison regenerates Table II: end-to-end merAligner vs
// pMap-driven BWA-mem-like and Bowtie2-like at the 7,680-core point.
func BenchmarkTable2Comparison(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig11SingleNode regenerates Fig 11: real-parallelism single-node
// comparison on the E. coli workload.
func BenchmarkFig11SingleNode(b *testing.B) { runExperiment(b, "fig11") }

// --- component micro-benchmarks ---

// BenchmarkPipelineSimulated measures one full simulated pipeline run.
func BenchmarkPipelineSimulated(b *testing.B) {
	p := genome.HumanLike(200_000)
	p.Depth = 4
	p.InsertMean = 0
	ds, err := genome.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	mach := meraligner.Edison(48)
	opt := meraligner.DefaultOptions(31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := meraligner.Align(mach, opt, ds.Contigs, ds.Reads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineThreaded measures the real-parallel pipeline.
func BenchmarkPipelineThreaded(b *testing.B) {
	p := genome.HumanLike(200_000)
	p.Depth = 4
	p.InsertMean = 0
	ds, err := genome.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	opt := meraligner.DefaultOptions(31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := meraligner.AlignThreaded(8, opt, ds.Contigs, ds.Reads); err != nil {
			b.Fatal(err)
		}
	}
}

// engineWorkload is the shared data set of the engine-comparison benchmark
// and the recorded baseline.
func engineWorkload(tb testing.TB) *genome.DataSet {
	p := genome.HumanLike(200_000)
	p.Depth = 6
	p.InsertMean = 0
	ds, err := genome.Generate(p)
	if err != nil {
		tb.Fatal(err)
	}
	return ds
}

// BenchmarkEngines runs the two execution engines side by side on one
// workload: the simulated PGAS pipeline (host time includes cost-model
// bookkeeping; its OUTPUT time is virtual) and the threaded engine at a
// sweep of worker counts (host time IS the measurement). The threaded
// sweep is the per-PR scaling trajectory; see BENCH_threaded.json for the
// recorded baseline.
func BenchmarkEngines(b *testing.B) {
	ds := engineWorkload(b)
	opt := meraligner.DefaultOptions(31)

	b.Run("sim-48threads", func(b *testing.B) {
		mach := meraligner.Edison(48)
		for i := 0; i < b.N; i++ {
			if _, err := meraligner.Align(mach, opt, ds.Contigs, ds.Reads); err != nil {
				b.Fatal(err)
			}
		}
	})
	workerSweep := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		workerSweep = append(workerSweep, n)
	}
	for _, w := range workerSweep {
		b.Run(fmt.Sprintf("threaded-%dw", w), func(b *testing.B) {
			var reads, wall float64
			for i := 0; i < b.N; i++ {
				res, err := meraligner.AlignThreaded(w, opt, ds.Contigs, ds.Reads)
				if err != nil {
					b.Fatal(err)
				}
				reads += float64(res.TotalReads)
				wall += res.TotalRealWall()
			}
			b.ReportMetric(reads/wall, "reads/s")
		})
	}
}

// TestRecordEngineBaseline writes BENCH_threaded.json — the committed perf
// baseline future PRs diff against — when MERALIGNER_RECORD_BASELINE=1:
//
//	MERALIGNER_RECORD_BASELINE=1 go test -run TestRecordEngineBaseline .
func TestRecordEngineBaseline(t *testing.T) {
	if os.Getenv("MERALIGNER_RECORD_BASELINE") == "" {
		t.Skip("set MERALIGNER_RECORD_BASELINE=1 to (re)record BENCH_threaded.json")
	}
	ds := engineWorkload(t)
	opt := meraligner.DefaultOptions(31)

	type engineRow struct {
		Workers      int     `json:"workers"`
		TotalWallS   float64 `json:"total_wall_s"`
		AlignWallS   float64 `json:"align_wall_s"`
		ReadsPerSec  float64 `json:"reads_per_s"`
		AlignedReads int     `json:"aligned_reads"`
	}
	baseline := struct {
		Workload    string      `json:"workload"`
		Reads       int         `json:"reads"`
		K           int         `json:"k"`
		HostCPUs    int         `json:"host_cpus"`
		GoOS        string      `json:"goos"`
		GoArch      string      `json:"goarch"`
		SimWallS    float64     `json:"sim_simulated_wall_s"`
		Threaded    []engineRow `json:"threaded"`
		Description string      `json:"description"`
	}{
		Workload: "human-like 200kb, depth 6, k=31", Reads: len(ds.Reads), K: opt.K,
		HostCPUs: runtime.NumCPU(), GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		Description: "engine baseline: simulated wall is virtual seconds on a 48-thread " +
			"Edison model; threaded rows are best-of-3 measured host seconds per worker " +
			"count. Interpret scaling only when host_cpus covers the sweep — on smaller " +
			"hosts the rows run oversubscribed and only absolute 1-worker time is " +
			"meaningful; re-record on a multicore host before judging scaling regressions",
	}

	sim, err := meraligner.Align(meraligner.Edison(48), opt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	baseline.SimWallS = sim.TotalWall()

	sweep := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		sweep = append(sweep, n)
	}
	for _, w := range sweep {
		var best *meraligner.Results
		for i := 0; i < 3; i++ {
			res, err := meraligner.AlignThreaded(w, opt, ds.Contigs, ds.Reads)
			if err != nil {
				t.Fatal(err)
			}
			if best == nil || res.TotalRealWall() < best.TotalRealWall() {
				best = res
			}
		}
		baseline.Threaded = append(baseline.Threaded, engineRow{
			Workers:      w,
			TotalWallS:   best.TotalRealWall(),
			AlignWallS:   best.AlignWall(),
			ReadsPerSec:  float64(best.TotalReads) / best.TotalRealWall(),
			AlignedReads: best.AlignedReads,
		})
	}
	out, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_threaded.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recorded BENCH_threaded.json:\n%s", out)
}

// TestRecordQueryBaseline writes BENCH_query.json — the recorded effect of
// the hot-path rework (rolling seed scanner, sealed flat seed table,
// striped-profile reuse) on the PR-1 engine workload at one worker, best of
// three — when MERALIGNER_RECORD_BASELINE=1:
//
//	MERALIGNER_RECORD_BASELINE=1 go test -run TestRecordQueryBaseline .
//
// The "before" row is the pre-rework path, measured on the same host at the
// time of the change; re-recording preserves it from the existing file (or
// takes MERALIGNER_QUERY_BEFORE_READS_PER_S / _WALL_S overrides after a
// host change) and refreshes only the "after" row.
func TestRecordQueryBaseline(t *testing.T) {
	if os.Getenv("MERALIGNER_RECORD_BASELINE") == "" {
		t.Skip("set MERALIGNER_RECORD_BASELINE=1 to (re)record BENCH_query.json")
	}
	ds := engineWorkload(t)
	opt := meraligner.DefaultOptions(31)

	type row struct {
		TotalWallS  float64 `json:"total_wall_s"`
		AlignWallS  float64 `json:"align_wall_s"`
		ReadsPerSec float64 `json:"reads_per_s"`
	}
	baseline := struct {
		Workload     string  `json:"workload"`
		Reads        int     `json:"reads"`
		K            int     `json:"k"`
		Workers      int     `json:"workers"`
		HostCPUs     int     `json:"host_cpus"`
		GoOS         string  `json:"goos"`
		GoArch       string  `json:"goarch"`
		Before       row     `json:"before"`
		After        row     `json:"after"`
		Speedup      float64 `json:"speedup"`
		AlignedReads int     `json:"aligned_reads"`
		Description  string  `json:"description"`
	}{
		Workload: "human-like 200kb, depth 6, k=31 (PR-1 engine workload)",
		Reads:    len(ds.Reads), K: opt.K, Workers: 1,
		HostCPUs: runtime.NumCPU(), GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		Description: "query hot-path baseline: before is the pre-rework path " +
			"(per-seed FromPacked+Canonical, per-shard map lookups, per-candidate " +
			"profile builds), after is the rolling scanner + sealed flat table + " +
			"reusable striped profiles; 1 worker, best of 3, same workload and host. " +
			"Regressions against `after` mean the hot path re-grew per-read work",
	}

	// Carry the recorded pre-rework measurement forward.
	if prev, err := os.ReadFile("BENCH_query.json"); err == nil {
		var old struct {
			Before row `json:"before"`
		}
		if json.Unmarshal(prev, &old) == nil && old.Before.ReadsPerSec > 0 {
			baseline.Before = old.Before
		}
	}
	if v := os.Getenv("MERALIGNER_QUERY_BEFORE_READS_PER_S"); v != "" {
		fmt.Sscanf(v, "%f", &baseline.Before.ReadsPerSec)
	}
	if v := os.Getenv("MERALIGNER_QUERY_BEFORE_WALL_S"); v != "" {
		fmt.Sscanf(v, "%f", &baseline.Before.TotalWallS)
	}
	if baseline.Before.ReadsPerSec == 0 {
		t.Fatal("no pre-rework row available: keep the committed BENCH_query.json or set MERALIGNER_QUERY_BEFORE_READS_PER_S")
	}

	var best *meraligner.Results
	for i := 0; i < 3; i++ {
		res, err := meraligner.AlignThreaded(1, opt, ds.Contigs, ds.Reads)
		if err != nil {
			t.Fatal(err)
		}
		if best == nil || res.TotalRealWall() < best.TotalRealWall() {
			best = res
		}
	}
	baseline.After = row{
		TotalWallS:  best.TotalRealWall(),
		AlignWallS:  best.AlignWall(),
		ReadsPerSec: float64(best.TotalReads) / best.TotalRealWall(),
	}
	baseline.AlignedReads = best.AlignedReads
	baseline.Speedup = baseline.After.ReadsPerSec / baseline.Before.ReadsPerSec

	out, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_query.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recorded BENCH_query.json:\n%s", out)
	if baseline.Speedup < 1.3 {
		t.Errorf("query hot-path speedup %.2fx < 1.3x on the PR-1 workload", baseline.Speedup)
	}
}

// serveWorkload is the build-once/serve-many data set: a build-heavy
// workload (index construction dominates a single batch's align time) split
// into serveBatches read batches, approximating a service where read
// batches arrive against one reference.
func serveWorkload(tb testing.TB) *genome.DataSet {
	// Shallow depth over a larger reference: per-batch align work is small
	// next to index construction, the regime where a resident index pays.
	p := genome.HumanLike(600_000)
	p.Depth = 0.75
	p.InsertMean = 0
	ds, err := genome.Generate(p)
	if err != nil {
		tb.Fatal(err)
	}
	return ds
}

const serveBatches = 4

func serveBatchBounds(n int) [][2]int { return expt.SplitBatches(n, serveBatches) }

// BenchmarkBuildOnceServeMany compares the two serving shapes over the same
// serveBatches read batches: rebuilding the index for every batch (one-shot
// AlignThreaded per batch) versus one resident index serving all batches
// (Build + N Align). CI runs this in smoke mode (-benchtime=1x); the
// recorded baseline is BENCH_serve.json.
func BenchmarkBuildOnceServeMany(b *testing.B) {
	ds := serveWorkload(b)
	opt := meraligner.DefaultOptions(31)
	qopt := meraligner.DefaultQueryOptions()
	bounds := serveBatchBounds(len(ds.Reads))
	workers := runtime.NumCPU()

	b.Run("rebuild-per-batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, bd := range bounds {
				if _, err := meraligner.AlignThreaded(workers, opt, ds.Contigs, ds.Reads[bd[0]:bd[1]]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("resident-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, err := meraligner.Build(workers, opt.IndexOptions, ds.Contigs)
			if err != nil {
				b.Fatal(err)
			}
			for _, bd := range bounds {
				if _, err := a.Align(context.Background(), ds.Reads[bd[0]:bd[1]], qopt); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// TestRecordServeBaseline writes BENCH_serve.json — the committed
// build-once/serve-many baseline — when MERALIGNER_RECORD_BASELINE=1:
//
//	MERALIGNER_RECORD_BASELINE=1 go test -run TestRecordServeBaseline .
func TestRecordServeBaseline(t *testing.T) {
	if os.Getenv("MERALIGNER_RECORD_BASELINE") == "" {
		t.Skip("set MERALIGNER_RECORD_BASELINE=1 to (re)record BENCH_serve.json")
	}
	ds := serveWorkload(t)
	opt := meraligner.DefaultOptions(31)
	qopt := meraligner.DefaultQueryOptions()
	bounds := serveBatchBounds(len(ds.Reads))
	workers := runtime.NumCPU()

	measure := func(run func() error) float64 {
		best := 0.0
		for i := 0; i < 3; i++ {
			start := time.Now()
			if err := run(); err != nil {
				t.Fatal(err)
			}
			if s := time.Since(start).Seconds(); best == 0 || s < best {
				best = s
			}
		}
		return best
	}

	rebuild := measure(func() error {
		for _, bd := range bounds {
			if _, err := meraligner.AlignThreaded(workers, opt, ds.Contigs, ds.Reads[bd[0]:bd[1]]); err != nil {
				return err
			}
		}
		return nil
	})
	// The resident arm records the build wall of the SAME run that sets the
	// best total, so build share derived from the file stays consistent.
	var resident, buildWall float64
	for i := 0; i < 3; i++ {
		start := time.Now()
		a, err := meraligner.Build(workers, opt.IndexOptions, ds.Contigs)
		if err != nil {
			t.Fatal(err)
		}
		for _, bd := range bounds {
			if _, err := a.Align(context.Background(), ds.Reads[bd[0]:bd[1]], qopt); err != nil {
				t.Fatal(err)
			}
		}
		if s := time.Since(start).Seconds(); resident == 0 || s < resident {
			resident, buildWall = s, a.BuildWall()
		}
	}

	baseline := struct {
		Workload    string  `json:"workload"`
		Batches     int     `json:"batches"`
		Reads       int     `json:"reads"`
		K           int     `json:"k"`
		Workers     int     `json:"workers"`
		HostCPUs    int     `json:"host_cpus"`
		GoOS        string  `json:"goos"`
		GoArch      string  `json:"goarch"`
		RebuildS    float64 `json:"rebuild_per_batch_s"`
		ResidentS   float64 `json:"resident_index_s"`
		BuildWallS  float64 `json:"index_build_s"`
		Speedup     float64 `json:"speedup"`
		Description string  `json:"description"`
	}{
		Workload: "human-like 600kb, depth 0.75, k=31", Batches: serveBatches,
		Reads: len(ds.Reads), K: opt.K, Workers: workers,
		HostCPUs: runtime.NumCPU(), GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		RebuildS: rebuild, ResidentS: resident, BuildWallS: buildWall,
		Speedup: rebuild / resident,
		Description: "build-once/serve-many baseline: rebuild_per_batch_s is N one-shot " +
			"AlignThreaded calls (index rebuilt every batch); resident_index_s is one Build " +
			"plus N Align calls on the resident index; best of 3 each. The resident shape " +
			"must stay well ahead (>= 2x on this workload) — regressions here mean the " +
			"persistent API is paying hidden per-call build costs",
	}
	out, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recorded BENCH_serve.json:\n%s", out)
	if baseline.Speedup < 2 {
		t.Errorf("resident-index speedup %.2fx < 2x on the serve workload", baseline.Speedup)
	}
}

// BenchmarkReadsPerSecond reports aligner throughput in reads/sec on the
// threaded pipeline (the paper reports 15.5M reads/sec at 15,360 cores).
func BenchmarkReadsPerSecond(b *testing.B) {
	p := genome.HumanLike(400_000)
	p.Depth = 8
	p.InsertMean = 0
	ds, err := genome.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	opt := meraligner.DefaultOptions(51)
	b.ResetTimer()
	var reads, wall float64
	for i := 0; i < b.N; i++ {
		res, err := meraligner.AlignThreaded(runtime.NumCPU(), opt, ds.Contigs, ds.Reads)
		if err != nil {
			b.Fatal(err)
		}
		reads += float64(res.TotalReads)
		wall += res.TotalRealWall()
	}
	b.ReportMetric(reads/wall, "reads/s")
}
