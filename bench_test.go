package meraligner

// One benchmark per table and figure of the paper's evaluation (§VI), each
// regenerating the corresponding experiment on a smoke-test workload via
// the same harness `cmd/merbench` uses at full size, plus micro-benchmarks
// of the pipeline's hot components. Run:
//
//	go test -bench=. -benchmem
//
// The shapes (who wins, by what factor) match the paper; see EXPERIMENTS.md
// for the full-size numbers.

import (
	"runtime"
	"testing"

	"github.com/lbl-repro/meraligner/internal/expt"
	"github.com/lbl-repro/meraligner/internal/genome"
)

func benchCfg() expt.Config {
	cfg := expt.QuickConfig()
	cfg.Workers = 0 // all host cores
	return cfg
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rep, err := expt.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

// BenchmarkFig1StrongScaling regenerates Fig 1: end-to-end strong scaling
// of merAligner (human-like and wheat-like) with pMap baseline points.
func BenchmarkFig1StrongScaling(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig7SeedReuse regenerates Fig 7: the analytic + Monte-Carlo
// probability of on-node seed reuse as a function of core count.
func BenchmarkFig7SeedReuse(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8AggregatingStores regenerates Fig 8: distributed seed-index
// construction with and without the aggregating-stores optimization.
func BenchmarkFig8AggregatingStores(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9SoftwareCaching regenerates Fig 9: aligning-phase
// communication with and without the per-node software caches.
func BenchmarkFig9SoftwareCaching(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10ExactMatch regenerates Fig 10: the aligning phase with and
// without the exact-match optimization.
func BenchmarkFig10ExactMatch(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkTable1LoadBalancing regenerates Table I: computation and total
// time distributions with and without the input permutation.
func BenchmarkTable1LoadBalancing(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2Comparison regenerates Table II: end-to-end merAligner vs
// pMap-driven BWA-mem-like and Bowtie2-like at the 7,680-core point.
func BenchmarkTable2Comparison(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig11SingleNode regenerates Fig 11: real-parallelism single-node
// comparison on the E. coli workload.
func BenchmarkFig11SingleNode(b *testing.B) { runExperiment(b, "fig11") }

// --- component micro-benchmarks ---

// BenchmarkPipelineSimulated measures one full simulated pipeline run.
func BenchmarkPipelineSimulated(b *testing.B) {
	p := genome.HumanLike(200_000)
	p.Depth = 4
	p.InsertMean = 0
	ds, err := genome.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	mach := Edison(48)
	opt := DefaultOptions(31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Align(mach, opt, ds.Contigs, ds.Reads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineThreaded measures the real-parallel pipeline.
func BenchmarkPipelineThreaded(b *testing.B) {
	p := genome.HumanLike(200_000)
	p.Depth = 4
	p.InsertMean = 0
	ds, err := genome.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions(31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AlignThreaded(8, opt, ds.Contigs, ds.Reads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadsPerSecond reports aligner throughput in reads/sec on the
// threaded pipeline (the paper reports 15.5M reads/sec at 15,360 cores).
func BenchmarkReadsPerSecond(b *testing.B) {
	p := genome.HumanLike(400_000)
	p.Depth = 8
	p.InsertMean = 0
	ds, err := genome.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions(51)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := AlignThreaded(runtime.NumCPU(), opt, ds.Contigs, ds.Reads)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalReads)/res.TotalRealWall(), "reads/s")
	}
}
