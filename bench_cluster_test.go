package meraligner_test

// Benchmark and recorded baseline of the distributed alignment tier: a
// 3-shard merserved fleet behind the scatter/gather router versus one
// whole-reference node, over loopback HTTP. Everything shares one host, so
// the routed row measures scatter/gather overhead (fan-out, retry
// machinery, merge, double transport), not scale-out speedup — the recorded
// contract is that the router's output stays byte-identical and its
// overhead stays bounded, not that three co-located shards beat one node.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/expt"
	"github.com/lbl-repro/meraligner/internal/genome"
)

// clusterWorkload is the routed-tier data set: ecoli-like, big enough that
// engine work (not loopback HTTP) dominates each batch.
func clusterWorkload(tb testing.TB) *genome.DataSet {
	tb.Helper()
	p := genome.EColiLike()
	p.GenomeLen = 300_000
	p.Depth = 2
	p.InsertMean = 0
	p.Seed = 17
	ds, err := genome.Generate(p)
	if err != nil {
		tb.Fatal(err)
	}
	return ds
}

func clusterComparison(tb testing.TB, reads int) *expt.ClusterComparison {
	tb.Helper()
	ds := clusterWorkload(tb)
	rs := ds.Reads
	if len(rs) > reads {
		rs = rs[:reads]
	}
	opt := core.DefaultOptions(19)
	opt.MaxSeedHits = 200
	cmp, err := expt.RunClusterComparison(2, opt, ds.Contigs, rs, expt.ClusterLoad{
		Shards: 3, Replicas: 2, Clients: 8, Batch: 32,
		HedgeAfter: 250 * time.Millisecond,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if !cmp.Identical {
		tb.Fatal("router SAM differs from single-node SAM")
	}
	return cmp
}

// BenchmarkClusterTier runs the two tiers side by side on one workload.
func BenchmarkClusterTier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp := clusterComparison(b, 1000)
		b.ReportMetric(cmp.Single.ReadsPerSec, "single-reads/s")
		b.ReportMetric(cmp.Routed.ReadsPerSec, "routed-reads/s")
	}
}

// TestRecordClusterBaseline writes BENCH_cluster.json — the committed
// distributed-tier baseline — when MERALIGNER_RECORD_BASELINE=1:
//
//	MERALIGNER_RECORD_BASELINE=1 go test -run TestRecordClusterBaseline .
func TestRecordClusterBaseline(t *testing.T) {
	if os.Getenv("MERALIGNER_RECORD_BASELINE") == "" {
		t.Skip("set MERALIGNER_RECORD_BASELINE=1 to (re)record BENCH_cluster.json")
	}
	var best *expt.ClusterComparison
	for i := 0; i < 3; i++ {
		cmp := clusterComparison(t, 2000)
		if best == nil || cmp.Routed.WallS < best.Routed.WallS {
			best = cmp
		}
	}

	baseline := struct {
		Workload       string  `json:"workload"`
		Shards         int     `json:"shards"`
		Replicas       int     `json:"replicas_per_shard"`
		Clients        int     `json:"clients"`
		Batch          int     `json:"batch_reads"`
		K              int     `json:"k"`
		HostCPUs       int     `json:"host_cpus"`
		GoOS           string  `json:"goos"`
		GoArch         string  `json:"goarch"`
		Identical      bool    `json:"sam_byte_identical"`
		SingleRPS      float64 `json:"single_node_reads_per_s"`
		SingleP50Ms    float64 `json:"single_node_p50_ms"`
		RoutedRPS      float64 `json:"routed_reads_per_s"`
		RoutedP50Ms    float64 `json:"routed_p50_ms"`
		ShardCalls     int64   `json:"shard_calls"`
		Failovers      int64   `json:"failovers"`
		Hedges         int64   `json:"hedges"`
		HedgeWins      int64   `json:"hedge_wins"`
		RouterOverhead float64 `json:"router_overhead_x"`
		Description    string  `json:"description"`
	}{
		Workload: "ecoli-like 300kb, depth 2, 100bp reads, k=19",
		Shards:   best.Shards, Replicas: best.Replicas, Clients: 8, Batch: 32, K: 19,
		HostCPUs: runtime.NumCPU(), GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		Identical:   best.Identical,
		SingleRPS:   best.Single.ReadsPerSec,
		SingleP50Ms: best.Single.P50Ms,
		RoutedRPS:   best.Routed.ReadsPerSec,
		RoutedP50Ms: best.Routed.P50Ms,
		ShardCalls:  best.ShardCalls,
		Failovers:   best.Failovers,
		Hedges:      best.Hedges,
		HedgeWins:   best.HedgeWins,
		RouterOverhead: func() float64 {
			if best.Routed.ReadsPerSec == 0 {
				return 0
			}
			return best.Single.ReadsPerSec / best.Routed.ReadsPerSec
		}(),
		Description: "distributed tier baseline: 3 shards x 2 replicas of merserved (real -shard-save " +
			"snapshots reopened from disk) behind the scatter/gather router vs one whole-reference " +
			"node, all over loopback HTTP on one host; 8 clients posting 32-read batches, best of 3. " +
			"SAM byte-identity between the tiers is asserted before timing. router_overhead_x is " +
			"single/routed throughput — co-located shards triple the engine work per read's shard " +
			"fan-out, so > 1 is expected; the contract is identity plus bounded overhead, and real " +
			"deployments spread shards across hosts for references no single node can hold. " +
			"failovers/hedges are the router's fault-tolerance counters over the routed run " +
			"(hedge-after 250ms): on a healthy loopback fleet they stay at or near zero",
	}
	out, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_cluster.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recorded BENCH_cluster.json:\n%s", out)
	if !best.Identical {
		t.Error("router SAM not byte-identical to single node")
	}
}
