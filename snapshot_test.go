package meraligner_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/genome"
)

// TestSnapshotSAMParity is the public round-trip contract: SAM output from
// an Aligner opened from a snapshot is byte-identical to SAM from the
// freshly built index on the same reads — headers, flags, positions,
// cigars, NM tags, everything.
func TestSnapshotSAMParity(t *testing.T) {
	ds := engineWorkload(t)
	qopt := meraligner.DefaultQueryOptions()
	qopt.CollectAlignments = true

	built, err := meraligner.Build(4, meraligner.DefaultIndexOptions(31), ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.merx")
	if err := built.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := meraligner.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if !loaded.Mapped() {
		t.Error("opened aligner does not report Mapped")
	}
	if loaded.IndexOptions() != built.IndexOptions() {
		t.Errorf("opened IndexOptions %+v, want %+v", loaded.IndexOptions(), built.IndexOptions())
	}
	if loaded.IndexStats() != built.IndexStats() {
		t.Errorf("opened IndexStats differ: %+v vs %+v", loaded.IndexStats(), built.IndexStats())
	}

	var wantSAM, gotSAM bytes.Buffer
	for _, a := range []struct {
		al  *meraligner.Aligner
		buf *bytes.Buffer
	}{{built, &wantSAM}, {loaded, &gotSAM}} {
		res, err := a.al.Align(context.Background(), ds.Reads, qopt)
		if err != nil {
			t.Fatal(err)
		}
		if err := meraligner.WriteSAM(a.buf, res, a.al.Targets(), ds.Reads); err != nil {
			t.Fatal(err)
		}
	}
	if wantSAM.Len() == 0 {
		t.Fatal("empty SAM from the built index")
	}
	if !bytes.Equal(wantSAM.Bytes(), gotSAM.Bytes()) {
		t.Fatalf("SAM from the loaded snapshot differs from the built index (%d vs %d bytes)", wantSAM.Len(), gotSAM.Len())
	}
}

// TestSnapshotTypedErrors: the public error surface for damaged and alien
// files — a bit-flipped fixture must fail with ErrCorruptIndex naming the
// section, truncation likewise, and a non-snapshot file with
// ErrIncompatibleIndex. Never a panic.
func TestSnapshotTypedErrors(t *testing.T) {
	p := genome.HumanLike(30_000)
	p.Depth = 1
	p.InsertMean = 0
	ds, err := genome.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	built, err := meraligner.Build(2, meraligner.DefaultIndexOptions(21), ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "index.merx")
	if err := built.Save(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Bit-flipped fixture: flip one bit in the middle of the payload.
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x08
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = meraligner.Open(path)
	if !errors.Is(err, meraligner.ErrCorruptIndex) {
		t.Fatalf("bit-flipped snapshot: got %v, want ErrCorruptIndex", err)
	}
	var ce *meraligner.CorruptIndexError
	if !errors.As(err, &ce) || ce.Section == "" {
		t.Fatalf("bit-flipped snapshot: error %v does not name the failing section", err)
	}

	// Truncated fixture.
	if err := os.WriteFile(path, good[:len(good)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := meraligner.Open(path); !errors.Is(err, meraligner.ErrCorruptIndex) {
		t.Fatalf("truncated snapshot: got %v, want ErrCorruptIndex", err)
	}

	// Not a snapshot at all.
	alien := filepath.Join(dir, "alien.bin")
	if err := os.WriteFile(alien, bytes.Repeat([]byte("FASTA?"), 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := meraligner.Open(alien); !errors.Is(err, meraligner.ErrIncompatibleIndex) {
		t.Fatalf("alien file: got %v, want ErrIncompatibleIndex", err)
	}

	// Restored fixture opens and serves.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := meraligner.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.Align(context.Background(), ds.Reads[:1], meraligner.DefaultQueryOptions()); err != nil {
		t.Fatal(err)
	}
}

// TestRecordSnapshotBaseline writes BENCH_snapshot.json — load-vs-rebuild
// cold-start on the PR-1 engine workload, best of three each, plus the SAM
// parity bit — when MERALIGNER_RECORD_BASELINE=1:
//
//	MERALIGNER_RECORD_BASELINE=1 go test -run TestRecordSnapshotBaseline .
func TestRecordSnapshotBaseline(t *testing.T) {
	if os.Getenv("MERALIGNER_RECORD_BASELINE") == "" {
		t.Skip("set MERALIGNER_RECORD_BASELINE=1 to (re)record BENCH_snapshot.json")
	}
	ds := engineWorkload(t)
	iopt := meraligner.DefaultIndexOptions(31)
	threads := runtime.NumCPU()
	path := filepath.Join(t.TempDir(), "index.merx")

	var built *meraligner.Aligner
	buildS := 1e18
	for i := 0; i < 3; i++ {
		start := time.Now()
		a, err := meraligner.Build(threads, iopt, ds.Contigs)
		if err != nil {
			t.Fatal(err)
		}
		if s := time.Since(start).Seconds(); s < buildS {
			buildS = s
		}
		built = a
	}
	if err := built.Save(path); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	loadS := 1e18
	for i := 0; i < 3; i++ {
		start := time.Now()
		a, err := meraligner.OpenThreads(threads, path)
		if err != nil {
			t.Fatal(err)
		}
		if s := time.Since(start).Seconds(); s < loadS {
			loadS = s
		}
		if i < 2 {
			a.Close()
			continue
		}
		// Parity on the recorded workload with the last opened mapping.
		qopt := meraligner.DefaultQueryOptions()
		qopt.CollectAlignments = true
		want, err := built.Align(context.Background(), ds.Reads, qopt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.Align(context.Background(), ds.Reads, qopt)
		if err != nil {
			t.Fatal(err)
		}
		var wantSAM, gotSAM bytes.Buffer
		if err := meraligner.WriteSAM(&wantSAM, want, built.Targets(), ds.Reads); err != nil {
			t.Fatal(err)
		}
		if err := meraligner.WriteSAM(&gotSAM, got, a.Targets(), ds.Reads); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantSAM.Bytes(), gotSAM.Bytes()) {
			t.Fatal("SAM from loaded snapshot differs from built index")
		}
		a.Close()
	}

	baseline := struct {
		Workload      string  `json:"workload"`
		K             int     `json:"k"`
		Threads       int     `json:"threads"`
		HostCPUs      int     `json:"host_cpus"`
		GoOS          string  `json:"goos"`
		GoArch        string  `json:"goarch"`
		SnapshotBytes int64   `json:"snapshot_bytes"`
		BuildS        float64 `json:"build_s"`
		LoadS         float64 `json:"load_s"`
		Speedup       float64 `json:"speedup"`
		SAMIdentical  bool    `json:"sam_identical"`
		Description   string  `json:"description"`
	}{
		Workload: "human-like 200kb, depth 6, k=31 (PR-1 engine workload)",
		K:        31, Threads: threads, HostCPUs: runtime.NumCPU(),
		GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		SnapshotBytes: st.Size(),
		BuildS:        buildS, LoadS: loadS, Speedup: buildS / loadS,
		SAMIdentical: true,
		Description: "index snapshot cold start: build_s is a full BuildIndex from " +
			"in-memory contigs (extract+stage, drain, mark, seal), load_s is Open " +
			"on a saved .merx (mmap + checksum verify + fragment-table rebuild); " +
			"best of 3 each, same host. SAM output from the loaded index is " +
			"byte-identical to the built one on the recorded workload",
	}
	out, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_snapshot.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recorded BENCH_snapshot.json:\n%s", out)
	if baseline.Speedup < 10 {
		t.Errorf("snapshot load speedup %.1fx < 10x over rebuild on the PR-1 workload", baseline.Speedup)
	}
}

// BenchmarkSnapshotOpen measures Open on a saved PR-1-workload snapshot —
// the serving cold-start this PR is about.
func BenchmarkSnapshotOpen(b *testing.B) {
	ds := engineWorkload(b)
	a, err := meraligner.Build(runtime.NumCPU(), meraligner.DefaultIndexOptions(31), ds.Contigs)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "index.merx")
	if err := a.Save(path); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := meraligner.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
}
