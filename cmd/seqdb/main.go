// Command seqdb converts between FASTQ and the SeqDB-like chunked binary
// read container (§V-A): a lossless conversion that shrinks the file by
// 40-50% and enables scalable parallel reading through its chunk index.
//
// Usage:
//
//	seqdb -to-seqdb reads.fq reads.seqdb     # convert FASTQ -> SeqDB
//	seqdb -to-fastq reads.seqdb reads.fq     # convert back
//	seqdb -info reads.seqdb                  # print container metadata
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/lbl-repro/meraligner/internal/buildinfo"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seqdb: ")

	var (
		toSeqdb = flag.Bool("to-seqdb", false, "convert FASTQ to SeqDB")
		toFastq = flag.Bool("to-fastq", false, "convert SeqDB to FASTQ")
		info    = flag.Bool("info", false, "print SeqDB metadata")
		chunk   = flag.Int("chunk", 4096, "records per chunk when writing SeqDB")
	)
	bi := buildinfo.Register(flag.CommandLine)
	logOpts := telemetry.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	if logger, err := logOpts.Logger("seqdb: "); err != nil {
		log.Fatal(err)
	} else {
		telemetry.CaptureStdLog(logger)
	}
	stopProfile, err := bi.Apply("seqdb")
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfile()
	args := flag.Args()

	switch {
	case *info:
		if len(args) != 1 {
			log.Fatal("usage: seqdb -info file.seqdb")
		}
		f, err := os.Open(args[0])
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		db, err := seqio.OpenSeqDB(f)
		if err != nil {
			log.Fatal(err)
		}
		st, _ := f.Stat()
		fmt.Printf("%s: %d records in %d chunks, %d bytes\n",
			args[0], db.NumRecords(), db.NumChunks(), st.Size())
		for c := 0; c < min(5, db.NumChunks()); c++ {
			ci := db.Chunk(c)
			fmt.Printf("  chunk %d: off %d, %d bytes, records [%d, %d)\n",
				c, ci.Off, ci.Size, ci.First, ci.First+ci.Count)
		}

	case *toSeqdb:
		if len(args) != 2 {
			log.Fatal("usage: seqdb -to-seqdb in.fq out.seqdb")
		}
		in, err := os.Open(args[0])
		if err != nil {
			log.Fatal(err)
		}
		defer in.Close()
		out, err := os.Create(args[1])
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		n, ratio, err := seqio.ConvertFastq(in, out, *chunk, seqio.ParseOptions{ReplaceN: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("converted %d records; SeqDB size is %.0f%% of the FASTQ (%.0f%% smaller)\n",
			n, 100*ratio, 100*(1-ratio))

	case *toFastq:
		if len(args) != 2 {
			log.Fatal("usage: seqdb -to-fastq in.seqdb out.fq")
		}
		in, err := os.Open(args[0])
		if err != nil {
			log.Fatal(err)
		}
		defer in.Close()
		db, err := seqio.OpenSeqDB(in)
		if err != nil {
			log.Fatal(err)
		}
		out, err := os.Create(args[1])
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		total := 0
		for c := 0; c < db.NumChunks(); c++ {
			recs, err := db.ReadChunk(c)
			if err != nil {
				log.Fatal(err)
			}
			if err := seqio.WriteFastq(out, recs); err != nil {
				log.Fatal(err)
			}
			total += len(recs)
		}
		fmt.Printf("wrote %d records\n", total)

	default:
		flag.Usage()
		os.Exit(2)
	}
}
