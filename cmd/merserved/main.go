// Command merserved serves merAligner over HTTP: it builds the seed index
// over the target contigs exactly once, keeps it resident, and answers
// alignment requests forever — coalescing concurrent small requests into
// shared engine calls with a dynamic micro-batcher (see internal/service).
//
// Usage:
//
//	merserved -targets contigs.fa [-k 51] [-threads N] [-addr :8490]
//	          [-max-batch 256] [-max-wait 2ms] [-queue 1024]
//	          [-max-hits 1000] [-min-score 0] [-no-exact] [-v]
//	merserved -index contigs.merx [-threads N] [-addr :8490] ...
//	merserved -index-dir snapshots/ [-resident-budget 2GiB]
//	          [-max-inflight-per-ref 64] [-swap-poll 1s] ...
//	merserved -router -shards http://h1:8490,http://h2:8490,...
//	          [-degraded fail|partial] [-call-timeout 15s] [-retries 3]
//	          [-health-interval 2s] ...
//	merserved -seed-shard seed-shard-000.merx [-addr :8491] ...
//	merserved ... [-log-level info] [-log-format text|json]
//	          [-slow-request-ms 0] [-debug-addr 127.0.0.1:0]
//
// With -index the server memory-maps a .merx snapshot written by
// `meraligner -save-index` instead of building: warm start in
// milliseconds, and N replicas on one host share a single physical copy of
// the index through the page cache. Build-time options (-k, -no-exact)
// come from the snapshot and cannot be overridden.
//
// With -index-dir the server serves every <ref>.merx snapshot in the
// directory as /v1/<ref>/...: a multi-genome catalog behind one listener.
// Snapshots open lazily on first request, stay resident under the
// -resident-budget byte cap with LRU eviction, and hot-swap with zero
// downtime when a snapshot file is atomically replaced (rename into
// place — never truncate a served snapshot in place). -max-inflight-per-ref
// caps concurrent requests per reference (429 + Retry-After beyond it).
//
// With -router the server holds no index at all: it is the scatter/gather
// tier over a fleet of shard servers (each serving one `meraligner
// -shard-save` snapshot), fanning every request to all shards and merging
// results byte-identically to a single whole-reference node (see
// internal/cluster; cmd/merrouted is the same tier as its own binary).
//
// With -seed-shard the server is a node of the distributed seed DHT: it
// memory-maps one seed-shard snapshot written by `meraligner -dht-save`
// and answers batched binary seed lookups (POST /v1/lookup, GET
// /v1/shardinfo) for the hash partition it owns — no reads, no extension,
// no SAM. Query nodes (`meraligner -dht-nodes`) resolve seeds against the
// fleet and align locally with byte-identical output (see internal/dhtnet).
//
// The listener binds and logs "listening on" immediately; until the index
// is built/mapped (or the router's fleet catalog assembled), every
// endpoint answers 503 warming except GET /healthz — poll GET /readyz for
// the 200 that means servable.
//
// Endpoints: POST /v1/align (JSON or FASTQ in; JSON, or SAM with
// Accept: text/x-sam, out), POST /v1/align/stream (NDJSON/SAM chunks),
// GET /v1/stats, /v1/targets, /healthz, /readyz, /metrics — all
// per-reference under /v1/<ref>/ in catalog mode, plus GET /v1/refs.
// Responses honor Accept-Encoding: gzip. SIGINT/SIGTERM drain gracefully:
// health flips to 503, queued requests finish, then the listener closes.
//
// Observability: every align request carries a request ID (minted, or
// adopted from traceparent / X-Request-Id) echoed in the X-Request-Id
// response header, error bodies, and -log-level debug request logs.
// -slow-request-ms logs a full span trace at warn for slow requests.
// -debug-addr starts a second, private listener with /debug/pprof/ and
// /debug/requests (recent request traces) — bind it to localhost only;
// it is not for public exposure.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/buildinfo"
	"github.com/lbl-repro/meraligner/internal/cluster"
	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/service"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("merserved: ")

	var (
		targetsPath = flag.String("targets", "", "FASTA file of target sequences (contigs)")
		indexPath   = flag.String("index", "", "memory-map a .merx index snapshot instead of building from -targets")
		indexDir    = flag.String("index-dir", "", "serve every <ref>.merx snapshot in this directory as /v1/<ref>/... (catalog mode)")
		budgetStr   = flag.String("resident-budget", "", "resident-bytes cap across open catalog indexes, e.g. 512MiB or 2GiB (empty = unlimited)")
		maxInflight = flag.Int("max-inflight-per-ref", 0, "max concurrently served align requests per reference (0 = unlimited)")
		swapPoll    = flag.Duration("swap-poll", 0, "min interval between snapshot hot-swap freshness checks (0 = 1s default, negative disables)")
		k           = flag.Int("k", 51, "seed length (1-64)")
		threads     = flag.Int("threads", runtime.NumCPU(), "worker threads (index build and engine pool)")
		addr        = flag.String("addr", ":8490", "listen address (use :0 for a random port)")
		maxBatch    = flag.Int("max-batch", 256, "max reads per coalesced engine call")
		maxWait     = flag.Duration("max-wait", 2*time.Millisecond, "max wait behind a busy engine before an overlapping engine call (negative disables window-holding)")
		queueReads  = flag.Int("queue", 0, "admission bound on queued reads (0 = 4*max-batch)")
		maxHits     = flag.Int("max-hits", 1000, "max alignments per seed (0 = unlimited, §IV-C)")
		minScore    = flag.Int("min-score", 0, "minimum alignment score (0 = seed length)")
		noExact     = flag.Bool("no-exact", false, "disable the exact-match optimization (§IV-A)")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM")
		verbose     = flag.Bool("v", false, "log per-request summaries")
		slowMs      = flag.Int("slow-request-ms", 0, "log a full span trace at warn for requests at least this slow (0 disables)")
		debugAddr   = flag.String("debug-addr", "", "private debug listener with /debug/pprof/ and /debug/requests (bind to localhost only; empty disables)")

		routerMode  = flag.Bool("router", false, "scatter/gather router mode over a shard fleet (requires -shards)")
		seedShard   = flag.String("seed-shard", "", "serve a seed-shard .merx snapshot (from `meraligner -dht-save`) as a batched seed-lookup node")
		shardsFlag  = flag.String("shards", "", "comma-separated shard base URLs in shard order, each optionally a |-separated replica set (router mode)")
		degraded    = flag.String("degraded", cluster.DegradedFail, "shard-failure policy: fail (502) or partial (serve surviving shards, annotated)")
		callTimeout = flag.Duration("call-timeout", 15*time.Second, "per-attempt timeout of one shard RPC (router mode)")
		retries     = flag.Int("retries", 3, "max attempts per shard RPC (router mode)")
		healthEvery = flag.Duration("health-interval", 2*time.Second, "replica readiness probe interval (router mode)")
		breakerN    = flag.Int("breaker-threshold", 3, "consecutive failures opening a replica's circuit breaker (router mode; negative disables)")
		hedgeAfter  = flag.Duration("hedge-after", 0, "race a shard RPC unanswered after this long against a second replica (router mode; 0 disables)")
		minDeadline = flag.Duration("min-deadline", 0, "reject requests whose propagated X-Deadline-Ms budget is below this (0 disables)")
	)
	bi := buildinfo.Register(flag.CommandLine)
	logOpts := telemetry.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	logger, err := logOpts.Logger("merserved: ")
	if err != nil {
		log.Fatal(err)
	}
	// Route stray log.Printf (libraries, and this file's lifecycle lines)
	// through the structured logger so every line honors -log-format.
	telemetry.CaptureStdLog(logger)
	stopProfile, err := bi.Apply("merserved")
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfile()
	fatal := func(err error) {
		logger.Error(err.Error())
		stopProfile()
		os.Exit(1)
	}

	modes := 0
	for _, set := range []bool{*targetsPath != "", *indexPath != "", *indexDir != "", *routerMode, *seedShard != ""} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "need exactly one of -targets (build the index) / -index (map a .merx snapshot) / -index-dir (serve a snapshot catalog) / -router (scatter/gather over -shards) / -seed-shard (serve a seed-shard snapshot)")
		flag.Usage()
		os.Exit(2)
	}
	if *indexPath != "" || *indexDir != "" || *routerMode || *seedShard != "" {
		mode := "-index"
		switch {
		case *indexDir != "":
			mode = "-index-dir"
		case *routerMode:
			mode = "-router"
		case *seedShard != "":
			mode = "-seed-shard"
		}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "k" || f.Name == "no-exact" {
				fatal(fmt.Errorf("-%s is a build-time option; it is stored in the snapshot and cannot be set with %s", f.Name, mode))
			}
		})
	}
	budget, err := parseBytes(*budgetStr)
	if err != nil {
		fatal(fmt.Errorf("-resident-budget: %v", err))
	}

	// Bind before any heavy work: orchestrators see the port immediately and
	// poll /readyz; every other endpoint answers 503 warming until the real
	// handler swaps in below.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	logger.Info("listening on " + ln.Addr().String())
	var sw swapHandler
	sw.set(warmingHandler())
	var handler http.Handler = &sw
	if *verbose {
		handler = logRequests(&sw)
	}
	hs := &http.Server{Handler: handler}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	var app interface {
		Drain(context.Context) error
	}
	var ring *telemetry.Ring
	if *seedShard != "" {
		sh, err := core.LoadSeedShard(*seedShard)
		if err != nil {
			fatal(err)
		}
		defer sh.Close()
		srv, err := service.NewSeedShard(service.SeedShardConfig{Shard: sh, Logger: logger})
		if err != nil {
			fatal(err)
		}
		info := sh.Info()
		logger.Info(fmt.Sprintf("seed-shard mode: serving shard %d/%d (k=%d, %d internal shards, fingerprint %#x, ~%d MiB mapped)",
			info.ID, info.Count, info.K, info.Shards, info.Fingerprint, sh.ResidentBytes()>>20))
		sw.set(srv)
		app = srv
	} else if *routerMode {
		shards := splitShards(*shardsFlag)
		if len(shards) == 0 {
			fatal(fmt.Errorf("-router requires -shards with at least one base URL"))
		}
		rt, err := cluster.New(cluster.Config{
			Shards:           shards,
			Degraded:         *degraded,
			Retry:            routerRetry(*retries, *callTimeout),
			CallTimeout:      *callTimeout,
			MaxBatch:         *maxBatch,
			MaxWait:          *maxWait,
			QueueReads:       *queueReads,
			HealthInterval:   *healthEvery,
			BreakerThreshold: *breakerN,
			HedgeAfter:       *hedgeAfter,
			MinDeadline:      *minDeadline,
			Version:          buildinfo.Version,
			Logger:           logger,
			SlowRequest:      time.Duration(*slowMs) * time.Millisecond,
		})
		if err != nil {
			fatal(err)
		}
		logger.Info(fmt.Sprintf("router mode: scattering over %d shard(s), degraded policy %q", len(shards), *degraded))
		sw.set(rt)
		app = rt
		ring = rt.TraceRing()
	} else {
		iopt := meraligner.DefaultIndexOptions(*k)
		iopt.ExactMatch = !*noExact
		qopt := meraligner.DefaultQueryOptions()
		qopt.MaxSeedHits = *maxHits
		qopt.MinScore = *minScore

		cfg := service.Config{
			Query:             qopt,
			MaxBatch:          *maxBatch,
			MaxWait:           *maxWait,
			QueueReads:        *queueReads,
			Workers:           *threads,
			MaxInflightPerRef: *maxInflight,
			MinDeadline:       *minDeadline,
			Version:           buildinfo.Version,
			Logger:            logger,
			SlowRequest:       time.Duration(*slowMs) * time.Millisecond,
		}
		if *indexDir != "" {
			cfg.IndexDir = *indexDir
			cfg.ResidentBudget = budget
			cfg.SwapPoll = *swapPoll
			budgetDesc := "unlimited"
			if budget > 0 {
				budgetDesc = fmt.Sprintf("~%d MiB", budget>>20)
			}
			logger.Info(fmt.Sprintf("catalog mode: serving *%s from %s (resident budget %s)", service.SnapshotExt, *indexDir, budgetDesc))
		} else {
			buildStart := time.Now()
			var al *meraligner.Aligner
			if *indexPath != "" {
				al, err = meraligner.OpenThreads(*threads, *indexPath)
			} else {
				al, err = meraligner.BuildFiles(*threads, iopt, *targetsPath)
			}
			if err != nil {
				fatal(err)
			}
			defer al.Close()
			verb := "built"
			if al.Mapped() {
				verb = "mapped"
			}
			st := al.IndexStats()
			logger.Info(fmt.Sprintf("index %s in %.3fs (k=%d): %d targets, %d distinct seeds, %d locations, ~%d MiB resident",
				verb, time.Since(buildStart).Seconds(), al.IndexOptions().K, len(al.Targets()), st.DistinctSeeds, st.TotalLocs, al.ResidentBytes()>>20))
			cfg.Aligner = al
		}

		srv, err := service.New(cfg)
		if err != nil {
			fatal(err)
		}
		sw.set(srv)
		app = srv
		ring = srv.TraceRing()
	}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(fmt.Errorf("-debug-addr: %w", err))
		}
		logger.Info("debug listening on " + dln.Addr().String())
		go func() { _ = http.Serve(dln, telemetry.NewDebugMux(ring)) }()
	}

	// Graceful drain: stop admission, flush the batcher, then close the
	// listener so in-flight responses finish writing.
	select {
	case err := <-done:
		fatal(err)
	case <-ctx.Done():
	}
	// Restore default signal handling: a second SIGINT/SIGTERM during the
	// drain kills the process instead of being swallowed.
	stopSignals()
	logger.Info(fmt.Sprintf("signal received, draining (deadline %s)", *drainWait))
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	clean := true
	if err := app.Drain(drainCtx); err != nil {
		logger.Warn(fmt.Sprintf("drain incomplete: %v (in-flight work aborted)", err))
		clean = false
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		logger.Warn(fmt.Sprintf("http shutdown: %v", err))
		clean = false
	}
	if !clean {
		stopProfile()
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}

// swapHandler lets the real handler be installed after the listener is
// already serving: requests before the swap hit the warming handler.
// (The indirection through a pointer-to-interface keeps the atomic happy
// across differently-typed handlers.)
type swapHandler struct {
	h atomic.Pointer[http.Handler]
}

func (s *swapHandler) set(h http.Handler) { s.h.Store(&h) }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load()).ServeHTTP(w, r)
}

// warmingHandler answers for the window between bind and the index being
// servable: liveness is already 200, readiness and everything else 503.
func warmingHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "warming\n")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "{\"error\":\"warming: index not ready\"}\n")
	})
	return mux
}

// splitShards parses the -shards flag: comma-separated base URLs, blanks
// skipped.
func splitShards(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// routerRetry maps the router flags onto a client.RetryPolicy.
func routerRetry(attempts int, callTimeout time.Duration) client.RetryPolicy {
	p := client.DefaultRetryPolicy()
	if attempts > 0 {
		p.MaxAttempts = attempts
	}
	p.AttemptTimeout = callTimeout
	return p
}

// parseBytes parses a human byte size: a plain integer (bytes) or one with
// a K/M/G/T suffix, optionally written as KiB/MiB/GiB/TiB (binary units
// either way). Empty means 0 (unlimited).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	num := strings.ToUpper(s)
	num = strings.TrimSuffix(num, "IB")
	num = strings.TrimSuffix(num, "B")
	shift := 0
	switch {
	case strings.HasSuffix(num, "K"):
		shift, num = 10, num[:len(num)-1]
	case strings.HasSuffix(num, "M"):
		shift, num = 20, num[:len(num)-1]
	case strings.HasSuffix(num, "G"):
		shift, num = 30, num[:len(num)-1]
	case strings.HasSuffix(num, "T"):
		shift, num = 40, num[:len(num)-1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("not a byte size: %q", s)
	}
	return int64(v * float64(int64(1)<<shift)), nil
}

// logRequests is a minimal access log for -v.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %.1fms", r.Method, r.URL.Path, float64(time.Since(start).Microseconds())/1e3)
	})
}
