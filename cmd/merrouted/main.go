// Command merrouted is the scatter/gather router of a sharded merAligner
// fleet: a stateless HTTP tier that fans every align request to N shard
// servers (each an ordinary merserved holding one `meraligner -shard-save`
// snapshot), merges the per-read results deterministically, and answers
// byte-identically to a single whole-reference merserved — JSON and SAM
// both (see internal/cluster). `merserved -router` is the same tier inside
// the merserved binary.
//
// Usage:
//
//	merrouted -shards http://h1:8490,http://h2:8490,http://h3:8490
//	          [-addr :8491] [-degraded fail|partial]
//	          [-call-timeout 15s] [-retries 3] [-health-interval 2s]
//	          [-breaker-threshold 3] [-hedge-after 0] [-min-deadline 0]
//	          [-max-batch 256] [-max-wait 2ms] [-queue 1024] [-v]
//	          [-log-level info] [-log-format text|json]
//	          [-slow-request-ms 0] [-debug-addr 127.0.0.1:0]
//
// -shards lists the fleet in shard order; the router validates each
// shard's SHRD identity against its position at warmup and stays 503
// not-ready (see GET /readyz) on any mismatch. Each list element may name
// several interchangeable replicas of its shard, separated by "|"
// ("http://h1a:8490|http://h1b:8490"): the router sends each shard RPC to
// one healthy replica (power-of-two-choices among the best circuit-breaker
// class), fails over to the next replica on error, and counts a shard as
// down only when all its replicas are. -breaker-threshold consecutive
// failures open a replica's circuit breaker (taking it out of selection
// until its readiness probes walk it back); -hedge-after, when positive,
// races a shard RPC still unanswered after that long against a second
// replica, first response winning, budget-capped at ~10% of RPCs.
//
// Shard RPCs get a per-call timeout and bounded jittered retries honoring
// Retry-After; a shard whose replicas all stay down is handled per
// -degraded: "fail" (default) fails requests with 502, "partial" serves
// the surviving shards' results annotated with degraded_shards (JSON) / an
// @CO line (SAM) and counted in metrics. -min-deadline, when positive,
// rejects align requests whose propagated X-Deadline-Ms budget is below it
// (503) instead of scattering doomed work.
//
// Endpoints: POST /v1/align, GET /v1/stats, /v1/targets, /healthz,
// /readyz, /metrics (merrouted_* and per-shard merrouted_shard_* series).
// SIGINT/SIGTERM drain gracefully.
//
// Observability: align requests carry a request ID propagated to every
// shard (traceparent / X-Request-Id) and echoed in the response header,
// error bodies, and -log-level debug request logs. -slow-request-ms logs
// a full span trace at warn for slow requests. -debug-addr starts a
// private listener with /debug/pprof/ and /debug/requests — bind it to
// localhost only; it is not for public exposure.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/buildinfo"
	"github.com/lbl-repro/meraligner/internal/cluster"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("merrouted: ")

	var (
		shardsFlag  = flag.String("shards", "", "comma-separated shard base URLs in shard order, each optionally a |-separated replica set (required)")
		addr        = flag.String("addr", ":8491", "listen address (use :0 for a random port)")
		degraded    = flag.String("degraded", cluster.DegradedFail, "shard-failure policy: fail (502) or partial (serve surviving shards, annotated)")
		callTimeout = flag.Duration("call-timeout", 15*time.Second, "per-attempt timeout of one shard RPC")
		retries     = flag.Int("retries", 3, "max attempts per shard RPC")
		healthEvery = flag.Duration("health-interval", 2*time.Second, "replica readiness probe interval")
		breakerN    = flag.Int("breaker-threshold", 3, "consecutive failures opening a replica's circuit breaker (negative disables)")
		hedgeAfter  = flag.Duration("hedge-after", 0, "race a shard RPC unanswered after this long against a second replica (0 disables)")
		minDeadline = flag.Duration("min-deadline", 0, "reject requests whose propagated X-Deadline-Ms budget is below this (0 disables)")
		maxBatch    = flag.Int("max-batch", 256, "max reads per coalesced scatter")
		maxWait     = flag.Duration("max-wait", 2*time.Millisecond, "max wait behind a busy fleet before an overlapping scatter (negative disables window-holding)")
		queueReads  = flag.Int("queue", 0, "admission bound on queued reads (0 = 4*max-batch)")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM")
		verbose     = flag.Bool("v", false, "log per-request summaries")
		slowMs      = flag.Int("slow-request-ms", 0, "log a full span trace at warn for requests at least this slow (0 disables)")
		debugAddr   = flag.String("debug-addr", "", "private debug listener with /debug/pprof/ and /debug/requests (bind to localhost only; empty disables)")
	)
	bi := buildinfo.Register(flag.CommandLine)
	logOpts := telemetry.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	logger, err := logOpts.Logger("merrouted: ")
	if err != nil {
		log.Fatal(err)
	}
	telemetry.CaptureStdLog(logger)
	stopProfile, err := bi.Apply("merrouted")
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfile()
	fatal := func(err error) {
		logger.Error(err.Error())
		stopProfile()
		os.Exit(1)
	}

	var shards []string
	for _, part := range strings.Split(*shardsFlag, ",") {
		if part = strings.TrimSpace(part); part != "" {
			shards = append(shards, part)
		}
	}
	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "-shards with at least one base URL is required")
		flag.Usage()
		os.Exit(2)
	}

	pol := client.DefaultRetryPolicy()
	if *retries > 0 {
		pol.MaxAttempts = *retries
	}
	rt, err := cluster.New(cluster.Config{
		Shards:           shards,
		Degraded:         *degraded,
		Retry:            pol,
		CallTimeout:      *callTimeout,
		MaxBatch:         *maxBatch,
		MaxWait:          *maxWait,
		QueueReads:       *queueReads,
		HealthInterval:   *healthEvery,
		BreakerThreshold: *breakerN,
		HedgeAfter:       *hedgeAfter,
		MinDeadline:      *minDeadline,
		Version:          buildinfo.Version,
		Logger:           logger,
		SlowRequest:      time.Duration(*slowMs) * time.Millisecond,
	})
	if err != nil {
		fatal(err)
	}
	logger.Info(fmt.Sprintf("scattering over %d shard(s), degraded policy %q", len(shards), *degraded))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	logger.Info("listening on " + ln.Addr().String())
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(fmt.Errorf("-debug-addr: %w", err))
		}
		logger.Info("debug listening on " + dln.Addr().String())
		go func() { _ = http.Serve(dln, telemetry.NewDebugMux(rt.TraceRing())) }()
	}

	var handler http.Handler = rt
	if *verbose {
		handler = logRequests(rt)
	}
	hs := &http.Server{Handler: handler}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	select {
	case err := <-done:
		fatal(err)
	case <-ctx.Done():
	}
	stopSignals()
	logger.Info(fmt.Sprintf("signal received, draining (deadline %s)", *drainWait))
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	clean := true
	if err := rt.Drain(drainCtx); err != nil {
		logger.Warn(fmt.Sprintf("drain incomplete: %v (in-flight work aborted)", err))
		clean = false
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		logger.Warn(fmt.Sprintf("http shutdown: %v", err))
		clean = false
	}
	if !clean {
		stopProfile()
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}

// logRequests is a minimal access log for -v.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %.1fms", r.Method, r.URL.Path, float64(time.Since(start).Microseconds())/1e3)
	})
}
