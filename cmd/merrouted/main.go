// Command merrouted is the scatter/gather router of a sharded merAligner
// fleet: a stateless HTTP tier that fans every align request to N shard
// servers (each an ordinary merserved holding one `meraligner -shard-save`
// snapshot), merges the per-read results deterministically, and answers
// byte-identically to a single whole-reference merserved — JSON and SAM
// both (see internal/cluster). `merserved -router` is the same tier inside
// the merserved binary.
//
// Usage:
//
//	merrouted -shards http://h1:8490,http://h2:8490,http://h3:8490
//	          [-addr :8491] [-degraded fail|partial]
//	          [-call-timeout 15s] [-retries 3] [-health-interval 2s]
//	          [-max-batch 256] [-max-wait 2ms] [-queue 1024] [-v]
//
// -shards lists the fleet in shard order; the router validates each
// shard's SHRD identity against its position at warmup and stays 503
// not-ready (see GET /readyz) on any mismatch. Shard RPCs get a per-call
// timeout and bounded jittered retries honoring Retry-After; a shard that
// stays down is handled per -degraded: "fail" (default) fails requests
// with 502, "partial" serves the surviving shards' results annotated with
// degraded_shards (JSON) / an @CO line (SAM) and counted in metrics.
//
// Endpoints: POST /v1/align, GET /v1/stats, /v1/targets, /healthz,
// /readyz, /metrics (merrouted_* and per-shard merrouted_shard_* series).
// SIGINT/SIGTERM drain gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/buildinfo"
	"github.com/lbl-repro/meraligner/internal/cluster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("merrouted: ")

	var (
		shardsFlag  = flag.String("shards", "", "comma-separated shard base URLs in shard order (required)")
		addr        = flag.String("addr", ":8491", "listen address (use :0 for a random port)")
		degraded    = flag.String("degraded", cluster.DegradedFail, "shard-failure policy: fail (502) or partial (serve surviving shards, annotated)")
		callTimeout = flag.Duration("call-timeout", 15*time.Second, "per-attempt timeout of one shard RPC")
		retries     = flag.Int("retries", 3, "max attempts per shard RPC")
		healthEvery = flag.Duration("health-interval", 2*time.Second, "shard readiness probe interval")
		maxBatch    = flag.Int("max-batch", 256, "max reads per coalesced scatter")
		maxWait     = flag.Duration("max-wait", 2*time.Millisecond, "max wait behind a busy fleet before an overlapping scatter (negative disables window-holding)")
		queueReads  = flag.Int("queue", 0, "admission bound on queued reads (0 = 4*max-batch)")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM")
		verbose     = flag.Bool("v", false, "log per-request summaries")
	)
	bi := buildinfo.Register(flag.CommandLine)
	flag.Parse()
	stopProfile, err := bi.Apply("merrouted")
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfile()

	var shards []string
	for _, part := range strings.Split(*shardsFlag, ",") {
		if part = strings.TrimSpace(part); part != "" {
			shards = append(shards, part)
		}
	}
	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "-shards with at least one base URL is required")
		flag.Usage()
		os.Exit(2)
	}

	pol := client.DefaultRetryPolicy()
	if *retries > 0 {
		pol.MaxAttempts = *retries
	}
	rt, err := cluster.New(cluster.Config{
		Shards:         shards,
		Degraded:       *degraded,
		Retry:          pol,
		CallTimeout:    *callTimeout,
		MaxBatch:       *maxBatch,
		MaxWait:        *maxWait,
		QueueReads:     *queueReads,
		HealthInterval: *healthEvery,
		Version:        buildinfo.Version,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("scattering over %d shard(s), degraded policy %q", len(shards), *degraded)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s", ln.Addr())

	var handler http.Handler = rt
	if *verbose {
		handler = logRequests(rt)
	}
	hs := &http.Server{Handler: handler}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	select {
	case err := <-done:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stopSignals()
	log.Printf("signal received, draining (deadline %s)", *drainWait)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	clean := true
	if err := rt.Drain(drainCtx); err != nil {
		log.Printf("drain incomplete: %v (in-flight work aborted)", err)
		clean = false
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
		clean = false
	}
	if !clean {
		stopProfile()
		os.Exit(1)
	}
	log.Printf("drained cleanly")
}

// logRequests is a minimal access log for -v.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %.1fms", r.Method, r.URL.Path, float64(time.Since(start).Microseconds())/1e3)
	})
}
