// Command meraligner aligns a set of query reads (FASTQ or SeqDB) to a set
// of target contigs (FASTA) using the merAligner pipeline in threaded mode,
// and writes tab-separated alignments to stdout.
//
// Usage:
//
//	meraligner -targets contigs.fa -queries reads.fq [-k 51] [-threads N]
//	           [-max-hits 1000] [-min-score 0] [-no-exact] [-o out.tsv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"github.com/lbl-repro/meraligner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meraligner: ")

	var (
		targetsPath = flag.String("targets", "", "FASTA file of target sequences (contigs)")
		queriesPath = flag.String("queries", "", "FASTQ or SeqDB file of query reads")
		k           = flag.Int("k", 51, "seed length (1-64)")
		threads     = flag.Int("threads", runtime.NumCPU(), "worker threads")
		maxHits     = flag.Int("max-hits", 1000, "max alignments per seed (0 = unlimited, §IV-C)")
		minScore    = flag.Int("min-score", 0, "minimum alignment score (0 = seed length)")
		noExact     = flag.Bool("no-exact", false, "disable the exact-match optimization (§IV-A)")
		noPermute   = flag.Bool("no-permute", false, "disable load-balancing permutation (§IV-B)")
		outPath     = flag.String("o", "", "output file (default stdout)")
		samOut      = flag.Bool("sam", false, "emit SAM instead of tab-separated alignments")
		verbose     = flag.Bool("v", false, "print phase timing summary to stderr")
	)
	flag.Parse()
	if *targetsPath == "" || *queriesPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	opt := meraligner.DefaultOptions(*k)
	opt.MaxSeedHits = *maxHits
	opt.MinScore = *minScore
	opt.ExactMatch = !*noExact
	opt.Permute = !*noPermute
	opt.CollectAlignments = true

	res, targets, queries, err := meraligner.AlignFiles(*threads, opt, *targetsPath, *queriesPath)
	if err != nil {
		log.Fatal(err)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	if *samOut {
		err = meraligner.WriteSAM(out, res, targets, queries)
	} else {
		err = meraligner.WriteAlignments(out, res, targets, queries)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *verbose {
		fmt.Fprintf(os.Stderr, "aligned %d/%d reads (%.1f%%), %d alignments, %d via exact path\n",
			res.AlignedReads, res.TotalReads,
			100*float64(res.AlignedReads)/float64(max(1, res.TotalReads)),
			res.TotalAlignments, res.ExactPathReads)
		for _, p := range res.Phases {
			fmt.Fprintf(os.Stderr, "  %-24s %8.3fs\n", p.Name, p.RealWall)
		}
		fmt.Fprintf(os.Stderr, "  %-24s %8.3fs (%.0f reads/s)\n", "TOTAL",
			res.TotalRealWall(), float64(res.TotalReads)/res.TotalRealWall())
	}
}
