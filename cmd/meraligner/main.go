// Command meraligner aligns query reads (FASTQ or SeqDB, gzip transparent)
// to a set of target contigs (FASTA, gzip transparent) using the merAligner
// pipeline and writes tab-separated alignments (or SAM) to stdout.
//
// The threaded engine (default) builds the seed index once and serves query
// batches against it: -queries aligns a single batch; -batches aligns any
// number of FASTQ/SeqDB inputs against the same resident index, streaming
// output per batch — the build cost is paid exactly once. -engine sim runs
// the one-shot pipeline on the simulated PGAS machine (-sim-cores wide) and
// reports simulated phase times — useful for predicting distributed-scale
// behavior from a laptop.
//
// Index snapshots decouple building from serving: -save-index writes the
// sealed index as a .merx snapshot after building (with or without aligning
// anything), and -index memory-maps a snapshot instead of building — cold
// start in milliseconds, with every build-time option restored from the
// file (-k and -no-exact do not apply). See docs/INDEX_FORMAT.md.
//
// Usage:
//
//	meraligner -targets contigs.fa -queries reads.fq [-k 51] [-threads N]
//	           [-engine threaded|sim] [-sim-cores 480] [-max-hits 1000]
//	           [-min-score 0] [-no-exact] [-sam] [-o out.tsv]
//	meraligner -targets contigs.fa -batches r1.fq,r2.fq.gz,r3.fq -sam
//	meraligner -targets contigs.fa -save-index contigs.merx
//	meraligner -index contigs.merx -queries reads.fq -sam
//	meraligner -targets contigs.fa -shard-save 3 -o shards/
//	meraligner -targets contigs.fa -dht-save 3 -o dht/
//	meraligner -index contigs.merx -queries reads.fq -sam \
//	           -dht-nodes http://n0:8491,http://n1:8491,http://n2:8491
//
// -shard-save partitions the reference into N contiguous, base-balanced
// shard snapshots (shard-000.merx, ...) under the -o directory, each a
// normal single-node index over its slice plus its fleet identity (the
// SHRD section) — the producer half of the distributed tier served by
// merserved shards behind a merrouted router.
//
// -dht-save partitions the seed table by hash into N seed-shard snapshots
// (seed-shard-000.merx, ...) under the -o directory — the producer half of
// the distributed seed DHT. Each snapshot is served by `merserved
// -seed-shard`; -dht-nodes lists the fleet in owner order and makes this
// aligner resolve seed lookups remotely against it (batched, retried,
// breaker-protected — see internal/dhtnet) while extending and scoring
// locally, with output byte-identical to a fully local run. The local
// -index/-targets still provides the reference sequences; its mmap'd seed
// table pages are simply never touched.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/buildinfo"
	"github.com/lbl-repro/meraligner/internal/dhtnet"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meraligner: ")

	var (
		targetsPath = flag.String("targets", "", "FASTA file of target sequences (contigs)")
		indexPath   = flag.String("index", "", "load a .merx index snapshot instead of building from -targets")
		saveIndex   = flag.String("save-index", "", "write the sealed index as a .merx snapshot (usable without -queries/-batches)")
		shardSave   = flag.Int("shard-save", 0, "partition -targets into N shard snapshots under the -o directory (shard-000.merx, ...) for a merrouted fleet")
		dhtSave     = flag.Int("dht-save", 0, "hash-partition the seed table into N seed-shard snapshots under the -o directory (seed-shard-000.merx, ...) for a merserved -seed-shard fleet")
		dhtNodes    = flag.String("dht-nodes", "", "comma-separated seed-shard base URLs in owner order; seed lookups resolve remotely against this fleet")
		queriesPath = flag.String("queries", "", "FASTQ or SeqDB file of query reads (one batch)")
		batchList   = flag.String("batches", "", "comma-separated FASTQ/SeqDB files aligned as successive batches against one resident index")
		k           = flag.Int("k", 51, "seed length (1-64)")
		threads     = flag.Int("threads", runtime.NumCPU(), "worker threads")
		engine      = flag.String("engine", "threaded", "execution engine: threaded (real goroutines) or sim (simulated PGAS machine)")
		simCores    = flag.Int("sim-cores", 0, "simulated machine width for -engine sim (0 = -threads)")
		maxHits     = flag.Int("max-hits", 1000, "max alignments per seed (0 = unlimited, §IV-C)")
		minScore    = flag.Int("min-score", 0, "minimum alignment score (0 = seed length)")
		noExact     = flag.Bool("no-exact", false, "disable the exact-match optimization (§IV-A)")
		noPermute   = flag.Bool("no-permute", false, "disable load-balancing permutation (§IV-B, sim engine)")
		outPath     = flag.String("o", "", "output file (default stdout; a .gz suffix gzip-compresses)")
		samOut      = flag.Bool("sam", false, "emit SAM instead of tab-separated alignments")
		verbose     = flag.Bool("v", false, "print build/align timing summary to stderr")
	)
	bi := buildinfo.Register(flag.CommandLine)
	logOpts := telemetry.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	if logger, err := logOpts.Logger("meraligner: "); err != nil {
		log.Fatal(err)
	} else {
		telemetry.CaptureStdLog(logger)
	}
	stopProfile, err := bi.Apply("meraligner")
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfile()
	if (*targetsPath == "") == (*indexPath == "") {
		fmt.Fprintln(os.Stderr, "need exactly one of -targets (build the index) / -index (load a .merx snapshot)")
		flag.Usage()
		os.Exit(2)
	}
	if *queriesPath != "" && *batchList != "" {
		fmt.Fprintln(os.Stderr, "use at most one of -queries / -batches")
		flag.Usage()
		os.Exit(2)
	}
	if *queriesPath == "" && *batchList == "" && *saveIndex == "" && *shardSave == 0 && *dhtSave == 0 {
		fmt.Fprintln(os.Stderr, "nothing to do: need -queries, -batches, -save-index, -shard-save, or -dht-save")
		flag.Usage()
		os.Exit(2)
	}
	if *shardSave != 0 {
		switch {
		case *shardSave < 0:
			log.Fatalf("-shard-save wants a positive shard count, got %d", *shardSave)
		case *targetsPath == "":
			log.Fatal("-shard-save builds each shard from scratch and requires -targets")
		case *queriesPath != "" || *batchList != "" || *saveIndex != "" || *dhtSave != 0:
			log.Fatal("-shard-save is a standalone producer; drop -queries/-batches/-save-index/-dht-save")
		case *engine == "sim":
			log.Fatal("index snapshots require the threaded engine")
		case *outPath == "":
			log.Fatal("-shard-save needs -o naming the output directory")
		}
	}
	if *dhtSave != 0 {
		switch {
		case *dhtSave < 0:
			log.Fatalf("-dht-save wants a positive owner count, got %d", *dhtSave)
		case *queriesPath != "" || *batchList != "" || *saveIndex != "":
			log.Fatal("-dht-save is a standalone producer; drop -queries/-batches/-save-index")
		case *engine == "sim":
			log.Fatal("index snapshots require the threaded engine")
		case *outPath == "":
			log.Fatal("-dht-save needs -o naming the output directory")
		}
	}
	if *dhtNodes != "" {
		switch {
		case *shardSave != 0 || *dhtSave != 0:
			log.Fatal("-dht-nodes is a query-time option; it cannot be combined with the snapshot producers")
		case *engine == "sim":
			log.Fatal("-dht-nodes requires the threaded engine")
		case *queriesPath == "" && *batchList == "":
			log.Fatal("-dht-nodes needs reads to align; add -queries or -batches")
		}
	}
	if *engine != "threaded" && *engine != "sim" {
		log.Fatalf("unknown engine %q (want threaded or sim)", *engine)
	}
	if *batchList != "" && *engine == "sim" {
		log.Fatal("-batches requires the threaded engine (the simulator is one-shot)")
	}
	if (*indexPath != "" || *saveIndex != "") && *engine == "sim" {
		log.Fatal("index snapshots require the threaded engine")
	}
	if *indexPath != "" {
		// Build-time options come from the snapshot; catch silently ignored
		// flags up front.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "k" || f.Name == "no-exact" {
				log.Fatalf("-%s is a build-time option; it is stored in the snapshot and cannot be set with -index", f.Name)
			}
		})
	}

	iopt := meraligner.DefaultIndexOptions(*k)
	iopt.ExactMatch = !*noExact
	qopt := meraligner.DefaultQueryOptions()
	qopt.MaxSeedHits = *maxHits
	qopt.MinScore = *minScore
	qopt.Permute = !*noPermute
	qopt.CollectAlignments = true
	if *batchList == "" && *saveIndex == "" && *indexPath == "" && *shardSave == 0 && *dhtSave == 0 && *maxHits > 0 {
		// One-shot runs know the threshold at build time; cap the stored
		// location lists just past it. Batch mode and saved snapshots keep
		// full lists so the resident index stays valid for any future
		// threshold.
		iopt.MaxLocList = *maxHits + 1
	}

	// Shard producer: cut the reference into N self-contained snapshots for
	// a scatter/gather fleet (-o is the output directory here, not a file).
	if *shardSave > 0 {
		targets, err := meraligner.ReadFasta(*targetsPath)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		paths, err := meraligner.SaveShards(*threads, iopt, targets, *shardSave, *outPath)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range paths {
			fmt.Println(p)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "%d shard snapshot(s) over %d targets written to %s in %.3fs\n",
				len(paths), len(targets), *outPath, time.Since(start).Seconds())
		}
		return
	}

	// Seed-shard producer: hash-partition one sealed seed table into N
	// self-contained snapshots for a merserved -seed-shard fleet. Unlike
	// -shard-save this works from a mapped -index too: the table is
	// partitioned, not rebuilt.
	if *dhtSave > 0 {
		var a *meraligner.Aligner
		if *indexPath != "" {
			a, err = meraligner.OpenThreads(*threads, *indexPath)
		} else {
			a, err = meraligner.BuildFiles(*threads, iopt, *targetsPath)
		}
		if err != nil {
			log.Fatal(err)
		}
		defer a.Close()
		start := time.Now()
		paths, err := a.SaveSeedShards(*outPath, *dhtSave)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range paths {
			fmt.Println(p)
		}
		if *verbose {
			fp, _ := a.SeedPartitionFingerprint(*dhtSave)
			fmt.Fprintf(os.Stderr, "%d seed-shard snapshot(s) (k=%d, %d internal shards, fingerprint %#x) written to %s in %.3fs\n",
				len(paths), a.IndexOptions().K, a.SeedTableShards(), fp, *outPath, time.Since(start).Seconds())
		}
		return
	}

	var out io.Writer = os.Stdout
	var outClose io.Closer // gzip stream to finish before the file closes
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		wc, _ := seqio.MaybeCompress(*outPath, f) // .gz suffix → gzip output
		defer wc.Close()
		out, outClose = wc, wc
	}

	// Simulated engine: one-shot pipeline, unchanged semantics.
	if *engine == "sim" {
		opt := meraligner.Options{IndexOptions: iopt, QueryOptions: qopt}
		res, targets, queries, err := alignSim(*simCores, *threads, opt, *targetsPath, *queriesPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeBatch(out, *samOut, nil, res, targets, queries); err != nil {
			log.Fatal(err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "aligned %d/%d reads (%.1f%%), %d alignments, %d via exact path\n",
				res.AlignedReads, res.TotalReads,
				100*float64(res.AlignedReads)/float64(max(1, res.TotalReads)),
				res.TotalAlignments, res.ExactPathReads)
			for _, p := range res.Phases {
				fmt.Fprintf(os.Stderr, "  %-24s %8.3fs (simulated)\n", p.Name, p.Wall)
			}
			fmt.Fprintf(os.Stderr, "  %-24s %8.3fs (simulated)\n", "TOTAL", res.TotalWall())
		}
		return
	}

	// Threaded engine: build the index once, then serve each batch.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var batches []string
	if *queriesPath != "" {
		batches = []string{*queriesPath}
	}
	if *batchList != "" {
		for _, p := range strings.Split(*batchList, ",") {
			if p = strings.TrimSpace(p); p != "" {
				batches = append(batches, p)
			}
		}
		if len(batches) == 0 {
			log.Fatal("-batches lists no files")
		}
	}
	// Catch unreadable batch files before paying the index build.
	for _, p := range batches {
		f, err := os.Open(p)
		if err != nil {
			log.Fatal(err)
		}
		if st, err := f.Stat(); err == nil && st.IsDir() {
			f.Close()
			log.Fatalf("%s: is a directory", p)
		}
		f.Close()
	}

	var a *meraligner.Aligner
	if *indexPath != "" {
		a, err = meraligner.OpenThreads(*threads, *indexPath)
	} else {
		a, err = meraligner.BuildFiles(*threads, iopt, *targetsPath)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	targets := a.Targets()
	if *verbose {
		st := a.IndexStats()
		verb := "built"
		if a.Mapped() {
			verb = "mapped"
		}
		fmt.Fprintf(os.Stderr, "index %s in %.3fs (k=%d): %d distinct seeds, %d locations, ~%d MiB resident\n",
			verb, a.BuildWall(), a.IndexOptions().K, st.DistinctSeeds, st.TotalLocs, a.ResidentBytes()>>20)
	}
	if *dhtNodes != "" {
		var owners []string
		for _, u := range strings.Split(*dhtNodes, ",") {
			if u = strings.TrimSpace(u); u != "" {
				owners = append(owners, strings.TrimRight(u, "/"))
			}
		}
		if len(owners) == 0 {
			log.Fatal("-dht-nodes lists no base URLs")
		}
		fp, err := a.SeedPartitionFingerprint(len(owners))
		if err != nil {
			log.Fatal(err)
		}
		dc, err := dhtnet.New(dhtnet.Config{
			Owners:      owners,
			K:           a.IndexOptions().K,
			Shards:      a.SeedTableShards(),
			Fingerprint: fp,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer dc.Close()
		warmCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		err = dc.Warm(warmCtx)
		cancel()
		if err != nil {
			log.Fatalf("seed-shard fleet rejected: %v", err)
		}
		qopt.SeedResolver = dc
		if *verbose {
			fmt.Fprintf(os.Stderr, "resolving seeds against %d seed-shard node(s) (fingerprint %#x)\n", len(owners), fp)
		}
	}
	if *saveIndex != "" {
		saveStart := time.Now()
		if err := a.Save(*saveIndex); err != nil {
			log.Fatal(err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "index snapshot saved to %s in %.3fs\n", *saveIndex, time.Since(saveStart).Seconds())
		}
	}
	if len(batches) == 0 {
		return // build-and-save only
	}

	var stream *meraligner.SAMStream
	if *samOut {
		if stream, err = meraligner.NewSAMStream(out, targets); err != nil {
			log.Fatal(err)
		}
	}
	// die flushes the shared SAM stream (and finishes any gzip stream,
	// since log.Fatalf skips the deferred Close) before exiting, so records
	// of the batches that DID succeed are not lost in the writers' buffers.
	die := func(format string, args ...any) {
		if stream != nil {
			if ferr := stream.Flush(); ferr != nil {
				log.Printf("flushing SAM stream: %v", ferr)
			}
		}
		if outClose != nil {
			if cerr := outClose.Close(); cerr != nil {
				log.Printf("closing output: %v", cerr)
			}
		}
		log.Fatalf(format, args...)
	}
	for _, path := range batches {
		queries, err := meraligner.ReadQueries(path)
		if err != nil {
			die("%v", err)
		}
		res, err := a.Align(ctx, queries, qopt)
		if err != nil {
			die("%s: %v", path, err)
		}
		if err := writeBatch(out, *samOut, stream, res, targets, queries); err != nil {
			die("%v", err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "%s: aligned %d/%d reads (%.1f%%), %d alignments, %d exact, %.3fs (%.0f reads/s)\n",
				path, res.AlignedReads, res.TotalReads,
				100*float64(res.AlignedReads)/float64(max(1, res.TotalReads)),
				res.TotalAlignments, res.ExactPathReads,
				res.TotalRealWall(), float64(res.TotalReads)/res.TotalRealWall())
		}
	}
	if stream != nil {
		if err := stream.Flush(); err != nil {
			log.Fatal(err)
		}
	}
}

// writeBatch emits one batch's records: through the shared SAM stream when
// set, a fresh one-shot SAM document for the simulated engine, or the
// tab-separated format.
func writeBatch(out io.Writer, samOut bool, stream *meraligner.SAMStream, res *meraligner.Results, targets, queries []meraligner.Seq) error {
	switch {
	case stream != nil:
		return stream.WriteBatch(res, queries)
	case samOut:
		return meraligner.WriteSAM(out, res, targets, queries)
	default:
		return meraligner.WriteAlignments(out, res, targets, queries)
	}
}

// alignSim runs the one-shot simulated pipeline over the input files.
func alignSim(simCores, threads int, opt meraligner.Options, targetsPath, queriesPath string) (*meraligner.Results, []meraligner.Seq, []meraligner.Seq, error) {
	targets, err := meraligner.ReadFasta(targetsPath)
	if err != nil {
		return nil, nil, nil, err
	}
	queries, err := meraligner.ReadQueries(queriesPath)
	if err != nil {
		return nil, nil, nil, err
	}
	cores := simCores
	if cores == 0 {
		cores = threads
	}
	res, err := meraligner.Align(meraligner.Edison(cores), opt, targets, queries)
	if err != nil {
		return nil, nil, nil, err
	}
	return res, targets, queries, nil
}
