// Command meraligner aligns a set of query reads (FASTQ or SeqDB) to a set
// of target contigs (FASTA) using the merAligner pipeline and writes
// tab-separated alignments (or SAM) to stdout.
//
// Two engines are available: -engine threaded (default) runs the
// goroutine-backed shared-memory engine on the host; -engine sim runs the
// same pipeline on the simulated PGAS machine (-sim-cores wide) and reports
// simulated phase times — useful for predicting distributed-scale behavior
// from a laptop.
//
// Usage:
//
//	meraligner -targets contigs.fa -queries reads.fq [-k 51] [-threads N]
//	           [-engine threaded|sim] [-sim-cores 480] [-max-hits 1000]
//	           [-min-score 0] [-no-exact] [-o out.tsv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"github.com/lbl-repro/meraligner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meraligner: ")

	var (
		targetsPath = flag.String("targets", "", "FASTA file of target sequences (contigs)")
		queriesPath = flag.String("queries", "", "FASTQ or SeqDB file of query reads")
		k           = flag.Int("k", 51, "seed length (1-64)")
		threads     = flag.Int("threads", runtime.NumCPU(), "worker threads")
		engine      = flag.String("engine", "threaded", "execution engine: threaded (real goroutines) or sim (simulated PGAS machine)")
		simCores    = flag.Int("sim-cores", 0, "simulated machine width for -engine sim (0 = -threads)")
		maxHits     = flag.Int("max-hits", 1000, "max alignments per seed (0 = unlimited, §IV-C)")
		minScore    = flag.Int("min-score", 0, "minimum alignment score (0 = seed length)")
		noExact     = flag.Bool("no-exact", false, "disable the exact-match optimization (§IV-A)")
		noPermute   = flag.Bool("no-permute", false, "disable load-balancing permutation (§IV-B)")
		outPath     = flag.String("o", "", "output file (default stdout)")
		samOut      = flag.Bool("sam", false, "emit SAM instead of tab-separated alignments")
		verbose     = flag.Bool("v", false, "print phase timing summary to stderr")
	)
	flag.Parse()
	if *targetsPath == "" || *queriesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *engine != "threaded" && *engine != "sim" {
		log.Fatalf("unknown engine %q (want threaded or sim)", *engine)
	}

	opt := meraligner.DefaultOptions(*k)
	opt.MaxSeedHits = *maxHits
	opt.MinScore = *minScore
	opt.ExactMatch = !*noExact
	opt.Permute = !*noPermute
	opt.CollectAlignments = true

	targets, err := meraligner.ReadFasta(*targetsPath)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := meraligner.ReadQueries(*queriesPath)
	if err != nil {
		log.Fatal(err)
	}

	var res *meraligner.Results
	if *engine == "sim" {
		cores := *simCores
		if cores == 0 {
			cores = *threads
		}
		res, err = meraligner.Align(meraligner.Edison(cores), opt, targets, queries)
	} else {
		res, err = meraligner.AlignThreaded(*threads, opt, targets, queries)
	}
	if err != nil {
		log.Fatal(err)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	if *samOut {
		err = meraligner.WriteSAM(out, res, targets, queries)
	} else {
		err = meraligner.WriteAlignments(out, res, targets, queries)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *verbose {
		fmt.Fprintf(os.Stderr, "aligned %d/%d reads (%.1f%%), %d alignments, %d via exact path\n",
			res.AlignedReads, res.TotalReads,
			100*float64(res.AlignedReads)/float64(max(1, res.TotalReads)),
			res.TotalAlignments, res.ExactPathReads)
		if *engine == "sim" {
			for _, p := range res.Phases {
				fmt.Fprintf(os.Stderr, "  %-24s %8.3fs (simulated)\n", p.Name, p.Wall)
			}
			fmt.Fprintf(os.Stderr, "  %-24s %8.3fs (simulated)\n", "TOTAL", res.TotalWall())
		} else {
			for _, p := range res.Phases {
				fmt.Fprintf(os.Stderr, "  %-24s %8.3fs\n", p.Name, p.RealWall)
			}
			fmt.Fprintf(os.Stderr, "  %-24s %8.3fs (%.0f reads/s)\n", "TOTAL",
				res.TotalRealWall(), float64(res.TotalReads)/res.TotalRealWall())
		}
	}
}
