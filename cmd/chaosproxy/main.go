// Command chaosproxy is the shell face of internal/faultinject: a TCP
// chaos proxy that forwards one listen address to one upstream target with
// injectable faults, for smoke tests that want a flaky network between a
// router and its replicas without touching either binary.
//
// Usage:
//
//	chaosproxy -target 127.0.0.1:8490 [-listen 127.0.0.1:0] [-seed 1]
//	           [-latency 0] [-error-rate 0] [-blackhole]
//	           [-truncate 0] [-slow-loris 0]
//
// The proxy logs "listening on <addr>" at startup (the same port-scraping
// contract the serving binaries follow) and runs until SIGINT/SIGTERM,
// then resets every live connection and exits. Faults are static for the
// process's lifetime; restart with different flags to change the schedule
// (the seeded schedule makes a restart reproducible).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"github.com/lbl-repro/meraligner/internal/faultinject"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaosproxy: ")

	var (
		listen    = flag.String("listen", "127.0.0.1:0", "listen address (use :0 for a random port)")
		target    = flag.String("target", "", "upstream host:port to forward to (required)")
		seed      = flag.Uint64("seed", 1, "fault-schedule seed (same seed, same faults)")
		latency   = flag.Duration("latency", 0, "injected delay before each connection reaches upstream")
		errorRate = flag.Float64("error-rate", 0, "probability in [0,1] of resetting each new connection")
		blackhole = flag.Bool("blackhole", false, "accept connections and never answer them")
		truncate  = flag.Int64("truncate", 0, "cut each response after this many bytes (0 = off)")
		slowLoris = flag.Duration("slow-loris", 0, "per-chunk delay while trickling responses (0 = off)")
	)
	flag.Parse()
	if *target == "" {
		fmt.Fprintln(os.Stderr, "-target host:port is required")
		flag.Usage()
		os.Exit(2)
	}

	p, err := faultinject.Listen(*listen, *target, *seed)
	if err != nil {
		log.Fatal(err)
	}
	p.SetLatency(*latency)
	p.SetErrorRate(*errorRate)
	p.SetBlackhole(*blackhole)
	p.SetTruncate(*truncate)
	p.SetSlowLoris(*slowLoris)
	log.Printf("listening on %s -> %s (seed %d, latency %s, error-rate %g, blackhole %v, truncate %d, slow-loris %s)",
		p.Addr(), *target, *seed, *latency, *errorRate, *blackhole, *truncate, *slowLoris)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	p.Close()
	st := p.Stats()
	log.Printf("closed: accepted %d, resets %d, blackholed %d, truncations %d",
		st.Accepted, st.Resets, st.Blackholed, st.Truncations)
}
