// Command merbench regenerates every table and figure of the paper's
// evaluation (§VI), plus the post-paper "serve" experiment (build-once/
// serve-many vs rebuild-per-batch on the resident-index API). Each paper
// experiment prints the measured rows next to the paper's headline numbers;
// success is matching the SHAPE (who wins, by roughly what factor, where
// curves flatten), not absolute seconds — the substrate is a simulated Cray
// XC30, not the real one.
//
// Usage:
//
//	merbench                  # run everything at merbench scale
//	merbench -experiment fig8 # one experiment
//	merbench -quick           # smoke-test sizes (same as the Go benchmarks)
//	merbench -list            # list experiments
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/lbl-repro/meraligner/internal/buildinfo"
	"github.com/lbl-repro/meraligner/internal/expt"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("merbench: ")

	var (
		experiment = flag.String("experiment", "all", "experiment id (fig1, fig7-fig11, table1, table2, serve, service, cluster, dhtnet) or 'all'")
		quick      = flag.Bool("quick", false, "smoke-test workload sizes")
		coreScale  = flag.Int("core-scale", 0, "divide the paper's core counts by this (0 = default 16)")
		workers    = flag.Int("workers", 0, "host worker goroutines (0 = NumCPU)")
		engine     = flag.String("engine", "threaded", "engine for real-parallelism rows (fig11): threaded or sim")
		seed       = flag.Int64("seed", 1, "workload random seed")
		list       = flag.Bool("list", false, "list experiments and exit")
		outPath    = flag.String("o", "", "also write the reports to this file")
	)
	bi := buildinfo.Register(flag.CommandLine)
	logOpts := telemetry.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	if logger, err := logOpts.Logger("merbench: "); err != nil {
		log.Fatal(err)
	} else {
		telemetry.CaptureStdLog(logger)
	}
	stopProfile, err := bi.Apply("merbench")
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfile()

	if *list {
		for _, e := range expt.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	cfg := expt.DefaultConfig()
	if *quick {
		cfg = expt.QuickConfig()
	}
	if *coreScale > 0 {
		cfg.CoreScale = *coreScale
	}
	cfg.Workers = *workers
	cfg.Seed = *seed
	if *engine != "threaded" && *engine != "sim" {
		log.Fatalf("unknown engine %q (want threaded or sim)", *engine)
	}
	cfg.Engine = *engine

	var sb strings.Builder
	emit := func(rep *expt.Report, took time.Duration) {
		block := rep.String() + fmt.Sprintf("(regenerated in %.1fs)\n\n", took.Seconds())
		fmt.Print(block)
		sb.WriteString(block)
	}

	if *experiment == "all" {
		for _, e := range expt.Experiments {
			start := time.Now()
			rep, err := e.Run(cfg)
			if err != nil {
				log.Fatalf("%s: %v", e.ID, err)
			}
			emit(rep, time.Since(start))
		}
	} else {
		start := time.Now()
		rep, err := expt.Run(*experiment, cfg)
		if err != nil {
			log.Fatal(err)
		}
		emit(rep, time.Since(start))
	}

	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(sb.String()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reports written to %s\n", *outPath)
	}
}
