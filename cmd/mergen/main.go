// Command mergen generates synthetic alignment workloads: a reference
// genome with controlled repeat content, Meraculous-style contigs (FASTA),
// and a simulated read set (FASTQ), per the profiles of the paper's
// evaluation data sets.
//
// Usage:
//
//	mergen -profile human -genome 8000000 -depth 16 -out-prefix data/human
//	mergen -profile wheat ...
//	mergen -profile ecoli ...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/lbl-repro/meraligner/internal/buildinfo"
	"github.com/lbl-repro/meraligner/internal/genome"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mergen: ")

	var (
		profile   = flag.String("profile", "human", "workload profile: human | wheat | ecoli")
		genomeLen = flag.Int("genome", 0, "genome length in bp (0 = profile default)")
		depth     = flag.Float64("depth", 0, "read coverage depth (0 = profile default)")
		errRate   = flag.Float64("error", -1, "per-base error rate (-1 = profile default)")
		readLen   = flag.Int("read-len", 0, "read length (0 = profile default)")
		sorted    = flag.Bool("sorted", false, "emit reads grouped by genome position (Table I layout)")
		unpaired  = flag.Bool("unpaired", false, "disable paired-end geometry")
		seed      = flag.Int64("seed", 1, "random seed")
		outPrefix = flag.String("out-prefix", "workload", "output prefix: <p>.contigs.fa, <p>.reads.fq, <p>.genome.fa")
	)
	bi := buildinfo.Register(flag.CommandLine)
	logOpts := telemetry.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	if logger, err := logOpts.Logger("mergen: "); err != nil {
		log.Fatal(err)
	} else {
		telemetry.CaptureStdLog(logger)
	}
	stopProfile, err := bi.Apply("mergen")
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfile()

	var p genome.Profile
	switch *profile {
	case "human":
		p = genome.HumanLike(8_000_000)
	case "wheat":
		p = genome.WheatLike(10_000_000)
	case "ecoli":
		p = genome.EColiLike()
	default:
		log.Fatalf("unknown profile %q", *profile)
	}
	if *genomeLen > 0 {
		p.GenomeLen = *genomeLen
	}
	if *depth > 0 {
		p.Depth = *depth
	}
	if *errRate >= 0 {
		p.ErrorRate = *errRate
	}
	if *readLen > 0 {
		p.ReadLen = *readLen
	}
	if *unpaired {
		p.InsertMean = 0
	}
	p.SortByPosition = *sorted
	p.Seed = *seed

	ds, err := genome.Generate(p)
	if err != nil {
		log.Fatal(err)
	}

	write := func(suffix string, fn func(f *os.File) error) {
		path := *outPrefix + suffix
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			log.Fatal(err)
		}
		st, _ := f.Stat()
		fmt.Printf("wrote %s (%d bytes)\n", path, st.Size())
	}
	write(".genome.fa", func(f *os.File) error {
		return seqio.WriteFasta(f, []seqio.Seq{{Name: p.Name + "_genome", Seq: ds.Genome}})
	})
	write(".contigs.fa", func(f *os.File) error { return seqio.WriteFasta(f, ds.Contigs) })
	write(".reads.fq", func(f *os.File) error { return seqio.WriteFastq(f, ds.Reads) })

	fmt.Printf("profile %s: genome %d bp, %d contigs, %d reads (%d bp, depth %.1f, error %.4f)\n",
		p.Name, p.GenomeLen, len(ds.Contigs), len(ds.Reads), p.ReadLen, p.Depth, p.ErrorRate)
	fmt.Printf("expected exact-match (error-free) fraction: %.3f\n", p.ExpectedExactFraction())
}
