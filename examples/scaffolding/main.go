// Scaffolding: the paper's motivating scenario (§I). In the Meraculous de
// novo assembly pipeline, the scaffolder's first step aligns paired-end
// reads onto the assembled contigs; pairs whose mates land on two DIFFERENT
// contigs orient those contigs and estimate the gap between them.
//
// This example generates a paired-end workload, aligns it with merAligner,
// and derives contig-link evidence exactly the way a scaffolder would.
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/genome"
)

func main() {
	log.SetFlags(0)

	// Paired-end workload: 238 bp inserts on a 400 kbp genome, as in the
	// paper's human library.
	profile := genome.HumanLike(400_000)
	profile.Depth = 8
	ds, err := genome.Generate(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembly: %d contigs; library: %d read pairs (insert %d±%d)\n",
		len(ds.Contigs), len(ds.Reads)/2, profile.InsertMean, profile.InsertSD)

	opt := meraligner.DefaultOptions(31)
	opt.CollectAlignments = true
	res, err := meraligner.AlignThreaded(8, opt, ds.Contigs, ds.Reads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aligned %d/%d reads (%.1f%%)\n", res.AlignedReads, res.TotalReads,
		100*float64(res.AlignedReads)/float64(res.TotalReads))

	// Best alignment per read.
	best := map[int32]meraligner.Alignment{}
	for _, a := range res.Alignments {
		if cur, ok := best[a.Query]; !ok || a.Score > cur.Score {
			best[a.Query] = a
		}
	}

	// A pair whose mates hit different contigs is a scaffolding link.
	type link struct{ a, b int32 }
	links := map[link]int{}
	for qi := 0; qi < len(ds.Reads); qi += 2 {
		a1, ok1 := best[int32(qi)]
		a2, ok2 := best[int32(qi+1)]
		if !ok1 || !ok2 || a1.Target == a2.Target {
			continue
		}
		l := link{a1.Target, a2.Target}
		if l.a > l.b {
			l.a, l.b = l.b, l.a
		}
		links[l]++
	}

	// Report links with >= 2 supporting pairs, the scaffolder's evidence.
	type ev struct {
		l link
		n int
	}
	var evs []ev
	for l, n := range links {
		if n >= 2 {
			evs = append(evs, ev{l, n})
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].n > evs[j].n })
	fmt.Printf("\ncontig links with >= 2 spanning pairs: %d\n", len(evs))
	for i, e := range evs {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", len(evs)-10)
			break
		}
		fmt.Printf("  %s <-> %s: %d pairs\n",
			ds.Contigs[e.l.a].Name, ds.Contigs[e.l.b].Name, e.n)
	}

	// Sanity: links should connect contigs that are adjacent in the
	// underlying genome. Check using the generator's ground truth.
	adjacent := 0
	for _, e := range evs {
		ai, bi := int(e.l.a), int(e.l.b)
		if bi-ai == 1 || ai-bi == 1 {
			adjacent++
		}
	}
	if len(evs) > 0 {
		fmt.Printf("links connecting genome-adjacent contigs: %d/%d\n", adjacent, len(evs))
	}
}
