// Snapshot lifecycle: build the seed index once, save it as a .merx
// snapshot, reopen it memory-mapped, and verify that the mapped index
// serves byte-identical SAM — the "build once, serve everywhere" flow from
// the README. A serving fleet runs exactly this shape: one builder writes
// the snapshot, N replicas Open it and share one physical copy of the
// table through the page cache.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/genome"
)

func main() {
	log.SetFlags(0)

	// A 300 kbp genome sampled at depth 3 — big enough that the build
	// visibly costs something and the load visibly doesn't.
	profile := genome.HumanLike(300_000)
	profile.Depth = 3
	profile.InsertMean = 0
	ds, err := genome.Generate(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d contigs, %d reads\n", len(ds.Contigs), len(ds.Reads))

	// Build the index from scratch — the expensive step a snapshot saves.
	buildStart := time.Now()
	built, err := meraligner.Build(4, meraligner.DefaultIndexOptions(31), ds.Contigs)
	if err != nil {
		log.Fatal(err)
	}
	buildWall := time.Since(buildStart)

	// Save it: a versioned, checksummed .merx file (docs/INDEX_FORMAT.md).
	dir, err := os.MkdirTemp("", "merx-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "index.merx")
	if err := built.Save(path); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("built in %v, saved %d MiB snapshot\n", buildWall.Round(time.Millisecond), st.Size()>>20)

	// Reopen it mapped — this is the serving cold start.
	openStart := time.Now()
	loaded, err := meraligner.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer loaded.Close()
	fmt.Printf("opened mapped in %v (%.0fx faster than the build)\n",
		time.Since(openStart).Round(time.Microsecond),
		buildWall.Seconds()/time.Since(openStart).Seconds())

	// Align the same reads with both and require byte-identical SAM.
	qopt := meraligner.DefaultQueryOptions()
	qopt.CollectAlignments = true
	var builtSAM, loadedSAM bytes.Buffer
	for _, run := range []struct {
		a   *meraligner.Aligner
		buf *bytes.Buffer
	}{{built, &builtSAM}, {loaded, &loadedSAM}} {
		res, err := run.a.Align(context.Background(), ds.Reads, qopt)
		if err != nil {
			log.Fatal(err)
		}
		if err := meraligner.WriteSAM(run.buf, res, run.a.Targets(), ds.Reads); err != nil {
			log.Fatal(err)
		}
	}
	if !bytes.Equal(builtSAM.Bytes(), loadedSAM.Bytes()) {
		log.Fatal("parity FAILED: SAM from the mapped snapshot differs from the built index")
	}
	fmt.Printf("parity: SAM byte-identical between built and mapped index (%d bytes)\n", builtSAM.Len())
}
