// Distributed: run the full merAligner pipeline on a simulated 3,072-core
// PGAS machine (128 nodes x 24 cores) and print the phase breakdown,
// communication statistics and cache effectiveness — a window into exactly
// what the strong-scaling experiments measure.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/genome"
)

func main() {
	log.SetFlags(0)
	cores := flag.Int("cores", 3072, "simulated cores (24 per node)")
	genomeLen := flag.Int("genome", 4_000_000, "genome length")
	flag.Parse()

	profile := genome.HumanLike(*genomeLen)
	profile.Depth = 10
	profile.InsertMean = 0
	ds, err := genome.Generate(profile)
	if err != nil {
		log.Fatal(err)
	}

	mach := meraligner.Edison(*cores)
	fmt.Printf("simulated machine: %d cores = %d nodes x %d\n", mach.Threads, mach.Nodes(), mach.PPN)
	fmt.Printf("workload: %d contigs (%d bp genome), %d reads\n\n",
		len(ds.Contigs), profile.GenomeLen, len(ds.Reads))

	opt := meraligner.DefaultOptions(51)
	res, err := meraligner.Align(mach, opt, ds.Contigs, ds.Reads)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("simulated phase breakdown (wall = slowest thread, barriers between phases):")
	for _, p := range res.Phases {
		fmt.Printf("  %-24s %10.4fs   comp %9.4fs  comm %9.4fs  io %8.4fs\n",
			p.Name, p.Wall, p.MaxComp, p.MaxComm, p.MaxIO)
	}
	fmt.Printf("  %-24s %10.4fs\n\n", "TOTAL", res.TotalWall())

	fmt.Printf("reads aligned:        %d/%d (%.1f%%)\n", res.AlignedReads, res.TotalReads,
		100*float64(res.AlignedReads)/float64(res.TotalReads))
	fmt.Printf("exact-match fast path: %d reads (%.1f%% of aligned)\n", res.ExactPathReads,
		100*float64(res.ExactPathReads)/float64(max(1, res.AlignedReads)))
	fmt.Printf("throughput:            %.2fM reads/s (simulated)\n",
		float64(res.TotalReads)/res.TotalWall()/1e6)
	fmt.Printf("seed lookups:          %d, Smith-Waterman calls: %d\n", res.SeedLookups, res.SWCalls)
	fmt.Printf("seed cache:            %.1f%% hit rate\n", 100*res.SeedCache.HitRate())
	fmt.Printf("target cache:          %.1f%% hit rate\n", 100*res.TargetCache.HitRate())
	fmt.Printf("index:                 %d distinct seeds over %d fragments (%d single-copy)\n",
		res.IndexStats.DistinctSeeds, res.IndexStats.Fragments, res.IndexStats.SingleCopyFrags)
	fmt.Printf("align-phase comm:      seed lookups %.4fs, target fetches %.4fs (slowest thread)\n",
		res.CommSeedLookupMax, res.CommFetchTargetMax)
}
