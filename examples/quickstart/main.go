// Quickstart: generate a tiny workload in memory, build the seed index
// once, serve two read batches against the resident index, and print the
// first few alignments.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/genome"
)

func main() {
	log.SetFlags(0)

	// A 200 kbp genome sampled at depth 4 with 0.5% sequencing error.
	profile := genome.HumanLike(200_000)
	profile.Depth = 4
	profile.InsertMean = 0
	ds, err := genome.Generate(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d contigs, %d reads of %d bp\n",
		len(ds.Contigs), len(ds.Reads), profile.ReadLen)

	// Build the seed index once (the paper's defaults for seed length 31)…
	a, err := meraligner.Build(8, meraligner.DefaultIndexOptions(31), ds.Contigs)
	if err != nil {
		log.Fatal(err)
	}
	st := a.IndexStats()
	fmt.Printf("index: %d distinct seeds, %d locations, built in %.3fs, ~%d MiB resident\n",
		st.DistinctSeeds, st.TotalLocs, a.BuildWall(), a.ResidentBytes()>>20)

	// …then serve any number of query batches against it. Each Align call
	// is independent, concurrency-safe, and context-cancellable.
	qopt := meraligner.DefaultQueryOptions()
	qopt.CollectAlignments = true
	var res *meraligner.Results
	half := len(ds.Reads) / 2
	for bi, batch := range [][]meraligner.Seq{ds.Reads[:half], ds.Reads[half:]} {
		if res, err = a.Align(context.Background(), batch, qopt); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d: aligned %d/%d reads (%.1f%%), %d alignments, %d via the exact-match fast path, %.3fs\n",
			bi, res.AlignedReads, res.TotalReads,
			100*float64(res.AlignedReads)/float64(res.TotalReads),
			res.TotalAlignments, res.ExactPathReads, res.TotalRealWall())
	}

	fmt.Println("\nfirst alignments of the last batch (query  target  strand  score  qspan  tspan  cigar):")
	shown := res.Alignments
	if len(shown) > 5 {
		shown = shown[:5]
	}
	tmp := &meraligner.Results{Alignments: shown}
	// Alignment query indexes are batch-relative: pass the batch slice.
	if err := meraligner.WriteAlignments(os.Stdout, tmp, ds.Contigs, ds.Reads[half:]); err != nil {
		log.Fatal(err)
	}
}
