// Quickstart: generate a tiny workload in memory, align it with the public
// API in threaded mode, and print the first few alignments.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/genome"
)

func main() {
	log.SetFlags(0)

	// A 200 kbp genome sampled at depth 4 with 0.5% sequencing error.
	profile := genome.HumanLike(200_000)
	profile.Depth = 4
	profile.InsertMean = 0
	ds, err := genome.Generate(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d contigs, %d reads of %d bp\n",
		len(ds.Contigs), len(ds.Reads), profile.ReadLen)

	// Align with the paper's defaults for seed length 31.
	opt := meraligner.DefaultOptions(31)
	opt.CollectAlignments = true
	res, err := meraligner.AlignThreaded(8, opt, ds.Contigs, ds.Reads)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("aligned %d/%d reads (%.1f%%), %d alignments, %d via the exact-match fast path\n",
		res.AlignedReads, res.TotalReads,
		100*float64(res.AlignedReads)/float64(res.TotalReads),
		res.TotalAlignments, res.ExactPathReads)
	for _, p := range res.Phases {
		fmt.Printf("  %-24s %8.3fs\n", p.Name, p.RealWall)
	}

	fmt.Println("\nfirst alignments (query  target  strand  score  qspan  tspan  cigar):")
	shown := res.Alignments
	if len(shown) > 5 {
		shown = shown[:5]
	}
	tmp := &meraligner.Results{Alignments: shown}
	if err := meraligner.WriteAlignments(os.Stdout, tmp, ds.Contigs, ds.Reads); err != nil {
		log.Fatal(err)
	}
}
