// E. coli single-node comparison (the scenario of Fig 11): merAligner in
// real-parallel threaded mode against the BWA-mem-like and Bowtie2-like
// baselines on an E. coli-scale workload, sweeping core counts and printing
// genuine wall-clock times. The baselines' serial index construction is
// what flattens their curves while merAligner keeps scaling.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/baseline"
	"github.com/lbl-repro/meraligner/internal/genome"
)

func main() {
	log.SetFlags(0)
	genomeLen := flag.Int("genome", 1_000_000, "genome length (full E. coli: 4640000)")
	depth := flag.Float64("depth", 4, "read depth")
	flag.Parse()

	profile := genome.EColiLike()
	profile.GenomeLen = *genomeLen
	profile.Depth = *depth
	ds, err := genome.Generate(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("E. coli-like workload: %d bp, %d contigs, %d reads; seed length 19\n\n",
		profile.GenomeLen, len(ds.Contigs), len(ds.Reads))

	fmt.Printf("%6s  %14s  %14s  %14s\n", "cores", "merAligner(s)", "bwamem-like(s)", "bowtie2-like(s)")
	for _, p := range []int{1, 2, 4, 8, 12, 24} {
		if p > runtime.NumCPU() {
			break
		}
		opt := meraligner.DefaultOptions(19)
		opt.MaxSeedHits = 200
		mer, err := meraligner.AlignThreaded(p, opt, ds.Contigs, ds.Reads)
		if err != nil {
			log.Fatal(err)
		}
		bwa, err := baseline.RunSingleNode(p, ds.Contigs, ds.Reads, baseline.BWAMemOptions())
		if err != nil {
			log.Fatal(err)
		}
		bt2, err := baseline.RunSingleNode(p, ds.Contigs, ds.Reads, baseline.Bowtie2Options())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %14.2f  %14.2f  %14.2f\n",
			p, mer.TotalRealWall(), bwa.TotalWall().Seconds(), bt2.TotalWall().Seconds())
	}
	fmt.Println("\nbaseline totals include their SERIAL index build; merAligner's build is parallel.")
}
