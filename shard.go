package meraligner

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/lbl-repro/meraligner/internal/core"
)

// Reference sharding: the producer half of the distributed alignment tier.
// SaveShards cuts one reference into N contiguous, base-balanced target
// slices and writes each as a self-contained .merx snapshot — a normal
// single-node index over its slice plus a SHRD section recording the
// shard's place in the fleet. Each snapshot is served by an ordinary
// merserved; a scatter/gather router (internal/cluster, cmd/merrouted)
// fans queries across the fleet and merges per-read results back into the
// exact output a single whole-reference node would have produced. Targets
// keep their global names and per-target coordinates, so shard alignments
// need no rebasing — the SHRD offsets exist for fleet-consistency checks
// and for reasoning about global target/fragment ids.

// ShardInfo is one shard's identity within a sharded reference: its
// position, the fleet size, and the global target/fragment offsets of its
// slice (see the SHRD section spec in docs/INDEX_FORMAT.md).
type ShardInfo = core.ShardInfo

// ShardInfo returns the shard identity of the resident index, or nil when
// it covers a whole (unsharded) reference. Shard snapshots get their
// identity from `meraligner -shard-save` via SaveShards.
func (a *Aligner) ShardInfo() *ShardInfo {
	return a.ix.ShardInfo()
}

// ShardRanges computes the contiguous [lo, hi) target ranges SaveShards
// would build, balanced by total bases (the partition of §II-A). Exposed so
// tooling can predict or display a sharding without building anything.
func ShardRanges(targets []Seq, n int) ([][2]int, error) {
	return core.ShardRanges(targets, n)
}

// SaveShards partitions targets into n shards and writes one index
// snapshot per shard under dir as shard-000.merx, shard-001.merx, ...,
// returning the written paths in shard order. Each shard's index is built
// independently with opt (identical K and build options across the fleet —
// a router refuses mixed-K fleets); threads sizes each build's worker pool.
// Snapshot writes are atomic, but the set is not transactional: a failure
// partway leaves the already-written shards on disk for the caller to
// clean up or resume over.
func SaveShards(threads int, opt IndexOptions, targets []Seq, n int, dir string) ([]string, error) {
	ranges, err := core.ShardRanges(targets, n)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("meraligner: creating shard directory: %w", err)
	}
	paths := make([]string, 0, n)
	targetBase, fragmentBase := 0, 0
	for id, r := range ranges {
		slice := targets[r[0]:r[1]]
		ix, err := core.BuildIndex(threads, opt, slice)
		if err != nil {
			return paths, fmt.Errorf("meraligner: building shard %d/%d: %w", id, n, err)
		}
		if err := ix.SetShardInfo(core.ShardInfo{
			ID: id, Count: n, TargetBase: targetBase, FragmentBase: fragmentBase,
		}); err != nil {
			return paths, err
		}
		path := filepath.Join(dir, fmt.Sprintf("shard-%03d.merx", id))
		if err := ix.Save(path); err != nil {
			return paths, fmt.Errorf("meraligner: saving shard %d/%d: %w", id, n, err)
		}
		paths = append(paths, path)
		targetBase += len(slice)
		for _, t := range slice {
			fragmentBase += core.CountTargetFragments(t.Seq.Len(), opt.K, opt.FragmentLen)
		}
	}
	return paths, nil
}
