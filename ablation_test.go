package meraligner

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// aggregation buffer size S (a tuning parameter, §III-A), the target
// fragmentation length F (§IV-A), the per-node cache budgets (§III-B), and
// the max-alignments-per-seed threshold (§IV-C). Each reports the simulated
// end-to-end time as "sim_s" so parameter effects are visible in one
// `go test -bench=Ablation` run.

import (
	"fmt"
	"testing"

	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/genome"
)

func ablationWorkload(b *testing.B) *genome.DataSet {
	b.Helper()
	p := genome.HumanLike(1_000_000)
	p.Depth = 8
	p.InsertMean = 0
	ds, err := genome.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func runAblation(b *testing.B, ds *genome.DataSet, mutate func(*core.Options)) {
	b.Helper()
	mach := Edison(120)
	opt := DefaultOptions(51)
	mutate(&opt)
	var sim float64
	for i := 0; i < b.N; i++ {
		res, err := Align(mach, opt, ds.Contigs, ds.Reads)
		if err != nil {
			b.Fatal(err)
		}
		sim = res.TotalWall()
	}
	b.ReportMetric(sim*1000, "sim_ms")
}

// BenchmarkAblationAggS sweeps the aggregation buffer size S.
func BenchmarkAblationAggS(b *testing.B) {
	ds := ablationWorkload(b)
	for _, s := range []int{1, 10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) {
			runAblation(b, ds, func(o *core.Options) { o.AggS = s })
		})
	}
}

// BenchmarkAblationFragmentLen sweeps the target fragmentation length F.
func BenchmarkAblationFragmentLen(b *testing.B) {
	ds := ablationWorkload(b)
	for _, f := range []int{0, 500, 1000, 2000, 8000} {
		b.Run(fmt.Sprintf("F=%d", f), func(b *testing.B) {
			runAblation(b, ds, func(o *core.Options) { o.FragmentLen = f })
		})
	}
}

// BenchmarkAblationCacheBudget sweeps the per-node cache budgets together.
func BenchmarkAblationCacheBudget(b *testing.B) {
	ds := ablationWorkload(b)
	for _, kb := range []int64{0, 64, 512, 4096, 32768} {
		b.Run(fmt.Sprintf("cacheKB=%d", kb), func(b *testing.B) {
			runAblation(b, ds, func(o *core.Options) {
				o.SeedCacheBytes = kb << 10
				o.TargetCacheBytes = kb << 10
			})
		})
	}
}

// BenchmarkAblationMaxSeedHits sweeps the sensitivity threshold of §IV-C.
func BenchmarkAblationMaxSeedHits(b *testing.B) {
	p := genome.WheatLike(1_000_000) // repeats make the threshold matter
	p.Depth = 6
	p.InsertMean = 0
	ds, err := genome.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, mh := range []int{0, 10, 100, 1000} {
		b.Run(fmt.Sprintf("maxHits=%d", mh), func(b *testing.B) {
			runAblation(b, ds, func(o *core.Options) { o.MaxSeedHits = mh })
		})
	}
}
