package meraligner_test

// Distributed-parity harness for the network seed DHT: the acceptance
// property of the whole tier is that aligning with seed lookups resolved
// against a remote seed-shard fleet produces byte-identical SAM to the
// local engine — across shard counts, client batch shapes (including the
// single-seed and the >MaxBatch direct paths), seed lengths, and location-
// list caps. Seed partitioning must be invisible to alignment output.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/dhtnet"
	"github.com/lbl-repro/meraligner/internal/genome"
	"github.com/lbl-repro/meraligner/internal/service"
)

// clientQuickRetry keeps failure-path tests from waiting out production
// backoffs.
func clientQuickRetry() client.RetryPolicy {
	return client.RetryPolicy{
		MaxAttempts: 2,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
	}
}

// dhtParityWorkload is a small reference + read set shared by every parity
// case; deterministic so the local baseline is stable across subtests.
func dhtParityWorkload(t *testing.T) *genome.DataSet {
	t.Helper()
	p := genome.EColiLike()
	p.GenomeLen = 40_000
	p.Depth = 1
	p.ContigMean = 5_000
	p.InsertMean = 0
	p.Seed = 77
	ds, err := genome.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// serveSeedFleet partitions al's seed table into count shard snapshots,
// serves each over httptest, and returns a warmed dhtnet client.
func serveSeedFleet(t *testing.T, al *meraligner.Aligner, count, maxBatch int) *dhtnet.Client {
	t.Helper()
	paths, err := al.SaveSeedShards(t.TempDir(), count)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := al.SeedPartitionFingerprint(count)
	if err != nil {
		t.Fatal(err)
	}
	owners := make([]string, count)
	for i, p := range paths {
		sh, err := core.LoadSeedShard(p)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sh.Close() })
		srv, err := service.NewSeedShard(service.SeedShardConfig{Shard: sh})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		owners[i] = ts.URL
	}
	c, err := dhtnet.New(dhtnet.Config{
		Owners:      owners,
		K:           al.IndexOptions().K,
		Shards:      al.SeedTableShards(),
		Fingerprint: fp,
		MaxBatch:    maxBatch,
		MaxWait:     500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	return c
}

// alignSAM runs one Align call and renders the result as SAM bytes.
func alignSAM(t *testing.T, al *meraligner.Aligner, ds *genome.DataSet, qopt meraligner.QueryOptions) []byte {
	t.Helper()
	res, err := al.Align(context.Background(), ds.Reads, qopt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := meraligner.WriteSAM(&buf, res, al.Targets(), ds.Reads); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDHTNetAlignmentParity is the distributed-parity table: every
// (k, shard count, batch shape, MaxSeedHits cap) combination must emit
// SAM byte-identical to the purely local engine.
func TestDHTNetAlignmentParity(t *testing.T) {
	ds := dhtParityWorkload(t)

	cases := []struct {
		k        int
		count    int // seed-shard fleet size
		maxBatch int // client MaxBatch; 0 = default coalesced path
		maxHits  int // QueryOptions.MaxSeedHits cap; 0 = uncapped
	}{
		{k: 21, count: 1, maxBatch: 0, maxHits: 0},
		{k: 21, count: 2, maxBatch: 0, maxHits: 0},
		{k: 21, count: 4, maxBatch: 0, maxHits: 0},
		{k: 21, count: 2, maxBatch: 1, maxHits: 0},  // every seed its own frame
		{k: 21, count: 2, maxBatch: 16, maxHits: 0}, // per-read groups exceed MaxBatch → direct path
		{k: 21, count: 4, maxBatch: 0, maxHits: 4},  // location-list cap applied remotely
		{k: 51, count: 2, maxBatch: 0, maxHits: 0},
		{k: 51, count: 2, maxBatch: 16, maxHits: 4},
	}

	// Local baselines are shared across fleet shapes: one per (k, maxHits).
	type key struct{ k, maxHits int }
	aligners := map[int]*meraligner.Aligner{}
	baselines := map[key][]byte{}
	for _, tc := range cases {
		if _, ok := aligners[tc.k]; ok {
			continue
		}
		al, err := meraligner.Build(2, meraligner.DefaultIndexOptions(tc.k), ds.Contigs)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { al.Close() })
		aligners[tc.k] = al
	}

	qoptFor := func(maxHits int) meraligner.QueryOptions {
		qopt := meraligner.DefaultQueryOptions()
		qopt.MaxSeedHits = maxHits
		qopt.CollectAlignments = true
		return qopt
	}

	for _, tc := range cases {
		name := fmt.Sprintf("k=%d/shards=%d/maxBatch=%d/maxHits=%d", tc.k, tc.count, tc.maxBatch, tc.maxHits)
		t.Run(name, func(t *testing.T) {
			al := aligners[tc.k]
			bk := key{tc.k, tc.maxHits}
			want, ok := baselines[bk]
			if !ok {
				want = alignSAM(t, al, ds, qoptFor(tc.maxHits))
				baselines[bk] = want
			}

			c := serveSeedFleet(t, al, tc.count, tc.maxBatch)
			qopt := qoptFor(tc.maxHits)
			qopt.SeedResolver = c
			got := alignSAM(t, al, ds, qopt)

			if !bytes.Equal(want, got) {
				// Locate the first divergent line for a readable failure.
				wl := bytes.Split(want, []byte("\n"))
				gl := bytes.Split(got, []byte("\n"))
				for i := 0; i < len(wl) && i < len(gl); i++ {
					if !bytes.Equal(wl[i], gl[i]) {
						t.Fatalf("SAM diverges at line %d:\nlocal:  %s\nremote: %s", i+1, wl[i], gl[i])
					}
				}
				t.Fatalf("SAM length diverges: local %d bytes, remote %d bytes", len(want), len(got))
			}

			st := c.Stats()
			if st.Seeds == 0 {
				t.Fatal("remote run resolved no seeds — resolver was not exercised")
			}
			switch {
			case tc.maxBatch == 16:
				if st.Direct == 0 {
					t.Fatalf("maxBatch=16 never took the direct path: %+v", st)
				}
			case tc.maxBatch == 0:
				if st.BatchedSeeds == 0 {
					t.Fatalf("default config never coalesced: %+v", st)
				}
			}
		})
	}
}

// TestDHTNetParityDegradedFailsLoud: with a fleet node drained, alignment
// against the fleet must fail typed — a distributed engine that silently
// drops one shard's seeds would emit plausible but wrong SAM.
func TestDHTNetParityDegradedFailsLoud(t *testing.T) {
	ds := dhtParityWorkload(t)
	al, err := meraligner.Build(2, meraligner.DefaultIndexOptions(21), ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	defer al.Close()

	paths, err := al.SaveSeedShards(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	owners := make([]string, len(paths))
	servers := make([]*service.SeedShardServer, len(paths))
	for i, p := range paths {
		sh, err := core.LoadSeedShard(p)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sh.Close() })
		srv, err := service.NewSeedShard(service.SeedShardConfig{Shard: sh})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		owners[i] = ts.URL
		servers[i] = srv
	}
	c, err := dhtnet.New(dhtnet.Config{
		Owners: owners,
		K:      al.IndexOptions().K,
		Shards: al.SeedTableShards(),
		Retry:  clientQuickRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := servers[1].Drain(ctx); err != nil {
		t.Fatal(err)
	}

	qopt := meraligner.DefaultQueryOptions()
	qopt.CollectAlignments = true
	qopt.SeedResolver = c
	if _, err := al.Align(context.Background(), ds.Reads, qopt); err == nil {
		t.Fatal("alignment succeeded with half the seed table unreachable")
	}
}
