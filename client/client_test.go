package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// fake returns a client against a handler.
func fake(t *testing.T, h http.HandlerFunc) *Client {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return New(ts.URL)
}

func TestRetryErrorFrom429(t *testing.T) {
	c := fake(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	_, err := c.Align(context.Background(), AlignRequest{Reads: []Read{{Name: "r", Seq: "ACGT"}}})
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want RetryError", err)
	}
	if re.After != 2*time.Second {
		t.Fatalf("Retry-After parsed as %s, want 2s", re.After)
	}
}

func TestStatusErrorCarriesTooShortDetail(t *testing.T) {
	c := fake(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(ErrorResponse{Error: "too short", TooShort: []string{"stub"}})
	})
	_, err := c.Align(context.Background(), AlignRequest{Reads: []Read{{Name: "stub", Seq: "A"}}})
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want StatusError", err)
	}
	if se.Code != http.StatusBadRequest || len(se.TooShort) != 1 || se.TooShort[0] != "stub" {
		t.Fatalf("StatusError lost detail: %+v", se)
	}
}

func TestStatusErrorFromOpaqueBody(t *testing.T) {
	c := fake(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "kaboom", http.StatusInternalServerError)
	})
	err := c.Health(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusInternalServerError || se.Message != "kaboom" {
		t.Fatalf("opaque error mapped to %v", err)
	}
}

func TestAlignStreamDecodesNDJSON(t *testing.T) {
	c := fake(t, func(w http.ResponseWriter, r *http.Request) {
		var req AlignRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("server decode: %v", err)
		}
		enc := json.NewEncoder(w)
		for _, rd := range req.Reads {
			enc.Encode(ReadResult{Name: rd.Name, Status: StatusUnmapped})
		}
	})
	var got []string
	err := c.AlignStream(context.Background(),
		AlignRequest{Reads: []Read{{Name: "a", Seq: "ACGT"}, {Name: "b", Seq: "ACGT"}}},
		func(rr ReadResult) error {
			got = append(got, rr.Name)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("streamed %v, want [a b]", got)
	}
}
