// Package client is the Go client of merserved — the merAligner network
// alignment service — and the home of its JSON wire schema. The service
// (internal/service) and this package share these types, so the wire
// contract lives in exactly one place.
//
// A Client talks to one server:
//
//	c := client.New("http://127.0.0.1:8490")
//	resp, err := c.Align(ctx, client.AlignRequest{Reads: []client.Read{
//		{Name: "r1", Seq: "ACGTACGT..."},
//	}})
//
// Single-read and small-batch calls are coalesced server-side by the
// dynamic micro-batcher, so many concurrent Clients share one resident
// engine call per batching window. Overload surfaces as *RetryError (HTTP
// 429 with Retry-After); other failures as *StatusError.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

// Read is one query read on the wire.
type Read struct {
	Name string `json:"name"`
	Seq  string `json:"seq"`
	Qual string `json:"qual,omitempty"`
}

// AlignRequest is the JSON body of POST /v1/align and /v1/align/stream.
// The same endpoints also accept a raw FASTQ body (gzip transparently
// sniffed) with any non-JSON content type.
type AlignRequest struct {
	Reads []Read `json:"reads"`
}

// Alignment is one reported hit of a read, in wire terms: the target is
// named, the strand is "+"/"-", and intervals are half-open as in the
// native API.
type Alignment struct {
	Target string `json:"target"`
	Strand string `json:"strand"`
	Score  int    `json:"score"`
	QStart int    `json:"qstart"`
	QEnd   int    `json:"qend"`
	TStart int    `json:"tstart"`
	TEnd   int    `json:"tend"`
	Cigar  string `json:"cigar,omitempty"`
	Exact  bool   `json:"exact,omitempty"`
	// NM is the SAM edit distance of the alignment, computed server-side
	// (the server holds the target bases; a scatter/gather router does
	// not). -1 when underivable — the SAM writer then omits the tag.
	NM int `json:"nm"`
}

// CanonicalizeAlignments sorts one read's wire alignments into the
// canonical deterministic output order — the wire-side twin of the root
// package's CanonicalizeAlignments, comparing the same keys through their
// wire spellings (target by name; strand "+" before "-"). A router merging
// per-shard alignment lists applies this and lands on exactly the order a
// single whole-reference server emits.
func CanonicalizeAlignments(as []Alignment) {
	if len(as) < 2 {
		return
	}
	sort.SliceStable(as, func(i, j int) bool {
		x, y := &as[i], &as[j]
		if x.Score != y.Score {
			return x.Score > y.Score
		}
		if x.Target != y.Target {
			return x.Target < y.Target
		}
		if x.TStart != y.TStart {
			return x.TStart < y.TStart
		}
		if x.Strand != y.Strand {
			return x.Strand == "+"
		}
		if x.QStart != y.QStart {
			return x.QStart < y.QStart
		}
		if x.QEnd != y.QEnd {
			return x.QEnd < y.QEnd
		}
		if x.TEnd != y.TEnd {
			return x.TEnd < y.TEnd
		}
		return x.Cigar < y.Cigar
	})
}

// Read statuses on the wire (ReadResult.Status).
const (
	StatusOK       = "ok"        // at least one alignment reported
	StatusUnmapped = "unmapped"  // aligned nowhere
	StatusTooShort = "too_short" // shorter than the seed length K
)

// ReadResult is one read's outcome. Alignments are in the canonical
// deterministic order (see CanonicalizeAlignments); the first — which is
// always a best-scoring one — is the primary SAM record.
type ReadResult struct {
	Name       string      `json:"name"`
	Status     string      `json:"status"`
	Alignments []Alignment `json:"alignments,omitempty"`
}

// AlignResponse is the JSON body of a successful POST /v1/align; on
// /v1/align/stream the same ReadResult objects arrive as NDJSON lines.
type AlignResponse struct {
	Reads []ReadResult `json:"reads"`
	// DegradedShards names the shard nodes whose results are missing from
	// this response — only ever set by a scatter/gather router running with
	// the serve-partial-results degraded policy. Empty (and omitted) on
	// whole responses, so a complete router response stays byte-identical
	// to a single-node one.
	DegradedShards []string `json:"degraded_shards,omitempty"`
}

// ErrorResponse is the JSON body of a non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// TooShort names the reads shorter than the seed length K when the
	// request was rejected with 400 for that reason.
	TooShort []string `json:"too_short,omitempty"`
	// RequestID echoes the request's trace identifier (also in the
	// X-Request-Id response header), so a failed call can be correlated
	// with server-side logs and /debug/requests traces.
	RequestID string `json:"request_id,omitempty"`
}

// Stats is the JSON body of GET /v1/stats (single-index servers) and of
// GET /v1/{ref}/stats (catalog servers): the service's live counters,
// micro-batcher observations, and latency quantiles, plus the resident
// index's identity.
type Stats struct {
	// Ref names the reference these stats belong to on a multi-genome
	// catalog server; empty on a single-index server.
	Ref string `json:"ref,omitempty"`

	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`

	// Request accounting.
	Requests         int64 `json:"requests"`
	Rejected         int64 `json:"rejected"` // 429s (admission queue full)
	Canceled         int64 `json:"canceled"` // client disconnects
	Reads            int64 `json:"reads"`    // reads accepted into the engine
	TooShort         int64 `json:"too_short_reads"`
	DeadlineRejected int64 `json:"deadline_rejected"` // 503s: propagated deadline below the admission floor

	// Micro-batcher observations. MeanBatchReads > 1 is the signature of
	// coalescing actually happening under concurrent single-read load.
	Batches          int64   `json:"batches"`
	BatchedReads     int64   `json:"batched_reads"`
	CoalescedBatches int64   `json:"coalesced_batches"` // batches gluing >= 2 requests
	MeanBatchReads   float64 `json:"mean_batch_reads"`
	MaxBatchReads    int64   `json:"max_batch_reads"`
	QueueReads       int64   `json:"queue_reads"` // queued right now

	// Latency quantiles: request wall time (enqueue to response ready) and
	// per-read engine time (from the engine's per-query stats).
	RequestP50Ms   float64 `json:"request_p50_ms"`
	RequestP99Ms   float64 `json:"request_p99_ms"`
	AlignReadP50Us float64 `json:"align_read_p50_us"`
	AlignReadP99Us float64 `json:"align_read_p99_us"`

	// Resident index.
	K             int   `json:"k"`
	DistinctSeeds int64 `json:"distinct_seeds"`
	TotalLocs     int64 `json:"total_locs"`
	ResidentBytes int64 `json:"resident_bytes"`

	// Effective batching knobs.
	MaxBatch  int     `json:"max_batch"`
	MaxWaitMs float64 `json:"max_wait_ms"`
}

// TargetInfo is one reference sequence of a GET /v1/targets body: its name
// and length, the material of one SAM @SQ header line.
type TargetInfo struct {
	Name   string `json:"name"`
	Length int    `json:"length"`
}

// ShardMeta identifies a served index as one slice of a sharded reference:
// its position in the fleet and the global target/fragment offsets of its
// slice (recorded by `meraligner -shard-save`, carried in the snapshot's
// SHRD section).
type ShardMeta struct {
	ID           int `json:"id"`            // this shard's position, 0-based
	Count        int `json:"count"`         // shards in the fleet
	TargetBase   int `json:"target_base"`   // global index of this shard's first target
	FragmentBase int `json:"fragment_base"` // global id of this shard's first fragment
}

// TargetsResponse is the JSON body of GET /v1/targets (and, on a catalog
// server, GET /v1/{ref}/targets): the served reference's sequences in @SQ
// order, the index's seed length, and — when the index is a shard — its
// place in the fleet. A scatter/gather router assembles its global target
// catalog and SAM header from the shards' TargetsResponses, in shard order.
type TargetsResponse struct {
	K       int          `json:"k"`
	Shard   *ShardMeta   `json:"shard,omitempty"`
	Targets []TargetInfo `json:"targets"`
}

// Circuit-breaker states of one router replica, as reported in
// ReplicaStatus.State and the merrouted_replica_state metric. closed
// admits traffic; open admits none (consecutive failures crossed the
// threshold); half_open admits one trial call at a time while readiness
// probes and trial traffic decide between closing and re-opening.
const (
	BreakerClosed   = "closed"
	BreakerHalfOpen = "half_open"
	BreakerOpen     = "open"
)

// ReplicaStatus is one replica's live state inside a ShardStatus: its
// circuit breaker, last probe result, and per-replica RPC counters.
type ReplicaStatus struct {
	Addr      string  `json:"addr"`
	State     string  `json:"state"`    // BreakerClosed | BreakerHalfOpen | BreakerOpen
	Up        bool    `json:"up"`       // last readiness probe succeeded
	Calls     int64   `json:"calls"`    // align RPCs issued (attempts)
	Retries   int64   `json:"retries"`  // attempts beyond the first
	Errors    int64   `json:"errors"`   // RPCs that exhausted their retries
	Inflight  int64   `json:"inflight"` // RPCs in flight right now
	CallP50Ms float64 `json:"call_p50_ms"`
	CallP99Ms float64 `json:"call_p99_ms"`
}

// ShardStatus is one upstream shard's live state in a router's /v1/stats
// body. With replicated shards the top-level counters aggregate across
// replicas, Addr joins the replica addresses with "|", Up means at least
// one replica is up, and Replicas carries the per-replica breakdown.
type ShardStatus struct {
	ID        int             `json:"id"`
	Addr      string          `json:"addr"`
	Up        bool            `json:"up"`       // at least one replica's last probe succeeded
	Calls     int64           `json:"calls"`    // align RPCs issued (attempts)
	Retries   int64           `json:"retries"`  // attempts beyond the first
	Errors    int64           `json:"errors"`   // RPCs that exhausted their retries
	Inflight  int64           `json:"inflight"` // RPCs in flight right now
	CallP50Ms float64         `json:"call_p50_ms"`
	CallP99Ms float64         `json:"call_p99_ms"`
	Replicas  []ReplicaStatus `json:"replicas,omitempty"`
}

// RouterStats is the JSON body of GET /v1/stats on a scatter/gather router
// (merrouted): request/coalescing counters shaped like a single node's
// Stats, plus the degraded-policy counters and per-shard health.
type RouterStats struct {
	Version  string `json:"version"`
	Draining bool   `json:"draining"`
	Ready    bool   `json:"ready"`    // global target catalog assembled
	Degraded string `json:"degraded"` // configured policy: "fail" or "partial"

	Requests         int64   `json:"requests"`
	Rejected         int64   `json:"rejected"`
	Canceled         int64   `json:"canceled"`
	Reads            int64   `json:"reads"`
	TooShort         int64   `json:"too_short_reads"`
	DegradedServed   int64   `json:"degraded_requests"` // partial responses served
	FailedRequests   int64   `json:"failed_requests"`   // requests failed on shard errors
	Batches          int64   `json:"batches"`
	BatchedReads     int64   `json:"batched_reads"`
	CoalescedBatches int64   `json:"coalesced_batches"`
	MeanBatchReads   float64 `json:"mean_batch_reads"`
	MaxBatchReads    int64   `json:"max_batch_reads"`
	QueueReads       int64   `json:"queue_reads"`
	Failovers        int64   `json:"failovers"`         // scatters re-launched on another replica after a failure
	Hedges           int64   `json:"hedges"`            // speculative second-replica launches
	HedgeWins        int64   `json:"hedge_wins"`        // hedges that answered before the primary
	DeadlineRejected int64   `json:"deadline_rejected"` // requests rejected as already doomed by their deadline
	RequestP50Ms     float64 `json:"request_p50_ms"`
	RequestP99Ms     float64 `json:"request_p99_ms"`

	K      int           `json:"k"`
	Shards []ShardStatus `json:"shards"`
}

// RefInfo is one servable reference of a catalog server (one element of
// the GET /v1/refs body): its name and whether its index is currently
// memory-mapped and resident.
type RefInfo struct {
	Ref           string `json:"ref"`
	Open          bool   `json:"open"`
	ResidentBytes int64  `json:"resident_bytes,omitempty"` // 0 unless open
}

// CatalogCounters are the index-lifecycle counters of a catalog server:
// residency against the budget, lazy opens, LRU evictions, zero-downtime
// hot-swaps, and serves of indexes too large for the budget.
type CatalogCounters struct {
	OpenRefs       int   `json:"open_refs"`
	ResidentBytes  int64 `json:"resident_bytes"`
	BudgetBytes    int64 `json:"budget_bytes"` // 0 = unlimited
	Opens          int64 `json:"opens"`
	Evictions      int64 `json:"evictions"`
	HotSwaps       int64 `json:"hot_swaps"`
	UncachedServes int64 `json:"uncached_serves"`
}

// CatalogStats is the JSON body of GET /v1/stats on a catalog server: the
// lifecycle counters plus one Stats per reference that has served traffic.
type CatalogStats struct {
	Version  string          `json:"version"`
	Draining bool            `json:"draining"`
	Catalog  CatalogCounters `json:"catalog"`
	Refs     []Stats         `json:"refs,omitempty"`
}

// FromSeqs converts native reads to wire reads.
func FromSeqs(reads []meraligner.Seq) []Read {
	out := make([]Read, len(reads))
	for i, r := range reads {
		out[i] = Read{Name: r.Name, Seq: r.Seq.String(), Qual: string(r.Qual)}
	}
	return out
}

// RetryError is an HTTP 429: the service's admission queue is full. Back
// off for After and retry.
type RetryError struct {
	After time.Duration
}

// Error formats the overload report including the retry delay.
func (e *RetryError) Error() string {
	return fmt.Sprintf("client: server overloaded, retry after %s", e.After)
}

// StatusError is any other non-2xx response.
type StatusError struct {
	Code     int
	Message  string
	TooShort []string // read names, when the 400 was a too-short rejection
	// After is the server's Retry-After hint when it sent one (503s during
	// warmup or drain carry it); zero otherwise. RetryPolicy honors it.
	After time.Duration
}

// Error formats the HTTP status and the server's message.
func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Code, e.Message)
}

// Client talks to one merserved instance — the whole server, or (with
// WithRef / NewRef) one reference of a multi-genome catalog server. It is
// safe for concurrent use.
type Client struct {
	base  string
	ref   string
	hc    *http.Client
	retry *RetryPolicy // nil: single attempt
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport limits, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetry makes every request retry transient failures under p: 429s
// (honoring the server's Retry-After), 502/503/504s, and transport errors,
// with capped jittered exponential backoff between attempts. Alignment is
// a pure function of the request, so retrying a POST /v1/align is safe.
// Without this option a Client makes exactly one attempt per call.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { pc := p; c.retry = &pc }
}

// WithRef scopes the Client to one reference of a catalog server: Align,
// AlignSAM, AlignStream, and Stats target /v1/<ref>/... instead of
// /v1/.... Refs, CatalogStats, and Health stay server-wide.
func WithRef(ref string) Option {
	return func(c *Client) { c.ref = ref }
}

// New returns a Client for the service at base (e.g. "http://host:8490").
func New(base string, opts ...Option) *Client {
	c := &Client{base: base, hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// NewRef returns a Client scoped to one reference of a catalog server:
// shorthand for New(base, WithRef(ref), opts...).
func NewRef(base, ref string, opts ...Option) *Client {
	return New(base, append([]Option{WithRef(ref)}, opts...)...)
}

// v1 resolves a /v1 path under the Client's reference scope.
func (c *Client) v1(path string) string {
	if c.ref == "" {
		return c.base + "/v1" + path
	}
	return c.base + "/v1/" + url.PathEscape(c.ref) + path
}

// Align posts one batch and returns the per-read results.
func (c *Client) Align(ctx context.Context, req AlignRequest) (*AlignResponse, error) {
	body, err := c.post(ctx, "/align", req, "application/json")
	if err != nil {
		return nil, err
	}
	defer body.Close()
	var out AlignResponse
	if err := json.NewDecoder(body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding response: %w", err)
	}
	return &out, nil
}

// AlignSAM posts one batch and returns the response as a SAM document
// (header plus one record set), byte-identical to a local WriteSAM over a
// direct Align call.
func (c *Client) AlignSAM(ctx context.Context, req AlignRequest) ([]byte, error) {
	body, err := c.post(ctx, "/align", req, "text/x-sam")
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return io.ReadAll(body)
}

// AlignStream posts one batch to the streaming endpoint and calls fn for
// each ReadResult as it arrives (NDJSON). fn returning an error aborts the
// stream and surfaces that error.
func (c *Client) AlignStream(ctx context.Context, req AlignRequest, fn func(ReadResult) error) error {
	body, err := c.post(ctx, "/align/stream", req, "application/x-ndjson")
	if err != nil {
		return err
	}
	defer body.Close()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rr ReadResult
		if err := json.Unmarshal(sc.Bytes(), &rr); err != nil {
			return fmt.Errorf("client: decoding stream line: %w", err)
		}
		if err := fn(rr); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Stats fetches the service's live statistics.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.v1("/stats"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.asError(resp)
	}
	var out Stats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding stats: %w", err)
	}
	return &out, nil
}

// Refs lists the references a catalog server can serve and which are
// currently resident (GET /v1/refs). Server-wide: the Client's WithRef
// scope does not apply.
func (c *Client) Refs(ctx context.Context) ([]RefInfo, error) {
	var out []RefInfo
	if err := c.getJSON(ctx, c.base+"/v1/refs", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// CatalogStats fetches a catalog server's server-wide stats document
// (GET /v1/stats): lifecycle counters plus per-reference stats. The
// Client's WithRef scope does not apply.
func (c *Client) CatalogStats(ctx context.Context) (*CatalogStats, error) {
	var out CatalogStats
	if err := c.getJSON(ctx, c.base+"/v1/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Targets fetches the served reference's catalog (GET /v1/targets; with a
// WithRef scope, GET /v1/{ref}/targets): target names and lengths in @SQ
// order, the seed length K, and the shard identity when the server holds
// one slice of a sharded reference.
func (c *Client) Targets(ctx context.Context) (*TargetsResponse, error) {
	var out TargetsResponse
	if err := c.getJSON(ctx, c.v1("/targets"), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready probes /readyz: nil once the server is warmed and servable, an
// error while it is still opening or warming its index (503), draining, or
// unreachable. Orchestrators and routers gate traffic on it; Health stays
// the liveness probe.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.asError(resp)
	}
	return nil
}

// HeaderDeadlineMs propagates the caller's remaining time budget down one
// hop, in integer milliseconds. The client stamps it from the attempt
// context's deadline; a server's admission control may reject work that
// cannot finish inside it instead of computing an answer nobody will read.
const HeaderDeadlineMs = "X-Deadline-Ms"

// InjectDeadline stamps HeaderDeadlineMs from ctx's deadline, if any. An
// already-expired deadline is stamped as 0 — the server's rejection is
// cheaper and clearer than a mid-flight cancellation.
// InjectDeadline is exported for sibling network tiers (the seed-lookup
// client) that speak the same deadline convention outside this package.
func InjectDeadline(ctx context.Context, h http.Header) {
	d, ok := ctx.Deadline()
	if !ok {
		return
	}
	h.Set(HeaderDeadlineMs, strconv.FormatInt(max(time.Until(d).Milliseconds(), 0), 10))
}

// DeadlineFromHeader reads HeaderDeadlineMs from an incoming request's
// headers: the remaining budget and true when present and well-formed.
// A malformed value reads as absent — a confused client should not get
// its work rejected over a header it may not even know it sent.
func DeadlineFromHeader(h http.Header) (time.Duration, bool) {
	v := h.Get(HeaderDeadlineMs)
	if v == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms < 0 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

// getJSON fetches one URL and decodes its JSON body into out, retrying
// transient failures when the Client has a retry policy.
func (c *Client) getJSON(ctx context.Context, url string, out any) error {
	return c.attempt(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		telemetry.Inject(ctx, req.Header)
		InjectDeadline(ctx, req.Header)
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return c.asError(resp)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decoding response: %w", err)
		}
		return nil
	})
}

// Health probes /healthz: nil when serving, an error when unreachable or
// draining.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.asError(resp)
	}
	return nil
}

// post sends an AlignRequest and returns the response body on 200, or a
// typed error otherwise. With WithRetry configured, transient failures are
// retried under the policy before the last error surfaces.
func (c *Client) post(ctx context.Context, path string, req AlignRequest, accept string) (io.ReadCloser, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var body io.ReadCloser
	err = c.attempt(ctx, func(ctx context.Context) error {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.v1(path), bytes.NewReader(payload))
		if err != nil {
			return err
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("Accept", accept)
		telemetry.Inject(ctx, hreq.Header)
		InjectDeadline(ctx, hreq.Header)
		resp, err := c.hc.Do(hreq)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			defer resp.Body.Close()
			return c.asError(resp)
		}
		body = resp.Body
		return nil
	})
	if err != nil {
		return nil, err
	}
	return body, nil
}

// attempt runs one request function under the Client's retry policy, or
// exactly once when none is configured.
func (c *Client) attempt(ctx context.Context, fn func(context.Context) error) error {
	if c.retry == nil {
		return fn(ctx)
	}
	return c.retry.Do(ctx, fn)
}

// asError converts a non-2xx response into *RetryError or *StatusError.
func (c *Client) asError(resp *http.Response) error {
	after := parseRetryAfter(resp.Header.Get("Retry-After"))
	if resp.StatusCode == http.StatusTooManyRequests {
		if after <= 0 {
			after = time.Second
		}
		return &RetryError{After: after}
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var er ErrorResponse
	if json.Unmarshal(raw, &er) == nil && er.Error != "" {
		return &StatusError{Code: resp.StatusCode, Message: er.Error, TooShort: er.TooShort, After: after}
	}
	return &StatusError{Code: resp.StatusCode, Message: string(bytes.TrimSpace(raw)), After: after}
}

// parseRetryAfter decodes a Retry-After header's delay-seconds form (the
// only form merserved emits); 0 when absent or unparseable.
func parseRetryAfter(s string) time.Duration {
	if s == "" {
		return 0
	}
	secs, err := strconv.ParseFloat(s, 64)
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs * float64(time.Second))
}
