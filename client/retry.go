package client

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"
)

// RetryPolicy shapes bounded retries against an overloaded or briefly
// unavailable merserved: capped exponential backoff with jitter, honoring
// the server's Retry-After hint when one came back (429 overload, 503
// warmup/drain). End users opt a Client in with WithRetry; the
// scatter/gather router (internal/cluster) drives the same policy itself so
// it can count every attempt per shard.
//
// The zero value is usable: each field independently falls back to its
// default, so RetryPolicy{MaxAttempts: 5} means "five attempts, default
// backoff".
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, including the first.
	// Default 3.
	MaxAttempts int

	// BaseDelay is the backoff before the first retry; it doubles per
	// retry. Default 50ms.
	BaseDelay time.Duration

	// MaxDelay caps the backoff growth. Default 2s.
	MaxDelay time.Duration

	// Jitter spreads each delay uniformly over [delay*(1-Jitter),
	// delay*(1+Jitter)] so synchronized clients don't retry in lockstep.
	// Default 0.2; negative disables jitter.
	Jitter float64

	// AttemptTimeout bounds each individual attempt (a per-call deadline
	// layered under the caller's context). 0 means no per-attempt bound.
	AttemptTimeout time.Duration
}

// DefaultRetryPolicy returns the defaults spelled out on the fields: 3
// attempts, 50ms doubling to a 2s cap, 20% jitter, no per-attempt timeout.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.2}
}

// withDefaults fills unset fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Jitter == 0 {
		p.Jitter = d.Jitter
	}
	return p
}

// Retryable reports whether err is worth another attempt: server overload
// (429), transient unavailability (502/503/504 — a shard warming, draining,
// or behind a flaky proxy), per-attempt timeouts, and transport errors.
// Other HTTP statuses (400 bad request, 404, 413...) mean the same request
// would fail the same way, and a finished caller context means stop: ctx is
// the *caller's* context, so a deadline-exceeded error with ctx already done
// is the caller's own budget expiring — retrying against a spent budget can
// only lose — whereas the same error with ctx still live is one attempt's
// AttemptTimeout firing, which the next attempt may well beat.
func Retryable(ctx context.Context, err error) bool {
	if err == nil || errors.Is(err, context.Canceled) {
		return false
	}
	if ctx.Err() != nil && errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var re *RetryError
	if errors.As(err, &re) {
		return true
	}
	var se *StatusError
	if errors.As(err, &se) {
		switch se.Code {
		case 502, 503, 504:
			return true
		}
		return false
	}
	// Everything else — transport errors, per-attempt deadline expiries —
	// is transient from the caller's point of view.
	return true
}

// RetryAfterHint extracts the server's explicit backoff request from err,
// when it sent one: the Retry-After of a 429 (*RetryError) or of a 503
// (*StatusError.After). ok is false when the server gave no hint.
func RetryAfterHint(err error) (d time.Duration, ok bool) {
	var re *RetryError
	if errors.As(err, &re) && re.After > 0 {
		return re.After, true
	}
	var se *StatusError
	if errors.As(err, &se) && se.After > 0 {
		return se.After, true
	}
	return 0, false
}

// Backoff returns the delay before retry number `retry` (1 for the first
// retry), already jittered. A server hint (see RetryAfterHint) overrides
// the exponential schedule when it asks for longer — the server knows its
// own recovery time; ignoring it just burns an attempt.
func (p RetryPolicy) Backoff(retry int, hint time.Duration) time.Duration {
	p = p.withDefaults()
	if retry < 1 {
		retry = 1
	}
	d := p.BaseDelay
	for i := 1; i < retry && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if hint > d {
		d = hint
	}
	if p.Jitter > 0 {
		spread := 1 + p.Jitter*(2*rand.Float64()-1)
		d = time.Duration(float64(d) * spread)
	}
	return d
}

// Do runs fn until it succeeds, returns a non-retryable error, exhausts
// MaxAttempts, or ctx is done — whichever comes first; the last attempt's
// error is returned. Each attempt gets its own context, bounded by
// AttemptTimeout when set, so one hung connection costs one attempt, not
// the whole call.
func (p RetryPolicy) Do(ctx context.Context, fn func(context.Context) error) error {
	p = p.withDefaults()
	for retry := 1; ; retry++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if p.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		err := fn(actx)
		cancel()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil || retry >= p.MaxAttempts || !Retryable(ctx, err) {
			return err
		}
		hint, _ := RetryAfterHint(err)
		timer := time.NewTimer(p.Backoff(retry, hint))
		select {
		case <-ctx.Done():
			timer.Stop()
			return err
		case <-timer.C:
		}
	}
}
