package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{&RetryError{After: time.Second}, true},
		{&StatusError{Code: 503, Message: "warming"}, true},
		{&StatusError{Code: 502, Message: "bad gateway"}, true},
		{&StatusError{Code: 504, Message: "timeout"}, true},
		{&StatusError{Code: 400, Message: "bad request"}, false},
		{&StatusError{Code: 404, Message: "no such ref"}, false},
		{&StatusError{Code: 413, Message: "too large"}, false},
		{errors.New("dial tcp: connection refused"), true}, // transport error
		{fmt.Errorf("wrapped: %w", &StatusError{Code: 400}), false},
		{fmt.Errorf("wrapped: %w", &RetryError{}), true},
	}
	for _, c := range cases {
		if got := Retryable(context.Background(), c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestRetryableCallerDeadline: a deadline-exceeded error with the caller's
// own context done is the caller's budget expiring — not retryable — while
// the same error under a live caller context is a per-attempt timeout worth
// another try.
func TestRetryableCallerDeadline(t *testing.T) {
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if Retryable(expired, context.DeadlineExceeded) {
		t.Error("caller's own expired deadline classified retryable")
	}
	if Retryable(expired, fmt.Errorf("Post \"/v1/align\": %w", context.DeadlineExceeded)) {
		t.Error("wrapped deadline error with expired caller ctx classified retryable")
	}
	if !Retryable(context.Background(), context.DeadlineExceeded) {
		t.Error("per-attempt timeout with live caller ctx classified non-retryable")
	}
	// A live caller ctx with a 503 stays retryable; an expired one still
	// reports non-deadline errors on their own merits (Do's ctx.Err() check
	// is what stops the loop).
	if !Retryable(expired, &StatusError{Code: 503}) {
		t.Error("503 classification should not depend on ctx")
	}
}

func TestBackoffBoundsAndHint(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Jitter: -1}
	// No jitter: the schedule is exactly base*2^(retry-1) capped at MaxDelay.
	wants := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, want := range wants {
		if got := p.Backoff(i+1, 0); got != want*time.Millisecond {
			t.Errorf("Backoff(%d) = %s, want %s", i+1, got, want*time.Millisecond)
		}
	}
	// A longer server hint overrides the schedule; a shorter one does not.
	if got := p.Backoff(1, 300*time.Millisecond); got != 300*time.Millisecond {
		t.Errorf("hinted Backoff = %s, want the 300ms hint", got)
	}
	if got := p.Backoff(3, time.Millisecond); got != 40*time.Millisecond {
		t.Errorf("Backoff with short hint = %s, want the 40ms schedule", got)
	}
	// Jittered delays stay within [d*(1-j), d*(1+j)].
	pj := RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.2}
	for i := 0; i < 50; i++ {
		d := pj.Backoff(1, 0)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("jittered Backoff = %s, outside [80ms, 120ms]", d)
		}
	}
}

// TestBackoffHintExceedsMaxDelay locks in the documented behavior: a server
// hint longer than MaxDelay overrides the cap — the server knows its own
// recovery time, and sleeping less just burns an attempt. Jitter still
// applies around the hinted delay.
func TestBackoffHintExceedsMaxDelay(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Jitter: -1}
	hint := 400 * time.Millisecond
	if got := p.Backoff(1, hint); got != hint {
		t.Fatalf("Backoff with %s hint = %s, want the hint to override the %s cap", hint, got, p.MaxDelay)
	}
	if got := p.Backoff(5, hint); got != hint {
		t.Fatalf("late-retry Backoff with hint = %s, want %s", got, hint)
	}
	pj := RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Jitter: 0.2}
	for i := 0; i < 50; i++ {
		d := pj.Backoff(1, hint)
		if d < 320*time.Millisecond || d > 480*time.Millisecond {
			t.Fatalf("jittered hinted Backoff = %s, outside [320ms, 480ms]", d)
		}
	}
}

func TestRetryAfterHint(t *testing.T) {
	if d, ok := RetryAfterHint(&RetryError{After: 2 * time.Second}); !ok || d != 2*time.Second {
		t.Errorf("hint from 429 = %s, %v", d, ok)
	}
	if d, ok := RetryAfterHint(&StatusError{Code: 503, After: time.Second}); !ok || d != time.Second {
		t.Errorf("hint from 503 = %s, %v", d, ok)
	}
	if _, ok := RetryAfterHint(&StatusError{Code: 503}); ok {
		t.Error("hint reported where the server sent none")
	}
	if _, ok := RetryAfterHint(errors.New("boom")); ok {
		t.Error("hint reported for a transport error")
	}
}

func TestDoStopsOnNonRetryable(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	attempts := 0
	err := p.Do(context.Background(), func(context.Context) error {
		attempts++
		return &StatusError{Code: 400, Message: "bad request"}
	})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("err = %v", err)
	}
	if attempts != 1 {
		t.Fatalf("%d attempts on a 400, want 1", attempts)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Jitter: -1}
	attempts := 0
	err := p.Do(context.Background(), func(context.Context) error {
		attempts++
		return &StatusError{Code: 503, Message: "warming"}
	})
	if err == nil || attempts != 4 {
		t.Fatalf("attempts = %d (err %v), want 4 attempts and the last error", attempts, err)
	}
}

func TestDoRespectsCallerContext(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 100, BaseDelay: 20 * time.Millisecond, Jitter: -1}
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := p.Do(ctx, func(context.Context) error {
		attempts++
		return &StatusError{Code: 503}
	})
	if err == nil {
		t.Fatal("Do returned nil after cancel")
	}
	if attempts > 3 {
		t.Fatalf("%d attempts despite an early cancel", attempts)
	}
}

// TestDoCancelMidBackoff: a caller cancel during the backoff sleep returns
// promptly with the last attempt's error instead of sleeping out the delay.
func TestDoCancelMidBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Second, Jitter: -1}
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	start := time.Now()
	errc := make(chan error, 1)
	go func() {
		errc <- p.Do(ctx, func(context.Context) error {
			attempts++
			return &StatusError{Code: 503, Message: "warming"}
		})
	}()
	time.Sleep(20 * time.Millisecond) // let the first attempt fail and the backoff timer start
	cancel()
	select {
	case err := <-errc:
		var se *StatusError
		if !errors.As(err, &se) || se.Code != 503 {
			t.Fatalf("err = %v, want the last attempt's 503", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Do did not return after cancel mid-backoff")
	}
	if attempts != 1 {
		t.Fatalf("%d attempts, want 1 (cancel hit during the first backoff)", attempts)
	}
	if elapsed := time.Since(start); elapsed >= p.BaseDelay {
		t.Fatalf("Do slept the full %s backoff despite the cancel", p.BaseDelay)
	}
}

func TestDoAttemptTimeoutBoundsEachAttempt(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, Jitter: -1, AttemptTimeout: 10 * time.Millisecond}
	var deadlines int
	err := p.Do(context.Background(), func(actx context.Context) error {
		if _, ok := actx.Deadline(); ok {
			deadlines++
		}
		<-actx.Done()
		return actx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if deadlines != 2 {
		t.Fatalf("%d attempts saw a deadline, want 2", deadlines)
	}
}

// TestClientWithRetrySurvives503 is the end-to-end path: a Client opted in
// with WithRetry rides out a warming server without the caller noticing.
func TestClientWithRetrySurvives503(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"warming: index not ready"}`)
			return
		}
		var req AlignRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out := AlignResponse{Reads: make([]ReadResult, len(req.Reads))}
		for i, rd := range req.Reads {
			out.Reads[i] = ReadResult{Name: rd.Name, Status: StatusUnmapped}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	}))
	defer ts.Close()

	cl := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}))
	resp, err := cl.Align(context.Background(), AlignRequest{Reads: []Read{{Name: "r", Seq: "ACGT"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Reads) != 1 || resp.Reads[0].Status != StatusUnmapped {
		t.Fatalf("resp = %+v", resp)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

// TestClientWithoutRetrySingleAttempt: without WithRetry a Client makes
// exactly one attempt and surfaces the 503 (with its Retry-After hint).
func TestClientWithoutRetrySingleAttempt(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "2")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"warming: index not ready"}`)
	}))
	defer ts.Close()

	cl := New(ts.URL)
	_, err := cl.Align(context.Background(), AlignRequest{Reads: []Read{{Name: "r", Seq: "ACGT"}}})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want a 503 StatusError", err)
	}
	if se.After != 2*time.Second {
		t.Fatalf("After = %s, want the server's 2s hint", se.After)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1", calls.Load())
	}
}
