package meraligner_test

// Benchmark and recorded baseline of the network seed DHT: the same engine
// aligning the same reads with seed lookups against the local table versus
// a 3-node seed-shard fleet over loopback HTTP. Everything shares one host,
// so the dht row measures lookup RPC overhead (framing, HTTP, coalescing),
// not scale-out — the recorded contract is SAM byte-identity plus bounded
// overhead, with the coalescer's seeds-per-frame factor as the aggregation
// signal (the paper's aggregated remote stores, as a serving tier).

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/expt"
)

func dhtNetComparison(tb testing.TB, reads int) *expt.DHTNetComparison {
	tb.Helper()
	ds := clusterWorkload(tb)
	rs := ds.Reads
	if len(rs) > reads {
		rs = rs[:reads]
	}
	opt := core.DefaultOptions(19)
	opt.MaxSeedHits = 200
	cmp, err := expt.RunDHTNetComparison(2, opt, ds.Contigs, rs, 3)
	if err != nil {
		tb.Fatal(err)
	}
	if !cmp.Identical {
		tb.Fatal("DHT-resolved SAM differs from local SAM")
	}
	return cmp
}

// BenchmarkDHTNetTier runs the two seed stores side by side on one workload.
func BenchmarkDHTNetTier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp := dhtNetComparison(b, 1000)
		b.ReportMetric(cmp.Local.ReadsPerSec, "local-reads/s")
		b.ReportMetric(cmp.Remote.ReadsPerSec, "dht-reads/s")
	}
}

// TestRecordDHTNetBaseline writes BENCH_dhtnet.json — the committed network
// seed DHT baseline — when MERALIGNER_RECORD_BASELINE=1:
//
//	MERALIGNER_RECORD_BASELINE=1 go test -run TestRecordDHTNetBaseline .
func TestRecordDHTNetBaseline(t *testing.T) {
	if os.Getenv("MERALIGNER_RECORD_BASELINE") == "" {
		t.Skip("set MERALIGNER_RECORD_BASELINE=1 to (re)record BENCH_dhtnet.json")
	}
	var best *expt.DHTNetComparison
	for i := 0; i < 3; i++ {
		cmp := dhtNetComparison(t, 2000)
		if best == nil || cmp.Remote.WallS < best.Remote.WallS {
			best = cmp
		}
	}

	perFrame := 0.0
	if best.Lookup.Batches > 0 {
		perFrame = float64(best.Lookup.BatchedSeeds) / float64(best.Lookup.Batches)
	}
	baseline := struct {
		Workload      string  `json:"workload"`
		Nodes         int     `json:"seed_shard_nodes"`
		K             int     `json:"k"`
		HostCPUs      int     `json:"host_cpus"`
		GoOS          string  `json:"goos"`
		GoArch        string  `json:"goarch"`
		Identical     bool    `json:"sam_byte_identical"`
		LocalRPS      float64 `json:"local_reads_per_s"`
		DHTRPS        float64 `json:"dht_reads_per_s"`
		Lookups       int64   `json:"seed_lookups"`
		Frames        int64   `json:"lookup_frames"`
		SeedsPerFrame float64 `json:"seeds_per_frame"`
		Direct        int64   `json:"direct_calls"`
		Retries       int64   `json:"retries"`
		DHTOverhead   float64 `json:"dht_overhead_x"`
		Description   string  `json:"description"`
	}{
		Workload: "ecoli-like 300kb, depth 2, 100bp reads, k=19",
		Nodes:    best.Nodes, K: 19,
		HostCPUs: runtime.NumCPU(), GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		Identical:     best.Identical,
		LocalRPS:      best.Local.ReadsPerSec,
		DHTRPS:        best.Remote.ReadsPerSec,
		Lookups:       best.Lookup.Seeds,
		Frames:        best.Lookup.Batches,
		SeedsPerFrame: perFrame,
		Direct:        best.Lookup.Direct,
		Retries:       best.Lookup.Retries,
		DHTOverhead: func() float64 {
			if best.Remote.ReadsPerSec == 0 {
				return 0
			}
			return best.Local.ReadsPerSec / best.Remote.ReadsPerSec
		}(),
		Description: "network seed DHT baseline: the seed table hash-partitioned into 3 seed-shard " +
			"snapshots (real -dht-save artifacts reopened from disk) served by merserved -seed-shard " +
			"over loopback HTTP, vs the same engine probing its local table; best of 3. SAM " +
			"byte-identity between the runs is asserted before timing. dht_overhead_x is local/dht " +
			"throughput — every seed lookup becomes a coalesced RPC, so > 1 is expected; the " +
			"contract is identity plus bounded overhead, and real deployments spread seed shards " +
			"across hosts for seed tables no single node can hold (the paper's §IV motivation). " +
			"seeds_per_frame is the client coalescer's aggregation factor across concurrent workers",
	}
	out, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_dhtnet.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recorded BENCH_dhtnet.json:\n%s", out)
	if !best.Identical {
		t.Error("DHT-resolved SAM not byte-identical to local")
	}
}
