package meraligner

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/lbl-repro/meraligner/internal/genome"
	"github.com/lbl-repro/meraligner/internal/seqio"
)

func apiWorkload(t testing.TB) *genome.DataSet {
	p := genome.HumanLike(80_000)
	p.Depth = 3
	p.InsertMean = 0
	ds, err := genome.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestAlignSimulated(t *testing.T) {
	ds := apiWorkload(t)
	mach := Edison(48)
	mach.Workers = 4
	opt := DefaultOptions(31)
	opt.CollectAlignments = true
	res, err := Align(mach, opt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	if res.AlignedReads == 0 || len(res.Alignments) == 0 {
		t.Fatal("nothing aligned through the public API")
	}
	if res.TotalWall() <= 0 {
		t.Error("no simulated time")
	}
}

func TestAlignThreaded(t *testing.T) {
	ds := apiWorkload(t)
	opt := DefaultOptions(31)
	res, err := AlignThreaded(4, opt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	if res.AlignedReads == 0 {
		t.Fatal("nothing aligned")
	}
	if res.TotalRealWall() <= 0 {
		t.Error("no measured wall time")
	}
}

func TestAlignFilesEndToEnd(t *testing.T) {
	ds := apiWorkload(t)
	dir := t.TempDir()

	// Targets as FASTA.
	tf, err := os.Create(filepath.Join(dir, "contigs.fa"))
	if err != nil {
		t.Fatal(err)
	}
	if err := seqio.WriteFasta(tf, ds.Contigs); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	// Queries as FASTQ.
	qf, err := os.Create(filepath.Join(dir, "reads.fq"))
	if err != nil {
		t.Fatal(err)
	}
	if err := seqio.WriteFastq(qf, ds.Reads[:500]); err != nil {
		t.Fatal(err)
	}
	qf.Close()

	opt := DefaultOptions(31)
	opt.CollectAlignments = true
	res, targets, queries, err := AlignFiles(4, opt, tf.Name(), qf.Name())
	if err != nil {
		t.Fatal(err)
	}
	if res.AlignedReads == 0 {
		t.Fatal("nothing aligned from files")
	}
	var buf bytes.Buffer
	if err := WriteAlignments(&buf, res, targets, queries); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "contig_") || !strings.Contains(out, "read_") {
		t.Errorf("alignment output missing names:\n%s", out[:min(400, len(out))])
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != len(res.Alignments) {
		t.Error("output line count mismatch")
	}
}

func TestReadQueriesSeqDB(t *testing.T) {
	ds := apiWorkload(t)
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "reads.seqdb"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seqio.WriteSeqDB(f, ds.Reads[:200], 64); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := ReadQueries(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("read %d records, want 200", len(got))
	}
}

func TestWriteSAM(t *testing.T) {
	ds := apiWorkload(t)
	opt := DefaultOptions(31)
	opt.CollectAlignments = true
	res, err := AlignThreaded(4, opt, ds.Contigs, ds.Reads[:300])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSAM(&buf, res, ds.Contigs, ds.Reads[:300]); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var headers, mapped, unmapped, secondary int
	for _, l := range lines {
		if strings.HasPrefix(l, "@") {
			headers++
			continue
		}
		fields := strings.Split(l, "\t")
		if len(fields) < 11 {
			t.Fatalf("short SAM line: %q", l)
		}
		var flag int
		if _, err := fmt.Sscanf(fields[1], "%d", &flag); err != nil {
			t.Fatal(err)
		}
		switch {
		case flag&0x4 != 0:
			unmapped++
		case flag&0x100 != 0:
			secondary++
		default:
			mapped++
		}
	}
	if headers != len(ds.Contigs)+2 {
		t.Errorf("headers = %d, want %d", headers, len(ds.Contigs)+2)
	}
	if mapped == 0 {
		t.Error("no primary alignments in SAM")
	}
	// Every read appears at least once (primary or unmapped).
	if mapped+unmapped != 300 {
		t.Errorf("primary+unmapped = %d, want 300", mapped+unmapped)
	}
}

func TestReadQueriesMissingFile(t *testing.T) {
	if _, err := ReadQueries("/nonexistent/path"); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := ReadFasta("/nonexistent/path"); err == nil {
		t.Error("missing file accepted")
	}
}
