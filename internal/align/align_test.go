package align

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lbl-repro/meraligner/internal/dna"
)

func codes(s string) []byte { return dna.MustPack(s).Codes() }

func randCodes(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(4))
	}
	return out
}

func TestScoringValidate(t *testing.T) {
	if err := DefaultScoring.Validate(); err != nil {
		t.Errorf("default scoring invalid: %v", err)
	}
	if err := (Scoring{Match: 0, Mismatch: 1}).Validate(); err == nil {
		t.Error("Match=0 accepted")
	}
	if err := (Scoring{Match: 1, Mismatch: -1}).Validate(); err == nil {
		t.Error("negative mismatch accepted")
	}
}

func TestScoreIdentical(t *testing.T) {
	q := codes("ACGTACGTAC")
	if got := Score(q, q, DefaultScoring); got != 10 {
		t.Errorf("self-alignment score = %d, want 10", got)
	}
}

func TestScoreDisjoint(t *testing.T) {
	// Local alignment of unrelated short sequences can still pick up a
	// 1-base match; all-A vs all-C shares nothing.
	q := codes("AAAAAAAA")
	tg := codes("CCCCCCCC")
	if got := Score(q, tg, DefaultScoring); got != 0 {
		t.Errorf("disjoint score = %d, want 0", got)
	}
}

func TestScoreEmptyInputs(t *testing.T) {
	if Score(nil, codes("ACGT"), DefaultScoring) != 0 {
		t.Error("empty query score != 0")
	}
	if Score(codes("ACGT"), nil, DefaultScoring) != 0 {
		t.Error("empty target score != 0")
	}
	r := Local(nil, nil, DefaultScoring)
	if r.Score != 0 || len(r.Cigar) != 0 {
		t.Error("Local on empty inputs not zero")
	}
}

func TestScoreKnownMismatch(t *testing.T) {
	// One substitution in the middle: best local alignment is the longer
	// exact flank unless spanning pays. With match=1, mismatch=3:
	// spanning scores 9*1-3=6, right flank alone = 5, left = 4 -> flank 5?
	// Actually spanning: 10 bases, 9 match 1 mismatch = 9-3 = 6 > 5.
	q := codes("ACGTAGGTAC") // vs ACGTACGTAC: position 5 differs (G vs C)
	tg := codes("ACGTACGTAC")
	if got := Score(q, tg, DefaultScoring); got != 6 {
		t.Errorf("score = %d, want 6", got)
	}
}

func TestScoreGap(t *testing.T) {
	// Query = target with one base deleted. Spanning alignment:
	// 12 matches - (open 5 + extend 2) = 12 - 7 = 5; best flank = 6 matches.
	// With 13-base target: flanks are 6 and 6... spanning = 12-7=5 < 6.
	q := codes("ACGTAC" + "GTACGT")        // 12 bases
	tg := codes("ACGTAC" + "A" + "GTACGT") // 13 bases, insertion in middle
	sc := Scoring{Match: 2, Mismatch: 3, GapOpen: 2, GapExtend: 1}
	// Spanning: 12*2 - (2+1) = 21; flank alone: 6*2=12.
	if got := Score(q, tg, sc); got != 21 {
		t.Errorf("gapped score = %d, want 21", got)
	}
}

func TestLocalTracebackExact(t *testing.T) {
	q := codes("ACGTACGT")
	res := Local(q, q, DefaultScoring)
	if res.Score != 8 || res.QStart != 0 || res.QEnd != 8 || res.TStart != 0 || res.TEnd != 8 {
		t.Errorf("unexpected result %+v", res)
	}
	if res.Cigar.String() != "8M" {
		t.Errorf("cigar = %s, want 8M", res.Cigar)
	}
}

func TestLocalTracebackSubstring(t *testing.T) {
	tg := codes("TTTTTACGTACGTTTTTT")
	q := codes("ACGTACGT")
	res := Local(q, tg, DefaultScoring)
	if res.Score != 8 {
		t.Fatalf("score = %d, want 8", res.Score)
	}
	if res.TStart != 5 || res.TEnd != 13 {
		t.Errorf("target span [%d,%d), want [5,13)", res.TStart, res.TEnd)
	}
	if res.Cigar.String() != "8M" {
		t.Errorf("cigar = %s", res.Cigar)
	}
}

func TestLocalTracebackWithGap(t *testing.T) {
	sc := Scoring{Match: 2, Mismatch: 3, GapOpen: 2, GapExtend: 1}
	q := codes("ACGTACGTACGT")
	tg := codes("ACGTACAGTACGT") // one extra A at position 6
	res := Local(q, tg, sc)
	if res.Score != 21 {
		t.Fatalf("score = %d, want 21", res.Score)
	}
	if res.Cigar.QuerySpan() != 12 {
		t.Errorf("query span = %d, want 12", res.Cigar.QuerySpan())
	}
	if res.Cigar.TargetSpan() != 13 {
		t.Errorf("target span = %d, want 13", res.Cigar.TargetSpan())
	}
}

// Property: traceback result is internally consistent and its cigar rescores
// to the reported score.
func TestLocalCigarRescoresProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randCodes(rng, 5+rng.Intn(60))
		tg := randCodes(rng, 5+rng.Intn(120))
		sc := DefaultScoring
		res := Local(q, tg, sc)
		if res.Score != Score(q, tg, sc) {
			return false
		}
		if res.Score == 0 {
			return true
		}
		// Walk the cigar and recompute the score.
		qi, ti, total := res.QStart, res.TStart, 0
		for _, op := range res.Cigar {
			switch op.Op {
			case 'M':
				for x := 0; x < op.Len; x++ {
					total += sc.score(q[qi], tg[ti])
					qi++
					ti++
				}
			case 'I':
				total -= sc.GapOpen + op.Len*sc.GapExtend
				qi += op.Len
			case 'D':
				total -= sc.GapOpen + op.Len*sc.GapExtend
				ti += op.Len
			}
		}
		return total == res.Score && qi == res.QEnd && ti == res.TEnd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- SWAR primitive tests ---

func TestSWARAddSat(t *testing.T) {
	for _, s := range []laneSpec{spec8, spec16} {
		rng := rand.New(rand.NewSource(int64(s.bits)))
		for trial := 0; trial < 2000; trial++ {
			x, y := rng.Uint64(), rng.Uint64()
			got := s.addsat(x, y)
			for l := 0; l < s.lanes; l++ {
				sh := uint(l) * s.bits
				a := (x >> sh) & s.max
				b := (y >> sh) & s.max
				want := a + b
				if want > s.max {
					want = s.max
				}
				if g := (got >> sh) & s.max; g != want {
					t.Fatalf("bits=%d lane %d: addsat(%#x,%#x) lane = %#x, want %#x", s.bits, l, a, b, g, want)
				}
			}
		}
	}
}

func TestSWARSubSat(t *testing.T) {
	for _, s := range []laneSpec{spec8, spec16} {
		rng := rand.New(rand.NewSource(int64(s.bits) + 1))
		for trial := 0; trial < 2000; trial++ {
			x, y := rng.Uint64(), rng.Uint64()
			got := s.subsat(x, y)
			for l := 0; l < s.lanes; l++ {
				sh := uint(l) * s.bits
				a := (x >> sh) & s.max
				b := (y >> sh) & s.max
				want := uint64(0)
				if a > b {
					want = a - b
				}
				if g := (got >> sh) & s.max; g != want {
					t.Fatalf("bits=%d lane %d: subsat(%#x,%#x) = %#x, want %#x", s.bits, l, a, b, g, want)
				}
			}
		}
	}
}

func TestSWARMaxAndGE(t *testing.T) {
	for _, s := range []laneSpec{spec8, spec16} {
		rng := rand.New(rand.NewSource(int64(s.bits) + 2))
		for trial := 0; trial < 2000; trial++ {
			x, y := rng.Uint64(), rng.Uint64()
			gotMax := s.maxu(x, y)
			ge := s.geMask(x, y)
			anyGT := s.anyGT(x, y)
			wantAny := false
			for l := 0; l < s.lanes; l++ {
				sh := uint(l) * s.bits
				a := (x >> sh) & s.max
				b := (y >> sh) & s.max
				want := max(a, b)
				if g := (gotMax >> sh) & s.max; g != want {
					t.Fatalf("bits=%d: maxu lane %d = %#x, want %#x", s.bits, l, g, want)
				}
				bit := (ge >> (sh + s.bits - 1)) & 1
				if (a >= b) != (bit == 1) {
					t.Fatalf("bits=%d: geMask lane %d wrong for %#x vs %#x", s.bits, l, a, b)
				}
				if a > b {
					wantAny = true
				}
			}
			if anyGT != wantAny {
				t.Fatalf("bits=%d: anyGT = %v, want %v", s.bits, anyGT, wantAny)
			}
		}
	}
}

func TestSWARFillExpandShift(t *testing.T) {
	if spec8.fill(0xAB) != 0xABABABABABABABAB {
		t.Error("fill8 broken")
	}
	if spec16.fill(0x1234) != 0x1234123412341234 {
		t.Error("fill16 broken")
	}
	if spec8.expand(0x8080000000000080) != 0xFFFF0000000000FF {
		t.Errorf("expand8 = %#x", spec8.expand(0x8080000000000080))
	}
	if spec8.shiftLanes(0x01020304050607FF) != 0x020304050607FF00 {
		t.Error("shiftLanes8 broken")
	}
	if hiBitCount(spec8, 0x8080808080808080) != 8 {
		t.Error("hiBitCount broken")
	}
}

// --- Striped vs reference equivalence ---

func TestStripedMatchesReferenceRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randCodes(rng, 1+rng.Intn(150))
		tg := randCodes(rng, 1+rng.Intn(300))
		want := Score(q, tg, DefaultScoring)
		got := StripedScore(q, tg, DefaultScoring)
		return got.Score == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestStripedMatchesReferenceSimilarSequences(t *testing.T) {
	// The realistic case: query is a mutated substring of the target.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		tg := randCodes(rng, 300+rng.Intn(300))
		start := rng.Intn(len(tg) - 120)
		q := append([]byte(nil), tg[start:start+100+rng.Intn(20)]...)
		for i := range q {
			if rng.Float64() < 0.03 {
				q[i] = byte(rng.Intn(4))
			}
		}
		want := Score(q, tg, DefaultScoring)
		got := StripedScore(q, tg, DefaultScoring)
		if got.Score != want {
			t.Fatalf("trial %d: striped %d != reference %d", trial, got.Score, want)
		}
	}
}

func TestStripedMatchesReferenceVariedScoring(t *testing.T) {
	scorings := []Scoring{
		{Match: 1, Mismatch: 3, GapOpen: 5, GapExtend: 2},
		{Match: 2, Mismatch: 1, GapOpen: 1, GapExtend: 1},
		{Match: 5, Mismatch: 4, GapOpen: 10, GapExtend: 1},
		{Match: 1, Mismatch: 1, GapOpen: 0, GapExtend: 1},
	}
	rng := rand.New(rand.NewSource(7))
	for _, sc := range scorings {
		for trial := 0; trial < 60; trial++ {
			q := randCodes(rng, 1+rng.Intn(90))
			tg := randCodes(rng, 1+rng.Intn(150))
			want := Score(q, tg, sc)
			got := StripedScore(q, tg, sc)
			if got.Score != want {
				t.Fatalf("scoring %+v: striped %d != reference %d (q=%v t=%v)", sc, got.Score, want, q, tg)
			}
		}
	}
}

func TestStriped16BitRescue(t *testing.T) {
	// A long perfect match with Match=2 exceeds 255 and must overflow into
	// the 16-bit kernel with a correct score.
	rng := rand.New(rand.NewSource(8))
	q := randCodes(rng, 400)
	sc := Scoring{Match: 2, Mismatch: 3, GapOpen: 5, GapExtend: 2}
	res := StripedScore(q, q, sc)
	if !res.Overflow || res.UsedLanes != 16 {
		t.Errorf("expected 8-bit overflow, got %+v", res)
	}
	if res.Score != 800 {
		t.Errorf("score = %d, want 800", res.Score)
	}
}

func TestStripedNearSaturationBoundary(t *testing.T) {
	// Scores straddling the 8-bit boundary (255-bias) must stay exact.
	rng := rand.New(rand.NewSource(9))
	sc := DefaultScoring // bias = 3, boundary at 252
	for n := 245; n <= 260; n++ {
		q := randCodes(rng, n)
		res := StripedScore(q, q, sc)
		if res.Score != n {
			t.Errorf("n=%d: score %d (overflow=%v)", n, res.Score, res.Overflow)
		}
	}
}

func TestStripedTEnd(t *testing.T) {
	tg := codes("TTTTTACGTACGTTT")
	q := codes("ACGTACG")
	res := StripedScore(q, tg, DefaultScoring)
	if res.Score != 7 {
		t.Fatalf("score = %d, want 7", res.Score)
	}
	if res.TEnd != 12 {
		t.Errorf("TEnd = %d, want 12", res.TEnd)
	}
}

func TestStripedEmpty(t *testing.T) {
	if r := StripedScore(nil, codes("ACGT"), DefaultScoring); r.Score != 0 {
		t.Error("empty query")
	}
	if r := StripedScore(codes("ACGT"), nil, DefaultScoring); r.Score != 0 {
		t.Error("empty target")
	}
}

func TestProfileReuseAcrossTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	q := randCodes(rng, 100)
	p := NewProfile(q, DefaultScoring)
	for i := 0; i < 20; i++ {
		tg := randCodes(rng, 200)
		want := Score(q, tg, DefaultScoring)
		if got := p.Align(tg); got.Score != want {
			t.Fatalf("reused profile: %d != %d", got.Score, want)
		}
	}
}

// --- ExtendSeed ---

func TestExtendSeedFindsEmbeddedMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tg := randCodes(rng, 1000)
	q := append([]byte(nil), tg[400:500]...)
	// Seed: query offset 10 matches target offset 410, length 21.
	res := ExtendSeed(q, tg, 10, 410, 21, DefaultScoring, 16)
	if res.Score != 100 {
		t.Fatalf("score = %d, want 100", res.Score)
	}
	if res.TStart != 400 || res.TEnd != 500 {
		t.Errorf("target span [%d,%d), want [400,500)", res.TStart, res.TEnd)
	}
	if res.Cigar.String() != "100M" {
		t.Errorf("cigar = %s", res.Cigar)
	}
}

func TestExtendSeedWindowClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tg := randCodes(rng, 50)
	q := append([]byte(nil), tg[0:30]...)
	res := ExtendSeed(q, tg, 0, 0, 21, DefaultScoring, 100)
	if res.Score != 30 || res.TStart != 0 {
		t.Errorf("clamped extension: %+v", res)
	}
	// Degenerate window.
	if r := ExtendSeed(q, tg, 0, 50, 1, DefaultScoring, 0); r.Score != 0 {
		t.Errorf("empty window should score 0, got %+v", r)
	}
	// Negative pad treated as zero.
	if r := ExtendSeed(q, tg, 0, 0, 21, DefaultScoring, -5); r.Score != 30 {
		t.Errorf("negative pad: %+v", r)
	}
}

func TestExactResult(t *testing.T) {
	r := ExactResult(101, 37, DefaultScoring)
	if r.Score != 101 || r.TStart != 37 || r.TEnd != 138 || r.QEnd != 101 {
		t.Errorf("ExactResult = %+v", r)
	}
	if r.Cigar.String() != "101M" {
		t.Errorf("cigar = %s", r.Cigar)
	}
}

func TestCells(t *testing.T) {
	if Cells(100, 200) != 20000 {
		t.Error("Cells broken")
	}
}

// --- Benchmarks (the SW micro-benchmarks behind the cost model) ---

func benchSeqs(qLen, tLen int) ([]byte, []byte) {
	rng := rand.New(rand.NewSource(13))
	tg := randCodes(rng, tLen)
	q := append([]byte(nil), tg[tLen/4:tLen/4+qLen]...)
	for i := range q {
		if rng.Float64() < 0.01 {
			q[i] = byte(rng.Intn(4))
		}
	}
	return q, tg
}

func BenchmarkReferenceSW100x200(b *testing.B) {
	q, tg := benchSeqs(100, 200)
	b.SetBytes(int64(len(q) * len(tg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Score(q, tg, DefaultScoring)
	}
}

func BenchmarkStripedSW100x200(b *testing.B) {
	q, tg := benchSeqs(100, 200)
	p := NewProfile(q, DefaultScoring)
	b.SetBytes(int64(len(q) * len(tg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Align(tg)
	}
}

func BenchmarkStripedSW250x500(b *testing.B) {
	q, tg := benchSeqs(250, 500)
	p := NewProfile(q, DefaultScoring)
	b.SetBytes(int64(len(q) * len(tg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Align(tg)
	}
}

func BenchmarkLocalWithTraceback100x200(b *testing.B) {
	q, tg := benchSeqs(100, 200)
	b.SetBytes(int64(len(q) * len(tg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Local(q, tg, DefaultScoring)
	}
}

// The package's entry points (ExtendSeed, StripedScore, Local, and shared
// Profiles) must be safe for concurrent use: the threaded engine runs them
// from many worker goroutines against shared target slices. Run under -race
// in CI's race job.
func TestConcurrentEntryPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	target := randCodes(rng, 4000)
	queries := make([][]byte, 16)
	for i := range queries {
		off := rng.Intn(len(target) - 120)
		q := append([]byte(nil), target[off:off+100]...)
		q[rng.Intn(len(q))] = byte(rng.Intn(4)) // maybe a substitution
		queries[i] = q
	}
	// A shared profile exercised from every goroutine alongside the
	// stateless kernels. The query is long enough that its perfect match
	// saturates the 8-bit kernel, so every goroutine races into the lazy
	// 16-bit rescue on first use — the hazard once16 guards.
	long := append([]byte(nil), target[100:500]...)
	shared := NewProfile(long, DefaultScoring)
	want := 400 * DefaultScoring.Match

	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i, q := range queries {
				sr := StripedScore(q, target, DefaultScoring)
				lr := Local(q, target, DefaultScoring)
				if sr.Score != lr.Score {
					done <- fmt.Errorf("worker %d query %d: striped %d != local %d", w, i, sr.Score, lr.Score)
					return
				}
				er := ExtendSeed(q, target, 0, 0, 21, DefaultScoring, 16)
				if er.Score > lr.Score {
					done <- fmt.Errorf("worker %d query %d: window score %d exceeds full %d", w, i, er.Score, lr.Score)
					return
				}
				if got := shared.Align(target).Score; got != want {
					done <- fmt.Errorf("worker %d: shared profile score changed: %d != %d", w, got, want)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
