package align

// ExtendSeed performs the seed-and-extend step (Algorithm 1, line 12): the
// query is locally aligned against a window of the target centered on the
// seed's diagonal. qOff/tOff locate the matching seed of length k in the
// query and target respectively; pad widens the window to allow gaps.
// The returned coordinates are in full-target space.
func ExtendSeed(query, target []byte, qOff, tOff, k int, sc Scoring, pad int) Result {
	if pad < 0 {
		pad = 0
	}
	start := tOff - qOff - pad
	if start < 0 {
		start = 0
	}
	end := tOff + (len(query) - qOff) + pad
	if end > len(target) {
		end = len(target)
	}
	if start >= end {
		return Result{}
	}
	res := Local(query, target[start:end], sc)
	res.TStart += start
	res.TEnd += start
	return res
}

// ExactResult builds the Result of a perfect end-to-end match of a qLen-base
// query at target offset tOff — the outcome of the exact-match fast path of
// §IV-A, where a memcmp replaces Smith-Waterman entirely.
func ExactResult(qLen, tOff int, sc Scoring) Result {
	return Result{
		Score:  qLen * sc.Match,
		QStart: 0, QEnd: qLen,
		TStart: tOff, TEnd: tOff + qLen,
		Cigar: Cigar{{Op: 'M', Len: qLen}},
	}
}
