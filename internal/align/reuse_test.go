package align

import (
	"math/rand"
	"testing"
)

// TestAlignWindowMatchesStripedScore: a Reset-recycled profile driven
// through AlignWindow must produce results identical to a fresh one-shot
// StripedScore for every (query, target) pair — the equivalence the query
// engine's per-candidate replacement relies on.
func TestAlignWindowMatchesStripedScore(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var p Profile
	for trial := 0; trial < 200; trial++ {
		q := randCodes(rng, 20+rng.Intn(180))
		p.Reset(q, DefaultScoring)
		for w := 0; w < 4; w++ {
			tg := randCodes(rng, 30+rng.Intn(300))
			got := p.AlignWindow(tg)
			want := StripedScore(q, tg, DefaultScoring)
			if got != want {
				t.Fatalf("trial=%d window=%d: AlignWindow=%+v, StripedScore=%+v", trial, w, got, want)
			}
		}
	}
}

// TestAlignWindow16BitRescue: the reused-scratch path must survive the
// 8-bit saturation rescue and still match the one-shot result, including
// when 8-bit and 16-bit calls interleave on one profile.
func TestAlignWindow16BitRescue(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// A long identical pair saturates the 8-bit lanes (score > 255-bias).
	longQ := randCodes(rng, 400)
	var p Profile
	p.Reset(longQ, DefaultScoring)

	big := p.AlignWindow(longQ)
	want := StripedScore(longQ, longQ, DefaultScoring)
	if big != want {
		t.Fatalf("rescue mismatch: AlignWindow=%+v, StripedScore=%+v", big, want)
	}
	if !big.Overflow || big.UsedLanes != 16 {
		t.Fatalf("expected a 16-bit rescue, got %+v", big)
	}
	// Now a small window on the same profile (back to the 8-bit kernel).
	small := randCodes(rng, 60)
	if got, w := p.AlignWindow(small), StripedScore(longQ, small, DefaultScoring); got != w {
		t.Fatalf("post-rescue 8-bit mismatch: %+v vs %+v", got, w)
	}
}

// TestResetMatchesNewProfile: Reset must leave the profile exactly as
// NewProfile would build it, whatever was in it before.
func TestResetMatchesNewProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var p Profile
	// Dirty the profile with a long query first so Reset must shrink.
	p.Reset(randCodes(rng, 300), DefaultScoring)
	for trial := 0; trial < 50; trial++ {
		q := randCodes(rng, 10+rng.Intn(250))
		p.Reset(q, DefaultScoring)
		fresh := NewProfile(q, DefaultScoring)
		tg := randCodes(rng, 50+rng.Intn(200))
		if got, want := p.AlignWindow(tg), fresh.Align(tg); got != want {
			t.Fatalf("trial=%d: reused %+v, fresh %+v", trial, got, want)
		}
	}
}

// TestAlignWindowNoSteadyStateAllocs: after warm-up, Reset+AlignWindow must
// not allocate — the contract the zero-allocs-per-read query path builds on.
func TestAlignWindowNoSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	q := randCodes(rng, 150)
	tg := randCodes(rng, 250)
	var p Profile
	p.Reset(q, DefaultScoring)
	p.AlignWindow(tg) // warm the scratch
	avg := testing.AllocsPerRun(100, func() {
		p.Reset(q, DefaultScoring)
		p.AlignWindow(tg)
	})
	if avg != 0 {
		t.Fatalf("Reset+AlignWindow allocates %.2f objects/run in steady state", avg)
	}
}

// TestKernel8MatchesGeneric pins the constant-specialized 8-bit kernel to
// the generic laneSpec kernel bit for bit, across random inputs and scoring
// schemes including near-saturation scores.
func TestKernel8MatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	scorings := []Scoring{
		DefaultScoring,
		{Match: 2, Mismatch: 1, GapOpen: 3, GapExtend: 1},
		{Match: 5, Mismatch: 4, GapOpen: 10, GapExtend: 1},
	}
	for trial := 0; trial < 300; trial++ {
		sc := scorings[trial%len(scorings)]
		qn := 1 + rng.Intn(260) // long queries push 8-bit scores toward saturation
		q := randCodes(rng, qn)
		tg := randCodes(rng, 1+rng.Intn(400))
		p := NewProfile(q, sc)
		scratch := func() []uint64 { return make([]uint64, p.segLen8) }
		gs, gt, gov := p.kernel(spec8, p.segLen8, &p.prof8, tg, scratch(), scratch(), scratch())
		ss, st, sov := p.kernel8(tg, scratch(), scratch(), scratch())
		if gs != ss || gt != st || gov != sov {
			t.Fatalf("trial=%d sc=%+v q=%d t=%d: generic (%d,%d,%v) vs kernel8 (%d,%d,%v)",
				trial, sc, len(q), len(tg), gs, gt, gov, ss, st, sov)
		}
	}
}

// TestAlignWindowEmpty mirrors Align's empty-input contract.
func TestAlignWindowEmpty(t *testing.T) {
	var p Profile
	p.Reset(nil, DefaultScoring)
	if res := p.AlignWindow([]byte{0, 1, 2}); res != (StripedResult{}) {
		t.Fatalf("empty query: %+v", res)
	}
	p.Reset([]byte{0, 1, 2}, DefaultScoring)
	if res := p.AlignWindow(nil); res != (StripedResult{}) {
		t.Fatalf("empty target: %+v", res)
	}
}
