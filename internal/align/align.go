// Package align implements local sequence alignment: a textbook affine-gap
// Smith-Waterman reference and a striped Smith-Waterman in the style of the
// SSW library the paper incorporates (§V-B), with SIMD lanes emulated by
// SWAR arithmetic on 64-bit words (8 x 8-bit lanes, rescued to 4 x 16-bit
// lanes on overflow, exactly SSW's protocol).
//
// Sequences are slices of 2-bit base codes (see package dna), not ASCII.
package align

import (
	"fmt"
	"strings"
)

// Scoring holds affine-gap alignment parameters. Penalties are positive
// magnitudes: aligning with a gap of length g costs GapOpen + g*GapExtend.
type Scoring struct {
	Match     int // score for a base match (> 0)
	Mismatch  int // penalty for a substitution (> 0)
	GapOpen   int // penalty for opening a gap (>= 0)
	GapExtend int // penalty per gap base (> 0)
}

// DefaultScoring is a commonly employed scoring scheme (match 1, mismatch 3,
// gap open 5, gap extend 2), in the spirit of §VI-D's "commonly employed
// scoring matrix".
var DefaultScoring = Scoring{Match: 1, Mismatch: 3, GapOpen: 5, GapExtend: 2}

// Validate reports parameter errors.
func (s Scoring) Validate() error {
	if s.Match <= 0 {
		return fmt.Errorf("align: Match must be positive, got %d", s.Match)
	}
	if s.Mismatch < 0 || s.GapOpen < 0 || s.GapExtend < 0 {
		return fmt.Errorf("align: penalties must be non-negative")
	}
	return nil
}

func (s Scoring) score(a, b byte) int {
	if a == b {
		return s.Match
	}
	return -s.Mismatch
}

// CigarOp is one run-length-encoded alignment operation.
type CigarOp struct {
	Op  byte // 'M' (match/mismatch), 'I' (insertion to target), 'D' (deletion from target)
	Len int
}

// Cigar is a run-length-encoded alignment path.
type Cigar []CigarOp

// String renders the cigar in SAM style, e.g. "37M1I63M".
func (c Cigar) String() string {
	var sb strings.Builder
	for _, op := range c {
		fmt.Fprintf(&sb, "%d%c", op.Len, op.Op)
	}
	return sb.String()
}

// QuerySpan returns the number of query bases the cigar consumes (M + I).
func (c Cigar) QuerySpan() int {
	n := 0
	for _, op := range c {
		if op.Op == 'M' || op.Op == 'I' {
			n += op.Len
		}
	}
	return n
}

// TargetSpan returns the number of target bases the cigar consumes (M + D).
func (c Cigar) TargetSpan() int {
	n := 0
	for _, op := range c {
		if op.Op == 'M' || op.Op == 'D' {
			n += op.Len
		}
	}
	return n
}

// Result is a local alignment between a query and a target.
type Result struct {
	Score  int
	QStart int // first aligned query base (inclusive)
	QEnd   int // past the last aligned query base
	TStart int // first aligned target base (inclusive)
	TEnd   int // past the last aligned target base
	Cigar  Cigar
}

// Score computes the score-only local alignment of query vs target with the
// reference O(mn) affine-gap dynamic program. It is the oracle the striped
// implementation is verified against.
func Score(query, target []byte, sc Scoring) int {
	n, m := len(query), len(target)
	if n == 0 || m == 0 {
		return 0
	}
	// H, E over a rolling column; F computed on the fly.
	H := make([]int, n+1)
	E := make([]int, n+1)
	negInf := -1 << 30
	for j := 0; j <= n; j++ {
		E[j] = negInf
	}
	best := 0
	for i := 1; i <= m; i++ {
		diag := 0 // H[i-1][0]
		F := negInf
		for j := 1; j <= n; j++ {
			E[j] = max(E[j]-sc.GapExtend, H[j]-sc.GapOpen-sc.GapExtend)
			F = max(F-sc.GapExtend, H[j-1]-sc.GapOpen-sc.GapExtend)
			h := max(0, diag+sc.score(query[j-1], target[i-1]), E[j], F)
			diag = H[j]
			H[j] = h
			best = max(best, h)
		}
	}
	return best
}

// Local computes the full local alignment with traceback, returning score,
// end-points and cigar. The highest-scoring cell is chosen; among equals the
// one with the smallest (TEnd, QEnd) wins, matching the scan order.
func Local(query, target []byte, sc Scoring) Result {
	n, m := len(query), len(target)
	if n == 0 || m == 0 {
		return Result{}
	}
	// Full matrices for traceback: H, E, F as (m+1) x (n+1).
	w := n + 1
	H := make([]int32, (m+1)*w)
	E := make([]int32, (m+1)*w)
	F := make([]int32, (m+1)*w)
	const negInf = int32(-1 << 28)
	for j := 0; j < w; j++ {
		E[j] = negInf
		F[j] = negInf
	}
	for i := 1; i <= m; i++ {
		E[i*w] = negInf
		F[i*w] = negInf
	}
	var best int32
	bi, bj := 0, 0
	go_, ge := int32(sc.GapOpen+sc.GapExtend), int32(sc.GapExtend)
	for i := 1; i <= m; i++ {
		row, prow := i*w, (i-1)*w
		for j := 1; j <= n; j++ {
			e := max(E[prow+j]-ge, H[prow+j]-go_)
			f := max(F[row+j-1]-ge, H[row+j-1]-go_)
			h := max(0, H[prow+j-1]+int32(sc.score(query[j-1], target[i-1])), e, f)
			E[row+j] = e
			F[row+j] = f
			H[row+j] = h
			if h > best {
				best, bi, bj = h, i, j
			}
		}
	}
	if best == 0 {
		return Result{}
	}
	// Traceback from (bi, bj) until H == 0.
	var ops []CigarOp
	pushOp := func(op byte) {
		if len(ops) > 0 && ops[len(ops)-1].Op == op {
			ops[len(ops)-1].Len++
			return
		}
		ops = append(ops, CigarOp{Op: op, Len: 1})
	}
	i, j := bi, bj
	state := byte('H')
	for i > 0 && j > 0 {
		row, prow := i*w, (i-1)*w
		switch state {
		case 'H':
			h := H[row+j]
			if h == 0 {
				i, j = 0, 0 // terminate
				continue
			}
			switch {
			case h == H[prow+j-1]+int32(sc.score(query[j-1], target[i-1])):
				pushOp('M')
				i, j = i-1, j-1
			case h == E[row+j]:
				state = 'E'
			case h == F[row+j]:
				state = 'F'
			default:
				// h == 0 handled above; unreachable for valid DP.
				i, j = 0, 0
			}
		case 'E': // gap in query consuming target ('D')
			pushOp('D')
			if E[row+j] == H[prow+j]-go_ {
				state = 'H'
			}
			i--
		case 'F': // gap in target consuming query ('I')
			pushOp('I')
			if F[row+j] == H[row+j-1]-go_ {
				state = 'H'
			}
			j--
		}
		if state == 'H' && i > 0 && j > 0 && H[i*w+j] == 0 {
			break
		}
	}
	// ops were collected end->start; reverse.
	for l, r := 0, len(ops)-1; l < r; l, r = l+1, r-1 {
		ops[l], ops[r] = ops[r], ops[l]
	}
	res := Result{Score: int(best), QEnd: bj, TEnd: bi, Cigar: ops}
	res.QStart = bj - res.Cigar.QuerySpan()
	res.TStart = bi - res.Cigar.TargetSpan()
	return res
}

// Cells returns the number of DP cells an (n x m) alignment evaluates; used
// by the simulator's cost model.
func Cells(n, m int) int64 { return int64(n) * int64(m) }
