package align

// kernel8 is the 8-bit lane specialization of Farrar's striped inner loop —
// the pass every candidate window takes (16-bit is only the saturation
// rescue). It computes exactly what kernel(spec8, ...) computes, but with
// the SWAR primitives expanded over compile-time lane constants so the
// compiler folds the shifts and masks and keeps the whole recurrence in
// registers; the generic laneSpec methods pay runtime-variable shifts on
// every operation. Any change here must keep the two kernels bit-identical
// (TestKernel8MatchesGeneric).

const (
	hi8  = 0x8080808080808080 // high bit of every 8-bit lane
	max8 = 0xFF               // lane saturation value
)

// ge8 returns the high-bit-per-lane mask of lanes where x >= y (unsigned).
func ge8(x, y uint64) uint64 {
	d := (x | hi8) - (y &^ hi8)
	sd := x ^ y
	return ((d &^ sd) | (x & sd)) & hi8
}

// expand8 turns a lane-position bit mask into full-lane 0xFF masks.
func expand8(m uint64) uint64 {
	ones := m >> 7
	return ones<<8 - ones
}

// maxu8 returns the lane-wise unsigned maximum.
func maxu8(x, y uint64) uint64 {
	m := expand8(ge8(x, y))
	return x&m | y&^m
}

// subsat8 returns the lane-wise unsigned saturating subtraction max(x-y, 0).
func subsat8(x, y uint64) uint64 {
	m := expand8(ge8(x, y))
	return x - (y&m | x&^m)
}

// addsat8 returns the lane-wise unsigned saturating addition min(x+y, 255).
func addsat8(x, y uint64) uint64 {
	t0 := (x ^ y) & hi8
	t1 := x & y & hi8
	sum := (x &^ hi8) + (y &^ hi8)
	t1 |= t0 & sum
	return (sum ^ t0) | expand8(t1)
}

// laneMax8 extracts the maximum lane value of x.
func laneMax8(x uint64) uint64 {
	best := uint64(0)
	for i := 0; i < 8; i++ {
		if v := x >> (i * 8) & max8; v > best {
			best = v
		}
	}
	return best
}

// kernel8 mirrors kernel(spec8, p.segLen8, &p.prof8, ...) exactly; see that
// function for the algorithm commentary.
func (p *Profile) kernel8(target []byte, hStore, hLoad, e []uint64) (score, tEnd int, overflow bool) {
	segLen := p.segLen8
	bias := p.bias
	// The lane fills match the generic kernel's s.fill exactly (including
	// its overlap behaviour on out-of-range scoring values).
	vBias := spec8.fill(bias)
	vGapO := spec8.fill(uint64(p.sc.GapOpen + p.sc.GapExtend))
	vGapE := spec8.fill(uint64(p.sc.GapExtend))

	hStore = hStore[:segLen]
	hLoad = hLoad[:segLen]
	e = e[:segLen]

	best := uint64(0)
	bestT := 0

	for i := 0; i < len(target); i++ {
		vp := p.prof8[target[i]][:segLen]
		vF := uint64(0)
		vH := hStore[segLen-1] << 8
		hLoad, hStore = hStore, hLoad

		var vColMax uint64
		for j := 0; j < segLen; j++ {
			vH = addsat8(vH, vp[j])
			vH = subsat8(vH, vBias)
			vH = maxu8(vH, e[j])
			vH = maxu8(vH, vF)
			vColMax = maxu8(vColMax, vH)
			hStore[j] = vH

			vH2 := subsat8(vH, vGapO)
			e[j] = maxu8(subsat8(e[j], vGapE), vH2)
			vF = maxu8(subsat8(vF, vGapE), vH2)
			vH = hLoad[j]
		}

		// Lazy-F loop: propagate F across segment boundaries.
		vF <<= 8
		j := 0
		for {
			t := subsat8(hStore[j], vGapO)
			if ge8(t, vF) == hi8 { // !anyGT(vF, t)
				break
			}
			hStore[j] = maxu8(hStore[j], vF)
			vColMax = maxu8(vColMax, hStore[j])
			vF = subsat8(vF, vGapE)
			j++
			if j >= segLen {
				j = 0
				vF <<= 8
				if vF == 0 {
					break
				}
			}
		}

		if cm := laneMax8(vColMax); cm > best {
			best = cm
			bestT = i + 1
		}
	}

	if best+bias >= max8 {
		return 0, 0, true
	}
	return int(best), bestT, false
}
