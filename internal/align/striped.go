package align

import (
	"math/bits"
	"sync"
)

// This file implements Farrar's striped Smith-Waterman — the algorithm
// behind the SSW library of §V-B — with SIMD registers emulated by SWAR
// (SIMD-within-a-register) arithmetic on uint64 words. The 8-bit kernel
// packs eight unsigned lanes per word and biases scores to stay unsigned,
// and a 16-bit kernel (four lanes) re-runs queries whose score saturates,
// mirroring SSW's 8-bit-then-16-bit overflow protocol.

// laneSpec parameterizes the SWAR primitives for a lane width.
type laneSpec struct {
	bits  uint   // lane width in bits (8 or 16)
	lanes int    // 64 / bits
	hi    uint64 // high bit of every lane
	lo    uint64 // ^hi
	max   uint64 // saturation value of one lane (0xFF / 0xFFFF)
}

var (
	spec8  = laneSpec{bits: 8, lanes: 8, hi: 0x8080808080808080, lo: ^uint64(0x8080808080808080), max: 0xFF}
	spec16 = laneSpec{bits: 16, lanes: 4, hi: 0x8000800080008000, lo: ^uint64(0x8000800080008000), max: 0xFFFF}
)

// fill replicates a lane value into all lanes.
func (s laneSpec) fill(v uint64) uint64 {
	out := uint64(0)
	for i := 0; i < s.lanes; i++ {
		out |= v << (uint(i) * s.bits)
	}
	return out
}

// expand turns a lane-position bit mask (high bit per lane) into full-lane
// 0xFF.. masks: m*(2^bits-1)/2^(bits-1), computed carry-free.
func (s laneSpec) expand(hiMask uint64) uint64 {
	ones := hiMask >> (s.bits - 1) // 1 in bit 0 of each selected lane
	return (ones << s.bits) - ones // (2^bits - 1) per selected lane
}

// geMask returns the high-bit-per-lane mask of lanes where x >= y
// (unsigned). Derivation: when the lanes' sign bits are equal the comparison
// reduces to the biased difference's sign bit; when they differ, x's sign
// bit decides.
func (s laneSpec) geMask(x, y uint64) uint64 {
	d := (x | s.hi) - (y &^ s.hi)
	sdiff := x ^ y
	return ((d &^ sdiff) | (x & sdiff)) & s.hi
}

// maxu returns the lane-wise unsigned maximum.
func (s laneSpec) maxu(x, y uint64) uint64 {
	m := s.expand(s.geMask(x, y))
	return (x & m) | (y &^ m)
}

// subsat returns the lane-wise unsigned saturating subtraction max(x-y, 0).
func (s laneSpec) subsat(x, y uint64) uint64 {
	// min(x,y) per lane, then x - min is borrow-free lane-wise.
	m := s.expand(s.geMask(x, y))
	minv := (y & m) | (x &^ m)
	return x - minv
}

// addsat returns the lane-wise unsigned saturating addition min(x+y, max).
func (s laneSpec) addsat(x, y uint64) uint64 {
	t0 := (x ^ y) & s.hi
	t1 := (x & y) & s.hi
	sum := (x &^ s.hi) + (y &^ s.hi)
	t1 |= t0 & sum      // carry into the sign bit with one sign set
	sat := s.expand(t1) // saturated lanes -> all ones
	return (sum ^ t0) | sat
}

// anyGT reports whether any lane of x exceeds the corresponding lane of y.
func (s laneSpec) anyGT(x, y uint64) bool {
	// x > y  <=>  NOT (y >= x)
	return s.geMask(y, x) != s.hi
}

// laneMax extracts the maximum lane value of x.
func (s laneSpec) laneMax(x uint64) uint64 {
	best := uint64(0)
	mask := s.max
	for i := 0; i < s.lanes; i++ {
		v := (x >> (uint(i) * s.bits)) & mask
		if v > best {
			best = v
		}
	}
	return best
}

// shiftLanes shifts lanes up by one (lane i receives lane i-1; lane 0 gets
// zero) — the _mm_slli_si128 of the SSE original.
func (s laneSpec) shiftLanes(x uint64) uint64 { return x << s.bits }

// StripedResult reports a score-only striped alignment.
type StripedResult struct {
	Score     int
	TEnd      int  // past-the-end target index of the best cell
	Overflow  bool // true when the 8-bit kernel saturated (16-bit was used)
	UsedLanes uint // lane width of the kernel that produced the score
}

// Profile is a striped query profile reusable across targets — SSW builds
// it once per read and aligns the read against many candidates.
//
// Two usage regimes are supported. A profile built once with NewProfile may
// be shared: Align is safe for concurrent callers (the 16-bit rescue profile
// is built under a sync.Once, and each Align call owns its scratch). A
// profile owned by one goroutine may instead be recycled across queries with
// Reset and driven through AlignWindow, which reuses profile-owned scratch
// buffers — the zero-steady-state-allocation path of the query engine.
type Profile struct {
	query []byte
	sc    Scoring
	bias  uint64
	// prof8[c] holds segLen8 words of 8 lanes for base code c.
	segLen8 int
	prof8   [4][]uint64
	// 16-bit profile built lazily on first overflow; the Once makes a
	// shared Profile safe for concurrent Align calls (the threaded engine
	// aligns one query against many candidate targets from worker pools).
	once16   sync.Once
	segLen16 int
	prof16   [4][]uint64
	// Reusable kernel scratch for AlignWindow (single-owner use only).
	h0, h1, ev []uint64
}

// NewProfile builds the striped query profile.
func NewProfile(query []byte, sc Scoring) *Profile {
	p := &Profile{}
	p.Reset(query, sc)
	return p
}

// grown returns buf resized to n words, reusing its backing array when the
// capacity allows — the steady-state no-allocation path of Reset/build16.
func grown(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	return buf[:n]
}

// Reset rebuilds the profile in place for a new query (and scoring), reusing
// every backing array the profile has already grown. After Reset the profile
// behaves exactly like NewProfile(query, sc); the receiver must not be
// shared with concurrent Align callers across a Reset.
func (p *Profile) Reset(query []byte, sc Scoring) {
	p.query, p.sc, p.bias = query, sc, uint64(sc.Mismatch)
	p.once16 = sync.Once{}
	p.segLen16 = 0
	n := len(query)
	if n == 0 {
		p.segLen8 = 0
		return
	}
	p.segLen8 = (n + spec8.lanes - 1) / spec8.lanes
	for c := 0; c < 4; c++ {
		p.prof8[c] = grown(p.prof8[c], p.segLen8)
		for j := 0; j < p.segLen8; j++ {
			var w uint64
			for l := 0; l < spec8.lanes; l++ {
				qi := j + l*p.segLen8
				v := uint64(0)
				if qi < n {
					v = uint64(int64(p.sc.score(byte(c), p.query[qi])) + int64(p.bias))
				}
				w |= v << (uint(l) * spec8.bits)
			}
			p.prof8[c][j] = w
		}
	}
}

func (p *Profile) build16() {
	n := len(p.query)
	p.segLen16 = (n + spec16.lanes - 1) / spec16.lanes
	for c := 0; c < 4; c++ {
		p.prof16[c] = grown(p.prof16[c], p.segLen16)
		for j := 0; j < p.segLen16; j++ {
			var w uint64
			for l := 0; l < spec16.lanes; l++ {
				qi := j + l*p.segLen16
				v := uint64(0)
				if qi < n {
					v = uint64(int64(p.sc.score(byte(c), p.query[qi])) + int64(p.bias))
				}
				w |= v << (uint(l) * spec16.bits)
			}
			p.prof16[c][j] = w
		}
	}
}

// Align computes the local alignment score of the profile's query against
// target, using the 8-bit kernel and rescuing with 16-bit on saturation.
// Safe for concurrent callers on a profile that is not being Reset.
func (p *Profile) Align(target []byte) StripedResult {
	if len(p.query) == 0 || len(target) == 0 {
		return StripedResult{}
	}
	score, tEnd, overflow := p.kernel8(target,
		make([]uint64, p.segLen8), make([]uint64, p.segLen8), make([]uint64, p.segLen8))
	if !overflow {
		return StripedResult{Score: score, TEnd: tEnd, UsedLanes: 8}
	}
	p.once16.Do(p.build16)
	score, tEnd, _ = p.kernel(spec16, p.segLen16, &p.prof16, target,
		make([]uint64, p.segLen16), make([]uint64, p.segLen16), make([]uint64, p.segLen16))
	return StripedResult{Score: score, TEnd: tEnd, Overflow: true, UsedLanes: 16}
}

// AlignWindow is Align for a single-owner profile: the kernel runs on
// profile-owned scratch buffers that are cleared and reused call to call, so
// aligning one query against many candidate windows performs no allocation
// after the first call at a given query length. The common 8-bit pass runs
// the constant-specialized kernel8. Results are identical to Align's. NOT
// safe for concurrent use.
func (p *Profile) AlignWindow(target []byte) StripedResult {
	if len(p.query) == 0 || len(target) == 0 {
		return StripedResult{}
	}
	p.scratch(p.segLen8)
	score, tEnd, overflow := p.kernel8(target, p.h0, p.h1, p.ev)
	if !overflow {
		return StripedResult{Score: score, TEnd: tEnd, UsedLanes: 8}
	}
	p.once16.Do(p.build16)
	p.scratch(p.segLen16)
	score, tEnd, _ = p.kernel(spec16, p.segLen16, &p.prof16, target, p.h0, p.h1, p.ev)
	return StripedResult{Score: score, TEnd: tEnd, Overflow: true, UsedLanes: 16}
}

// scratch readies the reusable kernel buffers: segLen words each, zeroed
// (the kernel's initial conditions — fresh allocations in Align get this
// for free).
func (p *Profile) scratch(segLen int) {
	p.h0 = grown(p.h0, segLen)
	p.h1 = grown(p.h1, segLen)
	p.ev = grown(p.ev, segLen)
	clear(p.h0)
	clear(p.h1)
	clear(p.ev)
}

// kernel is Farrar's striped inner loop for one lane spec. hStore, hLoad and
// e are zeroed scratch of segLen words owned by the caller.
func (p *Profile) kernel(s laneSpec, segLen int, prof *[4][]uint64, target []byte, hStore, hLoad, e []uint64) (score, tEnd int, overflow bool) {
	vBias := s.fill(p.bias)
	vGapO := s.fill(uint64(p.sc.GapOpen + p.sc.GapExtend))
	vGapE := s.fill(uint64(p.sc.GapExtend))

	var vMaxAll uint64 // running lane-wise max of H over all columns
	best := uint64(0)
	bestT := 0

	for i := 0; i < len(target); i++ {
		vp := prof[target[i]]
		vF := uint64(0)
		// vH = hStore[segLen-1] shifted by one lane (H of the previous
		// column, previous query row in striped order).
		vH := s.shiftLanes(hStore[segLen-1])
		hLoad, hStore = hStore, hLoad

		var vColMax uint64
		for j := 0; j < segLen; j++ {
			vH = s.addsat(vH, vp[j])
			vH = s.subsat(vH, vBias)
			vH = s.maxu(vH, e[j])
			vH = s.maxu(vH, vF)
			vColMax = s.maxu(vColMax, vH)
			hStore[j] = vH

			vH2 := s.subsat(vH, vGapO)
			e[j] = s.maxu(s.subsat(e[j], vGapE), vH2)
			vF = s.maxu(s.subsat(vF, vGapE), vH2)
			vH = hLoad[j]
		}

		// Lazy-F loop: propagate F across segment boundaries.
		vF = s.shiftLanes(vF)
		j := 0
		for s.anyGT(vF, s.subsat(hStore[j], vGapO)) {
			hStore[j] = s.maxu(hStore[j], vF)
			vColMax = s.maxu(vColMax, hStore[j])
			vF = s.subsat(vF, vGapE)
			j++
			if j >= segLen {
				j = 0
				vF = s.shiftLanes(vF)
				if vF == 0 {
					break
				}
			}
		}

		vMaxAll = s.maxu(vMaxAll, vColMax)
		if cm := s.laneMax(vColMax); cm > best {
			best = cm
			bestT = i + 1
		}
	}

	// Saturation is detected conservatively: once best + bias reaches the
	// lane ceiling, intermediate addsat results may have clamped, so the
	// scores are untrustworthy and the caller rescues with wider lanes.
	if best+p.bias >= s.max {
		return 0, 0, true
	}
	return int(best), bestT, false
}

// StripedScore is a convenience wrapper building a one-shot profile.
func StripedScore(query, target []byte, sc Scoring) StripedResult {
	return NewProfile(query, sc).Align(target)
}

// popcount of lane-presence masks, exposed for white-box tests.
func hiBitCount(s laneSpec, m uint64) int { return bits.OnesCount64(m & s.hi) }
