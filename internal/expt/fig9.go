package expt

import (
	"fmt"

	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// Fig9 reproduces the software-caching ablation: communication time during
// the aligning phase with and without the per-node seed-index and target
// caches, split into seed-lookup and target-fetch components.
func Fig9(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "fig9",
		Title: "Aligning-phase communication, no-cache vs cache (seed lookup + target fetch)",
		Paper: "2.3x / 1.7x / 1.8x less communication at 480 / 1,920 / 7,680 cores; target cache " +
			"essentially eliminates target-fetch traffic; seed cache helps most at small scale",
		Headers: []string{"paper cores", "config", "seed lookup(s)", "fetch targets(s)", "comm total(s)", "improvement"},
	}
	prof := cfg.humanProfile()
	if cfg.Quick {
		// Caching operates on seed reuse: the same seed looked up again on
		// the same node (Fig 7, f = d(1-(k-1)/L)). The paper's human data
		// set is ~90x coverage; the quick profile's 8x leaves f too small
		// for the caches to see repeats, so the ablation degenerates. Run
		// this experiment's quick mode at paper-regime coverage on a
		// proportionally smaller genome to keep the runtime flat.
		prof.GenomeLen = 150_000
		prof.Depth = 40
	}
	ds, err := mkData(prof)
	if err != nil {
		return nil, err
	}

	cores := []int{480, 1920, 7680}
	if cfg.Quick {
		cores = []int{480, 1920}
	}
	for _, pc := range cores {
		threads := cfg.scaledCores(pc)
		mach := upc.Edison(threads)
		mach.Workers = cfg.Workers
		mach.Seed = cfg.Seed

		run := func(withCache bool) (*core.Results, error) {
			opt := scaledOptions()
			// Caching is the variable under test; keep the exact-match
			// optimization on, as the paper's Fig 9 runs do.
			if !withCache {
				opt.SeedCacheBytes = 0
				opt.TargetCacheBytes = 0
			}
			return core.Run(mach, opt, ds.Contigs, ds.Reads)
		}
		noCache, err := run(false)
		if err != nil {
			return nil, err
		}
		withCache, err := run(true)
		if err != nil {
			return nil, err
		}
		ncTotal := noCache.CommSeedLookupMax + noCache.CommFetchTargetMax
		wcTotal := withCache.CommSeedLookupMax + withCache.CommFetchTargetMax
		rep.AddRow(fmt.Sprint(pc), "no cache", secs(noCache.CommSeedLookupMax),
			secs(noCache.CommFetchTargetMax), secs(ncTotal), "")
		rep.AddRow(fmt.Sprint(pc), "w/ cache", secs(withCache.CommSeedLookupMax),
			secs(withCache.CommFetchTargetMax), secs(wcTotal), ratio(ncTotal, wcTotal))
		rep.Note("%d cores: seed-cache hit rate %.2f, target-cache hit rate %.2f",
			pc, withCache.SeedCache.HitRate(), withCache.TargetCache.HitRate())
	}
	return rep, nil
}
