package expt

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config {
	c := QuickConfig()
	c.Workers = 4
	return c
}

// parseSecs parses a seconds cell back to float.
func parseSecs(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.Fields(s)[0], "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func TestFig1ScalingShape(t *testing.T) {
	rep, err := Fig1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 6 {
		t.Fatalf("too few rows: %d", len(rep.Rows))
	}
	// Human rows: substantial strong scaling across the sweep (allowing
	// local non-monotonic noise on the tiny quick workload).
	var first, prev float64
	count := 0
	for _, row := range rep.Rows {
		if row[0] != "human-like" {
			continue
		}
		tt := parseSecs(t, row[3])
		if count == 0 {
			first = tt
		}
		prev = tt
		count++
	}
	if count < 3 {
		t.Fatalf("missing human rows: %d", count)
	}
	if prev > first/1.8 {
		t.Errorf("human did not scale: first %v, last %v", first, prev)
	}
	// Baseline points must be present and slower than merAligner's last
	// human point.
	foundBaseline := false
	for _, row := range rep.Rows {
		if strings.Contains(row[0], "pMap") {
			foundBaseline = true
			if parseSecs(t, row[3]) <= prev {
				t.Errorf("baseline %s (%s s) not slower than merAligner (%v s)", row[0], row[3], prev)
			}
		}
	}
	if !foundBaseline {
		t.Error("baseline points missing")
	}
	t.Log("\n" + rep.String())
}

func TestFig7Shape(t *testing.T) {
	rep, err := Fig7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 7 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	first := parseSecs(t, rep.Rows[0][2])
	last := parseSecs(t, rep.Rows[len(rep.Rows)-1][2])
	if !(first > 0.9 && last < 0.1) {
		t.Errorf("curve shape wrong: first %v last %v", first, last)
	}
	// Monte-Carlo agrees with analytic within 3 points.
	for _, row := range rep.Rows {
		a, mc := parseSecs(t, row[2]), parseSecs(t, row[3])
		if a-mc > 0.03 || mc-a > 0.03 {
			t.Errorf("MC disagrees at %s cores: %v vs %v", row[0], a, mc)
		}
	}
}

func TestFig8AggregationWins(t *testing.T) {
	rep, err := Fig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		fine := parseSecs(t, row[2])
		agg := parseSecs(t, row[3])
		if fine/agg < 2 {
			t.Errorf("cores %s: aggregating stores improvement only %.2fx (want >= 2x; paper 3.9-4.8x)",
				row[0], fine/agg)
		}
	}
	t.Log("\n" + rep.String())
}

func TestFig9CachingWins(t *testing.T) {
	rep, err := Fig9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in pairs (no cache, w/ cache).
	for i := 0; i+1 < len(rep.Rows); i += 2 {
		nc := parseSecs(t, rep.Rows[i][4])
		wc := parseSecs(t, rep.Rows[i+1][4])
		if nc/wc < 1.1 {
			t.Errorf("cores %s: caching improvement only %.2fx (paper 1.7-2.3x at full scale)", rep.Rows[i][0], nc/wc)
		}
		// Target-fetch communication should be nearly eliminated.
		ncT := parseSecs(t, rep.Rows[i][3])
		wcT := parseSecs(t, rep.Rows[i+1][3])
		if wcT > ncT/3 {
			t.Errorf("cores %s: target cache did not eliminate fetch traffic: %v -> %v",
				rep.Rows[i][0], ncT, wcT)
		}
	}
	t.Log("\n" + rep.String())
}

func TestFig10ExactMatchWins(t *testing.T) {
	rep, err := Fig10(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(rep.Rows); i += 2 {
		without := parseSecs(t, rep.Rows[i][4])
		with := parseSecs(t, rep.Rows[i+1][4])
		if without/with < 1.5 {
			t.Errorf("cores %s: exact-match improvement only %.2fx (paper 2.8-3.4x)",
				rep.Rows[i][0], without/with)
		}
	}
	t.Log("\n" + rep.String())
}

func TestTable1PermutationBalancesCompute(t *testing.T) {
	rep, err := Table1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	withMaxComp := parseSecs(t, rep.Rows[0][2])
	withoutMaxComp := parseSecs(t, rep.Rows[1][2])
	if withoutMaxComp/withMaxComp < 1.2 {
		t.Errorf("permutation did not reduce max computation: %v vs %v (paper ~2.4x)",
			withoutMaxComp, withMaxComp)
	}
	t.Log("\n" + rep.String())
}

func TestTable2MerAlignerWins(t *testing.T) {
	rep, err := Table2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	mer := parseSecs(t, rep.Rows[0][3])
	for _, row := range rep.Rows[1:] {
		bl := parseSecs(t, row[3])
		if bl/mer < 2 {
			t.Errorf("%s only %.1fx slower than merAligner (paper: 20.4x / 39.4x)", row[0], bl/mer)
		}
		// The serial index construction must dominate the baseline total.
		idx := parseSecs(t, row[1])
		if idx < bl/2 {
			t.Errorf("%s: serial index (%v) does not dominate total (%v)", row[0], idx, bl)
		}
	}
	t.Log("\n" + rep.String())
}

func TestFig11RealScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("real-parallelism sweep skipped in -short")
	}
	rep, err := Fig11(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// merAligner must beat both baselines at the top core count.
	last := rep.Rows[len(rep.Rows)-1]
	mer := parseSecs(t, last[1])
	bwa := parseSecs(t, last[2])
	bt2 := parseSecs(t, last[3])
	if mer >= bwa || mer >= bt2 {
		t.Errorf("merAligner (%v) not fastest at top core count (bwa %v, bt2 %v)", mer, bwa, bt2)
	}
	t.Log("\n" + rep.String())
}

func TestClusterExperimentQuick(t *testing.T) {
	// Cluster refuses to report timings unless the router's SAM came back
	// byte-identical to the single node's, so a passing run IS the
	// correctness assertion.
	rep, err := Cluster(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("%d rows, want single-node + routed", len(rep.Rows))
	}
	if rep.Rows[0][0] != "single-node" || !strings.HasPrefix(rep.Rows[1][0], "router x") {
		t.Fatalf("rows = %v", rep.Rows)
	}
	for _, row := range rep.Rows {
		if parseSecs(t, row[1]) <= 0 {
			t.Fatalf("non-positive throughput in %v", row)
		}
	}
}

func TestRunAndRunAllQuick(t *testing.T) {
	if _, err := Run("fig7", quickCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{ID: "x", Title: "t", Paper: "p", Headers: []string{"a", "bb"}}
	rep.AddRow("1", "2")
	rep.Note("hello %d", 7)
	s := rep.String()
	for _, want := range []string{"== X: t ==", "paper: p", "a", "bb", "hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}
