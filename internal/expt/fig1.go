package expt

import (
	"fmt"

	"github.com/lbl-repro/meraligner/internal/baseline"
	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/genome"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// fig1Cores are the paper's x-axis points.
var fig1Cores = []int{480, 960, 1920, 3840, 7680, 15360}

// Fig1 reproduces the end-to-end strong scaling of merAligner on the
// human-like and wheat-like workloads, with the pMap-projected BWA-mem and
// Bowtie2 single data points at 7,680 cores.
func Fig1(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "fig1",
		Title: "End-to-end strong scaling (human & wheat) vs ideal; BWA-mem/Bowtie2 points",
		Paper: "human 480->15,360 cores: 22x speedup (0.70 efficiency); wheat 960->15,360: 0.78 efficiency; " +
			"merAligner 20.4x faster than pMap+BWA-mem at 7,680 cores",
		Headers: []string{"dataset", "paper cores", "sim threads", "total(s)", "speedup", "ideal", "efficiency"},
	}
	cores := fig1Cores
	if cfg.Quick {
		cores = fig1Cores[:3]
	}

	for _, prof := range []genome.Profile{cfg.humanProfile(), cfg.wheatProfile()} {
		ds, err := mkData(prof)
		if err != nil {
			return nil, err
		}
		var t0 float64
		var firstCores int
		times := make([]float64, 0, len(cores))
		for i, pc := range cores {
			threads := cfg.scaledCores(pc)
			mach := upc.Edison(threads)
			mach.Workers = cfg.Workers
			mach.Seed = cfg.Seed
			opt := scaledOptions()
			if prof.ReadLen < 102 {
				opt.K = 51
			}
			res, err := core.Run(mach, opt, ds.Contigs, ds.Reads)
			if err != nil {
				return nil, err
			}
			total := res.TotalWall()
			times = append(times, total)
			if i == 0 {
				t0, firstCores = total, pc
			}
			sp := t0 / total
			ideal := float64(pc) / float64(firstCores)
			rep.AddRow(prof.Name, fmt.Sprint(pc), fmt.Sprint(threads), secs(total),
				fmt.Sprintf("%.1fx", sp), fmt.Sprintf("%.0fx", ideal),
				fmt.Sprintf("%.2f", sp/ideal))
		}
		last := len(times) - 1
		rep.Note("%s: overall efficiency %s -> %s cores = %.2f",
			prof.Name, fmt.Sprint(firstCores), fmt.Sprint(cores[last]),
			efficiency(times[0], cores[0], times[last], cores[last]))
	}

	// Baseline single points at the paper's 7,680-core mark (or the top of
	// the quick sweep) via the pMap projection on measured work.
	baselinePoint := 7680
	if cfg.Quick {
		baselinePoint = cores[len(cores)-1]
	}
	human, err := mkData(cfg.humanProfile())
	if err != nil {
		return nil, err
	}
	if err := addBaselinePoints(cfg, rep, human, baselinePoint); err != nil {
		return nil, err
	}
	return rep, nil
}

// addBaselinePoints measures the baselines' real per-read work on the
// workload (sampled) and projects pMap execution at the given paper core
// count, appending rows to the report.
func addBaselinePoints(cfg Config, rep *Report, ds *genome.DataSet, paperCores int) error {
	sample := ds.Reads
	const maxSample = 20000
	scale := 1.0
	if len(sample) > maxSample {
		scale = float64(len(sample)) / maxSample
		sample = sample[:maxSample]
	}
	var readBytes int64
	for _, r := range ds.Reads {
		readBytes += int64(r.Seq.Len()*2 + 40)
	}
	mach := upc.Edison(cfg.scaledCores(paperCores))
	model := baseline.DefaultPMapModel(mach)
	for _, opt := range []baseline.Options{baseline.BWAMemOptions(), baseline.Bowtie2Options()} {
		res, err := baseline.RunSingleNode(max(1, cfg.Workers), ds.Contigs, sample, opt)
		if err != nil {
			return err
		}
		// Scale sampled mapping work to the full read set.
		st := res.Stats
		st.SWCells = int64(float64(st.SWCells) * scale)
		st.SWCalls = int64(float64(st.SWCalls) * scale)
		ops := res.SearchOps
		ops.FMProbes = int64(float64(ops.FMProbes) * scale)
		ops.LocateSteps = int64(float64(ops.LocateSteps) * scale)
		proj := model.Project(opt.Tool, res.BuildOps, ops, st, res.IndexBytes, len(ds.Reads), readBytes)
		rep.AddRow(opt.Tool.String()+" (pMap)", fmt.Sprint(paperCores), fmt.Sprint(mach.Threads),
			secs(proj.Total()), "-", "-", "-")
	}
	return nil
}
