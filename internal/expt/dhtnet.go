package expt

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/dhtnet"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/service"
)

// DHTNet measures the network seed DHT (post-paper: the paper's §IV
// distributed seed index, where every lookup is a remote aggregated fetch,
// recast over loopback HTTP). The same reads are aligned twice by the same
// engine: once against the local seed table, once with every seed lookup
// resolved through a 3-node seed-shard fleet. Output byte-identity is
// checked before anything is timed — the tier's contract is that seed
// partitioning is invisible to alignment results.
func DHTNet(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "dhtnet",
		Title: "network seed DHT: 3-node seed-shard fleet vs the local seed table (loopback HTTP)",
		Paper: "post-paper experiment: §IV distributes the k-mer seed index across nodes and batches " +
			"remote lookups through aggregated stores; here the seed table is hash-partitioned across " +
			"merserved -seed-shard nodes and the engine's per-read lookups ride a coalescing RPC client",
		Headers: []string{"seed store", "reads/s", "lookups", "frames", "seeds/frame", "direct", "retries"},
	}
	ds, err := mkData(cfg.ecoliProfile())
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	opt := core.DefaultOptions(19)
	opt.MaxSeedHits = 200

	reads := ds.Reads
	maxReads := 4000
	if cfg.Quick {
		maxReads = 800
	}
	if len(reads) > maxReads {
		reads = reads[:maxReads]
	}

	cmp, err := RunDHTNetComparison(workers, opt, ds.Contigs, reads, 3)
	if err != nil {
		return nil, err
	}
	if !cmp.Identical {
		return nil, errors.New("expt: DHT-resolved SAM differs from the local engine's — the tier is broken, refusing to report timings")
	}
	rep.AddRow("local table",
		fmt.Sprintf("%.0f", cmp.Local.ReadsPerSec), "-", "-", "-", "-", "-")
	perFrame := 0.0
	if cmp.Lookup.Batches > 0 {
		perFrame = float64(cmp.Lookup.BatchedSeeds) / float64(cmp.Lookup.Batches)
	}
	rep.AddRow(fmt.Sprintf("dht x%d", cmp.Nodes),
		fmt.Sprintf("%.0f", cmp.Remote.ReadsPerSec),
		fmt.Sprintf("%d", cmp.Lookup.Seeds),
		fmt.Sprintf("%d", cmp.Lookup.Batches),
		fmt.Sprintf("%.1f", perFrame),
		fmt.Sprintf("%d", cmp.Lookup.Direct),
		fmt.Sprintf("%d", cmp.Lookup.Retries))
	rep.Note("%d reads, k=%d; SAM byte-identity between local and DHT-resolved runs verified before timing", len(reads), opt.IndexOptions.K)
	rep.Note("all %d seed-shard nodes share one host, so the dht row measures lookup RPC overhead (framing, HTTP, coalescing), not scale-out — on N hosts each node holds 1/N of the seed table, the paper's answer to seed tables that fit no single node", cmp.Nodes)
	rep.Note("seeds/frame is the coalescer's aggregation factor: per-read seed groups from concurrent workers merged into shared wire frames, the software analogue of the paper's aggregated remote stores")
	return rep, nil
}

// DHTNetRun is one timed alignment pass.
type DHTNetRun struct {
	ReadsPerSec float64
	WallS       float64
}

// DHTNetComparison is the full local-vs-remote seed resolution measurement
// (shared with the repo-level BENCH_dhtnet.json recorder).
type DHTNetComparison struct {
	Nodes     int  // seed-shard fleet size
	Identical bool // DHT-resolved SAM == local SAM
	Local     DHTNetRun
	Remote    DHTNetRun
	Lookup    dhtnet.Stats // client-side lookup counters for the remote run
}

// RunDHTNetComparison hash-partitions one index's seed table into nodes
// seed-shard snapshots (real `-dht-save` artifacts reopened from disk),
// serves them over loopback HTTP, and aligns the same reads twice: against
// the local table and through the dhtnet client. Returns timings plus the
// client's lookup counters; Identical reports SAM byte-equality.
func RunDHTNetComparison(workers int, opt core.Options, targets, reads []seqio.Seq, nodes int) (*DHTNetComparison, error) {
	if nodes < 1 {
		nodes = 3
	}
	al, err := meraligner.Build(workers, opt.IndexOptions, targets)
	if err != nil {
		return nil, err
	}
	defer al.Close()

	dir, err := os.MkdirTemp("", "merbench-dhtnet-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	paths, err := al.SaveSeedShards(dir, nodes)
	if err != nil {
		return nil, err
	}
	fp, err := al.SeedPartitionFingerprint(nodes)
	if err != nil {
		return nil, err
	}

	owners := make([]string, 0, nodes)
	var fleet []*exptServer
	defer func() {
		for _, s := range fleet {
			s.stop()
		}
	}()
	for _, p := range paths {
		sh, err := core.LoadSeedShard(p)
		if err != nil {
			return nil, err
		}
		srv, err := service.NewSeedShard(service.SeedShardConfig{Shard: sh})
		if err != nil {
			sh.Close()
			return nil, err
		}
		s, err := startExptHandler(srv)
		if err != nil {
			sh.Close()
			return nil, err
		}
		stop := s.stop
		s.stop = func() {
			stop()
			sh.Close()
		}
		fleet = append(fleet, s)
		owners = append(owners, s.base)
	}

	dc, err := dhtnet.New(dhtnet.Config{
		Owners:      owners,
		K:           opt.IndexOptions.K,
		Shards:      al.SeedTableShards(),
		Fingerprint: fp,
	})
	if err != nil {
		return nil, err
	}
	defer dc.Close()
	warmCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = dc.Warm(warmCtx)
	cancel()
	if err != nil {
		return nil, err
	}

	cmp := &DHTNetComparison{Nodes: nodes}
	qopt := opt.QueryOptions
	qopt.CollectAlignments = true

	run := func(q core.QueryOptions) (DHTNetRun, *meraligner.Results, error) {
		start := time.Now()
		res, err := al.Align(context.Background(), reads, q)
		if err != nil {
			return DHTNetRun{}, nil, err
		}
		wall := time.Since(start).Seconds()
		return DHTNetRun{ReadsPerSec: float64(len(reads)) / wall, WallS: wall}, res, nil
	}

	var localRes, remoteRes *meraligner.Results
	if cmp.Local, localRes, err = run(qopt); err != nil {
		return nil, err
	}
	qr := qopt
	qr.SeedResolver = dc
	if cmp.Remote, remoteRes, err = run(qr); err != nil {
		return nil, err
	}
	cmp.Lookup = dc.Stats()

	var localSAM, remoteSAM bytes.Buffer
	if err := meraligner.WriteSAM(&localSAM, localRes, al.Targets(), reads); err != nil {
		return nil, err
	}
	if err := meraligner.WriteSAM(&remoteSAM, remoteRes, al.Targets(), reads); err != nil {
		return nil, err
	}
	cmp.Identical = bytes.Equal(localSAM.Bytes(), remoteSAM.Bytes())
	return cmp, nil
}
