package expt

import (
	"fmt"
	"math/rand"

	"github.com/lbl-repro/meraligner/internal/cache"
)

// Fig7 reproduces the analytic seed-reuse probability curve (d=100, L=100,
// k=51 => f=50, ppn=24), validated by Monte-Carlo simulation of the
// balls-into-bins process.
func Fig7(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "fig7",
		Title:   "Probability of any seed being reused on-node vs cores (f=50, ppn=24)",
		Paper:   "near 1.0 at small core counts, decaying to ~0.07 at 15,360 cores (infinite-cache bound)",
		Headers: []string{"cores", "nodes", "P(reuse) analytic", "P(reuse) Monte-Carlo"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	trials := 200000
	if cfg.Quick {
		trials = 20000
	}
	const f, ppn = 50, 24
	for _, cores := range []int{480, 960, 1920, 3840, 7680, 11520, 15360} {
		analytic := cache.ReuseProbability(f, cores, ppn)
		mc := cache.SimulateReuse(rng, f, cores, ppn, trials)
		rep.AddRow(fmt.Sprint(cores), fmt.Sprint(cores/ppn),
			fmt.Sprintf("%.4f", analytic), fmt.Sprintf("%.4f", mc))
	}
	rep.Note("analytic curve: 1-(1-1/m)^(f-1) with m = cores/ppn (§III-B)")
	return rep, nil
}
