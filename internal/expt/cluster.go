package expt

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/cluster"
	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/service"
)

// Cluster measures the distributed alignment tier over loopback HTTP
// (post-paper: the scatter/gather shape of the paper's distributed index —
// §III partitions the seed index across nodes; here the partition is by
// target slice with a stateless router merging per-read results). The same
// read traffic is served twice: by one whole-reference merserved, and by a
// 3-shard fleet behind a router. The router's output is checked
// byte-identical to the single node's before anything is timed.
func Cluster(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "cluster",
		Title: "distributed tier: 3-shard scatter/gather fleet vs one whole-reference node (loopback HTTP)",
		Paper: "post-paper experiment: the paper distributes the index across nodes and aggregates " +
			"lookups; the serving analogue shards the reference across merserved nodes behind a " +
			"router whose merged output must be byte-identical to a single node's",
		Headers: []string{"mode", "reads/s", "req p50 (ms)", "req p99 (ms)", "shard calls"},
	}
	ds, err := mkData(cfg.ecoliProfile())
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	opt := core.DefaultOptions(19)
	opt.MaxSeedHits = 200

	reads := ds.Reads
	maxReads, clients, batch := 2000, 8, 32
	if cfg.Quick {
		maxReads, clients, batch = 400, 4, 16
	}
	if len(reads) > maxReads {
		reads = reads[:maxReads]
	}

	cmp, err := RunClusterComparison(workers, opt, ds.Contigs, reads, ClusterLoad{
		Shards: 3, Replicas: 2, Clients: clients, Batch: batch,
		HedgeAfter: 250 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	if !cmp.Identical {
		return nil, errors.New("expt: router SAM differs from the single node's — the tier is broken, refusing to report timings")
	}
	rep.AddRow("single-node",
		fmt.Sprintf("%.0f", cmp.Single.ReadsPerSec),
		fmt.Sprintf("%.2f", cmp.Single.P50Ms),
		fmt.Sprintf("%.2f", cmp.Single.P99Ms),
		"-")
	rep.AddRow(fmt.Sprintf("router x%dx%d", cmp.Shards, cmp.Replicas),
		fmt.Sprintf("%.0f", cmp.Routed.ReadsPerSec),
		fmt.Sprintf("%.2f", cmp.Routed.P50Ms),
		fmt.Sprintf("%.2f", cmp.Routed.P99Ms),
		fmt.Sprintf("%d", cmp.ShardCalls))
	rep.Note("%d concurrent clients posting %d-read batches, %d reads total; SAM byte-identity between the tiers verified before timing", clients, batch, len(reads))
	rep.Note("all %d shards and the router share one host, so the fleet row measures scatter/gather overhead, not scale-out speedup — on N hosts each shard would hold 1/N of the reference (the paper's motivation: references that fit no single node)", cmp.Shards)
	rep.Note("each shard ran as a %d-replica set (hedge-after 250ms): %d failovers, %d hedges (%d won) during the routed run", cmp.Replicas, cmp.Failovers, cmp.Hedges, cmp.HedgeWins)
	return rep, nil
}

// ClusterLoad shapes one RunClusterComparison measurement.
type ClusterLoad struct {
	Shards     int           // fleet size
	Replicas   int           // serving replicas per shard (< 1 means 1)
	Clients    int           // concurrent submitters
	Batch      int           // reads per request
	HedgeAfter time.Duration // router hedge threshold (0 disables hedging)
}

// ClusterRun is one measured serving tier (shared with the repo-level
// BENCH_cluster.json recorder): client-observed throughput and latency.
type ClusterRun struct {
	ReadsPerSec float64
	WallS       float64
	P50Ms       float64
	P99Ms       float64
	Requests    int64
}

// ClusterComparison is the full single-node vs routed-fleet measurement.
type ClusterComparison struct {
	Shards     int
	Replicas   int  // serving replicas per shard
	Identical  bool // router SAM == single-node SAM on the probe batch
	Single     ClusterRun
	Routed     ClusterRun
	ShardCalls int64 // align RPC attempts the router issued fleet-wide
	Failovers  int64 // scatters re-launched on another replica after a failure
	Hedges     int64 // speculative second-replica launches
	HedgeWins  int64 // hedges that answered before the primary
}

// RunClusterComparison builds one whole-reference index and a Shards-way
// fleet (real `SaveShards` snapshots reopened from disk), serves both over
// loopback HTTP, checks the router's SAM output byte-identical to the
// single node's, then drives the same batched traffic through each tier.
func RunClusterComparison(workers int, opt core.Options, targets, reads []seqio.Seq, load ClusterLoad) (*ClusterComparison, error) {
	if load.Shards < 2 {
		load.Shards = 3
	}
	if load.Replicas < 1 {
		load.Replicas = 1
	}
	if load.Clients < 1 {
		load.Clients = 4
	}
	if load.Batch < 1 {
		load.Batch = 32
	}

	whole, err := meraligner.Build(workers, opt.IndexOptions, targets)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "merbench-cluster-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	paths, err := meraligner.SaveShards(workers, opt.IndexOptions, targets, load.Shards, dir)
	if err != nil {
		return nil, err
	}
	shardALs := make([]*meraligner.Aligner, 0, len(paths))
	defer func() {
		for _, sa := range shardALs {
			sa.Close()
		}
	}()
	for _, p := range paths {
		sa, err := meraligner.OpenThreads(workers, p)
		if err != nil {
			return nil, err
		}
		shardALs = append(shardALs, sa)
	}

	// One loopback merserved per index.
	single, err := startExptService(whole, opt.QueryOptions, workers, len(reads))
	if err != nil {
		return nil, err
	}
	defer single.stop()
	shardSpecs := make([]string, 0, len(shardALs))
	var fleet []*exptServer
	defer func() {
		for _, s := range fleet {
			s.stop()
		}
	}()
	for _, sa := range shardALs {
		// Each replica of a shard is its own loopback service instance over
		// the shard's (read-only, share-safe) index.
		replicaURLs := make([]string, 0, load.Replicas)
		for r := 0; r < load.Replicas; r++ {
			s, err := startExptService(sa, opt.QueryOptions, workers, len(reads))
			if err != nil {
				return nil, err
			}
			fleet = append(fleet, s)
			replicaURLs = append(replicaURLs, s.base)
		}
		shardSpecs = append(shardSpecs, strings.Join(replicaURLs, "|"))
	}

	rt, err := cluster.New(cluster.Config{
		Shards:     shardSpecs,
		QueueReads: len(reads) + 1, // never 429 during the measurement
		HedgeAfter: load.HedgeAfter,
		Version:    "merbench",
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	router, err := startExptHandler(rt)
	if err != nil {
		return nil, err
	}
	defer router.stop()
	deadline := time.Now().Add(30 * time.Second)
	for !rt.Ready() {
		if time.Now().After(deadline) {
			return nil, errors.New("expt: router never assembled its fleet catalog")
		}
		time.Sleep(10 * time.Millisecond)
	}

	cmp := &ClusterComparison{Shards: load.Shards, Replicas: load.Replicas}

	// Byte-identity probe before any timing: a routed fleet that answers
	// differently from a single node is wrong, not slow.
	probe := reads
	if len(probe) > 256 {
		probe = probe[:256]
	}
	req := client.AlignRequest{Reads: client.FromSeqs(probe)}
	wantSAM, err := client.New(single.base).AlignSAM(context.Background(), req)
	if err != nil {
		return nil, err
	}
	gotSAM, err := client.New(router.base).AlignSAM(context.Background(), req)
	if err != nil {
		return nil, err
	}
	cmp.Identical = bytes.Equal(gotSAM, wantSAM)
	if !cmp.Identical {
		return cmp, nil
	}

	if cmp.Single, err = driveBatches(single.base, reads, load.Clients, load.Batch); err != nil {
		return nil, err
	}
	if cmp.Routed, err = driveBatches(router.base, reads, load.Clients, load.Batch); err != nil {
		return nil, err
	}
	st := rt.Stats()
	for _, sh := range st.Shards {
		cmp.ShardCalls += sh.Calls
	}
	cmp.Failovers = st.Failovers
	cmp.Hedges = st.Hedges
	cmp.HedgeWins = st.HedgeWins
	return cmp, nil
}

// exptServer is one loopback HTTP server plus its teardown.
type exptServer struct {
	base string
	stop func()
}

func startExptHandler(h http.Handler) (*exptServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: h}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			_ = err // surfaced through failed client requests
		}
	}()
	return &exptServer{
		base: "http://" + ln.Addr().String(),
		stop: func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = hs.Shutdown(ctx)
			<-done
		},
	}, nil
}

func startExptService(al *meraligner.Aligner, qopt core.QueryOptions, workers, queue int) (*exptServer, error) {
	srv, err := service.New(service.Config{
		Aligner:    al,
		Query:      qopt,
		Workers:    workers,
		QueueReads: queue + 1,
	})
	if err != nil {
		return nil, err
	}
	s, err := startExptHandler(srv)
	if err != nil {
		srv.Close()
		return nil, err
	}
	stop := s.stop
	s.stop = func() {
		stop()
		srv.Close()
	}
	return s, nil
}

// driveBatches posts reads in fixed-size batches from `clients` concurrent
// loopback clients and reports client-observed throughput and latency.
func driveBatches(base string, reads []seqio.Seq, clients, batch int) (ClusterRun, error) {
	tr := &http.Transport{MaxIdleConns: clients * 2, MaxIdleConnsPerHost: clients * 2}
	defer tr.CloseIdleConnections()
	cl := client.New(base, client.WithHTTPClient(&http.Client{Transport: tr}))

	nBatches := (len(reads) + batch - 1) / batch
	latencies := make([]time.Duration, nBatches)
	errs := make([]error, clients)
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nBatches {
					return
				}
				lo := b * batch
				hi := lo + batch
				if hi > len(reads) {
					hi = len(reads)
				}
				req := client.AlignRequest{Reads: client.FromSeqs(reads[lo:hi])}
				t0 := time.Now()
				if _, err := cl.Align(context.Background(), req); err != nil {
					errs[c] = fmt.Errorf("batch %d: %w", b, err)
					return
				}
				latencies[b] = time.Since(t0)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return ClusterRun{}, err
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	q := func(p float64) float64 {
		i := int(p * float64(len(latencies)-1))
		return float64(latencies[i].Microseconds()) / 1e3
	}
	return ClusterRun{
		ReadsPerSec: float64(len(reads)) / wall,
		WallS:       wall,
		P50Ms:       q(0.5),
		P99Ms:       q(0.99),
		Requests:    int64(nBatches),
	}, nil
}
