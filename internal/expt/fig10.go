package expt

import (
	"fmt"

	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// Fig10 reproduces the exact-match optimization ablation: the aligning
// phase with and without the single-copy-seed fast path of §IV-A, split
// into computation and communication.
func Fig10(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "fig10",
		Title: "Aligning phase, w/o vs w/ exact-match optimization",
		Paper: "2.8x / 3.4x / 3.1x faster at 480 / 1,920 / 7,680 cores; ~59% of aligned reads took " +
			"the fast path; at 480 cores computation improved 2.48x and communication 2.82x",
		Headers: []string{"paper cores", "config", "comm(s)", "comp(s)", "align total(s)", "improvement"},
	}
	ds, err := mkData(cfg.humanProfile())
	if err != nil {
		return nil, err
	}

	cores := []int{480, 1920, 7680}
	if cfg.Quick {
		cores = []int{480, 1920}
	}
	for _, pc := range cores {
		threads := cfg.scaledCores(pc)
		mach := upc.Edison(threads)
		mach.Workers = cfg.Workers
		mach.Seed = cfg.Seed

		run := func(exact bool) (*core.Results, upc.PhaseStat, error) {
			opt := scaledOptions()
			opt.ExactMatch = exact
			res, err := core.Run(mach, opt, ds.Contigs, ds.Reads)
			if err != nil {
				return nil, upc.PhaseStat{}, err
			}
			ph, _ := res.Phase(core.PhaseAlign)
			return res, ph, nil
		}
		without, phW, err := run(false)
		if err != nil {
			return nil, err
		}
		with, phO, err := run(true)
		if err != nil {
			return nil, err
		}
		rep.AddRow(fmt.Sprint(pc), "w/o opt", secs(phW.MaxComm), secs(phW.MaxComp), secs(phW.Wall), "")
		rep.AddRow(fmt.Sprint(pc), "w/ opt", secs(phO.MaxComm), secs(phO.MaxComp), secs(phO.Wall),
			ratio(phW.Wall, phO.Wall))
		rep.Note("%d cores: %.0f%% of reads used the fast path; comp %.2fx, comm %.2fx; SW calls %d -> %d",
			pc, 100*float64(with.ExactPathReads)/float64(max(1, with.TotalReads)),
			phW.MaxComp/phO.MaxComp, phW.MaxComm/phO.MaxComm, without.SWCalls, with.SWCalls)
	}
	return rep, nil
}
