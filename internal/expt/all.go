package expt

import "fmt"

// Experiments maps experiment ids to their runners, in paper order.
var Experiments = []struct {
	ID   string
	Run  func(Config) (*Report, error)
	Desc string
}{
	{"fig1", Fig1, "end-to-end strong scaling, human & wheat, + baseline points"},
	{"fig7", Fig7, "seed reuse probability vs cores (analytic + Monte-Carlo)"},
	{"fig8", Fig8, "aggregating-stores ablation on index construction"},
	{"fig9", Fig9, "software caching ablation on aligning-phase communication"},
	{"fig10", Fig10, "exact-match optimization ablation on the aligning phase"},
	{"table1", Table1, "load balancing by random permutation"},
	{"table2", Table2, "end-to-end comparison vs pMap+BWA-mem/Bowtie2"},
	{"fig11", Fig11, "single-node real-parallelism comparison on E. coli"},
	{"serve", Serve, "build-once/serve-many vs rebuild-per-batch (post-paper)"},
	{"service", Service, "merserved micro-batching: coalesced vs per-request serving (post-paper)"},
	{"cluster", Cluster, "sharded fleet behind a scatter/gather router vs one node (post-paper)"},
	{"dhtnet", DHTNet, "network seed DHT: remote seed-shard fleet vs the local seed table (post-paper)"},
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Report, error) {
	for _, e := range Experiments {
		if e.ID == id {
			return e.Run(cfg)
		}
	}
	return nil, fmt.Errorf("expt: unknown experiment %q", id)
}

// RunAll executes every experiment in order, stopping at the first error.
func RunAll(cfg Config) ([]*Report, error) {
	var out []*Report
	for _, e := range Experiments {
		rep, err := e.Run(cfg)
		if err != nil {
			return out, fmt.Errorf("expt: %s: %w", e.ID, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
