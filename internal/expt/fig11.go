package expt

import (
	"fmt"
	"runtime"

	"github.com/lbl-repro/meraligner/internal/baseline"
	"github.com/lbl-repro/meraligner/internal/core"
)

// Fig11 reproduces the single-node shared-memory comparison on the E. coli
// workload with REAL parallelism: merAligner in threaded mode against the
// BWA-mem-like and Bowtie2-like mappers, sweeping 1..24 cores. All times
// are genuine wall-clock measurements on the host. The baselines' serial
// index construction is included in their totals, which is what makes
// their curves flatten while merAligner keeps scaling — the paper's shape.
func Fig11(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "fig11",
		Title: "Single-node scaling on E. coli (real wall-clock, seed length 19)",
		Paper: "merAligner keeps scaling to 24 cores; BWA-mem and Bowtie2 stop improving at 18; " +
			"at 24 cores merAligner is 6.33x and 7.2x faster",
		Headers: []string{"cores", "merAligner (s)", "bwamem-like (s)", "bowtie2-like (s)", "mer vs bwa", "mer vs bt2"},
	}
	ds, err := mkData(cfg.ecoliProfile())
	if err != nil {
		return nil, err
	}

	sweep := []int{1, 2, 6, 12, 18, 24}
	if cfg.Quick {
		sweep = []int{1, 4}
	}
	maxCores := runtime.NumCPU()
	oversubscribed := false

	runMer := core.RunThreaded
	if cfg.Engine == "sim" {
		runMer = core.RunThreadedSim
	}
	for _, p := range sweep {
		if p > maxCores {
			// Run oversubscribed rather than dropping the point: the
			// mer-vs-baseline comparison stays valid (both sides share the
			// host), only the scaling slope flattens.
			oversubscribed = true
		}
		opt := core.DefaultOptions(19)
		opt.MaxSeedHits = 200
		mer, err := runMer(p, opt, ds.Contigs, ds.Reads)
		if err != nil {
			return nil, err
		}
		merT := mer.TotalRealWall()

		bwa, err := baseline.RunSingleNode(p, ds.Contigs, ds.Reads, baseline.BWAMemOptions())
		if err != nil {
			return nil, err
		}
		bt2, err := baseline.RunSingleNode(p, ds.Contigs, ds.Reads, baseline.Bowtie2Options())
		if err != nil {
			return nil, err
		}
		bwaT := bwa.TotalWall().Seconds()
		bt2T := bt2.TotalWall().Seconds()
		rep.AddRow(fmt.Sprint(p), secs(merT), secs(bwaT), secs(bt2T),
			ratio(bwaT, merT), ratio(bt2T, merT))
	}
	if oversubscribed {
		rep.Note("host has %d cores: larger worker counts ran oversubscribed (valid for the "+
			"mer-vs-baseline comparison, flat for scaling)", maxCores)
	}
	rep.Note("all rows are real host measurements; baseline totals include their serial index build " +
		"(merAligner's is parallel), which is why the baseline curves flatten")
	rep.Note("paper aligned: merAligner 97.4%%, BWA-mem 96.3%%, Bowtie2 95.8%% of E. coli reads")
	return rep, nil
}
