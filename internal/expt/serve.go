package expt

import (
	"context"
	"fmt"
	"runtime"

	"github.com/lbl-repro/meraligner/internal/core"
)

// Serve measures the build-once/serve-many API (post-paper: the production
// serving shape the ROADMAP targets, and the reason MICA-style servers keep
// one resident index). The same read set is split into batches and aligned
// twice: rebuilding the index for every batch (the one-shot RunThreaded
// shape) versus building once and streaming every batch through the
// resident index. All times are real host measurements.
func Serve(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "serve",
		Title: "Build-once/serve-many vs rebuild-per-batch (real wall-clock)",
		Paper: "post-paper experiment: a resident index amortizes §III construction across batches; " +
			"rebuild-per-batch pays it every time",
		Headers: []string{"batches", "rebuild (s)", "resident (s)", "speedup", "build share"},
	}
	ds, err := mkData(cfg.ecoliProfile())
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	opt := core.DefaultOptions(19)
	opt.MaxSeedHits = 200

	counts := []int{2, 4, 8}
	if cfg.Quick {
		counts = []int{2, 4}
	}
	ctx := context.Background()
	for _, nb := range counts {
		batches := SplitBatches(len(ds.Reads), nb)

		var rebuild float64
		for _, b := range batches {
			res, err := core.RunThreaded(workers, opt, ds.Contigs, ds.Reads[b[0]:b[1]])
			if err != nil {
				return nil, err
			}
			rebuild += res.TotalRealWall()
		}

		ix, err := core.BuildIndex(workers, opt.IndexOptions, ds.Contigs)
		if err != nil {
			return nil, err
		}
		resident := ix.BuildWall()
		for _, b := range batches {
			res, err := ix.Query(ctx, workers, opt.QueryOptions, ds.Reads[b[0]:b[1]])
			if err != nil {
				return nil, err
			}
			resident += res.TotalRealWall()
		}

		rep.AddRow(fmt.Sprint(nb), secs(rebuild), secs(resident),
			ratio(rebuild, resident),
			fmt.Sprintf("%.0f%%", 100*ix.BuildWall()/resident))
	}
	rep.Note("rebuild = N one-shot RunThreaded calls; resident = one BuildIndex + N Query calls on the same index")
	rep.Note("speedup grows with batch count toward (build+align)/align; the recorded CI baseline is BENCH_serve.json")
	return rep, nil
}

// SplitBatches cuts [0, n) into nb near-equal contiguous ranges (shared
// with the repo-level serve benchmark).
func SplitBatches(n, nb int) [][2]int {
	out := make([][2]int, 0, nb)
	for i := 0; i < nb; i++ {
		lo, hi := n*i/nb, n*(i+1)/nb
		out = append(out, [2]int{lo, hi})
	}
	return out
}
