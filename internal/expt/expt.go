// Package expt regenerates every table and figure of the paper's evaluation
// (§VI) on the simulated machine and, for Fig 11, on the real host.
//
// Scaled-axis convention: the paper's workloads are hundreds of gigabases;
// ours are megabases. To keep the per-core work and the message economics
// in the same regime as the paper, strong-scaling experiments divide the
// paper's core counts by Config.CoreScale (default 16): a simulated run on
// 30 threads is reported against the paper's 480-core point, 960 against
// 15,360. The simulated machine still has 24-core nodes, the same latency /
// bandwidth ratios, and spans the same 32x strong-scaling range, so speedup
// curves, optimization ratios and crossovers are directly comparable; only
// absolute seconds are smaller. Table 1 runs at the paper's true 480 cores
// (its effect depends on reads-per-thread locality, not on scale).
package expt

import (
	"fmt"
	"math"
	"strings"

	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/genome"
)

// Config controls workload scale for all experiments.
type Config struct {
	// Quick shrinks workloads to smoke-test size (used by unit tests and
	// the repo-level benchmarks). Full uses merbench defaults.
	Quick bool

	// CoreScale divides the paper's core counts (default 16; Quick: 48).
	CoreScale int

	// Workers bounds host goroutines executing simulated threads
	// (0 = NumCPU).
	Workers int

	// Engine selects the execution engine for the real-parallelism
	// experiment (Fig 11): "threaded" (default) runs the goroutine-backed
	// shared-memory engine with measured wall-clock phases; "sim" runs the
	// simulated pipeline configured as a single node (the pre-engine
	// behavior, retained for comparison).
	Engine string

	Seed int64
}

// DefaultConfig returns the merbench configuration.
func DefaultConfig() Config { return Config{CoreScale: 16, Seed: 1} }

// QuickConfig returns the smoke-test configuration. CoreScale stays at 16
// even in quick mode so every simulated point spans multiple nodes —
// single-node points have no network communication and would make the
// caching and aggregation ablations degenerate.
func QuickConfig() Config { return Config{Quick: true, CoreScale: 16, Seed: 1} }

func (c Config) coreScale() int {
	if c.CoreScale > 0 {
		return c.CoreScale
	}
	return 16
}

// scaledCores maps a paper core count to simulated threads (>= 2).
func (c Config) scaledCores(paperCores int) int {
	s := paperCores / c.coreScale()
	if s < 2 {
		s = 2
	}
	return s
}

// humanProfile returns the scaled human-like workload.
func (c Config) humanProfile() genome.Profile {
	size := 4_000_000
	depth := 12.0
	if c.Quick {
		size, depth = 400_000, 8
	}
	p := genome.HumanLike(size)
	p.Depth = depth
	p.InsertMean = 0 // unpaired keeps read counts predictable
	p.Seed = c.Seed
	return p
}

// wheatProfile returns the scaled wheat-like workload.
func (c Config) wheatProfile() genome.Profile {
	size := 5_000_000
	depth := 10.0
	if c.Quick {
		size, depth = 500_000, 6
	}
	p := genome.WheatLike(size)
	p.Depth = depth
	p.InsertMean = 0
	p.Seed = c.Seed + 1
	return p
}

// ecoliProfile returns the Fig 11 E. coli workload.
func (c Config) ecoliProfile() genome.Profile {
	p := genome.EColiLike()
	p.GenomeLen = 1_160_000 // quarter of K-12 keeps the sweep minutes-scale
	p.Depth = 4
	if c.Quick {
		p.GenomeLen = 300_000
		p.Depth = 2
		p.ContigMean = 20_000
	}
	p.Seed = c.Seed + 2
	return p
}

// mkData generates a data set, failing loudly on profile errors.
func mkData(p genome.Profile) (*genome.DataSet, error) {
	ds, err := genome.Generate(p)
	if err != nil {
		return nil, fmt.Errorf("expt: generating %s: %w", p.Name, err)
	}
	if len(ds.Contigs) == 0 {
		return nil, fmt.Errorf("expt: %s produced no contigs", p.Name)
	}
	return ds, nil
}

// Report is one regenerated table or figure.
type Report struct {
	ID      string // "fig1", "table2", ...
	Title   string // what it reproduces
	Paper   string // the paper's headline observation (the shape target)
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a free-text note.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", strings.ToUpper(r.ID), r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&sb, "paper: %s\n", r.Paper)
	}
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Headers)
	sep := make([]string, len(r.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// secs formats simulated seconds compactly.
func secs(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.4f", s)
	default:
		return fmt.Sprintf("%.2e", s)
	}
}

// ratio formats a speedup ratio.
func ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", a/b)
}

// efficiency computes parallel efficiency of strong scaling from p0->p1.
func efficiency(t0 float64, p0 int, t1 float64, p1 int) float64 {
	if t1 == 0 || p1 == 0 {
		return math.NaN()
	}
	return (t0 * float64(p0)) / (t1 * float64(p1))
}

// scaledOptions returns the paper's k=51 configuration with the
// max-alignments-per-seed threshold tightened for scaled genomes, whose
// repeat copy numbers are large relative to genome size.
func scaledOptions() core.Options {
	opt := core.DefaultOptions(51)
	opt.MaxSeedHits = 50
	return opt
}
