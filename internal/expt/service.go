package expt

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/service"
)

// Service measures merserved's dynamic micro-batching over loopback HTTP
// (post-paper: the network face of the resident index, the MICA/SNAP
// serving shape the ROADMAP targets). N concurrent clients each post
// single-read requests; the same traffic is served twice — with the
// batching window open (requests coalesced into shared engine calls) and
// with coalescing disabled (every request its own engine call, the naive
// server shape). All times are real host measurements over real HTTP.
func Service(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "service",
		Title: "merserved micro-batching: coalesced vs per-request engine calls (loopback HTTP)",
		Paper: "post-paper experiment: coalescing concurrent single-read requests onto the resident " +
			"index amortizes per-call engine overhead; single-read serving should approach batch throughput",
		Headers: []string{"mode", "reads/s", "mean batch", "req p50 (ms)", "req p99 (ms)"},
	}
	ds, err := mkData(cfg.ecoliProfile())
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	opt := core.DefaultOptions(19)
	opt.MaxSeedHits = 200

	al, err := meraligner.Build(workers, opt.IndexOptions, ds.Contigs)
	if err != nil {
		return nil, err
	}

	reads := ds.Reads
	maxReads := 2000
	clients := 8
	if cfg.Quick {
		maxReads, clients = 400, 4
	}
	if len(reads) > maxReads {
		reads = reads[:maxReads]
	}

	for _, mode := range []struct {
		name     string
		coalesce bool
	}{
		{"per-request", false},
		{"coalesced", true},
	} {
		run, err := RunServiceMode(al, opt.QueryOptions, reads, clients, workers, mode.coalesce)
		if err != nil {
			return nil, fmt.Errorf("expt: service mode %s: %w", mode.name, err)
		}
		rep.AddRow(mode.name,
			fmt.Sprintf("%.0f", run.ReadsPerSec),
			fmt.Sprintf("%.1f", run.MeanBatch),
			fmt.Sprintf("%.2f", run.P50Ms),
			fmt.Sprintf("%.2f", run.P99Ms))
	}
	rep.Note("%d concurrent clients, one read per request, %d reads total; same resident index both modes", clients, len(reads))
	rep.Note("batching is continuous: batches grow only while the engine is busy, so the mean-batch column tracks how far the engine, not the HTTP transport, is the bottleneck — on few-core hosts transport dominates and batches stay small")
	rep.Note("the engine-path isolation of the same comparison (transport excluded) is the recorded BENCH_service.json baseline, which must stay >= 2x")
	return rep, nil
}

// ServiceRun is one measured serving mode (shared with the repo-level
// BENCH_service.json recorder).
type ServiceRun struct {
	ReadsPerSec float64
	MeanBatch   float64
	MaxBatch    int64
	P50Ms       float64
	P99Ms       float64
	AlignP50Us  float64
	Requests    int64
	Reads       int64
	WallS       float64
}

// RunServiceMode serves every read as its own HTTP request from `clients`
// concurrent loopback clients and reports measured throughput plus the
// server's own stats. coalesce=true opens the batching window (MaxBatch
// 256 / MaxWait 4ms); coalesce=false pins MaxBatch to 1, the
// one-engine-call-per-request ablation.
func RunServiceMode(al *meraligner.Aligner, qopt core.QueryOptions, reads []seqio.Seq, clients, workers int, coalesce bool) (*ServiceRun, error) {
	cfg := service.Config{
		Aligner:    al,
		Query:      qopt,
		Workers:    workers,
		QueueReads: len(reads) + 1, // never 429 during the measurement
	}
	if coalesce {
		cfg.MaxBatch = 256
		cfg.MaxWait = 4 * time.Millisecond
	} else {
		cfg.MaxBatch = 1 // one engine call per request: the naive shape
		cfg.MaxWait = -1 // and no window-holding at all
	}
	srv, err := service.New(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Surfaced through failed client requests below.
			_ = err
		}
	}()

	base := "http://" + ln.Addr().String()
	tr := &http.Transport{MaxIdleConns: clients * 2, MaxIdleConnsPerHost: clients * 2}
	cl := client.New(base, client.WithHTTPClient(&http.Client{Transport: tr}))

	var next atomic.Int64
	errs := make([]error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reads) {
					return
				}
				req := client.AlignRequest{Reads: client.FromSeqs(reads[i : i+1])}
				if _, err := cl.Align(context.Background(), req); err != nil {
					errs[c] = fmt.Errorf("read %d: %w", i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	st, err := cl.Stats(context.Background())
	if err != nil {
		return nil, err
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		return nil, err
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		return nil, err
	}
	tr.CloseIdleConnections()
	<-serveDone

	return &ServiceRun{
		ReadsPerSec: float64(len(reads)) / wall,
		MeanBatch:   st.MeanBatchReads,
		MaxBatch:    st.MaxBatchReads,
		P50Ms:       st.RequestP50Ms,
		P99Ms:       st.RequestP99Ms,
		AlignP50Us:  st.AlignReadP50Us,
		Requests:    st.Requests,
		Reads:       st.Reads,
		WallS:       wall,
	}, nil
}
