package expt

import (
	"fmt"

	"github.com/lbl-repro/meraligner/internal/baseline"
	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// Table2 reproduces the end-to-end comparison at the paper's 7,680-core
// point: merAligner (fully parallel) against pMap-driven BWA-mem-like and
// Bowtie2-like runs, whose seed-index construction is serial. Baseline
// mapping work is measured by really running the baseline mappers on a
// read sample and projecting with the pMap model; merAligner numbers come
// from the simulator on the identical workload.
func Table2(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "table2",
		Title: "End-to-end comparison at 7,680 cores (human-like workload)",
		Paper: "merAligner 284s total (index 21s P, map 263s P); BWA-mem 5,805s (index 5,384s S); " +
			"Bowtie2 11,119s (index 10,916s S); merAligner 20.4x and 39.4x faster",
		Headers: []string{"aligner", "index constr (s)", "mapping (s)", "total (s)", "speedup", "aligned %"},
	}
	ds, err := mkData(cfg.humanProfile())
	if err != nil {
		return nil, err
	}
	const paperCores = 7680
	threads := cfg.scaledCores(paperCores)
	mach := upc.Edison(threads)
	mach.Workers = cfg.Workers
	mach.Seed = cfg.Seed

	// --- merAligner (simulated, fully parallel) ---
	opt := scaledOptions()
	mer, err := core.Run(mach, opt, ds.Contigs, ds.Reads)
	if err != nil {
		return nil, err
	}
	merIndex := mer.IndexWall()
	merMap := mer.AlignWall() + mer.IOWall()
	merTotal := merIndex + merMap
	merAlignedPct := 100 * float64(mer.AlignedReads) / float64(max(1, mer.TotalReads))
	rep.AddRow("merAligner", secs(merIndex)+" (P)", secs(merMap)+" (P)", secs(merTotal), "1.0x",
		fmt.Sprintf("%.1f", merAlignedPct))

	// --- Baselines via measured work + pMap projection ---
	sample := ds.Reads
	const maxSample = 20000
	scale := 1.0
	if len(sample) > maxSample {
		scale = float64(len(sample)) / maxSample
		sample = sample[:maxSample]
	}
	var readBytes int64
	for _, r := range ds.Reads {
		readBytes += int64(r.Seq.Len()*2 + 40)
	}
	model := baseline.DefaultPMapModel(mach)
	for _, bopt := range []baseline.Options{baseline.BWAMemOptions(), baseline.Bowtie2Options()} {
		res, err := baseline.RunSingleNode(max(1, cfg.Workers), ds.Contigs, sample, bopt)
		if err != nil {
			return nil, err
		}
		st := res.Stats
		st.SWCells = int64(float64(st.SWCells) * scale)
		st.SWCalls = int64(float64(st.SWCalls) * scale)
		ops := res.SearchOps
		ops.FMProbes = int64(float64(ops.FMProbes) * scale)
		ops.LocateSteps = int64(float64(ops.LocateSteps) * scale)
		proj := model.Project(bopt.Tool, res.BuildOps, ops, st, res.IndexBytes, len(ds.Reads), readBytes)

		alignedPct := 100 * float64(res.Stats.Aligned) / float64(max(1, len(sample)))
		rep.AddRow(bopt.Tool.String()+" (pMap)",
			secs(proj.IndexBuildWall+proj.ReplicationWall)+" (S)",
			secs(proj.MapWall)+" (P)", secs(proj.Total()),
			ratio(proj.Total(), merTotal),
			fmt.Sprintf("%.1f", alignedPct))
		rep.Note("%s: read partitioning by single master would add %ss (excluded, as in the paper)",
			bopt.Tool, secs(proj.ReadPartitionWall))
	}
	rep.Note("merAligner aligned %.1f%% of reads (paper: 86.3%% human; BWA-mem 83.8%%, Bowtie2 82.6%%)", merAlignedPct)
	rep.Note("simulated at %d threads = paper 7,680 cores / CoreScale %d; serial-vs-parallel index "+
		"construction is the structural bottleneck being reproduced", threads, cfg.coreScale())
	return rep, nil
}
