package expt

import (
	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// Table1 reproduces the load-balancing study: the human-like workload with
// reads grouped by genome position (the original input layout, including
// groups that map to no target), aligned with and without the §IV-B random
// permutation, at the paper's 480 cores. Reported are the min/max/avg
// computation times and min/max/avg total (computation + communication)
// times across threads during the aligning phase.
func Table1(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "table1",
		Title: "Effect of load balancing (random permutation) at 480 cores",
		Paper: "permutation cuts max computation ~2.4x (1945->800) but makes the seed cache less " +
			"effective (avg total rises 2073->3277); max total still improves ~5% (4092->3885)",
		Headers: []string{"balancing", "comp min", "comp max", "comp avg", "total min", "total max", "total avg"},
	}
	prof := cfg.humanProfile()
	prof.SortByPosition = true // grouped reads, as in the paper's input
	ds, err := mkData(prof)
	if err != nil {
		return nil, err
	}

	threads := 480
	if cfg.Quick {
		threads = 96
	}
	mach := upc.Edison(threads)
	mach.Workers = cfg.Workers
	mach.Seed = cfg.Seed

	run := func(permute bool) (upc.PhaseStat, error) {
		opt := scaledOptions()
		opt.Permute = permute
		res, err := core.Run(mach, opt, ds.Contigs, ds.Reads)
		if err != nil {
			return upc.PhaseStat{}, err
		}
		ph, _ := res.Phase(core.PhaseAlign)
		return ph, nil
	}
	with, err := run(true)
	if err != nil {
		return nil, err
	}
	without, err := run(false)
	if err != nil {
		return nil, err
	}
	rep.AddRow("yes", secs(with.MinComp), secs(with.MaxComp), secs(with.AvgComp),
		secs(with.MinClock), secs(with.MaxClock), secs(with.AvgClock))
	rep.AddRow("no", secs(without.MinComp), secs(without.MaxComp), secs(without.AvgComp),
		secs(without.MinClock), secs(without.MaxClock), secs(without.AvgClock))
	rep.Note("max computation improvement from permutation: %.2fx (paper: ~2.4x)",
		without.MaxComp/with.MaxComp)
	rep.Note("max total change: %.2fx (paper: ~1.05x in favor of permutation)",
		without.MaxClock/with.MaxClock)
	return rep, nil
}
