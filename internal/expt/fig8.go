package expt

import (
	"fmt"

	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// Fig8 reproduces the distributed seed-index construction ablation: the
// "aggregating stores" optimization (S=1000) against the straightforward
// fine-grained algorithm, at the paper's 480 / 1,920 / 7,680 core points.
// Only the index-construction phases run (no queries).
func Fig8(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "fig8",
		Title:   "Seed index construction, w/o vs w/ aggregating stores (S=1000)",
		Paper:   "4.7x / 3.9x / 4.8x faster at 480 / 1,920 / 7,680 cores; optimized build scales 12.7x from 480 to 7,680",
		Headers: []string{"paper cores", "sim threads", "w/o opt (s)", "w/ opt (s)", "improvement"},
	}
	prof := cfg.humanProfile()
	ds, err := mkData(prof)
	if err != nil {
		return nil, err
	}

	cores := []int{480, 1920, 7680}
	if cfg.Quick {
		cores = []int{480, 1920}
	}
	var optTimes []float64
	for _, pc := range cores {
		threads := cfg.scaledCores(pc)
		mach := upc.Edison(threads)
		mach.Workers = cfg.Workers
		mach.Seed = cfg.Seed

		build := func(mode dht.BuildMode) (float64, error) {
			opt := scaledOptions()
			opt.Mode = mode
			res, err := core.Run(mach, opt, ds.Contigs, nil) // index phases only
			if err != nil {
				return 0, err
			}
			return res.IndexWall(), nil
		}
		fine, err := build(dht.FineGrained)
		if err != nil {
			return nil, err
		}
		agg, err := build(dht.Aggregating)
		if err != nil {
			return nil, err
		}
		optTimes = append(optTimes, agg)
		rep.AddRow(fmt.Sprint(pc), fmt.Sprint(threads), secs(fine), secs(agg), ratio(fine, agg))
	}
	if len(optTimes) >= 2 {
		last := len(optTimes) - 1
		rep.Note("optimized construction speedup %d -> %d cores: %.1fx (paper: 12.7x over 16x more cores)",
			cores[0], cores[last], optTimes[0]/optTimes[last])
	}
	return rep, nil
}
