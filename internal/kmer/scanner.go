package kmer

import (
	"fmt"

	"github.com/lbl-repro/meraligner/internal/dna"
)

// Scanner enumerates every seed of a packed sequence with O(1) work per
// position, maintaining the forward window and its reverse complement
// incrementally instead of re-extracting k bases per offset. Advancing the
// window by one base shifts one 2-bit code into each of the two maintained
// seeds:
//
//	forward: drop base 0, append the new base at position k-1 (shift down)
//	reverse: drop position k-1, insert the new base's complement at 0 (shift up)
//
// so the canonical seed and its strand fall out of one comparison per
// position. The emitted (canonical, strand) pairs are bit-identical to
// FromPacked(p, off, k).Canonical(k) at every offset — the index build and
// the query hot path both rely on that equivalence.
//
// A Scanner is a plain value: embed it or declare it on the stack and Reset
// it per sequence; it allocates nothing. It is not safe for concurrent use.
type Scanner struct {
	p   dna.Packed
	k   int
	n   int // seed count: Len-k+1
	off int // offset of the current seed; -1 before the first Next

	fwd, rc Kmer

	twoWord  bool
	fwdShift uint   // bit position of the incoming base in the forward top word
	rcMask   uint64 // mask of the reverse complement's top word (drops the outgoing base)
}

// Reset points the scanner at sequence p with seed length k, priming the
// first window (an O(k) step paid once per sequence). A sequence shorter
// than k yields no seeds.
func (s *Scanner) Reset(p dna.Packed, k int) {
	if k <= 0 || k > MaxK {
		panic(fmt.Sprintf("kmer: k=%d out of range (1..%d)", k, MaxK))
	}
	s.p, s.k = p, k
	s.n = p.Len() - k + 1
	s.off = -1
	if s.n <= 0 {
		return
	}
	s.fwd = FromPacked(p, 0, k)
	s.rc = s.fwd.ReverseComplement(k)
	s.twoWord = k > 32
	if s.twoWord {
		s.fwdShift = uint(2 * (k - 1 - 32)) // within Hi
		if k == MaxK {
			s.rcMask = ^uint64(0)
		} else {
			s.rcMask = uint64(1)<<uint(2*(k-32)) - 1
		}
	} else {
		s.fwdShift = uint(2 * (k - 1)) // within Lo
		if k == 32 {
			s.rcMask = ^uint64(0)
		} else {
			s.rcMask = uint64(1)<<uint(2*k) - 1
		}
	}
}

// Next advances to the next seed position, returning false when the
// sequence is exhausted. The first call positions the scanner at offset 0.
func (s *Scanner) Next() bool {
	if s.off+1 >= s.n {
		return false
	}
	s.off++
	if s.off == 0 {
		return true // Reset already primed the offset-0 windows
	}
	c := s.p.CodeAt(s.off + s.k - 1)
	comp := uint64(3 - c) // complement of a 2-bit code is its bitwise NOT
	if !s.twoWord {
		s.fwd.Lo = s.fwd.Lo>>2 | uint64(c)<<s.fwdShift
		s.rc.Lo = (s.rc.Lo<<2 | comp) & s.rcMask
		return true
	}
	// Forward shifts down across the word boundary (base 32 moves into Lo);
	// the reverse complement shifts up (base 31 of Lo carries into Hi).
	s.fwd.Lo = s.fwd.Lo>>2 | s.fwd.Hi<<62
	s.fwd.Hi = s.fwd.Hi>>2 | uint64(c)<<s.fwdShift
	s.rc.Hi = (s.rc.Hi<<2 | s.rc.Lo>>62) & s.rcMask
	s.rc.Lo = s.rc.Lo<<2 | comp
	return true
}

// Offset returns the query/fragment offset of the current seed.
func (s *Scanner) Offset() int { return s.off }

// Forward returns the forward-strand seed at the current offset.
func (s *Scanner) Forward() Kmer { return s.fwd }

// Reverse returns the reverse complement of the current seed.
func (s *Scanner) Reverse() Kmer { return s.rc }

// Canonical returns the canonical form of the current seed and whether the
// reverse complement was chosen, with exactly Kmer.Canonical's tie rule
// (the forward seed wins a palindromic tie).
func (s *Scanner) Canonical() (Kmer, bool) {
	if s.rc.Less(s.fwd) {
		return s.rc, true
	}
	return s.fwd, false
}
