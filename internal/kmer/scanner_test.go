package kmer

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/lbl-repro/meraligner/internal/dna"
)

// scannerKs covers the three rolling-update regimes: single word (k < 32),
// the full-word boundary (k = 32), and the two-word case (33..64) including
// its own boundary (k = 64).
var scannerKs = []int{1, 2, 5, 19, 31, 32, 33, 34, 51, 63, 64}

// TestScannerMatchesFromPackedCanonical is the parity oracle of the rolling
// extraction: on random sequences and on sequences exercising every base
// value, the scanner must emit byte-identical (forward, canonical, strand)
// triples to the naive FromPacked+Canonical pair at every offset.
func TestScannerMatchesFromPackedCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seqs := []dna.Packed{
		dna.MustPack(strings.Repeat("A", 80)),
		dna.MustPack(strings.Repeat("T", 80)),
		dna.MustPack(strings.Repeat("ACGT", 40)),
		dna.MustPack("ACGTTGCAACGTACGTACGTTTTTGGGGCCCCAAAA"),
	}
	for i := 0; i < 24; i++ {
		seqs = append(seqs, dna.Random(rng, 20+rng.Intn(220)))
	}
	for _, k := range scannerKs {
		for si, p := range seqs {
			var sc Scanner
			sc.Reset(p, k)
			want := Count(p.Len(), k)
			got := 0
			for sc.Next() {
				off := sc.Offset()
				if off != got {
					t.Fatalf("k=%d seq=%d: offset %d, want %d", k, si, off, got)
				}
				ref := FromPacked(p, off, k)
				if sc.Forward() != ref {
					t.Fatalf("k=%d seq=%d off=%d: forward %v, want %v", k, si, off, sc.Forward(), ref)
				}
				if sc.Reverse() != ref.ReverseComplement(k) {
					t.Fatalf("k=%d seq=%d off=%d: reverse complement mismatch", k, si, off)
				}
				refCanon, refRC := ref.Canonical(k)
				canon, rc := sc.Canonical()
				if canon != refCanon || rc != refRC {
					t.Fatalf("k=%d seq=%d off=%d: canonical (%v,%v), want (%v,%v)",
						k, si, off, canon, rc, refCanon, refRC)
				}
				got++
			}
			if got != want {
				t.Fatalf("k=%d seq=%d: emitted %d seeds, want %d", k, si, got, want)
			}
		}
	}
}

// TestScannerShortSequence: sequences shorter than k yield no seeds, and a
// length-k sequence yields exactly one.
func TestScannerShortSequence(t *testing.T) {
	var sc Scanner
	sc.Reset(dna.MustPack("ACGT"), 19)
	if sc.Next() {
		t.Fatal("Next on a too-short sequence returned true")
	}
	p := dna.MustPack("ACGTACGTACGTACGTACG") // exactly 19 bases
	sc.Reset(p, 19)
	if !sc.Next() {
		t.Fatal("length-k sequence must yield one seed")
	}
	if sc.Forward() != FromPacked(p, 0, 19) {
		t.Fatal("single-seed forward mismatch")
	}
	if sc.Next() {
		t.Fatal("length-k sequence must yield exactly one seed")
	}
}

// TestScannerReuse: one scanner value Reset across sequences and seed
// lengths must behave as a fresh scanner each time.
func TestScannerReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sc Scanner
	for trial := 0; trial < 20; trial++ {
		k := scannerKs[rng.Intn(len(scannerKs))]
		p := dna.Random(rng, 10+rng.Intn(150))
		sc.Reset(p, k)
		n := 0
		for sc.Next() {
			canon, rc := sc.Canonical()
			refCanon, refRC := FromPacked(p, sc.Offset(), k).Canonical(k)
			if canon != refCanon || rc != refRC {
				t.Fatalf("trial=%d k=%d off=%d: reused scanner diverged", trial, k, sc.Offset())
			}
			n++
		}
		if n != Count(p.Len(), k) {
			t.Fatalf("trial=%d k=%d: %d seeds, want %d", trial, k, n, Count(p.Len(), k))
		}
	}
}

func TestScannerPanicsOnBadK(t *testing.T) {
	for _, k := range []int{0, -3, MaxK + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Reset(k=%d) did not panic", k)
				}
			}()
			var sc Scanner
			sc.Reset(dna.MustPack("ACGTACGT"), k)
		}()
	}
}

// BenchmarkSeedScan compares the rolling scanner against the naive per-offset
// FromPacked+Canonical extraction on both single-word and two-word seed
// lengths — the kernel behind the query hot path and the index build.
func BenchmarkSeedScan(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := dna.Random(rng, 100_000)
	for _, k := range []int{31, 51} {
		b.Run(fmt.Sprintf("naive-k%d", k), func(b *testing.B) {
			b.SetBytes(int64(p.Len()))
			var sink Kmer
			for i := 0; i < b.N; i++ {
				for off := 0; off+k <= p.Len(); off++ {
					canon, _ := FromPacked(p, off, k).Canonical(k)
					sink.Lo ^= canon.Lo
				}
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("rolling-k%d", k), func(b *testing.B) {
			b.SetBytes(int64(p.Len()))
			var sink Kmer
			var sc Scanner
			for i := 0; i < b.N; i++ {
				sc.Reset(p, k)
				for sc.Next() {
					canon, _ := sc.Canonical()
					sink.Lo ^= canon.Lo
				}
			}
			_ = sink
		})
	}
}
