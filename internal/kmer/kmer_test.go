package kmer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lbl-repro/meraligner/internal/dna"
)

func TestFromStringRoundTrip(t *testing.T) {
	for _, s := range []string{"A", "ACGT", "GATTACA",
		"ACGTACGTACGTACGTACGTACGTACGTACGT",  // k=32
		"ACGTACGTACGTACGTACGTACGTACGTACGTA", // k=33
		"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACG" /* k=51 */} {
		km, err := FromString(s)
		if err != nil {
			t.Fatalf("FromString(%q): %v", s, err)
		}
		if got := km.StringLen(len(s)); got != s {
			t.Errorf("StringLen = %q, want %q", got, s)
		}
	}
}

func TestFromStringTooLong(t *testing.T) {
	long := make([]byte, MaxK+1)
	for i := range long {
		long[i] = 'A'
	}
	if _, err := FromString(string(long)); err == nil {
		t.Error("FromString(len 65) succeeded, want error")
	}
}

func TestFromPackedMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := dna.Random(rng, 300)
	for _, k := range []int{1, 5, 19, 31, 32, 33, 51, 64} {
		for off := 0; off+k <= p.Len(); off += 7 {
			km := FromPacked(p, off, k)
			want := p.Slice(off, off+k).String()
			if got := km.StringLen(k); got != want {
				t.Fatalf("k=%d off=%d: %q want %q", k, off, got, want)
			}
		}
	}
}

func TestExtractCountAndContent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{3, 19, 31, 32, 33, 51} {
		p := dna.Random(rng, 200)
		seeds := Extract(p, k, nil)
		want := Count(p.Len(), k)
		if len(seeds) != want {
			t.Fatalf("k=%d: Extract yielded %d seeds, want %d", k, len(seeds), want)
		}
		for off, km := range seeds {
			if km != FromPacked(p, off, k) {
				t.Fatalf("k=%d off=%d: rolling extraction mismatch", k, off)
			}
		}
	}
}

func TestExtractShortSequence(t *testing.T) {
	p := dna.MustPack("ACG")
	if got := Extract(p, 5, nil); len(got) != 0 {
		t.Errorf("Extract on short sequence returned %d seeds, want 0", len(got))
	}
	if Count(3, 5) != 0 {
		t.Error("Count(3,5) != 0")
	}
	if Count(5, 5) != 1 {
		t.Error("Count(5,5) != 1")
	}
}

// Property: rolling extraction (k<=32) agrees with positional FromPacked.
func TestExtractPropertyRollingEqualsDirect(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(32)
		p := dna.Random(r, k+r.Intn(100))
		seeds := Extract(p, k, nil)
		for off, km := range seeds {
			if km != FromPacked(p, off, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(MaxK)
		p := dna.Random(r, k)
		km := FromPacked(p, 0, k)
		return km.ReverseComplement(k).ReverseComplement(k) == km
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReverseComplementMatchesDNA(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{1, 17, 32, 33, 51, 64} {
		p := dna.Random(rng, k)
		km := FromPacked(p, 0, k)
		want := p.ReverseComplement().String()
		if got := km.ReverseComplement(k).StringLen(k); got != want {
			t.Errorf("k=%d: RC = %q, want %q", k, got, want)
		}
	}
}

func TestCanonicalInvariantUnderRC(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(MaxK)
		p := dna.Random(r, k)
		km := FromPacked(p, 0, k)
		c1, _ := km.Canonical(k)
		c2, _ := km.ReverseComplement(k).Canonical(k)
		return c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHashMatchesDjb2OverPackedBytes(t *testing.T) {
	km := MustFromString("GATTACA")
	var raw [16]byte
	lo, hi := km.Lo, km.Hi
	for i := 0; i < 8; i++ {
		raw[i] = byte(lo >> uint(8*i))
		raw[8+i] = byte(hi >> uint(8*i))
	}
	if km.Hash() != Djb2String(raw[:]) {
		t.Error("Kmer.Hash disagrees with reference djb2 over packed bytes")
	}
}

func TestDjb2Reference(t *testing.T) {
	// djb2("") = 5381, djb2("a") = 5381*33+97 = 177670.
	if Djb2String(nil) != 5381 {
		t.Errorf("Djb2String(nil) = %d, want 5381", Djb2String(nil))
	}
	if Djb2String([]byte("a")) != 177670 {
		t.Errorf("Djb2String(a) = %d, want 177670", Djb2String([]byte("a")))
	}
}

// The paper relies on djb2 spreading distinct seeds near-uniformly over
// processors (§VI-C1, "almost perfect load balance"). Verify the spread on a
// random seed population: no processor should exceed ~1.5x the mean.
func TestHashDistributionAcrossProcessors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const procs = 48
	const n = 48000
	counts := make([]int, procs)
	p := dna.Random(rng, n+50)
	for _, km := range Extract(p, 51, nil) {
		counts[km.Hash()%procs]++
	}
	mean := float64(n+1) / procs
	for pid, c := range counts {
		if float64(c) > 1.5*mean || float64(c) < 0.5*mean {
			t.Errorf("processor %d owns %d seeds, mean %.0f — djb2 spread too skewed", pid, c, mean)
		}
	}
}

func TestLessIsTotalOrder(t *testing.T) {
	a := Kmer{Lo: 1}
	b := Kmer{Lo: 2}
	c := Kmer{Hi: 1}
	if !a.Less(b) || b.Less(a) {
		t.Error("Less on Lo broken")
	}
	if !a.Less(c) || c.Less(a) {
		t.Error("Less on Hi broken")
	}
	if a.Less(a) {
		t.Error("Less not irreflexive")
	}
}

func TestPackedBytes(t *testing.T) {
	cases := map[int]int{1: 1, 4: 1, 5: 2, 19: 5, 32: 8, 51: 13, 64: 16}
	for k, want := range cases {
		if got := PackedBytes(k); got != want {
			t.Errorf("PackedBytes(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestFromPackedPanics(t *testing.T) {
	p := dna.MustPack("ACGT")
	for _, fn := range []func(){
		func() { FromPacked(p, 0, 0) },
		func() { FromPacked(p, 0, 65) },
		func() { FromPacked(p, 2, 4) },
		func() { FromPacked(p, -1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkExtractK51(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	p := dna.Random(rng, 100000)
	buf := make([]Kmer, 0, p.Len())
	b.SetBytes(int64(p.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Extract(p, 51, buf[:0])
	}
}

func BenchmarkExtractK19Rolling(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	p := dna.Random(rng, 100000)
	buf := make([]Kmer, 0, p.Len())
	b.SetBytes(int64(p.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Extract(p, 19, buf[:0])
	}
}

func BenchmarkHash(b *testing.B) {
	km := MustFromString("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACG")
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += km.Hash()
	}
	_ = sink
}
