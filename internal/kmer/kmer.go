// Package kmer implements fixed-length DNA seeds ("k-mers", the paper's
// seeds) for seed lengths up to 64, and the djb2 hash the paper uses for its
// seed-to-processor map.
//
// A target sequence of length L contains L-k+1 distinct seed positions
// (§II-A); Extract enumerates them. Seeds are value types packed two bits
// per base into a [2]uint64 so they can be stored directly in hash-table
// entries and shipped between simulated processors without indirection.
package kmer

import (
	"fmt"
	"strings"

	"github.com/lbl-repro/meraligner/internal/dna"
)

// MaxK is the largest supported seed length; 2 bits x 64 bases fills the
// 128-bit payload. The paper uses k=51 for human/wheat and k=19 for E. coli.
const MaxK = 64

// Kmer is a packed seed of up to MaxK bases. Base 0 occupies the two least
// significant bits of Lo; bases 32..63 continue in Hi. Length is carried
// externally (by the index that owns the seeds), keeping the value 16 bytes.
type Kmer struct {
	Lo, Hi uint64
}

// FromPacked extracts the k-length seed starting at offset off of sequence p.
func FromPacked(p dna.Packed, off, k int) Kmer {
	if k <= 0 || k > MaxK {
		panic(fmt.Sprintf("kmer: k=%d out of range (1..%d)", k, MaxK))
	}
	if off < 0 || off+k > p.Len() {
		panic(fmt.Sprintf("kmer: seed [%d,%d) out of sequence of %d bases", off, off+k, p.Len()))
	}
	var km Kmer
	n := min(k, 32)
	for i := 0; i < n; i++ {
		km.Lo |= uint64(p.CodeAt(off+i)) << uint(2*i)
	}
	for i := 32; i < k; i++ {
		km.Hi |= uint64(p.CodeAt(off+i)) << uint(2*(i-32))
	}
	return km
}

// FromString parses a seed from ACGT text of length <= MaxK.
func FromString(s string) (Kmer, error) {
	if len(s) > MaxK {
		return Kmer{}, fmt.Errorf("kmer: length %d exceeds max %d", len(s), MaxK)
	}
	p, err := dna.Pack(s)
	if err != nil {
		return Kmer{}, err
	}
	return FromPacked(p, 0, len(s)), nil
}

// MustFromString is FromString that panics on error, for tests and literals.
func MustFromString(s string) Kmer {
	km, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return km
}

// Base returns the 2-bit code of base i of the seed.
func (k Kmer) Base(i int) byte {
	if i < 32 {
		return byte(k.Lo>>uint(2*i)) & 3
	}
	return byte(k.Hi>>uint(2*(i-32))) & 3
}

// String renders the first k bases of the seed as ACGT text.
func (k Kmer) StringLen(klen int) string {
	var sb strings.Builder
	sb.Grow(klen)
	for i := 0; i < klen; i++ {
		sb.WriteByte(dna.BaseOf(k.Base(i)))
	}
	return sb.String()
}

// ReverseComplement returns the reverse complement of a k-length seed.
func (k Kmer) ReverseComplement(klen int) Kmer {
	var out Kmer
	for i := 0; i < klen; i++ {
		c := dna.ComplementCode(k.Base(klen - 1 - i))
		if i < 32 {
			out.Lo |= uint64(c) << uint(2*i)
		} else {
			out.Hi |= uint64(c) << uint(2*(i-32))
		}
	}
	return out
}

// Less orders seeds lexicographically on their packed representation.
func (k Kmer) Less(o Kmer) bool {
	if k.Hi != o.Hi {
		// Hi holds the later bases; for a pure total order (used for
		// canonicalization and map sharding) any consistent order works,
		// but we compare base-by-base significance: later bases are more
		// significant in (Hi,Lo) only if we define it so. Use (Hi,Lo).
		return k.Hi < o.Hi
	}
	return k.Lo < o.Lo
}

// Canonical returns the lexicographically smaller (by Less) of the seed and
// its reverse complement, plus whether the reverse complement was chosen.
// Assemblers index canonical seeds so a read matches either strand.
func (k Kmer) Canonical(klen int) (Kmer, bool) {
	rc := k.ReverseComplement(klen)
	if rc.Less(k) {
		return rc, true
	}
	return k, false
}

// Hash is the djb2 hash over the seed's packed bytes — the same function the
// paper credits for its near-perfect distribution of distinct seeds across
// processors (§VI-C1).
func (k Kmer) Hash() uint64 {
	h := uint64(5381)
	x := k.Lo
	for i := 0; i < 8; i++ {
		h = h*33 + (x & 0xFF)
		x >>= 8
	}
	x = k.Hi
	for i := 0; i < 8; i++ {
		h = h*33 + (x & 0xFF)
		x >>= 8
	}
	return h
}

// Djb2String is the reference djb2 over raw bytes, exposed for tests and for
// hashing non-seed payloads (e.g. read names) consistently with the paper.
func Djb2String(b []byte) uint64 {
	h := uint64(5381)
	for _, c := range b {
		h = h*33 + uint64(c)
	}
	return h
}

// Extract appends every seed of length k in p, in order of offset, to dst
// and returns it. A sequence shorter than k yields no seeds.
func Extract(p dna.Packed, k int, dst []Kmer) []Kmer {
	n := p.Len() - k + 1
	if n <= 0 {
		return dst
	}
	if k <= 32 {
		// Rolling extraction: maintain the packed window in one word.
		mask := ^uint64(0)
		if k < 32 {
			mask = (uint64(1) << uint(2*k)) - 1
		}
		var w uint64
		for i := 0; i < k; i++ {
			w |= uint64(p.CodeAt(i)) << uint(2*i)
		}
		dst = append(dst, Kmer{Lo: w})
		for off := 1; off < n; off++ {
			w = (w >> 2) | uint64(p.CodeAt(off+k-1))<<uint(2*(k-1))
			w &= mask
			dst = append(dst, Kmer{Lo: w})
		}
		return dst
	}
	for off := 0; off < n; off++ {
		dst = append(dst, FromPacked(p, off, k))
	}
	return dst
}

// Count returns the number of seeds of length k in a sequence of length n:
// n-k+1, or 0 when the sequence is shorter than k.
func Count(n, k int) int {
	if n < k {
		return 0
	}
	return n - k + 1
}

// PackedBytes returns the number of bytes a k-length seed occupies on the
// wire: ceil(2k/8). Used by the cost model for seed transfers.
func PackedBytes(k int) int { return (2*k + 7) / 8 }
