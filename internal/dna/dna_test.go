package dna

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randSeq(rng *rand.Rand, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte("ACGT"[rng.Intn(4)])
	}
	return sb.String()
}

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := []string{"", "A", "C", "G", "T", "ACGT", "ACGTACGTA", "TTTTTTTT", "acgt"}
	for _, s := range cases {
		p, err := Pack(s)
		if err != nil {
			t.Fatalf("Pack(%q): %v", s, err)
		}
		want := strings.ToUpper(s)
		if got := p.String(); got != want {
			t.Errorf("Pack(%q).String() = %q, want %q", s, got, want)
		}
		if p.Len() != len(s) {
			t.Errorf("Pack(%q).Len() = %d, want %d", s, p.Len(), len(s))
		}
	}
}

func TestPackInvalidBase(t *testing.T) {
	for _, s := range []string{"ACGN", "X", "AC GT", "ACG\n"} {
		if _, err := Pack(s); err == nil {
			t.Errorf("Pack(%q) succeeded, want error", s)
		}
	}
}

func TestPackedSize(t *testing.T) {
	p := MustPack("ACGTACGTA") // 9 bases -> 3 bytes
	if p.PackedSize() != 3 {
		t.Errorf("PackedSize = %d, want 3", p.PackedSize())
	}
	// 4x compression check on a longer sequence.
	p = MustPack(strings.Repeat("ACGT", 100))
	if p.PackedSize() != 100 {
		t.Errorf("PackedSize = %d, want 100", p.PackedSize())
	}
}

func TestPackUnpackProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint16) bool {
		s := randSeq(rng, int(n%512))
		p := MustPack(s)
		return p.String() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverseComplement(t *testing.T) {
	cases := map[string]string{
		"":        "",
		"A":       "T",
		"ACGT":    "ACGT",
		"AAA":     "TTT",
		"GATTACA": "TGTAATC",
	}
	for in, want := range cases {
		if got := MustPack(in).ReverseComplement().String(); got != want {
			t.Errorf("ReverseComplement(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(n uint16) bool {
		p := Random(rng, int(n%300))
		return p.ReverseComplement().ReverseComplement().Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlice(t *testing.T) {
	s := "ACGTACGTTGCA"
	p := MustPack(s)
	for from := 0; from <= len(s); from++ {
		for to := from; to <= len(s); to++ {
			got := p.Slice(from, to).String()
			if got != s[from:to] {
				t.Fatalf("Slice(%d,%d) = %q, want %q", from, to, got, s[from:to])
			}
		}
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Slice out of range did not panic")
		}
	}()
	MustPack("ACGT").Slice(1, 9)
}

func TestMatchesAt(t *testing.T) {
	hay := MustPack("ACGTACGTTGCA")
	for off := 0; off+4 <= hay.Len(); off++ {
		needle := hay.Slice(off, off+4)
		if !hay.MatchesAt(needle, off) {
			t.Errorf("MatchesAt(own slice, %d) = false", off)
		}
	}
	if hay.MatchesAt(MustPack("AAAA"), 0) {
		t.Error("MatchesAt(AAAA, 0) = true, want false")
	}
	if hay.MatchesAt(MustPack("GCA"), 10) {
		t.Error("MatchesAt beyond end = true, want false")
	}
	if !hay.MatchesAt(MustPack("GCA"), 9) {
		t.Error("MatchesAt(GCA, 9) = false, want true")
	}
	if hay.MatchesAt(MustPack("A"), -1) {
		t.Error("MatchesAt negative offset = true")
	}
}

func TestMatchesAtProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := Random(r, 40+r.Intn(100))
		off := r.Intn(p.Len())
		ln := r.Intn(p.Len() - off)
		sub := p.Slice(off, off+ln)
		return p.MatchesAt(sub, off)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"A", "A", 0}, {"A", "C", -1}, {"T", "G", 1},
		{"ACG", "ACGT", -1}, {"ACGT", "ACG", 1}, {"ACGT", "ACGT", 0},
	}
	for _, c := range cases {
		if got := MustPack(c.a).Compare(MustPack(c.b)); got != c.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareMatchesStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		a, b := randSeq(rng, rng.Intn(30)), randSeq(rng, rng.Intn(30))
		want := strings.Compare(a, b)
		if got := MustPack(a).Compare(MustPack(b)); got != want {
			t.Fatalf("Compare(%q,%q) = %d, want %d", a, b, got, want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !MustPack("ACGT").Equal(MustPack("ACGT")) {
		t.Error("equal sequences reported unequal")
	}
	if MustPack("ACGT").Equal(MustPack("ACGA")) {
		t.Error("unequal sequences reported equal")
	}
	if MustPack("ACGT").Equal(MustPack("ACG")) {
		t.Error("different lengths reported equal")
	}
}

func TestMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Random(rng, 10000)
	m := p.Mutate(rng, 0.01)
	d, err := HammingDistance(p, m)
	if err != nil {
		t.Fatal(err)
	}
	// Expected ~100 mutations; allow generous slack.
	if d < 50 || d > 200 {
		t.Errorf("Mutate(0.01) produced %d substitutions in 10000, want ~100", d)
	}
	// Zero rate must be identity.
	if z := p.Mutate(rng, 0); !z.Equal(p) {
		t.Error("Mutate(0) changed the sequence")
	}
}

func TestMutateNeverToSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := Random(rng, 500)
	m := p.Mutate(rng, 1.0) // every base must change
	for i := 0; i < p.Len(); i++ {
		if p.CodeAt(i) == m.CodeAt(i) {
			t.Fatalf("base %d unchanged under rate 1.0", i)
		}
	}
}

func TestHammingDistanceLengthMismatch(t *testing.T) {
	if _, err := HammingDistance(MustPack("ACG"), MustPack("AC")); err == nil {
		t.Error("want error on length mismatch")
	}
}

func TestConcat(t *testing.T) {
	got := Concat(MustPack("ACG"), MustPack(""), MustPack("TTAC"), MustPack("G")).String()
	if got != "ACGTTACG" {
		t.Errorf("Concat = %q, want ACGTTACG", got)
	}
}

func TestGC(t *testing.T) {
	if gc := MustPack("GGCC").GC(); gc != 1.0 {
		t.Errorf("GC(GGCC) = %v, want 1", gc)
	}
	if gc := MustPack("AATT").GC(); gc != 0.0 {
		t.Errorf("GC(AATT) = %v, want 0", gc)
	}
	if gc := MustPack("ACGT").GC(); gc != 0.5 {
		t.Errorf("GC(ACGT) = %v, want 0.5", gc)
	}
	if gc := MustPack("").GC(); gc != 0 {
		t.Errorf("GC empty = %v, want 0", gc)
	}
}

func TestFromCodesAndCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Random(rng, 137)
	q := FromCodes(p.Codes())
	if !p.Equal(q) {
		t.Error("FromCodes(Codes()) != original")
	}
	var app []byte
	app = p.AppendCodes(app)
	if len(app) != p.Len() {
		t.Fatalf("AppendCodes length %d, want %d", len(app), p.Len())
	}
	for i, c := range app {
		if c != p.CodeAt(i) {
			t.Fatalf("AppendCodes[%d] = %d, want %d", i, c, p.CodeAt(i))
		}
	}
}

func TestComplementCode(t *testing.T) {
	pairs := [][2]byte{{A, T}, {C, G}, {G, C}, {T, A}}
	for _, pr := range pairs {
		if ComplementCode(pr[0]) != pr[1] {
			t.Errorf("ComplementCode(%d) = %d, want %d", pr[0], ComplementCode(pr[0]), pr[1])
		}
	}
}

func TestCodeBaseRoundTrip(t *testing.T) {
	for _, b := range []byte{'A', 'C', 'G', 'T'} {
		if BaseOf(CodeOf(b)) != b {
			t.Errorf("BaseOf(CodeOf(%q)) != %q", b, b)
		}
	}
	if CodeOf('N') != 0xFF {
		t.Error("CodeOf(N) should be invalid")
	}
}

func BenchmarkPack(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	s := []byte(randSeq(rng, 10000))
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PackBytes(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchesAtAligned(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	hay := Random(rng, 100000)
	needle := hay.Slice(4096, 4096+101)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !hay.MatchesAt(needle, 4096) {
			b.Fatal("mismatch")
		}
	}
}

func BenchmarkReverseComplement(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	p := Random(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.ReverseComplement()
	}
}
