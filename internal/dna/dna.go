// Package dna implements two-bit packed DNA sequences.
//
// The paper (§V-C) compresses DNA from text to a binary two-bits-per-base
// representation, reducing both the memory footprint and the communication
// bandwidth of every seed or sequence transfer by 4x. This package is that
// compression library: packing, unpacking, slicing, reverse complement and
// comparison all operate directly on the packed form.
package dna

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// Base codes. Two bits per base, in the conventional lexicographic order so
// that packed comparison matches string comparison of ACGT text.
const (
	A = 0
	C = 1
	G = 2
	T = 3
)

// ErrInvalidBase is returned when a textual sequence contains a character
// outside {A,C,G,T,a,c,g,t}. The paper's pipeline drops reads containing Ns
// before alignment; we surface the condition to the caller instead.
var ErrInvalidBase = errors.New("dna: invalid base")

// baseToCode maps ASCII to the 2-bit code, 0xFF marking invalid characters.
var baseToCode [256]byte

// codeToBase maps the 2-bit code back to ASCII.
var codeToBase = [4]byte{'A', 'C', 'G', 'T'}

// complement of each 2-bit code: A<->T, C<->G. With this encoding the
// complement is the bitwise NOT of the code (3 - code).
var complement = [4]byte{T, G, C, A}

func init() {
	for i := range baseToCode {
		baseToCode[i] = 0xFF
	}
	baseToCode['A'], baseToCode['a'] = A, A
	baseToCode['C'], baseToCode['c'] = C, C
	baseToCode['G'], baseToCode['g'] = G, G
	baseToCode['T'], baseToCode['t'] = T, T
}

// CodeOf returns the 2-bit code of an ASCII base, or 0xFF if invalid.
func CodeOf(b byte) byte { return baseToCode[b] }

// BaseOf returns the ASCII base of a 2-bit code.
func BaseOf(code byte) byte { return codeToBase[code&3] }

// ComplementCode returns the complement of a 2-bit base code.
func ComplementCode(code byte) byte { return complement[code&3] }

// Packed is an immutable DNA sequence stored at two bits per base, four bases
// per byte, base i occupying bits (2*(i%4)) .. (2*(i%4)+1) of byte i/4.
type Packed struct {
	data []byte
	n    int
}

// Pack converts a textual sequence into packed form.
func Pack(s string) (Packed, error) {
	return PackBytes([]byte(s))
}

// PackBytes converts an ASCII sequence into packed form.
func PackBytes(s []byte) (Packed, error) {
	p := Packed{data: make([]byte, (len(s)+3)/4), n: len(s)}
	for i, b := range s {
		c := baseToCode[b]
		if c == 0xFF {
			return Packed{}, fmt.Errorf("%w: %q at position %d", ErrInvalidBase, b, i)
		}
		p.data[i>>2] |= c << uint((i&3)<<1)
	}
	return p, nil
}

// MustPack is Pack for known-valid inputs; it panics on invalid bases.
func MustPack(s string) Packed {
	p, err := Pack(s)
	if err != nil {
		panic(err)
	}
	return p
}

// FromPackedBytes wraps raw already-packed data (the layout documented on
// Packed: four bases per byte, base i in bits 2*(i%4)..2*(i%4)+1 of byte
// i/4) as a Packed of n bases WITHOUT copying — the caller promises data
// stays valid and unmodified for the sequence's lifetime. This is the
// zero-copy path for sequences mapped from an index snapshot. It verifies
// that data has exactly the packed length for n bases and that the unused
// tail bits of the last byte are zero (the invariant every other
// constructor maintains, which the byte-at-a-time comparison fast paths
// rely on).
func FromPackedBytes(data []byte, n int) (Packed, error) {
	if n < 0 || len(data) != (n+3)/4 {
		return Packed{}, fmt.Errorf("dna: %d packed bytes cannot hold exactly %d bases", len(data), n)
	}
	if rem := n & 3; rem != 0 && data[len(data)-1]>>uint(rem*2) != 0 {
		return Packed{}, fmt.Errorf("dna: nonzero tail bits beyond base %d", n)
	}
	return Packed{data: data, n: n}, nil
}

// FromCodes builds a packed sequence from a slice of 2-bit codes.
func FromCodes(codes []byte) Packed {
	p := Packed{data: make([]byte, (len(codes)+3)/4), n: len(codes)}
	for i, c := range codes {
		p.data[i>>2] |= (c & 3) << uint((i&3)<<1)
	}
	return p
}

// Len returns the number of bases.
func (p Packed) Len() int { return p.n }

// Bytes returns the underlying packed bytes (shared, do not modify).
func (p Packed) Bytes() []byte { return p.data }

// PackedSize returns the storage footprint in bytes: the 4x reduction of
// §V-C relative to one byte per base.
func (p Packed) PackedSize() int { return len(p.data) }

// CodeAt returns the 2-bit code of base i.
func (p Packed) CodeAt(i int) byte {
	return (p.data[i>>2] >> uint((i&3)<<1)) & 3
}

// BaseAt returns the ASCII base at position i.
func (p Packed) BaseAt(i int) byte { return codeToBase[p.CodeAt(i)] }

// String unpacks the sequence to ACGT text.
func (p Packed) String() string {
	var sb strings.Builder
	sb.Grow(p.n)
	for i := 0; i < p.n; i++ {
		sb.WriteByte(p.BaseAt(i))
	}
	return sb.String()
}

// Codes unpacks the sequence into a fresh slice of 2-bit codes.
func (p Packed) Codes() []byte {
	out := make([]byte, p.n)
	for i := range out {
		out[i] = p.CodeAt(i)
	}
	return out
}

// AppendCodes appends the 2-bit codes of p to dst and returns it.
func (p Packed) AppendCodes(dst []byte) []byte {
	for i := 0; i < p.n; i++ {
		dst = append(dst, p.CodeAt(i))
	}
	return dst
}

// Slice returns the packed subsequence [from, to). It copies, so the result
// is independent of the receiver; from must be <= to and within bounds.
func (p Packed) Slice(from, to int) Packed {
	if from < 0 || to > p.n || from > to {
		panic(fmt.Sprintf("dna: slice [%d,%d) out of range of %d bases", from, to, p.n))
	}
	out := Packed{data: make([]byte, (to-from+3)/4), n: to - from}
	if from&3 == 0 {
		// Byte-aligned fast path.
		copy(out.data, p.data[from>>2:])
		// Mask the tail bits beyond the new length.
		if rem := out.n & 3; rem != 0 {
			out.data[len(out.data)-1] &= byte(1<<uint(rem*2)) - 1
		}
		return out
	}
	for i := 0; i < out.n; i++ {
		out.data[i>>2] |= p.CodeAt(from+i) << uint((i&3)<<1)
	}
	return out
}

// ReverseComplement returns the reverse complement as a new packed sequence.
func (p Packed) ReverseComplement() Packed {
	out := Packed{data: make([]byte, len(p.data)), n: p.n}
	for i := 0; i < p.n; i++ {
		c := complement[p.CodeAt(p.n-1-i)]
		out.data[i>>2] |= c << uint((i&3)<<1)
	}
	return out
}

// Equal reports whether two packed sequences contain identical bases.
func (p Packed) Equal(q Packed) bool {
	if p.n != q.n {
		return false
	}
	full := p.n >> 2
	for i := 0; i < full; i++ {
		if p.data[i] != q.data[i] {
			return false
		}
	}
	for i := full << 2; i < p.n; i++ {
		if p.CodeAt(i) != q.CodeAt(i) {
			return false
		}
	}
	return true
}

// Compare lexicographically compares the base sequences of p and q and
// returns -1, 0 or +1 (the memcmp of §IV-A performed on the packed form).
func (p Packed) Compare(q Packed) int {
	n := min(p.n, q.n)
	for i := 0; i < n; i++ {
		pc, qc := p.CodeAt(i), q.CodeAt(i)
		switch {
		case pc < qc:
			return -1
		case pc > qc:
			return 1
		}
	}
	switch {
	case p.n < q.n:
		return -1
	case p.n > q.n:
		return 1
	}
	return 0
}

// MatchesAt reports whether q occurs in p starting at offset off, i.e.
// p[off:off+q.Len()] == q. This is the fast string comparison that replaces
// Smith-Waterman on the exact-match path of §IV-A.
func (p Packed) MatchesAt(q Packed, off int) bool {
	if off < 0 || off+q.n > p.n {
		return false
	}
	// Compare 4 bases (1 byte) at a time when q is byte-aligned within p.
	if off&3 == 0 {
		fullBytes := q.n >> 2
		base := off >> 2
		for i := 0; i < fullBytes; i++ {
			if p.data[base+i] != q.data[i] {
				return false
			}
		}
		for i := fullBytes << 2; i < q.n; i++ {
			if p.CodeAt(off+i) != q.CodeAt(i) {
				return false
			}
		}
		return true
	}
	for i := 0; i < q.n; i++ {
		if p.CodeAt(off+i) != q.CodeAt(i) {
			return false
		}
	}
	return true
}

// GC returns the fraction of G or C bases, 0 for the empty sequence.
func (p Packed) GC() float64 {
	if p.n == 0 {
		return 0
	}
	gc := 0
	for i := 0; i < p.n; i++ {
		if c := p.CodeAt(i); c == C || c == G {
			gc++
		}
	}
	return float64(gc) / float64(p.n)
}

// Random returns a uniformly random packed sequence of n bases drawn from rng.
func Random(rng *rand.Rand, n int) Packed {
	p := Packed{data: make([]byte, (n+3)/4), n: n}
	for i := range p.data {
		p.data[i] = byte(rng.Intn(256))
	}
	if rem := n & 3; rem != 0 {
		p.data[len(p.data)-1] &= byte(1<<uint(rem*2)) - 1
	}
	return p
}

// Mutate returns a copy of p in which each base is independently substituted
// with probability errRate (never to itself). It models sequencing error.
func (p Packed) Mutate(rng *rand.Rand, errRate float64) Packed {
	out := Packed{data: append([]byte(nil), p.data...), n: p.n}
	if errRate <= 0 {
		return out
	}
	for i := 0; i < p.n; i++ {
		if rng.Float64() < errRate {
			old := out.CodeAt(i)
			nc := (old + byte(1+rng.Intn(3))) & 3
			idx, sh := i>>2, uint((i&3)<<1)
			out.data[idx] = out.data[idx]&^(3<<sh) | nc<<sh
		}
	}
	return out
}

// HammingDistance counts mismatching positions of two equal-length sequences.
func HammingDistance(p, q Packed) (int, error) {
	if p.n != q.n {
		return 0, fmt.Errorf("dna: length mismatch %d vs %d", p.n, q.n)
	}
	d := 0
	for i := 0; i < p.n; i++ {
		if p.CodeAt(i) != q.CodeAt(i) {
			d++
		}
	}
	return d, nil
}

// Concat concatenates any number of packed sequences into one.
func Concat(parts ...Packed) Packed {
	total := 0
	for _, p := range parts {
		total += p.n
	}
	out := Packed{data: make([]byte, (total+3)/4)}
	for _, p := range parts {
		for i := 0; i < p.n; i++ {
			out.data[out.n>>2] |= p.CodeAt(i) << uint((out.n&3)<<1)
			out.n++
		}
	}
	return out
}
