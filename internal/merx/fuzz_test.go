package merx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedContainer writes a small valid container and returns its bytes:
// the structurally correct input every corpus mutation starts from.
func fuzzSeedContainer(f *testing.F) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "seed.merx")
	fh, err := os.Create(path)
	if err != nil {
		f.Fatal(err)
	}
	defer fh.Close()
	w, err := NewWriter(fh, Layout{FlatEntryBytes: 32, LocBytes: 12})
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range []struct {
		tag  string
		data []byte
	}{
		{"META", []byte("k=21 exact=1")},
		{"DHTS", make([]byte, 256)},
		{"TGTS", []byte("ACGTACGTACGT")},
		{"EMPT", nil},
	} {
		data := s.data
		if err := w.Section(s.tag, func(sw io.Writer) error {
			_, werr := sw.Write(data)
			return werr
		}); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		f.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return blob
}

// FuzzMerxOpen: arbitrary container bytes must either open into a usable
// *File or fail with a typed error (ErrCorrupt / ErrIncompatible) — never
// panic, never read out of bounds, never return an untyped error. This is
// the trust boundary for every snapshot merserved maps off disk.
func FuzzMerxOpen(f *testing.F) {
	seed := fuzzSeedContainer(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:headerSize])
	f.Add([]byte{})
	// One bit-flip per 8-byte word of the header plus the first section
	// table entry, so the fuzzer starts adjacent to every validated field
	// (magic, version, layout sizes, table offset/length, CRCs).
	for off := 0; off < 2*headerSize && off < len(seed); off += 8 {
		mut := append([]byte(nil), seed...)
		mut[off] ^= 0x80
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		mf, err := OpenBytes(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrIncompatible) {
				t.Fatalf("OpenBytes returned an untyped error: %v", err)
			}
			return
		}
		// An accepted container must be fully readable: every listed
		// section resolvable by tag, payloads in bounds, layout
		// self-consistent, and close idempotent.
		for _, s := range mf.Sections() {
			got, err := mf.SectionData(s.Tag)
			if err != nil {
				t.Fatalf("SectionData(%q) on an accepted container: %v", s.Tag, err)
			}
			sum := byte(0)
			for _, b := range got { // touch every payload byte
				sum ^= b
			}
			_ = sum
		}
		if _, err := mf.SectionData("\x00\x00\x00\x00"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("missing section lookup: got %v, want ErrCorrupt", err)
		}
		if err := mf.CheckLayout(mf.Layout); err != nil {
			t.Fatalf("CheckLayout against own layout: %v", err)
		}
		if err := mf.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := mf.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	})
}
