package merx

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// writeTestFile writes a snapshot with the given sections and returns its
// path.
func writeTestFile(t *testing.T, lay Layout, sections map[string][]byte, order []string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.merx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := NewWriter(f, lay)
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range order {
		data := sections[tag]
		if err := w.Section(tag, func(sw io.Writer) error {
			_, werr := sw.Write(data)
			return werr
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	lay := Layout{FlatEntryBytes: 32, LocBytes: 12}
	sections := map[string][]byte{
		"AAAA": []byte("hello snapshot"),
		"BBBB": bytes.Repeat([]byte{0xAB}, 1000),
		"CCCC": nil, // empty section is legal
	}
	path := writeTestFile(t, lay, sections, []string{"AAAA", "BBBB", "CCCC"})

	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Layout != lay {
		t.Errorf("layout %+v, want %+v", f.Layout, lay)
	}
	if err := f.CheckLayout(lay); err != nil {
		t.Errorf("CheckLayout: %v", err)
	}
	if err := f.CheckLayout(Layout{FlatEntryBytes: 40, LocBytes: 12}); !errors.Is(err, ErrIncompatible) {
		t.Errorf("CheckLayout with wrong sizes: got %v, want ErrIncompatible", err)
	}
	if got := len(f.Sections()); got != 3 {
		t.Fatalf("%d sections, want 3", got)
	}
	for tag, want := range sections {
		got, err := f.SectionData(tag)
		if err != nil {
			t.Fatalf("SectionData(%q): %v", tag, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("section %q: %d bytes, want %d", tag, len(got), len(want))
		}
	}
	if _, err := f.SectionData("ZZZZ"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("missing section: got %v, want ErrCorrupt", err)
	}
	// Section payloads must start 64-byte aligned within the file so mapped
	// struct views keep their natural alignment.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Sections() {
		if len(s.Data) == 0 {
			continue
		}
		off := bytes.Index(raw, s.Data)
		if off < 0 || off%SectionAlign != 0 {
			// Index can false-positive on tiny payloads; only assert for the
			// unique ones used here.
			if s.Tag == "AAAA" || s.Tag == "BBBB" {
				t.Errorf("section %q at offset %d, not %d-aligned", s.Tag, off, SectionAlign)
			}
		}
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()

	// Not a snapshot at all.
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, bytes.Repeat([]byte("x"), 200), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(junk); !errors.Is(err, ErrIncompatible) {
		t.Errorf("junk file: got %v, want ErrIncompatible", err)
	}

	// Too small to even hold a header.
	tiny := filepath.Join(dir, "tiny")
	if err := os.WriteFile(tiny, []byte("MERX"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(tiny); !errors.Is(err, ErrCorrupt) {
		t.Errorf("tiny file: got %v, want ErrCorrupt", err)
	}
}

func TestCorruptionDetection(t *testing.T) {
	lay := Layout{FlatEntryBytes: 32, LocBytes: 12}
	sections := map[string][]byte{
		"AAAA": bytes.Repeat([]byte{0x11}, 500),
		"BBBB": bytes.Repeat([]byte{0x22}, 300),
	}
	path := writeTestFile(t, lay, sections, []string{"AAAA", "BBBB"})
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A single flipped bit anywhere in the file must surface as a typed
	// error (corrupt, or incompatible when the flip hits the magic/version),
	// never as a successful open or a panic. Every header byte is probed
	// individually (including the reserved tail outside the header CRC);
	// the body is sampled.
	offsets := make([]int, 0, len(good))
	for off := 0; off < headerSize; off++ {
		offsets = append(offsets, off)
	}
	for off := headerSize; off < len(good); off += 37 {
		offsets = append(offsets, off)
	}
	for _, off := range offsets {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := Open(path)
		if err == nil {
			f.Close()
			t.Fatalf("bit flip at offset %d went undetected", off)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrIncompatible) {
			t.Fatalf("bit flip at offset %d: got untyped error %v", off, err)
		}
	}

	// Truncation at every boundary class must be detected.
	for _, n := range []int{len(good) - 1, len(good) / 2, 100, headerSize} {
		if err := os.WriteFile(path, good[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := Open(path)
		if err == nil {
			f.Close()
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrCorrupt", n, err)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) || ce.Section == "" {
			t.Fatalf("truncation to %d bytes: error %v does not name a section", n, err)
		}
	}

	// Restore and confirm the file opens again (the harness, not the data,
	// was the problem).
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("restored file: %v", err)
	}
	f.Close()
}

func TestWriterMisuse(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "w.merx"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := NewWriter(f, Layout{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Section("TOOLONG", func(io.Writer) error { return nil }); err == nil {
		t.Error("5-byte tag accepted")
	}
	if err := w.Section("DUPL", func(io.Writer) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := w.Section("DUPL", func(io.Writer) error { return nil }); err == nil {
		t.Error("duplicate tag accepted")
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err == nil {
		t.Error("double Finish accepted")
	}
	if err := w.Section("LATE", func(io.Writer) error { return nil }); err == nil {
		t.Error("Section after Finish accepted")
	}
}

func TestCloseIdempotent(t *testing.T) {
	path := writeTestFile(t, Layout{}, map[string][]byte{"AAAA": []byte("x")}, []string{"AAAA"})
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
