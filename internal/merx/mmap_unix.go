//go:build unix

package merx

import (
	"os"
	"syscall"
)

// mapping holds the file bytes: an mmap on unix, a heap copy elsewhere.
type mapping struct {
	data   []byte
	mapped bool
}

// mapFile maps size bytes of f read-only and shared, so every process
// serving the same snapshot shares one physical copy through the page
// cache. Empty files cannot be mapped, but a valid snapshot is never empty
// (Open rejects files smaller than the header first).
func mapFile(f *os.File, size int64) (*mapping, error) {
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &mapping{data: b, mapped: true}, nil
}

// close unmaps the file bytes.
func (m *mapping) close() error {
	if !m.mapped || m.data == nil {
		m.data = nil
		return nil
	}
	b := m.data
	m.data = nil
	return syscall.Munmap(b)
}
