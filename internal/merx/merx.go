// Package merx implements the .merx index-snapshot container: the versioned
// binary file format that persists a sealed merAligner seed index so serving
// processes can mmap it instead of rebuilding it from FASTA.
//
// The container itself is payload-agnostic: a fixed 64-byte header, a set of
// tagged sections whose payloads start at 64-byte-aligned offsets (so mapped
// structures keep their natural alignment), and a section table with a
// CRC-32C checksum per section. Every multi-byte integer in the framing is
// little-endian. What goes inside each section — the options fingerprint,
// the packed reference, the sealed hash-table shards — is defined by the
// writers in internal/core and internal/dht; the full byte-level layout is
// specified in docs/INDEX_FORMAT.md.
//
// Open maps the whole file read-only (falling back to a heap copy on
// platforms without mmap) and verifies every checksum before handing out
// section payloads, so a truncated or bit-flipped snapshot fails with a
// typed *CorruptError naming the damaged section — never with a panic deep
// inside the engine. Files written by an incompatible layout (different
// struct sizes, a future format version, a big-endian writer) fail with a
// typed *IncompatibleError.
package merx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"unsafe"
)

// Version is the current .merx format version. Readers reject other
// versions: the payload sections are raw memory images, so there is no
// cross-version decoding — a version bump means "rebuild or re-save".
const Version = 1

// SectionAlign is the byte alignment of every section payload within the
// file. The mmap base is page-aligned, so an aligned file offset gives the
// payload the same alignment in memory — enough for the 8-byte-aligned
// sealed table structs with room to spare.
const SectionAlign = 64

const (
	headerSize     = 64
	tableEntrySize = 32
	maxSections    = 64 // sanity bound; real snapshots have a handful
)

// fileMagic identifies a .merx file. The PNG-style tail (\r\n\x1a\n)
// catches line-ending translation and text-mode truncation corruption.
var fileMagic = [8]byte{'M', 'E', 'R', 'X', '\r', '\n', 0x1a, '\n'}

// castagnoli is the CRC-32C table used for every checksum in the format.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is the sentinel matched (via errors.Is) by every
// *CorruptError: the file is recognizably a .merx snapshot but its bytes
// fail validation (truncation, checksum mismatch, impossible offsets).
var ErrCorrupt = errors.New("merx: corrupt index snapshot")

// ErrIncompatible is the sentinel matched (via errors.Is) by every
// *IncompatibleError: the file is not a .merx snapshot this build can use
// (wrong magic, future version, or a layout fingerprint that differs from
// the running binary's struct layout).
var ErrIncompatible = errors.New("merx: incompatible index snapshot")

// CorruptError reports a damaged snapshot: Section names the part of the
// file that failed validation ("header", "section table", or a payload tag
// such as "DHTS"), Reason says how. It matches ErrCorrupt with errors.Is.
type CorruptError struct {
	Path    string // file path, when known
	Section string // which part failed: "header", "section table", or a tag
	Reason  string
}

// Error formats the corruption report with its section and reason.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("merx: %s: corrupt index snapshot: section %q: %s", e.Path, e.Section, e.Reason)
}

// Is matches the ErrCorrupt sentinel.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// IncompatibleError reports a snapshot this build cannot use (as opposed to
// one that is damaged). It matches ErrIncompatible with errors.Is.
type IncompatibleError struct {
	Path   string
	Reason string
}

// Error formats the incompatibility report.
func (e *IncompatibleError) Error() string {
	return fmt.Sprintf("merx: %s: incompatible index snapshot: %s", e.Path, e.Reason)
}

// Is matches the ErrIncompatible sentinel.
func (e *IncompatibleError) Is(target error) bool { return target == ErrIncompatible }

// hostLittleEndian reports whether this machine stores integers
// little-endian. The payload sections are raw memory images, so the format
// is defined little-endian and big-endian hosts are refused outright.
func hostLittleEndian() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}

// Layout is the struct-size fingerprint recorded in the header: the writer
// stamps the byte sizes of the raw structs it serialized, and the reader
// refuses the file unless they match its own compiled layout exactly.
type Layout struct {
	FlatEntryBytes int // sizeof one sealed hash-table slot
	LocBytes       int // sizeof one location-arena entry
}

// sectionMeta is one row of the section table.
type sectionMeta struct {
	tag [4]byte
	off uint64
	len uint64
	crc uint32
}

// Writer streams a .merx file: a placeholder header, then each section
// (64-byte aligned, checksummed as it is written), then the section table,
// then the patched real header. The caller owns the file.
type Writer struct {
	f    *os.File
	off  int64
	secs []sectionMeta
	lay  Layout
	done bool
}

// NewWriter starts a .merx file on f (which must be positioned at offset
// 0). lay records the raw struct sizes of the payload being written; a
// reader with different struct sizes will refuse the file.
func NewWriter(f *os.File, lay Layout) (*Writer, error) {
	if !hostLittleEndian() {
		return nil, &IncompatibleError{Path: f.Name(), Reason: "writing .merx snapshots requires a little-endian host"}
	}
	if _, err := f.Write(make([]byte, headerSize)); err != nil {
		return nil, err
	}
	return &Writer{f: f, off: headerSize, lay: lay}, nil
}

// Section writes one tagged section: it pads the file to SectionAlign,
// streams the payload produced by write, and records its checksum. Tags are
// exactly 4 ASCII bytes and must be unique within the file.
func (w *Writer) Section(tag string, write func(io.Writer) error) error {
	if w.done {
		return errors.New("merx: Section after Finish")
	}
	if len(tag) != 4 {
		return fmt.Errorf("merx: section tag %q must be exactly 4 bytes", tag)
	}
	for _, s := range w.secs {
		if string(s.tag[:]) == tag {
			return fmt.Errorf("merx: duplicate section tag %q", tag)
		}
	}
	if len(w.secs) >= maxSections {
		return fmt.Errorf("merx: too many sections (max %d)", maxSections)
	}
	if err := w.pad(SectionAlign); err != nil {
		return err
	}
	cw := &crcWriter{w: w.f}
	if err := write(cw); err != nil {
		return err
	}
	var m sectionMeta
	copy(m.tag[:], tag)
	m.off = uint64(w.off)
	m.len = uint64(cw.n)
	m.crc = cw.crc
	w.secs = append(w.secs, m)
	w.off += cw.n
	return nil
}

// Finish writes the section table, patches the header, and syncs the file.
// The Writer must not be used afterwards.
func (w *Writer) Finish() error {
	if w.done {
		return errors.New("merx: Finish called twice")
	}
	w.done = true
	if err := w.pad(SectionAlign); err != nil {
		return err
	}
	tableOff := w.off
	table := make([]byte, len(w.secs)*tableEntrySize)
	for i, s := range w.secs {
		e := table[i*tableEntrySize:]
		copy(e[0:4], s.tag[:])
		binary.LittleEndian.PutUint64(e[8:], s.off)
		binary.LittleEndian.PutUint64(e[16:], s.len)
		binary.LittleEndian.PutUint32(e[24:], s.crc)
	}
	if _, err := w.f.Write(table); err != nil {
		return err
	}
	w.off += int64(len(table))

	var hdr [headerSize]byte
	copy(hdr[0:8], fileMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], Version)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(w.secs)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(tableOff))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(w.off))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(w.lay.FlatEntryBytes))
	binary.LittleEndian.PutUint32(hdr[36:], uint32(w.lay.LocBytes))
	binary.LittleEndian.PutUint32(hdr[40:], crc32.Checksum(table, castagnoli))
	binary.LittleEndian.PutUint32(hdr[44:], crc32.Checksum(hdr[0:44], castagnoli))
	if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	return w.f.Sync()
}

// pad advances the file to the next multiple of align with zero bytes.
func (w *Writer) pad(align int64) error {
	if rem := w.off % align; rem != 0 {
		n := align - rem
		if _, err := w.f.Write(make([]byte, n)); err != nil {
			return err
		}
		w.off += n
	}
	return nil
}

// crcWriter counts and checksums the bytes flowing to the file.
type crcWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	c.n += int64(n)
	return n, err
}

// Section is one verified payload of an opened snapshot. Data aliases the
// mapping: it is read-only and valid until the File is closed.
type Section struct {
	Tag  string
	Data []byte
}

// File is an opened, fully verified .merx snapshot. Section payloads alias
// the underlying mapping; they become invalid when Close unmaps it.
type File struct {
	path     string
	m        *mapping
	sections []Section

	// Layout is the struct-size fingerprint recorded by the writer, already
	// verified against this build by the caller of Open (see CheckLayout).
	Layout Layout
}

// Open maps path read-only and verifies the header, the section table, and
// every section checksum. Damage yields a *CorruptError naming the failing
// section; a non-.merx or future-version file yields a *IncompatibleError.
// The returned File must be closed; section payloads are invalid after
// Close.
func Open(path string) (*File, error) {
	if !hostLittleEndian() {
		return nil, &IncompatibleError{Path: path, Reason: "reading .merx snapshots requires a little-endian host"}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < headerSize {
		return nil, &CorruptError{Path: path, Section: "header", Reason: fmt.Sprintf("file is %d bytes, smaller than the %d-byte header", size, headerSize)}
	}
	m, err := mapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("merx: mapping %s: %w", path, err)
	}
	mf, err := parse(path, m)
	if err != nil {
		m.close()
		return nil, err
	}
	return mf, nil
}

// OpenBytes parses an in-memory .merx image with exactly Open's
// validation, returning the same typed errors. The bytes are copied into
// an 8-byte-aligned heap buffer first (section payloads carry raw struct
// views, and an arbitrary caller slice has arbitrary alignment), so data
// may be reused or mutated after OpenBytes returns. This is the seam the
// container fuzz tests drive: every input must yield a *File or a typed
// error — never a panic or an out-of-bounds read.
func OpenBytes(data []byte) (*File, error) {
	const path = "(in-memory)"
	if !hostLittleEndian() {
		return nil, &IncompatibleError{Path: path, Reason: "reading .merx snapshots requires a little-endian host"}
	}
	if len(data) < headerSize {
		return nil, &CorruptError{Path: path, Section: "header", Reason: fmt.Sprintf("image is %d bytes, smaller than the %d-byte header", len(data), headerSize)}
	}
	words := make([]uint64, (len(data)+7)/8)
	b := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(data))
	copy(b, data)
	m := &mapping{data: b, mapped: false}
	mf, err := parse(path, m)
	if err != nil {
		m.close()
		return nil, err
	}
	return mf, nil
}

// parse validates the mapped bytes and builds the File.
func parse(path string, m *mapping) (*File, error) {
	data := m.data
	hdr := data[:headerSize]
	if [8]byte(hdr[0:8]) != fileMagic {
		return nil, &IncompatibleError{Path: path, Reason: "not a .merx index snapshot (bad magic)"}
	}
	if crc := crc32.Checksum(hdr[0:44], castagnoli); crc != binary.LittleEndian.Uint32(hdr[44:]) {
		return nil, &CorruptError{Path: path, Section: "header", Reason: "header checksum mismatch"}
	}
	// The reserved tail is outside the header CRC; it must be zero so that
	// every byte of the file stays covered by a checksum or a constraint.
	for i := 48; i < headerSize; i++ {
		if hdr[i] != 0 {
			return nil, &CorruptError{Path: path, Section: "header", Reason: fmt.Sprintf("nonzero reserved header byte at offset %d", i)}
		}
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != Version {
		return nil, &IncompatibleError{Path: path, Reason: fmt.Sprintf("format version %d (this build reads version %d)", v, Version)}
	}
	nSecs := binary.LittleEndian.Uint32(hdr[12:])
	tableOff := binary.LittleEndian.Uint64(hdr[16:])
	fileSize := binary.LittleEndian.Uint64(hdr[24:])
	if fileSize != uint64(len(data)) {
		return nil, &CorruptError{Path: path, Section: "header", Reason: fmt.Sprintf("header records %d bytes but the file has %d (truncated or appended)", fileSize, len(data))}
	}
	if nSecs > maxSections {
		return nil, &CorruptError{Path: path, Section: "header", Reason: fmt.Sprintf("implausible section count %d", nSecs)}
	}
	tableLen := uint64(nSecs) * tableEntrySize
	// Subtract, don't add: tableOff is attacker-controlled and tableOff+
	// tableLen could wrap around uint64 past the bounds check.
	if tableOff < headerSize || tableOff > uint64(len(data)) || tableLen > uint64(len(data))-tableOff {
		return nil, &CorruptError{Path: path, Section: "section table", Reason: "table offset out of bounds"}
	}
	table := data[tableOff : tableOff+tableLen]
	if crc := crc32.Checksum(table, castagnoli); crc != binary.LittleEndian.Uint32(hdr[40:]) {
		return nil, &CorruptError{Path: path, Section: "section table", Reason: "section table checksum mismatch"}
	}

	mf := &File{
		path: path,
		m:    m,
		Layout: Layout{
			FlatEntryBytes: int(binary.LittleEndian.Uint32(hdr[32:])),
			LocBytes:       int(binary.LittleEndian.Uint32(hdr[36:])),
		},
	}
	for i := uint32(0); i < nSecs; i++ {
		e := table[i*tableEntrySize:]
		tag := string(e[0:4])
		off := binary.LittleEndian.Uint64(e[8:])
		n := binary.LittleEndian.Uint64(e[16:])
		if off%SectionAlign != 0 || off > uint64(len(data)) || n > uint64(len(data))-off {
			return nil, &CorruptError{Path: path, Section: tag, Reason: "section bounds out of range"}
		}
		payload := data[off : off+n]
		if crc := crc32.Checksum(payload, castagnoli); crc != binary.LittleEndian.Uint32(e[24:]) {
			return nil, &CorruptError{Path: path, Section: tag, Reason: "section checksum mismatch"}
		}
		mf.sections = append(mf.sections, Section{Tag: tag, Data: payload})
	}
	if err := checkPadding(path, data, tableOff, tableLen, mf.sections); err != nil {
		return nil, err
	}
	return mf, nil
}

// checkPadding verifies that every byte outside the header, the section
// table, and the section payloads is zero (the writer only ever emits zero
// padding). With this, every byte of the file is either checksummed or
// constrained — no bit flip anywhere goes undetected.
func checkPadding(path string, data []byte, tableOff, tableLen uint64, sections []Section) error {
	type region struct{ off, end uint64 }
	regions := []region{{0, headerSize}, {tableOff, tableOff + tableLen}}
	for _, s := range sections {
		if len(s.Data) == 0 {
			continue
		}
		off := uint64(uintptr(unsafe.Pointer(&s.Data[0])) - uintptr(unsafe.Pointer(&data[0])))
		regions = append(regions, region{off, off + uint64(len(s.Data))})
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i].off < regions[j].off })
	pos := uint64(0)
	for _, r := range append(regions, region{uint64(len(data)), uint64(len(data))}) {
		for ; pos < r.off; pos++ {
			if data[pos] != 0 {
				return &CorruptError{Path: path, Section: "padding", Reason: fmt.Sprintf("nonzero padding byte at offset %d", pos)}
			}
		}
		if r.end > pos {
			pos = r.end
		}
	}
	return nil
}

// CheckLayout verifies the snapshot's struct-size fingerprint against the
// sizes compiled into this build, returning a *IncompatibleError on any
// difference.
func (f *File) CheckLayout(want Layout) error {
	if f.Layout != want {
		return &IncompatibleError{Path: f.path, Reason: fmt.Sprintf(
			"struct layout %+v differs from this build's %+v", f.Layout, want)}
	}
	return nil
}

// SectionData returns the verified payload of the tagged section, or a
// *CorruptError if the snapshot does not carry it.
func (f *File) SectionData(tag string) ([]byte, error) {
	for _, s := range f.sections {
		if s.Tag == tag {
			return s.Data, nil
		}
	}
	return nil, &CorruptError{Path: f.path, Section: tag, Reason: "section missing"}
}

// Sections lists the verified sections in file order.
func (f *File) Sections() []Section { return f.sections }

// HasSection reports whether the snapshot carries the tagged section — the
// probe for optional sections (the "SHRD" and "DHTP" identities) whose
// absence is a valid state, not the corruption SectionData reports it as.
func (f *File) HasSection(tag string) bool {
	for _, s := range f.sections {
		if s.Tag == tag {
			return true
		}
	}
	return false
}

// Path returns the path the snapshot was opened from.
func (f *File) Path() string { return f.path }

// Mapped reports whether the payloads are a zero-copy file mapping (true on
// mmap-capable platforms) or a heap copy (the fallback).
func (f *File) Mapped() bool { return f.m.mapped }

// Close releases the mapping. Every section payload — and any structure
// aliasing one, such as a loaded index — is invalid afterwards. Close is
// idempotent.
func (f *File) Close() error {
	if f.m == nil {
		return nil
	}
	m := f.m
	f.m, f.sections = nil, nil
	return m.close()
}
