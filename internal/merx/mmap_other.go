//go:build !unix

package merx

import (
	"fmt"
	"io"
	"os"
	"unsafe"
)

// mapping holds the file bytes: an mmap on unix, a heap copy elsewhere.
type mapping struct {
	data   []byte
	mapped bool
}

// mapFile reads the whole file into an aligned heap buffer — the portable
// fallback where mmap is unavailable. Loading still skips the index
// rebuild; only the zero-copy page-cache sharing is lost.
func mapFile(f *os.File, size int64) (*mapping, error) {
	// Back the buffer with uint64s so section payloads (at 64-byte-aligned
	// offsets within the buffer) keep at least 8-byte alignment for the raw
	// struct views taken over them.
	words := make([]uint64, (size+7)/8)
	b := unsafeBytes(words, int(size))
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), b); err != nil {
		return nil, fmt.Errorf("reading snapshot: %w", err)
	}
	return &mapping{data: b, mapped: false}, nil
}

// close drops the heap copy.
func (m *mapping) close() error {
	m.data = nil
	return nil
}

// unsafeBytes views the word buffer as its first n bytes.
func unsafeBytes(words []uint64, n int) []byte {
	if len(words) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}
