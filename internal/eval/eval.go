// Package eval measures alignment accuracy against the read simulator's
// ground truth — the machinery behind the paper's accuracy statements
// (§VI-D: merAligner aligned 86.3% of human reads and 97.4% of E. coli
// reads; "the algorithm is guaranteed to identify all alignments that share
// at least one identically matching stretch of at least length(seed)
// consecutive bases").
package eval

import (
	"fmt"

	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/genome"
)

// Outcome classifies one read's alignment result.
type Outcome int

const (
	// Correct: an alignment was reported at the read's true origin
	// (same contig, same strand, position within Tolerance).
	Correct Outcome = iota
	// Misplaced: alignments reported, none at the true origin.
	Misplaced
	// Unaligned: no alignments reported for a read whose origin lies
	// inside a contig.
	Unaligned
	// Unmappable: the read's origin falls in a region no contig covers
	// (or spans a contig edge) — no aligner can place it.
	Unmappable
)

// Metrics summarizes an evaluation.
type Metrics struct {
	Total      int
	Correct    int
	Misplaced  int
	Unaligned  int
	Unmappable int
}

// AlignedFraction is the fraction of all reads with >= 1 alignment — the
// quantity the paper reports (86.3% / 97.4%).
func (m Metrics) AlignedFraction() float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Correct+m.Misplaced) / float64(m.Total)
}

// Sensitivity is the fraction of mappable reads placed correctly.
func (m Metrics) Sensitivity() float64 {
	mappable := m.Total - m.Unmappable
	if mappable == 0 {
		return 0
	}
	return float64(m.Correct) / float64(mappable)
}

// Precision is the fraction of aligned reads placed correctly.
func (m Metrics) Precision() float64 {
	aligned := m.Correct + m.Misplaced
	if aligned == 0 {
		return 0
	}
	return float64(m.Correct) / float64(aligned)
}

func (m Metrics) String() string {
	return fmt.Sprintf("total %d: correct %d, misplaced %d, unaligned %d, unmappable %d "+
		"(aligned %.1f%%, sensitivity %.3f, precision %.3f)",
		m.Total, m.Correct, m.Misplaced, m.Unaligned, m.Unmappable,
		100*m.AlignedFraction(), m.Sensitivity(), m.Precision())
}

// Options for evaluation.
type Options struct {
	// Tolerance allows the reported target start to deviate from the true
	// position by this many bases (indels shift local alignments).
	Tolerance int
}

// Evaluate scores a run's alignments against the data set's ground truth.
// Results must have been produced with CollectAlignments enabled.
func Evaluate(ds *genome.DataSet, res *core.Results, opt Options) Metrics {
	if opt.Tolerance == 0 {
		opt.Tolerance = 8
	}
	byQuery := make(map[int32][]core.Alignment, len(ds.Reads))
	for _, a := range res.Alignments {
		byQuery[a.Query] = append(byQuery[a.Query], a)
	}

	L := ds.Profile.ReadLen
	m := Metrics{Total: len(ds.Reads)}
	for qi, org := range ds.Origins {
		tgt, tOff, inside := locate(ds, org.Pos, L)
		as := byQuery[int32(qi)]
		if !inside {
			m.Unmappable++
			continue
		}
		if len(as) == 0 {
			m.Unaligned++
			continue
		}
		found := false
		for _, a := range as {
			if int(a.Target) != tgt || a.RC != org.RC {
				continue
			}
			// The alignment may be clipped; compare implied read-start
			// positions: TStart - QStart on the aligned strand.
			implied := int(a.TStart) - int(a.QStart)
			if abs(implied-tOff) <= opt.Tolerance {
				found = true
				break
			}
		}
		if found {
			m.Correct++
		} else {
			m.Misplaced++
		}
	}
	return m
}

// locate maps a genome position to (contig index, offset) if [pos, pos+L)
// lies fully inside one contig.
func locate(ds *genome.DataSet, pos, L int) (int, int, bool) {
	// Binary search over sorted contig starts.
	lo, hi := 0, len(ds.ContigPos)
	for lo < hi {
		mid := (lo + hi) / 2
		if ds.ContigPos[mid] <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo - 1
	if i < 0 {
		return 0, 0, false
	}
	end := ds.ContigPos[i] + ds.Contigs[i].Seq.Len()
	if pos+L <= end {
		return i, pos - ds.ContigPos[i], true
	}
	return 0, 0, false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
