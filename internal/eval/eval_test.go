package eval

import (
	"testing"

	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/genome"
	"github.com/lbl-repro/meraligner/internal/upc"
)

func runWorkload(t *testing.T, errRate float64) (*genome.DataSet, *core.Results) {
	t.Helper()
	p := genome.HumanLike(120_000)
	p.Depth = 4
	p.InsertMean = 0
	p.ErrorRate = errRate
	ds, err := genome.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	mach := upc.Edison(24)
	mach.Workers = 4
	opt := core.DefaultOptions(31)
	opt.CollectAlignments = true
	res, err := core.Run(mach, opt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	return ds, res
}

func TestEvaluateErrorFreeReads(t *testing.T) {
	ds, res := runWorkload(t, 0)
	m := Evaluate(ds, res, Options{})
	if m.Total != len(ds.Reads) {
		t.Fatalf("total %d != %d", m.Total, len(ds.Reads))
	}
	// Error-free reads inside contigs must all be placed correctly.
	if m.Sensitivity() < 0.999 {
		t.Errorf("sensitivity %.4f on error-free reads, want ~1: %s", m.Sensitivity(), m)
	}
	if m.Precision() < 0.999 {
		t.Errorf("precision %.4f on error-free reads: %s", m.Precision(), m)
	}
	if m.Unaligned != 0 {
		t.Errorf("%d error-free in-contig reads unaligned", m.Unaligned)
	}
}

func TestEvaluateNoisyReads(t *testing.T) {
	ds, res := runWorkload(t, 0.01)
	m := Evaluate(ds, res, Options{})
	// With 1% error some reads lack any intact 31-mer; sensitivity drops
	// but must stay high, and precision must stay near 1.
	if m.Sensitivity() < 0.90 {
		t.Errorf("sensitivity %.3f too low: %s", m.Sensitivity(), m)
	}
	if m.Precision() < 0.99 {
		t.Errorf("precision %.3f too low: %s", m.Precision(), m)
	}
	// The aligned fraction should land in the paper's ballpark given the
	// generator's ~94% contig coverage.
	if f := m.AlignedFraction(); f < 0.75 || f > 0.99 {
		t.Errorf("aligned fraction %.3f implausible: %s", f, m)
	}
}

func TestMetricsZeroSafe(t *testing.T) {
	var m Metrics
	if m.AlignedFraction() != 0 || m.Sensitivity() != 0 || m.Precision() != 0 {
		t.Error("zero metrics not safe")
	}
	if m.String() == "" {
		t.Error("empty string")
	}
}

func TestEvaluateCountsUnmappable(t *testing.T) {
	ds, res := runWorkload(t, 0)
	m := Evaluate(ds, res, Options{})
	// The generator leaves gaps between contigs; some reads must span them.
	if m.Unmappable == 0 {
		t.Error("no unmappable reads despite contig gaps")
	}
	if m.Correct+m.Misplaced+m.Unaligned+m.Unmappable != m.Total {
		t.Error("outcome counts do not partition the read set")
	}
}
