package service

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/genome"
)

// ---- shared fixture: one resident aligner for every test ----

var (
	fixOnce    sync.Once
	fixAligner *meraligner.Aligner
	fixReads   []meraligner.Seq
	fixErr     error
)

func fixture(t *testing.T) (*meraligner.Aligner, []meraligner.Seq) {
	t.Helper()
	fixOnce.Do(func() {
		p := genome.EColiLike()
		p.GenomeLen = 60_000
		p.Depth = 2
		p.ContigMean = 10_000
		p.InsertMean = 0
		p.Seed = 7
		ds, err := genome.Generate(p)
		if err != nil {
			fixErr = err
			return
		}
		fixReads = ds.Reads
		iopt := meraligner.DefaultIndexOptions(19)
		fixAligner, fixErr = meraligner.Build(2, iopt, ds.Contigs)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixAligner, fixReads
}

func queryOpts() meraligner.QueryOptions {
	q := meraligner.DefaultQueryOptions()
	q.MaxSeedHits = 200
	q.CollectAlignments = true
	return q
}

// newTestServer builds a Server (tweaked by mod) behind httptest.
func newTestServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	al, _ := fixture(t)
	cfg := Config{Aligner: al, Query: queryOpts(), Workers: 2, Version: "test"}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// directSAM renders the SAM document of a direct, uncoalesced Align call —
// the byte-identity oracle for service responses.
func directSAM(t *testing.T, al *meraligner.Aligner, reads []meraligner.Seq) []byte {
	t.Helper()
	res, err := al.Align(context.Background(), reads, queryOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := meraligner.WriteSAM(&buf, res, al.Targets(), reads); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// ---- end-to-end acceptance: coalescing, byte identity, stats ----

func TestConcurrentSingleReadsCoalesceAndMatchDirectAlign(t *testing.T) {
	al, reads := fixture(t)
	const n = 8
	if len(reads) < n {
		t.Fatalf("fixture too small: %d reads", len(reads))
	}
	_, ts := newTestServer(t, func(c *Config) {
		c.MaxBatch = n
		c.MaxWait = 500 * time.Millisecond
	})
	cl := client.New(ts.URL)

	// The byte-identity oracle: one direct, uncoalesced Align per read,
	// rendered to SAM. Computed up front so worker goroutines never touch t.
	wants := make([][]byte, n)
	for i := 0; i < n; i++ {
		wants[i] = directSAM(t, al, []meraligner.Seq{reads[i]})
	}

	// Batching is continuous: coalescing needs requests to overlap an
	// in-flight engine call, so on a slow host one round of n concurrent
	// posts may land fully serialized. Every round re-checks byte identity;
	// rounds repeat (bounded) until the stats show a coalesced batch.
	const maxRounds = 10
	rounds := 0
	var st *client.Stats
	for ; rounds < maxRounds; rounds++ {
		var wg sync.WaitGroup
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got, err := cl.AlignSAM(context.Background(), client.AlignRequest{
					Reads: client.FromSeqs([]meraligner.Seq{reads[i]}),
				})
				if err != nil {
					errs[i] = err
					return
				}
				if !bytes.Equal(got, wants[i]) {
					errs[i] = fmt.Errorf("read %d: service SAM diverges from direct Align\ngot:\n%s\nwant:\n%s", i, got, wants[i])
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		var err error
		if st, err = cl.Stats(context.Background()); err != nil {
			t.Fatal(err)
		}
		if st.MaxBatchReads >= 2 {
			break
		}
	}
	if st.MaxBatchReads < 2 {
		t.Fatalf("no coalescing observed in %d rounds of %d concurrent single-read posts: %+v", maxRounds, n, st)
	}
	if st.CoalescedBatches < 1 {
		t.Fatalf("stats report no coalesced batches: %+v", st)
	}
	if want := int64((rounds + 1) * n); st.Requests != want || st.Reads != want {
		t.Fatalf("request accounting off: requests=%d reads=%d, want %d each", st.Requests, st.Reads, want)
	}
	if st.RequestP50Ms <= 0 || st.AlignReadP50Us <= 0 {
		t.Fatalf("latency quantiles missing: %+v", st)
	}
	if st.K != 19 || st.ResidentBytes <= 0 || st.DistinctSeeds <= 0 {
		t.Fatalf("index identity missing from stats: %+v", st)
	}
}

func TestAlignJSONResponse(t *testing.T) {
	al, reads := fixture(t)
	_, ts := newTestServer(t, nil)
	cl := client.New(ts.URL)

	batch := reads[:5]
	resp, err := cl.Align(context.Background(), client.AlignRequest{Reads: client.FromSeqs(batch)})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Reads) != len(batch) {
		t.Fatalf("got %d read results, want %d", len(resp.Reads), len(batch))
	}
	direct, err := al.Align(context.Background(), batch, queryOpts())
	if err != nil {
		t.Fatal(err)
	}
	perQuery := map[int]int{}
	for _, a := range direct.Alignments {
		perQuery[int(a.Query)]++
	}
	for i, rr := range resp.Reads {
		if rr.Name != batch[i].Name {
			t.Fatalf("read %d name %q, want %q", i, rr.Name, batch[i].Name)
		}
		if len(rr.Alignments) != perQuery[i] {
			t.Fatalf("read %d: %d alignments on the wire, direct Align found %d", i, len(rr.Alignments), perQuery[i])
		}
		wantStatus := client.StatusOK
		if perQuery[i] == 0 {
			wantStatus = client.StatusUnmapped
		}
		if rr.Status != wantStatus {
			t.Fatalf("read %d status %q, want %q", i, rr.Status, wantStatus)
		}
	}
}

func TestLargeBatchTakesDirectPathWithFastqBody(t *testing.T) {
	al, reads := fixture(t)
	_, ts := newTestServer(t, func(c *Config) { c.MaxBatch = 4 })

	// A FASTQ body bigger than MaxBatch exercises the direct (uncoalesced)
	// path and the text parser at once.
	batch := reads[:10]
	var fq bytes.Buffer
	for _, r := range batch {
		qual := string(r.Qual)
		if qual == "" {
			qual = strings.Repeat("I", r.Seq.Len())
		}
		fmt.Fprintf(&fq, "@%s\n%s\n+\n%s\n", r.Name, r.Seq.String(), qual)
	}
	resp, err := http.Post(ts.URL+"/v1/align", "text/x-fastq", bytes.NewReader(fq.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out client.AlignResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Reads) != len(batch) {
		t.Fatalf("got %d results, want %d", len(out.Reads), len(batch))
	}
	_ = al
}

func TestStreamNDJSONAndSAM(t *testing.T) {
	al, reads := fixture(t)
	_, ts := newTestServer(t, func(c *Config) { c.MaxBatch = 3 }) // forces multiple chunks
	cl := client.New(ts.URL)

	batch := reads[:8]
	var got []client.ReadResult
	err := cl.AlignStream(context.Background(), client.AlignRequest{Reads: client.FromSeqs(batch)},
		func(rr client.ReadResult) error {
			got = append(got, rr)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("streamed %d results, want %d", len(got), len(batch))
	}
	for i := range got {
		if got[i].Name != batch[i].Name {
			t.Fatalf("stream result %d is %q, want %q (order must be preserved)", i, got[i].Name, batch[i].Name)
		}
	}

	// SAM over the stream endpoint must byte-match the direct document.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/align/stream",
		bytes.NewReader(mustJSON(t, client.AlignRequest{Reads: client.FromSeqs(batch)})))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/x-sam")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	gotSAM, _ := io.ReadAll(resp.Body)
	if want := directSAM(t, al, batch); !bytes.Equal(gotSAM, want) {
		t.Fatalf("streamed SAM diverges from direct Align:\ngot:\n%s\nwant:\n%s", gotSAM, want)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// waitUntil polls cond to make ordering-sensitive tests deterministic.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// ---- typed too-short rejection ----

func TestTooShortReads400(t *testing.T) {
	_, reads := fixture(t)
	_, ts := newTestServer(t, nil)
	cl := client.New(ts.URL)

	_, err := cl.Align(context.Background(), client.AlignRequest{Reads: []client.Read{
		{Name: "ok", Seq: reads[0].Seq.String()},
		{Name: "stub", Seq: "ACGTACG"}, // 7 < K=19
	}})
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("got %v, want 400 StatusError", err)
	}
	if len(se.TooShort) != 1 || se.TooShort[0] != "stub" {
		t.Fatalf("too-short detail %v, want [stub]", se.TooShort)
	}
}

func TestEngineReportsTypedTooShortStatus(t *testing.T) {
	al, reads := fixture(t)
	q := queryOpts()
	q.CollectPerQuery = true
	batch := []meraligner.Seq{reads[0], {Name: "tiny", Seq: reads[1].Seq.Slice(0, 7)}, reads[2]}
	res, err := al.Align(context.Background(), batch, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.TooShortReads != 1 || len(res.TooShort) != 1 || res.TooShort[0] != 1 {
		t.Fatalf("TooShort = %v (%d reads), want index 1", res.TooShort, res.TooShortReads)
	}
	if res.PerQuery[1].Status != meraligner.QueryTooShort {
		t.Fatalf("PerQuery[1].Status = %v, want QueryTooShort", res.PerQuery[1].Status)
	}
	if res.PerQuery[0].Status != meraligner.QueryOK || res.PerQuery[2].Status != meraligner.QueryOK {
		t.Fatalf("long reads mis-statused: %+v", res.PerQuery)
	}
	// Slicing keeps the rebased status.
	s := res.Slice(1, 3)
	if s.TooShortReads != 1 || s.TooShort[0] != 0 {
		t.Fatalf("sliced TooShort = %v, want [0]", s.TooShort)
	}
}

// ---- admission control ----

func TestAdmissionQueueFull429(t *testing.T) {
	_, reads := fixture(t)
	big := len(reads) / 2
	srv, ts := newTestServer(t, func(c *Config) {
		c.MaxBatch = big + 4 // the mega-request below takes the direct path
		c.QueueReads = big + 4
		c.MaxWait = 5 * time.Second
	})
	cl := client.New(ts.URL)

	// A mega-request (direct path, several hundred ms of engine time)
	// keeps the engine busy; a big batched request then fills the queue
	// behind it; a third cannot be admitted.
	mega := make([]meraligner.Seq, 0, 4*len(reads))
	for i := 0; i < 4; i++ {
		mega = append(mega, reads...)
	}
	busy := make(chan error, 1)
	go func() {
		_, err := cl.Align(context.Background(), client.AlignRequest{Reads: client.FromSeqs(mega)})
		busy <- err
	}()
	waitUntil(t, "the engine to go busy", func() bool { return srv.single.bat.inflightCalls() > 0 })
	queued := make(chan error, 1)
	go func() {
		_, err := cl.Align(context.Background(), client.AlignRequest{Reads: client.FromSeqs(reads[:big])})
		queued <- err
	}()
	waitUntil(t, "the queue to fill", func() bool { return srv.single.bat.queuedReads() == big })

	_, err := cl.Align(context.Background(), client.AlignRequest{Reads: client.FromSeqs(reads[:8])})
	var re *client.RetryError
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want RetryError (429)", err)
	}
	if re.After <= 0 {
		t.Fatalf("429 without a usable Retry-After: %v", re)
	}
	if err := <-busy; err != nil {
		t.Fatalf("busy request failed: %v", err)
	}
	if err := <-queued; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected < 1 {
		t.Fatalf("stats.Rejected = %d, want >= 1", st.Rejected)
	}
}

func TestOversizedBody413(t *testing.T) {
	_, reads := fixture(t)
	_, ts := newTestServer(t, func(c *Config) { c.MaxRequestBytes = 64 })
	cl := client.New(ts.URL)
	_, err := cl.Align(context.Background(), client.AlignRequest{Reads: client.FromSeqs(reads[:4])})
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body returned %v, want 413 (split-and-retry signal, not 400)", err)
	}
}

// ---- cancellation ----

// blockingAlign returns an align func whose every call announces itself on
// starts (handing the test its private release channel) and blocks until
// released — the deterministic way to hold the engine busy so arrivals
// coalesce behind it.
func blockingAlign() (alignFunc, chan chan struct{}) {
	starts := make(chan chan struct{})
	return func(ctx context.Context, batch []meraligner.Seq) (*engineCall, error) {
		release := make(chan struct{})
		starts <- release
		select {
		case <-release:
			return newEngineCall(&meraligner.Results{TotalReads: len(batch)}, nil, nil), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}, starts
}

type batchResult struct {
	win *window
	err error
}

func TestQueuedCancelDropsOnlyThatRequest(t *testing.T) {
	// A and B queue behind a busy engine; A's client disconnects while
	// still queued. The next batch must carry only B.
	align, starts := blockingAlign()
	b := newBatcher(context.Background(), align, 64, time.Second, 1024, nil)
	reads := func(n int) []meraligner.Seq { return make([]meraligner.Seq, n) }

	primer := make(chan batchResult, 1)
	go func() {
		w, err := b.submit(context.Background(), reads(1))
		primer <- batchResult{w, err}
	}()
	relPrimer := <-starts // engine now busy with the primer

	ctxA, cancelA := context.WithCancel(context.Background())
	resA := make(chan batchResult, 1)
	resB := make(chan batchResult, 1)
	go func() {
		w, err := b.submit(ctxA, reads(1))
		resA <- batchResult{w, err}
	}()
	waitUntil(t, "A to queue", func() bool { return b.queuedReads() == 1 })
	go func() {
		w, err := b.submit(context.Background(), reads(2))
		resB <- batchResult{w, err}
	}()
	waitUntil(t, "B to queue", func() bool { return b.queuedReads() == 3 })

	cancelA()
	ra := <-resA
	if !errors.Is(ra.err, context.Canceled) {
		t.Fatalf("canceled request returned %v, want context.Canceled", ra.err)
	}
	close(relPrimer)
	if pr := <-primer; pr.err != nil {
		t.Fatalf("primer failed: %v", pr.err)
	}
	close(<-starts) // release the follow-up batch (B, with A dropped)
	rb := <-resB
	if rb.err != nil {
		t.Fatalf("batchmate failed: %v", rb.err)
	}
	if rb.win == nil || rb.win.hi-rb.win.lo != 2 || len(rb.win.reads) != 2 {
		t.Fatalf("B's window should hold exactly its own 2 reads (A dropped at take): %+v", rb.win)
	}
	if err := b.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestMidFlightDisconnectCancelsOnlyThatRequest(t *testing.T) {
	// A and B coalesce into one engine call (formed behind a busy primer);
	// A's client disconnects while that call is in flight. B's share must
	// be intact, and the engine context must survive (one member remains).
	align, starts := blockingAlign()
	b := newBatcher(context.Background(), align, 8, time.Second, 64, nil)
	reads := func(n int) []meraligner.Seq { return make([]meraligner.Seq, n) }

	primer := make(chan batchResult, 1)
	go func() {
		w, err := b.submit(context.Background(), reads(1))
		primer <- batchResult{w, err}
	}()
	relPrimer := <-starts

	ctxA, cancelA := context.WithCancel(context.Background())
	resA := make(chan batchResult, 1)
	resB := make(chan batchResult, 1)
	go func() {
		w, err := b.submit(ctxA, reads(1))
		resA <- batchResult{w, err}
	}()
	waitUntil(t, "A to queue first", func() bool { return b.queuedReads() == 1 })
	go func() {
		w, err := b.submit(context.Background(), reads(2))
		resB <- batchResult{w, err}
	}()
	waitUntil(t, "B to queue behind A", func() bool { return b.queuedReads() == 3 })

	close(relPrimer)
	relAB := <-starts // the coalesced [A,B] call is now in flight
	cancelA()
	ra := <-resA // A unblocks immediately on its own ctx
	if !errors.Is(ra.err, context.Canceled) {
		t.Fatalf("canceled member got %v, want context.Canceled", ra.err)
	}
	close(relAB)
	rb := <-resB
	if rb.err != nil || rb.win == nil {
		t.Fatalf("surviving member got (%+v, %v), want its window", rb.win, rb.err)
	}
	if rb.win.lo != 1 || rb.win.hi != 3 {
		t.Fatalf("surviving member window [%d,%d), want [1,3)", rb.win.lo, rb.win.hi)
	}
	if pr := <-primer; pr.err != nil {
		t.Fatalf("primer failed: %v", pr.err)
	}
	if err := b.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestAllMembersGoneCancelsEngineCall(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	align := func(ctx context.Context, batch []meraligner.Seq) (*engineCall, error) {
		entered <- struct{}{}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return newEngineCall(&meraligner.Results{TotalReads: len(batch)}, nil, nil), nil
		}
	}
	b := newBatcher(context.Background(), align, 8, 20*time.Millisecond, 64, nil)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.submit(ctx, make([]meraligner.Seq, 1))
		done <- err
	}()
	<-entered
	cancel() // the only member leaves: the engine call must die with it
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("submit returned %v, want context.Canceled", err)
	}
	if err := b.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(release)
}

// ---- drain / health ----

func TestDrainGraceful(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d before drain, want 200", resp.StatusCode)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d after drain, want 503", resp.StatusCode)
	}
	_, reads := fixture(t)
	cl := client.New(ts.URL)
	_, err = cl.Align(context.Background(), client.AlignRequest{Reads: client.FromSeqs(reads[:1])})
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("align after drain returned %v, want 503", err)
	}
}

// ---- gzip ----

func TestGzipResponses(t *testing.T) {
	al, reads := fixture(t)
	_, ts := newTestServer(t, nil)

	// DisableCompression keeps net/http from hiding the Content-Encoding.
	hc := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/align",
		bytes.NewReader(mustJSON(t, client.AlignRequest{Reads: client.FromSeqs(reads[:2])})))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/x-sam")
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding %q, want gzip", ce)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if want := directSAM(t, al, reads[:2]); !bytes.Equal(got, want) {
		t.Fatalf("gzipped SAM decodes to a different document:\n%s\nwant:\n%s", got, want)
	}
}

func TestGzipRequestBodySniffed(t *testing.T) {
	_, reads := fixture(t)
	_, ts := newTestServer(t, nil)

	var fq bytes.Buffer
	zw := gzip.NewWriter(&fq)
	fmt.Fprintf(zw, "@%s\n%s\n+\n%s\n", reads[0].Name, reads[0].Seq.String(), strings.Repeat("I", reads[0].Seq.Len()))
	zw.Close()
	resp, err := http.Post(ts.URL+"/v1/align", "application/octet-stream", &fq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("gzipped FASTQ body rejected: %d %s", resp.StatusCode, body)
	}
}

// ---- metrics ----

func TestMetricsExposition(t *testing.T) {
	_, reads := fixture(t)
	_, ts := newTestServer(t, nil)
	cl := client.New(ts.URL)
	if _, err := cl.Align(context.Background(), client.AlignRequest{Reads: client.FromSeqs(reads[:1])}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"merserved_requests_total 1",
		"merserved_reads_total 1",
		"merserved_batches_total",
		"merserved_resident_bytes",
		"merserved_request_latency_seconds{quantile=\"0.99\"}",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, body)
		}
	}
}

// TestDeadlineAdmission: with MinDeadline set, an align request whose
// propagated X-Deadline-Ms budget is below the floor is rejected with 503
// before any parsing, counted, and exported; a comfortable budget is
// admitted normally, and requests without the header are untouched.
func TestDeadlineAdmission(t *testing.T) {
	_, reads := fixture(t)
	_, ts := newTestServer(t, func(c *Config) { c.MinDeadline = 50 * time.Millisecond })

	send := func(deadlineMs string) (int, []byte) {
		payload, err := json.Marshal(client.AlignRequest{Reads: client.FromSeqs(reads[:1])})
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/align", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if deadlineMs != "" {
			req.Header.Set(client.HeaderDeadlineMs, deadlineMs)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	code, body := send("5")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "doomed") {
		t.Fatalf("doomed request = %d %q, want 503 rejection", code, body)
	}
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st client.Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.DeadlineRejected != 1 {
		t.Fatalf("deadline_rejected = %d, want 1", st.DeadlineRejected)
	}
	if code, body = send("5000"); code != http.StatusOK {
		t.Fatalf("well-budgeted request = %d, body %s", code, body)
	}
	if code, body = send(""); code != http.StatusOK {
		t.Fatalf("headerless request = %d, body %s", code, body)
	}
	if code, body = send("garbage"); code != http.StatusOK {
		t.Fatalf("malformed-header request = %d, body %s (malformed must read as absent)", code, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	mbody, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(mbody), "merserved_deadline_rejected_total 1") {
		t.Fatalf("/metrics lacks deadline rejection counter:\n%s", mbody)
	}
}
