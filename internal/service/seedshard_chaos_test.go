package service

// Chaos suite for the seed-lookup tier: a seed-shard fleet served behind
// faultinject proxies is driven through slow-loris dribble, transient
// errors, and a mid-flight node kill under concurrent resolution load.
// The acceptance property mirrors the engine's no-partial-results rule:
// every ResolveSeeds call either answers bit-identically to the mapped
// shards or fails typed (ErrDegraded naming the node) — a faulted fleet
// must never silently answer "absent" for seeds it owns.

import (
	"context"
	"errors"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/dhtnet"
	"github.com/lbl-repro/meraligner/internal/faultinject"
	"github.com/lbl-repro/meraligner/internal/kmer"
)

// chaosSeedFleet serves count seed shards, each behind a faultinject proxy,
// and returns the shards, the proxies, and a client configured for quick
// retries (tests shouldn't wait out production backoffs).
func chaosSeedFleet(t *testing.T, count int, mod func(cfg *dhtnet.Config)) ([]*core.SeedShard, []*faultinject.Proxy, *dhtnet.Client) {
	t.Helper()
	al, _ := fixture(t)
	paths, err := al.SaveSeedShards(t.TempDir(), count)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*core.SeedShard, count)
	proxies := make([]*faultinject.Proxy, count)
	owners := make([]string, count)
	for i, p := range paths {
		sh, err := core.LoadSeedShard(p)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sh.Close() })
		srv, err := NewSeedShard(SeedShardConfig{Shard: sh})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		u, err := url.Parse(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		px, err := faultinject.New(u.Host, uint64(4000+i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(px.Close)
		shards[i] = sh
		proxies[i] = px
		owners[i] = px.URL()
	}
	cfg := dhtnet.Config{
		Owners:  owners,
		K:       al.IndexOptions().K,
		Shards:  al.SeedTableShards(),
		MaxWait: time.Millisecond,
		Retry: client.RetryPolicy{
			MaxAttempts:    3,
			BaseDelay:      2 * time.Millisecond,
			MaxDelay:       20 * time.Millisecond,
			AttemptTimeout: 2 * time.Second,
		},
		BreakerCooldown: 50 * time.Millisecond,
	}
	if mod != nil {
		mod(&cfg)
	}
	c, err := dhtnet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return shards, proxies, c
}

// checkAnswers asserts one successful resolution is bit-identical to the
// mapped shards' own answers.
func checkAnswers(t *testing.T, shards []*core.SeedShard, seeds []kmer.Kmer, out []core.SeedAnswer) {
	t.Helper()
	info := shards[0].Info()
	for i, s := range seeds {
		want, ok := shards[dht.OwnerOf(s, info.Shards, info.Count)].Lookup(s)
		if out[i].OK != ok {
			t.Fatalf("seed %d: OK=%v want %v", i, out[i].OK, ok)
		}
		if ok && (out[i].Res.Count != want.Count || len(out[i].Res.Locs) != len(want.Locs)) {
			t.Fatalf("seed %d: result shape mismatch", i)
		}
	}
}

// TestSeedShardChaosTransientFaults: under a transient-error window on one
// node with concurrent resolvers, every call either answers correctly
// (retries absorbed the faults) or fails typed — and after the window the
// fleet recovers to full success.
func TestSeedShardChaosTransientFaults(t *testing.T) {
	shards, proxies, c := chaosSeedFleet(t, 3, nil)
	seeds := fixtureSeeds(t, 400)
	proxies[1].SetErrorRate(0.4)

	var ok, degraded, wrong atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				batch := seeds[(g*37+iter*11)%300 : (g*37+iter*11)%300+64]
				out := make([]core.SeedAnswer, len(batch))
				err := c.ResolveSeeds(context.Background(), batch, out)
				switch {
				case err == nil:
					info := shards[0].Info()
					for i, s := range batch {
						want, present := shards[dht.OwnerOf(s, info.Shards, info.Count)].Lookup(s)
						if out[i].OK != present || (present && out[i].Res.Count != want.Count) {
							wrong.Add(1)
						}
					}
					ok.Add(1)
				case errors.Is(err, dhtnet.ErrDegraded):
					degraded.Add(1)
				default:
					t.Errorf("untyped failure: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	if wrong.Load() > 0 {
		t.Fatalf("%d resolutions answered incorrectly under faults", wrong.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no resolution survived a 40%% transient-error window with retries")
	}
	t.Logf("transient window: %d ok, %d typed-degraded", ok.Load(), degraded.Load())

	// Window over: the fleet recovers (breaker half-open probes succeed).
	proxies[1].SetErrorRate(0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		out := make([]core.SeedAnswer, 64)
		err := c.ResolveSeeds(context.Background(), seeds[:64], out)
		if err == nil {
			checkAnswers(t, shards, seeds[:64], out)
			break
		}
		if !errors.Is(err, dhtnet.ErrDegraded) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet did not recover after the fault window")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSeedShardChaosKilledNode: killing one node's connections mid-flight
// and blackholing it afterwards yields typed degraded errors for its
// seeds — never silent misses — while the surviving nodes keep answering;
// lifting the blackhole restores the full fleet.
func TestSeedShardChaosKilledNode(t *testing.T) {
	shards, proxies, c := chaosSeedFleet(t, 3, func(cfg *dhtnet.Config) {
		cfg.Retry.AttemptTimeout = 200 * time.Millisecond
	})
	seeds := fixtureSeeds(t, 400)
	info := shards[0].Info()

	var dead, alive []kmer.Kmer
	for _, s := range seeds {
		if dht.OwnerOf(s, info.Shards, info.Count) == 2 {
			dead = append(dead, s)
		} else {
			alive = append(alive, s)
		}
	}
	if len(dead) == 0 || len(alive) == 0 {
		t.Fatal("seed pool does not cover all owners")
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Kill mid-flight, then blackhole so reconnects hang into the
		// attempt timeout instead of failing fast.
		time.Sleep(5 * time.Millisecond)
		proxies[2].SetBlackhole(true)
		proxies[2].KillActive()
	}()
	// Hammer the doomed node until the kill lands; every failure must be
	// typed.
	deadline := time.Now().Add(10 * time.Second)
	sawDegraded := false
	for !sawDegraded {
		out := make([]core.SeedAnswer, len(dead))
		err := c.ResolveSeeds(context.Background(), dead, out)
		switch {
		case err == nil:
			checkAnswers(t, shards, dead, out)
		case errors.Is(err, dhtnet.ErrDegraded):
			var de *dhtnet.DegradedError
			if !errors.As(err, &de) || de.Owner != 2 {
				t.Fatalf("degraded error does not name the dead node: %v", err)
			}
			sawDegraded = true
		default:
			t.Fatalf("untyped failure from killed node: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("kill never surfaced")
		}
	}
	wg.Wait()

	// Survivors are unaffected.
	out := make([]core.SeedAnswer, len(alive))
	if err := c.ResolveSeeds(context.Background(), alive, out); err != nil {
		t.Fatalf("healthy nodes degraded by sibling kill: %v", err)
	}
	checkAnswers(t, shards, alive, out)

	// Node returns: breaker half-open probe readmits it.
	proxies[2].SetBlackhole(false)
	deadline = time.Now().Add(5 * time.Second)
	for {
		out := make([]core.SeedAnswer, len(dead))
		err := c.ResolveSeeds(context.Background(), dead, out)
		if err == nil {
			checkAnswers(t, shards, dead, out)
			break
		}
		if !errors.Is(err, dhtnet.ErrDegraded) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("node not readmitted after blackhole lifted")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSeedShardChaosSlowLoris: a node dribbling bytes slower than the
// attempt timeout is indistinguishable from a dead one — typed degraded
// errors, then recovery once the dribble stops.
func TestSeedShardChaosSlowLoris(t *testing.T) {
	shards, proxies, c := chaosSeedFleet(t, 2, func(cfg *dhtnet.Config) {
		cfg.Retry.AttemptTimeout = 100 * time.Millisecond
		cfg.Retry.MaxAttempts = 2
	})
	seeds := fixtureSeeds(t, 200)
	proxies[0].SetSlowLoris(2 * time.Second)

	deadline := time.Now().Add(10 * time.Second)
	for {
		out := make([]core.SeedAnswer, 64)
		err := c.ResolveSeeds(context.Background(), seeds[:64], out)
		if err != nil {
			if !errors.Is(err, dhtnet.ErrDegraded) {
				t.Fatalf("slow-loris produced an untyped failure: %v", err)
			}
			break
		}
		// The dribble only applies to new connections; keep going until a
		// call actually hits it.
		checkAnswers(t, shards, seeds[:64], out)
		if time.Now().After(deadline) {
			t.Skip("slow-loris never observed (connection reuse)")
		}
	}

	proxies[0].SetSlowLoris(0)
	deadline = time.Now().Add(5 * time.Second)
	for {
		out := make([]core.SeedAnswer, 64)
		err := c.ResolveSeeds(context.Background(), seeds[:64], out)
		if err == nil {
			checkAnswers(t, shards, seeds[:64], out)
			return
		}
		if !errors.Is(err, dhtnet.ErrDegraded) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet did not recover from slow-loris")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
