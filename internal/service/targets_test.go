package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"github.com/lbl-repro/meraligner/client"
)

func TestReadyzProbe(t *testing.T) {
	srv, ts := newTestServer(t, nil)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ready\n" {
		t.Fatalf("readyz = %d %q, want 200 ready", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || string(body) != "draining\n" {
		t.Fatalf("readyz while draining = %d %q, want 503 draining", resp.StatusCode, body)
	}
}

func TestTargetsEndpoint(t *testing.T) {
	al, _ := fixture(t)
	_, ts := newTestServer(t, nil)

	resp, err := http.Get(ts.URL + "/v1/targets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/targets = %d", resp.StatusCode)
	}
	var out client.TargetsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.K != al.IndexOptions().K {
		t.Fatalf("K = %d, want %d", out.K, al.IndexOptions().K)
	}
	if out.Shard != nil {
		t.Fatalf("unsharded index reports shard meta %+v", out.Shard)
	}
	targets := al.Targets()
	if len(out.Targets) != len(targets) {
		t.Fatalf("%d targets on the wire, index holds %d", len(out.Targets), len(targets))
	}
	for i, ti := range out.Targets {
		if ti.Name != targets[i].Name || ti.Length != targets[i].Seq.Len() {
			t.Fatalf("target %d = %+v, want %s/%d", i, ti, targets[i].Name, targets[i].Seq.Len())
		}
	}
}
