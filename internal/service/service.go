// Package service implements merserved: an HTTP/JSON alignment service
// over resident aligners. In single-index mode the seed index is built or
// mapped exactly once (by the caller) and the service serves alignment
// traffic against it forever — the network face of the paper's build-once/
// serve-many design, shaped like the SNAP/MICA servers the ROADMAP points
// at: many small requests funneled onto one resident many-core engine. In
// catalog mode (Config.IndexDir) the service fronts a directory of .merx
// snapshots: N references served behind one listener, each memory-mapped
// lazily on first request, kept resident under a byte budget with LRU
// eviction, and hot-swapped with zero downtime when its snapshot file is
// atomically replaced on disk (internal/catalog owns that lifecycle).
//
// Single-index endpoints:
//
//	POST /v1/align        one batch in (JSON or FASTQ), results out
//	                      (JSON, or SAM with Accept: text/x-sam)
//	POST /v1/align/stream chunked results as they are computed
//	                      (NDJSON, or SAM with Accept: text/x-sam)
//	GET  /v1/stats        live counters, batcher observations, latency
//	GET  /healthz         200 while serving, 503 while draining
//	GET  /metrics         Prometheus text exposition
//
// Catalog endpoints (ref is the snapshot file name without .merx):
//
//	POST /v1/{ref}/align         as /v1/align, against one reference
//	POST /v1/{ref}/align/stream  as /v1/align/stream
//	GET  /v1/{ref}/stats         one reference's counters and latency
//	GET  /v1/refs                the servable references and their state
//	GET  /v1/stats               catalog-wide stats: lifecycle counters
//	                             plus every active reference's stats
//	GET  /healthz, /metrics      as above; metrics carry a ref label
//
// Each reference owns its dynamic micro-batcher (batcher.go): small
// requests coalesce per reference, requests of MaxBatch reads or more skip
// the queue and run directly with the request's own context. Responses are
// byte-identical to a local Align call over the same reads against the
// same snapshot. Accept-Encoding: gzip is honored on every response body.
package service

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/catalog"
	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

// SnapshotExt is the file extension a catalog directory entry must carry
// (re-exported from internal/catalog for the CLI and embedders).
const SnapshotExt = catalog.SnapshotExt

// Config shapes one Server. Exactly one of Aligner (single-index mode) and
// IndexDir (catalog mode) is required; everything else defaults.
type Config struct {
	// Aligner is the one resident index of single-index mode.
	Aligner *meraligner.Aligner

	// IndexDir selects catalog mode: every <ref>.merx snapshot in the
	// directory is served at /v1/<ref>/..., opened lazily on first request.
	IndexDir string

	// ResidentBudget bounds the total ResidentBytes of open catalog
	// indexes; least-recently-used references are evicted (their snapshots
	// stay warm in the page cache). <= 0 means unlimited. Catalog mode only.
	ResidentBudget int64

	// SwapPoll rate-limits the hot-swap freshness check: a reference's
	// snapshot file is re-stat'd at most once per SwapPoll. 0 means the 1s
	// default; negative disables hot-swap. Catalog mode only.
	SwapPoll time.Duration

	// MaxInflightPerRef caps concurrently-served align requests per
	// reference; excess requests are rejected with 429 + Retry-After before
	// any parsing, so one hot reference cannot monopolize the engine or the
	// admission queue of the others. <= 0 means unlimited.
	MaxInflightPerRef int

	Query meraligner.QueryOptions // CollectAlignments/CollectPerQuery are forced on

	// Micro-batcher knobs: the latency/throughput trade. Batching is
	// continuous — an idle engine dispatches immediately, and arrivals
	// coalesce while a call is in flight. MaxBatch caps reads per engine
	// call; MaxWait caps how long a queued request waits behind a busy
	// engine before an overlapping call dispatches anyway (zero means the
	// 2ms default; negative disables window-holding). MaxBatch 1 is the
	// no-coalescing ablation (one engine call per request) the service
	// benchmark measures against. In catalog mode each reference gets its
	// own batcher with these knobs.
	MaxBatch int           // default 256
	MaxWait  time.Duration // default 2ms; < 0 disables window-holding

	// Admission control: reads allowed in the queue (per reference) before
	// new requests are rejected with 429. Default 4*MaxBatch.
	QueueReads int

	// Workers is the engine pool size of coalesced calls (default: the
	// Aligner's build-time thread count in single-index mode, the host CPU
	// count in catalog mode).
	Workers int

	// RetryAfter is the backoff hint sent with 429s. Default 500ms.
	RetryAfter time.Duration

	// MinDeadline, when > 0, enables deadline admission: an align request
	// whose propagated X-Deadline-Ms budget is below it is rejected with
	// 503 instead of computing an answer the caller will have stopped
	// waiting for. Requests without the header are never deadline-rejected.
	MinDeadline time.Duration

	// MaxRequestBytes bounds a request body. Default 64 MiB.
	MaxRequestBytes int64

	// Version is reported in /v1/stats (ldflags-injected by cmd/merserved).
	Version string

	// Logger receives the service's structured request logs (per-request
	// debug lines, slow-request warnings). nil logs nothing.
	Logger *slog.Logger

	// SlowRequest, when > 0, logs the full span trace of any align
	// request slower than this at warn level (the -slow-request-ms flag).
	SlowRequest time.Duration

	// TraceCapacity bounds the /debug/requests ring of completed request
	// traces. <= 0 means telemetry.DefaultRingCapacity.
	TraceCapacity int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	switch {
	case c.MaxWait == 0:
		c.MaxWait = 2 * time.Millisecond
	case c.MaxWait < 0:
		c.MaxWait = 0 // explicit opt-out of window-holding
	}
	if c.QueueReads <= 0 {
		c.QueueReads = 4 * c.MaxBatch
	}
	if c.QueueReads < c.MaxBatch {
		// A queue smaller than MaxBatch would permanently 429 requests
		// sized between the two (too big to ever queue, too small for the
		// direct path) even on an idle server.
		c.QueueReads = c.MaxBatch
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 500 * time.Millisecond
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 64 << 20
	}
	if c.IndexDir != "" && c.SwapPoll == 0 {
		c.SwapPoll = time.Second
	}
	return c
}

// Server is the HTTP handler. Create with New, serve with net/http, stop
// with Drain (graceful) and Close (hard).
type Server struct {
	cfg  Config
	qopt meraligner.QueryOptions
	mux  *http.ServeMux

	// Exactly one of the two is set: single serves Config.Aligner through
	// the same tenant machinery catalog mode uses for each reference.
	single *tenant
	cat    *catalog.Catalog

	tmu     sync.Mutex // guards tenants (catalog mode)
	tenants map[string]*tenant

	logger *slog.Logger
	ring   *telemetry.Ring // completed request traces (/debug/requests)

	draining atomic.Bool
	baseCtx  context.Context
	cancel   context.CancelFunc
}

// tenant is the serving state of one reference: its micro-batcher, stats,
// inflight quota, and the Source resolving its current index. A tenant is
// permanent once created — it survives eviction and hot-swap of the index
// underneath (the catalog hands out a fresh pin per engine call).
type tenant struct {
	s   *Server
	ref string // "" in single-index mode
	src catalog.Source
	bat *batcher
	st  *serverStats

	inflight atomic.Int64 // align requests being served (quota)

	// Last-observed identity of the reference's index, refreshed on every
	// acquisition; stats report these even while the index is evicted.
	k             atomic.Int32
	distinctSeeds atomic.Int64
	totalLocs     atomic.Int64
	resident      atomic.Int64
}

// New builds a Server over cfg.Aligner or cfg.IndexDir. Indexes must
// already be built; New does no heavy work (catalog snapshots open lazily,
// on first request).
func New(cfg Config) (*Server, error) {
	if (cfg.Aligner == nil) == (cfg.IndexDir == "") {
		return nil, errors.New("service: exactly one of Config.Aligner and Config.IndexDir is required")
	}
	cfg = cfg.withDefaults()
	qopt := cfg.Query
	qopt.CollectAlignments = true // responses need the records
	qopt.CollectPerQuery = true   // stats need per-read latency
	s := &Server{cfg: cfg, qopt: qopt}
	s.logger = cfg.Logger
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	s.ring = telemetry.NewRing(cfg.TraceCapacity)
	s.baseCtx, s.cancel = context.WithCancel(context.Background())

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Aligner != nil {
		if s.cfg.Workers <= 0 {
			s.cfg.Workers = cfg.Aligner.Threads()
		}
		t := s.newTenant("", catalog.Static(cfg.Aligner))
		t.noteIndex(cfg.Aligner)
		s.single = t
		mux.HandleFunc("POST /v1/align", s.traced(s.singleHandler((*tenant).handleAlign)))
		mux.HandleFunc("POST /v1/align/stream", s.traced(s.singleHandler((*tenant).handleAlignStream)))
		mux.HandleFunc("GET /v1/targets", s.handleTargets)
	} else {
		if s.cfg.Workers <= 0 {
			s.cfg.Workers = runtime.NumCPU()
		}
		cat, err := catalog.New(catalog.Options{
			Dir:      cfg.IndexDir,
			Budget:   cfg.ResidentBudget,
			Threads:  s.cfg.Workers,
			SwapPoll: s.cfg.SwapPoll,
		})
		if err != nil {
			return nil, err
		}
		s.cat = cat
		s.tenants = make(map[string]*tenant)
		mux.HandleFunc("POST /v1/{ref}/align", s.traced(s.refHandler((*tenant).handleAlign)))
		mux.HandleFunc("POST /v1/{ref}/align/stream", s.traced(s.refHandler((*tenant).handleAlignStream)))
		mux.HandleFunc("GET /v1/{ref}/stats", s.handleRefStats)
		mux.HandleFunc("GET /v1/{ref}/targets", s.handleRefTargets)
		mux.HandleFunc("GET /v1/refs", s.handleRefs)
	}
	s.mux = mux
	return s, nil
}

// newTenant wires one reference's batcher and stats.
func (s *Server) newTenant(ref string, src catalog.Source) *tenant {
	t := &tenant{s: s, ref: ref, src: src, st: newServerStats()}
	t.bat = newBatcher(s.baseCtx, t.alignBatch, s.cfg.MaxBatch, s.cfg.MaxWait, s.cfg.QueueReads, t.st)
	return t
}

// noteIndex records the index identity behind this tenant for stats.
func (t *tenant) noteIndex(al *meraligner.Aligner) {
	t.k.Store(int32(al.IndexOptions().K))
	ix := al.IndexStats()
	t.distinctSeeds.Store(int64(ix.DistinctSeeds))
	t.totalLocs.Store(int64(ix.TotalLocs))
	t.resident.Store(al.ResidentBytes())
}

// tenantFor returns ref's permanent tenant, creating it on first use. The
// caller must have resolved ref against the catalog first (unknown refs
// must never leave a tenant — and its dispatcher goroutine — behind).
// Creation is refused once draining so Drain's tenant snapshot is complete.
func (s *Server) tenantFor(ref string) (*tenant, error) {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if s.draining.Load() {
		return nil, ErrDraining
	}
	t, ok := s.tenants[ref]
	if !ok {
		t = s.newTenant(ref, s.cat.Ref(ref))
		s.tenants[ref] = t
	}
	return t, nil
}

// allTenants snapshots the serving tenants (both modes).
func (s *Server) allTenants() []*tenant {
	if s.single != nil {
		return []*tenant{s.single}
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	out := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ref < out[j].ref })
	return out
}

// singleHandler wraps a tenant handler for single-index mode: draining
// check and inflight quota, then the handler.
func (s *Server) singleHandler(h func(*tenant, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.writeError(w, r, http.StatusServiceUnavailable, &client.ErrorResponse{Error: "draining"})
			return
		}
		s.dispatch(s.single, h, w, r)
	}
}

// refHandler wraps a tenant handler for catalog mode: it resolves {ref}
// against the catalog before any per-ref state exists (unknown references
// 404 without leaving a tenant behind; the acquisition also performs the
// lazy open and hot-swap check), refreshes the tenant's index identity,
// then applies the quota and runs the handler.
func (s *Server) refHandler(h func(*tenant, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.writeError(w, r, http.StatusServiceUnavailable, &client.ErrorResponse{Error: "draining"})
			return
		}
		ref := r.PathValue("ref")
		hdl, err := s.cat.Acquire(ref)
		if err != nil {
			s.acquireError(w, r, err)
			return
		}
		t, err := s.tenantFor(ref)
		if err != nil {
			hdl.Release()
			s.writeError(w, r, http.StatusServiceUnavailable, &client.ErrorResponse{Error: "draining"})
			return
		}
		t.noteIndex(hdl.Aligner())
		hdl.Release()
		s.dispatch(t, h, w, r)
	}
}

// TraceRing exposes the ring of completed request traces, for mounting
// at /debug/requests on a private debug listener (telemetry.NewDebugMux)
// and for tests.
func (s *Server) TraceRing() *telemetry.Ring { return s.ring }

// traced wraps an align handler with request-scoped tracing: extract or
// mint the request's span context, echo X-Request-Id immediately (error
// responses carry it too), thread the trace recorder through the
// request context, then record the completed trace in the debug ring
// and log it — at warn level with the full span trace when it exceeded
// Config.SlowRequest. Spans are recorded per request, never per read,
// so the engine's allocation-free query path is untouched.
func (s *Server) traced(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sc, _ := telemetry.Extract(r.Header)
		tr := telemetry.NewTrace(sc, r.URL.Path)
		w.Header().Set(telemetry.HeaderRequestID, sc.RequestID())
		sw := &telemetry.StatusRecorder{ResponseWriter: w, Code: http.StatusOK}
		aborted := true
		// The deferred finish also runs when a streaming handler aborts
		// the connection (panic(http.ErrAbortHandler)); the panic
		// propagates past it untouched.
		defer func() { s.finishTrace(tr, sw, aborted) }()
		h(sw, r.WithContext(telemetry.WithTrace(r.Context(), tr)))
		aborted = false
	}
}

// finishTrace seals one request's trace into the debug ring and emits
// its structured log line.
func (s *Server) finishTrace(tr *telemetry.Trace, sw *telemetry.StatusRecorder, aborted bool) {
	rt := tr.Finish(sw.Code)
	s.ring.Add(rt)
	attrs := []any{
		"request_id", rt.RequestID,
		"path", rt.Path,
		"status", rt.Status,
		"reads", rt.Reads,
		"duration_ms", float64(rt.DurationUs) / 1e3,
	}
	if rt.Ref != "" {
		attrs = append(attrs, "ref", rt.Ref)
	}
	if aborted {
		attrs = append(attrs, "aborted", true)
	}
	if s.cfg.SlowRequest > 0 && time.Duration(rt.DurationUs)*time.Microsecond >= s.cfg.SlowRequest {
		s.logger.Warn("slow request", append(attrs, "spans", rt.SpanSummary())...)
		return
	}
	s.logger.Debug("request", attrs...)
}

// dispatch applies the per-reference inflight quota around one handler.
func (s *Server) dispatch(t *tenant, h func(*tenant, http.ResponseWriter, *http.Request), w http.ResponseWriter, r *http.Request) {
	if !t.enterInflight() {
		t.st.rejected.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		s.writeError(w, r, http.StatusTooManyRequests, &client.ErrorResponse{Error: "overloaded: per-reference inflight limit reached"})
		return
	}
	defer t.exitInflight()
	h(t, w, r)
}

// enterInflight claims one quota slot; false means the reference is at its
// MaxInflightPerRef limit.
func (t *tenant) enterInflight() bool {
	max := t.s.cfg.MaxInflightPerRef
	if max <= 0 {
		return true
	}
	if t.inflight.Add(1) > int64(max) {
		t.inflight.Add(-1)
		return false
	}
	return true
}

func (t *tenant) exitInflight() {
	if t.s.cfg.MaxInflightPerRef > 0 {
		t.inflight.Add(-1)
	}
}

// acquireError maps a catalog acquisition failure to its HTTP status.
func (s *Server) acquireError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, catalog.ErrUnknownRef):
		s.writeError(w, r, http.StatusNotFound, &client.ErrorResponse{Error: err.Error()})
	case errors.Is(err, catalog.ErrCatalogClosed):
		s.writeError(w, r, http.StatusServiceUnavailable, &client.ErrorResponse{Error: "draining"})
	default:
		// A present but unreadable snapshot (corrupt, incompatible): the
		// typed merx error names the failing section.
		s.writeError(w, r, http.StatusInternalServerError, &client.ErrorResponse{Error: err.Error()})
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Draining reports whether Drain or Close has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully stops the service: admission closes (healthz and new
// align requests answer 503), queued requests still execute, in-flight
// engine calls finish; in catalog mode every reference's batcher drains
// concurrently and the catalog closes last, so no index unmaps before its
// final responses render. When ctx expires first, in-flight work is
// aborted via the base context and ctx's error is returned.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	ts := s.allTenants()
	errs := make(chan error, len(ts))
	var wg sync.WaitGroup
	for _, t := range ts {
		wg.Add(1)
		go func(t *tenant) {
			defer wg.Done()
			errs <- t.bat.drain(ctx)
		}(t)
	}
	wg.Wait()
	close(errs)
	var failed error
	for err := range errs {
		if err != nil && failed == nil {
			failed = err
		}
	}
	if failed != nil {
		s.cancel() // abort in-flight engine calls
	}
	if s.cat != nil {
		s.cat.Close()
	}
	return failed
}

// Close hard-stops: cancels every in-flight engine call, stops the
// batchers' dispatchers (queued requests fail fast against the dead base
// context), and closes the catalog. Use after a failed Drain or for tests.
func (s *Server) Close() {
	s.draining.Store(true)
	s.cancel()
	for _, t := range s.allTenants() {
		t.bat.closeNow()
	}
	if s.cat != nil {
		s.cat.Close()
	}
}

// alignBatch is the batcher's engine call: pin the reference's current
// index, align, and hand the pin to the engineCall — it is released only
// when every member response (and the dispatcher) has finished with the
// Results and the mapped target bytes SAM rendering reads.
func (t *tenant) alignBatch(ctx context.Context, reads []meraligner.Seq) (*engineCall, error) {
	h, err := t.src.Acquire()
	if err != nil {
		return nil, err
	}
	al := h.Aligner()
	res, err := al.AlignWorkers(ctx, t.s.cfg.Workers, reads, t.s.qopt)
	if err != nil {
		h.Release()
		return nil, err
	}
	t.st.observePerQuery(res.PerQuery)
	return newEngineCall(res, al.Targets(), h.Release), nil
}

// ---- request parsing ----

// parseReads decodes the request body under this server's byte bound.
func (s *Server) parseReads(w http.ResponseWriter, r *http.Request) ([]meraligner.Seq, error) {
	return ParseReads(w, r, s.cfg.MaxRequestBytes)
}

// ParseReads decodes an align request body into native reads: a JSON
// AlignRequest when the content type says JSON, a FASTQ document otherwise
// (gzip sniffed transparently, matching the CLI's file handling). Wire
// sequences are normalized exactly as this service does (N bases replaced
// with A, bases packed), so any front end using this — the scatter/gather
// router included — hands the engine, and re-serializes to other nodes,
// byte-identical reads. Bodies over maxBytes surface as *http.MaxBytesError
// (ParseStatus maps them to 413).
func ParseReads(w http.ResponseWriter, r *http.Request, maxBytes int64) ([]meraligner.Seq, error) {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	ct := r.Header.Get("Content-Type")
	if strings.Contains(ct, "json") {
		var req client.AlignRequest
		dec := json.NewDecoder(body)
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("decoding JSON request: %w", err)
		}
		reads := make([]meraligner.Seq, len(req.Reads))
		for i, wr := range req.Reads {
			seq, err := packWire(wr.Seq)
			if err != nil {
				return nil, fmt.Errorf("read %q: %w", wr.Name, err)
			}
			reads[i] = meraligner.Seq{Name: wr.Name, Seq: seq, Qual: []byte(wr.Qual)}
		}
		return reads, nil
	}
	br, wasGzip, err := seqio.MaybeDecompress(body)
	if err != nil {
		return nil, fmt.Errorf("decompressing request body: %w", err)
	}
	var rd io.Reader = br
	if wasGzip {
		// MaxBytesReader bounded only the compressed bytes; cap the
		// decompressed stream too, or a small gzip bomb expands unbounded.
		// 8x leaves room for FASTQ's honest ~4x gzip ratio.
		rd = &capReader{r: br, n: 8 * maxBytes}
	}
	reads, err := seqio.ReadFastq(rd, seqio.ParseOptions{ReplaceN: true})
	if err != nil {
		return nil, fmt.Errorf("parsing FASTQ request body: %w", err)
	}
	return reads, nil
}

// errDecompressedTooLarge marks a gzipped body whose expansion exceeded the
// decompressed-size cap; ParseStatus maps it to 413 like its compressed
// counterpart.
var errDecompressedTooLarge = errors.New("decompressed request body too large")

// capReader fails (rather than silently truncating) once n bytes have been
// read — the decompressed-stream counterpart of http.MaxBytesReader.
type capReader struct {
	r io.Reader
	n int64
}

func (c *capReader) Read(p []byte) (int, error) {
	if c.n <= 0 {
		return 0, errDecompressedTooLarge
	}
	if int64(len(p)) > c.n {
		p = p[:c.n]
	}
	m, err := c.r.Read(p)
	c.n -= int64(m)
	return m, err
}

// ParseStatus maps a ParseReads failure to its HTTP status: 413 when the
// body exceeded the byte bound compressed or its decompressed cap (split
// the batch and retry), 400 for malformed input (don't retry).
func ParseStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) || errors.Is(err, errDecompressedTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// packWire packs a wire sequence, replacing ambiguous N bases with A (the
// pipeline's convention for every other input path).
func packWire(seq string) (dna.Packed, error) {
	b := []byte(seq)
	for i, c := range b {
		if c == 'N' || c == 'n' {
			b[i] = 'A'
		}
	}
	return dna.PackBytes(b)
}

// admit validates a parsed batch: non-empty, and every read long enough to
// carry a seed. Too-short reads are a client error (HTTP 400) carrying the
// typed per-read detail — the service-side face of the engine's
// QueryTooShort status (same rule: length < K). K is the tenant's
// last-observed seed length; the engine itself re-checks, so a hot-swap
// changing K mid-request degrades to the engine's per-read status rather
// than a wrong rejection.
func (t *tenant) admit(reads []meraligner.Seq) *client.ErrorResponse {
	if len(reads) == 0 {
		return &client.ErrorResponse{Error: "empty request: no reads"}
	}
	k := int(t.k.Load())
	var short []string
	for i := range reads {
		if reads[i].Seq.Len() < k {
			short = append(short, reads[i].Name)
		}
	}
	if short != nil {
		t.st.tooShort.Add(int64(len(short)))
		return &client.ErrorResponse{
			Error:    fmt.Sprintf("%d read(s) shorter than the seed length K=%d cannot be aligned", len(short), k),
			TooShort: short,
		}
	}
	return nil
}

// ---- /v1/align and /v1/{ref}/align ----

func (t *tenant) handleAlign(w http.ResponseWriter, r *http.Request) {
	s := t.s
	tr := telemetry.TraceFrom(r.Context())
	if tr != nil {
		tr.SetRef(t.ref)
	}
	admitStart := time.Now()
	if budget, ok := client.DeadlineFromHeader(r.Header); ok {
		// Deadline admission: refuse work the caller will have abandoned
		// before it finishes, and bound accepted work by the propagated
		// budget so a doomed engine call cannot outlive its caller.
		if s.cfg.MinDeadline > 0 && budget < s.cfg.MinDeadline {
			t.st.deadlineRejected.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
			s.writeError(w, r, http.StatusServiceUnavailable, &client.ErrorResponse{
				Error: fmt.Sprintf("deadline budget %s below the %s admission floor: rejecting doomed work", budget, s.cfg.MinDeadline)})
			return
		}
		if budget > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), budget)
			defer cancel()
			r = r.WithContext(ctx)
		}
	}
	reads, err := s.parseReads(w, r)
	if err != nil {
		s.writeError(w, r, ParseStatus(err), &client.ErrorResponse{Error: err.Error()})
		return
	}
	if er := t.admit(reads); er != nil {
		s.writeError(w, r, http.StatusBadRequest, er)
		return
	}
	if tr != nil {
		tr.AddReads(len(reads))
		tr.Add("admission", admitStart, time.Since(admitStart), func(sp *telemetry.Span) { sp.Reads = len(reads) })
	}
	win, err := t.serve(r.Context(), reads)
	if err != nil {
		t.engineError(w, r, err)
		return
	}
	defer win.finish() // response rendered: the index pin may drop
	win.record(tr)

	render := time.Now()
	if wantsSAM(r) {
		s.writeSAM(w, r, win)
	} else {
		s.writeJSON(w, r, http.StatusOK, buildResponse(win))
	}
	if tr != nil {
		tr.Add("render", render, time.Since(render), nil)
	}
}

// serve is the request-serving core shared by the HTTP handler and
// AlignBatched: big requests run directly with the caller's context (no
// coalescing to gain; a disconnect cancels the engine call itself), small
// requests go through the micro-batcher. Request accounting and latency
// observation happen here so both faces report identically. The returned
// window holds a reference on its engine call; the caller must finish() it
// after rendering.
func (t *tenant) serve(ctx context.Context, reads []meraligner.Seq) (*window, error) {
	start := time.Now()
	var win *window
	if len(reads) >= t.s.cfg.MaxBatch {
		call, err := t.alignDirect(ctx, reads)
		if err != nil {
			return nil, err
		}
		win = &window{call: call, reads: reads, lo: 0, hi: len(reads),
			enq: start, disp: start, done: time.Now(), requests: 1}
	} else {
		var err error
		if win, err = t.bat.submit(ctx, reads); err != nil {
			return nil, err
		}
	}
	// Counted only on success: requests/reads are served work, not offered
	// load (rejections are the separate `rejected` counter).
	t.st.requests.Add(1)
	t.st.reads.Add(int64(len(reads)))
	t.st.reqLatency.Observe(time.Since(start).Nanoseconds())
	return win, nil
}

// AlignBatched submits one request's reads through the single-index
// service exactly as POST /v1/align does — micro-batching, admission
// control, stats — but in-process, with no HTTP in the path. Embedders and
// the service benchmark use it to measure or reuse the serving core
// directly. Errors: ErrOverloaded (the 429 case), ErrDraining (the 503
// case), or the caller's context error. Catalog-mode servers use
// AlignBatchedRef.
func (s *Server) AlignBatched(ctx context.Context, reads []meraligner.Seq) (*meraligner.Results, error) {
	if s.single == nil {
		return nil, errors.New("service: AlignBatched needs single-index mode; use AlignBatchedRef")
	}
	return s.single.alignBatched(ctx, reads)
}

// AlignBatchedRef is AlignBatched against one reference of a catalog-mode
// server: the in-process face of POST /v1/{ref}/align. Unknown references
// fail with an error matching catalog.ErrUnknownRef.
func (s *Server) AlignBatchedRef(ctx context.Context, ref string, reads []meraligner.Seq) (*meraligner.Results, error) {
	if s.single != nil {
		if ref != "" {
			return nil, errors.New("service: single-index mode serves no named references")
		}
		return s.single.alignBatched(ctx, reads)
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	hdl, err := s.cat.Acquire(ref)
	if err != nil {
		return nil, err
	}
	t, err := s.tenantFor(ref)
	if err != nil {
		hdl.Release()
		return nil, err
	}
	t.noteIndex(hdl.Aligner())
	hdl.Release()
	return t.alignBatched(ctx, reads)
}

// alignBatched serves one in-process request and rebases its share of the
// coalesced Results into a standalone, heap-only value.
func (t *tenant) alignBatched(ctx context.Context, reads []meraligner.Seq) (*meraligner.Results, error) {
	if t.s.draining.Load() {
		return nil, ErrDraining
	}
	win, err := t.serve(ctx, reads)
	if err != nil {
		return nil, err
	}
	res := win.slice()
	win.finish()
	return res, nil
}

// alignDirect runs one uncoalesced engine call and counts it as a batch of
// one request (so stats stay comparable across paths). It registers with
// the batcher's inflight count, so queued small requests coalesce behind
// it and drain waits for it.
func (t *tenant) alignDirect(ctx context.Context, reads []meraligner.Seq) (*engineCall, error) {
	t.bat.enterDirect()
	defer t.bat.exitDirect()
	call, err := t.alignBatch(ctx, reads)
	if err == nil {
		t.st.observeBatch(1, len(reads))
	}
	return call, err
}

// engineError maps batcher/engine failures onto HTTP statuses.
func (t *tenant) engineError(w http.ResponseWriter, r *http.Request, err error) {
	s := t.s
	switch {
	case errors.Is(err, ErrOverloaded):
		t.st.rejected.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		s.writeError(w, r, http.StatusTooManyRequests, &client.ErrorResponse{Error: "overloaded: admission queue full"})
	case errors.Is(err, ErrDraining), errors.Is(err, catalog.ErrCatalogClosed):
		s.writeError(w, r, http.StatusServiceUnavailable, &client.ErrorResponse{Error: "draining"})
	case errors.Is(err, catalog.ErrUnknownRef):
		// The snapshot vanished between admission and the engine call.
		s.writeError(w, r, http.StatusNotFound, &client.ErrorResponse{Error: err.Error()})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Client is gone; nothing useful to write. net/http drops the
		// connection. (Counted by the batcher when it noticed first.)
	default:
		s.writeError(w, r, http.StatusInternalServerError, &client.ErrorResponse{Error: err.Error()})
	}
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// rounded up).
func retryAfterSeconds(d time.Duration) string {
	return strconv.Itoa(int((d + time.Second - 1) / time.Second))
}

// buildResponse renders a window as the JSON wire response, naming targets
// from the engine call's own pinned index (hot-swap safe). Each read's
// alignments are canonically ordered and carry a server-computed NM, so the
// wire document is fully self-contained: a scatter/gather router can merge
// shard responses and render SAM records byte-identical to this node's own
// without ever seeing the target bases.
func buildResponse(win *window) *client.AlignResponse {
	res := win.slice()
	reads := win.reads[win.lo:win.hi]
	targets := win.call.targets
	out := &client.AlignResponse{Reads: make([]client.ReadResult, len(reads))}
	for i := range reads {
		out.Reads[i] = client.ReadResult{Name: reads[i].Name, Status: client.StatusUnmapped}
	}
	for _, a := range res.Alignments {
		rr := &out.Reads[a.Query]
		rr.Status = client.StatusOK
		strand := "+"
		if a.RC {
			strand = "-"
		}
		rr.Alignments = append(rr.Alignments, client.Alignment{
			Target: targets[a.Target].Name,
			Strand: strand,
			Score:  int(a.Score),
			QStart: int(a.QStart), QEnd: int(a.QEnd),
			TStart: int(a.TStart), TEnd: int(a.TEnd),
			Cigar: a.Cigar,
			Exact: a.Exact,
			NM:    meraligner.AlignmentNM(reads[a.Query], targets[a.Target], a),
		})
	}
	for i := range out.Reads {
		client.CanonicalizeAlignments(out.Reads[i].Alignments)
	}
	for _, qi := range res.TooShort {
		out.Reads[qi].Status = client.StatusTooShort
	}
	return out
}

// writeSAM streams a window's records as a SAM document straight from the
// shared coalesced Results (SAMStream.WriteRange) — no per-request slicing.
// The header and the records both come from the engine call's pinned
// targets, whose mapped sequence bytes stay valid until win.finish().
func (s *Server) writeSAM(w http.ResponseWriter, r *http.Request, win *window) {
	w.Header().Set("Content-Type", "text/x-sam")
	body, finish := s.maybeGzip(w, r)
	stream, err := meraligner.NewSAMStream(body, win.call.targets)
	if err == nil {
		err = stream.WriteRange(win.call.res, win.reads, win.lo, win.hi)
	}
	if err == nil {
		err = stream.Flush()
	}
	if err == nil {
		err = finish()
	}
	_ = err // headers are gone; nothing more to report to the client
}

// ---- /v1/align/stream and /v1/{ref}/align/stream ----

// handleAlignStream aligns the batch in MaxBatch-read chunks, flushing each
// chunk's results as soon as the engine returns them: NDJSON ReadResult
// lines, or an incrementally-written SAM document under Accept: text/x-sam.
// The request's own context is propagated into every chunk's engine call,
// so a disconnect cancels the remaining work.
func (t *tenant) handleAlignStream(w http.ResponseWriter, r *http.Request) {
	s := t.s
	tr := telemetry.TraceFrom(r.Context())
	if tr != nil {
		tr.SetRef(t.ref)
	}
	admitStart := time.Now()
	reads, err := s.parseReads(w, r)
	if err != nil {
		s.writeError(w, r, ParseStatus(err), &client.ErrorResponse{Error: err.Error()})
		return
	}
	if er := t.admit(reads); er != nil {
		s.writeError(w, r, http.StatusBadRequest, er)
		return
	}
	if tr != nil {
		tr.AddReads(len(reads))
		tr.Add("admission", admitStart, time.Since(admitStart), func(sp *telemetry.Span) { sp.Reads = len(reads) })
	}
	start := time.Now()

	sam := wantsSAM(r)
	if sam {
		w.Header().Set("Content-Type", "text/x-sam")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	body, finish := s.maybeGzip(w, r)
	flush := func() {
		if gz, ok := body.(*gzip.Writer); ok {
			gz.Flush()
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}

	// The SAM header is deferred until the first chunk succeeds, so a
	// first-chunk admission failure can still answer with a real status.
	var stream *meraligner.SAMStream
	var streamTargets []meraligner.Seq // the header's target set
	enc := json.NewEncoder(body)
	// Chunks ride the micro-batcher like any other request, so streams are
	// subject to the same admission bound (and partial chunks coalesce with
	// other traffic). One chunk is in flight per stream at a time — the
	// stream's own backpressure.
	chunkSize := min(s.cfg.MaxBatch, s.cfg.QueueReads)
	wrote := false
	for lo := 0; lo < len(reads); lo += chunkSize {
		hi := min(lo+chunkSize, len(reads))
		chunk := reads[lo:hi]
		win, aerr := t.bat.submit(r.Context(), chunk)
		if aerr != nil {
			if !wrote {
				// Nothing sent yet: a real status can still go out.
				t.engineError(w, r, aerr)
				return
			}
			if errors.Is(aerr, ErrOverloaded) {
				t.st.rejected.Add(1)
			}
			// Mid-stream with the client still healthy: a plain return
			// would end the chunked body cleanly and the truncation would
			// be invisible. Abort the connection so the client sees a
			// transport error, not a short success.
			panic(http.ErrAbortHandler)
		}
		t.st.reads.Add(int64(len(chunk)))
		win.record(tr)            // per-chunk batch_wait + engine spans (span cap applies)
		if werr := func() error { // win.finish() per chunk, panic-safe
			defer win.finish()
			if sam {
				if stream == nil {
					streamTargets = win.call.targets
					if stream, err = meraligner.NewSAMStream(body, streamTargets); err != nil {
						return err
					}
				} else if !sameTargets(streamTargets, win.call.targets) {
					// A hot-swap replaced the reference mid-stream: the SAM
					// header already written names the old target set, and
					// this chunk's records index the new one. Mixing them
					// would be silent corruption — abort the connection so
					// the client retries against the swapped index.
					panic(http.ErrAbortHandler)
				}
				if err := stream.WriteRange(win.call.res, win.reads, win.lo, win.hi); err != nil {
					return err
				}
				return stream.Flush()
			}
			for _, rr := range buildResponse(win).Reads {
				if err := enc.Encode(rr); err != nil {
					return err
				}
			}
			return nil
		}(); werr != nil {
			return
		}
		wrote = true
		flush()
	}
	t.st.requests.Add(1) // served in full (chunk reads counted as they went)
	t.st.reqLatency.Observe(time.Since(start).Nanoseconds())
	_ = finish()
}

// sameTargets reports whether two target sets are the same backing slice
// (one index instance's Targets() is stable across calls, so identity is
// the cheap and sufficient check).
func sameTargets(a, b []meraligner.Seq) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// ---- observability endpoints ----

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if s.single != nil {
		s.writeJSON(w, r, http.StatusOK, s.Snapshot())
		return
	}
	s.writeJSON(w, r, http.StatusOK, s.CatalogSnapshot())
}

// handleRefStats serves one reference's stats. A reference that exists but
// has never been queried reports zero counters (no tenant is created).
func (s *Server) handleRefStats(w http.ResponseWriter, r *http.Request) {
	ref := r.PathValue("ref")
	s.tmu.Lock()
	t := s.tenants[ref]
	s.tmu.Unlock()
	if t != nil {
		s.writeJSON(w, r, http.StatusOK, t.snapshotStats())
		return
	}
	refs, err := s.cat.Refs()
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, &client.ErrorResponse{Error: err.Error()})
		return
	}
	for _, ri := range refs {
		if ri.Ref == ref {
			st := client.Stats{Ref: ref, Version: s.cfg.Version, Draining: s.draining.Load(),
				MaxBatch: s.cfg.MaxBatch, MaxWaitMs: float64(s.cfg.MaxWait) / float64(time.Millisecond)}
			s.writeJSON(w, r, http.StatusOK, st)
			return
		}
	}
	s.writeError(w, r, http.StatusNotFound, &client.ErrorResponse{Error: (&catalog.UnknownRefError{Ref: ref}).Error()})
}

// handleRefs lists the servable references.
func (s *Server) handleRefs(w http.ResponseWriter, r *http.Request) {
	refs, err := s.cat.Refs()
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, &client.ErrorResponse{Error: err.Error()})
		return
	}
	out := make([]client.RefInfo, len(refs))
	for i, ri := range refs {
		out[i] = client.RefInfo{Ref: ri.Ref, Open: ri.Open, ResidentBytes: ri.ResidentBytes}
	}
	s.writeJSON(w, r, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	body, finish := s.maybeGzip(w, r)
	var cat *client.CatalogCounters
	if s.cat != nil {
		c := s.catalogCounters()
		cat = &c
	}
	refs := make([]refMetrics, 0, 1)
	for _, t := range s.allTenants() {
		refs = append(refs, refMetrics{
			ref:   t.ref,
			st:    t.snapshotStats(),
			req:   t.st.reqLatency.Snapshot(),
			align: t.st.alignRead.Snapshot(),
		})
	}
	writeMetrics(body, refs, cat)
	_ = finish()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ok\n")
}

// handleReadyz is the readiness probe: 200 once the service can serve
// traffic, 503 while it cannot (draining — and, in cmd/merserved, the whole
// index build/open window before the real handler is installed answers 503
// "warming" from the warming handler that fronts this server). Routers and
// orchestrators gate traffic on this; /healthz stays the liveness probe.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ready\n")
}

// TargetsOf renders one resident index's /v1/targets document: every target
// name and length in @SQ order, the seed length, and the shard identity of
// a shard snapshot. Exported for the scatter/gather router's loopback and
// test paths.
func TargetsOf(al *meraligner.Aligner) *client.TargetsResponse {
	targets := al.Targets()
	out := &client.TargetsResponse{
		K:       al.IndexOptions().K,
		Targets: make([]client.TargetInfo, len(targets)),
	}
	for i, t := range targets {
		out.Targets[i] = client.TargetInfo{Name: t.Name, Length: t.Seq.Len()}
	}
	if si := al.ShardInfo(); si != nil {
		out.Shard = &client.ShardMeta{ID: si.ID, Count: si.Count, TargetBase: si.TargetBase, FragmentBase: si.FragmentBase}
	}
	return out
}

// handleTargets serves the single-index reference catalog (GET /v1/targets):
// the material a router needs to build the global SAM header and run
// admission checks without holding any reference bases.
func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, TargetsOf(s.cfg.Aligner))
}

// handleRefTargets is handleTargets for one reference of a catalog server
// (GET /v1/{ref}/targets). The acquisition pins the index only while the
// response is built — names and lengths are materialized, not aliased.
func (s *Server) handleRefTargets(w http.ResponseWriter, r *http.Request) {
	hdl, err := s.cat.Acquire(r.PathValue("ref"))
	if err != nil {
		s.acquireError(w, r, err)
		return
	}
	resp := TargetsOf(hdl.Aligner())
	hdl.Release()
	s.writeJSON(w, r, http.StatusOK, resp)
}

// snapshotStats renders one tenant's wire Stats.
func (t *tenant) snapshotStats() client.Stats {
	s := t.s
	st := t.st.snapshot()
	st.Ref = t.ref
	st.Version = s.cfg.Version
	st.Draining = s.draining.Load()
	st.QueueReads = int64(t.bat.queuedReads())
	st.K = int(t.k.Load())
	st.DistinctSeeds = t.distinctSeeds.Load()
	st.TotalLocs = t.totalLocs.Load()
	st.ResidentBytes = t.resident.Load()
	st.MaxBatch = s.cfg.MaxBatch
	st.MaxWaitMs = float64(s.cfg.MaxWait) / float64(time.Millisecond)
	return st
}

// Snapshot returns the current wire Stats, also available in-process for
// embedders and benchmarks. In single-index mode this is the /v1/stats
// body. In catalog mode it is the counter sum across references (latency
// quantiles are per-reference; see CatalogSnapshot).
func (s *Server) Snapshot() client.Stats {
	if s.single != nil {
		return s.single.snapshotStats()
	}
	agg := client.Stats{Version: s.cfg.Version, Draining: s.draining.Load(),
		MaxBatch: s.cfg.MaxBatch, MaxWaitMs: float64(s.cfg.MaxWait) / float64(time.Millisecond)}
	for _, t := range s.allTenants() {
		st := t.snapshotStats()
		agg.Requests += st.Requests
		agg.Rejected += st.Rejected
		agg.Canceled += st.Canceled
		agg.Reads += st.Reads
		agg.TooShort += st.TooShort
		agg.Batches += st.Batches
		agg.BatchedReads += st.BatchedReads
		agg.CoalescedBatches += st.CoalescedBatches
		agg.QueueReads += st.QueueReads
		if st.MaxBatchReads > agg.MaxBatchReads {
			agg.MaxBatchReads = st.MaxBatchReads
		}
		if st.UptimeSeconds > agg.UptimeSeconds {
			agg.UptimeSeconds = st.UptimeSeconds
		}
	}
	if agg.Batches > 0 {
		agg.MeanBatchReads = float64(agg.BatchedReads) / float64(agg.Batches)
	}
	return agg
}

// catalogCounters maps the catalog's lifecycle stats to the wire type.
func (s *Server) catalogCounters() client.CatalogCounters {
	cs := s.cat.Stats()
	return client.CatalogCounters{
		OpenRefs:       cs.OpenRefs,
		ResidentBytes:  cs.ResidentBytes,
		BudgetBytes:    cs.Budget,
		Opens:          cs.Opens,
		Evictions:      cs.Evictions,
		HotSwaps:       cs.HotSwaps,
		UncachedServes: cs.Uncached,
	}
}

// CatalogSnapshot returns the catalog-wide stats document (the /v1/stats
// body of a catalog-mode server): lifecycle counters plus one Stats per
// active reference. Panics-free on single-index servers: the catalog
// section is zero and Refs holds the single tenant.
func (s *Server) CatalogSnapshot() client.CatalogStats {
	out := client.CatalogStats{Version: s.cfg.Version, Draining: s.draining.Load()}
	if s.cat != nil {
		out.Catalog = s.catalogCounters()
	}
	for _, t := range s.allTenants() {
		out.Refs = append(out.Refs, t.snapshotStats())
	}
	return out
}

// ---- response plumbing ----

// maybeGzip wraps the response in gzip when the client accepts it. finish
// closes the gzip stream (a no-op otherwise); call it once after the last
// body write.
func (s *Server) maybeGzip(w http.ResponseWriter, r *http.Request) (io.Writer, func() error) {
	if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		return w, func() error { return nil }
	}
	w.Header().Set("Content-Encoding", "gzip")
	w.Header().Add("Vary", "Accept-Encoding")
	gz := gzip.NewWriter(w)
	return gz, gz.Close
}

func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	body, finish := s.maybeGzip(w, r)
	if code != http.StatusOK {
		w.WriteHeader(code)
	}
	_ = json.NewEncoder(body).Encode(v)
	_ = finish()
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, code int, er *client.ErrorResponse) {
	// Error payloads echo the request ID alongside the X-Request-Id
	// header, so a failure pasted into a bug report still names its trace.
	if tr := telemetry.TraceFrom(r.Context()); tr != nil && er.RequestID == "" {
		er.RequestID = tr.RequestID()
	}
	s.writeJSON(w, r, code, er)
}

// wantsSAM reports whether the request asked for SAM output.
func wantsSAM(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "sam")
}
