// Package service implements merserved: an HTTP/JSON alignment service
// over one resident Aligner. The seed index is built exactly once (by the
// caller, via meraligner.Build); the service then serves alignment traffic
// against it forever — the network face of the paper's build-once/
// serve-many design, shaped like the SNAP/MICA servers the ROADMAP points
// at: many small requests funneled onto one resident many-core engine.
//
// Endpoints:
//
//	POST /v1/align        one batch in (JSON or FASTQ), results out
//	                      (JSON, or SAM with Accept: text/x-sam)
//	POST /v1/align/stream chunked results as they are computed
//	                      (NDJSON, or SAM with Accept: text/x-sam)
//	GET  /v1/stats        live counters, batcher observations, latency
//	GET  /healthz         200 while serving, 503 while draining
//	GET  /metrics         Prometheus text exposition
//
// Small requests are coalesced by the dynamic micro-batcher (batcher.go);
// requests of MaxBatch reads or more skip the queue and run directly with
// the request's own context. Responses are byte-identical to a local Align
// call over the same reads. Accept-Encoding: gzip is honored on every
// response body.
package service

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/seqio"
)

// Config shapes one Server. Aligner is required; everything else defaults.
type Config struct {
	Aligner *meraligner.Aligner
	Query   meraligner.QueryOptions // CollectAlignments/CollectPerQuery are forced on

	// Micro-batcher knobs: the latency/throughput trade. Batching is
	// continuous — an idle engine dispatches immediately, and arrivals
	// coalesce while a call is in flight. MaxBatch caps reads per engine
	// call; MaxWait caps how long a queued request waits behind a busy
	// engine before an overlapping call dispatches anyway (zero means the
	// 2ms default; negative disables window-holding). MaxBatch 1 is the
	// no-coalescing ablation (one engine call per request) the service
	// benchmark measures against.
	MaxBatch int           // default 256
	MaxWait  time.Duration // default 2ms; < 0 disables window-holding

	// Admission control: reads allowed in the queue before new requests
	// are rejected with 429. Default 4*MaxBatch.
	QueueReads int

	// Workers is the engine pool size of coalesced calls (default: the
	// Aligner's build-time thread count, via AlignWorkers 0 = Build's).
	Workers int

	// RetryAfter is the backoff hint sent with 429s. Default 500ms.
	RetryAfter time.Duration

	// MaxRequestBytes bounds a request body. Default 64 MiB.
	MaxRequestBytes int64

	// Version is reported in /v1/stats (ldflags-injected by cmd/merserved).
	Version string
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	switch {
	case c.MaxWait == 0:
		c.MaxWait = 2 * time.Millisecond
	case c.MaxWait < 0:
		c.MaxWait = 0 // explicit opt-out of window-holding
	}
	if c.QueueReads <= 0 {
		c.QueueReads = 4 * c.MaxBatch
	}
	if c.QueueReads < c.MaxBatch {
		// A queue smaller than MaxBatch would permanently 429 requests
		// sized between the two (too big to ever queue, too small for the
		// direct path) even on an idle server.
		c.QueueReads = c.MaxBatch
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 500 * time.Millisecond
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 64 << 20
	}
	return c
}

// Server is the HTTP handler. Create with New, serve with net/http, stop
// with Drain (graceful) and Close (hard).
type Server struct {
	cfg     Config
	al      *meraligner.Aligner
	qopt    meraligner.QueryOptions
	k       int
	targets []meraligner.Seq
	mux     *http.ServeMux
	bat     *batcher
	st      *serverStats

	baseCtx context.Context
	cancel  context.CancelFunc
}

// New builds a Server over cfg.Aligner. The index must already be built;
// New does no heavy work.
func New(cfg Config) (*Server, error) {
	if cfg.Aligner == nil {
		return nil, errors.New("service: Config.Aligner is required")
	}
	cfg = cfg.withDefaults()
	qopt := cfg.Query
	qopt.CollectAlignments = true // responses need the records
	qopt.CollectPerQuery = true   // stats need per-read latency
	s := &Server{
		cfg:     cfg,
		al:      cfg.Aligner,
		qopt:    qopt,
		k:       cfg.Aligner.IndexOptions().K,
		targets: cfg.Aligner.Targets(),
		st:      newServerStats(),
	}
	if s.cfg.Workers <= 0 {
		s.cfg.Workers = cfg.Aligner.Threads()
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.bat = newBatcher(s.baseCtx, s.alignBatch, cfg.MaxBatch, cfg.MaxWait, cfg.QueueReads, s.st)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/align", s.handleAlign)
	mux.HandleFunc("POST /v1/align/stream", s.handleAlignStream)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.bat.isClosed() }

// Drain gracefully stops the service: admission closes (healthz and new
// align requests answer 503), queued requests still execute, in-flight
// engine calls finish. When ctx expires first, in-flight work is aborted
// via the base context and ctx's error is returned.
func (s *Server) Drain(ctx context.Context) error {
	if err := s.bat.drain(ctx); err != nil {
		s.cancel() // abort in-flight engine calls
		return err
	}
	return nil
}

// Close hard-stops: cancels every in-flight engine call and stops the
// batcher's dispatcher (queued requests fail fast against the dead base
// context). Use after a failed Drain or for tests.
func (s *Server) Close() {
	s.cancel()
	s.bat.closeNow()
}

// alignBatch is the batcher's engine call.
func (s *Server) alignBatch(ctx context.Context, reads []meraligner.Seq) (*meraligner.Results, error) {
	res, err := s.al.AlignWorkers(ctx, s.cfg.Workers, reads, s.qopt)
	if err == nil {
		s.st.observePerQuery(res.PerQuery)
	}
	return res, err
}

// ---- request parsing ----

// parseReads decodes the request body into native reads: a JSON
// AlignRequest when the content type says JSON, a FASTQ document otherwise
// (gzip sniffed transparently, matching the CLI's file handling). Bodies
// over MaxRequestBytes surface as *http.MaxBytesError (parseStatus maps
// them to 413).
func (s *Server) parseReads(w http.ResponseWriter, r *http.Request) ([]meraligner.Seq, error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	ct := r.Header.Get("Content-Type")
	if strings.Contains(ct, "json") {
		var req client.AlignRequest
		dec := json.NewDecoder(body)
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("decoding JSON request: %w", err)
		}
		reads := make([]meraligner.Seq, len(req.Reads))
		for i, wr := range req.Reads {
			seq, err := packWire(wr.Seq)
			if err != nil {
				return nil, fmt.Errorf("read %q: %w", wr.Name, err)
			}
			reads[i] = meraligner.Seq{Name: wr.Name, Seq: seq, Qual: []byte(wr.Qual)}
		}
		return reads, nil
	}
	br, wasGzip, err := seqio.MaybeDecompress(body)
	if err != nil {
		return nil, fmt.Errorf("decompressing request body: %w", err)
	}
	var rd io.Reader = br
	if wasGzip {
		// MaxBytesReader bounded only the compressed bytes; cap the
		// decompressed stream too, or a small gzip bomb expands unbounded.
		// 8x leaves room for FASTQ's honest ~4x gzip ratio.
		rd = &capReader{r: br, n: 8 * s.cfg.MaxRequestBytes}
	}
	reads, err := seqio.ReadFastq(rd, seqio.ParseOptions{ReplaceN: true})
	if err != nil {
		return nil, fmt.Errorf("parsing FASTQ request body: %w", err)
	}
	return reads, nil
}

// errDecompressedTooLarge marks a gzipped body whose expansion exceeded the
// decompressed-size cap; parseStatus maps it to 413 like its compressed
// counterpart.
var errDecompressedTooLarge = errors.New("decompressed request body too large")

// capReader fails (rather than silently truncating) once n bytes have been
// read — the decompressed-stream counterpart of http.MaxBytesReader.
type capReader struct {
	r io.Reader
	n int64
}

func (c *capReader) Read(p []byte) (int, error) {
	if c.n <= 0 {
		return 0, errDecompressedTooLarge
	}
	if int64(len(p)) > c.n {
		p = p[:c.n]
	}
	m, err := c.r.Read(p)
	c.n -= int64(m)
	return m, err
}

// parseStatus maps a request-parse failure to its HTTP status: 413 when
// the body exceeded MaxRequestBytes compressed or its decompressed cap
// (split the batch and retry), 400 for malformed input (don't retry).
func parseStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) || errors.Is(err, errDecompressedTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// packWire packs a wire sequence, replacing ambiguous N bases with A (the
// pipeline's convention for every other input path).
func packWire(seq string) (dna.Packed, error) {
	b := []byte(seq)
	for i, c := range b {
		if c == 'N' || c == 'n' {
			b[i] = 'A'
		}
	}
	return dna.PackBytes(b)
}

// admit validates a parsed batch: non-empty, and every read long enough to
// carry a seed. Too-short reads are a client error (HTTP 400) carrying the
// typed per-read detail — the service-side face of the engine's
// QueryTooShort status (same rule: length < K).
func (s *Server) admit(reads []meraligner.Seq) *client.ErrorResponse {
	if len(reads) == 0 {
		return &client.ErrorResponse{Error: "empty request: no reads"}
	}
	var short []string
	for i := range reads {
		if reads[i].Seq.Len() < s.k {
			short = append(short, reads[i].Name)
		}
	}
	if short != nil {
		s.st.tooShort.Add(int64(len(short)))
		return &client.ErrorResponse{
			Error:    fmt.Sprintf("%d read(s) shorter than the seed length K=%d cannot be aligned", len(short), s.k),
			TooShort: short,
		}
	}
	return nil
}

// ---- /v1/align ----

func (s *Server) handleAlign(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeError(w, r, http.StatusServiceUnavailable, &client.ErrorResponse{Error: "draining"})
		return
	}
	reads, err := s.parseReads(w, r)
	if err != nil {
		s.writeError(w, r, parseStatus(err), &client.ErrorResponse{Error: err.Error()})
		return
	}
	if er := s.admit(reads); er != nil {
		s.writeError(w, r, http.StatusBadRequest, er)
		return
	}
	win, err := s.serve(r.Context(), reads)
	if err != nil {
		s.engineError(w, r, err)
		return
	}

	if wantsSAM(r) {
		s.writeSAM(w, r, win)
		return
	}
	s.writeJSON(w, r, http.StatusOK, s.buildResponse(win))
}

// serve is the request-serving core shared by the HTTP handler and
// AlignBatched: big requests run directly with the caller's context (no
// coalescing to gain; a disconnect cancels the engine call itself), small
// requests go through the micro-batcher. Request accounting and latency
// observation happen here so both faces report identically.
func (s *Server) serve(ctx context.Context, reads []meraligner.Seq) (*window, error) {
	start := time.Now()
	var win *window
	if len(reads) >= s.cfg.MaxBatch {
		res, err := s.alignDirect(ctx, reads)
		if err != nil {
			return nil, err
		}
		win = &window{res: res, reads: reads, lo: 0, hi: len(reads)}
	} else {
		var err error
		if win, err = s.bat.submit(ctx, reads); err != nil {
			return nil, err
		}
	}
	// Counted only on success: requests/reads are served work, not offered
	// load (rejections are the separate `rejected` counter).
	s.st.requests.Add(1)
	s.st.reads.Add(int64(len(reads)))
	s.st.reqLatency.observe(time.Since(start).Nanoseconds())
	return win, nil
}

// AlignBatched submits one request's reads through the service exactly as
// POST /v1/align does — micro-batching, admission control, stats — but
// in-process, with no HTTP in the path. Embedders and the service
// benchmark use it to measure or reuse the serving core directly. Errors:
// ErrOverloaded (the 429 case), ErrDraining (the 503 case), or the
// caller's context error.
func (s *Server) AlignBatched(ctx context.Context, reads []meraligner.Seq) (*meraligner.Results, error) {
	if s.Draining() {
		return nil, ErrDraining
	}
	win, err := s.serve(ctx, reads)
	if err != nil {
		return nil, err
	}
	return win.slice(), nil
}

// alignDirect runs one uncoalesced engine call and counts it as a batch of
// one request (so stats stay comparable across paths). It registers with
// the batcher's inflight count, so queued small requests coalesce behind
// it and drain waits for it.
func (s *Server) alignDirect(ctx context.Context, reads []meraligner.Seq) (*meraligner.Results, error) {
	s.bat.enterDirect()
	defer s.bat.exitDirect()
	res, err := s.alignBatch(ctx, reads)
	if err == nil {
		s.st.observeBatch(1, len(reads))
	}
	return res, err
}

// engineError maps batcher/engine failures onto HTTP statuses.
func (s *Server) engineError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		s.st.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		s.writeError(w, r, http.StatusTooManyRequests, &client.ErrorResponse{Error: "overloaded: admission queue full"})
	case errors.Is(err, ErrDraining):
		s.writeError(w, r, http.StatusServiceUnavailable, &client.ErrorResponse{Error: "draining"})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Client is gone; nothing useful to write. net/http drops the
		// connection. (Counted by the batcher when it noticed first.)
	default:
		s.writeError(w, r, http.StatusInternalServerError, &client.ErrorResponse{Error: err.Error()})
	}
}

// buildResponse renders a window as the JSON wire response.
func (s *Server) buildResponse(win *window) *client.AlignResponse {
	res := win.slice()
	reads := win.reads[win.lo:win.hi]
	out := &client.AlignResponse{Reads: make([]client.ReadResult, len(reads))}
	for i := range reads {
		out.Reads[i] = client.ReadResult{Name: reads[i].Name, Status: client.StatusUnmapped}
	}
	for _, a := range res.Alignments {
		rr := &out.Reads[a.Query]
		rr.Status = client.StatusOK
		strand := "+"
		if a.RC {
			strand = "-"
		}
		rr.Alignments = append(rr.Alignments, client.Alignment{
			Target: s.targets[a.Target].Name,
			Strand: strand,
			Score:  int(a.Score),
			QStart: int(a.QStart), QEnd: int(a.QEnd),
			TStart: int(a.TStart), TEnd: int(a.TEnd),
			Cigar: a.Cigar,
			Exact: a.Exact,
		})
	}
	for _, qi := range res.TooShort {
		out.Reads[qi].Status = client.StatusTooShort
	}
	return out
}

// writeSAM streams a window's records as a SAM document straight from the
// shared coalesced Results (SAMStream.WriteRange) — no per-request slicing.
func (s *Server) writeSAM(w http.ResponseWriter, r *http.Request, win *window) {
	w.Header().Set("Content-Type", "text/x-sam")
	body, finish := s.maybeGzip(w, r)
	stream, err := meraligner.NewSAMStream(body, s.targets)
	if err == nil {
		err = stream.WriteRange(win.res, win.reads, win.lo, win.hi)
	}
	if err == nil {
		err = stream.Flush()
	}
	if err == nil {
		err = finish()
	}
	_ = err // headers are gone; nothing more to report to the client
}

// ---- /v1/align/stream ----

// handleAlignStream aligns the batch in MaxBatch-read chunks, flushing each
// chunk's results as soon as the engine returns them: NDJSON ReadResult
// lines, or an incrementally-written SAM document under Accept: text/x-sam.
// The request's own context is propagated into every chunk's engine call,
// so a disconnect cancels the remaining work.
func (s *Server) handleAlignStream(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeError(w, r, http.StatusServiceUnavailable, &client.ErrorResponse{Error: "draining"})
		return
	}
	reads, err := s.parseReads(w, r)
	if err != nil {
		s.writeError(w, r, parseStatus(err), &client.ErrorResponse{Error: err.Error()})
		return
	}
	if er := s.admit(reads); er != nil {
		s.writeError(w, r, http.StatusBadRequest, er)
		return
	}
	start := time.Now()

	sam := wantsSAM(r)
	if sam {
		w.Header().Set("Content-Type", "text/x-sam")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	body, finish := s.maybeGzip(w, r)
	flush := func() {
		if gz, ok := body.(*gzip.Writer); ok {
			gz.Flush()
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}

	// The SAM header is deferred until the first chunk succeeds, so a
	// first-chunk admission failure can still answer with a real status.
	var stream *meraligner.SAMStream
	enc := json.NewEncoder(body)
	// Chunks ride the micro-batcher like any other request, so streams are
	// subject to the same admission bound (and partial chunks coalesce with
	// other traffic). One chunk is in flight per stream at a time — the
	// stream's own backpressure.
	chunkSize := min(s.cfg.MaxBatch, s.cfg.QueueReads)
	wrote := false
	for lo := 0; lo < len(reads); lo += chunkSize {
		hi := min(lo+chunkSize, len(reads))
		chunk := reads[lo:hi]
		win, aerr := s.bat.submit(r.Context(), chunk)
		if aerr != nil {
			if !wrote {
				// Nothing sent yet: a real status can still go out.
				s.engineError(w, r, aerr)
				return
			}
			if errors.Is(aerr, ErrOverloaded) {
				s.st.rejected.Add(1)
			}
			// Mid-stream with the client still healthy: a plain return
			// would end the chunked body cleanly and the truncation would
			// be invisible. Abort the connection so the client sees a
			// transport error, not a short success.
			panic(http.ErrAbortHandler)
		}
		s.st.reads.Add(int64(len(chunk)))
		if sam {
			if stream == nil {
				if stream, err = meraligner.NewSAMStream(body, s.targets); err != nil {
					return
				}
			}
			if err := stream.WriteRange(win.res, win.reads, win.lo, win.hi); err != nil {
				return
			}
			if err := stream.Flush(); err != nil {
				return
			}
		} else {
			for _, rr := range s.buildResponse(win).Reads {
				if err := enc.Encode(rr); err != nil {
					return
				}
			}
		}
		wrote = true
		flush()
	}
	s.st.requests.Add(1) // served in full (chunk reads counted as they went)
	s.st.reqLatency.observe(time.Since(start).Nanoseconds())
	_ = finish()
}

// ---- observability endpoints ----

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, s.Snapshot())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	body, finish := s.maybeGzip(w, r)
	writeMetrics(body, s.Snapshot())
	_ = finish()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ok\n")
}

// Snapshot returns the current wire Stats (the /v1/stats body), also
// available in-process for embedders and benchmarks.
func (s *Server) Snapshot() client.Stats {
	st := s.st.snapshot()
	st.Version = s.cfg.Version
	st.Draining = s.Draining()
	st.QueueReads = int64(s.bat.queuedReads())
	st.K = s.k
	ix := s.al.IndexStats()
	st.DistinctSeeds = int64(ix.DistinctSeeds)
	st.TotalLocs = int64(ix.TotalLocs)
	st.ResidentBytes = s.al.ResidentBytes()
	st.MaxBatch = s.cfg.MaxBatch
	st.MaxWaitMs = float64(s.cfg.MaxWait) / float64(time.Millisecond)
	return st
}

// ---- response plumbing ----

// maybeGzip wraps the response in gzip when the client accepts it. finish
// closes the gzip stream (a no-op otherwise); call it once after the last
// body write.
func (s *Server) maybeGzip(w http.ResponseWriter, r *http.Request) (io.Writer, func() error) {
	if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		return w, func() error { return nil }
	}
	w.Header().Set("Content-Encoding", "gzip")
	w.Header().Add("Vary", "Accept-Encoding")
	gz := gzip.NewWriter(w)
	return gz, gz.Close
}

func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	body, finish := s.maybeGzip(w, r)
	if code != http.StatusOK {
		w.WriteHeader(code)
	}
	_ = json.NewEncoder(body).Encode(v)
	_ = finish()
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, code int, er *client.ErrorResponse) {
	s.writeJSON(w, r, code, er)
}

// wantsSAM reports whether the request asked for SAM output.
func wantsSAM(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "sam")
}
