package service

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

// Lock-free service statistics: atomic counters plus the shared
// telemetry.Hist latency histograms. Everything here is written on hot
// paths by many goroutines and read whole by /v1/stats and /metrics, so
// there are no locks — only atomics; snapshots are merely
// consistent-enough, which is all an observability endpoint needs.

// serverStats aggregates the service's live counters. It implements
// batcherStats for the micro-batcher's observations.
type serverStats struct {
	start time.Time

	requests         atomic.Int64 // align requests served to completion (any endpoint)
	rejected         atomic.Int64 // 429s
	canceled         atomic.Int64 // client disconnects (queued or mid-flight)
	reads            atomic.Int64 // reads accepted into the engine
	tooShort         atomic.Int64 // reads rejected as shorter than K
	deadlineRejected atomic.Int64 // 503s: propagated deadline below MinDeadline

	batches          atomic.Int64 // engine calls issued by the batcher
	batchedReads     atomic.Int64 // reads across those calls
	coalescedBatches atomic.Int64 // calls gluing >= 2 requests
	maxBatchReads    atomic.Int64 // largest coalesced call seen

	reqLatency telemetry.Hist // request wall time, enqueue -> results ready
	alignRead  telemetry.Hist // per-read engine nanos (engine PerQuery stats)
}

func newServerStats() *serverStats { return &serverStats{start: time.Now()} }

func (s *serverStats) observeBatch(requests, reads int) {
	s.batches.Add(1)
	s.batchedReads.Add(int64(reads))
	if requests >= 2 {
		s.coalescedBatches.Add(1)
	}
	for {
		cur := s.maxBatchReads.Load()
		if int64(reads) <= cur || s.maxBatchReads.CompareAndSwap(cur, int64(reads)) {
			return
		}
	}
}

func (s *serverStats) observeCanceled() { s.canceled.Add(1) }

// observePerQuery folds the engine's per-query stats of one call into the
// per-read latency histogram.
func (s *serverStats) observePerQuery(pq []meraligner.QueryStat) {
	for i := range pq {
		s.alignRead.Observe(pq[i].Nanos)
	}
}

// snapshot renders the wire Stats (everything except server/index identity,
// which the Server fills in).
func (s *serverStats) snapshot() client.Stats {
	st := client.Stats{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Requests:         s.requests.Load(),
		Rejected:         s.rejected.Load(),
		Canceled:         s.canceled.Load(),
		Reads:            s.reads.Load(),
		TooShort:         s.tooShort.Load(),
		DeadlineRejected: s.deadlineRejected.Load(),
		Batches:          s.batches.Load(),
		BatchedReads:     s.batchedReads.Load(),
		CoalescedBatches: s.coalescedBatches.Load(),
		MaxBatchReads:    s.maxBatchReads.Load(),
		RequestP50Ms:     s.reqLatency.Quantile(0.50) / 1e6,
		RequestP99Ms:     s.reqLatency.Quantile(0.99) / 1e6,
		AlignReadP50Us:   s.alignRead.Quantile(0.50) / 1e3,
		AlignReadP99Us:   s.alignRead.Quantile(0.99) / 1e3,
	}
	if st.Batches > 0 {
		st.MeanBatchReads = float64(st.BatchedReads) / float64(st.Batches)
	}
	return st
}

// refMetrics is one reference's snapshot for the exposition. ref "" (the
// single-index server) emits unlabeled series, preserving the historical
// single-index format; a catalog server labels every series {ref="..."}.
type refMetrics struct {
	ref   string
	st    client.Stats
	req   telemetry.HistSnapshot // request wall time
	align telemetry.HistSnapshot // per-read engine time
}

// refLabel renders the ref label pair (no braces) for histogram series,
// empty for the single-index server.
func refLabel(ref string) string {
	if ref == "" {
		return ""
	}
	return fmt.Sprintf("ref=%q", ref)
}

// promLabel renders the label set of one series: the optional ref label
// plus any extra pre-rendered label pairs.
func promLabel(ref, extra string) string {
	switch {
	case ref == "" && extra == "":
		return ""
	case ref == "":
		return "{" + extra + "}"
	case extra == "":
		return fmt.Sprintf("{ref=%q}", ref)
	default:
		return fmt.Sprintf("{ref=%q,%s}", ref, extra)
	}
}

// writeMetrics renders the Prometheus text exposition: every metric name
// once, with one series per reference, then (for catalog servers) the
// catalog lifecycle metrics.
func writeMetrics(w io.Writer, refs []refMetrics, cat *client.CatalogCounters) {
	series := func(name, help, typ string, v func(client.Stats) float64, format string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, rm := range refs {
			fmt.Fprintf(w, "%s%s "+format+"\n", name, promLabel(rm.ref, ""), v(rm.st))
		}
	}
	counter := func(name, help string, v func(client.Stats) int64) {
		series(name, help, "counter", func(st client.Stats) float64 { return float64(v(st)) }, "%.0f")
	}
	gauge := func(name, help string, v func(client.Stats) float64) {
		series(name, help, "gauge", v, "%g")
	}
	counter("merserved_requests_total", "align requests served to completion", func(st client.Stats) int64 { return st.Requests })
	counter("merserved_rejected_total", "requests rejected with 429 (queue full or inflight limit)", func(st client.Stats) int64 { return st.Rejected })
	counter("merserved_canceled_total", "requests canceled by client disconnect", func(st client.Stats) int64 { return st.Canceled })
	counter("merserved_reads_total", "reads accepted into the engine", func(st client.Stats) int64 { return st.Reads })
	counter("merserved_too_short_reads_total", "reads rejected as shorter than K", func(st client.Stats) int64 { return st.TooShort })
	counter("merserved_deadline_rejected_total", "requests rejected as already doomed by their propagated deadline", func(st client.Stats) int64 { return st.DeadlineRejected })
	counter("merserved_batches_total", "coalesced engine calls", func(st client.Stats) int64 { return st.Batches })
	counter("merserved_batched_reads_total", "reads across coalesced engine calls", func(st client.Stats) int64 { return st.BatchedReads })
	counter("merserved_coalesced_batches_total", "engine calls serving >= 2 requests", func(st client.Stats) int64 { return st.CoalescedBatches })
	gauge("merserved_batch_reads_max", "largest coalesced engine call", func(st client.Stats) float64 { return float64(st.MaxBatchReads) })
	gauge("merserved_batch_reads_mean", "mean reads per engine call", func(st client.Stats) float64 { return st.MeanBatchReads })
	gauge("merserved_queue_reads", "reads queued for the next batching window", func(st client.Stats) float64 { return float64(st.QueueReads) })
	gauge("merserved_draining", "1 while draining (healthz returns 503)", func(st client.Stats) float64 {
		if st.Draining {
			return 1
		}
		return 0
	})
	gauge("merserved_resident_bytes", "resident index footprint", func(st client.Stats) float64 { return float64(st.ResidentBytes) })
	gauge("merserved_uptime_seconds", "seconds since start", func(st client.Stats) float64 { return st.UptimeSeconds })
	fmt.Fprintf(w, "# HELP merserved_request_latency_seconds request wall time quantiles\n")
	fmt.Fprintf(w, "# TYPE merserved_request_latency_seconds summary\n")
	for _, rm := range refs {
		fmt.Fprintf(w, "merserved_request_latency_seconds%s %g\n", promLabel(rm.ref, `quantile="0.5"`), rm.st.RequestP50Ms/1e3)
		fmt.Fprintf(w, "merserved_request_latency_seconds%s %g\n", promLabel(rm.ref, `quantile="0.99"`), rm.st.RequestP99Ms/1e3)
	}
	fmt.Fprintf(w, "# HELP merserved_align_read_seconds per-read engine time quantiles\n")
	fmt.Fprintf(w, "# TYPE merserved_align_read_seconds summary\n")
	for _, rm := range refs {
		fmt.Fprintf(w, "merserved_align_read_seconds%s %g\n", promLabel(rm.ref, `quantile="0.5"`), rm.st.AlignReadP50Us/1e6)
		fmt.Fprintf(w, "merserved_align_read_seconds%s %g\n", promLabel(rm.ref, `quantile="0.99"`), rm.st.AlignReadP99Us/1e6)
	}
	// Native cumulative histograms under new *_duration_seconds names (the
	// *_latency_seconds summaries above keep their historical type).
	telemetry.WriteHistHeader(w, "merserved_request_duration_seconds", "request wall time histogram")
	for _, rm := range refs {
		rm.req.WriteSeries(w, "merserved_request_duration_seconds", refLabel(rm.ref))
	}
	telemetry.WriteHistHeader(w, "merserved_align_read_duration_seconds", "per-read engine time histogram")
	for _, rm := range refs {
		rm.align.WriteSeries(w, "merserved_align_read_duration_seconds", refLabel(rm.ref))
	}
	telemetry.WriteRuntimeMetrics(w, "merserved")
	if cat == nil {
		return
	}
	cgauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	ccounter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	cgauge("merserved_catalog_open_refs", "references with an open (resident) index", float64(cat.OpenRefs))
	cgauge("merserved_catalog_resident_bytes", "bytes charged to the residency budget", float64(cat.ResidentBytes))
	cgauge("merserved_catalog_budget_bytes", "residency budget (0 = unlimited)", float64(cat.BudgetBytes))
	ccounter("merserved_catalog_opens_total", "snapshot opens (cold, reopen, and swap)", cat.Opens)
	ccounter("merserved_catalog_evictions_total", "budget evictions", cat.Evictions)
	ccounter("merserved_catalog_hot_swaps_total", "zero-downtime snapshot replacements", cat.HotSwaps)
	ccounter("merserved_catalog_uncached_serves_total", "serves of indexes larger than the whole budget", cat.UncachedServes)
}
