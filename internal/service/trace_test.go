package service

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

// span returns the first span of the given stage, or nil.
func span(rec telemetry.RequestTrace, stage string) *telemetry.Span {
	for i := range rec.Spans {
		if rec.Spans[i].Stage == stage {
			return &rec.Spans[i]
		}
	}
	return nil
}

// TestBatcherQueueWaitSpansUnderCoalescing pins the batch_wait span's
// semantics when requests coalesce: every member of a shared engine call
// reports its own queue wait (enqueue -> dispatch) ending exactly where
// its engine span begins, and names how many requests shared the call.
func TestBatcherQueueWaitSpansUnderCoalescing(t *testing.T) {
	_, reads := fixture(t)
	const n = 8
	srv, ts := newTestServer(t, func(c *Config) {
		c.MaxBatch = n
		c.MaxWait = 500 * time.Millisecond
	})
	cl := client.New(ts.URL)

	// Coalescing needs overlap with an in-flight engine call; repeat
	// bounded rounds of concurrent posts until a trace shows a shared call.
	var coalesced *telemetry.RequestTrace
	for round := 0; round < 10 && coalesced == nil; round++ {
		var wg sync.WaitGroup
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, errs[i] = cl.Align(context.Background(), client.AlignRequest{
					Reads: client.FromSeqs([]meraligner.Seq{reads[i%len(reads)]}),
				})
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, rec := range srv.TraceRing().Snapshot() {
			if sp := span(rec, "batch_wait"); sp != nil && sp.Requests >= 2 {
				coalesced = &rec
				break
			}
		}
	}
	if coalesced == nil {
		t.Skip("no coalescing observed (single-CPU host?); span shape covered by the uncoalesced assertions elsewhere")
	}

	bw := span(*coalesced, "batch_wait")
	eng := span(*coalesced, "engine")
	adm := span(*coalesced, "admission")
	if bw == nil || eng == nil || adm == nil {
		t.Fatalf("coalesced trace lacks spans: %+v", coalesced.Spans)
	}
	if eng.Requests != bw.Requests {
		t.Fatalf("engine span reports %d member requests, batch_wait %d", eng.Requests, bw.Requests)
	}
	if bw.Reads != 1 {
		t.Fatalf("batch_wait reads = %d, want this member's 1", bw.Reads)
	}
	if eng.Reads < bw.Requests {
		t.Fatalf("engine span reads = %d, want >= the %d coalesced single-read requests", eng.Reads, bw.Requests)
	}
	// The member's queue wait ends where the shared engine call begins
	// (allow a few microseconds of independent truncation).
	gap := eng.StartUs - (bw.StartUs + bw.DurationUs)
	if gap < -10 || gap > 10 {
		t.Fatalf("batch_wait ends at %dus but engine starts at %dus", bw.StartUs+bw.DurationUs, eng.StartUs)
	}
	if adm.StartUs > bw.StartUs {
		t.Fatalf("admission (%dus) must precede batch_wait (%dus)", adm.StartUs, bw.StartUs)
	}
	if total := coalesced.DurationUs; bw.DurationUs > total || eng.DurationUs > total {
		t.Fatalf("span durations exceed the request's: bw=%d eng=%d total=%d", bw.DurationUs, eng.DurationUs, total)
	}
	if eng.SWCalls <= 0 && eng.SeedLookups <= 0 {
		t.Fatalf("engine span carries no read stats: %+v", eng)
	}
}

// TestServiceSAMIdenticalTracedVsUntraced pins that tracing is inert on
// the single-node output path too.
func TestServiceSAMIdenticalTracedVsUntraced(t *testing.T) {
	_, reads := fixture(t)
	_, ts := newTestServer(t, nil)

	cl := client.New(ts.URL)
	want, err := cl.AlignSAM(context.Background(), client.AlignRequest{Reads: client.FromSeqs(reads[:6])})
	if err != nil {
		t.Fatal(err)
	}
	sc := telemetry.NewSpanContext()
	tr := telemetry.NewTrace(sc, "/test")
	ctx := telemetry.WithTrace(context.Background(), tr)
	got, err := cl.AlignSAM(ctx, client.AlignRequest{Reads: client.FromSeqs(reads[:6])})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("SAM differs traced vs untraced:\ntraced:\n%s\nuntraced:\n%s", got, want)
	}
}
