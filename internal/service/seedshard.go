package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/dhtnet"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

// SeedShardServer serves one seed-shard snapshot's share of the distributed
// seed table (merserved -seed-shard): batched binary lookups against the
// mmap'd partition, nothing else. It is deliberately a fraction of the
// align Server — a lookup node resolves seeds, it never parses reads,
// extends, or renders SAM — but it keeps the fleet conventions: request-id
// tracing, deadline propagation, drain via in-flight accounting, and a
// Prometheus endpoint (merserved_seedshard_*).
//
//	POST /v1/lookup     batched binary seed lookup (dhtnet frames)
//	GET  /v1/shardinfo  JSON identity (id, count, k, shards, fingerprint)
//	GET  /healthz       200 while serving, 503 while draining
//	GET  /readyz        readiness (same states; warming is fronted upstream)
//	GET  /metrics       Prometheus text exposition
type SeedShardServer struct {
	shard  *core.SeedShard
	logger *slog.Logger
	mux    *http.ServeMux

	maxBody int64

	draining atomic.Bool
	mu       sync.Mutex
	cond     *sync.Cond
	inflight int

	lookups  atomic.Int64 // lookup calls served to completion
	seeds    atomic.Int64 // seeds resolved across those calls
	misses   atomic.Int64 // seeds that resolved absent
	rejected atomic.Int64 // 400s: malformed frames, k mismatches, misrouted seeds
}

// SeedShardConfig assembles a SeedShardServer.
type SeedShardConfig struct {
	// Shard is the mapped seed-shard snapshot to serve. Required; the
	// server does not own it — the caller closes it after Drain.
	Shard *core.SeedShard

	// Logger receives request logs. Nil discards.
	Logger *slog.Logger

	// MaxBodyBytes bounds the lookup request body. Default: exactly one
	// full frame of dhtnet.MaxLookupBatch seeds.
	MaxBodyBytes int64
}

// NewSeedShard builds the server for one seed shard.
func NewSeedShard(cfg SeedShardConfig) (*SeedShardServer, error) {
	if cfg.Shard == nil {
		return nil, fmt.Errorf("service: seed-shard server needs a shard")
	}
	s := &SeedShardServer{
		shard:   cfg.Shard,
		logger:  cfg.Logger,
		maxBody: cfg.MaxBodyBytes,
	}
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	if s.maxBody <= 0 {
		s.maxBody = 16 + int64(dhtnet.MaxLookupBatch)*16
	}
	s.cond = sync.NewCond(&s.mu)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lookup", s.traced(s.handleLookup))
	mux.HandleFunc("GET /v1/shardinfo", s.handleShardInfo)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *SeedShardServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Draining reports whether Drain has started.
func (s *SeedShardServer) Draining() bool { return s.draining.Load() }

// Drain stops admission (new lookups answer 503) and waits for in-flight
// lookups to finish, or for ctx to expire.
func (s *SeedShardServer) Drain(ctx context.Context) error {
	s.draining.Store(true)
	idle := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.inflight > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *SeedShardServer) enter() bool {
	if s.draining.Load() {
		return false
	}
	s.mu.Lock()
	s.inflight++
	s.mu.Unlock()
	return true
}

func (s *SeedShardServer) exit() {
	s.mu.Lock()
	s.inflight--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// traced echoes the request id and logs one line per lookup call; span
// recording stays with the align tier — a lookup node's unit of work is
// microseconds, a full trace per call would cost more than the lookup.
func (s *SeedShardServer) traced(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sc, _ := telemetry.Extract(r.Header)
		w.Header().Set(telemetry.HeaderRequestID, sc.RequestID())
		sw := &telemetry.StatusRecorder{ResponseWriter: w, Code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		s.logger.Debug("lookup",
			"request_id", sc.RequestID(),
			"status", sw.Code,
			"duration_us", time.Since(start).Microseconds())
	}
}

func (s *SeedShardServer) error(w http.ResponseWriter, code int, msg string) {
	if code == http.StatusBadRequest {
		s.rejected.Add(1)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	io.WriteString(w, msg+"\n")
}

// handleLookup answers one batched lookup frame. Malformed frames, seed
// length mismatches, and misrouted seeds (a seed this shard does not own)
// are 400s — a misrouted seed answered "absent" would silently drop
// alignments, so the server refuses instead.
func (s *SeedShardServer) handleLookup(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		s.error(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.exit()
	if budget, ok := client.DeadlineFromHeader(r.Header); ok {
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()
		r = r.WithContext(ctx)
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		s.error(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("lookup body exceeds %d bytes", s.maxBody))
		return
	}
	k, seeds, err := dhtnet.DecodeLookupRequest(body)
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	info := s.shard.Info()
	if k != info.K {
		s.error(w, http.StatusBadRequest, fmt.Sprintf("lookup with k=%d against a k=%d shard", k, info.K))
		return
	}
	answers := make([]dhtnet.LookupAnswer, len(seeds))
	misses := 0
	for i, seed := range seeds {
		if r.Context().Err() != nil {
			s.error(w, http.StatusServiceUnavailable, "deadline exhausted")
			return
		}
		if !s.shard.Owns(seed) {
			s.error(w, http.StatusBadRequest, fmt.Sprintf(
				"seed %d is not owned by shard %d/%d: misrouted lookup (client and fleet disagree on the partition)", i, info.ID, info.Count))
			return
		}
		res, ok := s.shard.Lookup(seed)
		answers[i] = dhtnet.LookupAnswer{Res: res, OK: ok}
		if !ok {
			misses++
		}
	}
	s.lookups.Add(1)
	s.seeds.Add(int64(len(seeds)))
	s.misses.Add(int64(misses))
	resp := dhtnet.AppendLookupResponse(make([]byte, 0, 12+len(answers)*8), answers)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(resp)
}

func (s *SeedShardServer) handleShardInfo(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.shard.Info())
}

func (s *SeedShardServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ok\n")
}

func (s *SeedShardServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	info := s.shard.Info()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE merserved_seedshard_lookup_requests_total counter\nmerserved_seedshard_lookup_requests_total{shard=\"%d\"} %d\n", info.ID, s.lookups.Load())
	fmt.Fprintf(w, "# TYPE merserved_seedshard_seeds_total counter\nmerserved_seedshard_seeds_total{shard=\"%d\"} %d\n", info.ID, s.seeds.Load())
	fmt.Fprintf(w, "# TYPE merserved_seedshard_misses_total counter\nmerserved_seedshard_misses_total{shard=\"%d\"} %d\n", info.ID, s.misses.Load())
	fmt.Fprintf(w, "# TYPE merserved_seedshard_rejected_total counter\nmerserved_seedshard_rejected_total{shard=\"%d\"} %d\n", info.ID, s.rejected.Load())
	fmt.Fprintf(w, "# TYPE merserved_seedshard_resident_bytes gauge\nmerserved_seedshard_resident_bytes{shard=\"%d\"} %d\n", info.ID, s.shard.ResidentBytes())
	draining := 0
	if s.draining.Load() {
		draining = 1
	}
	fmt.Fprintf(w, "# TYPE merserved_seedshard_draining gauge\nmerserved_seedshard_draining{shard=\"%d\"} %d\n", info.ID, draining)
}
