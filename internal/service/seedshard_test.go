package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/dhtnet"
	"github.com/lbl-repro/meraligner/internal/kmer"
)

// seedShardFleet saves the fixture index as count seed shards and serves
// each behind httptest, returning the shards, the servers, and a dhtnet
// client wired to them.
func seedShardFleet(t *testing.T, count int) ([]*core.SeedShard, []*SeedShardServer, *dhtnet.Client) {
	t.Helper()
	al, _ := fixture(t)
	paths, err := al.SaveSeedShards(t.TempDir(), count)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := al.SeedPartitionFingerprint(count)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*core.SeedShard, count)
	servers := make([]*SeedShardServer, count)
	owners := make([]string, count)
	for i, p := range paths {
		sh, err := core.LoadSeedShard(p)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sh.Close() })
		srv, err := NewSeedShard(SeedShardConfig{Shard: sh})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		shards[i] = sh
		servers[i] = srv
		owners[i] = ts.URL
	}
	c, err := dhtnet.New(dhtnet.Config{
		Owners:      owners,
		K:           al.IndexOptions().K,
		Shards:      al.SeedTableShards(),
		Fingerprint: fp,
		MaxWait:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return shards, servers, c
}

// fixtureSeeds scans real seeds (present and absent alike) out of the
// fixture's reads, exactly as the engine would.
func fixtureSeeds(t *testing.T, n int) []kmer.Kmer {
	t.Helper()
	al, reads := fixture(t)
	k := al.IndexOptions().K
	var sc kmer.Scanner
	seeds := make([]kmer.Kmer, 0, n)
	for _, r := range reads {
		sc.Reset(r.Seq, k)
		for sc.Next() {
			if s, ok := sc.Canonical(); ok {
				seeds = append(seeds, s)
				if len(seeds) == n {
					return seeds
				}
			}
		}
	}
	if len(seeds) == 0 {
		t.Fatal("no seeds in fixture reads")
	}
	return seeds
}

// TestSeedShardLookupParity: resolving through real servers over HTTP
// answers bit-identically to probing the mapped shards directly.
func TestSeedShardLookupParity(t *testing.T) {
	for _, count := range []int{1, 3} {
		shards, _, c := seedShardFleet(t, count)
		if err := c.Warm(context.Background()); err != nil {
			t.Fatal(err)
		}
		seeds := fixtureSeeds(t, 500)
		out := make([]core.SeedAnswer, len(seeds))
		if err := c.ResolveSeeds(context.Background(), seeds, out); err != nil {
			t.Fatal(err)
		}
		info := shards[0].Info()
		for i, s := range seeds {
			want, ok := shards[dht.OwnerOf(s, info.Shards, count)].Lookup(s)
			if out[i].OK != ok {
				t.Fatalf("count=%d seed %d: OK=%v want %v", count, i, out[i].OK, ok)
			}
			if !ok {
				continue
			}
			if out[i].Res.Count != want.Count || len(out[i].Res.Locs) != len(want.Locs) {
				t.Fatalf("count=%d seed %d: shape mismatch", count, i)
			}
			for j := range want.Locs {
				if out[i].Res.Locs[j] != want.Locs[j] {
					t.Fatalf("count=%d seed %d loc %d: %+v != %+v", count, i, j, out[i].Res.Locs[j], want.Locs[j])
				}
			}
		}
	}
}

// TestSeedShardRejections: the server's typed 400s — malformed frame, seed
// length mismatch, misrouted seed — and the 413 for oversized bodies.
func TestSeedShardRejections(t *testing.T) {
	shards, _, _ := seedShardFleet(t, 2)
	srv, err := NewSeedShard(SeedShardConfig{Shard: shards[1], MaxBodyBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(body []byte) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/lookup", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	if code, msg := post([]byte("garbage")); code != http.StatusBadRequest || !strings.Contains(msg, "malformed") {
		t.Fatalf("garbage frame: %d %q", code, msg)
	}

	info := shards[1].Info()
	// Valid frame, wrong k.
	wrongK := dhtnet.AppendLookupRequest(nil, info.K+2, nil)
	if code, msg := post(wrongK); code != http.StatusBadRequest || !strings.Contains(msg, "k=") {
		t.Fatalf("k mismatch: %d %q", code, msg)
	}
	// A seed owned by shard 0, sent to shard 1.
	var foreign kmer.Kmer
	found := false
	for _, s := range fixtureSeeds(t, 200) {
		if dht.OwnerOf(s, info.Shards, info.Count) == 0 {
			foreign, found = s, true
			break
		}
	}
	if !found {
		t.Fatal("no foreign seed found")
	}
	misrouted := dhtnet.AppendLookupRequest(nil, info.K, []kmer.Kmer{foreign})
	if code, msg := post(misrouted); code != http.StatusBadRequest || !strings.Contains(msg, "misrouted") {
		t.Fatalf("misrouted seed: %d %q", code, msg)
	}
	// Oversized body.
	if code, _ := post(make([]byte, 2<<20)); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body accepted: %d", code)
	}
	// The rejections are counted.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "merserved_seedshard_rejected_total") {
		t.Fatalf("metrics missing rejected counter:\n%s", raw)
	}
}

// TestSeedShardInfoEndpoint: the JSON identity round-trips.
func TestSeedShardInfoEndpoint(t *testing.T) {
	shards, _, _ := seedShardFleet(t, 2)
	srv, _ := NewSeedShard(SeedShardConfig{Shard: shards[0]})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/shardinfo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got core.SeedShardInfo
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got != shards[0].Info() {
		t.Fatalf("shardinfo %+v != %+v", got, shards[0].Info())
	}
}

// TestSeedShardDrain: draining answers 503 on lookups and health probes,
// and Drain returns once in-flight lookups complete.
func TestSeedShardDrain(t *testing.T) {
	shards, _, _ := seedShardFleet(t, 1)
	srv, _ := NewSeedShard(SeedShardConfig{Shard: shards[0]})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	frame := dhtnet.AppendLookupRequest(nil, shards[0].Info().K, nil)
	resp, err := http.Post(ts.URL+"/v1/lookup", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining lookup: %d", resp.StatusCode)
	}
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining %s: %d", ep, resp.StatusCode)
		}
	}
}

// TestSeedShardDegradedTyped: a fleet with one dead node fails alignment-
// level resolution with a DegradedError naming the node — never a silent
// all-miss answer.
func TestSeedShardDegradedTyped(t *testing.T) {
	_, servers, c := seedShardFleet(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := servers[2].Drain(ctx); err != nil {
		t.Fatal(err)
	}
	seeds := fixtureSeeds(t, 300)
	out := make([]core.SeedAnswer, len(seeds))
	err := c.ResolveSeeds(context.Background(), seeds, out)
	var de *dhtnet.DegradedError
	if !errors.Is(err, dhtnet.ErrDegraded) || !errors.As(err, &de) {
		t.Fatalf("err = %v, want DegradedError", err)
	}
	if de.Owner != 2 {
		t.Fatalf("degraded owner %d, want 2", de.Owner)
	}
}
