package service

// Catalog-mode end-to-end tests: one Server over a directory of snapshots,
// exercising per-reference serving, byte identity against dedicated
// single-index servers, eviction racing in-flight aligns, hot-swap,
// per-reference admission quotas, and drain with a cold reference mid-open.
// The concurrency-heavy tests here are part of the -race CI job.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/genome"
)

// ---- fixtures: distinct small references saved as snapshots ----

// catRef is one generated reference: its reads, a resident oracle aligner
// (never part of any catalog), and its snapshot bytes.
type catRef struct {
	name   string
	reads  []meraligner.Seq
	oracle *meraligner.Aligner
	snap   []byte
}

var (
	catOnce sync.Once
	catRefs []*catRef
	catErr  error
)

// catFixture builds three distinct references once per test process.
func catFixture(t *testing.T) []*catRef {
	t.Helper()
	catOnce.Do(func() {
		dir, err := os.MkdirTemp("", "svcat")
		if err != nil {
			catErr = err
			return
		}
		defer os.RemoveAll(dir)
		for i, name := range []string{"alpha", "beta", "gamma"} {
			p := genome.EColiLike()
			p.GenomeLen = 30_000
			p.Depth = 2
			p.ContigMean = 6_000
			p.InsertMean = 0
			p.Seed = int64(301 + i)
			ds, err := genome.Generate(p)
			if err != nil {
				catErr = err
				return
			}
			al, err := meraligner.Build(2, meraligner.DefaultIndexOptions(19), ds.Contigs)
			if err != nil {
				catErr = err
				return
			}
			path := filepath.Join(dir, name+SnapshotExt)
			if err := al.Save(path); err != nil {
				catErr = err
				return
			}
			snap, err := os.ReadFile(path)
			if err != nil {
				catErr = err
				return
			}
			catRefs = append(catRefs, &catRef{name: name, reads: ds.Reads, oracle: al, snap: snap})
		}
	})
	if catErr != nil {
		t.Fatal(catErr)
	}
	return catRefs
}

// catDir materializes the fixture snapshots into a fresh catalog dir.
func catDir(t *testing.T, refs []*catRef) string {
	t.Helper()
	dir := t.TempDir()
	for _, r := range refs {
		if err := os.WriteFile(filepath.Join(dir, r.name+SnapshotExt), r.snap, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// replaceSnapshot swaps dir/<ref>.merx for blob the only legal way:
// write-to-temp then atomic rename.
func replaceSnapshot(t *testing.T, dir, ref string, blob []byte) {
	t.Helper()
	tmp := filepath.Join(dir, "."+ref+".tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ref+SnapshotExt)); err != nil {
		t.Fatal(err)
	}
}

// newCatalogServer builds a catalog-mode Server (tweaked by mod) behind
// httptest, returning the snapshot directory it serves.
func newCatalogServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server, string) {
	t.Helper()
	dir := catDir(t, catFixture(t))
	cfg := Config{IndexDir: dir, Query: queryOpts(), Workers: 2, SwapPoll: time.Nanosecond, Version: "test"}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, dir
}

// snapshotBytes measures one fixture's mapped footprint, the unit of the
// catalog's residency budget.
func snapshotBytes(t *testing.T, r *catRef) int64 {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.merx")
	if err := os.WriteFile(path, r.snap, 0o644); err != nil {
		t.Fatal(err)
	}
	al, err := meraligner.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer al.Close()
	return al.ResidentBytes()
}

// ---- byte identity against dedicated single-index servers ----

// TestCatalogMatchesDedicatedSingleIndexServers: for every reference, the
// catalog server's /v1/<ref>/align responses (SAM and JSON) must be
// byte-identical to a dedicated single-index merserved mapped over the very
// same snapshot file.
func TestCatalogMatchesDedicatedSingleIndexServers(t *testing.T) {
	refs := catFixture(t)
	_, ts, dir := newCatalogServer(t, nil)

	for _, r := range refs {
		// The dedicated server maps the same snapshot the catalog serves.
		al, err := meraligner.Open(filepath.Join(dir, r.name+SnapshotExt))
		if err != nil {
			t.Fatal(err)
		}
		single, err := New(Config{Aligner: al, Query: queryOpts(), Workers: 2, Version: "test"})
		if err != nil {
			t.Fatal(err)
		}
		sts := httptest.NewServer(single)

		req := client.AlignRequest{Reads: client.FromSeqs(r.reads[:12])}
		catCl := client.NewRef(ts.URL, r.name)
		singleCl := client.New(sts.URL)

		gotSAM, err := catCl.AlignSAM(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: catalog AlignSAM: %v", r.name, err)
		}
		wantSAM, err := singleCl.AlignSAM(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: single AlignSAM: %v", r.name, err)
		}
		if !bytes.Equal(gotSAM, wantSAM) {
			t.Fatalf("%s: catalog SAM diverges from the dedicated single-index server", r.name)
		}
		if want := directSAM(t, r.oracle, r.reads[:12]); !bytes.Equal(gotSAM, want) {
			t.Fatalf("%s: catalog SAM diverges from the direct-align oracle", r.name)
		}

		gotJSON, err := catCl.Align(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: catalog Align: %v", r.name, err)
		}
		wantJSON, err := singleCl.Align(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: single Align: %v", r.name, err)
		}
		g := mustJSON(t, gotJSON)
		w := mustJSON(t, wantJSON)
		if !bytes.Equal(g, w) {
			t.Fatalf("%s: catalog JSON diverges from the dedicated server\ngot:  %s\nwant: %s", r.name, g, w)
		}

		sts.Close()
		single.Close()
		al.Close()
	}
}

// ---- concurrency: three references at once, under -race ----

func TestCatalogThreeRefsConcurrently(t *testing.T) {
	refs := catFixture(t)
	srv, ts, _ := newCatalogServer(t, nil)

	// Oracles computed up front: worker goroutines never touch t.
	const batch = 6
	wants := make(map[string][]byte, len(refs))
	for _, r := range refs {
		wants[r.name] = directSAM(t, r.oracle, r.reads[:batch])
	}

	var wg sync.WaitGroup
	errc := make(chan error, len(refs)*4)
	for _, r := range refs {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(r *catRef) {
				defer wg.Done()
				cl := client.NewRef(ts.URL, r.name)
				for n := 0; n < 6; n++ {
					got, err := cl.AlignSAM(context.Background(), client.AlignRequest{Reads: client.FromSeqs(r.reads[:batch])})
					if err != nil {
						errc <- fmt.Errorf("%s: %v", r.name, err)
						return
					}
					if !bytes.Equal(got, wants[r.name]) {
						errc <- fmt.Errorf("%s: response diverged from its oracle under cross-ref concurrency", r.name)
						return
					}
				}
			}(r)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	cs := srv.CatalogSnapshot()
	if len(cs.Refs) != len(refs) {
		t.Fatalf("%d per-ref stat rows, want %d: %+v", len(cs.Refs), len(refs), cs.Refs)
	}
	for _, st := range cs.Refs {
		if st.Requests != 24 {
			t.Errorf("ref %s served %d requests, want 24", st.Ref, st.Requests)
		}
	}
}

// ---- eviction racing in-flight aligns ----

// TestCatalogEvictionRacesInflight pins the budget to ~1.5 indexes so every
// alternation between references evicts the other, while goroutines keep
// aligning on both. Responses must stay byte-identical throughout: eviction
// retires an index, it never closes one mid-batch.
func TestCatalogEvictionRacesInflight(t *testing.T) {
	refs := catFixture(t)
	one := snapshotBytes(t, refs[0])
	srv, ts, _ := newCatalogServer(t, func(c *Config) {
		c.ResidentBudget = one + one/2
	})

	const batch = 5
	wants := make(map[string][]byte, 2)
	for _, r := range refs[:2] {
		wants[r.name] = directSAM(t, r.oracle, r.reads[:batch])
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < 10; n++ {
				r := refs[(g+n)%2] // alternate alpha/beta against the tight budget
				cl := client.NewRef(ts.URL, r.name)
				got, err := cl.AlignSAM(context.Background(), client.AlignRequest{Reads: client.FromSeqs(r.reads[:batch])})
				if err != nil {
					errc <- fmt.Errorf("%s: %v", r.name, err)
					return
				}
				if !bytes.Equal(got, wants[r.name]) {
					errc <- fmt.Errorf("%s: response diverged while evictions raced in-flight aligns", r.name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	cat := srv.CatalogSnapshot().Catalog
	if cat.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget; pressure was never exercised: %+v", one+one/2, cat)
	}
	if cat.ResidentBytes > one+one/2 {
		t.Fatalf("%d resident bytes charged over the %d budget", cat.ResidentBytes, one+one/2)
	}
}

// ---- hot-swap ----

// TestCatalogHotSwapServesNewSnapshot replaces a served snapshot by atomic
// rename and requires the very next request to return the new index's
// bytes, with zero failed requests in between.
func TestCatalogHotSwapServesNewSnapshot(t *testing.T) {
	refs := catFixture(t)
	srv, ts, dir := newCatalogServer(t, nil)
	cl := client.NewRef(ts.URL, refs[0].name)

	// Probe reads drawn from alpha's genome; both oracles can align them.
	probe := refs[0].reads[:8]
	req := client.AlignRequest{Reads: client.FromSeqs(probe)}

	got, err := cl.AlignSAM(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if want := directSAM(t, refs[0].oracle, probe); !bytes.Equal(got, want) {
		t.Fatal("pre-swap response diverges from the old oracle")
	}

	// Atomically replace alpha's snapshot with beta's index.
	replaceSnapshot(t, dir, refs[0].name, refs[1].snap)

	got, err = cl.AlignSAM(context.Background(), req)
	if err != nil {
		t.Fatalf("first post-swap request failed: %v", err)
	}
	if want := directSAM(t, refs[1].oracle, probe); !bytes.Equal(got, want) {
		t.Fatal("post-swap response is not the new snapshot's bytes")
	}
	if cat := srv.CatalogSnapshot().Catalog; cat.HotSwaps == 0 {
		t.Fatalf("swap served new bytes but the hot-swap counter never moved: %+v", cat)
	}
}

// ---- per-reference admission quota ----

func TestCatalogPerRefQuota429(t *testing.T) {
	refs := catFixture(t)
	srv, ts, _ := newCatalogServer(t, func(c *Config) {
		c.MaxInflightPerRef = 1
	})
	cl := client.NewRef(ts.URL, refs[0].name)
	req := client.AlignRequest{Reads: client.FromSeqs(refs[0].reads[:2])}

	// Warm the tenant, then occupy its only inflight slot directly.
	if _, err := cl.Align(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	tn, err := srv.tenantFor(refs[0].name)
	if err != nil {
		t.Fatal(err)
	}
	if !tn.enterInflight() {
		t.Fatal("could not occupy the single inflight slot on an idle tenant")
	}

	resp, err := http.Post(ts.URL+"/v1/"+refs[0].name+"/align", "application/json", bytes.NewReader(mustJSON(t, req)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d with the per-ref quota exhausted, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carried no Retry-After header")
	}
	var er struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
		t.Fatalf("429 body not a JSON error (decode err %v)", err)
	}

	// Another reference is not throttled by alpha's quota.
	if _, err := client.NewRef(ts.URL, refs[1].name).Align(context.Background(), client.AlignRequest{Reads: client.FromSeqs(refs[1].reads[:2])}); err != nil {
		t.Fatalf("beta throttled by alpha's inflight quota: %v", err)
	}

	tn.exitInflight()
	if _, err := cl.Align(context.Background(), req); err != nil {
		t.Fatalf("request after the slot freed: %v", err)
	}
}

// ---- drain racing a cold-reference open ----

// TestCatalogDrainWithColdRefMidOpen races Drain against a request that
// forces a cold snapshot open. Either outcome is legal — the request
// completes with correct bytes or is refused 503 — but the drain must
// finish clean, nothing may hang, and afterwards every request is 503.
func TestCatalogDrainWithColdRefMidOpen(t *testing.T) {
	refs := catFixture(t)
	srv, ts, _ := newCatalogServer(t, nil)

	// Touch alpha so drain has a warm tenant to flush too.
	cl := client.NewRef(ts.URL, refs[0].name)
	if _, err := cl.Align(context.Background(), client.AlignRequest{Reads: client.FromSeqs(refs[0].reads[:2])}); err != nil {
		t.Fatal(err)
	}

	coldDone := make(chan error, 1)
	go func() {
		// gamma was never opened: this request races the drain through the
		// catalog's cold-open path.
		got, err := client.NewRef(ts.URL, refs[2].name).AlignSAM(context.Background(), client.AlignRequest{Reads: client.FromSeqs(refs[2].reads[:4])})
		if err != nil {
			coldDone <- nil // refused by the drain: legal, as long as it was typed
			return
		}
		if want := directSAM(t, refs[2].oracle, refs[2].reads[:4]); !bytes.Equal(got, want) {
			coldDone <- fmt.Errorf("cold-ref response during drain diverged from its oracle")
			return
		}
		coldDone <- nil
	}()

	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case err := <-coldDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cold-ref request hung across the drain")
	}

	// Drained server refuses everything, typed.
	resp, err := http.Post(ts.URL+"/v1/"+refs[0].name+"/align", "application/json",
		bytes.NewReader(mustJSON(t, client.AlignRequest{Reads: client.FromSeqs(refs[0].reads[:1])})))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain align status %d, want 503", resp.StatusCode)
	}
	if err := client.New(ts.URL).Health(context.Background()); err == nil {
		t.Fatal("healthz reported healthy after drain")
	}
}

// ---- observability surface ----

func TestCatalogStatsRefsAndMetrics(t *testing.T) {
	refs := catFixture(t)
	srv, ts, _ := newCatalogServer(t, nil)
	for _, r := range refs[:2] {
		if _, err := client.NewRef(ts.URL, r.name).Align(context.Background(), client.AlignRequest{Reads: client.FromSeqs(r.reads[:3])}); err != nil {
			t.Fatal(err)
		}
	}
	cl := client.New(ts.URL)

	infos, err := cl.Refs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(refs) {
		t.Fatalf("/v1/refs listed %d references, want %d: %+v", len(infos), len(refs), infos)
	}
	open := map[string]bool{}
	for _, in := range infos {
		open[in.Ref] = in.Open
	}
	if !open["alpha"] || !open["beta"] || open["gamma"] {
		t.Fatalf("open flags wrong: %+v", infos)
	}

	cs, err := cl.CatalogStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cs.Catalog.OpenRefs != 2 || cs.Catalog.Opens < 2 {
		t.Fatalf("catalog counters wrong: %+v", cs.Catalog)
	}
	if len(cs.Refs) != 2 {
		t.Fatalf("%d per-ref stat rows, want 2: %+v", len(cs.Refs), cs.Refs)
	}
	for _, st := range cs.Refs {
		if st.Ref == "" || st.Requests != 1 || st.K != 19 {
			t.Fatalf("per-ref stats row malformed: %+v", st)
		}
	}

	// Per-reference stats endpoint, including a listed-but-cold reference.
	pst, err := client.NewRef(ts.URL, "alpha").Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pst.Ref != "alpha" || pst.Requests != 1 {
		t.Fatalf("/v1/alpha/stats: %+v", pst)
	}
	cold, err := client.NewRef(ts.URL, "gamma").Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Ref != "gamma" || cold.Requests != 0 {
		t.Fatalf("/v1/gamma/stats for a cold listed ref: %+v", cold)
	}

	// Unknown references are 404 everywhere.
	resp, err := http.Post(ts.URL+"/v1/nosuch/align", "application/json",
		bytes.NewReader(mustJSON(t, client.AlignRequest{Reads: client.FromSeqs(refs[0].reads[:1])})))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ref align status %d, want 404", resp.StatusCode)
	}
	if srv.Snapshot().Requests != 2 {
		t.Fatalf("aggregate Snapshot.Requests = %d, want 2", srv.Snapshot().Requests)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mbuf bytes.Buffer
	if _, err := mbuf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	m := mbuf.String()
	for _, want := range []string{
		`merserved_requests_total{ref="alpha"} 1`,
		`merserved_requests_total{ref="beta"} 1`,
		"merserved_catalog_open_refs 2",
		"merserved_catalog_opens_total",
		"merserved_catalog_evictions_total 0",
	} {
		if !bytes.Contains(mbuf.Bytes(), []byte(want)) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, m)
		}
	}
}
