package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

// The dynamic micro-batcher: the core of merserved. Single-read and
// small-batch requests are queued and coalesced into shared engine calls;
// every member request then demuxes its own window of the shared Results.
// This is the MICA/SNAP serving shape over the paper's resident index:
// per-call engine overhead (pool spawn, phase accounting, stats merge) is
// paid once per coalesced call instead of once per request, so single-read
// throughput tracks the batch path's.
//
// Batching is continuous, not clocked: when the engine is idle, the next
// queued request dispatches immediately (an idle engine is never held
// hostage to a timer), and while an engine call is in flight new arrivals
// accumulate — the following call takes them all, up to maxBatch reads.
// Under concurrent load batches grow to the arrival rate with no tuning.
// The two knobs bound the trade: maxBatch caps reads per engine call, and
// maxWait caps how long a queued request may wait for a busy engine before
// an overlapping call is dispatched anyway (so one slow mega-batch cannot
// stall the queue).
//
// Admission control is a bound on queued reads: a submit that would push
// the queue past capacity is rejected immediately (the handler turns that
// into 429 + Retry-After), so latency stays bounded instead of the queue
// growing without limit under overload.

// Sentinel errors the handlers translate to HTTP statuses.
var (
	ErrOverloaded = errors.New("service: admission queue full")
	ErrDraining   = errors.New("service: draining")
)

// alignFunc runs one coalesced engine call. On success the returned
// engineCall owns one reference (the dispatcher's); on error any index pin
// the call took must already be released.
type alignFunc func(ctx context.Context, reads []meraligner.Seq) (*engineCall, error)

// engineCall is the outcome of one coalesced engine call plus the pin that
// keeps its index alive. SAM rendering dereferences the target sequence
// bytes, which live in the snapshot mapping — so a catalog-managed index
// evicted or hot-swapped out mid-response must not unmap until every
// member request has finished rendering. The refcount encodes exactly
// that: the dispatcher holds one reference while demuxing, each surviving
// member window holds one until its response is written, and release (the
// catalog Handle's) runs when the last reference drops. targets is
// captured from the pinned index at call time, so responses render against
// the index that actually served them even if the reference was swapped
// meanwhile.
type engineCall struct {
	res     *meraligner.Results
	targets []meraligner.Seq
	release func() // index pin release; nil for unmanaged (static) sources
	left    atomic.Int32
}

// newEngineCall wraps one completed engine call with the caller's single
// reference.
func newEngineCall(res *meraligner.Results, targets []meraligner.Seq, release func()) *engineCall {
	c := &engineCall{res: res, targets: targets, release: release}
	c.left.Store(1)
	return c
}

// retain adds one reference (a member window keeping the index pinned).
func (c *engineCall) retain() { c.left.Add(1) }

// finish drops one reference, releasing the index pin on the last.
func (c *engineCall) finish() {
	if c.left.Add(-1) == 0 && c.release != nil {
		c.release()
	}
}

// window is one request's view of a coalesced engine call: the shared
// call (Results + pinned targets) and read slice of the whole call, plus
// this request's query range. Slice() rebases the range into a standalone
// per-request Results; SAM rendering streams the range straight from the
// shared Results via SAMStream.WriteRange. The holder must call finish()
// exactly once, after its last use of the call's Results or targets.
type window struct {
	call  *engineCall
	reads []meraligner.Seq
	lo    int
	hi    int

	// Trace material, stamped by the dispatcher (or the direct path):
	// when this request entered the queue, when its engine call
	// dispatched and completed, and how many member requests shared the
	// call. Plain timestamps — the batcher itself knows nothing about
	// traces.
	enq      time.Time
	disp     time.Time
	done     time.Time
	requests int
}

// record adds this request's queue-wait and engine spans to tr: the
// batch_wait span is the coalesce wait (enqueue to dispatch), the engine
// span the shared call itself, annotated with the call's aggregate read
// stats. nil traces and windows without timing (in-process callers) are
// no-ops.
func (w *window) record(tr *telemetry.Trace) {
	if tr == nil || w.disp.IsZero() {
		return
	}
	tr.Add("batch_wait", w.enq, w.disp.Sub(w.enq), func(sp *telemetry.Span) {
		sp.Requests = w.requests
		sp.Reads = w.hi - w.lo
	})
	tr.Add("engine", w.disp, w.done.Sub(w.disp), func(sp *telemetry.Span) {
		sp.Requests = w.requests
		sp.Reads = len(w.reads)
		sp.SWCalls = w.call.res.SWCalls
		sp.SeedLookups = w.call.res.SeedLookups
	})
}

// slice returns the request's own Results, rebased to its reads. The
// returned Results is heap-only (no mapped memory), so it outlives
// finish().
func (w *window) slice() *meraligner.Results { return w.call.res.Slice(w.lo, w.hi) }

// finish drops this window's reference on the shared engine call.
func (w *window) finish() { w.call.finish() }

// pending is one queued request.
type pending struct {
	ctx   context.Context
	reads []meraligner.Seq
	enq   time.Time // when submit queued it (queue-wait span material)
	win   *window
	err   error
	done  chan struct{}
}

// batcherStats are the micro-batcher's observation hooks (filled by the
// server's stats collector).
type batcherStats interface {
	observeBatch(requests, reads int)
	observeCanceled()
}

type batcher struct {
	align    alignFunc
	maxBatch int
	maxWait  time.Duration
	capacity int // admission bound on queued reads
	base     context.Context
	st       batcherStats

	mu       sync.Mutex
	cond     *sync.Cond // broadcast on queue/inflight transitions
	queue    []*pending
	queued   int // reads queued
	inflight int // engine calls running
	closed   bool

	wake    chan struct{} // 1-buffered dispatcher kick
	stopped chan struct{} // dispatcher exited
}

func newBatcher(base context.Context, align alignFunc, maxBatch int, maxWait time.Duration, capacity int, st batcherStats) *batcher {
	b := &batcher{
		align:    align,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		capacity: capacity,
		base:     base,
		st:       st,
		wake:     make(chan struct{}, 1),
		stopped:  make(chan struct{}),
	}
	b.cond = sync.NewCond(&b.mu)
	go b.run()
	return b
}

// queuedReads reports the reads currently waiting (for stats).
func (b *batcher) queuedReads() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queued
}

// isClosed reports whether drain has started.
func (b *batcher) isClosed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// inflightCalls reports engine calls currently running (for tests/stats).
func (b *batcher) inflightCalls() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inflight
}

// enterDirect/exitDirect bracket an engine call the batcher did not
// dispatch (the big-request direct path): the shared inflight count keeps
// window-holding honest — queued small requests coalesce behind a big
// direct call instead of dispatching into an already-saturated engine —
// and makes drain wait for direct calls too.
func (b *batcher) enterDirect() {
	b.mu.Lock()
	b.inflight++
	b.mu.Unlock()
}

func (b *batcher) exitDirect() {
	b.mu.Lock()
	b.inflight--
	b.cond.Broadcast()
	b.mu.Unlock()
	b.kick() // the engine may be idle now: let a held window dispatch
}

// submit enqueues one request's reads and blocks until its batch completes
// or ctx is done. On success the returned window gives the request its
// share of the coalesced call.
func (b *batcher) submit(ctx context.Context, reads []meraligner.Seq) (*window, error) {
	p := &pending{ctx: ctx, reads: reads, enq: time.Now(), done: make(chan struct{})}
	b.mu.Lock()
	switch {
	case b.closed:
		b.mu.Unlock()
		return nil, ErrDraining
	case b.queued+len(reads) > b.capacity:
		b.mu.Unlock()
		return nil, ErrOverloaded
	}
	b.queue = append(b.queue, p)
	b.queued += len(reads)
	b.mu.Unlock()
	b.kick()

	select {
	case <-p.done:
		return p.win, p.err
	case <-ctx.Done():
		// The dispatcher observes the dead ctx at take or demux time and
		// discards this request's share; batchmates are unaffected. The
		// demux may still have assigned (and retained) a window for this
		// request — both channels can be ready at once — so finish the
		// orphan once the dispatcher is done with it, or the index pin
		// would leak.
		go func() {
			<-p.done
			if p.win != nil {
				p.win.finish()
			}
		}()
		return nil, ctx.Err()
	}
}

// kick nudges the dispatcher without blocking; coalesced signals are fine —
// the dispatcher always rechecks the queue.
func (b *batcher) kick() {
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// closeNow stops admission without waiting: the dispatcher flushes any
// remaining queue (against a presumably-canceled base context) and exits.
// Hard-stop companion of drain; safe to call more than once.
func (b *batcher) closeNow() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.kick()
}

// drain stops admission and flushes: queued requests still execute (in
// final batches), in-flight calls finish. It returns when the batcher is
// empty or ctx expires — on expiry the base context should be canceled by
// the caller to abort in-flight engine calls.
func (b *batcher) drain(ctx context.Context) error {
	b.closeNow()

	idle := make(chan struct{})
	go func() {
		b.mu.Lock()
		for len(b.queue) > 0 || b.inflight > 0 {
			b.cond.Wait()
		}
		b.mu.Unlock()
		close(idle)
	}()
	select {
	case <-idle:
		<-b.stopped
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// run is the dispatcher: one goroutine owning batch formation. Executions
// are spawned asynchronously so arrivals keep accumulating while an engine
// call is in flight — the source of the coalescing.
func (b *batcher) run() {
	defer close(b.stopped)
	for {
		if !b.waitForWork() {
			return
		}
		b.waitWindow()
		batch, reads := b.take()
		if len(batch) > 0 {
			go b.execute(batch, reads)
		}
	}
}

// waitForWork blocks until the queue is nonempty; false means closed with
// an empty queue (time to exit).
func (b *batcher) waitForWork() bool {
	for {
		b.mu.Lock()
		n, closed := len(b.queue), b.closed
		b.mu.Unlock()
		if n > 0 {
			return true
		}
		if closed {
			return false
		}
		<-b.wake
	}
}

// waitWindow holds the queue open for coalescing while the engine is busy:
// it returns as soon as the engine is idle (an overlapping call may start
// immediately), when maxBatch reads are queued, when maxWait has elapsed
// since the window opened (bounding the wait behind one slow call), or
// when the batcher is draining (drain flushes immediately).
func (b *batcher) waitWindow() {
	if b.maxWait <= 0 {
		return
	}
	timer := time.NewTimer(b.maxWait)
	defer timer.Stop()
	for {
		b.mu.Lock()
		ready := b.queued >= b.maxBatch || b.closed || b.inflight == 0
		b.mu.Unlock()
		if ready {
			return
		}
		select {
		case <-timer.C:
			return
		case <-b.wake:
		}
	}
}

// take pops the next coalesced batch: pendings in arrival order up to
// maxBatch reads (a lone oversized request still goes through whole).
// Requests whose context died while queued are completed with their
// context's error and never reach the engine.
func (b *batcher) take() ([]*pending, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var batch []*pending
	reads := 0
	for len(b.queue) > 0 {
		p := b.queue[0]
		if err := p.ctx.Err(); err != nil {
			b.pop()
			p.err = err
			close(p.done)
			if b.st != nil {
				b.st.observeCanceled()
			}
			continue
		}
		if reads > 0 && reads+len(p.reads) > b.maxBatch {
			break
		}
		b.pop()
		batch = append(batch, p)
		reads += len(p.reads)
	}
	if len(batch) > 0 {
		b.inflight++
	}
	b.cond.Broadcast()
	return batch, reads
}

// pop removes the queue head (caller holds mu).
func (b *batcher) pop() {
	p := b.queue[0]
	b.queue[0] = nil
	b.queue = b.queue[1:]
	b.queued -= len(p.reads)
}

// execute runs one coalesced engine call and demuxes the shared Results to
// every member. A member whose client disconnected mid-flight gets its
// context error (its share is discarded); the others are untouched.
func (b *batcher) execute(batch []*pending, reads int) {
	all := make([]meraligner.Seq, 0, reads)
	for _, p := range batch {
		all = append(all, p.reads...)
	}
	ctx, cancel := groupContext(b.base, batch)
	disp := time.Now()
	call, err := b.align(ctx, all)
	finished := time.Now()
	cancel()
	if err == nil && b.st != nil {
		// Only completed calls count, matching the direct path — failed or
		// fully-canceled batches served nothing.
		b.st.observeBatch(len(batch), reads)
	}

	lo := 0
	for _, p := range batch {
		hi := lo + len(p.reads)
		switch {
		case err != nil:
			p.err = err
		case p.ctx.Err() != nil:
			p.err = p.ctx.Err()
			if b.st != nil {
				b.st.observeCanceled()
			}
		default:
			call.retain() // the member's reference, dropped by win.finish
			p.win = &window{call: call, reads: all, lo: lo, hi: hi,
				enq: p.enq, disp: disp, done: finished, requests: len(batch)}
		}
		close(p.done)
		lo = hi
	}
	if call != nil {
		call.finish() // the dispatcher's reference from alignFunc
	}

	b.mu.Lock()
	b.inflight--
	b.cond.Broadcast()
	b.mu.Unlock()
	b.kick() // the engine may be idle now: let a held window dispatch
}

// groupContext derives the engine context of one coalesced call: it dies
// when the server's base context does, or when every member request's own
// context is done — one surviving client keeps the batch alive; a lone
// disconnect never kills its batchmates' work.
func groupContext(base context.Context, batch []*pending) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(base)
	var left atomic.Int32
	left.Store(int32(len(batch)))
	for _, p := range batch {
		go func(done <-chan struct{}) {
			select {
			case <-done:
				if left.Add(-1) == 0 {
					cancel()
				}
			case <-ctx.Done():
			}
		}(p.ctx.Done())
	}
	return ctx, cancel
}
