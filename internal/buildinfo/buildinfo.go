// Package buildinfo carries the ldflags-injected version string and the
// -version / -cpuprofile flag plumbing shared by every command:
//
//	bi := buildinfo.Register(flag.CommandLine)
//	flag.Parse()
//	stop, err := bi.Apply("meraligner")   // prints and exits on -version
//	if err != nil { log.Fatal(err) }
//	defer stop()                          // flushes the CPU profile
//
// Release builds inject the version with:
//
//	go build -ldflags "-X github.com/lbl-repro/meraligner/internal/buildinfo.Version=v1.2.3" ./cmd/...
package buildinfo

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
)

// Version is "dev" unless overridden at link time (see the package doc).
var Version = "dev"

// String renders the full version line: the injected version, the VCS
// revision when the binary was built from a checkout, and the toolchain.
func String() string {
	rev := ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		var hash, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				hash = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if hash != "" {
			if len(hash) > 12 {
				hash = hash[:12]
			}
			rev = fmt.Sprintf(" (%s%s)", hash, dirty)
		}
	}
	return fmt.Sprintf("%s%s %s %s/%s", Version, rev, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// Flags holds the registered flag values until Apply.
type Flags struct {
	version    bool
	cpuProfile string
}

// Register adds -version and -cpuprofile to fs. Call before fs is parsed.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.version, "version", false, "print version and exit")
	fs.StringVar(&f.cpuProfile, "cpuprofile", "", "write a CPU profile to this file (flushed on clean exit)")
	return f
}

// Apply acts on the parsed flags: -version prints one line and exits 0;
// -cpuprofile starts profiling and the returned stop function flushes it.
// stop is never nil.
func (f *Flags) Apply(name string) (stop func(), err error) {
	if f.version {
		fmt.Printf("%s %s\n", name, String())
		os.Exit(0)
	}
	stop = func() {}
	if f.cpuProfile != "" {
		out, err := os.Create(f.cpuProfile)
		if err != nil {
			return stop, fmt.Errorf("creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(out); err != nil {
			out.Close()
			return stop, fmt.Errorf("starting CPU profile: %w", err)
		}
		stop = func() {
			pprof.StopCPUProfile()
			out.Close()
		}
	}
	return stop, nil
}
