package dhtnet

import (
	"errors"
	"testing"

	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/kmer"
)

// Protocol fuzzing: both decoders face bytes from the network — a crashed
// peer, a proxy truncation, a hostile client — so their contract is strict:
// any input either decodes or returns a *ProtocolError matching
// ErrProtocol; never a panic, never an over-read, and (for the request
// side) whatever decodes must re-encode to the identical frame.

// FuzzLookupDecode is the server-side target: arbitrary bytes through the
// request decoder.
func FuzzLookupDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("MLKQ"))
	f.Add(AppendLookupRequest(nil, 21, nil))
	f.Add(AppendLookupRequest(nil, 21, []kmer.Kmer{{Lo: 0x1b, Hi: 0}, {Lo: ^uint64(0), Hi: 7}}))
	f.Add(AppendLookupRequest(nil, 51, []kmer.Kmer{{Lo: 0xdead, Hi: 0xbeef}}))
	trunc := AppendLookupRequest(nil, 21, []kmer.Kmer{{Lo: 1}})
	f.Add(trunc[:len(trunc)-5])
	f.Fuzz(func(t *testing.T, b []byte) {
		k, seeds, err := DecodeLookupRequest(b)
		if err != nil {
			if !errors.Is(err, ErrProtocol) {
				t.Fatalf("decode error is not ErrProtocol: %v", err)
			}
			return
		}
		// A valid frame must survive a re-encode byte-for-byte.
		re := AppendLookupRequest(nil, k, seeds)
		if string(re) != string(b) {
			t.Fatalf("re-encode differs: %x vs %x", re, b)
		}
	})
}

// FuzzLookupResponse is the client-side target: arbitrary bytes through the
// response decoder, across a range of expected answer counts.
func FuzzLookupResponse(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add([]byte("MLKR"), 1)
	f.Add(AppendLookupResponse(nil, nil), 0)
	f.Add(AppendLookupResponse(nil, []LookupAnswer{{}}), 1)
	f.Add(AppendLookupResponse(nil, []LookupAnswer{
		{Res: dht.LookupResult{Locs: []dht.Loc{{Frag: 3, Off: 99, RC: true}}, Count: 12}, OK: true},
		{},
	}), 2)
	full := AppendLookupResponse(nil, []LookupAnswer{
		{Res: dht.LookupResult{Locs: []dht.Loc{{Frag: 1, Off: 2}, {Frag: 3, Off: 4, RC: true}}, Count: 2}, OK: true},
	})
	f.Add(full, 1)
	f.Add(full[:len(full)-3], 1)
	f.Fuzz(func(t *testing.T, b []byte, n int) {
		if n < 0 || n > 1<<12 {
			return
		}
		out := make([]LookupAnswer, n)
		if err := DecodeLookupResponse(b, out); err != nil {
			if !errors.Is(err, ErrProtocol) {
				t.Fatalf("decode error is not ErrProtocol: %v", err)
			}
			return
		}
		re := AppendLookupResponse(nil, out)
		if string(re) != string(b) {
			t.Fatalf("re-encode differs: %x vs %x", re, b)
		}
	})
}
