package dhtnet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/kmer"
)

// fakeShard is an in-memory seed-shard node: a map-backed table plus the
// identity endpoint, speaking the real wire protocol. It lets the client
// tests control batching, failures, and identity lies without a real index.
type fakeShard struct {
	id, count, shards int
	k                 int
	fingerprint       uint64
	table             map[kmer.Kmer]dht.LookupResult

	mu       sync.Mutex
	batches  [][]kmer.Kmer
	failNext int // answer this many lookup calls with 503 first
	hardFail bool
}

func (fs *fakeShard) info() core.SeedShardInfo {
	return core.SeedShardInfo{ID: fs.id, Count: fs.count, K: fs.k, Shards: fs.shards, Fingerprint: fs.fingerprint}
}

func (fs *fakeShard) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/shardinfo", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(fs.info())
	})
	mux.HandleFunc("POST /v1/lookup", func(w http.ResponseWriter, r *http.Request) {
		fs.mu.Lock()
		fail := fs.hardFail || fs.failNext > 0
		if fs.failNext > 0 {
			fs.failNext--
		}
		fs.mu.Unlock()
		if fail {
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		body, _ := io.ReadAll(r.Body)
		k, seeds, err := DecodeLookupRequest(body)
		if err != nil || k != fs.k {
			http.Error(w, fmt.Sprintf("bad frame: %v", err), http.StatusBadRequest)
			return
		}
		fs.mu.Lock()
		fs.batches = append(fs.batches, seeds)
		fs.mu.Unlock()
		answers := make([]LookupAnswer, len(seeds))
		for i, s := range seeds {
			if res, ok := fs.table[s]; ok {
				answers[i] = LookupAnswer{Res: res, OK: true}
			}
		}
		w.Write(AppendLookupResponse(nil, answers))
	})
	return mux
}

// fleet spins up n fake shards over one synthetic table and a client for
// them. Seeds are distributed by the real owner function.
func fleet(t *testing.T, n int, mod func(cfg *Config)) ([]*fakeShard, *Client) {
	t.Helper()
	const shards, k = 16, 21
	shardsList := make([]*fakeShard, n)
	owners := make([]string, n)
	for i := range shardsList {
		fs := &fakeShard{id: i, count: n, shards: shards, k: k, fingerprint: 0xfeed, table: map[kmer.Kmer]dht.LookupResult{}}
		ts := httptest.NewServer(fs.handler())
		t.Cleanup(ts.Close)
		shardsList[i] = fs
		owners[i] = ts.URL
	}
	for _, s := range testSeeds(t) {
		o := dht.OwnerOf(s, shards, n)
		shardsList[o].table[s] = dht.LookupResult{Locs: []dht.Loc{{Frag: int32(s.Lo % 97), Off: int32(s.Hi % 89)}}, Count: 1}
	}
	cfg := Config{Owners: owners, K: k, Shards: shards, Fingerprint: 0xfeed, MaxWait: 2 * time.Millisecond}
	if mod != nil {
		mod(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return shardsList, c
}

// testSeeds builds a deterministic pool of distinct seeds.
func testSeeds(t testing.TB) []kmer.Kmer {
	seeds := make([]kmer.Kmer, 64)
	for i := range seeds {
		seeds[i] = kmer.Kmer{Lo: uint64(i)*0x9E3779B97F4A7C15 + 3, Hi: uint64(i * 7)}
	}
	return seeds
}

func resolveAll(t *testing.T, c *Client, seeds []kmer.Kmer) []core.SeedAnswer {
	t.Helper()
	out := make([]core.SeedAnswer, len(seeds))
	if err := c.ResolveSeeds(context.Background(), seeds, out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestClientResolvesAcrossOwners(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		shards, c := fleet(t, n, nil)
		seeds := testSeeds(t)
		out := resolveAll(t, c, seeds)
		for i, s := range seeds {
			want, ok := shards[dht.OwnerOf(s, 16, n)].table[s]
			if out[i].OK != ok {
				t.Fatalf("n=%d seed %d: OK=%v want %v", n, i, out[i].OK, ok)
			}
			if ok && (out[i].Res.Count != want.Count || out[i].Res.Locs[0] != want.Locs[0]) {
				t.Fatalf("n=%d seed %d: result mismatch", n, i)
			}
		}
		// Unknown seeds miss cleanly.
		miss := []kmer.Kmer{{Lo: ^uint64(0), Hi: ^uint64(0)}}
		if got := resolveAll(t, c, miss); got[0].OK {
			t.Fatalf("n=%d: unknown seed resolved", n)
		}
	}
}

// TestClientCoalesces: concurrent submissions share round-trips — the
// whole point of the per-owner micro-batcher.
func TestClientCoalesces(t *testing.T) {
	shards, c := fleet(t, 1, func(cfg *Config) {
		cfg.MaxBatch = 256
		cfg.MaxWait = 20 * time.Millisecond
	})
	seeds := testSeeds(t)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]core.SeedAnswer, 4)
			if err := c.ResolveSeeds(context.Background(), seeds[g*4:g*4+4], out); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	shards[0].mu.Lock()
	calls := len(shards[0].batches)
	shards[0].mu.Unlock()
	if calls >= 16 {
		t.Fatalf("16 submissions cost %d round-trips: no coalescing", calls)
	}
	if st := c.Stats(); st.Seeds != 64 || st.BatchedSeeds != 64 {
		t.Fatalf("stats %+v", st)
	}
}

// TestClientDirectPath: a submission at or above MaxBatch bypasses the
// queue, splitting into wire-bound frames, and still answers positionally.
func TestClientDirectPath(t *testing.T) {
	shards, c := fleet(t, 1, func(cfg *Config) { cfg.MaxBatch = 8 })
	seeds := testSeeds(t) // 64 >= MaxBatch(8): direct
	out := resolveAll(t, c, seeds)
	for i, s := range seeds {
		if want, ok := shards[0].table[s]; out[i].OK != ok || (ok && out[i].Res.Locs[0] != want.Locs[0]) {
			t.Fatalf("seed %d mismatch", i)
		}
	}
	if st := c.Stats(); st.Direct == 0 {
		t.Fatalf("direct path not taken: %+v", st)
	}
}

// TestClientRetries: a 503 answered by a retry succeeds invisibly.
func TestClientRetries(t *testing.T) {
	shards, c := fleet(t, 1, func(cfg *Config) { cfg.Retry.BaseDelay = time.Millisecond })
	shards[0].mu.Lock()
	shards[0].failNext = 2
	shards[0].mu.Unlock()
	out := resolveAll(t, c, testSeeds(t)[:4])
	if !out[0].OK {
		t.Fatal("lookup failed after retries")
	}
	if st := c.Stats(); st.Retries < 2 {
		t.Fatalf("retries not counted: %+v", st)
	}
}

// TestClientDegraded: a dead node exhausts retries, fails typed, and trips
// the breaker so subsequent calls fail fast without a retry ladder.
func TestClientDegraded(t *testing.T) {
	shards, c := fleet(t, 2, func(cfg *Config) {
		cfg.Retry.BaseDelay = time.Millisecond
		cfg.BreakerThreshold = 2
		cfg.BreakerCooldown = time.Hour
	})
	shards[1].mu.Lock()
	shards[1].hardFail = true
	shards[1].mu.Unlock()

	// Find seeds owned by node 1.
	var owned []kmer.Kmer
	for _, s := range testSeeds(t) {
		if dht.OwnerOf(s, 16, 2) == 1 {
			owned = append(owned, s)
		}
	}
	out := make([]core.SeedAnswer, len(owned))
	var de *DegradedError
	for i := 0; i < 3; i++ { // trip the breaker
		err := c.ResolveSeeds(context.Background(), owned, out)
		if !errors.Is(err, ErrDegraded) || !errors.As(err, &de) {
			t.Fatalf("attempt %d: err = %v, want DegradedError", i, err)
		}
	}
	if de.Owner != 1 {
		t.Fatalf("degraded owner %d, want 1", de.Owner)
	}
	// Breaker now open: the failure is immediate (no HTTP attempt).
	shards[1].mu.Lock()
	calls := len(shards[1].batches)
	shards[1].mu.Unlock()
	err := c.ResolveSeeds(context.Background(), owned, out)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("open breaker: err = %v", err)
	}
	shards[1].mu.Lock()
	after := len(shards[1].batches)
	shards[1].mu.Unlock()
	if after != calls {
		t.Fatal("open breaker still dialed the node")
	}
	// The healthy node keeps answering.
	healthy := resolveAll(t, c, func() []kmer.Kmer {
		var hs []kmer.Kmer
		for _, s := range testSeeds(t) {
			if dht.OwnerOf(s, 16, 2) == 0 {
				hs = append(hs, s)
			}
		}
		return hs
	}())
	if !healthy[0].OK {
		t.Fatal("healthy node affected by sibling's breaker")
	}
}

// TestBreakerHalfOpen: after the cooldown one probe goes through and a
// success closes the circuit.
func TestBreakerHalfOpen(t *testing.T) {
	shards, c := fleet(t, 1, func(cfg *Config) {
		cfg.Retry.BaseDelay = time.Millisecond
		cfg.Retry.MaxAttempts = 1
		cfg.BreakerThreshold = 1
		cfg.BreakerCooldown = 30 * time.Millisecond
	})
	shards[0].mu.Lock()
	shards[0].failNext = 1
	shards[0].mu.Unlock()
	seeds := testSeeds(t)[:2]
	out := make([]core.SeedAnswer, len(seeds))
	if err := c.ResolveSeeds(context.Background(), seeds, out); !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v", err)
	}
	if err := c.ResolveSeeds(context.Background(), seeds, out); !errors.Is(err, ErrDegraded) {
		t.Fatalf("breaker should be open: %v", err)
	}
	time.Sleep(40 * time.Millisecond)
	if err := c.ResolveSeeds(context.Background(), seeds, out); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if err := c.ResolveSeeds(context.Background(), seeds, out); err != nil {
		t.Fatalf("closed circuit failed: %v", err)
	}
}

// TestWarm: identity verification catches a mis-wired fleet before any
// alignment.
func TestWarm(t *testing.T) {
	_, c := fleet(t, 2, nil)
	if err := c.Warm(context.Background()); err != nil {
		t.Fatalf("healthy fleet: %v", err)
	}

	// Node reporting the wrong id (fleet wired out of order).
	shards, c2 := fleet(t, 2, nil)
	shards[1].id = 0
	if err := c2.Warm(context.Background()); err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("swapped fleet: %v", err)
	}

	// Fingerprint mismatch against the local index.
	shards3, c3 := fleet(t, 2, nil)
	shards3[0].fingerprint = 0xbad
	shards3[1].fingerprint = 0xbad
	if err := c3.Warm(context.Background()); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("foreign fleet: %v", err)
	}

	// Wrong fleet size.
	shards4, c4 := fleet(t, 2, nil)
	shards4[0].count = 3
	shards4[1].count = 3
	if err := c4.Warm(context.Background()); err == nil || !strings.Contains(err.Error(), "fleet") {
		t.Fatalf("resized fleet: %v", err)
	}

	// Unreachable node: typed degraded error.
	_, c5 := fleet(t, 1, func(cfg *Config) {
		cfg.Owners = []string{"http://127.0.0.1:1"}
		cfg.Retry.MaxAttempts = 1
	})
	if err := c5.Warm(context.Background()); !errors.Is(err, ErrDegraded) {
		t.Fatalf("dead fleet: %v", err)
	}
}

// TestProtocolErrorSurfaces: a server speaking garbage fails typed — the
// degraded error wraps the protocol error, never a mis-decoded answer.
func TestProtocolErrorSurfaces(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not a lookup frame"))
	}))
	defer ts.Close()
	c, err := New(Config{Owners: []string{ts.URL}, K: 21, Shards: 16, Retry: client.RetryPolicy{MaxAttempts: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make([]core.SeedAnswer, 1)
	rerr := c.ResolveSeeds(context.Background(), testSeeds(t)[:1], out)
	if !errors.Is(rerr, ErrDegraded) || !errors.Is(rerr, ErrProtocol) {
		t.Fatalf("err = %v, want DegradedError wrapping ErrProtocol", rerr)
	}
}
