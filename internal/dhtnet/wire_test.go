package dhtnet

import (
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/kmer"
)

func mustKmer(t testing.TB, s string) kmer.Kmer {
	t.Helper()
	k, err := kmer.FromString(s)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func sampleSeeds(t testing.TB) []kmer.Kmer {
	return []kmer.Kmer{
		mustKmer(t, "ACGTACGTACGTACGTACGTA"),
		mustKmer(t, "TTTTTTTTTTTTTTTTTTTTT"),
		mustKmer(t, "GATTACAGATTACAGATTACA"),
	}
}

func TestLookupRequestRoundTrip(t *testing.T) {
	seeds := sampleSeeds(t)
	frame := AppendLookupRequest(nil, 21, seeds)
	if len(frame) != reqHeaderSize+len(seeds)*seedWireBytes {
		t.Fatalf("frame length %d", len(frame))
	}
	k, got, err := DecodeLookupRequest(frame)
	if err != nil {
		t.Fatal(err)
	}
	if k != 21 || !reflect.DeepEqual(got, seeds) {
		t.Fatalf("round trip: k=%d seeds=%v", k, got)
	}
	// Empty batch is legal (the server answers an empty frame).
	k, got, err = DecodeLookupRequest(AppendLookupRequest(nil, 51, nil))
	if err != nil || k != 51 || len(got) != 0 {
		t.Fatalf("empty round trip: k=%d n=%d err=%v", k, len(got), err)
	}
}

func TestLookupResponseRoundTrip(t *testing.T) {
	answers := []LookupAnswer{
		{Res: dht.LookupResult{Locs: []dht.Loc{{Frag: 7, Off: 42, RC: false}, {Frag: 9, Off: 0, RC: true}}, Count: 5}, OK: true},
		{}, // miss
		{Res: dht.LookupResult{Locs: []dht.Loc{{Frag: 0, Off: 13, RC: true}}, Count: 1}, OK: true},
	}
	frame := AppendLookupResponse(nil, answers)
	out := make([]LookupAnswer, len(answers))
	if err := DecodeLookupResponse(frame, out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, answers) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, answers)
	}
}

// TestLookupRequestMalformed: every malformed request decodes to a typed
// *ProtocolError matching ErrProtocol, never a panic.
func TestLookupRequestMalformed(t *testing.T) {
	good := AppendLookupRequest(nil, 21, sampleSeeds(t))
	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:reqHeaderSize-1],
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"bad version": append([]byte("MLKQ\x09"), good[5:]...),
		"truncated":   good[:len(good)-3],
		"trailing":    append(append([]byte{}, good...), 0),
		"resp magic":  append([]byte(respMagic), good[4:]...),
	}
	// k out of range.
	badK := append([]byte{}, good...)
	badK[5] = 0
	cases["k zero"] = badK
	// reserved bytes nonzero.
	badRes := append([]byte{}, good...)
	badRes[6] = 1
	cases["reserved"] = badRes
	// count beyond the batch bound with a matching (huge, absent) payload.
	badCount := append([]byte{}, good[:reqHeaderSize]...)
	binary.LittleEndian.PutUint32(badCount[8:], MaxLookupBatch+1)
	cases["count bound"] = badCount

	for name, frame := range cases {
		if _, _, err := DecodeLookupRequest(frame); !errors.Is(err, ErrProtocol) {
			t.Errorf("%s: err = %v, want ErrProtocol", name, err)
		}
		var pe *ProtocolError
		if _, _, err := DecodeLookupRequest(frame); !errors.As(err, &pe) {
			t.Errorf("%s: not a *ProtocolError", name)
		}
	}
}

// TestLookupResponseMalformed: the client-side decoder rejects every
// malformed response with a typed error — including count lies that a
// naive decoder would over-read on.
func TestLookupResponseMalformed(t *testing.T) {
	answers := []LookupAnswer{
		{Res: dht.LookupResult{Locs: []dht.Loc{{Frag: 1, Off: 2}}, Count: 1}, OK: true},
		{},
	}
	good := AppendLookupResponse(nil, answers)
	out := make([]LookupAnswer, len(answers))

	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:respHeaderSize-1],
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"bad version": append([]byte("MLKR\x02"), good[5:]...),
		"truncated":   good[:len(good)-1],
		"trailing":    append(append([]byte{}, good...), 0),
	}
	// Location count claiming more than the frame holds.
	lie := append([]byte{}, good...)
	binary.LittleEndian.PutUint32(lie[respHeaderSize:], 1<<30)
	cases["loc count lie"] = lie
	// Bad strand byte.
	strand := append([]byte{}, good...)
	strand[respHeaderSize+ansHeaderBytes+8] = 2
	cases["bad strand"] = strand
	// Nonzero location padding.
	pad := append([]byte{}, good...)
	pad[respHeaderSize+ansHeaderBytes+9] = 1
	cases["loc padding"] = pad
	// Reserved header bytes.
	res := append([]byte{}, good...)
	res[5] = 1
	cases["reserved"] = res

	for name, frame := range cases {
		if err := DecodeLookupResponse(frame, out); !errors.Is(err, ErrProtocol) {
			t.Errorf("%s: err = %v, want ErrProtocol", name, err)
		}
	}
	// Answer-count mismatch against the caller's expectation.
	if err := DecodeLookupResponse(good, make([]LookupAnswer, 3)); !errors.Is(err, ErrProtocol) {
		t.Errorf("count mismatch: err = %v, want ErrProtocol", err)
	}
}

func TestProtocolErrorText(t *testing.T) {
	_, _, err := DecodeLookupRequest([]byte("XXXXxxxxxxxx"))
	if err == nil || !strings.Contains(err.Error(), "malformed lookup request") {
		t.Fatalf("error text %v", err)
	}
}
