// Package dhtnet is the network realization of the paper's distributed seed
// hash table: a query node resolves seed lookups against a fleet of
// seed-shard servers (merserved -seed-shard), each owning the internal
// shards with shard % count == id of one sealed table (see dht.Partition).
// Lookups are staged per owning node and flushed through the generic
// micro-batcher — the paper's software aggregation of remote stores, reborn
// as batched RPCs — so the per-lookup network cost is paid once per batching
// window. Extension and Smith-Waterman stay at the querying node; output is
// byte-identical to the local engine.
//
// This file defines the batched binary lookup protocol (the body format of
// POST /v1/lookup). Both frames are little-endian and fixed-layout, so a
// lookup round-trip costs zero reflection and zero heap per seed beyond the
// location lists themselves.
//
// Request frame:
//
//	magic   "MLKQ" (4 B)
//	version u8 = 1
//	k       u8   seed length (sanity-checked against the shard's table)
//	_       u16  reserved, zero
//	count   u32  number of seeds
//	seeds   count x 16 B (kmer lo u64, hi u64)
//
// Response frame:
//
//	magic   "MLKR" (4 B)
//	version u8 = 1
//	_       u8   reserved, zero
//	_       u16  reserved, zero
//	count   u32  number of answers, equal to the request's seed count
//	answers count x { n u32, cnt u32, locs n x 12 B (frag i32, off i32,
//	        rc u8, 3 B pad) }
//
// n == 0 encodes a miss: a present seed always stores at least one
// location (dht's flat tables use the same invariant for empty slots), so
// absence needs no separate flag and the common miss costs 8 bytes.
package dhtnet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/kmer"
)

const (
	reqMagic  = "MLKQ"
	respMagic = "MLKR"
	wireVer   = 1

	reqHeaderSize  = 12
	respHeaderSize = 12
	seedWireBytes  = 16
	ansHeaderBytes = 8
	locWireBytes   = dht.LocWireBytes

	// MaxLookupBatch bounds the seeds of one request frame: a decoder
	// admission bound (a crafted count cannot force a huge allocation)
	// and the client's hard ceiling when splitting flushes.
	MaxLookupBatch = 1 << 16
)

// ErrProtocol matches every malformed-frame error of the lookup protocol,
// on either side: errors.Is(err, ErrProtocol) distinguishes "the peer spoke
// garbage" from transport failures.
var ErrProtocol = errors.New("dhtnet: protocol error")

// ProtocolError describes one malformed lookup frame.
type ProtocolError struct {
	Frame  string // "request" or "response"
	Reason string
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("dhtnet: malformed lookup %s: %s", e.Frame, e.Reason)
}

// Is makes every ProtocolError match ErrProtocol.
func (e *ProtocolError) Is(target error) bool { return target == ErrProtocol }

func badFrame(frame, format string, args ...any) error {
	return &ProtocolError{Frame: frame, Reason: fmt.Sprintf(format, args...)}
}

// AppendLookupRequest appends the request frame for seeds to dst.
func AppendLookupRequest(dst []byte, k int, seeds []kmer.Kmer) []byte {
	var hdr [reqHeaderSize]byte
	copy(hdr[0:4], reqMagic)
	hdr[4] = wireVer
	hdr[5] = byte(k)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(seeds)))
	dst = append(dst, hdr[:]...)
	var sb [seedWireBytes]byte
	for _, s := range seeds {
		binary.LittleEndian.PutUint64(sb[0:], s.Lo)
		binary.LittleEndian.PutUint64(sb[8:], s.Hi)
		dst = append(dst, sb[:]...)
	}
	return dst
}

// DecodeLookupRequest parses a request frame, returning the seed length and
// the seeds (decoded into a fresh slice — the frame may be a transient
// network buffer). Malformed frames return a *ProtocolError matching
// ErrProtocol; the decoder never panics and never reads past b.
func DecodeLookupRequest(b []byte) (k int, seeds []kmer.Kmer, err error) {
	if len(b) < reqHeaderSize {
		return 0, nil, badFrame("request", "%d bytes is shorter than the %d-byte header", len(b), reqHeaderSize)
	}
	if string(b[0:4]) != reqMagic {
		return 0, nil, badFrame("request", "bad magic %q", b[0:4])
	}
	if b[4] != wireVer {
		return 0, nil, badFrame("request", "version %d (this build speaks %d)", b[4], wireVer)
	}
	k = int(b[5])
	if k < 1 || k > kmer.MaxK {
		return 0, nil, badFrame("request", "seed length %d out of range 1..%d", k, kmer.MaxK)
	}
	if b[6] != 0 || b[7] != 0 {
		return 0, nil, badFrame("request", "nonzero reserved bytes")
	}
	count := binary.LittleEndian.Uint32(b[8:])
	if count > MaxLookupBatch {
		return 0, nil, badFrame("request", "%d seeds exceeds the batch bound %d", count, MaxLookupBatch)
	}
	if want := reqHeaderSize + int(count)*seedWireBytes; len(b) != want {
		return 0, nil, badFrame("request", "%d bytes for %d seeds, want exactly %d", len(b), count, want)
	}
	seeds = make([]kmer.Kmer, count)
	for i := range seeds {
		off := reqHeaderSize + i*seedWireBytes
		seeds[i].Lo = binary.LittleEndian.Uint64(b[off:])
		seeds[i].Hi = binary.LittleEndian.Uint64(b[off+8:])
	}
	return k, seeds, nil
}

// AppendLookupResponse appends the response frame for answers to dst. A
// miss is encoded as n == 0 regardless of the answer's Locs.
func AppendLookupResponse(dst []byte, answers []LookupAnswer) []byte {
	var hdr [respHeaderSize]byte
	copy(hdr[0:4], respMagic)
	hdr[4] = wireVer
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(answers)))
	dst = append(dst, hdr[:]...)
	var ab [ansHeaderBytes]byte
	var lb [locWireBytes]byte
	for _, a := range answers {
		if !a.OK {
			binary.LittleEndian.PutUint32(ab[0:], 0)
			binary.LittleEndian.PutUint32(ab[4:], 0)
			dst = append(dst, ab[:]...)
			continue
		}
		binary.LittleEndian.PutUint32(ab[0:], uint32(len(a.Res.Locs)))
		binary.LittleEndian.PutUint32(ab[4:], uint32(a.Res.Count))
		dst = append(dst, ab[:]...)
		for _, loc := range a.Res.Locs {
			binary.LittleEndian.PutUint32(lb[0:], uint32(loc.Frag))
			binary.LittleEndian.PutUint32(lb[4:], uint32(loc.Off))
			if loc.RC {
				lb[8] = 1
			} else {
				lb[8] = 0
			}
			lb[9], lb[10], lb[11] = 0, 0, 0
			dst = append(dst, lb[:]...)
		}
	}
	return dst
}

// LookupAnswer is one resolved lookup on the wire: present (OK with the
// location list and total occurrence count) or absent.
type LookupAnswer struct {
	Res dht.LookupResult
	OK  bool
}

// DecodeLookupResponse parses a response frame into out, which must have
// room for exactly the expected answer count (the client knows how many
// seeds it asked about). Malformed frames — bad magic, count mismatch,
// truncated location lists, trailing bytes — return a *ProtocolError
// matching ErrProtocol; the decoder never panics and never over-reads.
func DecodeLookupResponse(b []byte, out []LookupAnswer) error {
	if len(b) < respHeaderSize {
		return badFrame("response", "%d bytes is shorter than the %d-byte header", len(b), respHeaderSize)
	}
	if string(b[0:4]) != respMagic {
		return badFrame("response", "bad magic %q", b[0:4])
	}
	if b[4] != wireVer {
		return badFrame("response", "version %d (this build speaks %d)", b[4], wireVer)
	}
	if b[5] != 0 || b[6] != 0 || b[7] != 0 {
		return badFrame("response", "nonzero reserved bytes")
	}
	count := binary.LittleEndian.Uint32(b[8:])
	if int64(count) != int64(len(out)) {
		return badFrame("response", "%d answers, expected %d", count, len(out))
	}
	pos := respHeaderSize
	for i := range out {
		if len(b)-pos < ansHeaderBytes {
			return badFrame("response", "answer %d: truncated header", i)
		}
		n := binary.LittleEndian.Uint32(b[pos:])
		cnt := binary.LittleEndian.Uint32(b[pos+4:])
		pos += ansHeaderBytes
		if n == 0 {
			if cnt != 0 {
				return badFrame("response", "answer %d: miss with nonzero count %d", i, cnt)
			}
			out[i] = LookupAnswer{}
			continue
		}
		if n > MaxLookupBatch*16 || int64(len(b)-pos) < int64(n)*locWireBytes {
			return badFrame("response", "answer %d: %d locations exceed the frame", i, n)
		}
		locs := make([]dht.Loc, n)
		for j := range locs {
			locs[j].Frag = int32(binary.LittleEndian.Uint32(b[pos:]))
			locs[j].Off = int32(binary.LittleEndian.Uint32(b[pos+4:]))
			switch b[pos+8] {
			case 0:
				locs[j].RC = false
			case 1:
				locs[j].RC = true
			default:
				return badFrame("response", "answer %d location %d: bad strand byte %d", i, j, b[pos+8])
			}
			if b[pos+9] != 0 || b[pos+10] != 0 || b[pos+11] != 0 {
				return badFrame("response", "answer %d location %d: nonzero padding", i, j)
			}
			pos += locWireBytes
		}
		out[i] = LookupAnswer{Res: dht.LookupResult{Locs: locs, Count: int32(cnt)}, OK: true}
	}
	if pos != len(b) {
		return badFrame("response", "%d trailing bytes after the last answer", len(b)-pos)
	}
	return nil
}
