package dhtnet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/coalesce"
	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/kmer"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

// ErrDegraded matches every failure caused by a seed-shard node being
// unreachable or tripped: the query node refuses to silently degrade into
// missed alignments (a lost shard's seeds would just "miss"), so the whole
// alignment call fails with a typed error naming the shard.
var ErrDegraded = errors.New("dhtnet: seed shard degraded")

// DegradedError reports which seed-shard node failed and why.
type DegradedError struct {
	Owner int    // owner position within the fleet
	Addr  string // the node's base URL
	Err   error  // the underlying failure (nil when the breaker is open)
}

func (e *DegradedError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("dhtnet: seed shard %d (%s) degraded: circuit open", e.Owner, e.Addr)
	}
	return fmt.Sprintf("dhtnet: seed shard %d (%s) degraded: %v", e.Owner, e.Addr, e.Err)
}

// Is makes every DegradedError match ErrDegraded.
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// Unwrap exposes the underlying failure for errors.Is/As.
func (e *DegradedError) Unwrap() error { return e.Err }

// Config assembles a seed-lookup client. Owners, K and Shards are required
// and must describe the fleet exactly: owner position i serves the internal
// shards with shard % len(Owners) == i of a table with Shards internal
// shards (Warm cross-checks all three against every node).
type Config struct {
	// Owners are the seed-shard base URLs in owner order; position is
	// identity (seed-shard-000 must be Owners[0]).
	Owners []string

	// K is the seed length of the sharded table.
	K int

	// Shards is the internal shard count of the table the fleet was
	// partitioned from; owner routing hashes into it (dht.OwnerOf).
	Shards int

	// Fingerprint, when nonzero, is the expected partition fingerprint;
	// Warm rejects nodes disagreeing with it. Zero means "trust the fleet
	// to agree with itself".
	Fingerprint uint64

	// MaxBatch is the seed count per coalesced lookup call; submissions of
	// MaxBatch or more bypass the queue on the direct path. Default 4096,
	// capped at MaxLookupBatch.
	MaxBatch int

	// MaxWait is the batching window held open behind a busy call.
	// Default 200µs.
	MaxWait time.Duration

	// QueueSeeds bounds each owner's admitted backlog. Default 8*MaxBatch.
	QueueSeeds int

	// Retry shapes per-call retries (zero value = client defaults: 3
	// attempts, 50ms backoff doubling to 2s, 20% jitter).
	Retry client.RetryPolicy

	// BreakerThreshold is the consecutive-failure count that opens an
	// owner's circuit. Default 5.
	BreakerThreshold int

	// BreakerCooldown is how long an open circuit rejects immediately
	// before admitting one probe. Default 1s.
	BreakerCooldown time.Duration

	// HTTPClient overrides http.DefaultClient (tests, custom transports).
	HTTPClient *http.Client
}

func (cfg Config) withDefaults() (Config, error) {
	if len(cfg.Owners) == 0 {
		return cfg, errors.New("dhtnet: no seed-shard owners configured")
	}
	if cfg.K < 1 || cfg.K > kmer.MaxK {
		return cfg, fmt.Errorf("dhtnet: seed length %d out of range 1..%d", cfg.K, kmer.MaxK)
	}
	if cfg.Shards < 1 {
		return cfg, fmt.Errorf("dhtnet: internal shard count %d must be positive", cfg.Shards)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.MaxBatch > MaxLookupBatch {
		cfg.MaxBatch = MaxLookupBatch
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 200 * time.Microsecond
	}
	if cfg.QueueSeeds <= 0 {
		cfg.QueueSeeds = 8 * cfg.MaxBatch
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Second
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	return cfg, nil
}

// Stats is a point-in-time snapshot of the client's counters.
type Stats struct {
	Seeds        int64 // seeds resolved through ResolveSeeds
	Batches      int64 // coalesced lookup calls that succeeded
	BatchedSeeds int64 // seeds those calls carried
	Direct       int64 // direct-path (>= MaxBatch) calls
	Retries      int64 // attempts beyond the first, across all owners
	Degraded     int64 // calls rejected or failed as DegradedError
}

// Client resolves seed lookups against a fleet of seed-shard nodes. It
// implements core.SeedResolver: the engine hands it every seed of a read in
// lookup order, the client stages them per owning node, flushes through a
// per-owner micro-batching queue (concurrent reads share round-trips), and
// merges the answers back positionally. One Client serves any number of
// concurrent queries; Close releases the queues.
type Client struct {
	cfg    Config
	owners []*ownerConn

	seeds    atomic.Int64
	direct   atomic.Int64
	retries  atomic.Int64
	degraded atomic.Int64
}

// ownerConn is the per-node state: the coalescing queue and the breaker.
type ownerConn struct {
	c    *Client
	id   int
	addr string
	co   *coalesce.Coalescer[kmer.Kmer, []LookupAnswer]
	br   breaker
	st   batchStats
}

type batchStats struct {
	batches atomic.Int64
	items   atomic.Int64
}

func (s *batchStats) ObserveBatch(requests, items int) {
	s.batches.Add(1)
	s.items.Add(int64(items))
}
func (s *batchStats) ObserveCanceled() {}

// New builds a client for the fleet described by cfg. It performs no I/O;
// call Warm to verify the fleet before aligning.
func New(cfg Config) (*Client, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Client{cfg: cfg, owners: make([]*ownerConn, len(cfg.Owners))}
	for i, addr := range cfg.Owners {
		oc := &ownerConn{c: c, id: i, addr: addr}
		oc.br.threshold = cfg.BreakerThreshold
		oc.br.cooldown = cfg.BreakerCooldown
		oc.co = coalesce.New(context.Background(), coalesce.Config[kmer.Kmer, []LookupAnswer]{
			Call:     oc.lookup,
			MaxBatch: cfg.MaxBatch,
			MaxWait:  cfg.MaxWait,
			Capacity: cfg.QueueSeeds,
			Stats:    &oc.st,
		})
		c.owners[i] = oc
	}
	return c, nil
}

// Close shuts the per-owner queues down. In-flight submissions complete
// with ErrDraining; the client must not be used after.
func (c *Client) Close() {
	for _, oc := range c.owners {
		oc.co.Close()
	}
}

// Stats snapshots the client's counters.
func (c *Client) Stats() Stats {
	st := Stats{
		Seeds:    c.seeds.Load(),
		Direct:   c.direct.Load(),
		Retries:  c.retries.Load(),
		Degraded: c.degraded.Load(),
	}
	for _, oc := range c.owners {
		st.Batches += oc.st.batches.Load()
		st.BatchedSeeds += oc.st.items.Load()
	}
	return st
}

// Warm verifies the fleet's identity before any alignment runs: every node
// must report the owner position it is addressed as, the fleet size the
// client was configured with, the table's K and internal shard count, and a
// partition fingerprint all nodes (and cfg.Fingerprint, when set) agree on.
// A fleet mixing shards of different builds — or wired up in the wrong
// order — fails here, not as silently wrong alignments later.
func (c *Client) Warm(ctx context.Context) error {
	var fp uint64
	for i, oc := range c.owners {
		info, err := oc.shardInfo(ctx)
		if err != nil {
			return &DegradedError{Owner: i, Addr: oc.addr, Err: err}
		}
		if info.ID != i {
			return fmt.Errorf("dhtnet: node %s reports seed-shard id %d but is addressed as owner %d (fleet wired out of order?)", oc.addr, info.ID, i)
		}
		if info.Count != len(c.owners) {
			return fmt.Errorf("dhtnet: node %s belongs to a %d-shard fleet, client is configured for %d", oc.addr, info.Count, len(c.owners))
		}
		if info.K != c.cfg.K || info.Shards != c.cfg.Shards {
			return fmt.Errorf("dhtnet: node %s serves a table with K=%d, %d internal shards; client expects K=%d, %d", oc.addr, info.K, info.Shards, c.cfg.K, c.cfg.Shards)
		}
		if c.cfg.Fingerprint != 0 && info.Fingerprint != c.cfg.Fingerprint {
			return fmt.Errorf("dhtnet: node %s fingerprint %#x does not match the local index's %#x", oc.addr, info.Fingerprint, c.cfg.Fingerprint)
		}
		if i == 0 {
			fp = info.Fingerprint
		} else if info.Fingerprint != fp {
			return fmt.Errorf("dhtnet: fleet fingerprints disagree: node %s has %#x, node %s has %#x (shards from different builds?)", oc.addr, info.Fingerprint, c.owners[0].addr, fp)
		}
	}
	return nil
}

// ResolveSeeds implements core.SeedResolver: every seeds[i] is routed to
// its owning node by hash, staged into that node's batching queue, and the
// answer written to out[i]. Owners are contacted concurrently; the first
// failure aborts the whole resolution (typed DegradedError for a lost
// node — never a silent miss).
func (c *Client) ResolveSeeds(ctx context.Context, seeds []kmer.Kmer, out []core.SeedAnswer) error {
	if len(out) != len(seeds) {
		return fmt.Errorf("dhtnet: out/seeds length mismatch: %d vs %d", len(out), len(seeds))
	}
	if len(seeds) == 0 {
		return nil
	}
	c.seeds.Add(int64(len(seeds)))
	if len(c.owners) == 1 {
		return c.owners[0].resolve(ctx, seeds, out, nil)
	}

	// Stage per owner, preserving each seed's position for the merge.
	perSeeds := make([][]kmer.Kmer, len(c.owners))
	perIdx := make([][]int, len(c.owners))
	for i, s := range seeds {
		o := dht.OwnerOf(s, c.cfg.Shards, len(c.owners))
		perSeeds[o] = append(perSeeds[o], s)
		perIdx[o] = append(perIdx[o], i)
	}

	var wg sync.WaitGroup
	errs := make([]error, len(c.owners))
	for o, group := range perSeeds {
		if len(group) == 0 {
			continue
		}
		wg.Add(1)
		go func(oc *ownerConn, group []kmer.Kmer, idx []int) {
			defer wg.Done()
			errs[oc.id] = oc.resolve(ctx, group, out, idx)
		}(c.owners[o], group, perIdx[o])
	}
	wg.Wait()
	return errors.Join(errs...)
}

// resolve answers one owner's share of a resolution. idx maps the group's
// positions back into out; nil means identity (single-owner fast path).
func (oc *ownerConn) resolve(ctx context.Context, group []kmer.Kmer, out []core.SeedAnswer, idx []int) error {
	var answers []LookupAnswer
	if len(group) >= oc.c.cfg.MaxBatch {
		// Direct path: a submission already at batch size gains nothing
		// from queueing behind the window — call through, bracketed so
		// queued small submissions coalesce behind it and drains wait.
		oc.c.direct.Add(1)
		oc.co.EnterDirect()
		res, err := oc.lookup(ctx, group)
		oc.co.ExitDirect()
		if err != nil {
			return err
		}
		answers = res
	} else {
		win, err := oc.co.Submit(ctx, group)
		if err != nil {
			return err
		}
		answers = win.Result[win.Lo:win.Hi]
	}
	if idx == nil {
		for i, a := range answers {
			out[i] = core.SeedAnswer{Res: a.Res, OK: a.OK}
		}
		return nil
	}
	for i, a := range answers {
		out[idx[i]] = core.SeedAnswer{Res: a.Res, OK: a.OK}
	}
	return nil
}

// lookup is the coalesced call: one POST /v1/lookup round-trip for a batch
// of seeds, with breaker gating, bounded retries, deadline propagation and
// trace injection. Batches above the wire bound split into sequential
// frames (only the direct path can produce them).
func (oc *ownerConn) lookup(ctx context.Context, seeds []kmer.Kmer) ([]LookupAnswer, error) {
	if !oc.br.allow() {
		oc.c.degraded.Add(1)
		return nil, &DegradedError{Owner: oc.id, Addr: oc.addr}
	}
	answers := make([]LookupAnswer, len(seeds))
	for lo := 0; lo < len(seeds); lo += MaxLookupBatch {
		hi := min(lo+MaxLookupBatch, len(seeds))
		if err := oc.lookupFrame(ctx, seeds[lo:hi], answers[lo:hi]); err != nil {
			oc.br.failure()
			oc.c.degraded.Add(1)
			return nil, &DegradedError{Owner: oc.id, Addr: oc.addr, Err: err}
		}
	}
	oc.br.success()
	return answers, nil
}

func (oc *ownerConn) lookupFrame(ctx context.Context, seeds []kmer.Kmer, out []LookupAnswer) error {
	body := AppendLookupRequest(nil, oc.c.cfg.K, seeds)
	attempt := 0
	return oc.c.cfg.Retry.Do(ctx, func(ctx context.Context) error {
		attempt++
		if attempt > 1 {
			oc.c.retries.Add(1)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, oc.addr+"/v1/lookup", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		telemetry.Inject(ctx, req.Header)
		client.InjectDeadline(ctx, req.Header)
		resp, err := oc.c.cfg.HTTPClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		// Responses are bounded by the server's own location-list caps; the
		// read limit is a backstop against a misbehaving peer, not a budget.
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<28))
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return &client.StatusError{Code: resp.StatusCode, Message: string(bytes.TrimSpace(raw))}
		}
		return DecodeLookupResponse(raw, out)
	})
}

// shardInfo fetches a node's identity (GET /v1/shardinfo).
func (oc *ownerConn) shardInfo(ctx context.Context) (core.SeedShardInfo, error) {
	var info core.SeedShardInfo
	err := oc.c.cfg.Retry.Do(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, oc.addr+"/v1/shardinfo", nil)
		if err != nil {
			return err
		}
		telemetry.Inject(ctx, req.Header)
		client.InjectDeadline(ctx, req.Header)
		resp, err := oc.c.cfg.HTTPClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return &client.StatusError{Code: resp.StatusCode, Message: string(bytes.TrimSpace(raw))}
		}
		return json.Unmarshal(raw, &info)
	})
	return info, err
}

// breaker is a consecutive-failure circuit breaker: threshold consecutive
// call failures open it, an open breaker rejects immediately for cooldown,
// then admits one half-open probe whose outcome closes or re-opens it. It
// exists so a dead node costs one failed batch per cooldown instead of a
// full retry ladder per read.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	failures int
	openedAt time.Time
	probing  bool
}

// allow reports whether a call may proceed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failures < b.threshold {
		return true
	}
	if time.Since(b.openedAt) < b.cooldown {
		return false
	}
	if b.probing {
		return false // one probe at a time while half-open
	}
	b.probing = true
	return true
}

func (b *breaker) success() {
	b.mu.Lock()
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

func (b *breaker) failure() {
	b.mu.Lock()
	b.failures++
	b.probing = false
	if b.failures >= b.threshold {
		b.openedAt = time.Now()
	}
	b.mu.Unlock()
}
