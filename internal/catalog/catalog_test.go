package catalog

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/genome"
)

// ---- fixtures: small distinct genomes saved as snapshots ----

// testRef is one generated reference: its data set, a resident oracle
// aligner (never part of any catalog), and its snapshot bytes.
type testRef struct {
	name   string
	ds     *genome.DataSet
	oracle *meraligner.Aligner
	snap   []byte
}

var (
	refsOnce sync.Once
	refsFix  []*testRef
	refsErr  error
)

// makeRefs builds three distinct small references once per test process.
func makeRefs(t *testing.T) []*testRef {
	t.Helper()
	refsOnce.Do(func() {
		dir, err := os.MkdirTemp("", "catfix")
		if err != nil {
			refsErr = err
			return
		}
		defer os.RemoveAll(dir)
		for i, name := range []string{"alpha", "beta", "gamma"} {
			p := genome.EColiLike()
			p.GenomeLen = 30_000
			p.Depth = 2
			p.ContigMean = 6_000
			p.InsertMean = 0
			p.Seed = int64(101 + i) // distinct genomes per ref
			ds, err := genome.Generate(p)
			if err != nil {
				refsErr = err
				return
			}
			al, err := meraligner.Build(2, meraligner.DefaultIndexOptions(19), ds.Contigs)
			if err != nil {
				refsErr = err
				return
			}
			path := filepath.Join(dir, name+SnapshotExt)
			if err := al.Save(path); err != nil {
				refsErr = err
				return
			}
			snap, err := os.ReadFile(path)
			if err != nil {
				refsErr = err
				return
			}
			refsFix = append(refsFix, &testRef{name: name, ds: ds, oracle: al, snap: snap})
		}
	})
	if refsErr != nil {
		t.Fatal(refsErr)
	}
	return refsFix
}

// writeDir materializes the fixture snapshots into a fresh catalog dir.
func writeDir(t *testing.T, refs []*testRef) string {
	t.Helper()
	dir := t.TempDir()
	for _, r := range refs {
		if err := os.WriteFile(filepath.Join(dir, r.name+SnapshotExt), r.snap, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// mappedBytes measures ResidentBytes of one fixture as the catalog will
// see it (a mapped instance can report a different size than the built
// oracle it was saved from).
func mappedBytes(t *testing.T, dir, ref string) int64 {
	t.Helper()
	al, err := meraligner.Open(filepath.Join(dir, ref+SnapshotExt))
	if err != nil {
		t.Fatal(err)
	}
	defer al.Close()
	return al.ResidentBytes()
}

func qopts() meraligner.QueryOptions {
	q := meraligner.DefaultQueryOptions()
	q.MaxSeedHits = 200
	q.CollectAlignments = true
	return q
}

// alignSAM renders one aligner's SAM over reads.
func alignSAM(t *testing.T, al *meraligner.Aligner, reads []meraligner.Seq) []byte {
	t.Helper()
	res, err := al.Align(context.Background(), reads, qopts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := meraligner.WriteSAM(&buf, res, al.Targets(), reads); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// acquireSAM serves one batch through the catalog and renders SAM.
func acquireSAM(t *testing.T, c *Catalog, ref string, reads []meraligner.Seq) []byte {
	t.Helper()
	h, err := c.Acquire(ref)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	return alignSAM(t, h.Aligner(), reads)
}

// ---- tests ----

func TestLazyOpenAndIdentity(t *testing.T) {
	refs := makeRefs(t)
	dir := writeDir(t, refs)
	c, err := New(Options{Dir: dir, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if got := c.Stats().OpenRefs; got != 0 {
		t.Fatalf("OpenRefs before any request = %d, want 0 (opens must be lazy)", got)
	}
	for _, r := range refs {
		got := acquireSAM(t, c, r.name, r.ds.Reads[:40])
		want := alignSAM(t, r.oracle, r.ds.Reads[:40])
		if !bytes.Equal(got, want) {
			t.Fatalf("ref %s: catalog SAM differs from dedicated aligner", r.name)
		}
	}
	st := c.Stats()
	if st.OpenRefs != 3 || st.Opens != 3 {
		t.Errorf("after serving 3 refs: OpenRefs=%d Opens=%d, want 3,3", st.OpenRefs, st.Opens)
	}
	// Repeat requests must reuse the open instances, not reopen.
	acquireSAM(t, c, refs[0].name, refs[0].ds.Reads[:5])
	if got := c.Stats().Opens; got != 3 {
		t.Errorf("Opens after warm re-request = %d, want 3", got)
	}
}

func TestUnknownAndInvalidRefs(t *testing.T) {
	refs := makeRefs(t)
	c, err := New(Options{Dir: writeDir(t, refs), Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, ref := range []string{"nosuch", "", ".", "..", "../alpha", "a/b", `a\b`, ".hidden", "alpha..beta"} {
		_, err := c.Acquire(ref)
		if !errors.Is(err, ErrUnknownRef) {
			t.Errorf("Acquire(%q) = %v, want ErrUnknownRef", ref, err)
		}
	}
	var ure *UnknownRefError
	_, err = c.Acquire("nosuch")
	if !errors.As(err, &ure) || ure.Ref != "nosuch" {
		t.Errorf("unknown-ref error does not carry the ref: %v", err)
	}
}

func TestBudgetEviction(t *testing.T) {
	refs := makeRefs(t)
	dir := writeDir(t, refs)
	// Budget sized to hold any two of the three indexes but not all three.
	var sum, smallest int64
	for i, r := range refs {
		b := mappedBytes(t, dir, r.name)
		sum += b
		if i == 0 || b < smallest {
			smallest = b
		}
	}
	budget := sum - smallest/2
	c, err := New(Options{Dir: dir, Budget: budget, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, r := range refs {
		acquireSAM(t, c, r.name, r.ds.Reads[:5])
		if got := c.ResidentBytes(); got > budget {
			t.Fatalf("resident %d exceeds budget %d", got, budget)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("three refs through a two-ref budget caused no evictions: %+v", st)
	}
	// The evicted (least recent) ref must still serve — by reopening.
	opens := st.Opens
	got := acquireSAM(t, c, refs[0].name, refs[0].ds.Reads[:5])
	want := alignSAM(t, refs[0].oracle, refs[0].ds.Reads[:5])
	if !bytes.Equal(got, want) {
		t.Fatal("reopened ref served wrong bytes")
	}
	if c.Stats().Opens != opens+1 {
		t.Errorf("Opens after evicted-ref request = %d, want %d", c.Stats().Opens, opens+1)
	}
}

func TestEvictedIndexStaysPinnedUntilRelease(t *testing.T) {
	refs := makeRefs(t)
	dir := writeDir(t, refs)
	// Budget fits any single index but never two of them.
	var largest int64
	for _, r := range refs {
		if b := mappedBytes(t, dir, r.name); b > largest {
			largest = b
		}
	}
	c, err := New(Options{Dir: dir, Budget: largest + largest/20, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	h, err := c.Acquire(refs[0].name)
	if err != nil {
		t.Fatal(err)
	}
	// Evict alpha by touching beta and gamma while alpha's handle is live.
	acquireSAM(t, c, refs[1].name, refs[1].ds.Reads[:5])
	acquireSAM(t, c, refs[2].name, refs[2].ds.Reads[:5])
	if c.Stats().Evictions == 0 {
		t.Fatal("no eviction under a one-ref budget")
	}
	// The pinned, evicted index must still serve correct bytes.
	got := alignSAM(t, h.Aligner(), refs[0].ds.Reads[:10])
	want := alignSAM(t, refs[0].oracle, refs[0].ds.Reads[:10])
	if !bytes.Equal(got, want) {
		t.Fatal("evicted-but-pinned index served wrong bytes")
	}
	al := h.Aligner()
	h.Release() // last pin: closes now
	if _, err := al.Align(context.Background(), refs[0].ds.Reads[:1], qopts()); !errors.Is(err, meraligner.ErrAlignerClosed) {
		t.Fatalf("evicted index still open after last release: %v", err)
	}
}

func TestOversizedIndexServedUncached(t *testing.T) {
	refs := makeRefs(t)
	dir := writeDir(t, refs)
	c, err := New(Options{Dir: dir, Budget: 1024, Threads: 1}) // smaller than any index
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := acquireSAM(t, c, refs[0].name, refs[0].ds.Reads[:5])
	want := alignSAM(t, refs[0].oracle, refs[0].ds.Reads[:5])
	if !bytes.Equal(got, want) {
		t.Fatal("uncached serve returned wrong bytes")
	}
	st := c.Stats()
	if st.Uncached == 0 {
		t.Errorf("uncached serve not counted: %+v", st)
	}
	if st.ResidentBytes != 0 || st.OpenRefs != 0 {
		t.Errorf("oversized index left residency: %+v", st)
	}
}

func TestHotSwap(t *testing.T) {
	refs := makeRefs(t)
	dir := writeDir(t, refs)
	c, err := New(Options{Dir: dir, Threads: 1, SwapPoll: 0}) // check every acquire
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Serve alpha's original snapshot, and keep a pre-swap pin.
	before := acquireSAM(t, c, "alpha", refs[0].ds.Reads[:20])
	if want := alignSAM(t, refs[0].oracle, refs[0].ds.Reads[:20]); !bytes.Equal(before, want) {
		t.Fatal("pre-swap bytes wrong")
	}
	hOld, err := c.Acquire("alpha")
	if err != nil {
		t.Fatal(err)
	}

	// Replace alpha.merx with beta's snapshot (a genuinely different
	// index), atomically, with a distinct mtime.
	path := filepath.Join(dir, "alpha"+SnapshotExt)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, refs[1].snap, 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(tmp, future, future); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}

	// New acquires must see the new index: alpha now aligns beta's reads.
	got := acquireSAM(t, c, "alpha", refs[1].ds.Reads[:20])
	want := alignSAM(t, refs[1].oracle, refs[1].ds.Reads[:20])
	if !bytes.Equal(got, want) {
		t.Fatal("post-swap request did not serve the new snapshot")
	}
	if st := c.Stats(); st.HotSwaps != 1 {
		t.Errorf("HotSwaps = %d, want 1", st.HotSwaps)
	}

	// The pre-swap pin still serves the OLD index (zero downtime), and the
	// old index closes only when that pin releases.
	oldGot := alignSAM(t, hOld.Aligner(), refs[0].ds.Reads[:20])
	if want := alignSAM(t, refs[0].oracle, refs[0].ds.Reads[:20]); !bytes.Equal(oldGot, want) {
		t.Fatal("pre-swap pin no longer serves the old index")
	}
	oldAl := hOld.Aligner()
	hOld.Release()
	if _, err := oldAl.Align(context.Background(), refs[0].ds.Reads[:1], qopts()); !errors.Is(err, meraligner.ErrAlignerClosed) {
		t.Fatalf("swapped-out index not closed after last pin released: %v", err)
	}
}

func TestHotSwapKeepsServingOnBrokenReplacement(t *testing.T) {
	refs := makeRefs(t)
	dir := writeDir(t, refs)
	c, err := New(Options{Dir: dir, Threads: 1, SwapPoll: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	acquireSAM(t, c, "alpha", refs[0].ds.Reads[:5])

	// Atomically replace the snapshot with garbage (rename, as any honest
	// deployment does — overwriting a served snapshot in place would yank
	// mapped pages): the swap must NOT go through, and the healthy old
	// index keeps serving.
	path := filepath.Join(dir, "alpha"+SnapshotExt)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
	got := acquireSAM(t, c, "alpha", refs[0].ds.Reads[:5])
	want := alignSAM(t, refs[0].oracle, refs[0].ds.Reads[:5])
	if !bytes.Equal(got, want) {
		t.Fatal("catalog stopped serving the healthy index after a broken replacement appeared")
	}
	if st := c.Stats(); st.HotSwaps != 0 {
		t.Errorf("broken replacement counted as a hot-swap: %+v", st)
	}
}

func TestRefsListing(t *testing.T) {
	refs := makeRefs(t)
	dir := writeDir(t, refs)
	// Noise the scanner must skip.
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, ".hidden.merx"), []byte("x"), 0o644)
	os.Mkdir(filepath.Join(dir, "sub.merx"), 0o755)

	c, err := New(Options{Dir: dir, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	acquireSAM(t, c, "beta", refs[1].ds.Reads[:5])

	infos, err := c.Refs()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("Refs() = %+v, want the 3 fixtures", infos)
	}
	for i, want := range []string{"alpha", "beta", "gamma"} {
		if infos[i].Ref != want {
			t.Errorf("refs[%d] = %q, want %q", i, infos[i].Ref, want)
		}
		wantOpen := want == "beta"
		if infos[i].Open != wantOpen {
			t.Errorf("ref %s open = %v, want %v", want, infos[i].Open, wantOpen)
		}
		if wantOpen && infos[i].ResidentBytes <= 0 {
			t.Errorf("open ref %s reports no resident bytes", want)
		}
	}
}

func TestCatalogClose(t *testing.T) {
	refs := makeRefs(t)
	c, err := New(Options{Dir: writeDir(t, refs), Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Acquire("alpha")
	if err != nil {
		t.Fatal(err)
	}
	acquireSAM(t, c, "beta", refs[1].ds.Reads[:5])
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire("gamma"); !errors.Is(err, ErrCatalogClosed) {
		t.Fatalf("Acquire after Close = %v, want ErrCatalogClosed", err)
	}
	// The outstanding pin still serves; release closes it.
	got := alignSAM(t, h.Aligner(), refs[0].ds.Reads[:5])
	if want := alignSAM(t, refs[0].oracle, refs[0].ds.Reads[:5]); !bytes.Equal(got, want) {
		t.Fatal("pinned index unusable after catalog Close")
	}
	al := h.Aligner()
	h.Release()
	if _, err := al.Align(context.Background(), refs[0].ds.Reads[:1], qopts()); !errors.Is(err, meraligner.ErrAlignerClosed) {
		t.Fatalf("index not closed after catalog Close + last release: %v", err)
	}
}

func TestStaticSource(t *testing.T) {
	refs := makeRefs(t)
	src := Static(refs[0].oracle)
	h, err := src.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if h.Aligner() != refs[0].oracle {
		t.Fatal("Static handle does not expose the wrapped aligner")
	}
	h.Release()
	h.Release() // double release must be harmless
	// The static aligner is unmanaged: never closed by the source.
	if _, err := refs[0].oracle.Align(context.Background(), refs[0].ds.Reads[:1], qopts()); err != nil {
		t.Fatalf("static aligner unusable after release: %v", err)
	}
}
