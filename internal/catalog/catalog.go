// Package catalog manages a directory of .merx index snapshots as one
// multi-genome serving catalog: N references, each a memory-mapped
// snapshot, opened lazily on first request, kept resident under a byte
// budget with LRU eviction, and hot-swapped with zero downtime when the
// snapshot file changes on disk.
//
// The lifecycle contract is refcount-based. Acquire pins the reference's
// current index and returns a Handle; every in-flight engine call holds
// one, so an index that is evicted (budget pressure) or retired (hot-swap,
// catalog shutdown) is only Closed after the last Handle is released —
// a pinned index never closes mid-batch. Because snapshots are mmap'd,
// eviction is cheap: the table's pages stay in the host page cache, and
// reopening the same file later costs milliseconds, not an index rebuild.
//
// Hot-swap: each open index records the identity (mtime, size) of the file
// it was opened from. When an Acquire notices the file has changed (checks
// are rate-limited by Options.SwapPoll), it opens the new snapshot, swaps
// it in atomically, and retires the old one — in-flight calls drain on the
// old index, new calls land on the new one, and no request ever fails or
// blocks on the transition.
package catalog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/cache"
)

// SnapshotExt is the file extension a catalog directory entry must carry;
// the reference name is the file name with the extension stripped.
const SnapshotExt = ".merx"

// ErrUnknownRef matches (with errors.Is) every error Acquire returns for a
// reference the catalog does not serve: no such snapshot file, or a name
// that is not a valid reference name.
var ErrUnknownRef = errors.New("catalog: unknown reference")

// ErrCatalogClosed is returned by Acquire after Close.
var ErrCatalogClosed = errors.New("catalog: closed")

// UnknownRefError is the concrete ErrUnknownRef: it names the reference.
type UnknownRefError struct {
	Ref string
}

// Error names the missing reference.
func (e *UnknownRefError) Error() string {
	return fmt.Sprintf("catalog: unknown reference %q", e.Ref)
}

// Is matches ErrUnknownRef.
func (e *UnknownRefError) Is(target error) bool { return target == ErrUnknownRef }

// Options shapes one Catalog. Dir is required.
type Options struct {
	// Dir is the snapshot directory: every <ref>.merx file in it is a
	// servable reference. Files may appear, disappear, or be atomically
	// replaced while the catalog is serving.
	Dir string

	// Budget bounds the resident bytes of open indexes
	// (Aligner.ResidentBytes each); least-recently-used references are
	// evicted to stay under it. <= 0 means unlimited: every opened index
	// stays resident until Close. A single index larger than the whole
	// budget is served uncached — opened for the requests that need it and
	// closed as soon as they drain.
	Budget int64

	// Threads is the worker-pool default of lazily opened indexes (the
	// OpenThreads parameter). <= 0 means the host CPU count.
	Threads int

	// SwapPoll rate-limits the freshness check behind hot-swap: a
	// reference's snapshot file identity (mtime, size) is re-stat'd at most
	// once per SwapPoll. 0 checks on every Acquire (tests); < 0 disables
	// hot-swap entirely.
	SwapPoll time.Duration
}

// Handle is one pin on an open index. The Aligner is valid until Release;
// callers must Release exactly once, after which the index may close (if
// it was evicted or swapped out while pinned).
type Handle struct {
	al      *meraligner.Aligner
	release func()
}

// Aligner returns the pinned resident index.
func (h *Handle) Aligner() *meraligner.Aligner { return h.al }

// Release drops the pin. The Handle must not be used afterwards.
func (h *Handle) Release() {
	if h.release != nil {
		h.release()
		h.release = nil
	}
}

// Source yields pinned handles on one reference's current index: the seam
// between a serving tenant and the index lifecycle behind it. A Catalog
// provides one Source per reference; Static adapts a fixed resident
// Aligner (single-index serving) to the same seam.
type Source interface {
	Acquire() (*Handle, error)
}

// Static is a Source over one fixed resident Aligner with no lifecycle:
// Acquire always succeeds and Release is a no-op. It adapts single-index
// serving to the catalog seam.
func Static(al *meraligner.Aligner) Source { return staticSource{al} }

type staticSource struct{ al *meraligner.Aligner }

// Acquire returns an unmanaged handle on the fixed aligner.
func (s staticSource) Acquire() (*Handle, error) {
	return &Handle{al: s.al, release: func() {}}, nil
}

// instance is one open index: an Aligner plus the identity of the snapshot
// file it came from and the pin count that defers its Close.
type instance struct {
	ref   string
	al    *meraligner.Aligner
	bytes int64 // ResidentBytes at open, the LRU charge

	// Identity of the snapshot file this instance was opened from;
	// a mismatch against a fresh stat triggers hot-swap.
	mtime time.Time
	size  int64

	// refs counts pins: one held by the catalog while the instance is
	// current (dropped by retire), plus one per outstanding Handle. The
	// aligner closes when the count reaches zero.
	refs    atomic.Int64
	retired atomic.Bool
}

// unref drops one pin, closing the aligner on the last one. Aligner.Close
// is itself drain-aware, so even a mis-sequenced release cannot unmap a
// table under a running engine call.
func (i *instance) unref() {
	if i.refs.Add(-1) == 0 {
		i.al.Close()
	}
}

// retire drops the catalog's own pin exactly once: the instance is no
// longer current (evicted, swapped out, or the catalog is closing) and
// will close as soon as outstanding Handles drain.
func (i *instance) retire() {
	if !i.retired.Swap(true) {
		i.unref()
	}
}

// entry is the permanent per-reference record: it survives eviction (the
// serving tenant above it keeps batcher and stats across the open/evict/
// reopen cycle) and serializes opens and swaps for its reference.
type entry struct {
	ref  string
	path string

	mu        sync.Mutex // serializes open/swap; held across the (slow) open
	cur       *instance  // current index; nil or retired when not open
	lastCheck time.Time  // last freshness stat, rate-limited by SwapPoll
}

// Catalog serves handles over a directory of snapshots. Safe for
// concurrent use.
type Catalog struct {
	opt Options

	mu      sync.Mutex // guards entries
	entries map[string]*entry
	closed  bool

	// lmu guards lru and the retire decisions linked to it. It is a leaf
	// lock: nothing else is acquired under it (instance.retire can close an
	// aligner, but only when no pins remain — a fast munmap).
	lmu sync.Mutex
	lru *cache.LRU[string, *instance] // nil when Budget <= 0

	opens    atomic.Int64 // snapshot opens (cold + reopen + swap)
	evicts   atomic.Int64 // budget evictions
	swaps    atomic.Int64 // hot-swaps
	uncached atomic.Int64 // serves of indexes larger than the whole budget
}

// New opens a catalog over opt.Dir. The directory must exist; its
// snapshots are discovered lazily, so an empty directory is a valid (if
// unhelpful) catalog.
func New(opt Options) (*Catalog, error) {
	st, err := os.Stat(opt.Dir)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("catalog: %s is not a directory", opt.Dir)
	}
	if opt.Threads <= 0 {
		opt.Threads = runtime.NumCPU()
	}
	c := &Catalog{opt: opt, entries: make(map[string]*entry)}
	if opt.Budget > 0 {
		c.lru = cache.NewLRU[string, *instance](opt.Budget)
	}
	return c, nil
}

// validRef reports whether name is a servable reference name: it must map
// to a file directly inside the catalog directory, so path separators,
// "..", and a leading dot (hidden/temp files) are all rejected.
func validRef(name string) bool {
	if name == "" || name[0] == '.' {
		return false
	}
	if strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return false
	}
	return true
}

// entryFor returns the permanent record of ref, creating it on first use.
func (c *Catalog) entryFor(ref string) (*entry, error) {
	if !validRef(ref) {
		return nil, &UnknownRefError{Ref: ref}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrCatalogClosed
	}
	e, ok := c.entries[ref]
	if !ok {
		e = &entry{ref: ref, path: filepath.Join(c.opt.Dir, ref+SnapshotExt)}
		c.entries[ref] = e
	}
	return e, nil
}

// Acquire pins the current index of ref, lazily opening (or hot-swapping)
// its snapshot, and returns the Handle. Unknown references fail with an
// error matching ErrUnknownRef; damaged snapshots surface their typed
// merx error.
func (c *Catalog) Acquire(ref string) (*Handle, error) {
	e, err := c.entryFor(ref)
	if err != nil {
		return nil, err
	}
	inst, old, err := c.pin(e)
	if err != nil {
		return nil, err
	}

	// LRU bookkeeping happens outside the entry lock, so a budget eviction
	// of reference B triggered by touching reference A never waits on B's
	// (possibly mid-open) entry lock.
	c.touch(inst, old)
	return &Handle{al: inst.al, release: inst.unref}, nil
}

// pin returns ref's current instance with one pin added for the caller's
// Handle, opening or swapping first when needed. old is the instance a
// hot-swap just replaced (nil otherwise); the caller must retire it after
// LRU bookkeeping.
func (c *Catalog) pin(e *entry) (inst, old *instance, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	if e.cur != nil && e.cur.retired.Load() {
		e.cur = nil // evicted while we weren't looking; reopen below
	}
	if e.cur != nil && c.opt.SwapPoll >= 0 && time.Since(e.lastCheck) >= c.opt.SwapPoll {
		e.lastCheck = time.Now()
		if st, serr := os.Stat(e.path); serr == nil {
			if !st.ModTime().Equal(e.cur.mtime) || st.Size() != e.cur.size {
				// The snapshot changed on disk: swap. The old instance keeps
				// serving its in-flight calls until they drain.
				next, oerr := c.open(e)
				if oerr != nil {
					// The replacement is unreadable (e.g. caught mid-write
					// before an atomic rename, or genuinely corrupt): keep
					// serving the healthy old index; a later check retries.
					next = nil
				} else {
					old, e.cur = e.cur, next
					c.swaps.Add(1)
				}
			}
		}
		// A stat failure (file deleted) keeps the open index serving: the
		// mapping stays valid on every unix, and a catalog with traffic on
		// a ref should not fail it because of a transient directory state.
	}
	if e.cur == nil {
		next, oerr := c.open(e)
		if oerr != nil {
			return nil, nil, oerr
		}
		e.cur = next
	}
	e.cur.refs.Add(1) // the Handle's pin
	return e.cur, old, nil
}

// open maps e's snapshot file and returns the new instance holding the
// catalog's pin. Called with e.mu held: concurrent cold requests for one
// reference wait here and share the single open.
func (c *Catalog) open(e *entry) (*instance, error) {
	// Stat before opening: if the file is atomically replaced between the
	// two calls, the recorded identity is stale and the next freshness
	// check converges with one redundant swap — never a missed one.
	st, err := os.Stat(e.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &UnknownRefError{Ref: e.ref}
		}
		return nil, fmt.Errorf("catalog: %s: %w", e.ref, err)
	}
	al, err := meraligner.OpenThreads(c.opt.Threads, e.path)
	if err != nil {
		return nil, fmt.Errorf("catalog: opening %s: %w", e.ref, err)
	}
	c.opens.Add(1)
	inst := &instance{
		ref:   e.ref,
		al:    al,
		bytes: al.ResidentBytes(),
		mtime: st.ModTime(),
		size:  st.Size(),
	}
	inst.refs.Store(1) // the catalog's pin, dropped by retire
	e.lastCheck = time.Now()
	return inst, nil
}

// touch records inst as most recently used, charges it to the budget, and
// retires old (the hot-swapped-out predecessor, if any). Evictions the
// charge causes are retired here too.
func (c *Catalog) touch(inst, old *instance) {
	if c.lru == nil {
		if old != nil {
			old.retire()
		}
		return
	}
	c.lmu.Lock()
	defer c.lmu.Unlock()
	if old != nil {
		// Uncharge the swapped-out instance. Another goroutine may already
		// have charged the successor under this key; only remove what we
		// meant to remove.
		if v, ok := c.lru.Remove(inst.ref); ok && v != old {
			c.lru.Put(inst.ref, v, v.bytes)
		}
		old.retire()
	}
	if inst.retired.Load() {
		return // evicted between pin and here; its Handle still serves
	}
	if _, hit := c.lru.Get(inst.ref); hit {
		return // recency updated
	}
	stored, evicted := c.lru.Put(inst.ref, inst, inst.bytes)
	if !stored {
		// Bigger than the whole budget: serve uncached. The caller's Handle
		// keeps it alive for this request; it closes on release.
		c.uncached.Add(1)
		inst.retire()
	}
	for _, ev := range evicted {
		c.evicts.Add(1)
		ev.Value.retire()
	}
}

// Ref returns the Source of one reference, for a serving tenant to hold:
// each Acquire on it resolves the catalog's then-current index of ref.
func (c *Catalog) Ref(ref string) Source { return refSource{c: c, ref: ref} }

type refSource struct {
	c   *Catalog
	ref string
}

// Acquire pins the reference's current index via the owning catalog.
func (s refSource) Acquire() (*Handle, error) { return s.c.Acquire(s.ref) }

// RefInfo describes one servable reference for listings.
type RefInfo struct {
	Ref           string `json:"ref"`
	Open          bool   `json:"open"`
	ResidentBytes int64  `json:"resident_bytes,omitempty"` // 0 unless open
}

// Refs lists the servable references: every valid *.merx file currently in
// the directory, plus the open state of each. Sorted by name.
func (c *Catalog) Refs() ([]RefInfo, error) {
	des, err := os.ReadDir(c.opt.Dir)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	var out []RefInfo
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, SnapshotExt) {
			continue
		}
		ref := strings.TrimSuffix(name, SnapshotExt)
		if !validRef(ref) {
			continue
		}
		info := RefInfo{Ref: ref}
		c.mu.Lock()
		e := c.entries[ref]
		c.mu.Unlock()
		if e != nil {
			e.mu.Lock()
			if e.cur != nil && !e.cur.retired.Load() {
				info.Open = true
				info.ResidentBytes = e.cur.bytes
			}
			e.mu.Unlock()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ref < out[j].Ref })
	return out, nil
}

// Stats is a point-in-time view of the catalog's lifecycle counters.
type Stats struct {
	OpenRefs      int   `json:"open_refs"`
	ResidentBytes int64 `json:"resident_bytes"`
	Budget        int64 `json:"budget_bytes"` // 0 = unlimited
	Opens         int64 `json:"opens"`
	Evictions     int64 `json:"evictions"`
	HotSwaps      int64 `json:"hot_swaps"`
	Uncached      int64 `json:"uncached_serves"`
}

// Stats snapshots the lifecycle counters and the current residency.
func (c *Catalog) Stats() Stats {
	st := Stats{
		Budget:    c.opt.Budget,
		Opens:     c.opens.Load(),
		Evictions: c.evicts.Load(),
		HotSwaps:  c.swaps.Load(),
		Uncached:  c.uncached.Load(),
	}
	if c.opt.Budget < 0 {
		st.Budget = 0
	}
	if c.lru != nil {
		st.OpenRefs = c.lru.Len()
		st.ResidentBytes = c.lru.UsedBytes()
		return st
	}
	c.mu.Lock()
	entries := make([]*entry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	c.mu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
		if e.cur != nil && !e.cur.retired.Load() {
			st.OpenRefs++
			st.ResidentBytes += e.cur.bytes
		}
		e.mu.Unlock()
	}
	return st
}

// ResidentBytes reports the bytes currently charged to the budget.
func (c *Catalog) ResidentBytes() int64 { return c.Stats().ResidentBytes }

// Close retires every open index and rejects further Acquires. Indexes
// pinned by outstanding Handles close when those are released; callers
// wanting a fully quiesced shutdown drain their request paths first (as
// the service's Drain does).
func (c *Catalog) Close() error {
	c.mu.Lock()
	c.closed = true
	entries := make([]*entry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	c.mu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
		cur := e.cur
		e.cur = nil
		e.mu.Unlock()
		if cur != nil {
			c.lmu.Lock()
			if v, ok := c.lruRemove(cur.ref); ok && v != cur {
				// A successor slipped in; retire it too (we are closing).
				v.retire()
			}
			cur.retire()
			c.lmu.Unlock()
		}
	}
	return nil
}

// lruRemove removes ref from the LRU if one exists (caller holds lmu).
func (c *Catalog) lruRemove(ref string) (*instance, bool) {
	if c.lru == nil {
		return nil, false
	}
	return c.lru.Remove(ref)
}
