package catalog

// Property-based model checking of the catalog lifecycle: a randomized
// sequence of query / hot-swap / pin-and-hold / release operations runs
// against a model that knows, at every step, which snapshot version each
// reference must be serving. The invariants:
//
//   - every response is byte-identical to a dedicated aligner over the
//     reference's modeled current snapshot (the single-index oracle);
//   - a pinned handle keeps serving its version's exact bytes even after
//     the instance was evicted or hot-swapped out underneath it;
//   - the bytes charged to the LRU never exceed the budget;
//   - after Close, new Acquires fail typed while held pins keep working.
//
// The sequential test drives the model deterministically (SwapPoll 0, ops
// from a seeded PRNG); the concurrent test relaxes the per-response
// assertion to "matches one of the reference's two version oracles" and
// exists to race eviction, hot-swap, and in-flight aligns under -race.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	meraligner "github.com/lbl-repro/meraligner"
)

// propWorld is the model: three references on disk, each flipping between
// two known snapshot versions (its own fixture and its successor's), with
// a resident oracle per version.
type propWorld struct {
	dir     string
	refs    []*testRef
	version map[string]int // modeled current version per ref: 0 or 1
}

// versionFix returns the fixture serving as version v of refs[i]: version 0
// is the reference's own genome, version 1 its successor's — two genuinely
// different indexes with different targets.
func (w *propWorld) versionFix(i, v int) *testRef {
	return w.refs[(i+v)%len(w.refs)]
}

func newPropWorld(t *testing.T) *propWorld {
	t.Helper()
	refs := makeRefs(t)
	return &propWorld{
		dir:     writeDir(t, refs),
		refs:    refs,
		version: map[string]int{refs[0].name: 0, refs[1].name: 0, refs[2].name: 0},
	}
}

// swap atomically replaces refs[i]'s snapshot with its other version —
// write-then-rename, the only replacement the serving contract allows.
func (w *propWorld) swap(t *testing.T, i int) {
	t.Helper()
	ref := w.refs[i]
	next := 1 - w.version[ref.name]
	tmp := filepath.Join(w.dir, fmt.Sprintf(".%s.tmp", ref.name))
	if err := os.WriteFile(tmp, w.versionFix(i, next).snap, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, ref.name+SnapshotExt)); err != nil {
		t.Fatal(err)
	}
	w.version[ref.name] = next
}

// oracleSAM is alignSAM without the test-goroutine dependency: safe to
// call from stress-test worker goroutines, which must not t.Fatal.
func oracleSAM(al *meraligner.Aligner, reads []meraligner.Seq) ([]byte, error) {
	res, err := al.Align(context.Background(), reads, qopts())
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := meraligner.WriteSAM(&buf, res, al.Targets(), reads); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// heldPin is a pinned handle plus the oracle of the version it pinned.
type heldPin struct {
	h      *Handle
	oracle *meraligner.Aligner
	ref    string
}

func TestPropertyRandomOpsMatchModel(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := newPropWorld(t)
			rng := rand.New(rand.NewSource(seed))

			// A budget of roughly two fixtures forces steady evictions among
			// three references without starving any single one.
			perRef := mappedBytes(t, w.dir, w.refs[0].name)
			budget := 2*perRef + perRef/2
			c, err := New(Options{Dir: w.dir, Budget: budget, Threads: 2, SwapPoll: 0})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			var held []heldPin
			defer func() {
				for _, p := range held {
					p.h.Release()
				}
			}()

			checkBudget := func(step int) {
				st := c.Stats()
				if st.ResidentBytes > budget {
					t.Fatalf("step %d: %d resident bytes charged over the %d budget", step, st.ResidentBytes, budget)
				}
				if st.OpenRefs > len(w.refs) {
					t.Fatalf("step %d: %d open refs of %d known", step, st.OpenRefs, len(w.refs))
				}
			}

			for step := 0; step < 80; step++ {
				i := rng.Intn(len(w.refs))
				ref := w.refs[i]
				fix := w.versionFix(i, w.version[ref.name])
				lo := rng.Intn(len(fix.ds.Reads) - 8)
				reads := fix.ds.Reads[lo : lo+4+rng.Intn(4)]

				switch op := rng.Intn(10); {
				case op < 5: // query: byte-identical to the modeled version's oracle
					got := acquireSAM(t, c, ref.name, reads)
					want := alignSAM(t, fix.oracle, reads)
					if !bytes.Equal(got, want) {
						t.Fatalf("step %d: %s (version %d) response diverged from its dedicated-aligner oracle", step, ref.name, w.version[ref.name])
					}
				case op < 7: // hot-swap the snapshot file
					w.swap(t, i)
				case op < 9: // pin and hold across future evictions/swaps
					if len(held) >= 4 {
						break
					}
					h, err := c.Acquire(ref.name)
					if err != nil {
						t.Fatalf("step %d: acquire %s: %v", step, ref.name, err)
					}
					held = append(held, heldPin{h: h, oracle: fix.oracle, ref: ref.name})
				default: // serve through the oldest held pin, then release it
					if len(held) == 0 {
						break
					}
					p := held[0]
					held = held[1:]
					got := alignSAM(t, p.h.Aligner(), reads)
					want := alignSAM(t, p.oracle, reads)
					if !bytes.Equal(got, want) {
						t.Fatalf("step %d: pinned %s handle diverged from the oracle of its pinned version", step, p.ref)
					}
					p.h.Release()
				}
				checkBudget(step)
			}

			// Held pins survive catalog Close; new acquires fail typed.
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			for _, p := range held {
				got := alignSAM(t, p.h.Aligner(), w.refs[0].ds.Reads[:3])
				want := alignSAM(t, p.oracle, w.refs[0].ds.Reads[:3])
				if !bytes.Equal(got, want) {
					t.Fatalf("pin on %s stopped serving its version's bytes after catalog Close", p.ref)
				}
				p.h.Release()
			}
			held = nil
			if _, err := c.Acquire(w.refs[0].name); !errors.Is(err, ErrCatalogClosed) {
				t.Fatalf("Acquire after Close: got %v, want ErrCatalogClosed", err)
			}
		})
	}
}

// TestPropertyConcurrentSwapEvictStress races queries, hot-swaps, and
// budget evictions across goroutines. Because swap timing is unordered
// relative to each query, the response assertion relaxes to: byte-identical
// to ONE of the reference's two version oracles — never a blend, never an
// error, never a read of a closed index. Run with -race.
func TestPropertyConcurrentSwapEvictStress(t *testing.T) {
	w := newPropWorld(t)
	perRef := mappedBytes(t, w.dir, w.refs[0].name)
	c, err := New(Options{Dir: w.dir, Budget: perRef + perRef/2, Threads: 2, SwapPoll: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	fail := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Swapper: flips each reference's snapshot back and forth. The model's
	// version map is written under swapMu only by this goroutine; queriers
	// never read it (they accept either version).
	var swapMu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for n := 0; n < 12; n++ {
			swapMu.Lock()
			w.swap(t, rng.Intn(len(w.refs)))
			swapMu.Unlock()
		}
	}()

	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for n := 0; n < 25; n++ {
				i := rng.Intn(len(w.refs))
				ref := w.refs[i]
				lo := rng.Intn(len(ref.ds.Reads) - 6)
				reads := ref.ds.Reads[lo : lo+5]

				h, err := c.Acquire(ref.name)
				if err != nil {
					fail("goroutine %d: acquire %s: %v", g, ref.name, err)
					return
				}
				got, err := oracleSAM(h.Aligner(), reads)
				h.Release()
				if err != nil {
					fail("goroutine %d: align on %s: %v", g, ref.name, err)
					return
				}
				wantA, errA := oracleSAM(w.versionFix(i, 0).oracle, reads)
				wantB, errB := oracleSAM(w.versionFix(i, 1).oracle, reads)
				if errA != nil || errB != nil {
					fail("goroutine %d: oracle align failed: %v / %v", g, errA, errB)
					return
				}
				if !bytes.Equal(got, wantA) && !bytes.Equal(got, wantB) {
					fail("goroutine %d: %s response matches neither version oracle", g, ref.name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	st := c.Stats()
	if budget := perRef + perRef/2; st.ResidentBytes > budget {
		t.Fatalf("%d resident bytes charged over the %d budget after stress", st.ResidentBytes, budget)
	}
	if st.Evictions == 0 {
		t.Error("stress run produced no evictions; budget pressure was never exercised")
	}
}
