// Package genome generates the synthetic data sets that stand in for the
// paper's real inputs (human NA12878, wheat W7984, E. coli K-12 MG1655).
//
// The generator controls exactly the parameters the evaluation phenomena
// depend on: genome size, repeat content (what makes wheat hard and creates
// multi-candidate seeds), contig length distribution (Meraculous output),
// read depth d, read length L, per-base error rate e (which sets the
// fraction (1-e)^L of reads eligible for the exact-match fast path), strand,
// paired-end insert geometry, and whether reads are emitted grouped by
// genome position (the Table I locality scenario) or pre-shuffled.
package genome

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/seqio"
)

// Profile parameterizes one synthetic data set.
type Profile struct {
	Name      string
	GenomeLen int

	// Repeat structure: RepeatFraction of the genome is covered by copies
	// of RepeatUnits distinct units of RepeatUnitLen bases each.
	RepeatFraction float64
	RepeatUnitLen  int
	RepeatUnits    int

	// Contigs (the alignment targets, as Meraculous would emit them).
	ContigMean int     // mean contig length
	ContigMin  int     // minimum contig length
	GapMean    int     // mean gap between consecutive contigs
	Uncovered  float64 // fraction of genome in regions with no contig at all

	// Reads (the queries).
	ReadLen   int
	Depth     float64 // coverage depth d
	ErrorRate float64 // per-base substitution probability e

	// Paired-end geometry (0 disables pairing).
	InsertMean int
	InsertSD   int

	// SortByPosition emits reads ordered by genome coordinate — the
	// grouped layout of the paper's original human input (Table I).
	SortByPosition bool

	Seed int64
}

// Validate reports profile errors.
func (p Profile) Validate() error {
	if p.GenomeLen < p.ReadLen || p.ReadLen <= 0 {
		return fmt.Errorf("genome: need GenomeLen >= ReadLen > 0, got %d/%d", p.GenomeLen, p.ReadLen)
	}
	if p.Depth <= 0 {
		return fmt.Errorf("genome: Depth must be positive")
	}
	if p.ErrorRate < 0 || p.ErrorRate >= 1 {
		return fmt.Errorf("genome: ErrorRate out of [0,1)")
	}
	if p.RepeatFraction < 0 || p.RepeatFraction >= 1 {
		return fmt.Errorf("genome: RepeatFraction out of [0,1)")
	}
	if p.InsertMean != 0 && p.InsertMean < p.ReadLen {
		return fmt.Errorf("genome: InsertMean %d < ReadLen %d", p.InsertMean, p.ReadLen)
	}
	return nil
}

// HumanLike is a scaled-down stand-in for the paper's human data set:
// modest repeat content, 101 bp reads, error rate chosen so that ~59% of
// reads are error-free — the fraction that took the exact-match fast path
// in §VI-C3 ((1-0.0052)^101 ≈ 0.59).
func HumanLike(genomeLen int) Profile {
	return Profile{
		Name:           "human-like",
		GenomeLen:      genomeLen,
		RepeatFraction: 0.05,
		RepeatUnitLen:  800,
		RepeatUnits:    12,
		ContigMean:     4000,
		ContigMin:      300,
		GapMean:        150,
		Uncovered:      0.06,
		ReadLen:        101,
		Depth:          20,
		ErrorRate:      0.0052,
		InsertMean:     238,
		InsertSD:       30,
		Seed:           1,
	}
}

// WheatLike mimics the hexaploid bread wheat data set: much higher repeat
// content, longer reads, deeper coverage — the grand-challenge workload.
func WheatLike(genomeLen int) Profile {
	return Profile{
		Name:           "wheat-like",
		GenomeLen:      genomeLen,
		RepeatFraction: 0.25,
		RepeatUnitLen:  1200,
		RepeatUnits:    30,
		ContigMean:     2500,
		ContigMin:      300,
		GapMean:        250,
		Uncovered:      0.10,
		ReadLen:        150,
		Depth:          28,
		ErrorRate:      0.004,
		InsertMean:     450,
		InsertSD:       60,
		Seed:           2,
	}
}

// EColiLike is the 4.64 Mbp E. coli K-12 MG1655 single-node data set of
// Fig 11 (seed length 19 in the paper's runs).
func EColiLike() Profile {
	return Profile{
		Name:           "ecoli-like",
		GenomeLen:      4_640_000,
		RepeatFraction: 0.02,
		RepeatUnitLen:  700,
		RepeatUnits:    7,
		ContigMean:     60_000,
		ContigMin:      1000,
		GapMean:        200,
		Uncovered:      0.02,
		ReadLen:        100,
		Depth:          16,
		ErrorRate:      0.005,
		Seed:           3,
	}
}

// ReadOrigin is the ground truth of one simulated read.
type ReadOrigin struct {
	Pos    int  // genome coordinate of the read's first base (forward sense)
	RC     bool // read sequenced from the reverse strand
	Errors int  // number of substituted bases
	Mate   int  // index of the mate read, -1 if unpaired
}

// DataSet is one generated workload.
type DataSet struct {
	Profile Profile
	Genome  dna.Packed
	Contigs []seqio.Seq // alignment targets, exact genome substrings
	// ContigPos[i] is the genome coordinate of Contigs[i].
	ContigPos []int
	Reads     []seqio.Seq
	Origins   []ReadOrigin
}

// Generate builds the data set deterministically from the profile's seed.
func Generate(p Profile) (*DataSet, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	ds := &DataSet{Profile: p}
	ds.Genome = buildGenome(rng, p)
	ds.Contigs, ds.ContigPos = buildContigs(rng, p, ds.Genome)
	ds.Reads, ds.Origins = buildReads(rng, p, ds.Genome)
	return ds, nil
}

// buildGenome lays random sequence, then pastes repeat-unit copies until
// the requested fraction of coordinates is covered by repeat material.
func buildGenome(rng *rand.Rand, p Profile) dna.Packed {
	codes := make([]byte, p.GenomeLen)
	for i := range codes {
		codes[i] = byte(rng.Intn(4))
	}
	if p.RepeatFraction > 0 && p.RepeatUnits > 0 && p.RepeatUnitLen > 0 && p.RepeatUnitLen < p.GenomeLen {
		units := make([][]byte, p.RepeatUnits)
		for i := range units {
			u := make([]byte, p.RepeatUnitLen)
			for j := range u {
				u[j] = byte(rng.Intn(4))
			}
			units[i] = u
		}
		covered := 0
		budget := int(p.RepeatFraction * float64(p.GenomeLen))
		for covered < budget {
			u := units[rng.Intn(len(units))]
			pos := rng.Intn(p.GenomeLen - len(u))
			copy(codes[pos:], u)
			covered += len(u)
		}
	}
	return dna.FromCodes(codes)
}

// buildContigs walks the genome emitting contig/gap alternations, skipping
// occasional long uncovered stretches.
func buildContigs(rng *rand.Rand, p Profile, g dna.Packed) ([]seqio.Seq, []int) {
	var contigs []seqio.Seq
	var starts []int
	pos := 0
	id := 0
	for pos < g.Len() {
		// Occasionally skip an uncovered region (no contigs assembled).
		if rng.Float64() < p.Uncovered {
			skip := p.ContigMean + rng.Intn(p.ContigMean+1)
			pos += skip
			continue
		}
		clen := p.ContigMin + int(rng.ExpFloat64()*float64(p.ContigMean-p.ContigMin))
		if clen > g.Len()-pos {
			clen = g.Len() - pos
		}
		if clen >= p.ContigMin {
			contigs = append(contigs, seqio.Seq{
				Name: fmt.Sprintf("contig_%d", id),
				Seq:  g.Slice(pos, pos+clen),
			})
			starts = append(starts, pos)
			id++
		}
		pos += clen + 1 + int(rng.ExpFloat64()*float64(p.GapMean))
	}
	return contigs, starts
}

// buildReads samples reads (or pairs) uniformly over the genome, applies
// the substitution error model and strand, and orders them by position or
// shuffles them per the profile.
func buildReads(rng *rand.Rand, p Profile, g dna.Packed) ([]seqio.Seq, []ReadOrigin) {
	n := int(p.Depth * float64(g.Len()) / float64(p.ReadLen))
	if n < 1 {
		n = 1
	}
	paired := p.InsertMean > 0
	if paired && n%2 == 1 {
		n++
	}
	var recs []rec
	emit := func(pos int, rc bool, mate int) rec {
		sub := g.Slice(pos, pos+p.ReadLen)
		if rc {
			sub = sub.ReverseComplement()
		}
		mut := sub.Mutate(rng, p.ErrorRate)
		errs, _ := dna.HammingDistance(sub, mut)
		return rec{
			seq: seqio.Seq{Seq: mut},
			org: ReadOrigin{Pos: pos, RC: rc, Errors: errs, Mate: mate},
		}
	}
	if paired {
		for len(recs) < n {
			insert := p.InsertMean + int(rng.NormFloat64()*float64(p.InsertSD))
			if insert < p.ReadLen {
				insert = p.ReadLen
			}
			pos := rng.Intn(g.Len() - insert + 1)
			i := len(recs)
			r1 := emit(pos, false, i+1)
			r2 := emit(pos+insert-p.ReadLen, true, i)
			recs = append(recs, r1, r2)
		}
	} else {
		for len(recs) < n {
			pos := rng.Intn(g.Len() - p.ReadLen + 1)
			recs = append(recs, emit(pos, rng.Float64() < 0.5, -1))
		}
	}
	if p.SortByPosition {
		// Stable grouping by position, keeping mates adjacent: sort pairs
		// by the first mate's position.
		sortRecsByPos(recs, paired)
	}
	reads := make([]seqio.Seq, len(recs))
	origins := make([]ReadOrigin, len(recs))
	for i, r := range recs {
		strand := "+"
		if r.org.RC {
			strand = "-"
		}
		r.seq.Name = fmt.Sprintf("read_%d_pos%d%s", i, r.org.Pos, strand)
		reads[i] = r.seq
		origins[i] = r.org
	}
	return reads, origins
}

// rec pairs a generated read with its ground truth during construction.
type rec struct {
	seq seqio.Seq
	org ReadOrigin
}

func sortRecsByPos(recs []rec, paired bool) {
	if !paired {
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].org.Pos < recs[j].org.Pos })
		return
	}
	// Sort pair blocks of two by the first mate's position, keeping mates
	// adjacent, then fix mate indices.
	nb := len(recs) / 2
	order := make([]int, nb)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return recs[2*order[a]].org.Pos < recs[2*order[b]].org.Pos
	})
	out := make([]rec, 0, len(recs))
	for _, b := range order {
		out = append(out, recs[2*b], recs[2*b+1])
	}
	for i := 0; i < len(out); i += 2 {
		out[i].org.Mate = i + 1
		out[i+1].org.Mate = i
	}
	copy(recs, out)
}

// ExpectedExactFraction returns (1-e)^L — the fraction of reads with zero
// errors, eligible for the exact-match fast path of §IV-A.
func (p Profile) ExpectedExactFraction() float64 {
	return math.Pow(1-p.ErrorRate, float64(p.ReadLen))
}

// NumReads returns the read count the profile will generate.
func (p Profile) NumReads() int {
	n := int(p.Depth * float64(p.GenomeLen) / float64(p.ReadLen))
	if n < 1 {
		n = 1
	}
	if p.InsertMean > 0 && n%2 == 1 {
		n++
	}
	return n
}

// SeedFrequency returns the paper's expected seed frequency in the read set
// f = d * (1 - (k-1)/L) (§III-B).
func SeedFrequency(d float64, k, L int) float64 {
	return d * (1 - float64(k-1)/float64(L))
}

// Shuffle permutes reads (and the parallel origins slice) uniformly — the
// load-balancing permutation of §IV-B, applied to the input file.
func Shuffle(rng *rand.Rand, reads []seqio.Seq, origins []ReadOrigin) {
	for i := len(reads) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		reads[i], reads[j] = reads[j], reads[i]
		if origins != nil {
			origins[i], origins[j] = origins[j], origins[i]
		}
	}
}
