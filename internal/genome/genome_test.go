package genome

import (
	"math"
	"math/rand"
	"testing"

	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/kmer"
)

func smallProfile() Profile {
	p := HumanLike(200_000)
	p.Depth = 8
	return p
}

func TestValidate(t *testing.T) {
	if err := smallProfile().Validate(); err != nil {
		t.Errorf("small profile invalid: %v", err)
	}
	bad := smallProfile()
	bad.ReadLen = 0
	if bad.Validate() == nil {
		t.Error("ReadLen=0 accepted")
	}
	bad = smallProfile()
	bad.Depth = 0
	if bad.Validate() == nil {
		t.Error("Depth=0 accepted")
	}
	bad = smallProfile()
	bad.ErrorRate = 1.5
	if bad.Validate() == nil {
		t.Error("ErrorRate=1.5 accepted")
	}
	bad = smallProfile()
	bad.InsertMean = 50 // < ReadLen
	if bad.Validate() == nil {
		t.Error("InsertMean < ReadLen accepted")
	}
	bad = smallProfile()
	bad.RepeatFraction = 1.0
	if bad.Validate() == nil {
		t.Error("RepeatFraction=1 accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Genome.Equal(b.Genome) {
		t.Error("genome not deterministic")
	}
	if len(a.Reads) != len(b.Reads) {
		t.Fatalf("read counts differ: %d vs %d", len(a.Reads), len(b.Reads))
	}
	for i := range a.Reads {
		if !a.Reads[i].Seq.Equal(b.Reads[i].Seq) {
			t.Fatalf("read %d differs", i)
		}
	}
}

func TestContigsAreGenomeSubstrings(t *testing.T) {
	ds, err := Generate(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Contigs) < 5 {
		t.Fatalf("only %d contigs", len(ds.Contigs))
	}
	for i, c := range ds.Contigs {
		pos := ds.ContigPos[i]
		if !ds.Genome.MatchesAt(c.Seq, pos) {
			t.Fatalf("contig %d does not match genome at %d", i, pos)
		}
		if c.Seq.Len() < ds.Profile.ContigMin {
			t.Fatalf("contig %d shorter than ContigMin: %d", i, c.Seq.Len())
		}
	}
	// Contigs must be ordered and non-overlapping.
	for i := 1; i < len(ds.ContigPos); i++ {
		if ds.ContigPos[i] <= ds.ContigPos[i-1]+ds.Contigs[i-1].Seq.Len()-1 {
			t.Fatalf("contigs %d and %d overlap", i-1, i)
		}
	}
}

func TestReadsMatchGroundTruth(t *testing.T) {
	p := smallProfile()
	p.ErrorRate = 0 // so reads are exact substrings
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ds.Reads {
		org := ds.Origins[i]
		want := ds.Genome.Slice(org.Pos, org.Pos+p.ReadLen)
		got := r.Seq
		if org.RC {
			got = got.ReverseComplement()
		}
		if !got.Equal(want) {
			t.Fatalf("read %d does not match genome at %d (rc=%v)", i, org.Pos, org.RC)
		}
		if org.Errors != 0 {
			t.Fatalf("read %d has errors with rate 0", i)
		}
	}
}

func TestErrorRateProducesExpectedExactFraction(t *testing.T) {
	p := smallProfile()
	p.Depth = 15
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	exact := 0
	for _, o := range ds.Origins {
		if o.Errors == 0 {
			exact++
		}
	}
	got := float64(exact) / float64(len(ds.Origins))
	want := p.ExpectedExactFraction()
	if math.Abs(got-want) > 0.04 {
		t.Errorf("exact fraction = %.3f, expected ~%.3f", got, want)
	}
	// The human-like profile is tuned to the paper's ~59%.
	if want < 0.55 || want > 0.63 {
		t.Errorf("human-like expected exact fraction %.3f not near 0.59", want)
	}
}

func TestPairedReads(t *testing.T) {
	p := smallProfile()
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Reads)%2 != 0 {
		t.Fatal("odd read count for paired profile")
	}
	for i := 0; i < len(ds.Origins); i += 2 {
		a, b := ds.Origins[i], ds.Origins[i+1]
		if a.Mate != i+1 || b.Mate != i {
			t.Fatalf("pair %d mate indices wrong: %d,%d", i/2, a.Mate, b.Mate)
		}
		if a.RC || !b.RC {
			t.Fatalf("pair %d strands wrong (want fwd/rev)", i/2)
		}
		insert := (b.Pos + p.ReadLen) - a.Pos
		if insert < p.ReadLen || insert > p.InsertMean+6*p.InsertSD {
			t.Fatalf("pair %d insert %d out of range", i/2, insert)
		}
	}
}

func TestUnpairedReads(t *testing.T) {
	p := smallProfile()
	p.InsertMean = 0
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	rcCount := 0
	for _, o := range ds.Origins {
		if o.Mate != -1 {
			t.Fatal("unpaired read has a mate")
		}
		if o.RC {
			rcCount++
		}
	}
	frac := float64(rcCount) / float64(len(ds.Origins))
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("RC fraction = %.2f, want ~0.5", frac)
	}
}

func TestSortByPositionGroupsReads(t *testing.T) {
	p := smallProfile()
	p.SortByPosition = true
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Pair blocks must be non-decreasing in first-mate position.
	for i := 2; i < len(ds.Origins); i += 2 {
		if ds.Origins[i].Pos < ds.Origins[i-2].Pos {
			t.Fatalf("pair block at %d out of order: %d < %d", i, ds.Origins[i].Pos, ds.Origins[i-2].Pos)
		}
	}
	// Mates stay adjacent.
	for i := 0; i < len(ds.Origins); i += 2 {
		if ds.Origins[i].Mate != i+1 {
			t.Fatalf("mate adjacency broken at %d", i)
		}
	}
}

func TestShuffleBreaksOrdering(t *testing.T) {
	p := smallProfile()
	p.SortByPosition = true
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	Shuffle(rng, ds.Reads, ds.Origins)
	// After shuffling, consecutive positions should frequently decrease.
	desc := 0
	for i := 1; i < len(ds.Origins); i++ {
		if ds.Origins[i].Pos < ds.Origins[i-1].Pos {
			desc++
		}
	}
	if desc < len(ds.Origins)/4 {
		t.Errorf("shuffle left reads mostly ordered (%d/%d descents)", desc, len(ds.Origins))
	}
	// Names still track origins.
	for i, r := range ds.Reads {
		if r.Seq.Len() != p.ReadLen {
			t.Fatalf("read %d length %d", i, r.Seq.Len())
		}
	}
}

func TestRepeatContentRaisesSharedSeeds(t *testing.T) {
	low := Profile{Name: "low", GenomeLen: 150_000, ReadLen: 100, Depth: 1,
		ContigMean: 3000, ContigMin: 200, GapMean: 100, Seed: 4}
	high := low
	high.Name = "high"
	high.RepeatFraction = 0.3
	high.RepeatUnitLen = 900
	high.RepeatUnits = 10

	repeatSeeds := func(p Profile) float64 {
		ds, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[kmer.Kmer]int{}
		for _, c := range ds.Contigs {
			for _, s := range kmer.Extract(c.Seq, 31, nil) {
				counts[s]++
			}
		}
		rep, tot := 0, 0
		for _, n := range counts {
			tot++
			if n > 1 {
				rep++
			}
		}
		return float64(rep) / float64(tot)
	}
	lo, hi := repeatSeeds(low), repeatSeeds(high)
	if hi < 4*lo+0.01 {
		t.Errorf("repeat fraction did not raise shared seeds: low %.4f high %.4f", lo, hi)
	}
}

func TestSeedFrequency(t *testing.T) {
	// §III-B example: d=100, L=100, k=51 -> f = 100*(1-50/100) = 50.
	if f := SeedFrequency(100, 51, 100); f != 50 {
		t.Errorf("SeedFrequency = %v, want 50", f)
	}
}

func TestNumReads(t *testing.T) {
	p := smallProfile()
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Reads) != p.NumReads() {
		t.Errorf("NumReads() = %d, generated %d", p.NumReads(), len(ds.Reads))
	}
}

func TestProfilesValid(t *testing.T) {
	for _, p := range []Profile{HumanLike(1_000_000), WheatLike(1_000_000), EColiLike()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestGenerateGenomeHasRepeats(t *testing.T) {
	p := WheatLike(120_000)
	p.Depth = 1
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// The genome must contain at least one repeated 51-mer.
	counts := map[kmer.Kmer]int{}
	rep := 0
	for _, s := range kmer.Extract(ds.Genome, 51, nil) {
		counts[s]++
		if counts[s] == 2 {
			rep++
		}
	}
	if rep == 0 {
		t.Error("wheat-like genome contains no repeated 51-mers")
	}
}

func TestGC(t *testing.T) {
	ds, err := Generate(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	if gc := ds.Genome.GC(); gc < 0.45 || gc > 0.55 {
		t.Errorf("uniform random genome GC = %.3f, want ~0.5", gc)
	}
	_ = dna.Packed{}
}

func BenchmarkGenerateHumanLike1M(b *testing.B) {
	p := HumanLike(1_000_000)
	p.Depth = 5
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}
