// Package baseline implements the competing aligners of §VI-D — a
// BWA-mem-like and a Bowtie2-like seed-and-extend mapper over a serially
// constructed FM-index — plus the pMap-style execution model (one master
// partitioning reads, index replicated per instance, instances bounded by
// node memory) used for Table II and the single data points of Fig 1.
//
// The reimplementations reproduce the structural properties the paper's
// comparison rests on: (1) index construction is SERIAL, (2) every pMap
// instance must hold a full index replica, limiting instances per node,
// (3) the mapping phase is embarrassingly parallel over reads. Alignment
// quality machinery (chaining, mate rescue, quality scores) is out of
// scope; seeding parameters mirror the paper's configuration (minimum seed
// length 51 for BWA-mem, 31 + --very-fast for Bowtie2).
package baseline

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lbl-repro/meraligner/internal/align"
	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/fmindex"
	"github.com/lbl-repro/meraligner/internal/seqio"
)

// Tool selects the baseline flavor.
type Tool int

const (
	// BWAMemLike mimics BWA-mem with minimum seed length 51 (§VI-D).
	BWAMemLike Tool = iota
	// Bowtie2Like mimics Bowtie2 --very-fast with seed length 31.
	Bowtie2Like
)

func (t Tool) String() string {
	if t == BWAMemLike {
		return "bwamem-like"
	}
	return "bowtie2-like"
}

// Options parameterizes a baseline mapper.
type Options struct {
	Tool       Tool
	SeedLen    int
	SeedStride int
	MaxOcc     int // seeds with more occurrences are skipped
	Scoring    align.Scoring
	MinScore   int // 0 defaults to SeedLen
	ExtendPad  int
}

// BWAMemOptions returns the paper's BWA-mem configuration.
func BWAMemOptions() Options {
	return Options{Tool: BWAMemLike, SeedLen: 51, SeedStride: 17, MaxOcc: 500,
		Scoring: align.DefaultScoring, ExtendPad: 24}
}

// Bowtie2Options returns the paper's Bowtie2 --very-fast configuration.
func Bowtie2Options() Options {
	return Options{Tool: Bowtie2Like, SeedLen: 31, SeedStride: 16, MaxOcc: 200,
		Scoring: align.DefaultScoring, ExtendPad: 24}
}

func (o Options) minScore() int {
	if o.MinScore > 0 {
		return o.MinScore
	}
	return o.SeedLen
}

// Alignment is one baseline-reported alignment.
type Alignment struct {
	Query  int32
	Target int32
	RC     bool
	Score  int32
	QStart int32
	QEnd   int32
	TStart int32
	TEnd   int32
}

// Ref is the indexed reference: the FM-index over the concatenation of all
// targets plus the contig boundary table.
type Ref struct {
	FM      *fmindex.FM
	text    []byte  // concatenated 2-bit codes of all targets
	starts  []int32 // starts[i] = offset of target i; starts[n] = len(text)
	targets []seqio.Seq

	BuildWall time.Duration // real serial construction time
}

// BuildIndex constructs the reference index serially — mirroring the serial
// `bwa index` / `bowtie2-build` step that dominates Table II.
func BuildIndex(targets []seqio.Seq) (*Ref, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("baseline: no targets")
	}
	start := time.Now()
	total := 0
	for _, t := range targets {
		total += t.Seq.Len()
	}
	r := &Ref{targets: targets, text: make([]byte, 0, total), starts: make([]int32, 0, len(targets)+1)}
	for _, t := range targets {
		r.starts = append(r.starts, int32(len(r.text)))
		r.text = t.Seq.AppendCodes(r.text)
	}
	r.starts = append(r.starts, int32(len(r.text)))
	fm, err := fmindex.New(r.text)
	if err != nil {
		return nil, err
	}
	r.FM = fm
	r.BuildWall = time.Since(start)
	return r, nil
}

// NumTargets returns the number of indexed targets.
func (r *Ref) NumTargets() int { return len(r.targets) }

// TextLen returns the concatenated reference length.
func (r *Ref) TextLen() int { return len(r.text) }

// contigOf maps a concatenated-text position to (target, offset).
func (r *Ref) contigOf(pos int32) (int32, int32) {
	i := sort.Search(len(r.starts)-1, func(i int) bool { return r.starts[i+1] > pos })
	return int32(i), pos - r.starts[i]
}

// targetCodes returns the code slice of target t (a view into the text).
func (r *Ref) targetCodes(t int32) []byte { return r.text[r.starts[t]:r.starts[t+1]] }

// MapStats tallies one mapping run.
type MapStats struct {
	Aligned         int64
	TotalAlignments int64
	SWCalls         int64
	SWCells         int64
	SeedSearches    int64
}

type baselineCand struct {
	target int32
	diag   int32
	rc     bool
}

// MapRead aligns one read against the reference on both strands, returning
// its alignments (qi is recorded in the output records).
func (r *Ref) MapRead(qi int32, q dna.Packed, opt Options, st *MapStats) []Alignment {
	L := q.Len()
	if L < opt.SeedLen {
		return nil
	}
	var out []Alignment
	seen := map[baselineCand]struct{}{}
	for _, rc := range []bool{false, true} {
		var qc []byte
		if rc {
			qc = q.ReverseComplement().Codes()
		} else {
			qc = q.Codes()
		}
		// Seed positions: fixed stride plus a final seed flush at the end
		// of the read so the tail is always covered.
		for s := 0; ; s += opt.SeedStride {
			if s+opt.SeedLen > L {
				if s-opt.SeedStride+opt.SeedLen < L { // tail seed
					s = L - opt.SeedLen
				} else {
					break
				}
			}
			atomic.AddInt64(&st.SeedSearches, 1)
			pat := qc[s : s+opt.SeedLen]
			lo, hi := r.FM.Count(pat)
			n := int(hi - lo)
			if n == 0 || (opt.MaxOcc > 0 && n > opt.MaxOcc) {
				if s == L-opt.SeedLen {
					break
				}
				continue
			}
			for i := 0; i < n; i++ {
				pos := r.FM.TextPos(lo + int32(i))
				tgt, off := r.contigOf(pos)
				if int(off)+opt.SeedLen > len(r.targetCodes(tgt)) {
					continue // seed spans a contig boundary
				}
				key := baselineCand{target: tgt, diag: off - int32(s), rc: rc}
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				tc := r.targetCodes(tgt)
				res := align.ExtendSeed(qc, tc, s, int(off), opt.SeedLen, opt.Scoring, opt.ExtendPad)
				winLo := int(off) - s - opt.ExtendPad
				if winLo < 0 {
					winLo = 0
				}
				winHi := int(off) + (L - s) + opt.ExtendPad
				if winHi > len(tc) {
					winHi = len(tc)
				}
				atomic.AddInt64(&st.SWCalls, 1)
				atomic.AddInt64(&st.SWCells, align.Cells(L, winHi-winLo))
				if res.Score < opt.minScore() {
					continue
				}
				dup := false
				for _, a := range out {
					if a.Target == tgt && a.RC == rc && int(a.TStart) == res.TStart && int(a.QStart) == res.QStart {
						dup = true
						break
					}
				}
				if !dup {
					out = append(out, Alignment{
						Query: qi, Target: tgt, RC: rc, Score: int32(res.Score),
						QStart: int32(res.QStart), QEnd: int32(res.QEnd),
						TStart: int32(res.TStart), TEnd: int32(res.TEnd),
					})
				}
			}
			if s == L-opt.SeedLen {
				break
			}
		}
	}
	if len(out) > 0 {
		atomic.AddInt64(&st.Aligned, 1)
		atomic.AddInt64(&st.TotalAlignments, int64(len(out)))
	}
	return out
}

// SingleNodeResult is one Fig 11 measurement: serial index construction
// plus threaded mapping on the host.
type SingleNodeResult struct {
	Tool       Tool
	Threads    int
	BuildWall  time.Duration // serial
	MapWall    time.Duration // parallel over reads
	Stats      MapStats
	SearchOps  fmindex.Ops // FM probes + locate steps during mapping
	BuildOps   fmindex.Ops // construction work
	IndexBytes int64       // replica size a pMap instance must hold
}

// TotalWall returns build + map, the Fig 11 y-axis.
func (s SingleNodeResult) TotalWall() time.Duration { return s.BuildWall + s.MapWall }

// RunSingleNode builds the index serially and maps all reads with the given
// number of real goroutines, measuring wall-clock time for both phases.
func RunSingleNode(threads int, targets, reads []seqio.Seq, opt Options) (*SingleNodeResult, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("baseline: threads must be positive")
	}
	ref, err := BuildIndex(targets)
	if err != nil {
		return nil, err
	}
	res := &SingleNodeResult{Tool: opt.Tool, Threads: threads, BuildWall: ref.BuildWall,
		BuildOps: ref.FM.BuildOps, IndexBytes: ref.FM.IndexBytes()}

	opsBefore := ref.FM.Ops
	start := time.Now()
	var next int64
	var wg sync.WaitGroup
	workers := threads
	if workers > len(reads) {
		workers = len(reads)
	}
	const block = 64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, block)) - block
				if lo >= len(reads) {
					return
				}
				hi := min(lo+block, len(reads))
				for i := lo; i < hi; i++ {
					r := reads[i]
					_ = ref.MapRead(int32(i), r.Seq, opt, &res.Stats)
				}
			}
		}()
	}
	wg.Wait()
	res.MapWall = time.Since(start)
	res.SearchOps = fmindex.Ops{
		FMProbes:    ref.FM.Ops.FMProbes - opsBefore.FMProbes,
		LocateSteps: ref.FM.Ops.LocateSteps - opsBefore.LocateSteps,
	}
	runtime.KeepAlive(ref)
	return res, nil
}
