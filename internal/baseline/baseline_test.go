package baseline

import (
	"math/rand"
	"testing"

	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/fmindex"
	"github.com/lbl-repro/meraligner/internal/genome"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/upc"
)

func testData(t testing.TB, genomeLen int, depth float64) *genome.DataSet {
	p := genome.EColiLike()
	p.GenomeLen = genomeLen
	p.Depth = depth
	p.ContigMean = max(2000, genomeLen/20) // keep contigs much smaller than the test genome
	p.ContigMin = 500
	ds, err := genome.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Contigs) == 0 {
		t.Fatal("test workload produced no contigs")
	}
	return ds
}

func TestBuildIndex(t *testing.T) {
	ds := testData(t, 50_000, 1)
	ref, err := BuildIndex(ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range ds.Contigs {
		total += c.Seq.Len()
	}
	if ref.TextLen() != total {
		t.Errorf("text length %d, want %d", ref.TextLen(), total)
	}
	if ref.BuildWall <= 0 {
		t.Error("build wall not measured")
	}
	if ref.FM.IndexBytes() <= int64(total) {
		t.Error("index bytes implausibly small")
	}
	if _, err := BuildIndex(nil); err == nil {
		t.Error("empty target set accepted")
	}
}

func TestContigOf(t *testing.T) {
	targets := []seqio.Seq{
		{Name: "a", Seq: dna.MustPack("ACGTACGTAC")}, // [0,10)
		{Name: "b", Seq: dna.MustPack("TTTTT")},      // [10,15)
		{Name: "c", Seq: dna.MustPack("GGGGGGG")},    // [15,22)
	}
	ref, err := BuildIndex(targets)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ pos, tgt, off int32 }{
		{0, 0, 0}, {9, 0, 9}, {10, 1, 0}, {14, 1, 4}, {15, 2, 0}, {21, 2, 6},
	}
	for _, c := range cases {
		tgt, off := ref.contigOf(c.pos)
		if tgt != c.tgt || off != c.off {
			t.Errorf("contigOf(%d) = (%d,%d), want (%d,%d)", c.pos, tgt, off, c.tgt, c.off)
		}
	}
}

func TestMapReadFindsOrigin(t *testing.T) {
	p := genome.EColiLike()
	p.GenomeLen = 80_000
	p.Depth = 2
	p.ErrorRate = 0
	ds, err := genome.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildIndex(ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	opt := Bowtie2Options()
	var st MapStats

	type iv struct{ start, end, idx int }
	var ivs []iv
	for i, pos := range ds.ContigPos {
		ivs = append(ivs, iv{pos, pos + ds.Contigs[i].Seq.Len(), i})
	}
	L := p.ReadLen
	checked, missed := 0, 0
	for qi, org := range ds.Origins {
		var tgt, tOff int
		inside := false
		for _, v := range ivs {
			if org.Pos >= v.start && org.Pos+L <= v.end {
				tgt, tOff, inside = v.idx, org.Pos-v.start, true
				break
			}
		}
		if !inside {
			continue
		}
		checked++
		found := false
		for _, a := range ref.MapRead(int32(qi), ds.Reads[qi].Seq, opt, &st) {
			if int(a.Target) == tgt && a.RC == org.RC && int(a.TStart) == tOff && int(a.Score) == L {
				found = true
				break
			}
		}
		if !found {
			missed++
		}
		if checked >= 300 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no reads inside contigs")
	}
	if missed > 0 {
		t.Errorf("baseline missed %d/%d error-free reads", missed, checked)
	}
}

func TestMapReadShortRead(t *testing.T) {
	ds := testData(t, 30_000, 0.2)
	ref, err := BuildIndex(ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	var st MapStats
	if out := ref.MapRead(0, dna.MustPack("ACGT"), BWAMemOptions(), &st); out != nil {
		t.Error("short read aligned")
	}
}

func TestMaxOccSkipsRepetitiveSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	unit := dna.Random(rng, 300)
	var parts []dna.Packed
	for i := 0; i < 40; i++ {
		parts = append(parts, unit)
	}
	targets := []seqio.Seq{{Name: "rep", Seq: dna.Concat(parts...)}}
	ref, err := BuildIndex(targets)
	if err != nil {
		t.Fatal(err)
	}
	read := seqio.Seq{Name: "q", Seq: unit.Slice(0, 100)}

	run := func(maxOcc int) MapStats {
		var st MapStats
		opt := Bowtie2Options()
		opt.MaxOcc = maxOcc
		ref.MapRead(0, read.Seq, opt, &st)
		return st
	}
	unlimited := run(0)
	capped := run(5)
	if capped.SWCalls >= unlimited.SWCalls {
		t.Errorf("MaxOcc did not reduce SW calls: %d vs %d", capped.SWCalls, unlimited.SWCalls)
	}
}

func TestRunSingleNodeScales(t *testing.T) {
	ds := testData(t, 120_000, 3)
	opt := Bowtie2Options()
	r1, err := RunSingleNode(1, ds.Contigs, ds.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunSingleNode(4, ds.Contigs, ds.Reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Aligned != r4.Stats.Aligned {
		t.Errorf("thread count changed results: %d vs %d", r1.Stats.Aligned, r4.Stats.Aligned)
	}
	if r1.Stats.Aligned == 0 {
		t.Error("nothing aligned")
	}
	// 4 threads should map meaningfully faster than 1 (generous bound for
	// noisy CI machines).
	if r4.MapWall > r1.MapWall {
		t.Logf("warning: 4-thread map (%v) not faster than 1-thread (%v)", r4.MapWall, r1.MapWall)
	}
	if r1.TotalWall() <= 0 || r1.SearchOps.FMProbes == 0 {
		t.Error("missing measurements")
	}
	if _, err := RunSingleNode(0, ds.Contigs, ds.Reads, opt); err == nil {
		t.Error("threads=0 accepted")
	}
}

func TestAlignedFractionReasonable(t *testing.T) {
	p := genome.EColiLike()
	p.GenomeLen = 150_000
	p.Depth = 3
	ds, err := genome.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSingleNode(4, ds.Contigs, ds.Reads, Bowtie2Options())
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Stats.Aligned) / float64(len(ds.Reads))
	// The paper's Bowtie2 aligned 95.8% on E. coli; with ~96% contig
	// coverage expect >= 0.85 here.
	if frac < 0.80 {
		t.Errorf("aligned fraction %.3f too low", frac)
	}
}

func TestPMapProjectionShape(t *testing.T) {
	ds := testData(t, 100_000, 2)
	res, err := RunSingleNode(2, ds.Contigs, ds.Reads, BWAMemOptions())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildIndex(ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}

	mach := upc.Edison(7680)
	m := DefaultPMapModel(mach)
	var readBytes int64
	for _, r := range ds.Reads {
		readBytes += int64(r.Seq.Len()*2 + 40) // FASTQ-ish
	}
	proj := m.Project(BWAMemLike, res.BuildOps, res.SearchOps, res.Stats,
		ref.FM.IndexBytes(), len(ds.Reads), readBytes)

	if proj.IndexBuildWall <= 0 || proj.MapWall <= 0 || proj.ReplicationWall <= 0 {
		t.Fatalf("projection has zero components: %+v", proj)
	}
	// The structural property of Table II: at high concurrency the SERIAL
	// index construction dominates the parallel mapping phase.
	if proj.IndexBuildWall < 5*proj.MapWall {
		t.Errorf("serial construction (%v) should dwarf parallel mapping (%v) at 7680 cores",
			proj.IndexBuildWall, proj.MapWall)
	}
	if proj.Total() <= proj.IndexBuildWall {
		t.Error("Total misses components")
	}
	// More cores shrink mapping but not construction.
	m2 := DefaultPMapModel(upc.Edison(480))
	proj480 := m2.Project(BWAMemLike, res.BuildOps, res.SearchOps, res.Stats,
		ref.FM.IndexBytes(), len(ds.Reads), readBytes)
	if proj480.MapWall <= proj.MapWall {
		t.Error("mapping should be slower on fewer cores")
	}
	if proj480.IndexBuildWall != proj.IndexBuildWall {
		t.Error("serial construction should not depend on core count")
	}
}

func TestToolString(t *testing.T) {
	if BWAMemLike.String() != "bwamem-like" || Bowtie2Like.String() != "bowtie2-like" {
		t.Error("Tool.String broken")
	}
}

func TestOptionsDefaults(t *testing.T) {
	if BWAMemOptions().SeedLen != 51 {
		t.Error("BWA-mem seed length should be 51 (paper §VI-D)")
	}
	if Bowtie2Options().SeedLen != 31 {
		t.Error("Bowtie2 seed length should be 31 (paper §VI-D)")
	}
	if BWAMemOptions().minScore() != 51 {
		t.Error("minScore default broken")
	}
}

var _ = fmindex.Ops{} // keep import for doc reference

func BenchmarkMapRead(b *testing.B) {
	ds := testData(b, 200_000, 0.5)
	ref, err := BuildIndex(ds.Contigs)
	if err != nil {
		b.Fatal(err)
	}
	opt := Bowtie2Options()
	var st MapStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref.MapRead(int32(i%len(ds.Reads)), ds.Reads[i%len(ds.Reads)].Seq, opt, &st)
	}
}

func BenchmarkBuildIndex200k(b *testing.B) {
	ds := testData(b, 200_000, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildIndex(ds.Contigs); err != nil {
			b.Fatal(err)
		}
	}
}
