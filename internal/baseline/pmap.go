package baseline

import (
	"github.com/lbl-repro/meraligner/internal/fmindex"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// PMapModel projects measured baseline work onto the simulated cluster,
// reproducing pMap's execution structure (§VI-D):
//
//   - the index is built SERIALLY on one core;
//   - every instance loads a full index replica from the filesystem; memory
//     limits instances to InstancesPerNode (the paper ran 4 instances of 6
//     threads because 24 replicas would not fit in 64 GB);
//   - a single master partitions and streams the reads to the instances
//     (reported separately and excluded from totals, exactly as the paper
//     does to keep the comparison fair);
//   - mapping is embarrassingly parallel over reads.
//
// Work quantities (sort ops, FM probes, locate steps, SW cells) are
// measured by actually running the baseline code on the workload; this
// model only converts them to simulated seconds with per-op costs
// consistent with the merAligner cost model.
type PMapModel struct {
	Mach               upc.MachineConfig
	InstancesPerNode   int
	ThreadsPerInstance int

	SortOpCost      float64 // serial suffix-array construction, per element move
	FMProbeCost     float64 // per occ probe (cache-missing random access)
	LocateStepCost  float64 // per LF step
	SWCellCost      float64
	SWSetupCost     float64
	PerReadOverhead float64 // parsing, output, dispatch per read
	MapEfficiency   float64 // parallel efficiency of the mapping phase
}

// DefaultPMapModel returns constants consistent with upc.Edison.
func DefaultPMapModel(mach upc.MachineConfig) PMapModel {
	return PMapModel{
		Mach:               mach,
		InstancesPerNode:   4,
		ThreadsPerInstance: 6,
		SortOpCost:         2.2e-8,
		FMProbeCost:        3.5e-8,
		LocateStepCost:     3.5e-8,
		SWCellCost:         mach.SWCellCost,
		SWSetupCost:        mach.SWSetupCost,
		PerReadOverhead:    2.0e-6,
		MapEfficiency:      0.85,
	}
}

// PMapResult is a projected cluster execution of one baseline tool.
type PMapResult struct {
	Tool              Tool
	Cores             int
	IndexBuildWall    float64 // serial construction (simulated seconds)
	ReplicationWall   float64 // index replica loading over the filesystem
	ReadPartitionWall float64 // master streaming reads (excluded from Total)
	MapWall           float64
}

// Total is construction + replication + mapping; read partitioning is
// excluded, matching the paper's fairness adjustment.
func (r PMapResult) Total() float64 {
	return r.IndexBuildWall + r.ReplicationWall + r.MapWall
}

// Project converts measured work into a projected cluster execution.
func (m PMapModel) Project(tool Tool, buildOps fmindex.Ops, searchOps fmindex.Ops,
	st MapStats, indexBytes int64, reads int, readBytes int64) PMapResult {

	res := PMapResult{Tool: tool, Cores: m.Mach.Threads}
	res.IndexBuildWall = float64(buildOps.SortOps) * m.SortOpCost

	instances := m.Mach.Nodes() * m.InstancesPerNode
	totalReplica := float64(indexBytes) * float64(instances)
	res.ReplicationWall = max(totalReplica/m.Mach.FSPeakBandwidth,
		float64(indexBytes)/m.Mach.FSClientBandwidth)

	res.ReadPartitionWall = float64(readBytes) / m.Mach.LinkBandwidth

	work := float64(searchOps.FMProbes)*m.FMProbeCost +
		float64(searchOps.LocateSteps)*m.LocateStepCost +
		float64(st.SWCells)*m.SWCellCost +
		float64(st.SWCalls)*m.SWSetupCost +
		float64(reads)*m.PerReadOverhead
	cores := float64(instances * m.ThreadsPerInstance)
	res.MapWall = work / (cores * m.MapEfficiency)
	return res
}
