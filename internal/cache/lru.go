// Package cache implements the paper's per-node software caches (§III-B):
// a seed-index cache holding lookup results for seeds owned by remote nodes,
// and a target cache holding remote target fragments. Each node dedicates a
// bounded number of bytes of its shared memory to each cache; any thread of
// the node may hit entries populated by its 23 siblings.
//
// It also provides the analytic seed-reuse model behind Fig 7: with f
// occurrences of a seed spread uniformly over m nodes, the probability that
// a node sees the seed at least twice (and therefore can hit its own cache)
// is 1 - (1 - 1/m)^(f-1) — the balls-into-bins argument of §III-B.
package cache

import (
	"container/list"
	"math"
	"math/rand"
	"sync"
)

// LRU is a byte-budgeted least-recently-used cache, safe for concurrent use
// by the threads of one simulated node.
type LRU[K comparable, V any] struct {
	mu   sync.Mutex
	cap  int64
	used int64
	ll   *list.List // front = most recent
	m    map[K]*list.Element

	hits, misses, evictions int64
}

type lruEntry[K comparable, V any] struct {
	key   K
	value V
	size  int64
}

// NewLRU returns a cache holding at most capBytes of entry payload.
// capBytes <= 0 yields an always-miss cache (the "no cache" ablation).
func NewLRU[K comparable, V any](capBytes int64) *LRU[K, V] {
	return &LRU[K, V]{cap: capBytes, ll: list.New(), m: make(map[K]*list.Element)}
}

// Get returns the cached value and whether it was present, updating recency
// and the hit/miss counters.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry[K, V]).value, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Contains reports presence without recency update or counter change.
func (c *LRU[K, V]) Contains(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.m[key]
	return ok
}

// Evicted is one entry pushed out of the cache by a Put: returned to the
// caller (rather than delivered via callback) so owners of refcounted
// values can finish releasing them outside every cache and caller lock.
type Evicted[K comparable, V any] struct {
	Key   K
	Value V
}

// Put inserts or refreshes an entry of the given payload size, evicting
// least-recently-used entries until it fits. Entries larger than the whole
// budget are not cached (stored == false). The evicted entries — never
// including the one just stored — are returned so the caller can dispose
// of their values; refreshing an existing key replaces its value without
// reporting the old one (the caller initiated the replacement and already
// holds both values).
func (c *LRU[K, V]) Put(key K, value V, size int64) (stored bool, evicted []Evicted[K, V]) {
	if size > c.cap || size < 0 {
		return false, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		ent := el.Value.(*lruEntry[K, V])
		c.used += size - ent.size
		ent.value, ent.size = value, size
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&lruEntry[K, V]{key: key, value: value, size: size})
		c.m[key] = el
		c.used += size
	}
	for c.used > c.cap {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*lruEntry[K, V])
		c.ll.Remove(back)
		delete(c.m, ent.key)
		c.used -= ent.size
		c.evictions++
		evicted = append(evicted, Evicted[K, V]{Key: ent.key, Value: ent.value})
	}
	return true, evicted
}

// Remove drops an entry without counting it as an eviction (the caller is
// retiring the value deliberately — e.g. a catalog hot-swap replacing a
// stale index). It reports whether the key was present and returns the
// removed value for disposal.
func (c *LRU[K, V]) Remove(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	ent := el.Value.(*lruEntry[K, V])
	c.ll.Remove(el)
	delete(c.m, key)
	c.used -= ent.size
	return ent.value, true
}

// Len returns the number of cached entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// UsedBytes returns the sum of cached entry sizes.
func (c *LRU[K, V]) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// CapBytes returns the configured byte budget.
func (c *LRU[K, V]) CapBytes() int64 { return c.cap }

// CounterSnapshot is a point-in-time view of cache effectiveness.
type CounterSnapshot struct{ Hits, Misses, Evictions int64 }

// Counters returns the accumulated hit/miss/eviction counts.
func (c *LRU[K, V]) Counters() CounterSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CounterSnapshot{Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}

// HitRate returns hits/(hits+misses), 0 when unused.
func (s CounterSnapshot) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// ReuseProbability is Fig 7's analytic curve: the probability that at least
// one of the other f-1 occurrences of a seed lands on the same node, with
// reads assigned uniformly at random to m = cores/ppn nodes.
func ReuseProbability(f float64, cores, ppn int) float64 {
	if f <= 1 {
		return 0
	}
	m := float64(cores) / float64(ppn)
	if m <= 1 {
		return 1
	}
	return 1 - math.Pow(1-1/m, f-1)
}

// SimulateReuse estimates the same probability by Monte Carlo: it tosses
// f-1 balls into m bins 'trials' times and reports the fraction of trials in
// which bin 0 received at least one ball. Validates the closed form.
func SimulateReuse(rng *rand.Rand, f, cores, ppn, trials int) float64 {
	m := cores / ppn
	if m <= 1 {
		return 1
	}
	hit := 0
	for t := 0; t < trials; t++ {
		for b := 0; b < f-1; b++ {
			if rng.Intn(m) == 0 {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(trials)
}
