package cache

import (
	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/kmer"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// Group holds the per-node seed-index caches and target caches of one run,
// mirroring Fig 6: every node dedicates part of its shared memory to a seed
// cache and a target cache; threads consult their own node's caches before
// going over the network.
//
// A Group with zero budgets degenerates to the "no cache" ablation of Fig 9:
// every Lookup/FetchTarget pays the full remote cost.
// groupShards splits every per-node cache into independent LRU shards to
// relieve host-side lock contention when many worker goroutines simulate
// the threads of one node. Capacity is divided evenly, so the simulated
// per-node budget is preserved.
const groupShards = 16

type Group struct {
	mach upc.MachineConfig
	// seed[node*groupShards+shard], targ likewise.
	seed []*LRU[kmer.Kmer, dht.LookupResult]
	targ []*LRU[int32, struct{}]

	// Per-thread communication-time attribution (Fig 9's split of the
	// aligning phase into seed-lookup vs target-fetch communication).
	// Indexed by thread ID; no locking needed.
	commSeed   []float64
	commTarget []float64
}

// NewGroup allocates caches for every node of the machine. seedBytes and
// targetBytes are PER-NODE budgets (the paper used 16 GB and 6 GB per node
// for the human runs).
func NewGroup(mach upc.MachineConfig, seedBytes, targetBytes int64) *Group {
	n := mach.Nodes() * groupShards
	g := &Group{
		mach:       mach,
		seed:       make([]*LRU[kmer.Kmer, dht.LookupResult], n),
		targ:       make([]*LRU[int32, struct{}], n),
		commSeed:   make([]float64, mach.Threads),
		commTarget: make([]float64, mach.Threads),
	}
	for i := 0; i < n; i++ {
		g.seed[i] = NewLRU[kmer.Kmer, dht.LookupResult](seedBytes / groupShards)
		g.targ[i] = NewLRU[int32, struct{}](targetBytes / groupShards)
	}
	return g
}

// seedShard returns the node's seed-cache shard holding s.
func (g *Group) seedShard(node int, s kmer.Kmer) *LRU[kmer.Kmer, dht.LookupResult] {
	return g.seed[node*groupShards+int(s.Hash()>>32)%groupShards]
}

// targShard returns the node's target-cache shard holding frag.
func (g *Group) targShard(node int, frag int32) *LRU[int32, struct{}] {
	return g.targ[node*groupShards+int(uint32(frag)*2654435761)%groupShards]
}

// Lookup performs a seed-index lookup through the node's seed cache.
// Cache hit: one on-node shared-memory access. Miss: the full remote lookup
// via ix.Lookup, after which remote-owned results are cached on the node.
func (g *Group) Lookup(t *upc.Thread, ix *dht.Index, s kmer.Kmer) (dht.LookupResult, bool) {
	before := t.Comm
	defer func() { g.commSeed[t.ID] += t.Comm - before }()
	owner := ix.OwnerOf(s)
	if t.SameNode(owner) {
		// The node owns the seed: the cache would only duplicate local
		// shared memory, so go straight to the table (cheap on-node probe).
		return ix.Lookup(t, s)
	}
	sc := g.seedShard(t.Node, s)
	if res, ok := sc.Get(s); ok {
		t.Counters.SeedLookups++
		t.Compute(g.mach.LookupCost)
		t.Get(t.ID, 0) // served from the node's shared segment
		return res, res.Count > 0
	}
	res, found := ix.Lookup(t, s)
	if found {
		sc.Put(s, res, int64(ix.LookupBytes(len(res.Locs))))
	} else {
		// Negative caching: absent seeds (error k-mers) are recorded with
		// Count == 0 so repeated misses of hot error seeds stay on-node.
		sc.Put(s, dht.LookupResult{}, int64(ix.LookupBytes(0)))
	}
	return res, found
}

// FetchTarget charges fetching fragment frag (of size fragBytes, owned by
// thread fragOwner) through the node's target cache. It returns true when
// the fetch was served by the cache. The caller supplies the real fragment
// data; only cost and residency are managed here.
func (g *Group) FetchTarget(t *upc.Thread, frag int32, fragBytes int, fragOwner int) bool {
	before := t.Comm
	defer func() { g.commTarget[t.ID] += t.Comm - before }()
	if t.SameNode(fragOwner) {
		t.Get(fragOwner, fragBytes)
		return false
	}
	tc := g.targShard(t.Node, frag)
	if _, ok := tc.Get(frag); ok {
		t.Get(t.ID, 0) // on-node shared-memory access to the cached copy
		return true
	}
	t.Get(fragOwner, fragBytes)
	tc.Put(frag, struct{}{}, int64(fragBytes))
	return false
}

// CommSeedMax returns the largest per-thread communication time spent on
// seed lookups (the red bars of Fig 9).
func (g *Group) CommSeedMax() float64 {
	var m float64
	for _, v := range g.commSeed {
		m = max(m, v)
	}
	return m
}

// CommTargetMax returns the largest per-thread communication time spent
// fetching target sequences (the blue bars of Fig 9).
func (g *Group) CommTargetMax() float64 {
	var m float64
	for _, v := range g.commTarget {
		m = max(m, v)
	}
	return m
}

// SeedCounters sums seed-cache statistics over all nodes.
func (g *Group) SeedCounters() CounterSnapshot {
	var s CounterSnapshot
	for _, c := range g.seed {
		cs := c.Counters()
		s.Hits += cs.Hits
		s.Misses += cs.Misses
		s.Evictions += cs.Evictions
	}
	return s
}

// TargetCounters sums target-cache statistics over all nodes.
func (g *Group) TargetCounters() CounterSnapshot {
	var s CounterSnapshot
	for _, c := range g.targ {
		cs := c.Counters()
		s.Hits += cs.Hits
		s.Misses += cs.Misses
		s.Evictions += cs.Evictions
	}
	return s
}
