package cache

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/kmer"
	"github.com/lbl-repro/meraligner/internal/upc"
)

func TestLRUBasic(t *testing.T) {
	c := NewLRU[string, int](100)
	if _, ok := c.Get("a"); ok {
		t.Error("hit on empty cache")
	}
	c.Put("a", 1, 10)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("Get(a) = %v,%v want 1,true", v, ok)
	}
	c.Put("a", 2, 10) // refresh
	if v, _ := c.Get("a"); v != 2 {
		t.Errorf("refresh failed, got %v", v)
	}
	if c.Len() != 1 || c.UsedBytes() != 10 {
		t.Errorf("Len=%d Used=%d, want 1,10", c.Len(), c.UsedBytes())
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := NewLRU[int, int](30)
	c.Put(1, 1, 10)
	c.Put(2, 2, 10)
	c.Put(3, 3, 10)
	c.Get(1)        // 1 now most recent; 2 is LRU
	c.Put(4, 4, 10) // evicts 2
	if _, ok := c.Get(2); ok {
		t.Error("LRU entry 2 not evicted")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %d wrongly evicted", k)
		}
	}
	if c.Counters().Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", c.Counters().Evictions)
	}
}

func TestLRUCapacityInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(capRaw uint16, ops uint8) bool {
		capBytes := int64(capRaw%500) + 1
		c := NewLRU[int, int](capBytes)
		for i := 0; i < int(ops); i++ {
			c.Put(rng.Intn(50), i, int64(rng.Intn(60)))
			if c.UsedBytes() > capBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLRURejectsOversized(t *testing.T) {
	c := NewLRU[int, int](10)
	c.Put(1, 1, 11)
	if c.Len() != 0 {
		t.Error("oversized entry cached")
	}
	c.Put(2, 2, -1)
	if c.Len() != 0 {
		t.Error("negative-size entry cached")
	}
}

func TestLRUZeroCapacityAlwaysMisses(t *testing.T) {
	c := NewLRU[int, int](0)
	c.Put(1, 1, 1)
	if _, ok := c.Get(1); ok {
		t.Error("zero-capacity cache stored an entry")
	}
	if c.Counters().HitRate() != 0 {
		t.Error("HitRate != 0 on always-miss cache")
	}
}

func TestLRUPutReportsEvicted(t *testing.T) {
	c := NewLRU[int, string](30)
	if stored, ev := c.Put(1, "a", 10); !stored || len(ev) != 0 {
		t.Errorf("Put(1) = %v,%v want true,none", stored, ev)
	}
	c.Put(2, "b", 10)
	c.Put(3, "c", 10)
	stored, ev := c.Put(4, "d", 25) // must push out 1, 2, 3 (oldest first)
	if !stored {
		t.Fatal("Put(4) not stored")
	}
	want := []Evicted[int, string]{{1, "a"}, {2, "b"}, {3, "c"}}
	if len(ev) != len(want) {
		t.Fatalf("evicted %v, want %v", ev, want)
	}
	for i := range want {
		if ev[i] != want[i] {
			t.Errorf("evicted[%d] = %v, want %v", i, ev[i], want[i])
		}
	}
	// Refreshing a present key never reports the replaced value.
	if _, ev := c.Put(4, "d2", 25); len(ev) != 0 {
		t.Errorf("refresh reported evictions: %v", ev)
	}
	// An oversized entry is refused without disturbing the cache.
	if stored, _ := c.Put(5, "e", 31); stored {
		t.Error("oversized entry reported as stored")
	}
	if _, ok := c.Get(4); !ok {
		t.Error("entry 4 lost after refused Put")
	}
}

func TestLRURemove(t *testing.T) {
	c := NewLRU[int, string](30)
	c.Put(1, "a", 10)
	c.Put(2, "b", 10)
	v, ok := c.Remove(1)
	if !ok || v != "a" {
		t.Errorf("Remove(1) = %q,%v want a,true", v, ok)
	}
	if _, ok := c.Remove(1); ok {
		t.Error("second Remove(1) reported present")
	}
	if c.UsedBytes() != 10 || c.Len() != 1 {
		t.Errorf("Used=%d Len=%d after Remove, want 10,1", c.UsedBytes(), c.Len())
	}
	if c.Counters().Evictions != 0 {
		t.Error("Remove counted as an eviction")
	}
	// The freed budget is usable again.
	if stored, ev := c.Put(3, "c", 20); !stored || len(ev) != 0 {
		t.Errorf("Put(3) after Remove = %v,%v want true,none", stored, ev)
	}
}

func TestHitRate(t *testing.T) {
	c := NewLRU[int, int](100)
	c.Put(1, 1, 1)
	c.Get(1)
	c.Get(1)
	c.Get(2)
	if hr := c.Counters().HitRate(); math.Abs(hr-2.0/3.0) > 1e-12 {
		t.Errorf("HitRate = %v, want 2/3", hr)
	}
	if (CounterSnapshot{}).HitRate() != 0 {
		t.Error("empty snapshot HitRate != 0")
	}
}

func TestReuseProbabilityProperties(t *testing.T) {
	// f=1: no reuse possible. Monotone decreasing in cores at fixed f.
	if p := ReuseProbability(1, 480, 24); p != 0 {
		t.Errorf("f=1 gives %v, want 0", p)
	}
	prev := 2.0
	for _, cores := range []int{480, 960, 1920, 3840, 7680, 15360} {
		p := ReuseProbability(50, cores, 24)
		if p <= 0 || p >= 1 {
			t.Errorf("cores=%d: p=%v out of (0,1)", cores, p)
		}
		if p >= prev {
			t.Errorf("reuse probability not decreasing: %v at %d cores", p, cores)
		}
		prev = p
	}
	// Single-node machine: reuse certain.
	if p := ReuseProbability(50, 24, 24); p != 1 {
		t.Errorf("single node gives %v, want 1", p)
	}
}

func TestReuseProbabilityMatchesPaperAnchors(t *testing.T) {
	// Fig 7 with d=100, L=100, k=51, f=50, ppn=24: at small core counts the
	// probability is near 1; it decays towards ~0.07 at 15360 cores
	// (m=640 nodes: 1-(1-1/640)^49 ≈ 0.074).
	p480 := ReuseProbability(50, 480, 24)
	if p480 < 0.9 {
		t.Errorf("P(reuse) at 480 cores = %v, want > 0.9", p480)
	}
	p15360 := ReuseProbability(50, 15360, 24)
	if math.Abs(p15360-0.0737) > 0.01 {
		t.Errorf("P(reuse) at 15360 cores = %v, want ~0.074", p15360)
	}
}

func TestSimulateReuseAgreesWithClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, cores := range []int{480, 1920, 7680} {
		analytic := ReuseProbability(50, cores, 24)
		mc := SimulateReuse(rng, 50, cores, 24, 20000)
		if math.Abs(analytic-mc) > 0.02 {
			t.Errorf("cores=%d: analytic %v vs MC %v", cores, analytic, mc)
		}
	}
}

// buildIndex constructs a small index for Group tests.
func buildIndex(t testing.TB, mach upc.MachineConfig, k int, frags []dna.Packed) *dht.Index {
	ix, err := dht.New(mach, dht.Config{K: k, Mode: dht.Aggregating, S: 64}, len(frags))
	if err != nil {
		t.Fatal(err)
	}
	m := upc.MustNewMachine(mach)
	m.RunPhase("stage", func(th *upc.Thread) {
		b := ix.NewBuilder(th)
		lo, hi := mach.PartitionRange(len(frags), th.ID)
		for f := lo; f < hi; f++ {
			for off, s := range kmer.Extract(frags[f], k, nil) {
				b.Add(dht.SeedEntry{Seed: s, Loc: dht.Loc{Frag: int32(f), Off: int32(off)}})
			}
		}
		b.Flush()
	})
	m.RunPhase("drain", func(th *upc.Thread) { ix.Drain(th) })
	return ix
}

func TestGroupSeedCacheServesRepeatLookups(t *testing.T) {
	mach := upc.Edison(96)
	mach.Workers = 4
	rng := rand.New(rand.NewSource(3))
	frags := []dna.Packed{dna.Random(rng, 400)}
	ix := buildIndex(t, mach, 21, frags)
	g := NewGroup(mach, 1<<20, 1<<20)
	seeds := kmer.Extract(frags[0], 21, nil)

	m := upc.MustNewMachine(mach)
	// Thread 0 looks every seed up twice; every off-node seed's second
	// lookup must be a cache hit.
	m.RunPhase("lookup", func(th *upc.Thread) {
		if th.ID != 0 {
			return
		}
		for pass := 0; pass < 2; pass++ {
			for _, s := range seeds {
				if _, ok := g.Lookup(th, ix, s); !ok {
					t.Errorf("seed missing")
				}
			}
		}
	})
	sc := g.SeedCounters()
	if sc.Hits == 0 {
		t.Fatal("no seed-cache hits on repeated lookups")
	}
	// Hits should be roughly the number of off-node seeds (second pass).
	if sc.Hits < int64(len(seeds))/2 {
		t.Errorf("seed cache hits = %d, want >= %d", sc.Hits, len(seeds)/2)
	}
}

func TestGroupCacheReducesCommunication(t *testing.T) {
	mach := upc.Edison(96)
	mach.Workers = 4
	rng := rand.New(rand.NewSource(4))
	frags := []dna.Packed{dna.Random(rng, 500)}
	ix := buildIndex(t, mach, 21, frags)
	seeds := kmer.Extract(frags[0], 21, nil)

	run := func(seedBytes int64) float64 {
		g := NewGroup(mach, seedBytes, 0)
		m := upc.MustNewMachine(mach)
		stat := m.RunPhase("lookup", func(th *upc.Thread) {
			if th.ID != 0 {
				return
			}
			for pass := 0; pass < 5; pass++ {
				for _, s := range seeds {
					g.Lookup(th, ix, s)
				}
			}
		})
		return stat.MaxComm
	}
	withCache := run(1 << 20)
	noCache := run(0)
	if noCache/withCache < 2 {
		t.Errorf("cache reduced comm only %.2fx (no-cache %v, cache %v)", noCache/withCache, noCache, withCache)
	}
}

func TestGroupNegativeCaching(t *testing.T) {
	mach := upc.Edison(96)
	mach.Workers = 4
	rng := rand.New(rand.NewSource(5))
	frags := []dna.Packed{dna.Random(rng, 300)}
	ix := buildIndex(t, mach, 31, frags)
	g := NewGroup(mach, 1<<20, 0)
	absent := kmer.MustFromString("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA")
	if ix.OwnerOf(absent) < 24 {
		t.Skip("absent seed owned on-node for thread 0; cache path not exercised")
	}

	m := upc.MustNewMachine(mach)
	m.RunPhase("lookup", func(th *upc.Thread) {
		if th.ID != 0 {
			return
		}
		for i := 0; i < 3; i++ {
			if _, ok := g.Lookup(th, ix, absent); ok {
				t.Error("absent seed reported found")
			}
		}
	})
	sc := g.SeedCounters()
	if sc.Hits != 2 {
		t.Errorf("negative cache hits = %d, want 2", sc.Hits)
	}
}

func TestGroupTargetCache(t *testing.T) {
	mach := upc.Edison(96)
	mach.Workers = 4
	g := NewGroup(mach, 0, 10_000)
	m := upc.MustNewMachine(mach)
	var firstHit, secondHit bool
	m.RunPhase("fetch", func(th *upc.Thread) {
		if th.ID != 0 {
			return
		}
		// Fragment owned by thread 50 (remote node).
		firstHit = g.FetchTarget(th, 7, 500, 50)
		secondHit = g.FetchTarget(th, 7, 500, 50)
	})
	if firstHit {
		t.Error("first fetch reported as hit")
	}
	if !secondHit {
		t.Error("second fetch missed the target cache")
	}
	tc := g.TargetCounters()
	if tc.Hits != 1 || tc.Misses != 1 {
		t.Errorf("target counters = %+v, want 1 hit 1 miss", tc)
	}
}

func TestGroupOnNodeFetchBypassesCache(t *testing.T) {
	mach := upc.Edison(96)
	mach.Workers = 4
	g := NewGroup(mach, 1<<20, 1<<20)
	m := upc.MustNewMachine(mach)
	m.RunPhase("fetch", func(th *upc.Thread) {
		if th.ID != 0 {
			return
		}
		g.FetchTarget(th, 3, 100, 5) // owner on same node
		g.FetchTarget(th, 3, 100, 5)
	})
	tc := g.TargetCounters()
	if tc.Hits != 0 || tc.Misses != 0 {
		t.Errorf("on-node fetches touched the cache: %+v", tc)
	}
}

func TestGroupCountersAggregateAcrossNodes(t *testing.T) {
	mach := upc.Edison(96)
	mach.Workers = 4
	g := NewGroup(mach, 1<<20, 1<<20)
	m := upc.MustNewMachine(mach)
	m.RunPhase("fetch", func(th *upc.Thread) {
		if th.ID%24 != 0 {
			return // one thread per node
		}
		owner := (th.ID + 48) % 96 // two nodes away
		g.FetchTarget(th, int32(th.Node), 100, owner)
		g.FetchTarget(th, int32(th.Node), 100, owner)
	})
	tc := g.TargetCounters()
	if tc.Hits != 4 || tc.Misses != 4 {
		t.Errorf("aggregated counters = %+v, want 4 hits 4 misses", tc)
	}
}

func ExampleReuseProbability() {
	for _, cores := range []int{480, 3840, 15360} {
		fmt.Printf("%5d cores: %.3f\n", cores, ReuseProbability(50, cores, 24))
	}
	// Output:
	//   480 cores: 0.919
	//  3840 cores: 0.265
	// 15360 cores: 0.074
}

func BenchmarkLRUGetHit(b *testing.B) {
	c := NewLRU[kmer.Kmer, int](1 << 20)
	km := kmer.MustFromString("ACGTACGTACGTACGTACG")
	c.Put(km, 1, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(km)
	}
}

func BenchmarkLRUPutEvict(b *testing.B) {
	c := NewLRU[int, int](1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(i, i, 64)
	}
}

// Group's entry points must be safe under real concurrency: the simulated
// machine executes threads of the same node on concurrent worker
// goroutines, all hitting the node's shard locks and the per-thread comm
// attribution slices. Run under -race in CI's race job.
func TestGroupConcurrentLookupAndFetch(t *testing.T) {
	mach := upc.Edison(96)
	mach.Workers = 8
	rng := rand.New(rand.NewSource(9))
	frags := []dna.Packed{dna.Random(rng, 2000), dna.Random(rng, 2000)}
	ix := buildIndex(t, mach, 21, frags)
	g := NewGroup(mach, 1<<20, 1<<20)
	seeds := kmer.Extract(frags[0], 21, nil)
	seeds = append(seeds, kmer.Extract(frags[1], 21, nil)...)

	m := upc.MustNewMachine(mach)
	m.RunPhase("concurrent", func(th *upc.Thread) {
		for pass := 0; pass < 2; pass++ {
			for i := th.ID % 7; i < len(seeds); i += 7 {
				if _, ok := g.Lookup(th, ix, seeds[i]); !ok {
					t.Errorf("staged seed missing")
					return
				}
				frag := int32(i % len(frags))
				g.FetchTarget(th, frag, 500, int(frag)%mach.Threads)
			}
		}
	})
	cs := g.SeedCounters()
	if cs.Hits+cs.Misses == 0 {
		t.Error("no cache traffic recorded")
	}
	if g.CommSeedMax() <= 0 || g.CommTargetMax() <= 0 {
		t.Error("comm attribution not recorded")
	}
}
