package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/genome"
	"github.com/lbl-repro/meraligner/internal/seqio"
)

func TestPartitionTargetsByBasesCoversAll(t *testing.T) {
	f := func(seed int64, threadsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		threads := 1 + int(threadsRaw%64)
		n := rng.Intn(200)
		targets := make([]seqio.Seq, n)
		for i := range targets {
			targets[i] = seqio.Seq{Seq: dna.Random(rng, 1+rng.Intn(5000))}
		}
		ranges := PartitionTargetsByBases(targets, threads)
		if len(ranges) != threads {
			return false
		}
		prev := 0
		for _, r := range ranges {
			if r[0] != prev || r[1] < r[0] {
				return false // contiguous, ordered
			}
			prev = r[1]
		}
		return prev == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPartitionTargetsByBasesBalances(t *testing.T) {
	// Highly skewed lengths: one giant contig plus many small ones. The
	// giant's holder should receive (nearly) nothing else.
	rng := rand.New(rand.NewSource(1))
	targets := []seqio.Seq{{Seq: dna.Random(rng, 100_000)}}
	for i := 0; i < 100; i++ {
		targets = append(targets, seqio.Seq{Seq: dna.Random(rng, 1000)})
	}
	ranges := PartitionTargetsByBases(targets, 2)
	// Thread 0 gets the giant (100k bases = half the total); thread 1 the
	// hundred small ones.
	if ranges[0][1]-ranges[0][0] > 5 {
		t.Errorf("giant-holding thread got %d targets, want few", ranges[0][1]-ranges[0][0])
	}
	if ranges[1][1]-ranges[1][0] < 90 {
		t.Errorf("other thread got %d targets, want ~100", ranges[1][1]-ranges[1][0])
	}
}

func TestPartitionTargetsByBasesEmptyAndTiny(t *testing.T) {
	ranges := PartitionTargetsByBases(nil, 4)
	for _, r := range ranges {
		if r[0] != r[1] {
			t.Error("empty target set produced non-empty range")
		}
	}
	// More threads than targets: every target still assigned exactly once.
	rng := rand.New(rand.NewSource(2))
	targets := []seqio.Seq{{Seq: dna.Random(rng, 10)}, {Seq: dna.Random(rng, 10)}}
	ranges = PartitionTargetsByBases(targets, 7)
	covered := 0
	for _, r := range ranges {
		covered += r[1] - r[0]
	}
	if covered != 2 {
		t.Errorf("covered %d targets, want 2", covered)
	}
}

// A read overlapping the boundary between two fragments of one target must
// still be found end-to-end: its seeds live in both fragments, and the
// alignment window maps back to the parent target in either case.
func TestReadSpanningFragmentBoundaryFound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const k, F = 21, 500
	tg := dna.Random(rng, 3000)
	targets := []seqio.Seq{{Name: "c0", Seq: tg}}

	// Reads planted right across every fragment boundary (every F-k+1).
	var reads []seqio.Seq
	var positions []int
	step := F - k + 1
	for b := step; b+60 < tg.Len(); b += step {
		pos := b - 50
		reads = append(reads, seqio.Seq{Name: "q", Seq: tg.Slice(pos, pos+100)})
		positions = append(positions, pos)
	}
	if len(reads) == 0 {
		t.Fatal("no boundary reads constructed")
	}
	opt := testOptions(k)
	opt.FragmentLen = F
	res, err := Run(testMach(8), opt, targets, reads)
	if err != nil {
		t.Fatal(err)
	}
	found := map[int32]bool{}
	for _, a := range res.Alignments {
		if int(a.Score) == 100 && int(a.TStart) == positions[a.Query] {
			found[a.Query] = true
		}
	}
	for qi := range reads {
		if !found[int32(qi)] {
			t.Errorf("boundary-spanning read %d (pos %d) not found at full score", qi, positions[qi])
		}
	}
}

// Index-only runs (no queries) must work — Fig 8 uses them.
func TestRunWithoutQueries(t *testing.T) {
	ds := testWorkload(t, 40_000, 1, 0)
	res, err := Run(testMach(8), testOptions(21), ds.Contigs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalReads != 0 || res.AlignedReads != 0 {
		t.Error("phantom reads")
	}
	if res.IndexStats.DistinctSeeds == 0 {
		t.Error("index not built")
	}
	if res.IndexWall() <= 0 {
		t.Error("no index time")
	}
}

// Wheat-like repeat-heavy workload end-to-end smoke: repeats must produce
// multi-location seeds and still align the bulk of reads.
func TestWheatLikeRepeatHeavy(t *testing.T) {
	p := genome.WheatLike(150_000)
	p.Depth = 3
	p.InsertMean = 0
	ds, err := genome.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(testMach(24), testOptions(31), ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	if res.IndexStats.RepeatSeeds == 0 {
		t.Error("repeat-heavy genome produced no repeat seeds")
	}
	frac := float64(res.AlignedReads) / float64(res.TotalReads)
	if frac < 0.6 {
		t.Errorf("aligned only %.2f of wheat-like reads", frac)
	}
	if res.IndexStats.SingleCopyFrags >= res.IndexStats.Fragments {
		t.Error("every fragment single-copy despite repeats")
	}
}
