package core

import (
	"math/rand"
	"testing"

	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/genome"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/upc"
)

func testMach(threads int) upc.MachineConfig {
	cfg := upc.Edison(threads)
	cfg.Workers = 4
	return cfg
}

func testOptions(k int) Options {
	opt := DefaultOptions(k)
	opt.CollectAlignments = true
	opt.SeedCacheBytes = 1 << 20
	opt.TargetCacheBytes = 1 << 20
	return opt
}

// testWorkload builds a small deterministic data set.
func testWorkload(t testing.TB, genomeLen int, depth, errRate float64) *genome.DataSet {
	p := genome.HumanLike(genomeLen)
	p.Depth = depth
	p.ErrorRate = errRate
	p.InsertMean = 0 // unpaired for simplicity
	ds, err := genome.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestOptionsValidate(t *testing.T) {
	if err := testOptions(21).Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
	bad := testOptions(21)
	bad.K = 0
	if bad.Validate() == nil {
		t.Error("K=0 accepted")
	}
	bad = testOptions(21)
	bad.FragmentLen = 10 // <= K
	if bad.Validate() == nil {
		t.Error("FragmentLen <= K accepted")
	}
	bad = testOptions(21)
	bad.SeedStride = -1
	if bad.Validate() == nil {
		t.Error("negative stride accepted")
	}
}

func TestFragmentTableInvariants(t *testing.T) {
	ds := testWorkload(t, 60_000, 2, 0)
	const k, F = 21, 500
	ft := BuildFragmentTable(ds.Contigs, k, F, 8)
	if ft.NumFragments() < len(ds.Contigs) {
		t.Fatal("fewer fragments than targets")
	}
	step := F - k + 1
	for ti := range ds.Contigs {
		first, last := ft.FragRange(int32(ti))
		L := ds.Contigs[ti].Seq.Len()
		// Fragment seed sets must tile the target's seed set exactly:
		// fragment i covers seed offsets [i*step, i*step+len-k].
		covered := 0
		for f := first; f < last; f++ {
			fr := ft.Frags[f]
			if fr.Target != int32(ti) {
				t.Fatalf("fragment %d wrong target", f)
			}
			if int(fr.Start) != int(f-first)*step {
				t.Fatalf("fragment %d start %d, want %d", f, fr.Start, int(f-first)*step)
			}
			nSeeds := int(fr.Len) - k + 1
			if nSeeds < 0 {
				nSeeds = 0
			}
			covered += nSeeds
			// Fragment content matches the target.
			if !ds.Contigs[ti].Seq.MatchesAt(ft.FragSeq(f), int(fr.Start)) {
				t.Fatalf("fragment %d content mismatch", f)
			}
		}
		want := L - k + 1
		if want < 0 {
			want = 0
		}
		if covered != want {
			t.Fatalf("target %d: fragments cover %d seeds, want %d", ti, covered, want)
		}
	}
}

func TestFragmentTableNoFragmentation(t *testing.T) {
	ds := testWorkload(t, 30_000, 1, 0)
	ft := BuildFragmentTable(ds.Contigs, 21, 0, 4)
	if ft.NumFragments() != len(ds.Contigs) {
		t.Errorf("F=0 should give one fragment per target: %d vs %d", ft.NumFragments(), len(ds.Contigs))
	}
}

// The headline correctness guarantee (§VI-D): every alignment sharing at
// least one full-length seed between query and target is found. For
// error-free reads whose origin lies inside a contig, the true location
// must be among the reported alignments with a full-length score.
func TestOracleErrorFreeReadsFound(t *testing.T) {
	ds := testWorkload(t, 120_000, 4, 0)
	mach := testMach(48)
	opt := testOptions(31)
	res, err := Run(mach, opt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}

	// Build contig interval lookup.
	type iv struct{ start, end, idx int }
	var ivs []iv
	for i, pos := range ds.ContigPos {
		ivs = append(ivs, iv{pos, pos + ds.Contigs[i].Seq.Len(), i})
	}
	locate := func(pos, L int) (int, int, bool) {
		for _, v := range ivs {
			if pos >= v.start && pos+L <= v.end {
				return v.idx, pos - v.start, true
			}
		}
		return 0, 0, false
	}

	byQuery := map[int32][]Alignment{}
	for _, a := range res.Alignments {
		byQuery[a.Query] = append(byQuery[a.Query], a)
	}

	L := ds.Profile.ReadLen
	missed, expected := 0, 0
	for qi, org := range ds.Origins {
		tgt, tOff, inside := locate(org.Pos, L)
		if !inside {
			continue // origin spans a gap or uncovered region
		}
		expected++
		found := false
		for _, a := range byQuery[int32(qi)] {
			if int(a.Target) == tgt && a.RC == org.RC && int(a.TStart) == tOff && int(a.Score) == L {
				found = true
				break
			}
		}
		if !found {
			missed++
		}
	}
	if expected == 0 {
		t.Fatal("no reads landed inside contigs; workload too sparse")
	}
	if missed != 0 {
		t.Errorf("missed %d/%d error-free reads at their true origin", missed, expected)
	}
}

// Reads with a few errors must still be found via their error-free seeds.
func TestReadsWithErrorsStillAlign(t *testing.T) {
	ds := testWorkload(t, 100_000, 3, 0.005)
	mach := testMach(24)
	opt := testOptions(21)
	res, err := Run(mach, opt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.AlignedReads) / float64(res.TotalReads)
	// The paper aligned 86.3% of human reads; our contigs cover ~90% of
	// the genome, so expect a similar ballpark.
	if frac < 0.75 {
		t.Errorf("aligned fraction %.3f too low", frac)
	}
}

func TestExactMatchPathEngagesAndIsConsistent(t *testing.T) {
	ds := testWorkload(t, 100_000, 4, 0.0052)
	mach := testMach(24)

	withOpt := testOptions(31)
	resWith, err := Run(mach, withOpt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	withoutOpt := testOptions(31)
	withoutOpt.ExactMatch = false
	resWithout, err := Run(mach, withoutOpt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}

	if resWith.ExactPathReads == 0 {
		t.Fatal("exact-match path never engaged")
	}
	fastFrac := float64(resWith.ExactPathReads) / float64(resWith.TotalReads)
	if fastFrac < 0.30 {
		t.Errorf("exact-path fraction %.2f too low (paper: ~0.59)", fastFrac)
	}

	// The optimization must not lose reads: every read aligned with the
	// fast path on must also align without it.
	if resWith.AlignedReads > resWithout.AlignedReads {
		t.Errorf("exact path aligned more reads (%d) than exhaustive (%d)?",
			resWith.AlignedReads, resWithout.AlignedReads)
	}
	diff := resWithout.AlignedReads - resWith.AlignedReads
	if diff > resWithout.AlignedReads/100 {
		t.Errorf("exact path lost %d aligned reads vs exhaustive %d", diff, resWithout.AlignedReads)
	}

	// Exact-path alignments must be genuine: re-verify against the target.
	verified := 0
	for _, a := range resWith.Alignments {
		if !a.Exact {
			continue
		}
		q := ds.Reads[a.Query].Seq
		if a.RC {
			q = q.ReverseComplement()
		}
		tg := ds.Contigs[a.Target].Seq
		if !tg.MatchesAt(q, int(a.TStart)) {
			t.Fatalf("exact alignment %+v does not match the target", a)
		}
		verified++
		if verified > 500 {
			break
		}
	}
	if verified == 0 {
		t.Error("no exact alignments to verify")
	}

	// And SW work must drop substantially (Fig 10's computation gain).
	// With exact fraction x and s seeds per read, the expected lookup
	// reduction is 1/(1-x+x/s); on this scaled workload x ~ 0.45.
	if float64(resWith.SWCalls)*1.5 > float64(resWithout.SWCalls) {
		t.Errorf("exact path did not reduce SW calls: %d vs %d", resWith.SWCalls, resWithout.SWCalls)
	}
	// As must seed lookups (communication gain).
	if float64(resWith.SeedLookups)*1.4 > float64(resWithout.SeedLookups) {
		t.Errorf("exact path did not reduce lookups: %d vs %d", resWith.SeedLookups, resWithout.SeedLookups)
	}
}

func TestReverseStrandReadsAlign(t *testing.T) {
	// All-RC read set: every read must still align.
	rng := rand.New(rand.NewSource(5))
	g := dna.Random(rng, 20_000)
	contig := seqio.Seq{Name: "c0", Seq: g}
	var reads []seqio.Seq
	for i := 0; i < 200; i++ {
		pos := rng.Intn(g.Len() - 100)
		reads = append(reads, seqio.Seq{Name: "r", Seq: g.Slice(pos, pos+100).ReverseComplement()})
	}
	opt := testOptions(21)
	res, err := Run(testMach(8), opt, []seqio.Seq{contig}, reads)
	if err != nil {
		t.Fatal(err)
	}
	if res.AlignedReads != len(reads) {
		t.Errorf("aligned %d/%d reverse-strand reads", res.AlignedReads, len(reads))
	}
	for _, a := range res.Alignments {
		if !a.RC {
			t.Error("reverse-strand read reported as forward")
			break
		}
	}
}

func TestMaxSeedHitsLimitsWork(t *testing.T) {
	// A highly repetitive target: one unit repeated many times.
	rng := rand.New(rand.NewSource(6))
	unit := dna.Random(rng, 200)
	var parts []dna.Packed
	for i := 0; i < 50; i++ {
		parts = append(parts, unit)
	}
	tg := seqio.Seq{Name: "rep", Seq: dna.Concat(parts...)}
	reads := []seqio.Seq{{Name: "q", Seq: unit.Slice(0, 100)}}

	run := func(maxHits int) *Results {
		opt := testOptions(21)
		opt.ExactMatch = false
		opt.MaxSeedHits = maxHits
		res, err := Run(testMach(8), opt, []seqio.Seq{tg}, reads)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unlimited := run(0)
	capped := run(5)
	if capped.SWCalls >= unlimited.SWCalls {
		t.Errorf("MaxSeedHits did not reduce SW calls: %d vs %d", capped.SWCalls, unlimited.SWCalls)
	}
	if unlimited.TotalAlignments < 40 {
		t.Errorf("repetitive target yielded only %d alignments", unlimited.TotalAlignments)
	}
}

func TestPermutationDoesNotChangeResults(t *testing.T) {
	ds := testWorkload(t, 60_000, 3, 0.004)
	base := testOptions(21)
	base.Permute = false
	perm := testOptions(21)
	perm.Permute = true

	r1, err := Run(testMach(16), base, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testMach(16), perm, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	if r1.AlignedReads != r2.AlignedReads || r1.TotalAlignments != r2.TotalAlignments {
		t.Errorf("permutation changed results: %d/%d vs %d/%d",
			r1.AlignedReads, r1.TotalAlignments, r2.AlignedReads, r2.TotalAlignments)
	}
}

func TestDeterminismWithSingleWorker(t *testing.T) {
	ds := testWorkload(t, 40_000, 2, 0.004)
	mach := testMach(8)
	mach.Workers = 1
	opt := testOptions(21)
	r1, err := Run(mach, opt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(mach, opt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalWall() != r2.TotalWall() {
		t.Errorf("simulated time not deterministic: %v vs %v", r1.TotalWall(), r2.TotalWall())
	}
	if len(r1.Alignments) != len(r2.Alignments) {
		t.Fatalf("alignment counts differ: %d vs %d", len(r1.Alignments), len(r2.Alignments))
	}
	for i := range r1.Alignments {
		if r1.Alignments[i] != r2.Alignments[i] {
			t.Fatalf("alignment %d differs", i)
		}
	}
}

func TestAggregatingBeatsFineGrainedEndToEnd(t *testing.T) {
	ds := testWorkload(t, 60_000, 2, 0.004)
	agg := testOptions(21)
	fine := testOptions(21)
	fine.Mode = dht.FineGrained

	ra, err := Run(testMach(48), agg, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Run(testMach(48), fine, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	if ra.IndexWall() >= rf.IndexWall() {
		t.Errorf("aggregating index build (%v) not faster than fine-grained (%v)",
			ra.IndexWall(), rf.IndexWall())
	}
	// Same table, same alignments.
	if ra.TotalAlignments != rf.TotalAlignments {
		t.Errorf("modes disagree on alignments: %d vs %d", ra.TotalAlignments, rf.TotalAlignments)
	}
}

func TestShortQueriesSkipped(t *testing.T) {
	ds := testWorkload(t, 30_000, 1, 0)
	reads := []seqio.Seq{{Name: "short", Seq: dna.MustPack("ACGT")}}
	res, err := Run(testMach(8), testOptions(21), ds.Contigs, reads)
	if err != nil {
		t.Fatal(err)
	}
	if res.AlignedReads != 0 || res.TotalAlignments != 0 {
		t.Error("short query produced alignments")
	}
}

func TestRunThreadedMatchesSimResults(t *testing.T) {
	ds := testWorkload(t, 50_000, 2, 0.004)
	opt := testOptions(21)
	sim, err := Run(testMach(16), opt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	thr, err := RunThreaded(8, opt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	if sim.AlignedReads != thr.AlignedReads || sim.TotalAlignments != thr.TotalAlignments {
		t.Errorf("threaded mode results differ: %d/%d vs %d/%d",
			sim.AlignedReads, sim.TotalAlignments, thr.AlignedReads, thr.TotalAlignments)
	}
	if thr.TotalRealWall() <= 0 {
		t.Error("threaded mode did not measure real time")
	}
	if _, err := RunThreaded(0, opt, ds.Contigs, ds.Reads); err == nil {
		t.Error("threads=0 accepted")
	}
}

func TestResultsAccessors(t *testing.T) {
	ds := testWorkload(t, 30_000, 1, 0)
	res, err := Run(testMach(8), testOptions(21), ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWall() <= 0 {
		t.Error("TotalWall <= 0")
	}
	if res.IndexWall() <= 0 || res.AlignWall() <= 0 || res.IOWall() <= 0 {
		t.Error("phase accessors returned zero")
	}
	if _, ok := res.Phase(PhaseAlign); !ok {
		t.Error("align phase missing")
	}
	if res.Summary() == "" {
		t.Error("empty summary")
	}
}

func BenchmarkAlignPhaseSimulated(b *testing.B) {
	p := genome.HumanLike(200_000)
	p.Depth = 4
	p.InsertMean = 0
	ds, err := genome.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	mach := testMach(48)
	mach.Workers = 8
	opt := DefaultOptions(31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(mach, opt, ds.Contigs, ds.Reads); err != nil {
			b.Fatal(err)
		}
	}
}
