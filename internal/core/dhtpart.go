package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/kmer"
	"github.com/lbl-repro/meraligner/internal/merx"
)

// Seed-shard snapshots: the network DHT tier's on-disk unit. SaveSeedShards
// hash-partitions the sealed seed table across N owner nodes (whole internal
// shards per owner — see dht.Partition) and writes each partition as a
// self-contained .merx snapshot: the usual META/TARG/DHTS sections plus a
// "DHTP" identity section naming the partition (id, count, K, internal
// shard count, and the full-table fingerprint every sibling must share).
// TARG carries the complete reference in every seed shard, so any one file
// is enough to serve lookups AND to later open as a full query node — the
// seed table is the part that doesn't fit one machine, not the packed
// reference.
//
// LoadSeedShard is the serving side's light loader: it maps the partitioned
// table and reads the identities but skips the fragment-table rebuild —
// a lookup server resolves seeds, it never extends.

// SeedShardInfo is one seed shard's identity within a partitioned DHT,
// persisted as the snapshot's "DHTP" section.
type SeedShardInfo struct {
	// ID is this shard's owner position, 0-based; a seed with
	// dht.OwnerOf(seed, Shards, Count) == ID resolves here.
	ID int `json:"id"`
	// Count is the number of owner nodes the table was partitioned across.
	Count int `json:"count"`
	// K is the seed length of the partitioned table.
	K int `json:"k"`
	// Shards is the internal shard count of the table; owners are assigned
	// whole internal shards, so querying nodes need it to compute owners.
	Shards int `json:"shards"`
	// Fingerprint digests the full table's partition-relevant shape (see
	// dht.PartitionFingerprint); all shards of one fleet must agree, so a
	// query node can reject a fleet mixing shards of different builds.
	Fingerprint uint64 `json:"fingerprint"`
}

// Validate rejects impossible seed-shard identities (a corrupt or
// hand-edited DHTP section).
func (si SeedShardInfo) Validate() error {
	if si.Count < 1 || si.ID < 0 || si.ID >= si.Count || si.K < 1 || si.Shards < 1 {
		return fmt.Errorf("core: impossible seed-shard identity %+v", si)
	}
	return nil
}

// SeedShardPath names seed shard id of count within dir, the layout
// SaveSeedShards produces and the quickstarts reference.
func SeedShardPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("seed-shard-%03d.merx", id))
}

// SaveSeedShards hash-partitions the sealed seed table across count owner
// nodes and writes one self-contained snapshot per owner into dir
// (seed-shard-000.merx ...), returning the paths in owner order. Each
// snapshot passes the normal loaders too: LoadIndex opens it as a
// (partial-table) index, LoadSeedShard as a lookup shard.
func (ix *ThreadedIndex) SaveSeedShards(dir string, count int) ([]string, error) {
	if count < 1 {
		return nil, fmt.Errorf("core: seed-shard count must be positive, got %d", count)
	}
	if ix.shard != nil {
		return nil, fmt.Errorf("core: cannot seed-shard a reference shard (%d/%d): partition the whole reference", ix.shard.ID, ix.shard.Count)
	}
	fp, err := ix.sx.PartitionFingerprint(count)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: saving seed shards: %w", err)
	}
	paths := make([]string, count)
	for id := 0; id < count; id++ {
		p, err := ix.sx.Partition(id, count)
		if err != nil {
			return nil, err
		}
		meta := snapshotMeta{
			Tool:         "meraligner",
			Index:        ix.opt,
			Shards:       p.Shards(),
			NumTargets:   len(ix.targets),
			NumFragments: ix.ft.NumFragments(),
			Stats:        p.Stats(),
		}
		info := SeedShardInfo{ID: id, Count: count, K: ix.opt.K, Shards: p.Shards(), Fingerprint: fp}
		path := SeedShardPath(dir, id)
		if err := writeSnapshot(path, meta, ix.targets, p, nil, &info); err != nil {
			return nil, err
		}
		paths[id] = path
	}
	return paths, nil
}

// SeedTableShards returns the internal shard count of the seed table: the
// routing input a query node needs alongside K to compute seed owners.
func (ix *ThreadedIndex) SeedTableShards() int { return ix.sx.Shards() }

// SeedPartitionFingerprint returns the fingerprint a count-way seed-shard
// fleet built from this table must report (see dht.PartitionFingerprint);
// a query node checks it against every node before trusting remote answers.
func (ix *ThreadedIndex) SeedPartitionFingerprint(count int) (uint64, error) {
	return ix.sx.PartitionFingerprint(count)
}

// SeedShard is a mapped seed-shard snapshot serving lookups for the seeds
// it owns. It holds only the partitioned table and the identities — no
// fragment table, no unpacked target codes — so a lookup server's resident
// cost is the mmap'd table plus page cache.
type SeedShard struct {
	info SeedShardInfo
	sx   *dht.Sharded
	snap *merx.File
}

// LoadSeedShard opens a snapshot written by SaveSeedShards. Failures are
// typed like LoadIndex's: damaged files match merx.ErrCorrupt, files this
// build cannot use (including snapshots without a DHTP section — a plain
// index is not a seed shard) match merx.ErrIncompatible.
func LoadSeedShard(path string) (*SeedShard, error) {
	f, err := merx.Open(path)
	if err != nil {
		return nil, err
	}
	sh, err := loadSeedShardFrom(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return sh, nil
}

func loadSeedShardFrom(f *merx.File) (*SeedShard, error) {
	if err := f.CheckLayout(snapLayout); err != nil {
		return nil, err
	}
	metaBytes, err := f.SectionData(sectionMeta)
	if err != nil {
		return nil, err
	}
	var meta snapshotMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, &merx.CorruptError{Path: f.Path(), Section: sectionMeta, Reason: fmt.Sprintf("undecodable metadata: %v", err)}
	}
	if meta.Tool != "meraligner" {
		return nil, &merx.IncompatibleError{Path: f.Path(), Reason: fmt.Sprintf("snapshot written by %q, not meraligner", meta.Tool)}
	}
	if !f.HasSection(sectionDHTPart) {
		return nil, &merx.IncompatibleError{Path: f.Path(), Reason: "snapshot has no DHTP section: a whole-index snapshot, not a seed shard (serve it with -index instead)"}
	}
	partBytes, err := f.SectionData(sectionDHTPart)
	if err != nil {
		return nil, err
	}
	var info SeedShardInfo
	if err := json.Unmarshal(partBytes, &info); err != nil {
		return nil, &merx.CorruptError{Path: f.Path(), Section: sectionDHTPart, Reason: fmt.Sprintf("undecodable seed-shard identity: %v", err)}
	}
	if err := info.Validate(); err != nil {
		return nil, &merx.CorruptError{Path: f.Path(), Section: sectionDHTPart, Reason: err.Error()}
	}
	dhtBytes, err := f.SectionData(sectionDHT)
	if err != nil {
		return nil, err
	}
	sx, err := dht.OpenMapped(dhtBytes)
	if err != nil {
		return nil, &merx.CorruptError{Path: f.Path(), Section: sectionDHT, Reason: err.Error()}
	}
	if sx.K() != info.K || sx.Shards() != info.Shards {
		return nil, &merx.CorruptError{Path: f.Path(), Section: sectionDHTPart, Reason: fmt.Sprintf(
			"seed table (K=%d, %d shards) disagrees with seed-shard identity (K=%d, %d shards)",
			sx.K(), sx.Shards(), info.K, info.Shards)}
	}
	return &SeedShard{info: info, sx: sx, snap: f}, nil
}

// Info returns the shard's identity.
func (sh *SeedShard) Info() SeedShardInfo { return sh.info }

// Path returns the backing snapshot's path.
func (sh *SeedShard) Path() string { return sh.snap.Path() }

// K returns the seed length of the shard's table.
func (sh *SeedShard) K() int { return sh.info.K }

// Owns reports whether this shard is the owner of a seed — the check a
// server uses to reject misrouted lookups instead of answering "absent".
func (sh *SeedShard) Owns(s kmer.Kmer) bool {
	return dht.OwnerOf(s, sh.info.Shards, sh.info.Count) == sh.info.ID
}

// Lookup resolves a seed against the mapped partition. Results for owned
// seeds are bit-identical to the full table's; unowned seeds always miss —
// callers must route by ownership first (see Owns).
func (sh *SeedShard) Lookup(s kmer.Kmer) (dht.LookupResult, bool) {
	return sh.sx.Lookup(s)
}

// ResidentBytes reports the mapped table's footprint (page cache, not heap).
func (sh *SeedShard) ResidentBytes() int64 { return sh.sx.ResidentBytes() }

// Close releases the snapshot mapping. The shard must not be used after.
func (sh *SeedShard) Close() error {
	if sh.snap == nil {
		return nil
	}
	f := sh.snap
	sh.snap = nil
	return f.Close()
}
