package core

import (
	"fmt"
	"sort"
)

// Slice returns the results of queries [lo, hi) of this batch as a
// standalone Results with query indices rebased to start at zero — the
// demux primitive for coalesced service batches: a micro-batcher that glued
// several requests' reads into one engine call hands each request back its
// own window, indistinguishable from a direct Align over just those reads.
//
// Per-query fields (Alignments, TooShort, PerQuery) are narrowed and
// re-indexed; per-query counters (AlignedReads, ExactPathReads,
// TotalAlignments) are recomputed from the window. SWCalls and SeedLookups
// are recovered from PerQuery when it was collected and are zero otherwise
// (the engine only tracks them per call). Call-level snapshots — Phases,
// cache counters, IndexStats, the communication split — describe the whole
// engine call the window was part of and are carried through as-is.
//
// Slice requires the batch to have been run with CollectAlignments (the
// alignment records are the only per-query source of the counters); it
// relies on Results.Alignments being in the canonical sorted order every
// engine produces.
func (r *Results) Slice(lo, hi int) *Results {
	if lo < 0 || hi < lo || hi > r.TotalReads {
		panic(fmt.Sprintf("core: Slice [%d,%d) out of range of %d reads", lo, hi, r.TotalReads))
	}
	out := &Results{
		Phases:             r.Phases,
		TotalReads:         hi - lo,
		SeedCache:          r.SeedCache,
		TargetCache:        r.TargetCache,
		IndexStats:         r.IndexStats,
		CommSeedLookupMax:  r.CommSeedLookupMax,
		CommFetchTargetMax: r.CommFetchTargetMax,
	}

	a := r.Alignments
	i := sort.Search(len(a), func(i int) bool { return a[i].Query >= int32(lo) })
	j := sort.Search(len(a), func(i int) bool { return a[i].Query >= int32(hi) })
	if j > i {
		out.Alignments = make([]Alignment, j-i)
		copy(out.Alignments, a[i:j])
	}
	out.TotalAlignments = int64(j - i)
	lastQ := int32(-1)
	for k := range out.Alignments {
		al := &out.Alignments[k]
		al.Query -= int32(lo)
		if al.Query != lastQ {
			out.AlignedReads++
			lastQ = al.Query
		}
		if al.Exact {
			// The fast path reports exactly one alignment per resolved read.
			out.ExactPathReads++
		}
	}

	for _, qi := range r.TooShort {
		if qi >= int32(lo) && qi < int32(hi) {
			out.TooShort = append(out.TooShort, qi-int32(lo))
		}
	}
	out.TooShortReads = len(out.TooShort)

	if r.PerQuery != nil {
		out.PerQuery = make([]QueryStat, hi-lo)
		copy(out.PerQuery, r.PerQuery[lo:hi])
		for _, s := range out.PerQuery {
			out.SWCalls += int64(s.SWCalls)
			out.SeedLookups += int64(s.SeedLookups)
		}
	}
	return out
}
