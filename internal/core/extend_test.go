package core

import (
	"sync/atomic"
	"testing"

	"github.com/lbl-repro/meraligner/internal/align"
)

// The extension engine is pluggable (§VIII). A custom extender must be
// invoked on the general path and its results reported.
func TestPluggableExtendEngine(t *testing.T) {
	ds := testWorkload(t, 40_000, 2, 0.01)
	var calls int64
	opt := testOptions(21)
	opt.ExactMatch = false // force every read through the general path
	opt.Extend = func(query, target []byte, qOff, tOff, k int, sc align.Scoring, pad int) align.Result {
		atomic.AddInt64(&calls, 1)
		return align.ExtendSeed(query, target, qOff, tOff, k, sc, pad)
	}
	res, err := Run(testMach(8), opt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("custom extender never invoked")
	}
	if calls != res.SWCalls {
		t.Errorf("extender calls %d != SWCalls %d", calls, res.SWCalls)
	}
	if res.AlignedReads == 0 {
		t.Error("nothing aligned through custom extender")
	}

	// A degenerate extender that rejects everything must yield only
	// exact-path alignments when the fast path is on.
	opt2 := testOptions(21)
	opt2.Extend = func(query, target []byte, qOff, tOff, k int, sc align.Scoring, pad int) align.Result {
		return align.Result{} // score 0: below any MinScore
	}
	res2, err := Run(testMach(8), opt2, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res2.Alignments {
		if !a.Exact {
			t.Fatalf("non-exact alignment %+v reported with rejecting extender", a)
		}
	}
	if res2.ExactPathReads == 0 {
		t.Error("exact path should still produce alignments")
	}
}
