package core

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/merx"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// This file persists a ThreadedIndex as a .merx snapshot and loads it back:
// Save writes three checksummed sections — the options/stats fingerprint
// ("META", JSON), the packed reference ("TARG"), and the sealed seed table
// ("DHTS", see dht.WriteTo) — plus, on shard snapshots only, the shard
// identity ("SHRD", JSON) — and LoadIndex memory-maps them, so a serving
// process cold-starts in milliseconds instead of re-extracting, draining,
// and sealing the whole index from FASTA. The byte-level layout of every
// section is specified in docs/INDEX_FORMAT.md.

// Section tags of an index snapshot. SHRD is optional: present only on
// snapshots produced by the reference-shard producer, carrying the
// ShardInfo JSON. DHTP is optional: present only on seed-shard snapshots
// produced by SaveSeedShards, carrying the SeedShardInfo JSON.
const (
	sectionMeta    = "META"
	sectionTargets = "TARG"
	sectionDHT     = "DHTS"
	sectionShard   = "SHRD"
	sectionDHTPart = "DHTP"
)

// snapLayout is the struct-size fingerprint stamped into every snapshot
// header; LoadIndex refuses files whose layout differs from this build's.
var snapLayout = merx.Layout{
	FlatEntryBytes: dht.FlatEntryWireBytes,
	LocBytes:       dht.LocWireBytes,
}

// snapshotMeta is the "META" section: everything about the index that is
// not bulk data, as JSON so the fingerprint stays debuggable with any
// inspection tool. Index carries the exact IndexOptions of the build —
// loading restores them verbatim, so query-compatibility checks (K, the
// MaxLocList/MaxSeedHits constraint) behave identically on built and
// loaded indexes. Stats restores the seal-time statistics snapshot without
// rescanning the mapped table.
type snapshotMeta struct {
	Tool         string       `json:"tool"`
	Index        IndexOptions `json:"index_options"`
	Shards       int          `json:"shards"`
	NumTargets   int          `json:"num_targets"`
	NumFragments int          `json:"num_fragments"`
	Stats        dht.Stats    `json:"stats"`
}

// Save writes the sealed index as a .merx snapshot at path, atomically: the
// bytes go to a temporary file in the same directory that is renamed over
// path only after a successful sync, so a crashed or failed Save never
// leaves a half-written snapshot where a loader might find it.
func (ix *ThreadedIndex) Save(path string) error {
	meta := snapshotMeta{
		Tool:         "meraligner",
		Index:        ix.opt,
		Shards:       ix.sx.Shards(),
		NumTargets:   len(ix.targets),
		NumFragments: ix.ft.NumFragments(),
		Stats:        ix.stats,
	}
	return writeSnapshot(path, meta, ix.targets, ix.sx, ix.shard, nil)
}

// jsonSection writes v as indented JSON — the encoding of every metadata
// section (META, SHRD, DHTP), chosen so the fingerprints stay debuggable
// with any inspection tool.
func jsonSection(sw io.Writer, v any) error {
	enc, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	_, werr := sw.Write(append(enc, '\n'))
	return werr
}

// writeSnapshot is the shared section-writing path of every snapshot
// flavor: whole-reference and reference-shard saves (Save) and seed-shard
// saves (SaveSeedShards) differ only in which table they serialize and
// which optional identity sections ride along.
func writeSnapshot(path string, meta snapshotMeta, targets []seqio.Seq, sx *dht.Sharded, shard *ShardInfo, part *SeedShardInfo) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".merx-tmp-*")
	if err != nil {
		return fmt.Errorf("core: saving index: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	w, err := merx.NewWriter(tmp, snapLayout)
	if err != nil {
		return err
	}
	if err = w.Section(sectionMeta, func(sw io.Writer) error {
		return jsonSection(sw, meta)
	}); err != nil {
		return err
	}
	if err = w.Section(sectionTargets, func(sw io.Writer) error {
		return writeTargets(sw, targets)
	}); err != nil {
		return err
	}
	if err = w.Section(sectionDHT, func(sw io.Writer) error {
		_, werr := sx.WriteTo(sw)
		return werr
	}); err != nil {
		return err
	}
	if shard != nil {
		if err = w.Section(sectionShard, func(sw io.Writer) error {
			return jsonSection(sw, *shard)
		}); err != nil {
			return err
		}
	}
	if part != nil {
		if err = w.Section(sectionDHTPart, func(sw io.Writer) error {
			return jsonSection(sw, *part)
		}); err != nil {
			return err
		}
	}
	if err = w.Finish(); err != nil {
		return err
	}
	// CreateTemp opens mode 0600; widen to the usual artifact permissions so
	// replicas running as other users can map the snapshot.
	if err = tmp.Chmod(0o644); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadIndex opens a .merx snapshot written by Save and returns a resident,
// sealed ThreadedIndex whose seed table and target sequences alias the
// snapshot's read-only mapping — no rebuild, no rehash, and any number of
// processes loading the same file share one physical copy of the table
// through the page cache. workers sizes the fragment-table reconstruction
// (the only rebuilt structure: the unpacked per-target code slices used by
// Smith-Waterman stay heap-owned) and plays the role BuildIndex's workers
// plays for built indexes.
//
// Failures are typed: a damaged file (truncation, checksum mismatch,
// impossible offsets) returns an error matching merx.ErrCorrupt that names
// the failing section, and a file this build cannot use (not a snapshot,
// future format version, different struct layout, or options that fail
// validation) returns one matching merx.ErrIncompatible. A loaded index
// must be released with Close when no longer needed.
func LoadIndex(workers int, path string) (*ThreadedIndex, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("core: threads must be positive, got %d", workers)
	}
	start := time.Now()
	f, err := merx.Open(path)
	if err != nil {
		return nil, err
	}
	ix, err := loadFrom(workers, f)
	if err != nil {
		f.Close()
		return nil, err
	}
	ix.buildPhases = []upc.PhaseStat{upc.RealPhaseStat(PhaseLoad, time.Since(start), upc.Counters{})}
	return ix, nil
}

// loadFrom assembles the index from an opened snapshot's verified sections.
func loadFrom(workers int, f *merx.File) (*ThreadedIndex, error) {
	if err := f.CheckLayout(snapLayout); err != nil {
		return nil, err
	}
	metaBytes, err := f.SectionData(sectionMeta)
	if err != nil {
		return nil, err
	}
	var meta snapshotMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, &merx.CorruptError{Path: f.Path(), Section: sectionMeta, Reason: fmt.Sprintf("undecodable metadata: %v", err)}
	}
	if meta.Tool != "meraligner" {
		return nil, &merx.IncompatibleError{Path: f.Path(), Reason: fmt.Sprintf("snapshot written by %q, not meraligner", meta.Tool)}
	}
	if err := meta.Index.Validate(); err != nil {
		return nil, &merx.IncompatibleError{Path: f.Path(), Reason: fmt.Sprintf("snapshot index options rejected: %v", err)}
	}

	targBytes, err := f.SectionData(sectionTargets)
	if err != nil {
		return nil, err
	}
	targets, err := readTargets(targBytes)
	if err != nil {
		return nil, &merx.CorruptError{Path: f.Path(), Section: sectionTargets, Reason: err.Error()}
	}
	if len(targets) != meta.NumTargets {
		return nil, &merx.CorruptError{Path: f.Path(), Section: sectionTargets, Reason: fmt.Sprintf("%d targets decoded, metadata says %d", len(targets), meta.NumTargets)}
	}

	dhtBytes, err := f.SectionData(sectionDHT)
	if err != nil {
		return nil, err
	}
	sx, err := dht.OpenMapped(dhtBytes)
	if err != nil {
		return nil, &merx.CorruptError{Path: f.Path(), Section: sectionDHT, Reason: err.Error()}
	}
	if sx.K() != meta.Index.K || sx.Shards() != meta.Shards {
		return nil, &merx.CorruptError{Path: f.Path(), Section: sectionDHT, Reason: fmt.Sprintf(
			"seed table (K=%d, %d shards) disagrees with metadata (K=%d, %d shards)",
			sx.K(), sx.Shards(), meta.Index.K, meta.Shards)}
	}

	// The fragment table is deterministic in (targets, K, FragmentLen), so
	// it is rebuilt rather than serialized; its unpacked code slices must
	// live on the heap anyway (they are byte-per-base working copies). A
	// fragment-count mismatch means the fragmentation algorithm changed
	// since the snapshot was written — the location lists would point into
	// the wrong fragments, so refuse the file.
	ft := BuildFragmentTable(targets, meta.Index.K, meta.Index.FragmentLen, workers)
	if ft.NumFragments() != meta.NumFragments {
		return nil, &merx.IncompatibleError{Path: f.Path(), Reason: fmt.Sprintf(
			"fragmentation of the stored targets yields %d fragments, snapshot expects %d (fragmentation algorithm changed since the snapshot was written)",
			ft.NumFragments(), meta.NumFragments)}
	}

	// The optional shard identity: absent on whole-reference snapshots.
	var shard *ShardInfo
	if f.HasSection(sectionShard) {
		shardBytes, err := f.SectionData(sectionShard)
		if err != nil {
			return nil, err
		}
		var si ShardInfo
		if err := json.Unmarshal(shardBytes, &si); err != nil {
			return nil, &merx.CorruptError{Path: f.Path(), Section: sectionShard, Reason: fmt.Sprintf("undecodable shard identity: %v", err)}
		}
		if err := si.Validate(); err != nil {
			return nil, &merx.CorruptError{Path: f.Path(), Section: sectionShard, Reason: err.Error()}
		}
		shard = &si
	}

	return &ThreadedIndex{
		opt:     meta.Index,
		targets: targets,
		ft:      ft,
		sx:      sx,
		stats:   meta.Stats,
		shard:   shard,
		snap:    f,
	}, nil
}

// Mapped reports whether this index aliases a loaded snapshot (true after
// LoadIndex, false after BuildIndex). While true, the seed table and packed
// target bytes live in the snapshot's read-only mapping, not on the heap.
func (ix *ThreadedIndex) Mapped() bool { return ix.snap != nil }

// SnapshotPath returns the path of the backing snapshot for a loaded
// index, or "" for a built one.
func (ix *ThreadedIndex) SnapshotPath() string {
	if ix.snap == nil {
		return ""
	}
	return ix.snap.Path()
}

// Close releases the snapshot mapping backing a loaded index. The index —
// including Results previously returned by Query, if they alias target
// names — must not be used afterwards. Close on a built index is a no-op;
// Close is idempotent.
func (ix *ThreadedIndex) Close() error {
	if ix.snap == nil {
		return nil
	}
	f := ix.snap
	ix.snap = nil
	return f.Close()
}

// Target records of the "TARG" section: a u64 record count, then per
// record a 16-byte fixed part (u64 baseLen, u32 nameLen, u8 qualFlag, 3 B
// padding) followed by the name bytes, the quality bytes (baseLen of them,
// when qualFlag is 1), and the packed bases ((baseLen+3)/4 bytes, in the
// dna.Packed bit layout). Records abut with no padding.
const targRecordFixed = 16

// writeTargets serializes the reference sequences.
func writeTargets(w io.Writer, targets []seqio.Seq) error {
	bw := bufio.NewWriterSize(w, 1<<18)
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(targets)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var fixed [targRecordFixed]byte
	for _, t := range targets {
		binary.LittleEndian.PutUint64(fixed[0:], uint64(t.Seq.Len()))
		binary.LittleEndian.PutUint32(fixed[8:], uint32(len(t.Name)))
		qf := byte(0)
		if len(t.Qual) > 0 {
			if len(t.Qual) != t.Seq.Len() {
				return fmt.Errorf("target %q: %d quality values for %d bases", t.Name, len(t.Qual), t.Seq.Len())
			}
			qf = 1
		}
		fixed[12] = qf
		fixed[13], fixed[14], fixed[15] = 0, 0, 0
		if _, err := bw.Write(fixed[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(t.Name); err != nil {
			return err
		}
		if qf == 1 {
			if _, err := bw.Write(t.Qual); err != nil {
				return err
			}
		}
		if _, err := bw.Write(t.Seq.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readTargets decodes the "TARG" section. The packed base data and quality
// bytes of every sequence alias blob (zero-copy); names are materialized as
// strings.
func readTargets(blob []byte) ([]seqio.Seq, error) {
	if len(blob) < 8 {
		return nil, fmt.Errorf("section of %d bytes has no record count", len(blob))
	}
	count := binary.LittleEndian.Uint64(blob)
	// Each record costs at least its fixed part, which bounds the count a
	// section of this size can hold — and bounds the slice pre-allocation a
	// crafted count could otherwise inflate.
	if count > uint64(len(blob)-8)/targRecordFixed {
		return nil, fmt.Errorf("implausible target count %d for a %d-byte section", count, len(blob))
	}
	out := make([]seqio.Seq, 0, count)
	pos := 8
	for i := uint64(0); i < count; i++ {
		if len(blob)-pos < targRecordFixed {
			return nil, fmt.Errorf("target %d: truncated record header", i)
		}
		baseLen := binary.LittleEndian.Uint64(blob[pos:])
		nameLen := binary.LittleEndian.Uint32(blob[pos+8:])
		qualFlag := blob[pos+12]
		pos += targRecordFixed
		if qualFlag > 1 {
			return nil, fmt.Errorf("target %d: bad quality flag %d", i, qualFlag)
		}
		if baseLen > 4*uint64(len(blob)) {
			return nil, fmt.Errorf("target %d: implausible length %d bases", i, baseLen)
		}
		packedLen := (baseLen + 3) / 4
		need := uint64(nameLen) + packedLen
		if qualFlag == 1 {
			need += baseLen
		}
		if need > uint64(len(blob)-pos) {
			return nil, fmt.Errorf("target %d: record of %d bytes exceeds section", i, need)
		}
		name := string(blob[pos : pos+int(nameLen)])
		pos += int(nameLen)
		var qual []byte
		if qualFlag == 1 {
			qual = blob[pos : pos+int(baseLen) : pos+int(baseLen)]
			pos += int(baseLen)
		}
		packed, err := dna.FromPackedBytes(blob[pos:pos+int(packedLen):pos+int(packedLen)], int(baseLen))
		if err != nil {
			return nil, fmt.Errorf("target %d (%q): %v", i, name, err)
		}
		pos += int(packedLen)
		out = append(out, seqio.Seq{Name: name, Seq: packed, Qual: qual})
	}
	if pos != len(blob) {
		return nil, fmt.Errorf("%d trailing bytes after the last target record", len(blob)-pos)
	}
	return out, nil
}
