package core

import (
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/lbl-repro/meraligner/internal/merx"
)

// saveLoad round-trips a built index through a snapshot file.
func saveLoad(t *testing.T, ix *ThreadedIndex, workers int) (*ThreadedIndex, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.merx")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(workers, path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { loaded.Close() })
	return loaded, path
}

// TestSnapshotQueryParity: queries against a loaded snapshot must produce
// results identical to the freshly built index — alignments, cigars,
// per-read statuses, everything the engine reports.
func TestSnapshotQueryParity(t *testing.T) {
	ds := testWorkload(t, 60_000, 3, 0.005)
	opt := testOptions(21)
	built, err := BuildIndex(3, opt.IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	loaded, _ := saveLoad(t, built, 3)

	if !loaded.Mapped() {
		t.Error("loaded index does not report Mapped")
	}
	if built.Mapped() {
		t.Error("built index reports Mapped")
	}
	if loaded.Options() != built.Options() {
		t.Errorf("loaded options %+v, want %+v", loaded.Options(), built.Options())
	}
	if loaded.Stats() != built.Stats() {
		t.Errorf("loaded stats %+v, want %+v", loaded.Stats(), built.Stats())
	}

	want, err := built.Query(context.Background(), 2, opt.QueryOptions, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Query(context.Background(), 2, opt.QueryOptions, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Alignments, got.Alignments) {
		t.Fatalf("alignments differ: built %d, loaded %d", len(want.Alignments), len(got.Alignments))
	}
	if want.AlignedReads != got.AlignedReads || want.ExactPathReads != got.ExactPathReads ||
		want.TotalAlignments != got.TotalAlignments || want.SWCalls != got.SWCalls {
		t.Fatalf("result counters differ: built %+v, loaded %+v", want, got)
	}

	// The serial path and the load-time phase accounting must work too.
	sGot, err := loaded.QuerySerial(context.Background(), opt.QueryOptions, ds.Reads[:20])
	if err != nil {
		t.Fatal(err)
	}
	sWant, err := built.QuerySerial(context.Background(), opt.QueryOptions, ds.Reads[:20])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sWant.Alignments, sGot.Alignments) {
		t.Fatal("serial-path alignments differ between built and loaded index")
	}
	phases := loaded.BuildPhases()
	if len(phases) != 1 || phases[0].Name != PhaseLoad {
		t.Errorf("loaded BuildPhases = %+v, want a single %q phase", phases, PhaseLoad)
	}
	if loaded.BuildWall() <= 0 {
		t.Error("loaded BuildWall not positive")
	}
}

// TestSnapshotTargetsPreserved: the packed reference must round-trip
// exactly (names, lengths, and bases), since SAM output depends on it.
func TestSnapshotTargetsPreserved(t *testing.T) {
	ds := testWorkload(t, 30_000, 1, 0)
	opt := testOptions(21)
	built, err := BuildIndex(2, opt.IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	loaded, _ := saveLoad(t, built, 2)
	if len(loaded.Targets()) != len(built.Targets()) {
		t.Fatalf("%d targets loaded, want %d", len(loaded.Targets()), len(built.Targets()))
	}
	for i, want := range built.Targets() {
		got := loaded.Targets()[i]
		if got.Name != want.Name || !got.Seq.Equal(want.Seq) {
			t.Fatalf("target %d (%q) differs after round trip", i, want.Name)
		}
	}
	if loaded.TargetCodesBytes() != built.TargetCodesBytes() {
		t.Errorf("TargetCodesBytes %d, want %d", loaded.TargetCodesBytes(), built.TargetCodesBytes())
	}
}

// TestSnapshotMaxLocListEnforced: a loaded truncated index must reject
// incompatible MaxSeedHits exactly like the built one.
func TestSnapshotMaxLocListEnforced(t *testing.T) {
	ds := testWorkload(t, 30_000, 1, 0)
	opt := testOptions(21)
	iopt := opt.IndexOptions
	iopt.MaxLocList = 5
	built, err := BuildIndex(2, iopt, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	loaded, _ := saveLoad(t, built, 2)
	qopt := opt.QueryOptions
	qopt.MaxSeedHits = 100 // exceeds the stored MaxLocList
	if _, err := loaded.Query(context.Background(), 1, qopt, ds.Reads[:5]); err == nil {
		t.Fatal("loaded index accepted MaxSeedHits beyond its MaxLocList")
	}
	qopt.MaxSeedHits = 5
	if _, err := loaded.Query(context.Background(), 1, qopt, ds.Reads[:5]); err != nil {
		t.Fatalf("compatible MaxSeedHits rejected: %v", err)
	}
}

// TestLoadIndexErrors: missing files, damaged files, and misuse must all
// fail with typed errors, never panic.
func TestLoadIndexErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadIndex(2, filepath.Join(dir, "missing.merx")); err == nil {
		t.Error("missing file accepted")
	}
	junk := filepath.Join(dir, "junk.merx")
	if err := os.WriteFile(junk, make([]byte, 256), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(2, junk); !errors.Is(err, merx.ErrIncompatible) {
		t.Errorf("junk file: got %v, want ErrIncompatible", err)
	}

	ds := testWorkload(t, 30_000, 1, 0)
	built, err := BuildIndex(2, testOptions(21).IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "index.merx")
	if err := built.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(0, path); err == nil {
		t.Error("workers=0 accepted")
	}

	// Bit-flip every region of the file: a flip must yield a typed error
	// naming a section (or an incompatibility for header-magic flips).
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	step := len(good)/64 + 1
	for off := 0; off < len(good); off += step {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x10
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		ix, err := LoadIndex(2, path)
		if err == nil {
			ix.Close()
			t.Fatalf("bit flip at %d/%d went undetected", off, len(good))
		}
		if !errors.Is(err, merx.ErrCorrupt) && !errors.Is(err, merx.ErrIncompatible) {
			t.Fatalf("bit flip at %d: untyped error %v", off, err)
		}
		if errors.Is(err, merx.ErrCorrupt) {
			var ce *merx.CorruptError
			if !errors.As(err, &ce) || ce.Section == "" {
				t.Fatalf("bit flip at %d: corrupt error %v names no section", off, err)
			}
		}
	}

	// Truncations too.
	for _, n := range []int{16, len(good) / 3, len(good) - 1} {
		if err := os.WriteFile(path, good[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		ix, err := LoadIndex(2, path)
		if err == nil {
			ix.Close()
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
		if !errors.Is(err, merx.ErrCorrupt) {
			t.Fatalf("truncation to %d: got %v, want ErrCorrupt", n, err)
		}
	}
}

// TestReadTargetsRejectsInflatedCount: a crafted record count larger than
// the section could possibly hold must be rejected before the slice
// pre-allocation, not OOM the loader.
func TestReadTargetsRejectsInflatedCount(t *testing.T) {
	blob := make([]byte, 4096)
	binary.LittleEndian.PutUint64(blob, 1<<40) // claims ~10^12 records
	if _, err := readTargets(blob); err == nil {
		t.Fatal("inflated target count accepted")
	}
}

// TestSaveFileMode: snapshots are shared serving artifacts; they must be
// world-readable (0644) despite being staged through a 0600 temp file.
func TestSaveFileMode(t *testing.T) {
	ds := testWorkload(t, 30_000, 1, 0)
	built, err := BuildIndex(2, testOptions(21).IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.merx")
	if err := built.Save(path); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode().Perm() != 0o644 {
		t.Errorf("snapshot mode %v, want -rw-r--r--", st.Mode().Perm())
	}
}

// TestSnapshotCloseIdempotent: Close is safe to call twice and on built
// indexes.
func TestSnapshotCloseIdempotent(t *testing.T) {
	ds := testWorkload(t, 30_000, 1, 0)
	built, err := BuildIndex(2, testOptions(21).IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	if err := built.Close(); err != nil {
		t.Fatalf("Close on built index: %v", err)
	}
	loaded, path := saveLoad(t, built, 2)
	if loaded.SnapshotPath() != path {
		t.Errorf("SnapshotPath %q, want %q", loaded.SnapshotPath(), path)
	}
	if err := loaded.Close(); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if loaded.Mapped() {
		t.Error("Mapped true after Close")
	}
}

// TestSaveDeterministic: saving the same index twice must produce the same
// file (no timestamps or randomness in the format), so snapshot artifacts
// are cacheable and diffable.
func TestSaveDeterministic(t *testing.T) {
	ds := testWorkload(t, 30_000, 2, 0.005)
	built, err := BuildIndex(3, testOptions(21).IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a.merx"), filepath.Join(dir, "b.merx")
	if err := built.Save(p1); err != nil {
		t.Fatal(err)
	}
	if err := built.Save(p2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1, b2) {
		t.Error("two saves of the same index differ byte for byte")
	}
}
