package core

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// The engine's headline guarantee: alignments byte-identical to the
// simulated pipeline on the same inputs — every field of every record,
// across option variations that steer different code paths.
func TestThreadedAlignmentsIdenticalToSim(t *testing.T) {
	ds := testWorkload(t, 80_000, 3, 0.005)
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"default", func(o *Options) {}},
		{"no-exact", func(o *Options) { o.ExactMatch = false }},
		{"no-fragmentation", func(o *Options) { o.FragmentLen = 0 }},
		{"capped-seeds", func(o *Options) { o.MaxSeedHits = 5 }},
		{"strided", func(o *Options) { o.SeedStride = 3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := testOptions(21)
			tc.mut(&opt)
			sim, err := Run(testMach(16), opt, ds.Contigs, ds.Reads)
			if err != nil {
				t.Fatal(err)
			}
			thr, err := RunThreaded(3, opt, ds.Contigs, ds.Reads)
			if err != nil {
				t.Fatal(err)
			}
			if sim.AlignedReads != thr.AlignedReads ||
				sim.ExactPathReads != thr.ExactPathReads ||
				sim.TotalAlignments != thr.TotalAlignments ||
				sim.SWCalls != thr.SWCalls ||
				sim.SeedLookups != thr.SeedLookups {
				t.Errorf("summary stats differ:\nsim: %d/%d/%d/%d/%d\nthr: %d/%d/%d/%d/%d",
					sim.AlignedReads, sim.ExactPathReads, sim.TotalAlignments, sim.SWCalls, sim.SeedLookups,
					thr.AlignedReads, thr.ExactPathReads, thr.TotalAlignments, thr.SWCalls, thr.SeedLookups)
			}
			if len(sim.Alignments) != len(thr.Alignments) {
				t.Fatalf("alignment counts differ: %d vs %d", len(sim.Alignments), len(thr.Alignments))
			}
			for i := range sim.Alignments {
				if sim.Alignments[i] != thr.Alignments[i] {
					t.Fatalf("alignment %d differs:\nsim: %+v\nthr: %+v",
						i, sim.Alignments[i], thr.Alignments[i])
				}
			}
		})
	}
}

// Results must not depend on the worker count or on scheduling: any pool
// size produces the same sorted alignment slice.
func TestThreadedDeterministicAcrossWorkerCounts(t *testing.T) {
	ds := testWorkload(t, 50_000, 2, 0.004)
	opt := testOptions(21)
	ref, err := RunThreaded(1, opt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 9} {
		got, err := RunThreaded(workers, opt, ds.Contigs, ds.Reads)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Alignments, got.Alignments) {
			t.Fatalf("workers=%d: alignments differ from single-worker run", workers)
		}
		if ref.TotalAlignments != got.TotalAlignments || ref.AlignedReads != got.AlignedReads {
			t.Fatalf("workers=%d: stats differ", workers)
		}
	}
	// Repeated runs at the same width are also identical.
	again, err := RunThreaded(5, opt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Alignments, again.Alignments) {
		t.Fatal("repeated run differs")
	}
}

// Phase stats must be genuine wall-clock measurements with real counters.
func TestThreadedPhaseStats(t *testing.T) {
	ds := testWorkload(t, 40_000, 2, 0.004)
	opt := testOptions(21)
	res, err := RunThreaded(2, opt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	wantPhases := []string{PhaseExtract, PhaseDrain, PhaseMark, PhaseAlign}
	if len(res.Phases) != len(wantPhases) {
		t.Fatalf("phases = %d, want %d", len(res.Phases), len(wantPhases))
	}
	for i, p := range res.Phases {
		if p.Name != wantPhases[i] {
			t.Errorf("phase %d = %q, want %q", i, p.Name, wantPhases[i])
		}
		if p.RealWall <= 0 || p.Wall != p.RealWall {
			t.Errorf("phase %q: Wall/RealWall not measured: %v/%v", p.Name, p.Wall, p.RealWall)
		}
	}
	align, _ := res.Phase(PhaseAlign)
	if align.Counters.SeedLookups == 0 || align.Counters.SeedLookups != res.SeedLookups {
		t.Errorf("align-phase seed lookups not measured: %d vs %d",
			align.Counters.SeedLookups, res.SeedLookups)
	}
	if res.TotalRealWall() <= 0 {
		t.Error("TotalRealWall <= 0")
	}
	if res.IndexStats.DistinctSeeds == 0 {
		t.Error("index stats missing")
	}
	// Disabling the exact-match optimization drops the mark phase.
	opt.ExactMatch = false
	res, err = RunThreaded(2, opt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Phase(PhaseMark); ok {
		t.Error("mark phase present with ExactMatch off")
	}
}

// The engine must actually run work on multiple goroutines: with a worker
// pool of 4, the align phase must be visited by more than one distinct
// goroutine (observed via per-worker thread IDs doing work).
func TestThreadedUsesMultipleGoroutines(t *testing.T) {
	ds := testWorkload(t, 60_000, 3, 0.004)
	opt := testOptions(21)
	res, err := RunThreaded(4, opt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	// With dynamic batching over thousands of reads, a 4-worker pool
	// starves only if the pool is broken; SeedLookups are accumulated
	// per-worker and summed, so equality with the sim run (checked in the
	// parity test) plus a nonzero count here means the counters flowed
	// through the per-worker threads.
	if res.SeedLookups == 0 {
		t.Fatal("no seed lookups measured")
	}
	if res.AlignedReads == 0 {
		t.Fatal("nothing aligned")
	}
}

// Real-parallelism speedup: with 4+ host cores, 4 workers must beat 1
// worker by at least 1.5x on the aligning phase. Skipped on smaller hosts
// (CI's race job runs it where cores allow).
func TestThreadedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("host has %d cores; need 4+ to measure real speedup", runtime.NumCPU())
	}
	ds := testWorkload(t, 300_000, 6, 0.005)
	opt := DefaultOptions(31)
	measure := func(workers int) float64 {
		best := 0.0
		for i := 0; i < 3; i++ {
			res, err := RunThreaded(workers, opt, ds.Contigs, ds.Reads)
			if err != nil {
				t.Fatal(err)
			}
			w := res.TotalRealWall()
			if best == 0 || w < best {
				best = w
			}
		}
		return best
	}
	t1 := measure(1)
	t4 := measure(4)
	if speedup := t1 / t4; speedup < 1.5 {
		t.Errorf("4-worker speedup only %.2fx (1w %.3fs, 4w %.3fs)", speedup, t1, t4)
	}
}

func TestThreadedValidation(t *testing.T) {
	ds := testWorkload(t, 30_000, 1, 0)
	if _, err := RunThreaded(0, testOptions(21), ds.Contigs, ds.Reads); err == nil {
		t.Error("workers=0 accepted")
	}
	bad := testOptions(21)
	bad.K = 0
	if _, err := RunThreaded(2, bad, ds.Contigs, ds.Reads); err == nil {
		t.Error("invalid options accepted")
	}
	if _, err := RunThreadedSim(0, testOptions(21), ds.Contigs, ds.Reads); err == nil {
		t.Error("RunThreadedSim threads=0 accepted")
	}
}

func TestThreadedEmptyAndTinyInputs(t *testing.T) {
	opt := testOptions(21)
	res, err := RunThreaded(3, opt, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalReads != 0 || res.TotalAlignments != 0 {
		t.Error("empty run produced results")
	}
	// Queries shorter than K are skipped, as in the simulated engine.
	tg := []seqio.Seq{{Name: "c", Seq: dna.MustPack("ACGTACGTACGTACGTACGTACGTACGT")}}
	qs := []seqio.Seq{{Name: "q", Seq: dna.MustPack("ACGT")}}
	res, err = RunThreaded(2, opt, tg, qs)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAlignments != 0 {
		t.Error("short query aligned")
	}
}

func TestRunThreadedSimStillSimulates(t *testing.T) {
	ds := testWorkload(t, 40_000, 2, 0.004)
	opt := testOptions(21)
	res, err := RunThreadedSim(4, opt, ds.Contigs, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	// Simulated phases include the I/O phases and carry virtual time.
	if _, ok := res.Phase(PhaseReadTargets); !ok {
		t.Error("simulated run missing I/O phase")
	}
	if res.TotalWall() <= 0 {
		t.Error("no simulated time")
	}
}

// RealPhaseStat plumbing: measured duration lands in both Wall and RealWall.
func TestRealPhaseStat(t *testing.T) {
	st := upc.RealPhaseStat("x", 250*time.Millisecond, upc.Counters{SWCalls: 7})
	if st.Wall != 0.25 || st.RealWall != 0.25 || st.Counters.SWCalls != 7 {
		t.Errorf("RealPhaseStat mangled fields: %+v", st)
	}
}
