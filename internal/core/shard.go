package core

import (
	"fmt"

	"github.com/lbl-repro/meraligner/internal/seqio"
)

// Reference sharding: a whole reference partitioned into N contiguous
// target ranges, each built into a normal single-node index plus a ShardInfo
// recording its place in the fleet (persisted as the snapshot's "SHRD"
// section). Targets keep their global names, and SAM/wire coordinates are
// per-target, so a shard's alignments are already globally addressed — the
// bases fields exist so a router (or operator) can verify fleet consistency
// and reason about global target/fragment ids without opening every shard.

// ShardInfo is one shard's identity within a sharded reference.
type ShardInfo struct {
	// ID is this shard's position in the fleet, 0-based; shard order is
	// global target order.
	ID int `json:"id"`
	// Count is the number of shards the reference was partitioned into.
	Count int `json:"count"`
	// TargetBase is the global index of this shard's first target: the sum
	// of all earlier shards' target counts.
	TargetBase int `json:"target_base"`
	// FragmentBase is the global id of this shard's first fragment under
	// the whole-reference fragmentation (fragment ids are assigned in
	// target order, so a shard's local fragment f is global FragmentBase+f).
	FragmentBase int `json:"fragment_base"`
}

// Validate rejects impossible shard identities (a corrupt or hand-edited
// SHRD section).
func (si ShardInfo) Validate() error {
	if si.Count < 1 || si.ID < 0 || si.ID >= si.Count || si.TargetBase < 0 || si.FragmentBase < 0 {
		return fmt.Errorf("core: impossible shard identity %+v", si)
	}
	return nil
}

// ShardInfo returns the index's shard identity, or nil when the index
// covers a whole (unsharded) reference.
func (ix *ThreadedIndex) ShardInfo() *ShardInfo {
	if ix.shard == nil {
		return nil
	}
	si := *ix.shard
	return &si
}

// SetShardInfo stamps the index as one shard of a sharded reference; Save
// then persists the identity in the snapshot's "SHRD" section. Used by the
// shard producer right after building the slice's index.
func (ix *ThreadedIndex) SetShardInfo(si ShardInfo) error {
	if err := si.Validate(); err != nil {
		return err
	}
	ix.shard = &si
	return nil
}

// CountTargetFragments returns the number of fragments the fragmentation of
// BuildFragmentTable produces for one target of L bases with seed length k
// and fragment length F — the per-target step of computing a shard's
// FragmentBase without building the whole-reference table.
func CountTargetFragments(L, k, F int) int {
	if F == 0 || L <= F {
		return 1
	}
	n, step := 0, F-k+1
	for s := 0; s < L; s += step {
		n++
		if s+F >= L {
			break
		}
	}
	return n
}

// ShardRanges partitions targets into n contiguous ranges balanced by total
// bases (the same partition the build's read-targets phase uses) and
// returns, per shard, its [lo, hi) target range. It refuses partitions that
// would leave a shard empty — an empty shard serves nothing and usually
// means the operator asked for more shards than targets.
func ShardRanges(targets []seqio.Seq, n int) ([][2]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: shard count must be positive, got %d", n)
	}
	if n > len(targets) {
		return nil, fmt.Errorf("core: cannot partition %d target(s) into %d shards", len(targets), n)
	}
	ranges := PartitionTargetsByBases(targets, n)
	for i, r := range ranges {
		if r[0] == r[1] {
			return nil, fmt.Errorf("core: base-balanced partition leaves shard %d/%d empty (one target dominates); use fewer shards", i, n)
		}
	}
	return ranges, nil
}
