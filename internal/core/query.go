package core

import (
	"context"

	"github.com/lbl-repro/meraligner/internal/align"
	"github.com/lbl-repro/meraligner/internal/cache"
	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/kmer"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// candKey identifies a candidate alignment for deduplication: one target,
// one strand, one seed diagonal.
type candKey struct {
	target int32
	diag   int32
	rc     bool
}

// foundKey identifies a reported alignment for deduplication: alignments
// reached from different seed diagonals collapse when they share a target,
// strand and both start coordinates.
type foundKey struct {
	target int32
	tstart int32
	qstart int32
	rc     bool
}

// seenSpill bounds the linear-scan candidate dedupe; the rare query with
// more live candidates spills into a (reused) map instead of going O(n²).
const seenSpill = 128

// indexAccess abstracts the seed index and target store behind the aligning
// phase, so the same per-query algorithm runs against either engine: the
// simulated PGAS index (dht.Index through the software caches, charging the
// cost model) or the threaded engine's in-memory sharded index (real data,
// real time, no cost charging).
type indexAccess interface {
	// Lookup resolves a canonical seed to its location list.
	Lookup(th *upc.Thread, s kmer.Kmer) (dht.LookupResult, bool)
	// SingleCopy reports the fragment's single-copy-seeds flag (§IV-A).
	SingleCopy(frag int32) bool
	// FetchTarget accounts for bringing a target's sequence to the thread.
	FetchTarget(th *upc.Thread, target int32, targetBytes, owner int)
}

// simAccess is the simulated-machine implementation: lookups go through the
// per-node seed cache, target fetches through the target cache, and every
// operation charges the thread's virtual clock.
type simAccess struct {
	ix *dht.Index
	g  *cache.Group
}

func (a simAccess) Lookup(th *upc.Thread, s kmer.Kmer) (dht.LookupResult, bool) {
	return a.g.Lookup(th, a.ix, s)
}
func (a simAccess) SingleCopy(frag int32) bool { return a.ix.SingleCopy(int(frag)) }
func (a simAccess) FetchTarget(th *upc.Thread, target int32, targetBytes, owner int) {
	a.g.FetchTarget(th, target, targetBytes, owner)
}

// queryProcessor holds the reusable per-thread state of the aligning phase.
// Every buffer below is recycled query to query, so the steady-state serial
// path performs zero allocations per read (pinned by BenchmarkQueryNoAlloc).
type queryProcessor struct {
	opt   Options
	acc   indexAccess
	ft    *FragmentTable
	costs upc.MachineConfig // cost constants for the hot loop

	scan    kmer.Scanner // rolling seed extraction over the current query
	fwd, rc []byte       // unpacked query codes, forward and reverse complement

	// Candidate dedupe: a reusable linear-scan slice, spilling into a lazily
	// allocated map on the rare candidate-heavy query.
	seenList []candKey
	seenMap  map[candKey]struct{}

	// Striped profiles, built at most once per (query, strand) and reused
	// across every candidate window of the query (the SSW lifecycle).
	profFwd, profRC     align.Profile
	profFwdOK, profRCOK bool

	found     []align.Result // alignments of the current query
	foundKeys []foundKey     // their dedupe keys (packed, scanned linearly)
	foundRC   []bool
	foundTg   []int32

	// Remote-DHT state, active only when setResolver was called (the
	// threaded engine with QueryOptions.SeedResolver set): each query's
	// seeds are collected into seedBuf, resolved in one ResolveSeeds call,
	// and consumed from ansBuf in lookup order.
	resolver SeedResolver
	rctx     context.Context
	seedBuf  []kmer.Kmer
	ansBuf   []SeedAnswer
	ansIdx   int
}

func newQueryProcessor(mach upc.MachineConfig, opt Options, acc indexAccess, ft *FragmentTable) *queryProcessor {
	return &queryProcessor{opt: opt, acc: acc, ft: ft, costs: mach}
}

// setResolver activates the remote-DHT path: seed lookups resolve through r
// under ctx instead of probing the local index. Only the threaded engine
// calls this; the simulated engine always probes locally.
func (qp *queryProcessor) setResolver(ctx context.Context, r SeedResolver) {
	qp.resolver, qp.rctx = r, ctx
}

// prefetchSeeds collects every canonical seed the current query will look
// up — the first position, then every later position on the stride — and
// resolves them in one ResolveSeeds call. The collection order IS the
// consumption order of process, so lookupSeed can pop answers positionally.
func (qp *queryProcessor) prefetchSeeds(q dna.Packed, stride int) error {
	qp.seedBuf = qp.seedBuf[:0]
	var sc kmer.Scanner
	sc.Reset(q, qp.opt.K)
	sc.Next()
	canon, _ := sc.Canonical()
	qp.seedBuf = append(qp.seedBuf, canon)
	for sc.Next() {
		if sc.Offset()%stride != 0 {
			continue
		}
		canon, _ := sc.Canonical()
		qp.seedBuf = append(qp.seedBuf, canon)
	}
	n := len(qp.seedBuf)
	if cap(qp.ansBuf) < n {
		qp.ansBuf = make([]SeedAnswer, n)
	}
	qp.ansBuf = qp.ansBuf[:n]
	clear(qp.ansBuf)
	qp.ansIdx = 0
	return qp.resolver.ResolveSeeds(qp.rctx, qp.seedBuf, qp.ansBuf)
}

// lookupSeed is the one seed-lookup site of the aligning phase: the local
// index probe, or — on the remote path — the next prefetched answer. The
// thread's lookup counter advances either way, so per-query statistics are
// identical across the two paths.
func (qp *queryProcessor) lookupSeed(th *upc.Thread, s kmer.Kmer) (dht.LookupResult, bool) {
	if qp.resolver == nil {
		return qp.acc.Lookup(th, s)
	}
	a := qp.ansBuf[qp.ansIdx]
	qp.ansIdx++
	th.Counters.SeedLookups++
	return a.Res, a.OK
}

// process aligns one query (Algorithm 1, lines 8-12, plus §IV
// optimizations), charging the thread's cost model and accumulating into st.
func (qp *queryProcessor) process(th *upc.Thread, st *threadStats, qi int32, q dna.Packed) {
	opt := &qp.opt
	L := q.Len()
	if L < opt.K {
		// No complete seed fits: the read cannot be aligned. Record the
		// typed status instead of silently dropping it, so callers (the
		// service layer in particular) can distinguish "bad input" from
		// "aligned nowhere".
		st.tooShort = append(st.tooShort, qi)
		return
	}
	mach := &qp.costs
	if qp.resolver != nil {
		// Remote path: resolve every seed of this query in one batched
		// call before the per-seed loop consumes the answers positionally.
		if err := qp.prefetchSeeds(q, opt.stride()); err != nil {
			st.err = err
			return
		}
	}
	qp.fwd = q.AppendCodes(qp.fwd[:0])
	qp.rc = qp.rc[:0]
	qp.seenList = qp.seenList[:0]
	if len(qp.seenMap) > 0 {
		clear(qp.seenMap)
	}
	qp.profFwdOK, qp.profRCOK = false, false
	qp.found = qp.found[:0]
	qp.foundKeys = qp.foundKeys[:0]
	qp.foundRC = qp.foundRC[:0]
	qp.foundTg = qp.foundTg[:0]

	// The scanner maintains the forward and reverse-complement seeds
	// incrementally; L >= K guarantees at least one position.
	qp.scan.Reset(q, opt.K)
	qp.scan.Next()

	// ---- Exact-match fast path (§IV-A) ----
	firstSeedChecked := false
	var firstRes dht.LookupResult
	var firstOK bool
	var firstQRC bool
	if opt.ExactMatch {
		th.Compute(mach.SeedExtractCost)
		var firstCanon kmer.Kmer
		firstCanon, firstQRC = qp.scan.Canonical()
		firstRes, firstOK = qp.lookupSeed(th, firstCanon)
		firstSeedChecked = true
		if firstOK && firstRes.Count == 1 && len(firstRes.Locs) == 1 {
			loc := firstRes.Locs[0]
			if qp.acc.SingleCopy(loc.Frag) {
				if a, ok := qp.tryExact(th, loc, firstQRC, L); ok {
					a.Query = qi
					st.exact++
					st.aligned++
					st.totalAlignments++
					if st.alignments != nil {
						a.Cigar = align.Cigar{{Op: 'M', Len: L}}.String()
						st.alignments = append(st.alignments, a)
					}
					return // single lookup sufficed — minimal communication
				}
			}
		}
	}

	// ---- General path: every seed, lookup, extend (lines 9-12) ----
	stride := opt.stride()
	if firstSeedChecked {
		qp.seedHits(th, st, firstRes, firstOK, firstQRC, 0, L) // reuse the fast-path lookup
	} else {
		th.Compute(mach.SeedExtractCost)
		canon, qrc := qp.scan.Canonical()
		res, ok := qp.lookupSeed(th, canon)
		qp.seedHits(th, st, res, ok, qrc, 0, L)
	}
	for qp.scan.Next() {
		qoff := qp.scan.Offset()
		if qoff%stride != 0 {
			continue // the rolling update is O(1); only looked-up seeds pay
		}
		th.Compute(mach.SeedExtractCost)
		canon, qrc := qp.scan.Canonical()
		res, ok := qp.lookupSeed(th, canon)
		qp.seedHits(th, st, res, ok, qrc, qoff, L)
	}

	if len(qp.found) > 0 {
		st.aligned++
	}
	for i, a := range qp.found {
		st.totalAlignments++
		if st.alignments != nil {
			st.alignments = append(st.alignments, Alignment{
				Query:  qi,
				Target: qp.foundTg[i],
				RC:     qp.foundRC[i],
				Score:  int32(a.Score),
				QStart: int32(a.QStart), QEnd: int32(a.QEnd),
				TStart: int32(a.TStart), TEnd: int32(a.TEnd),
				Cigar: a.Cigar.String(),
			})
		}
	}
}

// seedHits feeds one seed lookup's hits into candidate generation, applying
// the §IV-C sensitivity threshold.
func (qp *queryProcessor) seedHits(th *upc.Thread, st *threadStats, res dht.LookupResult, ok, qrc bool, qoff, L int) {
	if !ok {
		return
	}
	if qp.opt.MaxSeedHits > 0 && int(res.Count) > qp.opt.MaxSeedHits {
		return // §IV-C sensitivity threshold
	}
	for _, loc := range res.Locs {
		qp.candidate(th, st, loc, qrc, qoff, L)
	}
}

// tryExact attempts the single-lookup exact match: the query's first seed
// hit a single-copy-seed fragment exactly once; if the whole query matches
// the target there with a plain comparison, Lemma 1 guarantees the
// alignment is unique and no further lookups or Smith-Waterman are needed.
func (qp *queryProcessor) tryExact(th *upc.Thread, loc dht.Loc, qrc bool, L int) (Alignment, bool) {
	frag := qp.ft.Frags[loc.Frag]
	rc := qrc != loc.RC
	qoffEff := 0
	if rc {
		qoffEff = L - qp.opt.K // seed position within the reverse-complemented query
	}
	tOff := int(frag.Start) + int(loc.Off) - qoffEff
	tcodes := qp.ft.TargetCodes(frag.Target)
	if tOff < 0 || tOff+L > len(tcodes) {
		return Alignment{}, false // query overhangs the target: general path
	}
	qp.acc.FetchTarget(th, frag.Target, qp.ft.TargetPackedBytes(frag.Target), qp.ft.Owner(loc.Frag))
	th.Compute(float64((L+3)/4) * qp.costs.MemcmpCost)
	th.Counters.MemcmpBytes += int64((L + 3) / 4)
	qc := qp.queryCodes(rc, L)
	for i := 0; i < L; i++ {
		if qc[i] != tcodes[tOff+i] {
			return Alignment{}, false
		}
	}
	return Alignment{
		Target: frag.Target,
		RC:     rc,
		Score:  int32(L * qp.opt.Scoring.Match),
		QStart: 0, QEnd: int32(L),
		TStart: int32(tOff), TEnd: int32(tOff + L),
		Exact: true,
	}, true
}

// seenBefore records a candidate key, reporting whether it was already
// present. Small candidate sets stay in the reusable slice; the rare
// repeat-heavy query spills into the map (allocated once, cleared lazily).
func (qp *queryProcessor) seenBefore(key candKey) bool {
	for i := range qp.seenList {
		if qp.seenList[i] == key {
			return true
		}
	}
	if len(qp.seenList) < seenSpill {
		qp.seenList = append(qp.seenList, key)
		return false
	}
	if qp.seenMap == nil {
		qp.seenMap = make(map[candKey]struct{}, 2*seenSpill)
	}
	if _, dup := qp.seenMap[key]; dup {
		return true
	}
	qp.seenMap[key] = struct{}{}
	return false
}

// candidate processes one seed hit on the general path: dedupe by
// (target, strand, diagonal), fetch the target through the cache, and run
// striped Smith-Waterman on the seed window with the query's per-strand
// reusable profile.
func (qp *queryProcessor) candidate(th *upc.Thread, st *threadStats, loc dht.Loc, qrc bool, qoff, L int) {
	frag := qp.ft.Frags[loc.Frag]
	rc := qrc != loc.RC
	qoffEff := qoff
	if rc {
		qoffEff = L - qoff - qp.opt.K
	}
	seedT := int(frag.Start) + int(loc.Off) // seed position in the target
	diag := int32(seedT - qoffEff)
	if qp.seenBefore(candKey{target: frag.Target, diag: diag, rc: rc}) {
		return
	}

	tcodes := qp.ft.TargetCodes(frag.Target)
	qp.acc.FetchTarget(th, frag.Target, qp.ft.TargetPackedBytes(frag.Target), qp.ft.Owner(loc.Frag))

	winLo := seedT - qoffEff - qp.opt.ExtendPad
	if winLo < 0 {
		winLo = 0
	}
	winHi := seedT + (L - qoffEff) + qp.opt.ExtendPad
	if winHi > len(tcodes) {
		winHi = len(tcodes)
	}
	cells := align.Cells(L, winHi-winLo)
	th.Compute(qp.costs.SWSetupCost + float64(cells)*qp.costs.SWCellCost)
	th.Counters.SWCells += cells
	th.Counters.SWCalls++
	st.swCalls++

	var res align.Result
	if st.alignments == nil && qp.opt.Extend == nil {
		// Statistics-only runs use the striped score kernel (as the real
		// code does); end-points are derived from the striped result, and
		// the traceback is skipped entirely. The profile is built once per
		// (query, strand) and reused across every candidate window.
		sr := qp.strandProfile(rc, L).AlignWindow(tcodes[winLo:winHi])
		res = align.Result{Score: sr.Score, TStart: winLo + sr.TEnd, TEnd: winLo + sr.TEnd}
	} else {
		qc := qp.queryCodes(rc, L)
		extend := qp.opt.Extend
		if extend == nil {
			extend = align.ExtendSeed
		}
		res = extend(qc, tcodes, qoffEff, seedT, qp.opt.K, qp.opt.Scoring, qp.opt.ExtendPad)
	}

	if res.Score < qp.opt.minScore() {
		return
	}
	// Dedupe identical alignments reached from different seed diagonals:
	// linear scan over the packed key slice.
	key := foundKey{target: frag.Target, tstart: int32(res.TStart), qstart: int32(res.QStart), rc: rc}
	for i := range qp.foundKeys {
		if qp.foundKeys[i] == key {
			return
		}
	}
	qp.found = append(qp.found, res)
	qp.foundKeys = append(qp.foundKeys, key)
	qp.foundRC = append(qp.foundRC, rc)
	qp.foundTg = append(qp.foundTg, frag.Target)
}

// strandProfile returns the striped profile of the query on the requested
// strand, building (or Reset-recycling) it on first use within the query.
func (qp *queryProcessor) strandProfile(rc bool, L int) *align.Profile {
	if rc {
		if !qp.profRCOK {
			qp.profRC.Reset(qp.queryCodes(true, L), qp.opt.Scoring)
			qp.profRCOK = true
		}
		return &qp.profRC
	}
	if !qp.profFwdOK {
		qp.profFwd.Reset(qp.fwd, qp.opt.Scoring)
		qp.profFwdOK = true
	}
	return &qp.profFwd
}

// queryCodes returns the query's code slice on the requested strand,
// computing the reverse complement lazily.
func (qp *queryProcessor) queryCodes(rc bool, L int) []byte {
	if !rc {
		return qp.fwd
	}
	if len(qp.rc) != L {
		qp.rc = qp.rc[:0]
		for i := L - 1; i >= 0; i-- {
			qp.rc = append(qp.rc, 3-qp.fwd[i])
		}
	}
	return qp.rc
}
