package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/kmer"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// This file implements the shared-memory execution engine: the same
// seed-and-extend pipeline as Run, executed by a pool of real goroutines
// against a sharded in-memory seed index (dht.Sharded) instead of the
// simulated PGAS machine. Phase times are genuine wall-clock measurements
// (the merAligner configuration of Fig 11: one node, 1-24 cores); event
// counters (seed lookups, SW cells, memcmp bytes) are measured identically
// to the simulated engine.
//
// The engine mirrors the paper's structure phase by phase:
//
//	extract+stage  workers pull fragment chunks from an atomic work cursor,
//	               extract seeds, and stage them into per-worker S-entry
//	               buffers that ship to the index arena with one atomic
//	               reservation per batch (aggregating stores, §III-A)
//	drain          workers pull shards; each shard sorts and inserts its
//	               entries locally, lock-free
//	mark           workers pull shards; repeat seeds clear single-copy
//	               flags with idempotent atomic stores (§IV-A)
//	align          workers pull query batches; each query runs the exact-
//	               match fast path (§IV-A) and the general seed-lookup +
//	               striped Smith-Waterman path (§IV-B/V-B)
//
// Alignments are byte-identical to Run's on the same inputs: the sharded
// index sorts entries with the same comparator as the simulated drain, so
// location lists — and therefore candidate order, deduplication, and
// scores — match exactly.

// threadedAccess adapts dht.Sharded to the indexAccess interface. Lookups
// touch real memory only; no communication is simulated, but the measured
// counters are maintained so Results are comparable across engines.
type threadedAccess struct {
	sx *dht.Sharded
}

func (a threadedAccess) Lookup(th *upc.Thread, s kmer.Kmer) (dht.LookupResult, bool) {
	th.Counters.SeedLookups++
	return a.sx.Lookup(s)
}
func (a threadedAccess) SingleCopy(frag int32) bool { return a.sx.SingleCopy(int(frag)) }
func (a threadedAccess) FetchTarget(th *upc.Thread, target int32, targetBytes, owner int) {
	// Target sequences live in shared memory; nothing to move.
}

// chunk sizes for the dynamic work cursors: small enough to balance skewed
// fragment lengths and per-read work, large enough to amortize the atomic.
const (
	extractChunk = 32  // fragments per claim
	alignBatch   = 256 // queries per claim
)

// runPool runs fn on workers goroutines until claims are exhausted: each
// fn(w, lo, hi) call owns items [lo, hi) of an n-item sequence, claimed
// chunk-at-a-time from a shared atomic cursor (guided self-scheduling, the
// shared-memory analogue of the paper's per-thread block partition).
func runPool(workers, n, chunk int, fn func(w, lo, hi int)) {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// realPhases accumulates wall-clock PhaseStats for a threaded run.
type realPhases struct {
	phases []upc.PhaseStat
	total  upc.Counters
}

// run measures fn and records it as a phase, folding in the per-worker
// counters accumulated during the phase.
func (r *realPhases) run(name string, threads []*upc.Thread, fn func()) {
	var before upc.Counters
	for _, t := range threads {
		before.Add(t.Counters)
	}
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	var after upc.Counters
	for _, t := range threads {
		after.Add(t.Counters)
	}
	delta := after.Sub(before)
	stat := upc.RealPhaseStat(name, elapsed, delta)
	r.phases = append(r.phases, stat)
	r.total.Add(delta)
}

// RunThreaded executes merAligner in shared-memory mode: a goroutine worker
// pool builds a sharded seed index with the two-stage aggregating-stores
// scheme and aligns query batches with the exact-match fast path and
// striped Smith-Waterman. workers is the pool size (the paper's single-node
// core count, Fig 11); workers <= 0 is an error. Alignments are identical
// to Run's on the same inputs; Results.Phases carry measured wall-clock
// times in both Wall and RealWall.
func RunThreaded(workers int, opt Options, targets, queries []seqio.Seq) (*Results, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("core: threads must be positive, got %d", workers)
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	// Cost constants are still consulted by the shared per-query code (it
	// charges virtual clocks nobody reads in this mode); counters are real.
	costs := upc.Edison(workers)
	costs.PPN = workers

	threads := make([]*upc.Thread, workers)
	for w := range threads {
		threads[w] = upc.NewStandaloneThread(costs, w)
	}
	rec := &realPhases{}
	res := &Results{TotalReads: len(queries)}

	// Fragment the targets exactly as the simulated engine does (same
	// worker count ⇒ same data ownership labels; contents do not depend on
	// the partition).
	ft := BuildFragmentTable(targets, opt.K, opt.FragmentLen, workers)

	maxLoc := 0
	if opt.MaxSeedHits > 0 {
		maxLoc = opt.MaxSeedHits + 1
	}
	totalSeeds := 0
	for f := 0; f < ft.NumFragments(); f++ {
		if n := int(ft.Frags[f].Len) - opt.K + 1; n > 0 {
			totalSeeds += n
		}
	}
	sx, err := dht.NewSharded(dht.ShardedConfig{
		K: opt.K, S: opt.AggS, MaxLocList: maxLoc,
		Shards: dht.DefaultShards(workers),
	}, ft.NumFragments(), totalSeeds, workers)
	if err != nil {
		return nil, err
	}

	// ---- Phase 1: extract seeds and stage into the sharded index ----
	builders := make([]*dht.ShardedBuilder, workers)
	for w := range builders {
		builders[w] = sx.NewBuilder()
	}
	rec.run(PhaseExtract, threads, func() {
		kbufs := make([][]kmer.Kmer, workers)
		runPool(workers, ft.NumFragments(), extractChunk, func(w, lo, hi int) {
			b := builders[w]
			for f := lo; f < hi; f++ {
				kbufs[w] = kmer.Extract(ft.FragSeq(int32(f)), opt.K, kbufs[w][:0])
				for off, s := range kbufs[w] {
					canon, rc := s.Canonical(opt.K)
					b.Add(dht.SeedEntry{Seed: canon, Loc: dht.Loc{
						Frag: int32(f),
						Off:  int32(off),
						RC:   rc,
					}})
				}
			}
		})
		for _, b := range builders {
			b.Flush()
		}
	})

	// ---- Phase 2: drain shards into local buckets (lock-free) ----
	rec.run(PhaseDrain, threads, func() {
		runPool(workers, sx.Shards(), 1, func(w, lo, hi int) {
			for s := lo; s < hi; s++ {
				sx.DrainShard(s)
			}
		})
		sx.ReleaseArena()
	})

	// ---- Phase 3: mark single-copy-seed fragments (§IV-A) ----
	if opt.ExactMatch {
		rec.run(PhaseMark, threads, func() {
			runPool(workers, sx.Shards(), 1, func(w, lo, hi int) {
				for s := lo; s < hi; s++ {
					sx.MarkShard(s)
				}
			})
		})
	}

	// ---- Phase 4: align query batches ----
	perThread := make([]threadStats, workers)
	rec.run(PhaseAlign, threads, func() {
		qps := make([]*queryProcessor, workers)
		runPool(workers, len(queries), alignBatch, func(w, lo, hi int) {
			if qps[w] == nil {
				qps[w] = newQueryProcessor(costs, opt, threadedAccess{sx: sx}, ft)
			}
			st := &perThread[w]
			if opt.CollectAlignments && st.alignments == nil {
				st.alignments = []Alignment{}
			}
			for qi := lo; qi < hi; qi++ {
				qps[w].process(threads[w], st, int32(qi), queries[qi].Seq)
			}
		})
	})

	mergeThreadStats(res, perThread, opt.CollectAlignments)
	res.Phases = rec.phases
	res.SeedLookups = rec.total.SeedLookups
	res.IndexStats = sx.Stats()
	return res, nil
}

// RunThreadedSim is the pre-engine behavior of RunThreaded, retained for
// engine comparisons: the simulated pipeline configured as a single node
// with one worker goroutine per simulated thread, so PhaseStat.RealWall
// measures the host time of executing the cost-charged pipeline.
func RunThreadedSim(threads int, opt Options, targets, queries []seqio.Seq) (*Results, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("core: threads must be positive, got %d", threads)
	}
	mach := upc.Edison(threads)
	mach.PPN = threads // one node
	mach.Workers = threads
	return Run(mach, opt, targets, queries)
}

// TotalRealWall sums the real wall-clock seconds of all phases — the
// measured end-to-end runtime in threaded mode.
func (r *Results) TotalRealWall() float64 {
	var s float64
	for _, p := range r.Phases {
		s += p.RealWall
	}
	return s
}
