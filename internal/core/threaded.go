package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/kmer"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// This file holds the shared plumbing of the threaded execution engine —
// the worker pool, the wall-clock phase recorder, and the index adapter —
// plus RunThreaded, the one-shot entry point. The engine itself is split
// into its two halves in index.go: BuildIndex (seed-index construction,
// §III) and ThreadedIndex.Query (the aligning phase, §IV). RunThreaded
// composes them, so a one-shot run and a build-once/serve-many service
// execute literally the same code.
//
// The engine mirrors the paper's structure phase by phase:
//
//	extract+stage  workers pull fragment chunks from an atomic work cursor,
//	               extract seeds, and stage them into per-worker S-entry
//	               buffers that ship to the index arena with one atomic
//	               reservation per batch (aggregating stores, §III-A)
//	drain          workers pull shards; each shard sorts and inserts its
//	               entries locally, lock-free
//	mark           workers pull shards; repeat seeds clear single-copy
//	               flags with idempotent atomic stores (§IV-A)
//	align          workers pull query batches; each query runs the exact-
//	               match fast path (§IV-A) and the general seed-lookup +
//	               striped Smith-Waterman path (§IV-B/V-B)
//
// Alignments are byte-identical to Run's on the same inputs: the sharded
// index sorts entries with the same comparator as the simulated drain, so
// location lists — and therefore candidate order, deduplication, and
// scores — match exactly.

// threadedAccess adapts dht.Sharded to the indexAccess interface. Lookups
// touch real memory only; no communication is simulated, but the measured
// counters are maintained so Results are comparable across engines.
type threadedAccess struct {
	sx *dht.Sharded
}

func (a threadedAccess) Lookup(th *upc.Thread, s kmer.Kmer) (dht.LookupResult, bool) {
	th.Counters.SeedLookups++
	return a.sx.Lookup(s)
}
func (a threadedAccess) SingleCopy(frag int32) bool { return a.sx.SingleCopy(int(frag)) }
func (a threadedAccess) FetchTarget(th *upc.Thread, target int32, targetBytes, owner int) {
	// Target sequences live in shared memory; nothing to move.
}

// chunk sizes for the dynamic work cursors: small enough to balance skewed
// fragment lengths and per-read work, large enough to amortize the atomic.
const (
	extractChunk = 32  // fragments per claim
	alignBatch   = 256 // queries per claim
)

// runPool runs fn on workers goroutines until claims are exhausted: each
// fn(w, lo, hi) call owns items [lo, hi) of an n-item sequence, claimed
// chunk-at-a-time from a shared atomic cursor (guided self-scheduling, the
// shared-memory analogue of the paper's per-thread block partition).
func runPool(workers, n, chunk int, fn func(w, lo, hi int)) {
	runPoolCtx(context.Background(), workers, n, chunk, fn)
}

// runPoolCtx is runPool with cooperative cancellation: workers re-check ctx
// before every chunk claim and stop claiming once it is done (a background
// context's nil done channel never fires, so uncancellable pools pay only
// the polling select). In-flight chunks finish — chunks are small
// (extractChunk/alignBatch items) — so the pool drains promptly rather than
// mid-item.
func runPoolCtx(ctx context.Context, workers, n, chunk int, fn func(w, lo, hi int)) {
	done := ctx.Done()
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// realPhases accumulates wall-clock PhaseStats for a threaded run.
type realPhases struct {
	phases []upc.PhaseStat
	total  upc.Counters
}

// run measures fn and records it as a phase, folding in the per-worker
// counters accumulated during the phase.
func (r *realPhases) run(name string, threads []*upc.Thread, fn func()) {
	var before upc.Counters
	for _, t := range threads {
		before.Add(t.Counters)
	}
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	var after upc.Counters
	for _, t := range threads {
		after.Add(t.Counters)
	}
	delta := after.Sub(before)
	stat := upc.RealPhaseStat(name, elapsed, delta)
	r.phases = append(r.phases, stat)
	r.total.Add(delta)
}

// RunThreaded executes merAligner in shared-memory mode: a goroutine worker
// pool builds a sharded seed index with the two-stage aggregating-stores
// scheme and aligns query batches with the exact-match fast path and
// striped Smith-Waterman. workers is the pool size (the paper's single-node
// core count, Fig 11); workers <= 0 is an error. Alignments are identical
// to Run's on the same inputs; Results.Phases carry measured wall-clock
// times in both Wall and RealWall.
//
// RunThreaded is BuildIndex + ThreadedIndex.Query composed: services that
// reuse one index across many query batches call the two halves directly.
func RunThreaded(workers int, opt Options, targets, queries []seqio.Seq) (*Results, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	iopt := opt.IndexOptions
	if iopt.MaxLocList == 0 && opt.MaxSeedHits > 0 {
		// One-shot runs know the sensitivity threshold at build time, so
		// they can cap stored location lists just past it (the pre-split
		// engine's memory behavior). Persistent indexes keep full lists.
		iopt.MaxLocList = opt.MaxSeedHits + 1
	}
	ix, err := BuildIndex(workers, iopt, targets)
	if err != nil {
		return nil, err
	}
	res, err := ix.Query(context.Background(), workers, opt.QueryOptions, queries)
	if err != nil {
		return nil, err
	}
	res.Phases = append(ix.BuildPhases(), res.Phases...)
	return res, nil
}

// RunThreadedSim is the pre-engine behavior of RunThreaded, retained for
// engine comparisons: the simulated pipeline configured as a single node
// with one worker goroutine per simulated thread, so PhaseStat.RealWall
// measures the host time of executing the cost-charged pipeline.
func RunThreadedSim(threads int, opt Options, targets, queries []seqio.Seq) (*Results, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("core: threads must be positive, got %d", threads)
	}
	mach := upc.Edison(threads)
	mach.PPN = threads // one node
	mach.Workers = threads
	return Run(mach, opt, targets, queries)
}

// TotalRealWall sums the real wall-clock seconds of all phases — the
// measured end-to-end runtime in threaded mode.
func (r *Results) TotalRealWall() float64 {
	var s float64
	for _, p := range r.Phases {
		s += p.RealWall
	}
	return s
}
