package core

import (
	"fmt"

	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// RunThreaded executes merAligner in shared-memory mode: the same pipeline
// as Run, but with one real goroutine per simulated thread on a single
// "node", so the PhaseStat.RealWall values are genuine wall-clock
// measurements of parallel execution on the host. This is the merAligner
// configuration of Fig 11 (single node of Edison, 1-24 cores).
//
// Communication degenerates to shared-memory access (everything is
// same-node), caches are bypassed, and the distributed index becomes a
// sharded in-memory hash table built with the same two-stage lock-free
// scheme — exactly what the UPC code does when run on one node.
func RunThreaded(threads int, opt Options, targets, queries []seqio.Seq) (*Results, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("core: threads must be positive, got %d", threads)
	}
	mach := upc.Edison(threads)
	mach.PPN = threads // one node
	mach.Workers = threads
	return Run(mach, opt, targets, queries)
}

// TotalRealWall sums the real wall-clock seconds of all phases — the
// measured end-to-end runtime in threaded mode.
func (r *Results) TotalRealWall() float64 {
	var s float64
	for _, p := range r.Phases {
		s += p.RealWall
	}
	return s
}
