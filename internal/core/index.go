package core

import (
	"context"
	"fmt"
	"time"

	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/kmer"
	"github.com/lbl-repro/meraligner/internal/merx"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// This file splits the threaded engine into its two halves — persistent
// index construction (BuildIndex, the paper's §III) and query serving
// (ThreadedIndex.Query, §IV) — so a long-lived service builds the seed
// index once and streams read batches through it forever. RunThreaded is a
// thin build-then-query composition of the two (see threaded.go).

// ThreadedIndex is the resident product of BuildIndex: the fragment table,
// the sealed sharded seed index, and the single-copy flags, over one target
// set. It is immutable after BuildIndex returns, so any number of Query
// calls may run against it concurrently.
type ThreadedIndex struct {
	opt     IndexOptions
	targets []seqio.Seq
	ft      *FragmentTable
	sx      *dht.Sharded

	buildPhases []upc.PhaseStat // extract+stage, drain, mark (wall-clock)
	stats       dht.Stats       // computed once at seal time

	// shard identifies this index as one slice of a sharded reference
	// (SetShardInfo / the snapshot's "SHRD" section); nil for a whole
	// reference.
	shard *ShardInfo

	// snap is the backing snapshot when the index was produced by LoadIndex
	// rather than BuildIndex: the seed table and target sequences alias its
	// mapping, so it must stay open for the index's lifetime (see Close).
	// nil for built indexes.
	snap *merx.File
}

// BuildIndex constructs the threaded engine's seed index over targets
// exactly once: fragment the targets (§IV-A), extract and stage seeds with
// the aggregating-stores scheme (§III-A), drain the shards lock-free, and
// mark single-copy fragments. workers is the goroutine pool size for the
// construction phases only; queries may later run with any worker count.
func BuildIndex(workers int, opt IndexOptions, targets []seqio.Seq) (*ThreadedIndex, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("core: threads must be positive, got %d", workers)
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	threads := make([]*upc.Thread, workers)
	costs := upc.Edison(workers)
	costs.PPN = workers
	for w := range threads {
		threads[w] = upc.NewStandaloneThread(costs, w)
	}
	rec := &realPhases{}

	// Fragment the targets exactly as the simulated engine does (same
	// worker count ⇒ same data ownership labels; contents do not depend on
	// the partition).
	ft := BuildFragmentTable(targets, opt.K, opt.FragmentLen, workers)

	totalSeeds := 0
	for f := 0; f < ft.NumFragments(); f++ {
		if n := int(ft.Frags[f].Len) - opt.K + 1; n > 0 {
			totalSeeds += n
		}
	}
	sx, err := dht.NewSharded(dht.ShardedConfig{
		K: opt.K, S: opt.AggS, MaxLocList: opt.MaxLocList,
		Shards: dht.DefaultShards(workers),
	}, ft.NumFragments(), totalSeeds, workers)
	if err != nil {
		return nil, err
	}

	// ---- Phase 1: extract seeds and stage into the sharded index ----
	builders := make([]*dht.ShardedBuilder, workers)
	for w := range builders {
		builders[w] = sx.NewBuilder()
	}
	rec.run(PhaseExtract, threads, func() {
		runPool(workers, ft.NumFragments(), extractChunk, func(w, lo, hi int) {
			b := builders[w]
			var sc kmer.Scanner // rolling forward+RC windows, O(1) per base
			for f := lo; f < hi; f++ {
				sc.Reset(ft.FragSeq(int32(f)), opt.K)
				for sc.Next() {
					canon, rc := sc.Canonical()
					b.Add(dht.SeedEntry{Seed: canon, Loc: dht.Loc{
						Frag: int32(f),
						Off:  int32(sc.Offset()),
						RC:   rc,
					}})
				}
			}
		})
		for _, b := range builders {
			b.Flush()
		}
	})

	// ---- Phase 2: drain shards into local buckets (lock-free) ----
	rec.run(PhaseDrain, threads, func() {
		runPool(workers, sx.Shards(), 1, func(w, lo, hi int) {
			for s := lo; s < hi; s++ {
				sx.DrainShard(s)
			}
		})
	})

	// ---- Phase 3: mark single-copy-seed fragments (§IV-A) ----
	if opt.ExactMatch {
		rec.run(PhaseMark, threads, func() {
			runPool(workers, sx.Shards(), 1, func(w, lo, hi int) {
				for s := lo; s < hi; s++ {
					sx.MarkShard(s)
				}
			})
		})
	}

	// Seal: release the build arena, freeze the table, and snapshot its
	// stats once so per-query Results don't rescan the whole index.
	sx.Seal()
	return &ThreadedIndex{
		opt:         opt,
		targets:     targets,
		ft:          ft,
		sx:          sx,
		buildPhases: rec.phases,
		stats:       sx.Stats(),
	}, nil
}

// Options returns the build-time options the index was constructed with.
func (ix *ThreadedIndex) Options() IndexOptions { return ix.opt }

// Targets returns the target set the index was built over.
func (ix *ThreadedIndex) Targets() []seqio.Seq { return ix.targets }

// Stats returns the index statistics snapshot taken at seal time.
func (ix *ThreadedIndex) Stats() dht.Stats { return ix.stats }

// ResidentBytes estimates the resident memory footprint of the sealed index
// (hash table and location lists; the fragment table's unpacked target
// codes are counted separately via TargetCodesBytes).
func (ix *ThreadedIndex) ResidentBytes() int64 { return ix.sx.ResidentBytes() }

// TargetCodesBytes is the footprint of the unpacked target code slices held
// by the fragment table for Smith-Waterman and exact-match comparison.
func (ix *ThreadedIndex) TargetCodesBytes() int64 {
	var n int64
	for _, t := range ix.targets {
		n += int64(t.Seq.Len())
	}
	return n
}

// BuildPhases returns the wall-clock phase stats of index construction
// (extract+stage, drain, and mark when the exact-match optimization is on).
func (ix *ThreadedIndex) BuildPhases() []upc.PhaseStat {
	out := make([]upc.PhaseStat, len(ix.buildPhases))
	copy(out, ix.buildPhases)
	return out
}

// BuildWall sums the wall-clock seconds of the construction phases.
func (ix *ThreadedIndex) BuildWall() float64 {
	var s float64
	for _, p := range ix.buildPhases {
		s += p.RealWall
	}
	return s
}

// Query aligns one batch of queries against the resident index (the
// aligning phase of Algorithm 1 with the §IV optimizations), using a pool
// of workers goroutines. It is safe to call concurrently from any number of
// goroutines: every call owns its threads, processors, and result buffers,
// and the index itself is immutable.
//
// Cancellation is honored between work chunks: when ctx is done, workers
// stop claiming query batches and Query returns ctx.Err() without results.
// Results carry the per-call wall-clock align-phase stat and the seal-time
// index statistics.
func (ix *ThreadedIndex) Query(ctx context.Context, workers int, opt QueryOptions, queries []seqio.Seq) (*Results, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("core: threads must be positive, got %d", workers)
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	full := Options{IndexOptions: ix.opt, QueryOptions: opt}
	if err := ix.opt.checkQueryCompat(opt); err != nil {
		return nil, err
	}
	costs := upc.Edison(workers)
	costs.PPN = workers
	threads := make([]*upc.Thread, workers)
	for w := range threads {
		threads[w] = upc.NewStandaloneThread(costs, w)
	}
	rec := &realPhases{}
	res := &Results{TotalReads: len(queries)}

	var perQuery []QueryStat
	if opt.CollectPerQuery {
		// Indexed by query: each query is processed exactly once, so the
		// slots are written without contention.
		perQuery = make([]QueryStat, len(queries))
	}
	// On the remote-DHT path a resolver failure on any worker aborts the
	// whole call: the failing worker cancels qctx so its peers stop claiming
	// chunks, and the resolver error (not the derived cancellation) is
	// surfaced.
	qctx := ctx
	var cancel context.CancelFunc
	if opt.SeedResolver != nil {
		qctx, cancel = context.WithCancel(ctx)
		defer cancel()
	}
	perThread := make([]threadStats, workers)
	rec.run(PhaseAlign, threads, func() {
		qps := make([]*queryProcessor, workers)
		runPoolCtx(qctx, workers, len(queries), alignBatch, func(w, lo, hi int) {
			st := &perThread[w]
			if st.err != nil {
				return
			}
			if qps[w] == nil {
				qps[w] = newQueryProcessor(costs, full, threadedAccess{sx: ix.sx}, ix.ft)
				if opt.SeedResolver != nil {
					qps[w].setResolver(qctx, opt.SeedResolver)
				}
			}
			if opt.CollectAlignments && st.alignments == nil {
				st.alignments = []Alignment{}
			}
			for qi := lo; qi < hi; qi++ {
				if perQuery == nil {
					qps[w].process(threads[w], st, int32(qi), queries[qi].Seq)
				} else {
					processStat(qps[w], threads[w], st, int32(qi), queries[qi].Seq, ix.opt.K, &perQuery[qi])
				}
				if st.err != nil {
					cancel()
					return
				}
			}
		})
	})
	for i := range perThread {
		if err := perThread[i].err; err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	mergeThreadStats(res, perThread, opt.CollectAlignments)
	res.Phases = rec.phases
	res.SeedLookups = rec.total.SeedLookups
	res.IndexStats = ix.stats
	res.PerQuery = perQuery
	return res, nil
}

// processStat runs process for one query and fills its QueryStat from the
// deltas of the thread's accumulating counters.
func processStat(qp *queryProcessor, th *upc.Thread, st *threadStats, qi int32, q dna.Packed, k int, out *QueryStat) {
	swc, aln, exa := st.swCalls, st.totalAlignments, st.exact
	slk := th.Counters.SeedLookups
	start := time.Now()
	qp.process(th, st, qi, q)
	out.Nanos = time.Since(start).Nanoseconds()
	out.SWCalls = int32(st.swCalls - swc)
	out.SeedLookups = int32(th.Counters.SeedLookups - slk)
	out.Alignments = int32(st.totalAlignments - aln)
	out.Exact = st.exact > exa
	if q.Len() < k {
		out.Status = QueryTooShort
	}
}

// QuerySerial is the low-latency path for tiny batches: it aligns queries
// on the calling goroutine with one reusable processor — no worker pool, no
// chunk scheduling — checking ctx between queries. A network service
// answering single-read requests is bound by per-call overhead, not
// parallel throughput; this path strips the overhead while producing
// Results identical to Query's on the same input (same algorithm, same
// canonical merge).
func (ix *ThreadedIndex) QuerySerial(ctx context.Context, opt QueryOptions, queries []seqio.Seq) (*Results, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := ix.opt.checkQueryCompat(opt); err != nil {
		return nil, err
	}
	full := Options{IndexOptions: ix.opt, QueryOptions: opt}
	costs := upc.Edison(1)
	costs.PPN = 1
	th := upc.NewStandaloneThread(costs, 0)
	rec := &realPhases{}
	res := &Results{TotalReads: len(queries)}

	var perQuery []QueryStat
	if opt.CollectPerQuery {
		perQuery = make([]QueryStat, len(queries))
	}
	perThread := make([]threadStats, 1)
	rec.run(PhaseAlign, []*upc.Thread{th}, func() {
		qp := newQueryProcessor(costs, full, threadedAccess{sx: ix.sx}, ix.ft)
		if opt.SeedResolver != nil {
			qp.setResolver(ctx, opt.SeedResolver)
		}
		st := &perThread[0]
		if opt.CollectAlignments {
			st.alignments = []Alignment{}
		}
		done := ctx.Done()
		for qi := range queries {
			select {
			case <-done:
				return
			default:
			}
			if perQuery == nil {
				qp.process(th, st, int32(qi), queries[qi].Seq)
			} else {
				processStat(qp, th, st, int32(qi), queries[qi].Seq, ix.opt.K, &perQuery[qi])
			}
			if st.err != nil {
				return
			}
		}
	})
	if err := perThread[0].err; err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	mergeThreadStats(res, perThread, opt.CollectAlignments)
	res.Phases = rec.phases
	res.SeedLookups = rec.total.SeedLookups
	res.IndexStats = ix.stats
	res.PerQuery = perQuery
	return res, nil
}
