package core

import (
	"sort"

	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/seqio"
)

// PartitionTargetsByBases splits targets into per-thread contiguous ranges
// balanced by total BASES rather than by sequence count — each processor
// reads a distinct, equally sized portion of the target file (§II-A), so a
// thread holding one long contig gets fewer contigs than one holding many
// short ones. Returns, for each thread, the [lo, hi) target index range.
func PartitionTargetsByBases(targets []seqio.Seq, threads int) [][2]int {
	prefix := make([]int64, len(targets)+1)
	for i, t := range targets {
		prefix[i+1] = prefix[i] + int64(t.Seq.Len())
	}
	total := prefix[len(targets)]
	out := make([][2]int, threads)
	lo := 0
	for id := 0; id < threads; id++ {
		targetEnd := total * int64(id+1) / int64(threads)
		// First index whose prefix exceeds the byte budget for this thread.
		hi := lo + sort.Search(len(targets)-lo, func(i int) bool {
			return prefix[lo+i+1] > targetEnd
		})
		if id == threads-1 {
			hi = len(targets)
		}
		out[id] = [2]int{lo, hi}
		lo = hi
	}
	return out
}

// Fragment is one piece of a target sequence after the fragmentation of
// §IV-A. Consecutive fragments of a target overlap by K-1 bases so that
// their seed sets are disjoint and their union is exactly the target's seed
// set. The fragment records where it came from, "to allow quick locating of
// these subsequences later in the alignment".
type Fragment struct {
	Target int32 // parent target index
	Start  int32 // genome offset of the fragment within the target
	Len    int32 // fragment length in bases
}

// FragmentTable maps fragment ids to their provenance, plus per-target
// unpacked base codes for Smith-Waterman. It is read-only after Build.
type FragmentTable struct {
	Frags   []Fragment
	Targets []seqio.Seq
	// codes[t] is the unpacked 2-bit code slice of target t (built once;
	// Smith-Waterman and memcmp operate on codes).
	codes [][]byte
	// firstFrag[t] is the id of target t's first fragment.
	firstFrag []int32
	// owner[f] is the simulated thread owning fragment f's data (the
	// thread that read the parent target).
	owner []int32
}

// BuildFragmentTable fragments every target with fragment length F and
// overlap k-1. F == 0 disables fragmentation (one fragment per target).
// threads is the simulated machine width used to assign data owners;
// targets are distributed contiguously, mirroring the read-targets phase.
func BuildFragmentTable(targets []seqio.Seq, k, F, threads int) *FragmentTable {
	ft := &FragmentTable{Targets: targets}
	ft.codes = make([][]byte, len(targets))
	ft.firstFrag = make([]int32, len(targets)+1)
	// Data ownership mirrors the base-balanced read partition: the thread
	// that read a target holds it in its shared segment.
	owners := make([]int32, len(targets))
	for id, r := range PartitionTargetsByBases(targets, threads) {
		for t := r[0]; t < r[1]; t++ {
			owners[t] = int32(id)
		}
	}
	for t, tg := range targets {
		ft.firstFrag[t] = int32(len(ft.Frags))
		ft.codes[t] = tg.Seq.Codes()
		L := tg.Seq.Len()
		owner := owners[t]
		if F == 0 || L <= F {
			ft.Frags = append(ft.Frags, Fragment{Target: int32(t), Start: 0, Len: int32(L)})
			ft.owner = append(ft.owner, owner)
			continue
		}
		step := F - k + 1
		for s := 0; s < L; s += step {
			e := s + F
			if e > L {
				e = L
			}
			ft.Frags = append(ft.Frags, Fragment{Target: int32(t), Start: int32(s), Len: int32(e - s)})
			ft.owner = append(ft.owner, owner)
			if e == L {
				break
			}
		}
	}
	ft.firstFrag[len(targets)] = int32(len(ft.Frags))
	return ft
}

// NumFragments returns the total fragment count.
func (ft *FragmentTable) NumFragments() int { return len(ft.Frags) }

// TargetCodes returns the unpacked code slice of target t.
func (ft *FragmentTable) TargetCodes(t int32) []byte { return ft.codes[t] }

// TargetPackedBytes returns the packed (2-bit) byte size of target t — what
// a target fetch moves over the network.
func (ft *FragmentTable) TargetPackedBytes(t int32) int { return ft.Targets[t].Seq.PackedSize() }

// Owner returns the simulated thread owning fragment f's data.
func (ft *FragmentTable) Owner(f int32) int { return int(ft.owner[f]) }

// FragRange returns the [first, last) fragment ids of target t.
func (ft *FragmentTable) FragRange(t int32) (int32, int32) {
	return ft.firstFrag[t], ft.firstFrag[t+1]
}

// FragSeq returns the packed sequence of fragment f (a view-copy).
func (ft *FragmentTable) FragSeq(f int32) dna.Packed {
	fr := ft.Frags[f]
	return ft.Targets[fr.Target].Seq.Slice(int(fr.Start), int(fr.Start+fr.Len))
}
