package core

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/lbl-repro/meraligner/internal/cache"
	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/kmer"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// simIndex is the simulated engine's counterpart of ThreadedIndex: the
// product of the index-construction half of the pipeline (§III), consumed
// by the query half (§IV). It shares the machine whose virtual clocks the
// two halves charge in sequence.
type simIndex struct {
	ft *FragmentTable
	ix *dht.Index
	g  *cache.Group
}

// simBuildIndex runs the build half of the simulated pipeline: parallel
// target I/O, seed extraction, distributed index construction (aggregating
// stores), and single-copy marking.
func simBuildIndex(m *upc.Machine, mach upc.MachineConfig, opt Options, targets []seqio.Seq) (*simIndex, error) {
	// The fragment table is built regardless of the exact-match setting so
	// ablation runs share an identical workload decomposition; only the
	// single-copy marking phase and the fast path are gated on ExactMatch.
	ft := BuildFragmentTable(targets, opt.K, opt.FragmentLen, mach.Threads)

	maxLoc := opt.MaxLocList
	if maxLoc == 0 && opt.MaxSeedHits > 0 {
		maxLoc = opt.MaxSeedHits + 1
	}
	ix, err := dht.New(mach, dht.Config{K: opt.K, Mode: opt.Mode, S: opt.AggS, MaxLocList: maxLoc}, ft.NumFragments())
	if err != nil {
		return nil, err
	}
	g := cache.NewGroup(mach, opt.SeedCacheBytes, opt.TargetCacheBytes)

	// Targets are distributed by bases, not by count: each thread reads an
	// equally sized slice of the target file (§II-A).
	targetRanges := PartitionTargetsByBases(targets, mach.Threads)
	var totalTargetBases int64
	for _, t := range targets {
		totalTargetBases += int64(t.Seq.Len())
	}

	// ---- Phase 1: read target sequences (parallel I/O) ----
	targetBytes := opt.TargetBytesOnDisk
	if targetBytes == 0 {
		for _, t := range targets {
			targetBytes += int64(t.Seq.PackedSize() + len(t.Name) + 8)
		}
	}
	m.RunPhase(PhaseReadTargets, func(th *upc.Thread) {
		lo, hi := targetRanges[th.ID][0], targetRanges[th.ID][1]
		if lo < hi && totalTargetBases > 0 {
			var bases int64
			for t := lo; t < hi; t++ {
				bases += int64(targets[t].Seq.Len())
			}
			th.ReadFile(int(targetBytes * bases / totalTargetBases))
		}
	})

	// ---- Phase 2: extract seeds from targets and stage into the index ----
	// Extraction work is partitioned by fragments (near-uniform base
	// counts) so the phase stays balanced even when contig lengths are
	// heavily skewed relative to the per-thread share.
	m.RunPhase(PhaseExtract, func(th *upc.Thread) {
		b := ix.NewBuilder(th)
		lo, hi := mach.PartitionRange(ft.NumFragments(), th.ID)
		var sc kmer.Scanner // rolling forward+RC windows, O(1) per base
		for f := lo; f < hi; f++ {
			seq := ft.FragSeq(int32(f))
			th.Compute(float64(kmer.Count(seq.Len(), opt.K)) * mach.SeedExtractCost)
			sc.Reset(seq, opt.K)
			for sc.Next() {
				canon, rc := sc.Canonical()
				b.Add(dht.SeedEntry{Seed: canon, Loc: dht.Loc{
					Frag: int32(f),
					Off:  int32(sc.Offset()),
					RC:   rc,
				}})
			}
		}
		b.Flush()
	})

	// ---- Phase 3: drain local-shared stacks into local buckets ----
	m.RunPhase(PhaseDrain, func(th *upc.Thread) { ix.Drain(th) })

	// ---- Phase 4: mark single-copy-seed fragments (§IV-A) ----
	if opt.ExactMatch {
		m.RunPhase(PhaseMark, func(th *upc.Thread) { ix.MarkSingleCopy(th) })
	}

	return &simIndex{ft: ft, ix: ix, g: g}, nil
}

// simQuery runs the query half of the simulated pipeline against a built
// index: parallel query I/O, the load-balancing permutation, and the
// aligning phase. Per-thread results land in perThread.
func simQuery(m *upc.Machine, mach upc.MachineConfig, opt Options, six *simIndex, queries []seqio.Seq, perThread []threadStats) {
	// ---- Phase 5: read query sequences (parallel I/O) ----
	queryBytes := opt.QueryBytesOnDisk
	if queryBytes == 0 {
		for _, q := range queries {
			queryBytes += int64(q.Seq.PackedSize() + len(q.Name) + len(q.Qual) + 8)
		}
	}
	m.RunPhase(PhaseReadQueries, func(th *upc.Thread) {
		lo, hi := mach.PartitionRange(len(queries), th.ID)
		if lo < hi && len(queries) > 0 {
			share := queryBytes * int64(hi-lo) / int64(len(queries))
			th.ReadFile(int(share))
		}
	})

	// Load balancing (§IV-B): permute the query order before chunking.
	// The permutation models the offline shuffle of the input file.
	order := make([]int32, len(queries))
	for i := range order {
		order[i] = int32(i)
	}
	if opt.Permute {
		rng := rand.New(rand.NewSource(opt.PermuteSeed))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}

	// ---- Phase 6: align ----
	m.RunPhase(PhaseAlign, func(th *upc.Thread) {
		st := &perThread[th.ID]
		if opt.CollectAlignments {
			st.alignments = []Alignment{}
		}
		qp := newQueryProcessor(mach, opt, simAccess{ix: six.ix, g: six.g}, six.ft)
		lo, hi := mach.PartitionRange(len(order), th.ID)
		for i := lo; i < hi; i++ {
			qi := order[i]
			qp.process(th, st, qi, queries[qi].Seq)
		}
	})
}

// Run executes the full merAligner pipeline (Algorithm 1) on the simulated
// PGAS machine: parallel target I/O, seed extraction, distributed seed-index
// construction, single-copy marking, parallel query I/O, and the aligning
// phase. All data structures are real; time is simulated (see package upc).
// Like RunThreaded, Run is the build and query halves composed in sequence
// on one machine.
func Run(mach upc.MachineConfig, opt Options, targets, queries []seqio.Seq) (*Results, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	m, err := upc.NewMachine(mach)
	if err != nil {
		return nil, err
	}

	six, err := simBuildIndex(m, mach, opt, targets)
	if err != nil {
		return nil, err
	}

	res := &Results{TotalReads: len(queries)}
	perThread := make([]threadStats, mach.Threads)
	simQuery(m, mach, opt, six, queries, perThread)

	// ---- Merge ----
	mergeThreadStats(res, perThread, opt.CollectAlignments)
	res.Phases = m.Phases()
	res.SeedLookups = m.TotalCounters().SeedLookups
	res.SeedCache = six.g.SeedCounters()
	res.TargetCache = six.g.TargetCounters()
	res.IndexStats = six.ix.Stats()
	res.CommSeedLookupMax = six.g.CommSeedMax()
	res.CommFetchTargetMax = six.g.CommTargetMax()
	return res, nil
}

// threadStats accumulates per-simulated-thread results during the align
// phase; merged single-threadedly afterwards.
type threadStats struct {
	aligned         int
	exact           int
	totalAlignments int64
	swCalls         int64
	alignments      []Alignment
	tooShort        []int32 // query indices shorter than K

	// err is the first remote-resolution failure this thread hit; once set
	// the thread stops aligning and the whole call fails with it (the
	// remote path has no partial-results mode — a lost seed shard must
	// never silently degrade into missed alignments).
	err error
}

// mergeThreadStats folds per-thread aligning-phase results into res and, when
// alignments were collected, sorts them into a canonical total order. Both
// engines merge through here, so identical per-query results yield identical
// Results.Alignments slices regardless of how work was scheduled.
func mergeThreadStats(res *Results, perThread []threadStats, collected bool) {
	for i := range perThread {
		st := &perThread[i]
		res.AlignedReads += st.aligned
		res.ExactPathReads += st.exact
		res.TotalAlignments += st.totalAlignments
		res.SWCalls += st.swCalls
		if st.alignments != nil {
			res.Alignments = append(res.Alignments, st.alignments...)
		}
		res.TooShort = append(res.TooShort, st.tooShort...)
	}
	res.TooShortReads = len(res.TooShort)
	sort.Slice(res.TooShort, func(i, j int) bool { return res.TooShort[i] < res.TooShort[j] })
	if collected {
		sortAlignments(res.Alignments)
	}
}

// sortAlignments orders alignments by every field — a total order, so the
// output is deterministic even when distinct alignments tie on coordinates.
func sortAlignments(as []Alignment) {
	sort.Slice(as, func(i, j int) bool {
		a, b := as[i], as[j]
		if a.Query != b.Query {
			return a.Query < b.Query
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		if a.TStart != b.TStart {
			return a.TStart < b.TStart
		}
		if a.TEnd != b.TEnd {
			return a.TEnd < b.TEnd
		}
		if a.RC != b.RC {
			return !a.RC
		}
		if a.QStart != b.QStart {
			return a.QStart < b.QStart
		}
		if a.QEnd != b.QEnd {
			return a.QEnd < b.QEnd
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Cigar < b.Cigar
	})
}

// Summary renders headline numbers for humans.
func (r *Results) Summary() string {
	out := fmt.Sprintf("reads %d, aligned %d (%.1f%%), exact-path %d (%.1f%%), alignments %d, SW calls %d\n",
		r.TotalReads, r.AlignedReads, 100*float64(r.AlignedReads)/float64(max(1, r.TotalReads)),
		r.ExactPathReads, 100*float64(r.ExactPathReads)/float64(max(1, r.TotalReads)),
		r.TotalAlignments, r.SWCalls)
	for _, p := range r.Phases {
		out += fmt.Sprintf("  %-24s %10.4fs (comp %.4f, comm %.4f, io %.4f)\n",
			p.Name, p.Wall, p.MaxComp, p.MaxComm, p.MaxIO)
	}
	return out
}
