package core

import (
	"math"
	"math/rand"
	"testing"
)

// Theorem 1 (§IV-B): assigning h "slow" queries uniformly at random to p
// processors keeps the load imbalance — the distance of the maximum slow
// load from the average h/p — below 2*sqrt(2*(h/p)*log p) with high
// probability (Raab & Steger's balls-into-bins bound, applicable for
// p log p << h <= p polylog(p)).
func TestTheorem1LoadImbalanceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials = 30
	for _, tc := range []struct{ h, p int }{
		{100_000, 100},
		{50_000, 480},
		{200_000, 960},
	} {
		bound := 2 * math.Sqrt(2*float64(tc.h)/float64(tc.p)*math.Log(float64(tc.p)))
		violations := 0
		for trial := 0; trial < trials; trial++ {
			loads := make([]int, tc.p)
			for i := 0; i < tc.h; i++ {
				loads[rng.Intn(tc.p)]++
			}
			maxLoad := 0
			for _, l := range loads {
				if l > maxLoad {
					maxLoad = l
				}
			}
			imbalance := float64(maxLoad) - float64(tc.h)/float64(tc.p)
			if imbalance > bound {
				violations++
			}
		}
		// "With high probability": allow at most one unlucky trial in 30.
		if violations > 1 {
			t.Errorf("h=%d p=%d: bound %.1f violated in %d/%d trials", tc.h, tc.p, bound, violations, trials)
		}
	}
}

// The permutation-based balancer must in practice equalize the *measured*
// per-thread computation times on a grouped workload (the mechanism behind
// Table I), which TestTable1 checks end-to-end; here we verify the pure
// random-assignment imbalance shrinks relative to the worst-case grouped
// assignment.
func TestPermutationVsGroupedImbalance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const p = 96
	const groups = 24 // slow queries arrive in contiguous groups
	const perGroup = 1000
	h := groups * perGroup

	// Grouped: each group of slow queries lands on contiguous threads
	// (chunked partition of a sorted file where slow regions cluster).
	grouped := make([]int, p)
	for g := 0; g < groups; g++ {
		start := g * p / groups / 2 // clusters crowd the first half
		for i := 0; i < perGroup; i++ {
			grouped[(start+i/(perGroup/2))%p]++
		}
	}
	groupedMax := 0
	for _, l := range grouped {
		groupedMax = max(groupedMax, l)
	}

	// Permuted: uniform random assignment.
	permuted := make([]int, p)
	for i := 0; i < h; i++ {
		permuted[rng.Intn(p)]++
	}
	permutedMax := 0
	for _, l := range permuted {
		permutedMax = max(permutedMax, l)
	}

	if float64(groupedMax) < 1.5*float64(permutedMax) {
		t.Errorf("grouped max load %d not substantially worse than permuted %d", groupedMax, permutedMax)
	}
}
