package core

import (
	"context"
	"fmt"
	"testing"

	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// This file guards the reworked query hot path: the rolling seed scanner,
// the sealed flat seed table, and the per-strand striped-profile reuse —
// end-to-end parity across engines and entry points, plus the
// zero-allocations-per-read invariant of the serial path.

// TestStatsOnlyParityAcrossEngines extends the engine parity suite to the
// statistics-only mode — the path that drives the reusable striped profile
// (AlignWindow) instead of the traceback extender — across both seed-length
// regimes of the rolling scanner (single word and two-word).
func TestStatsOnlyParityAcrossEngines(t *testing.T) {
	ds := testWorkload(t, 60_000, 3, 0.005)
	for _, k := range []int{21, 51} {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			opt := testOptions(k)
			opt.CollectAlignments = false
			sim, err := Run(testMach(8), opt, ds.Contigs, ds.Reads)
			if err != nil {
				t.Fatal(err)
			}
			thr, err := RunThreaded(3, opt, ds.Contigs, ds.Reads)
			if err != nil {
				t.Fatal(err)
			}
			if sim.AlignedReads != thr.AlignedReads ||
				sim.ExactPathReads != thr.ExactPathReads ||
				sim.TotalAlignments != thr.TotalAlignments ||
				sim.SWCalls != thr.SWCalls ||
				sim.SeedLookups != thr.SeedLookups {
				t.Errorf("stats-only summary differs:\nsim: %d/%d/%d/%d/%d\nthr: %d/%d/%d/%d/%d",
					sim.AlignedReads, sim.ExactPathReads, sim.TotalAlignments, sim.SWCalls, sim.SeedLookups,
					thr.AlignedReads, thr.ExactPathReads, thr.TotalAlignments, thr.SWCalls, thr.SeedLookups)
			}
			if thr.AlignedReads == 0 {
				t.Fatal("workload aligned nothing; parity test is vacuous")
			}
		})
	}
}

// TestQuerySerialMatchesQueryPool: the pool-free serial path (the service's
// low-latency route and the zero-alloc benchmark subject) must produce
// byte-identical Results to the worker-pool path on the same sealed index.
func TestQuerySerialMatchesQueryPool(t *testing.T) {
	ds := testWorkload(t, 60_000, 3, 0.005)
	opt := testOptions(21)
	ix, err := BuildIndex(3, opt.IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := ix.Query(context.Background(), 3, opt.QueryOptions, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := ix.QuerySerial(context.Background(), opt.QueryOptions, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	if pool.AlignedReads != serial.AlignedReads ||
		pool.TotalAlignments != serial.TotalAlignments ||
		pool.SWCalls != serial.SWCalls ||
		pool.SeedLookups != serial.SeedLookups {
		t.Errorf("serial/pool summary differs: %d/%d/%d/%d vs %d/%d/%d/%d",
			pool.AlignedReads, pool.TotalAlignments, pool.SWCalls, pool.SeedLookups,
			serial.AlignedReads, serial.TotalAlignments, serial.SWCalls, serial.SeedLookups)
	}
	if len(pool.Alignments) != len(serial.Alignments) {
		t.Fatalf("alignment counts differ: %d vs %d", len(pool.Alignments), len(serial.Alignments))
	}
	for i := range pool.Alignments {
		if pool.Alignments[i] != serial.Alignments[i] {
			t.Fatalf("alignment %d differs:\npool:   %+v\nserial: %+v",
				i, pool.Alignments[i], serial.Alignments[i])
		}
	}
}

// queryNoAllocFixture builds a sealed index and a ready-to-run serial
// processor over a batch of reads that all carry at least one seed.
func queryNoAllocFixture(tb testing.TB) (*queryProcessor, *upc.Thread, *threadStats, []seqio.Seq) {
	ds := testWorkload(tb, 60_000, 2, 0.01)
	opt := DefaultOptions(21) // statistics-only: CollectAlignments off
	ix, err := BuildIndex(2, opt.IndexOptions, ds.Contigs)
	if err != nil {
		tb.Fatal(err)
	}
	costs := upc.Edison(1)
	costs.PPN = 1
	th := upc.NewStandaloneThread(costs, 0)
	qp := newQueryProcessor(costs, opt, threadedAccess{sx: ix.sx}, ix.ft)
	st := &threadStats{}
	var reads []seqio.Seq
	for qi := range ds.Reads {
		if ds.Reads[qi].Seq.Len() >= opt.K {
			reads = append(reads, ds.Reads[qi])
		}
		if len(reads) == 64 {
			break
		}
	}
	if len(reads) < 16 {
		tb.Fatal("not enough full-length reads for the no-alloc fixture")
	}
	// Warm every reusable buffer and pin the fixture's other assumption:
	// the workload exercises the general path (profile reuse), not just the
	// exact-match shortcut.
	for qi := range reads {
		qp.process(th, st, int32(qi), reads[qi].Seq)
	}
	if st.swCalls == 0 {
		tb.Fatal("fixture reads never reached Smith-Waterman; no-alloc run would be vacuous")
	}
	return qp, th, st, reads
}

// TestQueryPathZeroAllocs asserts the invariant directly (so it runs in
// every `go test` invocation, not only under -bench): after warm-up, the
// serial statistics path performs ZERO heap allocations per read.
func TestQueryPathZeroAllocs(t *testing.T) {
	qp, th, st, reads := queryNoAllocFixture(t)
	avg := testing.AllocsPerRun(50, func() {
		for qi := range reads {
			qp.process(th, st, int32(qi), reads[qi].Seq)
		}
	})
	if avg != 0 {
		t.Fatalf("serial query path allocates %.2f objects per %d-read batch in steady state, want 0",
			avg, len(reads))
	}
}

// BenchmarkQueryNoAlloc measures the per-read cost of the serial hot path
// and enforces the zero-allocs-per-read invariant under the benchmark
// harness (CI runs it with -benchtime=1x as a smoke check).
func BenchmarkQueryNoAlloc(b *testing.B) {
	qp, th, st, reads := queryNoAllocFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % len(reads)
		qp.process(th, st, int32(qi), reads[qi].Seq)
	}
	b.StopTimer()
	avg := testing.AllocsPerRun(20, func() {
		for qi := range reads {
			qp.process(th, st, int32(qi), reads[qi].Seq)
		}
	})
	if avg != 0 {
		b.Fatalf("serial query path allocates %.2f objects per %d-read batch in steady state, want 0",
			avg, len(reads))
	}
}
