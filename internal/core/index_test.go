package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// Build once + N queries must be byte-identical to N one-shot RunThreaded
// calls on the same inputs — the persistent API's headline guarantee.
func TestBuildOnceQueryManyMatchesRunThreaded(t *testing.T) {
	ds := testWorkload(t, 80_000, 3, 0.005)
	opt := testOptions(21)
	opt.MaxLocList = opt.MaxSeedHits + 1 // what the one-shot wrapper picks

	ix, err := BuildIndex(3, opt.IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][2]int{{0, len(ds.Reads) / 3}, {len(ds.Reads) / 3, 2 * len(ds.Reads) / 3}, {2 * len(ds.Reads) / 3, len(ds.Reads)}}
	for bi, b := range batches {
		batch := ds.Reads[b[0]:b[1]]
		want, err := RunThreaded(3, opt, ds.Contigs, batch)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.Query(context.Background(), 3, opt.QueryOptions, batch)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Alignments, got.Alignments) {
			t.Fatalf("batch %d: resident-index alignments differ from one-shot run", bi)
		}
		if want.AlignedReads != got.AlignedReads || want.ExactPathReads != got.ExactPathReads ||
			want.TotalAlignments != got.TotalAlignments || want.SWCalls != got.SWCalls ||
			want.SeedLookups != got.SeedLookups {
			t.Fatalf("batch %d: summary stats differ:\none-shot: %+v\nresident: %+v", bi, want, got)
		}
	}
}

// Query results must not depend on the build worker count, the query worker
// count, or which QueryOptions other calls used.
func TestQueryIndependentOfWorkerCounts(t *testing.T) {
	ds := testWorkload(t, 50_000, 2, 0.004)
	opt := testOptions(21)
	ix1, err := BuildIndex(1, opt.IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	ix4, err := BuildIndex(4, opt.IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ix1.Query(context.Background(), 1, opt.QueryOptions, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		got, err := ix4.Query(context.Background(), workers, opt.QueryOptions, ds.Reads)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Alignments, got.Alignments) {
			t.Fatalf("build-4/query-%d differs from build-1/query-1", workers)
		}
	}
}

// Concurrent Query calls against one index must be race-clean (the CI race
// job runs this package under -race) and each produce the same results as
// a lone call.
func TestQueryConcurrentCallers(t *testing.T) {
	ds := testWorkload(t, 60_000, 3, 0.004)
	opt := testOptions(21)
	ix, err := BuildIndex(2, opt.IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ix.Query(context.Background(), 2, opt.QueryOptions, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 6
	var wg sync.WaitGroup
	errs := make([]error, callers)
	wg.Add(callers)
	for c := 0; c < callers; c++ {
		go func(c int) {
			defer wg.Done()
			// Vary the worker count across callers to shake scheduling.
			got, err := ix.Query(context.Background(), 1+c%3, opt.QueryOptions, ds.Reads)
			if err != nil {
				errs[c] = err
				return
			}
			if !reflect.DeepEqual(ref.Alignments, got.Alignments) {
				errs[c] = errors.New("concurrent caller got different alignments")
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", c, err)
		}
	}
}

// A done context stops the pool between work chunks and surfaces ctx.Err().
func TestQueryContextCancellation(t *testing.T) {
	ds := testWorkload(t, 50_000, 3, 0.004)
	opt := testOptions(21)
	ix, err := BuildIndex(2, opt.IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: no batch may be claimed
	start := time.Now()
	res, err := ix.Query(ctx, 2, opt.QueryOptions, ds.Reads)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled Query returned results")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("canceled Query took %v", d)
	}

	// Deadline exceeded surfaces the same way.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := ix.Query(dctx, 2, opt.QueryOptions, ds.Reads); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// The per-call Results must carry a genuine wall-clock align phase and the
// seal-time index stats; build phases live on the index.
func TestQueryPerCallPhaseStats(t *testing.T) {
	ds := testWorkload(t, 40_000, 2, 0.004)
	opt := testOptions(21)
	ix, err := BuildIndex(2, opt.IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	build := ix.BuildPhases()
	wantBuild := []string{PhaseExtract, PhaseDrain, PhaseMark}
	if len(build) != len(wantBuild) {
		t.Fatalf("build phases = %d, want %d", len(build), len(wantBuild))
	}
	for i, p := range build {
		if p.Name != wantBuild[i] || p.RealWall <= 0 {
			t.Errorf("build phase %d = %q (%.6fs), want %q with measured time", i, p.Name, p.RealWall, wantBuild[i])
		}
	}
	if ix.BuildWall() <= 0 {
		t.Error("BuildWall <= 0")
	}
	if ix.ResidentBytes() <= 0 {
		t.Error("ResidentBytes <= 0")
	}
	res, err := ix.Query(context.Background(), 2, opt.QueryOptions, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 1 || res.Phases[0].Name != PhaseAlign || res.Phases[0].RealWall <= 0 {
		t.Fatalf("per-call phases = %+v, want one measured align phase", res.Phases)
	}
	if res.IndexStats.DistinctSeeds == 0 {
		t.Error("per-call results missing index stats")
	}
	if res.SeedLookups == 0 {
		t.Error("per-call results missing seed lookups")
	}
}

// A truncated index (MaxLocList) must refuse queries whose threshold needs
// complete location lists.
func TestQueryRejectsThresholdBeyondStoredLists(t *testing.T) {
	ds := testWorkload(t, 30_000, 1, 0)
	iopt := testOptions(21).IndexOptions
	iopt.MaxLocList = 6
	ix, err := BuildIndex(2, iopt, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	qopt := testOptions(21).QueryOptions
	qopt.MaxSeedHits = 5 // <= cap: fine
	if _, err := ix.Query(context.Background(), 2, qopt, ds.Reads[:10]); err != nil {
		t.Fatalf("MaxSeedHits below cap rejected: %v", err)
	}
	qopt.MaxSeedHits = 7 // beyond cap
	if _, err := ix.Query(context.Background(), 2, qopt, ds.Reads[:10]); err == nil {
		t.Error("MaxSeedHits beyond MaxLocList accepted")
	}
	qopt.MaxSeedHits = 0 // unlimited needs full lists
	if _, err := ix.Query(context.Background(), 2, qopt, ds.Reads[:10]); err == nil {
		t.Error("unlimited MaxSeedHits accepted on truncated index")
	}
}

func TestBuildIndexValidation(t *testing.T) {
	ds := testWorkload(t, 30_000, 1, 0)
	iopt := testOptions(21).IndexOptions
	if _, err := BuildIndex(0, iopt, ds.Contigs); err == nil {
		t.Error("workers=0 accepted")
	}
	bad := iopt
	bad.K = 0
	if _, err := BuildIndex(2, bad, ds.Contigs); err == nil {
		t.Error("invalid K accepted")
	}
	ix, err := BuildIndex(2, iopt, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Query(context.Background(), 0, testOptions(21).QueryOptions, ds.Reads); err == nil {
		t.Error("query workers=0 accepted")
	}
	badQ := testOptions(21).QueryOptions
	badQ.SeedStride = -1
	if _, err := ix.Query(context.Background(), 2, badQ, ds.Reads); err == nil {
		t.Error("invalid query options accepted")
	}

	// One-shot Options catch the truncation/threshold mismatch up front,
	// on both engines.
	clash := testOptions(21)
	clash.MaxLocList = 5
	clash.MaxSeedHits = 10
	if clash.Validate() == nil {
		t.Error("MaxSeedHits > MaxLocList accepted by Options.Validate")
	}
	if _, err := Run(testMach(8), clash, ds.Contigs, ds.Reads[:10]); err == nil {
		t.Error("simulated Run accepted a truncated index with an unservable threshold")
	}
	clash.MaxSeedHits = 0
	if _, err := RunThreaded(2, clash, ds.Contigs, ds.Reads[:10]); err == nil {
		t.Error("RunThreaded accepted unlimited MaxSeedHits on a truncated index")
	}
}
