package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/kmer"
	"github.com/lbl-repro/meraligner/internal/merx"
)

// shardSetResolver implements SeedResolver over loaded seed shards — the
// in-process analogue of the network client, routing each seed to its
// owning shard by hash. It is the reference implementation the parity
// tests compare the engine's remote path against.
type shardSetResolver struct {
	shards []*SeedShard
}

func (r *shardSetResolver) ResolveSeeds(ctx context.Context, seeds []kmer.Kmer, out []SeedAnswer) error {
	if len(out) != len(seeds) {
		return fmt.Errorf("out/seeds length mismatch: %d vs %d", len(out), len(seeds))
	}
	info := r.shards[0].Info()
	for i, s := range seeds {
		sh := r.shards[dht.OwnerOf(s, info.Shards, info.Count)]
		if !sh.Owns(s) {
			return fmt.Errorf("seed %d routed to non-owner", i)
		}
		res, ok := sh.Lookup(s)
		out[i] = SeedAnswer{Res: res, OK: ok}
	}
	return nil
}

// loadSeedShardSet saves and re-opens a fleet of seed shards.
func loadSeedShardSet(t *testing.T, ix *ThreadedIndex, count int) []*SeedShard {
	t.Helper()
	dir := t.TempDir()
	paths, err := ix.SaveSeedShards(dir, count)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != count {
		t.Fatalf("SaveSeedShards returned %d paths, want %d", len(paths), count)
	}
	shards := make([]*SeedShard, count)
	for i, p := range paths {
		sh, err := LoadSeedShard(p)
		if err != nil {
			t.Fatalf("LoadSeedShard(%s): %v", p, err)
		}
		t.Cleanup(func() { sh.Close() })
		if got := sh.Info(); got.ID != i || got.Count != count {
			t.Fatalf("shard %d identity %+v", i, got)
		}
		shards[i] = sh
	}
	return shards
}

// TestSeedShardResolverParity is the core-level distributed-parity check:
// aligning through a SeedResolver backed by saved-and-reloaded seed shards
// must produce results identical to the local index — alignments, cigars,
// per-read stats — across shard counts, both engines, and strides.
func TestSeedShardResolverParity(t *testing.T) {
	ds := testWorkload(t, 60_000, 3, 0.005)
	opt := testOptions(21)
	ix, err := BuildIndex(3, opt.IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	qopt := opt.QueryOptions
	qopt.CollectPerQuery = true

	want, err := ix.Query(context.Background(), 2, qopt, ds.Reads)
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{1, 2, 4} {
		shards := loadSeedShardSet(t, ix, count)
		ropt := qopt
		ropt.SeedResolver = &shardSetResolver{shards: shards}

		got, err := ix.Query(context.Background(), 2, ropt, ds.Reads)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Alignments, got.Alignments) {
			t.Fatalf("count=%d: alignments differ: local %d, resolver %d", count, len(want.Alignments), len(got.Alignments))
		}
		if want.AlignedReads != got.AlignedReads || want.ExactPathReads != got.ExactPathReads ||
			want.TotalAlignments != got.TotalAlignments || want.SWCalls != got.SWCalls ||
			want.SeedLookups != got.SeedLookups {
			t.Fatalf("count=%d: counters differ: local %+v, resolver %+v", count, want, got)
		}

		sGot, err := ix.QuerySerial(context.Background(), ropt, ds.Reads[:25])
		if err != nil {
			t.Fatal(err)
		}
		sWant, err := ix.QuerySerial(context.Background(), qopt, ds.Reads[:25])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sWant.Alignments, sGot.Alignments) {
			t.Fatalf("count=%d: serial-path alignments differ", count)
		}
	}
}

// TestSeedShardResolverParityStride covers the stride > 1 seed schedule:
// the prefetch pass must collect exactly the seeds the general path looks
// up, so a stride mismatch would misalign the answer buffer and change
// output.
func TestSeedShardResolverParityStride(t *testing.T) {
	ds := testWorkload(t, 40_000, 2, 0.01)
	opt := testOptions(21)
	ix, err := BuildIndex(2, opt.IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	shards := loadSeedShardSet(t, ix, 3)
	for _, stride := range []int{1, 3, 7} {
		qopt := opt.QueryOptions
		qopt.SeedStride = stride
		want, err := ix.Query(context.Background(), 2, qopt, ds.Reads)
		if err != nil {
			t.Fatal(err)
		}
		qopt.SeedResolver = &shardSetResolver{shards: shards}
		got, err := ix.Query(context.Background(), 2, qopt, ds.Reads)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Alignments, got.Alignments) {
			t.Fatalf("stride=%d: alignments differ", stride)
		}
	}
}

// failingResolver fails after a set number of ResolveSeeds calls.
type failingResolver struct {
	inner SeedResolver
	calls int
	after int
}

func (r *failingResolver) ResolveSeeds(ctx context.Context, seeds []kmer.Kmer, out []SeedAnswer) error {
	r.calls++
	if r.calls > r.after {
		return errors.New("seed shard unreachable")
	}
	return r.inner.ResolveSeeds(ctx, seeds, out)
}

// TestSeedResolverErrorAborts: a resolver failure must fail the whole call
// with the resolver's error — no partial results, no silent seed loss.
func TestSeedResolverErrorAborts(t *testing.T) {
	ds := testWorkload(t, 30_000, 2, 0.005)
	opt := testOptions(21)
	ix, err := BuildIndex(2, opt.IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	shards := loadSeedShardSet(t, ix, 2)
	qopt := opt.QueryOptions
	qopt.SeedResolver = &failingResolver{inner: &shardSetResolver{shards: shards}, after: 5}

	if _, err := ix.Query(context.Background(), 2, qopt, ds.Reads); err == nil || err.Error() != "seed shard unreachable" {
		t.Fatalf("Query surfaced %v, want the resolver error", err)
	}
	qopt.SeedResolver = &failingResolver{inner: &shardSetResolver{shards: shards}, after: 5}
	if _, err := ix.QuerySerial(context.Background(), qopt, ds.Reads); err == nil || err.Error() != "seed shard unreachable" {
		t.Fatalf("QuerySerial surfaced %v, want the resolver error", err)
	}
}

// TestLoadSeedShardRejects: typed failures for the wrong kind of file.
func TestLoadSeedShardRejects(t *testing.T) {
	ds := testWorkload(t, 30_000, 1, 0)
	opt := testOptions(21)
	ix, err := BuildIndex(2, opt.IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	// A plain index snapshot has no DHTP section.
	plain := filepath.Join(t.TempDir(), "plain.merx")
	if err := ix.Save(plain); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSeedShard(plain); !errors.Is(err, merx.ErrIncompatible) {
		t.Fatalf("LoadSeedShard(plain index) = %v, want ErrIncompatible", err)
	}
	// A seed shard still opens through LoadIndex (self-contained partial
	// table), and carries its identity through to servers.
	paths, err := ix.SaveSeedShards(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := LoadIndex(1, paths[0])
	if err != nil {
		t.Fatalf("LoadIndex(seed shard) = %v, want success (self-contained)", err)
	}
	full.Close()
	// Bad count argument.
	if _, err := ix.SaveSeedShards(t.TempDir(), 0); err == nil {
		t.Fatal("SaveSeedShards accepted count 0")
	}
}

// TestSaveSeedShardsFingerprintAgreement: all shards of one save share the
// fingerprint; saves with different owner counts differ.
func TestSaveSeedShardsFingerprintAgreement(t *testing.T) {
	ds := testWorkload(t, 30_000, 1, 0)
	opt := testOptions(21)
	ix, err := BuildIndex(2, opt.IndexOptions, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	a := loadSeedShardSet(t, ix, 3)
	fp := a[0].Info().Fingerprint
	for _, sh := range a {
		if sh.Info().Fingerprint != fp {
			t.Fatalf("fingerprints disagree within one save: %d vs %d", sh.Info().Fingerprint, fp)
		}
	}
	b := loadSeedShardSet(t, ix, 2)
	if b[0].Info().Fingerprint == fp {
		t.Fatal("fingerprint identical across different owner counts")
	}
}
