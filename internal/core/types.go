// Package core implements merAligner itself: Algorithm 1 of the paper — a
// fully parallel seed-and-extend aligner over the distributed seed index —
// together with all four of its alignment optimizations: the exact-match
// fast path built on single-copy-seed detection and target fragmentation
// (§IV-A), load balancing by input permutation (§IV-B), the
// max-alignments-per-seed sensitivity threshold (§IV-C), and per-node
// software caching of seeds and targets (§III-B).
//
// Two execution modes are provided: Run executes on the simulated PGAS
// machine of package upc (for the strong-scaling and ablation experiments),
// and RunThreaded executes the same algorithm with real goroutines and
// wall-clock time on the host (the single-node comparison of Fig 11).
package core

import (
	"context"
	"fmt"

	"github.com/lbl-repro/meraligner/internal/align"
	"github.com/lbl-repro/meraligner/internal/cache"
	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/kmer"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// IndexOptions is the build-time half of a merAligner configuration: every
// knob that shapes the seed index itself — the fragment table, the
// distributed hash table, the single-copy marking, and the cache budgets
// sized against that index. Two runs with equal IndexOptions over the same
// targets build byte-identical indexes, whatever their query-time settings.
type IndexOptions struct {
	K int // seed length (paper: 51 for human/wheat, 19 for E. coli)

	// Distributed index construction.
	Mode dht.BuildMode // Aggregating (default) or FineGrained (Fig 8 ablation)
	AggS int           // aggregation buffer size S (paper: 1000)

	// Software caches, per-node byte budgets (Fig 9 ablation: set to 0).
	SeedCacheBytes   int64
	TargetCacheBytes int64

	// Exact-match optimization (Fig 10 ablation): marking single-copy
	// fragments is an index-construction phase, so the fast path can only
	// be used at query time when the index was built with it.
	ExactMatch  bool
	FragmentLen int // target fragmentation length F (0 disables fragmentation)

	// MaxLocList caps the stored location list per seed (0 = store every
	// occurrence). Occurrence COUNTS stay exact either way, so the §IV-C
	// MaxSeedHits threshold still filters correctly — but a query may only
	// use MaxSeedHits <= MaxLocList (enforced by Query), since a seed
	// passing the threshold must have its complete list. One-shot runs set
	// this to MaxSeedHits+1 automatically; persistent indexes meant to
	// serve arbitrary thresholds should leave it 0.
	MaxLocList int
}

// QueryOptions is the query-time half of a merAligner configuration: the
// knobs of the aligning phase only. Different Align calls against the same
// resident index may use different QueryOptions.
type QueryOptions struct {
	Scoring align.Scoring // Smith-Waterman parameters

	// Sensitivity threshold: seeds occurring more often than this are
	// skipped during candidate generation (0 = unlimited) — §IV-C.
	MaxSeedHits int

	// Load balancing (Table I): permute the query order before chunking.
	// Only the simulated engine's static partition needs it; the threaded
	// engine balances with dynamic work claims.
	Permute     bool
	PermuteSeed int64

	// SeedStride looks up every SeedStride-th query seed on the general
	// path (1 = every seed, the paper's behavior). Larger strides trade
	// sensitivity for speed on scaled-down workloads.
	SeedStride int

	// ExtendPad widens the Smith-Waterman window around the seed diagonal.
	ExtendPad int

	// MinScore filters reported alignments; 0 defaults to K (a bare seed).
	MinScore int

	// CollectAlignments retains full alignment records (with cigars).
	// Disable for large simulated runs where only statistics matter.
	CollectAlignments bool

	// CollectPerQuery retains one QueryStat per query in Results.PerQuery
	// (status, alignment count, Smith-Waterman calls, wall nanoseconds) —
	// the per-read latency source behind a service's p50/p99 reporting.
	// Honored by the threaded engine (Query/QuerySerial); the simulated
	// engine ignores it, since its per-query time is virtual.
	CollectPerQuery bool

	// Extend replaces the seed-extension engine (§VIII: "the Striped
	// Smith-Waterman local alignment engine could easily be replaced with
	// any other local alignment software tool"). nil uses the built-in
	// striped Smith-Waterman via align.ExtendSeed.
	Extend ExtendFunc

	// SeedResolver replaces the local seed-index probe with a remote
	// resolver — the distributed-DHT seam. When set on a threaded-engine
	// call, every query's seed lookups are collected up front and resolved
	// in one ResolveSeeds call (which the network tier batches per owning
	// node); extension and Smith-Waterman still run locally, and the
	// results are bit-identical to local lookups against the same table.
	// The simulated engine ignores it. Like Extend, this field is runtime
	// wiring, not serialized configuration.
	SeedResolver SeedResolver
}

// SeedAnswer is one resolved seed lookup: the location list and the
// present/absent flag, exactly what dht.Sharded.Lookup returns locally.
type SeedAnswer struct {
	Res dht.LookupResult
	OK  bool
}

// SeedResolver resolves a batch of canonical seeds to their location lists.
// Implementations must fill out[i] for every seeds[i] (len(out) ==
// len(seeds)) or return an error; a missing seed is out[i].OK == false, so
// "unknown" is never silently conflated with "absent". The engine calls it
// once per query with every seed the query will look up, in lookup order.
type SeedResolver interface {
	ResolveSeeds(ctx context.Context, seeds []kmer.Kmer, out []SeedAnswer) error
}

// Options configures a one-shot merAligner run: both halves of the
// configuration plus the I/O accounting knobs of the simulated engine. The
// zero value is not usable; start from DefaultOptions.
type Options struct {
	IndexOptions
	QueryOptions

	// QueryBytesOnDisk/TargetBytesOnDisk let callers charge the I/O phases
	// with realistic on-disk sizes (e.g. SeqDB files); when zero, the
	// packed in-memory sizes are charged.
	QueryBytesOnDisk  int64
	TargetBytesOnDisk int64
}

// ExtendFunc is a pluggable seed-extension engine: it locally aligns query
// against target given a seed match of length k at query offset qOff and
// target offset tOff, searching a window widened by pad.
type ExtendFunc func(query, target []byte, qOff, tOff, k int, sc align.Scoring, pad int) align.Result

// DefaultIndexOptions returns the paper's build-time configuration for a
// given seed length.
func DefaultIndexOptions(k int) IndexOptions {
	return IndexOptions{
		K:                k,
		Mode:             dht.Aggregating,
		AggS:             1000,
		SeedCacheBytes:   16 << 20, // scaled-down analogue of 16 GB/node
		TargetCacheBytes: 6 << 20,  // scaled-down analogue of 6 GB/node
		ExactMatch:       true,
		FragmentLen:      2000,
	}
}

// DefaultQueryOptions returns the paper's query-time configuration.
func DefaultQueryOptions() QueryOptions {
	return QueryOptions{
		Scoring:     align.DefaultScoring,
		MaxSeedHits: 1000,
		Permute:     true,
		PermuteSeed: 12345,
		SeedStride:  1,
		ExtendPad:   24,
	}
}

// DefaultOptions returns the paper's configuration for a given seed length.
func DefaultOptions(k int) Options {
	return Options{
		IndexOptions: DefaultIndexOptions(k),
		QueryOptions: DefaultQueryOptions(),
	}
}

// Validate reports build-time option errors.
func (o IndexOptions) Validate() error {
	if o.K <= 0 || o.K > 64 {
		return fmt.Errorf("core: K=%d out of range 1..64", o.K)
	}
	if o.FragmentLen != 0 && o.FragmentLen <= o.K {
		return fmt.Errorf("core: FragmentLen %d must exceed K %d", o.FragmentLen, o.K)
	}
	if o.MaxLocList < 0 {
		return fmt.Errorf("core: negative MaxLocList")
	}
	return nil
}

// Validate reports query-time option errors.
func (o QueryOptions) Validate() error {
	if err := o.Scoring.Validate(); err != nil {
		return err
	}
	if o.SeedStride < 0 {
		return fmt.Errorf("core: negative SeedStride")
	}
	return nil
}

// checkQueryCompat reports the one cross-half constraint: a truncated index
// (MaxLocList > 0) cannot serve a MaxSeedHits threshold that needs complete
// location lists — a seed passing the threshold must have every stored
// occurrence. Enforced up front by Options.Validate for one-shot runs and
// per call by ThreadedIndex.Query for resident indexes.
func (o IndexOptions) checkQueryCompat(q QueryOptions) error {
	if o.MaxLocList > 0 && (q.MaxSeedHits == 0 || q.MaxSeedHits > o.MaxLocList) {
		return fmt.Errorf("core: MaxSeedHits %d needs complete location lists but the index stores at most %d (IndexOptions.MaxLocList)",
			q.MaxSeedHits, o.MaxLocList)
	}
	return nil
}

// Validate reports option errors in either half, plus the cross-half
// truncation/threshold constraint a one-shot run can check up front.
func (o Options) Validate() error {
	if err := o.IndexOptions.Validate(); err != nil {
		return err
	}
	if err := o.QueryOptions.Validate(); err != nil {
		return err
	}
	return o.IndexOptions.checkQueryCompat(o.QueryOptions)
}

func (o Options) minScore() int {
	if o.MinScore > 0 {
		return o.MinScore
	}
	return o.K
}

func (o Options) stride() int {
	if o.SeedStride <= 0 {
		return 1
	}
	return o.SeedStride
}

// QueryStatus classifies how the aligning phase admitted one query.
type QueryStatus uint8

const (
	// QueryOK: the query entered the aligning phase normally (it may still
	// have found no alignment — that is "unmapped", not a status).
	QueryOK QueryStatus = iota

	// QueryTooShort marks a read shorter than the seed length K: it carries
	// no complete seed, so the engine cannot align it at all. Callers
	// serving untrusted input (the network service) map this to a client
	// error instead of conflating it with "aligned nowhere".
	QueryTooShort
)

// String returns the lowercase wire name of the status.
func (s QueryStatus) String() string {
	switch s {
	case QueryOK:
		return "ok"
	case QueryTooShort:
		return "too_short"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// QueryStat is one query's aligning-phase account, collected when
// QueryOptions.CollectPerQuery is set on a threaded-engine call.
type QueryStat struct {
	Status      QueryStatus
	Alignments  int32 // reported alignments for this query
	Exact       bool  // resolved entirely by the exact-match fast path
	SWCalls     int32 // Smith-Waterman invocations
	SeedLookups int32 // seed-index lookups
	Nanos       int64 // wall nanoseconds spent aligning this query
}

// Alignment is one reported query-to-target local alignment.
type Alignment struct {
	Query  int32 // query index
	Target int32 // target (contig) index
	RC     bool  // query aligned on the reverse strand
	Score  int32
	QStart int32 // query interval [QStart, QEnd)
	QEnd   int32
	TStart int32 // target interval [TStart, TEnd)
	TEnd   int32
	Exact  bool   // produced by the exact-match fast path
	Cigar  string // only when Options.CollectAlignments
}

// Results aggregates a complete run.
type Results struct {
	// Phase timings, in pipeline order. Wall is simulated seconds for Run
	// and real seconds for RunThreaded.
	Phases []upc.PhaseStat

	TotalReads      int
	AlignedReads    int // reads with >= 1 reported alignment
	ExactPathReads  int // reads resolved entirely by the fast path
	TooShortReads   int // reads shorter than K (no complete seed; not aligned)
	TotalAlignments int64
	SWCalls         int64
	SeedLookups     int64

	// TooShort lists the query indices (sorted) of reads shorter than the
	// seed length K. Such reads cannot be aligned; they are reported here —
	// and as QueryTooShort in PerQuery — instead of being silently dropped.
	TooShort []int32

	// PerQuery holds one stat record per query, indexed by query, when
	// QueryOptions.CollectPerQuery was set on a threaded-engine call.
	PerQuery []QueryStat

	SeedCache   cache.CounterSnapshot
	TargetCache cache.CounterSnapshot
	IndexStats  dht.Stats

	// Communication split of the align phase (Fig 9): simulated seconds of
	// the slowest thread spent on seed lookups vs target fetches.
	CommSeedLookupMax  float64
	CommFetchTargetMax float64

	Alignments []Alignment // populated when Options.CollectAlignments
}

// Phase returns the named phase, or false.
func (r *Results) Phase(name string) (upc.PhaseStat, bool) {
	for _, p := range r.Phases {
		if p.Name == name {
			return p, true
		}
	}
	return upc.PhaseStat{}, false
}

// TotalWall sums all phase wall times (end-to-end runtime).
func (r *Results) TotalWall() float64 {
	var s float64
	for _, p := range r.Phases {
		s += p.Wall
	}
	return s
}

// IndexWall sums the index-construction phases (extract+stage, drain, mark).
func (r *Results) IndexWall() float64 {
	var s float64
	for _, p := range r.Phases {
		switch p.Name {
		case PhaseExtract, PhaseDrain, PhaseMark:
			s += p.Wall
		}
	}
	return s
}

// AlignWall returns the aligning-phase wall time.
func (r *Results) AlignWall() float64 {
	p, _ := r.Phase(PhaseAlign)
	return p.Wall
}

// IOWall sums the I/O phases.
func (r *Results) IOWall() float64 {
	var s float64
	for _, p := range r.Phases {
		if p.Name == PhaseReadTargets || p.Name == PhaseReadQueries {
			s += p.Wall
		}
	}
	return s
}

// Phase names, in pipeline order. PhaseLoad replaces the three
// index-construction phases when the index comes from a snapshot.
const (
	PhaseReadTargets = "read targets (I/O)"
	PhaseExtract     = "extract+stage seeds"
	PhaseDrain       = "drain seed index"
	PhaseMark        = "mark single-copy"
	PhaseLoad        = "load index (mmap)"
	PhaseReadQueries = "read queries (I/O)"
	PhaseAlign       = "align"
)
