// Package core implements merAligner itself: Algorithm 1 of the paper — a
// fully parallel seed-and-extend aligner over the distributed seed index —
// together with all four of its alignment optimizations: the exact-match
// fast path built on single-copy-seed detection and target fragmentation
// (§IV-A), load balancing by input permutation (§IV-B), the
// max-alignments-per-seed sensitivity threshold (§IV-C), and per-node
// software caching of seeds and targets (§III-B).
//
// Two execution modes are provided: Run executes on the simulated PGAS
// machine of package upc (for the strong-scaling and ablation experiments),
// and RunThreaded executes the same algorithm with real goroutines and
// wall-clock time on the host (the single-node comparison of Fig 11).
package core

import (
	"fmt"

	"github.com/lbl-repro/meraligner/internal/align"
	"github.com/lbl-repro/meraligner/internal/cache"
	"github.com/lbl-repro/meraligner/internal/dht"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// Options configures a merAligner run. The zero value is not usable; start
// from DefaultOptions.
type Options struct {
	K       int           // seed length (paper: 51 for human/wheat, 19 for E. coli)
	Scoring align.Scoring // Smith-Waterman parameters

	// Distributed index construction.
	Mode dht.BuildMode // Aggregating (default) or FineGrained (Fig 8 ablation)
	AggS int           // aggregation buffer size S (paper: 1000)

	// Software caches, per-node byte budgets (Fig 9 ablation: set to 0).
	SeedCacheBytes   int64
	TargetCacheBytes int64

	// Exact-match optimization (Fig 10 ablation).
	ExactMatch  bool
	FragmentLen int // target fragmentation length F (0 disables fragmentation)

	// Sensitivity threshold: seeds occurring more often than this are
	// skipped during candidate generation (0 = unlimited) — §IV-C.
	MaxSeedHits int

	// Load balancing (Table I): permute the query order before chunking.
	Permute     bool
	PermuteSeed int64

	// SeedStride looks up every SeedStride-th query seed on the general
	// path (1 = every seed, the paper's behavior). Larger strides trade
	// sensitivity for speed on scaled-down workloads.
	SeedStride int

	// ExtendPad widens the Smith-Waterman window around the seed diagonal.
	ExtendPad int

	// MinScore filters reported alignments; 0 defaults to K (a bare seed).
	MinScore int

	// CollectAlignments retains full alignment records (with cigars).
	// Disable for large simulated runs where only statistics matter.
	CollectAlignments bool

	// QueryBytesOnDisk/TargetBytesOnDisk let callers charge the I/O phases
	// with realistic on-disk sizes (e.g. SeqDB files); when zero, the
	// packed in-memory sizes are charged.
	QueryBytesOnDisk  int64
	TargetBytesOnDisk int64

	// Extend replaces the seed-extension engine (§VIII: "the Striped
	// Smith-Waterman local alignment engine could easily be replaced with
	// any other local alignment software tool"). nil uses the built-in
	// striped Smith-Waterman via align.ExtendSeed.
	Extend ExtendFunc
}

// ExtendFunc is a pluggable seed-extension engine: it locally aligns query
// against target given a seed match of length k at query offset qOff and
// target offset tOff, searching a window widened by pad.
type ExtendFunc func(query, target []byte, qOff, tOff, k int, sc align.Scoring, pad int) align.Result

// DefaultOptions returns the paper's configuration for a given seed length.
func DefaultOptions(k int) Options {
	return Options{
		K:                k,
		Scoring:          align.DefaultScoring,
		Mode:             dht.Aggregating,
		AggS:             1000,
		SeedCacheBytes:   16 << 20, // scaled-down analogue of 16 GB/node
		TargetCacheBytes: 6 << 20,  // scaled-down analogue of 6 GB/node
		ExactMatch:       true,
		FragmentLen:      2000,
		MaxSeedHits:      1000,
		Permute:          true,
		PermuteSeed:      12345,
		SeedStride:       1,
		ExtendPad:        24,
	}
}

// Validate reports option errors.
func (o Options) Validate() error {
	if o.K <= 0 || o.K > 64 {
		return fmt.Errorf("core: K=%d out of range 1..64", o.K)
	}
	if err := o.Scoring.Validate(); err != nil {
		return err
	}
	if o.SeedStride < 0 {
		return fmt.Errorf("core: negative SeedStride")
	}
	if o.FragmentLen != 0 && o.FragmentLen <= o.K {
		return fmt.Errorf("core: FragmentLen %d must exceed K %d", o.FragmentLen, o.K)
	}
	return nil
}

func (o Options) minScore() int {
	if o.MinScore > 0 {
		return o.MinScore
	}
	return o.K
}

func (o Options) stride() int {
	if o.SeedStride <= 0 {
		return 1
	}
	return o.SeedStride
}

// Alignment is one reported query-to-target local alignment.
type Alignment struct {
	Query  int32 // query index
	Target int32 // target (contig) index
	RC     bool  // query aligned on the reverse strand
	Score  int32
	QStart int32 // query interval [QStart, QEnd)
	QEnd   int32
	TStart int32 // target interval [TStart, TEnd)
	TEnd   int32
	Exact  bool   // produced by the exact-match fast path
	Cigar  string // only when Options.CollectAlignments
}

// Results aggregates a complete run.
type Results struct {
	// Phase timings, in pipeline order. Wall is simulated seconds for Run
	// and real seconds for RunThreaded.
	Phases []upc.PhaseStat

	TotalReads      int
	AlignedReads    int // reads with >= 1 reported alignment
	ExactPathReads  int // reads resolved entirely by the fast path
	TotalAlignments int64
	SWCalls         int64
	SeedLookups     int64

	SeedCache   cache.CounterSnapshot
	TargetCache cache.CounterSnapshot
	IndexStats  dht.Stats

	// Communication split of the align phase (Fig 9): simulated seconds of
	// the slowest thread spent on seed lookups vs target fetches.
	CommSeedLookupMax  float64
	CommFetchTargetMax float64

	Alignments []Alignment // populated when Options.CollectAlignments
}

// Phase returns the named phase, or false.
func (r *Results) Phase(name string) (upc.PhaseStat, bool) {
	for _, p := range r.Phases {
		if p.Name == name {
			return p, true
		}
	}
	return upc.PhaseStat{}, false
}

// TotalWall sums all phase wall times (end-to-end runtime).
func (r *Results) TotalWall() float64 {
	var s float64
	for _, p := range r.Phases {
		s += p.Wall
	}
	return s
}

// IndexWall sums the index-construction phases (extract+stage, drain, mark).
func (r *Results) IndexWall() float64 {
	var s float64
	for _, p := range r.Phases {
		switch p.Name {
		case PhaseExtract, PhaseDrain, PhaseMark:
			s += p.Wall
		}
	}
	return s
}

// AlignWall returns the aligning-phase wall time.
func (r *Results) AlignWall() float64 {
	p, _ := r.Phase(PhaseAlign)
	return p.Wall
}

// IOWall sums the I/O phases.
func (r *Results) IOWall() float64 {
	var s float64
	for _, p := range r.Phases {
		if p.Name == PhaseReadTargets || p.Name == PhaseReadQueries {
			s += p.Wall
		}
	}
	return s
}

// Phase names, in pipeline order.
const (
	PhaseReadTargets = "read targets (I/O)"
	PhaseExtract     = "extract+stage seeds"
	PhaseDrain       = "drain seed index"
	PhaseMark        = "mark single-copy"
	PhaseReadQueries = "read queries (I/O)"
	PhaseAlign       = "align"
)
