// Package coalesce implements the continuous micro-batching queue shared by
// every network tier of meraligner: concurrent small submissions glue into
// shared calls, so a per-call cost — an engine dispatch, an HTTP round-trip
// per shard, a seed-lookup RPC per owner — is paid once per batching window
// instead of once per submitter. The scheme is the same one
// internal/service's batcher pioneered (dispatcher loop, batching window
// held open behind an in-flight call, bounded admission, group context);
// this package is its generic extraction, parameterized over the item type
// and the call result, so the scatter/gather router (internal/cluster,
// items = reads) and the network-DHT client (internal/dhtnet, items = seed
// lookups) run literally the same queue.
package coalesce

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel errors callers translate to their transport's statuses (the HTTP
// tiers map them to 429 + Retry-After and 503 draining).
var (
	// ErrOverloaded: the submission would push the queue past its admission
	// bound; the caller should shed load or retry later.
	ErrOverloaded = errors.New("coalesce: admission queue full")
	// ErrDraining: the coalescer no longer admits work.
	ErrDraining = errors.New("coalesce: draining")
)

// Func runs one coalesced call over the concatenated items of a batch.
type Func[T, R any] func(ctx context.Context, items []T) (R, error)

// Prepare lets the owner derive call-scoped context state from a batch's
// member contexts just before dispatch (the router uses this to stamp a
// carrier span context, adopting a lone member's trace so shard-side logs
// join up). A nil Prepare dispatches with the group context unchanged.
type Prepare func(ctx context.Context, members []context.Context) context.Context

// Stats receives the coalescer's observation hooks. Implementations must be
// concurrency-safe; a nil Stats disables observation.
type Stats interface {
	// ObserveBatch records one successful coalesced call: how many member
	// submissions shared it and how many items they contributed in total.
	ObserveBatch(requests, items int)
	// ObserveCanceled records a member whose context died before its share
	// of a call could be delivered.
	ObserveCanceled()
}

// Window is one submission's view of a coalesced call: the shared result
// plus this member's item range within the concatenated batch, and the
// timings needed to replay the queue wait into a request trace.
type Window[R any] struct {
	Result R
	Lo, Hi int // this member's items occupy batch positions [Lo, Hi)

	Enq      time.Time // when this member entered the queue
	Disp     time.Time // when its call dispatched
	Done     time.Time // when the call finished
	Requests int       // member submissions sharing the call
}

// pending is one queued submission.
type pending[T, R any] struct {
	ctx   context.Context
	items []T
	enq   time.Time
	win   *Window[R]
	err   error
	done  chan struct{}
}

// Config assembles a Coalescer. Call is required; everything else has a
// workable zero value except MaxBatch and Capacity, which bound batch size
// and admitted backlog and must be positive for the queue to admit anything.
type Config[T, R any] struct {
	Call     Func[T, R]
	MaxBatch int           // items per coalesced call
	MaxWait  time.Duration // window held open behind a busy call; <=0 disables
	Capacity int           // admission bound on queued items
	Stats    Stats         // optional observation hooks
	Prepare  Prepare       // optional pre-dispatch context hook
}

// Coalescer is the continuous micro-batching queue. Create with New; it owns
// one dispatcher goroutine until Close or Drain completes.
type Coalescer[T, R any] struct {
	call     Func[T, R]
	prepare  Prepare
	maxBatch int
	maxWait  time.Duration
	capacity int // admission bound on queued items
	base     context.Context
	st       Stats

	mu       sync.Mutex
	cond     *sync.Cond // broadcast on queue/inflight transitions
	queue    []*pending[T, R]
	queued   int // items queued
	inflight int // calls running
	closed   bool

	wake    chan struct{} // 1-buffered dispatcher kick
	stopped chan struct{} // dispatcher exited
}

// New starts a coalescer whose calls derive from base.
func New[T, R any](base context.Context, cfg Config[T, R]) *Coalescer[T, R] {
	c := &Coalescer[T, R]{
		call:     cfg.Call,
		prepare:  cfg.Prepare,
		maxBatch: cfg.MaxBatch,
		maxWait:  cfg.MaxWait,
		capacity: cfg.Capacity,
		base:     base,
		st:       cfg.Stats,
		wake:     make(chan struct{}, 1),
		stopped:  make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.run()
	return c
}

// QueuedItems reports the items currently waiting (for stats).
func (c *Coalescer[T, R]) QueuedItems() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queued
}

// Closed reports whether drain has started.
func (c *Coalescer[T, R]) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// EnterDirect/ExitDirect bracket a call the coalescer did not dispatch (the
// big-submission direct path): the shared inflight count lets queued small
// submissions coalesce behind a big direct call, and makes Drain wait for
// direct calls too.
func (c *Coalescer[T, R]) EnterDirect() {
	c.mu.Lock()
	c.inflight++
	c.mu.Unlock()
}

func (c *Coalescer[T, R]) ExitDirect() {
	c.mu.Lock()
	c.inflight--
	c.cond.Broadcast()
	c.mu.Unlock()
	c.kick()
}

// Submit enqueues one submission's items and blocks until its call completes
// or ctx is done.
func (c *Coalescer[T, R]) Submit(ctx context.Context, items []T) (*Window[R], error) {
	p := &pending[T, R]{ctx: ctx, items: items, enq: time.Now(), done: make(chan struct{})}
	c.mu.Lock()
	switch {
	case c.closed:
		c.mu.Unlock()
		return nil, ErrDraining
	case c.queued+len(items) > c.capacity:
		c.mu.Unlock()
		return nil, ErrOverloaded
	}
	c.queue = append(c.queue, p)
	c.queued += len(items)
	c.mu.Unlock()
	c.kick()

	select {
	case <-p.done:
		return p.win, p.err
	case <-ctx.Done():
		// The dispatcher observes the dead ctx at take or demux time and
		// discards this member's share; batchmates are unaffected. No cleanup
		// needed here — a result holds no pinned resources.
		return nil, ctx.Err()
	}
}

// kick nudges the dispatcher without blocking.
func (c *Coalescer[T, R]) kick() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// Close stops admission without waiting; the dispatcher flushes any
// remaining queue and exits. Safe to call more than once.
func (c *Coalescer[T, R]) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.kick()
}

// Drain stops admission and flushes: queued submissions still execute, then
// in-flight calls finish. Returns when empty or ctx expires.
func (c *Coalescer[T, R]) Drain(ctx context.Context) error {
	c.Close()

	idle := make(chan struct{})
	go func() {
		c.mu.Lock()
		for len(c.queue) > 0 || c.inflight > 0 {
			c.cond.Wait()
		}
		c.mu.Unlock()
		close(idle)
	}()
	select {
	case <-idle:
		<-c.stopped
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// run is the dispatcher: one goroutine owning batch formation; executions
// are spawned so arrivals accumulate while a call is in flight.
func (c *Coalescer[T, R]) run() {
	defer close(c.stopped)
	for {
		if !c.waitForWork() {
			return
		}
		c.waitWindow()
		batch, items := c.take()
		if len(batch) > 0 {
			go c.execute(batch, items)
		}
	}
}

// waitForWork blocks until the queue is nonempty; false means closed with
// an empty queue.
func (c *Coalescer[T, R]) waitForWork() bool {
	for {
		c.mu.Lock()
		n, closed := len(c.queue), c.closed
		c.mu.Unlock()
		if n > 0 {
			return true
		}
		if closed {
			return false
		}
		<-c.wake
	}
}

// waitWindow holds the queue open for coalescing while a call is in flight,
// returning when no call is running, maxBatch items are queued, maxWait
// elapsed, or drain started.
func (c *Coalescer[T, R]) waitWindow() {
	if c.maxWait <= 0 {
		return
	}
	timer := time.NewTimer(c.maxWait)
	defer timer.Stop()
	for {
		c.mu.Lock()
		ready := c.queued >= c.maxBatch || c.closed || c.inflight == 0
		c.mu.Unlock()
		if ready {
			return
		}
		select {
		case <-timer.C:
			return
		case <-c.wake:
		}
	}
}

// take pops the next coalesced batch: pendings in arrival order up to
// maxBatch items (a lone oversized submission still goes whole); dead-ctx
// submissions complete with their error and never dispatch.
func (c *Coalescer[T, R]) take() ([]*pending[T, R], int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var batch []*pending[T, R]
	items := 0
	for len(c.queue) > 0 {
		p := c.queue[0]
		if err := p.ctx.Err(); err != nil {
			c.pop()
			p.err = err
			close(p.done)
			if c.st != nil {
				c.st.ObserveCanceled()
			}
			continue
		}
		if items > 0 && items+len(p.items) > c.maxBatch {
			break
		}
		c.pop()
		batch = append(batch, p)
		items += len(p.items)
	}
	if len(batch) > 0 {
		c.inflight++
	}
	c.cond.Broadcast()
	return batch, items
}

// pop removes the queue head (caller holds mu).
func (c *Coalescer[T, R]) pop() {
	p := c.queue[0]
	c.queue[0] = nil
	c.queue = c.queue[1:]
	c.queued -= len(p.items)
}

// execute runs one coalesced call and demuxes the shared result to every
// member by item range.
func (c *Coalescer[T, R]) execute(batch []*pending[T, R], items int) {
	all := make([]T, 0, items)
	for _, p := range batch {
		all = append(all, p.items...)
	}
	ctx, cancel := groupContext(c.base, batch)
	if c.prepare != nil {
		members := make([]context.Context, len(batch))
		for i, p := range batch {
			members[i] = p.ctx
		}
		ctx = c.prepare(ctx, members)
	}
	disp := time.Now()
	res, err := c.call(ctx, all)
	finished := time.Now()
	cancel()
	if err == nil && c.st != nil {
		c.st.ObserveBatch(len(batch), items)
	}

	lo := 0
	for _, p := range batch {
		hi := lo + len(p.items)
		switch {
		case err != nil:
			p.err = err
		case p.ctx.Err() != nil:
			p.err = p.ctx.Err()
			if c.st != nil {
				c.st.ObserveCanceled()
			}
		default:
			p.win = &Window[R]{Result: res, Lo: lo, Hi: hi, Enq: p.enq, Disp: disp, Done: finished, Requests: len(batch)}
		}
		close(p.done)
		lo = hi
	}

	c.mu.Lock()
	c.inflight--
	c.cond.Broadcast()
	c.mu.Unlock()
	c.kick()
}

// groupContext derives the call context of one coalesced batch: done when
// the base context is, or when every member's own context is — a lone
// disconnect never kills its batchmates' call.
func groupContext[T, R any](base context.Context, batch []*pending[T, R]) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(base)
	var left atomic.Int32
	left.Store(int32(len(batch)))
	for _, p := range batch {
		go func(done <-chan struct{}) {
			select {
			case <-done:
				if left.Add(-1) == 0 {
					cancel()
				}
			case <-ctx.Done():
			}
		}(p.ctx.Done())
	}
	return ctx, cancel
}
