package seqio

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
)

func TestMaybeDecompress(t *testing.T) {
	plain := ">a\nACGTACGT\n"

	// Plain text passes through untouched.
	r, wasGzip, err := MaybeDecompress(strings.NewReader(plain))
	if err != nil || wasGzip {
		t.Fatalf("plain: gzip=%v err=%v", wasGzip, err)
	}
	got, _ := io.ReadAll(r)
	if string(got) != plain {
		t.Fatalf("plain passthrough mangled: %q", got)
	}

	// Gzipped content is detected and decompressed.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	io.WriteString(zw, plain)
	zw.Close()
	r, wasGzip, err = MaybeDecompress(&buf)
	if err != nil || !wasGzip {
		t.Fatalf("gzip: gzip=%v err=%v", wasGzip, err)
	}
	got, err = io.ReadAll(r)
	if err != nil || string(got) != plain {
		t.Fatalf("gzip roundtrip: %q err=%v", got, err)
	}

	// Short and empty streams fall through to the parser.
	for _, in := range []string{"", "A"} {
		r, wasGzip, err = MaybeDecompress(strings.NewReader(in))
		if err != nil || wasGzip {
			t.Fatalf("short %q: gzip=%v err=%v", in, wasGzip, err)
		}
		got, _ = io.ReadAll(r)
		if string(got) != in {
			t.Fatalf("short %q passthrough mangled: %q", in, got)
		}
	}

	// A gzip parse pipeline: ReadFasta over the decompressed stream.
	buf.Reset()
	zw = gzip.NewWriter(&buf)
	io.WriteString(zw, plain)
	zw.Close()
	r, _, err = MaybeDecompress(&buf)
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := ReadFasta(r, ParseOptions{})
	if err != nil || len(seqs) != 1 || seqs[0].Seq.String() != "ACGTACGT" {
		t.Fatalf("gzipped FASTA parse: %v %v", seqs, err)
	}
}

func TestMaybeCompressRoundTrip(t *testing.T) {
	// .gz path: output must decompress back through MaybeDecompress.
	var buf bytes.Buffer
	wc, compressed := MaybeCompress("out.sam.gz", &buf)
	if !compressed {
		t.Fatal("MaybeCompress(.gz) did not compress")
	}
	if _, err := io.WriteString(wc, "@HD\tVN:1.6\n"); err != nil {
		t.Fatal(err)
	}
	if err := wc.Close(); err != nil {
		t.Fatal(err)
	}
	r, wasGzip, err := MaybeDecompress(bytes.NewReader(buf.Bytes()))
	if err != nil || !wasGzip {
		t.Fatalf("round-trip sniff failed: gzip=%v err=%v", wasGzip, err)
	}
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "@HD\tVN:1.6\n" {
		t.Fatalf("round-trip content %q err=%v", got, err)
	}

	// Plain path: pass-through, and Close must not touch the underlying
	// writer.
	var plain bytes.Buffer
	wc, compressed = MaybeCompress("out.sam", &plain)
	if compressed {
		t.Fatal("MaybeCompress(plain) compressed")
	}
	io.WriteString(wc, "x")
	if err := wc.Close(); err != nil {
		t.Fatal(err)
	}
	if plain.String() != "x" {
		t.Fatalf("pass-through wrote %q", plain.String())
	}

	// Suffix matching is case-insensitive, as the read side's sniffing is
	// content-based and never cares about case either.
	if _, compressed = MaybeCompress("OUT.SAM.GZ", io.Discard); !compressed {
		t.Fatal("MaybeCompress(.GZ) did not compress")
	}
}
