package seqio

import (
	"bufio"
	"compress/gzip"
	"io"
	"strings"
)

// MaybeDecompress sniffs r for the gzip magic bytes and returns a buffered
// reader serving the decompressed stream when present, or the original
// bytes when not, plus whether gzip was detected. Sniffing only peeks, so
// for a plain file the underlying reader's byte offset semantics (e.g.
// ReadAt on an *os.File) are unaffected.
func MaybeDecompress(r io.Reader) (*bufio.Reader, bool, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	magic, err := br.Peek(2)
	if err != nil || len(magic) < 2 || magic[0] != 0x1f || magic[1] != 0x8b {
		// Short or unreadable streams pass through: the format parser
		// reports the real error with format context.
		return br, false, nil
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, false, err
	}
	return bufio.NewReader(zr), true, nil
}

// nopWriteCloser adapts a plain writer to MaybeCompress's interface.
type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// MaybeCompress is the write-side counterpart of MaybeDecompress's
// magic-byte sniffing: when path carries the .gz suffix the returned writer
// gzip-compresses into w, otherwise it passes through. The caller must
// Close the returned writer before closing w — for the gzip case that
// flush writes the stream trailer; for the pass-through case Close is a
// no-op, so the underlying file is never double-closed.
func MaybeCompress(path string, w io.Writer) (io.WriteCloser, bool) {
	if strings.HasSuffix(strings.ToLower(path), ".gz") {
		return gzip.NewWriter(w), true
	}
	return nopWriteCloser{w}, false
}
