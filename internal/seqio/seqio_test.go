package seqio

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/lbl-repro/meraligner/internal/dna"
)

func TestFastaRoundTrip(t *testing.T) {
	seqs := []Seq{
		{Name: "contig_1", Seq: dna.MustPack("ACGTACGTACGT")},
		{Name: "contig_2", Seq: dna.MustPack(strings.Repeat("GATTACA", 40))},
		{Name: "x", Seq: dna.MustPack("A")},
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, seqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFasta(&buf, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(seqs) {
		t.Fatalf("got %d records, want %d", len(got), len(seqs))
	}
	for i := range seqs {
		if got[i].Name != seqs[i].Name || !got[i].Seq.Equal(seqs[i].Seq) {
			t.Errorf("record %d mismatch: %q vs %q", i, got[i].Name, seqs[i].Name)
		}
	}
}

func TestFastaMultiLineAndHeaderFields(t *testing.T) {
	in := ">chr1 description here\nACGT\nACGT\n\n>chr2\nTTTT\n"
	got, err := ReadFasta(strings.NewReader(in), ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "chr1" || got[0].Seq.String() != "ACGTACGT" || got[1].Seq.String() != "TTTT" {
		t.Errorf("parsed %+v", got)
	}
}

func TestFastaErrors(t *testing.T) {
	if _, err := ReadFasta(strings.NewReader("ACGT\n"), ParseOptions{}); err == nil {
		t.Error("content before header accepted")
	}
	if _, err := ReadFasta(strings.NewReader(">a\nACGN\n"), ParseOptions{}); err == nil {
		t.Error("N accepted without ReplaceN")
	}
	got, err := ReadFasta(strings.NewReader(">a\nACGN\n"), ParseOptions{ReplaceN: true})
	if err != nil || got[0].Seq.String() != "ACGA" {
		t.Errorf("ReplaceN failed: %v %+v", err, got)
	}
}

func TestFastqRoundTrip(t *testing.T) {
	seqs := []Seq{
		{Name: "read/1", Seq: dna.MustPack("ACGTACGTAC"), Qual: []byte("IIIIIIIIII")},
		{Name: "read/2", Seq: dna.MustPack("TTTT"), Qual: []byte("!!!!")},
	}
	var buf bytes.Buffer
	if err := WriteFastq(&buf, seqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFastq(&buf, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
	for i := range seqs {
		if got[i].Name != seqs[i].Name || !got[i].Seq.Equal(seqs[i].Seq) || !bytes.Equal(got[i].Qual, seqs[i].Qual) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestFastqErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":   "read\nACGT\n+\nIIII\n",
		"bad plus":     "@r\nACGT\nxIII\nIIII\n",
		"qual len":     "@r\nACGT\n+\nIII\n",
		"truncated":    "@r\nACGT\n+\n",
		"invalid base": "@r\nACXT\n+\nIIII\n",
	}
	for name, in := range cases {
		if _, err := ReadFastq(strings.NewReader(in), ParseOptions{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func randomSeqs(seed int64, n, minLen, maxLen int, withQual bool) []Seq {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Seq, n)
	for i := range out {
		l := minLen + rng.Intn(maxLen-minLen+1)
		s := Seq{Name: "read_" + strings.Repeat("x", rng.Intn(5)) + "_" + string(rune('a'+i%26)), Seq: dna.Random(rng, l)}
		if withQual {
			s.Qual = bytes.Repeat([]byte{byte('!' + rng.Intn(40))}, l)
		}
		out[i] = s
	}
	return out
}

func tempFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "test.seqdb"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestSeqDBRoundTrip(t *testing.T) {
	seqs := randomSeqs(1, 1000, 50, 150, true)
	f := tempFile(t)
	chunks, err := WriteSeqDB(f, seqs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 10 {
		t.Fatalf("chunks = %d, want 10", len(chunks))
	}
	db, err := OpenSeqDB(f)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRecords() != 1000 || db.NumChunks() != 10 {
		t.Fatalf("records=%d chunks=%d", db.NumRecords(), db.NumChunks())
	}
	idx := 0
	for c := 0; c < db.NumChunks(); c++ {
		recs, err := db.ReadChunk(c)
		if err != nil {
			t.Fatal(err)
		}
		info := db.Chunk(c)
		if int(info.First) != idx {
			t.Errorf("chunk %d First=%d, want %d", c, info.First, idx)
		}
		for _, r := range recs {
			want := seqs[idx]
			if r.Name != want.Name || !r.Seq.Equal(want.Seq) || !bytes.Equal(r.Qual, want.Qual) {
				t.Fatalf("record %d corrupted", idx)
			}
			idx++
		}
	}
	if idx != 1000 {
		t.Errorf("decoded %d records", idx)
	}
}

func TestSeqDBUnevenLastChunk(t *testing.T) {
	seqs := randomSeqs(2, 105, 30, 60, false)
	f := tempFile(t)
	chunks, err := WriteSeqDB(f, seqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 3 || chunks[2].Count != 5 {
		t.Fatalf("chunks = %+v", chunks)
	}
	db, err := OpenSeqDB(f)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := db.ReadChunk(2)
	if err != nil || len(recs) != 5 {
		t.Fatalf("last chunk: %v, %d recs", err, len(recs))
	}
}

func TestSeqDBConcurrentChunkReads(t *testing.T) {
	seqs := randomSeqs(3, 400, 80, 120, true)
	f := tempFile(t)
	if _, err := WriteSeqDB(f, seqs, 40); err != nil {
		t.Fatal(err)
	}
	db, err := OpenSeqDB(f)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, db.NumChunks())
	for c := 0; c < db.NumChunks(); c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			recs, err := db.ReadChunk(c)
			if err != nil {
				errs[c] = err
				return
			}
			first := int(db.Chunk(c).First)
			for i, r := range recs {
				if r.Name != seqs[first+i].Name {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Errorf("chunk %d: %v", c, err)
		}
	}
}

func TestSeqDBRejectsGarbage(t *testing.T) {
	f := tempFile(t)
	if _, err := f.Write([]byte("this is not a seqdb file at all, not even close......")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSeqDB(f); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSeqDBTruncatedFile(t *testing.T) {
	seqs := randomSeqs(4, 50, 50, 80, true)
	f := tempFile(t)
	if _, err := WriteSeqDB(f, seqs, 10); err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat()
	// Chop off the index.
	raw := make([]byte, st.Size()-40)
	if _, err := f.ReadAt(raw, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSeqDB(bytes.NewReader(raw)); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestSeqDBChunkOutOfRange(t *testing.T) {
	seqs := randomSeqs(5, 10, 50, 60, false)
	f := tempFile(t)
	if _, err := WriteSeqDB(f, seqs, 5); err != nil {
		t.Fatal(err)
	}
	db, err := OpenSeqDB(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ReadChunk(99); err == nil {
		t.Error("out-of-range chunk accepted")
	}
	if _, err := db.ReadChunk(-1); err == nil {
		t.Error("negative chunk accepted")
	}
}

func TestConvertFastqCompressionRatio(t *testing.T) {
	// §V-A: SeqDB files are typically 40-50% smaller than the FASTQ.
	seqs := randomSeqs(6, 2000, 100, 100, true)
	var fq bytes.Buffer
	if err := WriteFastq(&fq, seqs); err != nil {
		t.Fatal(err)
	}
	f := tempFile(t)
	n, ratio, err := ConvertFastq(bytes.NewReader(fq.Bytes()), f, 256, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Errorf("converted %d records, want 2000", n)
	}
	if ratio > 0.70 || ratio < 0.40 {
		t.Errorf("compression ratio = %.2f, want 0.40-0.70 (40-60%% smaller)", ratio)
	}
	// Verify losslessness.
	db, err := OpenSeqDB(f)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := db.ReadChunk(0)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Name != seqs[0].Name || !recs[0].Seq.Equal(seqs[0].Seq) || !bytes.Equal(recs[0].Qual, seqs[0].Qual) {
		t.Error("conversion not lossless")
	}
}

func TestSeqDBNoQualSmaller(t *testing.T) {
	withQ := randomSeqs(7, 500, 100, 100, true)
	noQ := make([]Seq, len(withQ))
	for i, s := range withQ {
		noQ[i] = Seq{Name: s.Name, Seq: s.Seq}
	}
	f1, f2 := tempFile(t), tempFile(t)
	if _, err := WriteSeqDB(f1, withQ, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSeqDB(f2, noQ, 100); err != nil {
		t.Fatal(err)
	}
	s1, _ := f1.Stat()
	s2, _ := f2.Stat()
	if s2.Size() >= s1.Size() {
		t.Errorf("qual-less file not smaller: %d vs %d", s2.Size(), s1.Size())
	}
}

func BenchmarkSeqDBReadChunk(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	seqs := make([]Seq, 4096)
	for i := range seqs {
		seqs[i] = Seq{Name: "r", Seq: dna.Random(rng, 100), Qual: bytes.Repeat([]byte{'I'}, 100)}
	}
	f, err := os.CreateTemp(b.TempDir(), "bench.seqdb")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if _, err := WriteSeqDB(f, seqs, 4096); err != nil {
		b.Fatal(err)
	}
	db, err := OpenSeqDB(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ReadChunk(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFastqParse(b *testing.B) {
	seqs := randomSeqs(9, 1000, 100, 100, true)
	var buf bytes.Buffer
	if err := WriteFastq(&buf, seqs); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadFastq(bytes.NewReader(raw), ParseOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
