package seqio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/lbl-repro/meraligner/internal/dna"
)

// SeqDB-like binary container.
//
// Layout:
//
//	header (32 bytes):
//	  magic "MSDB" | version u32 | numRecords u64 | numChunks u64 | indexOff u64
//	chunk payloads, back to back
//	chunk index at indexOff: numChunks x { off u64, size u64, first u64, count u64 }
//
// Each chunk payload is a sequence of records:
//
//	nameLen uvarint | name | seqLen uvarint | packed 2-bit bases | qualFlag u8 | [qual]
//
// The chunk index is what makes parallel I/O trivial: thread i reads chunks
// i, i+P, i+2P... with ReadAt and decodes independently (§V-A's Parallel
// HDF5 reading, minus the HDF5 container).

const (
	seqdbMagic   = "MSDB"
	seqdbVersion = 1
	headerSize   = 32
	indexEntry   = 32
)

// ChunkInfo describes one chunk of a SeqDB file.
type ChunkInfo struct {
	Off   uint64 // byte offset of the chunk payload
	Size  uint64 // payload size in bytes
	First uint64 // index of the first record in the chunk
	Count uint64 // records in the chunk
}

// WriteSeqDB streams seqs into w (an io.WriteSeeker, typically *os.File)
// with recordsPerChunk records per chunk. It returns the chunk index.
func WriteSeqDB(w io.WriteSeeker, seqs []Seq, recordsPerChunk int) ([]ChunkInfo, error) {
	if recordsPerChunk <= 0 {
		recordsPerChunk = 4096
	}
	// Placeholder header.
	if _, err := w.Write(make([]byte, headerSize)); err != nil {
		return nil, err
	}
	var chunks []ChunkInfo
	off := uint64(headerSize)
	var buf bytes.Buffer
	for first := 0; first < len(seqs); first += recordsPerChunk {
		count := min(recordsPerChunk, len(seqs)-first)
		buf.Reset()
		for _, s := range seqs[first : first+count] {
			encodeRecord(&buf, s)
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return nil, err
		}
		chunks = append(chunks, ChunkInfo{Off: off, Size: uint64(buf.Len()), First: uint64(first), Count: uint64(count)})
		off += uint64(buf.Len())
	}
	// Index.
	indexOff := off
	var idx bytes.Buffer
	for _, c := range chunks {
		var e [indexEntry]byte
		binary.LittleEndian.PutUint64(e[0:], c.Off)
		binary.LittleEndian.PutUint64(e[8:], c.Size)
		binary.LittleEndian.PutUint64(e[16:], c.First)
		binary.LittleEndian.PutUint64(e[24:], c.Count)
		idx.Write(e[:])
	}
	if _, err := w.Write(idx.Bytes()); err != nil {
		return nil, err
	}
	// Patch header.
	var hdr [headerSize]byte
	copy(hdr[0:4], seqdbMagic)
	binary.LittleEndian.PutUint32(hdr[4:], seqdbVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(seqs)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(chunks)))
	binary.LittleEndian.PutUint64(hdr[24:], indexOff)
	if _, err := w.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	if _, err := w.Seek(0, io.SeekEnd); err != nil {
		return nil, err
	}
	return chunks, nil
}

func encodeRecord(buf *bytes.Buffer, s Seq) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(s.Name)))
	buf.Write(tmp[:n])
	buf.WriteString(s.Name)
	n = binary.PutUvarint(tmp[:], uint64(s.Seq.Len()))
	buf.Write(tmp[:n])
	buf.Write(s.Seq.Bytes())
	if len(s.Qual) > 0 {
		buf.WriteByte(1)
		buf.Write(s.Qual)
	} else {
		buf.WriteByte(0)
	}
}

// DB is an opened SeqDB file supporting concurrent chunk reads.
type DB struct {
	r      io.ReaderAt
	nRecs  uint64
	chunks []ChunkInfo
}

// OpenSeqDB parses the header and chunk index. The ReaderAt stays owned by
// the caller (close the file yourself).
func OpenSeqDB(r io.ReaderAt) (*DB, error) {
	var hdr [headerSize]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("seqio: reading SeqDB header: %w", err)
	}
	if string(hdr[0:4]) != seqdbMagic {
		return nil, fmt.Errorf("seqio: bad SeqDB magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != seqdbVersion {
		return nil, fmt.Errorf("seqio: unsupported SeqDB version %d", v)
	}
	db := &DB{r: r, nRecs: binary.LittleEndian.Uint64(hdr[8:])}
	nChunks := binary.LittleEndian.Uint64(hdr[16:])
	indexOff := binary.LittleEndian.Uint64(hdr[24:])
	if nChunks > 1<<32 {
		return nil, fmt.Errorf("seqio: implausible chunk count %d", nChunks)
	}
	idx := make([]byte, nChunks*indexEntry)
	if _, err := r.ReadAt(idx, int64(indexOff)); err != nil {
		return nil, fmt.Errorf("seqio: reading SeqDB index: %w", err)
	}
	db.chunks = make([]ChunkInfo, nChunks)
	for i := range db.chunks {
		e := idx[i*indexEntry:]
		db.chunks[i] = ChunkInfo{
			Off:   binary.LittleEndian.Uint64(e[0:]),
			Size:  binary.LittleEndian.Uint64(e[8:]),
			First: binary.LittleEndian.Uint64(e[16:]),
			Count: binary.LittleEndian.Uint64(e[24:]),
		}
	}
	return db, nil
}

// NumRecords returns the total record count.
func (db *DB) NumRecords() int { return int(db.nRecs) }

// NumChunks returns the chunk count.
func (db *DB) NumChunks() int { return len(db.chunks) }

// Chunk returns the descriptor of chunk i.
func (db *DB) Chunk(i int) ChunkInfo { return db.chunks[i] }

// ReadChunk decodes chunk i. Safe for concurrent use (ReadAt-based).
func (db *DB) ReadChunk(i int) ([]Seq, error) {
	if i < 0 || i >= len(db.chunks) {
		return nil, fmt.Errorf("seqio: chunk %d out of range (%d chunks)", i, len(db.chunks))
	}
	c := db.chunks[i]
	raw := make([]byte, c.Size)
	if _, err := db.r.ReadAt(raw, int64(c.Off)); err != nil {
		return nil, fmt.Errorf("seqio: reading chunk %d: %w", i, err)
	}
	out := make([]Seq, 0, c.Count)
	for pos := 0; pos < len(raw); {
		s, next, err := decodeRecord(raw, pos)
		if err != nil {
			return nil, fmt.Errorf("seqio: chunk %d: %w", i, err)
		}
		out = append(out, s)
		pos = next
	}
	if uint64(len(out)) != c.Count {
		return nil, fmt.Errorf("seqio: chunk %d decoded %d records, index says %d", i, len(out), c.Count)
	}
	return out, nil
}

func decodeRecord(raw []byte, pos int) (Seq, int, error) {
	nameLen, n := binary.Uvarint(raw[pos:])
	if n <= 0 {
		return Seq{}, 0, fmt.Errorf("corrupt name length at %d", pos)
	}
	pos += n
	if pos+int(nameLen) > len(raw) {
		return Seq{}, 0, fmt.Errorf("truncated name at %d", pos)
	}
	name := string(raw[pos : pos+int(nameLen)])
	pos += int(nameLen)
	seqLen, n := binary.Uvarint(raw[pos:])
	if n <= 0 {
		return Seq{}, 0, fmt.Errorf("corrupt sequence length at %d", pos)
	}
	pos += n
	packedLen := (int(seqLen) + 3) / 4
	if pos+packedLen+1 > len(raw) {
		return Seq{}, 0, fmt.Errorf("truncated sequence at %d", pos)
	}
	p := packedFromBytes(raw[pos:pos+packedLen], int(seqLen))
	pos += packedLen
	qualFlag := raw[pos]
	pos++
	var qual []byte
	if qualFlag == 1 {
		if pos+int(seqLen) > len(raw) {
			return Seq{}, 0, fmt.Errorf("truncated quality at %d", pos)
		}
		qual = append([]byte(nil), raw[pos:pos+int(seqLen)]...)
		pos += int(seqLen)
	} else if qualFlag != 0 {
		return Seq{}, 0, fmt.Errorf("corrupt quality flag %d at %d", qualFlag, pos-1)
	}
	return Seq{Name: name, Seq: p, Qual: qual}, pos, nil
}

// packedFromBytes reinterprets raw packed bytes as a dna.Packed of n bases.
func packedFromBytes(raw []byte, n int) dna.Packed {
	codes := make([]byte, n)
	for i := 0; i < n; i++ {
		codes[i] = (raw[i>>2] >> uint((i&3)<<1)) & 3
	}
	return dna.FromCodes(codes)
}

// ConvertFastq converts a FASTQ stream into a SeqDB file in one pass
// (lossless, per §V-A), returning record count and the compression ratio
// seqdbBytes/fastqBytes.
func ConvertFastq(r io.Reader, w io.WriteSeeker, recordsPerChunk int, opt ParseOptions) (int, float64, error) {
	counting := &countingReader{r: r}
	seqs, err := ReadFastq(counting, opt)
	if err != nil {
		return 0, 0, err
	}
	chunks, err := WriteSeqDB(w, seqs, recordsPerChunk)
	if err != nil {
		return 0, 0, err
	}
	var out uint64 = headerSize
	for _, c := range chunks {
		out += c.Size + indexEntry
	}
	ratio := float64(out) / float64(counting.n)
	return len(seqs), ratio, nil
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
