package seqio

import (
	"bufio"
	"fmt"
	"io"
)

// SAM output for alignments. merAligner's own output feeds the Meraculous
// scaffolder directly, but a SAM view is what downstream tools consume; the
// writer emits the minimal faithful subset: @HD/@SQ/@PG headers and one
// alignment line per record with flags for strand/unmapped/secondary.

// SAMRecord is one alignment row, already expressed in SAM terms.
type SAMRecord struct {
	QName string
	Flag  int
	RName string // "*" when unmapped
	Pos   int    // 1-based leftmost target position; 0 when unmapped
	MapQ  int
	Cigar string // "*" when unmapped
	Seq   string // read bases on the aligned strand
	Qual  string // "*" when absent
	TagAS int    // alignment score (AS:i) — negative omits the tag
	TagNM int    // edit distance (NM:i) — negative omits the tag
}

// SAM flag bits used here.
const (
	FlagUnmapped  = 0x4
	FlagReverse   = 0x10
	FlagSecondary = 0x100
)

// SAMWriter emits a SAM stream.
type SAMWriter struct {
	w   *bufio.Writer
	err error
}

// SAMRef names one reference sequence of a SAM header without requiring its
// bases — all a scatter/gather router knows about the targets its remote
// shards hold. The @SQ line it produces is byte-identical to the one a
// local Seq with the same name and length produces.
type SAMRef struct {
	Name string
	Len  int
}

// NewSAMWriter writes the header for the given reference sequences and the
// program line. Sequence order defines the @SQ order.
func NewSAMWriter(w io.Writer, refs []Seq, program, version string) (*SAMWriter, error) {
	rs := make([]SAMRef, len(refs))
	for i, r := range refs {
		rs[i] = SAMRef{Name: r.Name, Len: r.Seq.Len()}
	}
	return NewSAMWriterRefs(w, rs, program, version)
}

// NewSAMWriterRefs is NewSAMWriter from reference names and lengths alone,
// plus optional @CO comment lines appended after @PG (one per comment) —
// how a degraded scatter/gather response annotates itself in-band.
func NewSAMWriterRefs(w io.Writer, refs []SAMRef, program, version string, comments ...string) (*SAMWriter, error) {
	sw := &SAMWriter{w: bufio.NewWriter(w)}
	fmt.Fprintf(sw.w, "@HD\tVN:1.6\tSO:unknown\n")
	for _, r := range refs {
		fmt.Fprintf(sw.w, "@SQ\tSN:%s\tLN:%d\n", r.Name, r.Len)
	}
	fmt.Fprintf(sw.w, "@PG\tID:%s\tPN:%s\tVN:%s\n", program, program, version)
	for _, c := range comments {
		fmt.Fprintf(sw.w, "@CO\t%s\n", c)
	}
	return sw, sw.w.Flush()
}

// Write emits one record.
func (sw *SAMWriter) Write(r SAMRecord) error {
	if sw.err != nil {
		return sw.err
	}
	rname, cigar, seq, qual := r.RName, r.Cigar, r.Seq, r.Qual
	if r.Flag&FlagUnmapped != 0 {
		rname, cigar = "*", "*"
	}
	if rname == "" {
		rname = "*"
	}
	if cigar == "" {
		cigar = "*"
	}
	if seq == "" {
		seq = "*"
	}
	if qual == "" {
		qual = "*"
	}
	_, sw.err = fmt.Fprintf(sw.w, "%s\t%d\t%s\t%d\t%d\t%s\t*\t0\t0\t%s\t%s",
		r.QName, r.Flag, rname, r.Pos, r.MapQ, cigar, seq, qual)
	if sw.err != nil {
		return sw.err
	}
	if r.TagAS >= 0 {
		if _, sw.err = fmt.Fprintf(sw.w, "\tAS:i:%d", r.TagAS); sw.err != nil {
			return sw.err
		}
	}
	if r.TagNM >= 0 {
		if _, sw.err = fmt.Fprintf(sw.w, "\tNM:i:%d", r.TagNM); sw.err != nil {
			return sw.err
		}
	}
	_, sw.err = sw.w.WriteString("\n")
	return sw.err
}

// Flush flushes buffered output.
func (sw *SAMWriter) Flush() error {
	if sw.err != nil {
		return sw.err
	}
	return sw.w.Flush()
}
