// Package seqio implements sequence I/O: FASTA and FASTQ text formats and a
// chunked binary read container in the spirit of SeqDB (§V-A) — a lossless
// FASTQ conversion with 2-bit packed bases that is 40-50% smaller than the
// text and, crucially, supports scalable parallel reading: the file carries
// a chunk index so every simulated processor can read its own byte range
// with ReadAt, with no text-parsing serialization.
package seqio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"

	"github.com/lbl-repro/meraligner/internal/dna"
)

// Seq is one named sequence with optional per-base quality.
type Seq struct {
	Name string
	Seq  dna.Packed
	Qual []byte // empty for FASTA records
}

// ParseOptions controls textual parsing.
type ParseOptions struct {
	// ReplaceN substitutes ambiguous 'N'/'n' bases with 'A' instead of
	// failing. Real pipelines drop or patch Ns before alignment.
	ReplaceN bool
}

func sanitize(seq []byte, opt ParseOptions) ([]byte, error) {
	if !opt.ReplaceN {
		return seq, nil
	}
	out := seq
	copied := false
	for i, b := range seq {
		if b == 'N' || b == 'n' {
			if !copied {
				out = append([]byte(nil), seq...)
				copied = true
			}
			out[i] = 'A'
		}
	}
	return out, nil
}

// ReadFasta parses FASTA records (multi-line sequences allowed).
func ReadFasta(r io.Reader, opt ParseOptions) ([]Seq, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var out []Seq
	var name string
	var body bytes.Buffer
	flush := func() error {
		if name == "" {
			return nil
		}
		raw, err := sanitize(body.Bytes(), opt)
		if err != nil {
			return err
		}
		p, err := dna.PackBytes(raw)
		if err != nil {
			return fmt.Errorf("seqio: record %q: %w", name, err)
		}
		out = append(out, Seq{Name: name, Seq: p})
		body.Reset()
		return nil
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' {
			if err := flush(); err != nil {
				return nil, err
			}
			fields := strings.Fields(string(line[1:]))
			if len(fields) == 0 {
				return nil, fmt.Errorf("seqio: empty FASTA header")
			}
			name = fields[0]
			continue
		}
		if name == "" {
			return nil, fmt.Errorf("seqio: FASTA content before first header")
		}
		body.Write(line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFasta writes records with lines wrapped at 80 columns.
func WriteFasta(w io.Writer, seqs []Seq) error {
	bw := bufio.NewWriter(w)
	for _, s := range seqs {
		if _, err := fmt.Fprintf(bw, ">%s\n", s.Name); err != nil {
			return err
		}
		text := s.Seq.String()
		for len(text) > 0 {
			n := min(80, len(text))
			if _, err := bw.WriteString(text[:n]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
			text = text[n:]
		}
	}
	return bw.Flush()
}

// ReadFastq parses 4-line FASTQ records.
func ReadFastq(r io.Reader, opt ParseOptions) ([]Seq, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var out []Seq
	line := 0
	var cur Seq
	for sc.Scan() {
		raw := sc.Bytes()
		switch line % 4 {
		case 0:
			if len(raw) == 0 || raw[0] != '@' {
				return nil, fmt.Errorf("seqio: FASTQ line %d: expected @header, got %q", line+1, raw)
			}
			fields := strings.Fields(string(raw[1:]))
			if len(fields) == 0 {
				return nil, fmt.Errorf("seqio: FASTQ line %d: empty read name", line+1)
			}
			cur = Seq{Name: fields[0]}
		case 1:
			san, err := sanitize(raw, opt)
			if err != nil {
				return nil, err
			}
			p, err := dna.PackBytes(san)
			if err != nil {
				return nil, fmt.Errorf("seqio: FASTQ record %q: %w", cur.Name, err)
			}
			cur.Seq = p
		case 2:
			if len(raw) == 0 || raw[0] != '+' {
				return nil, fmt.Errorf("seqio: FASTQ line %d: expected +, got %q", line+1, raw)
			}
		case 3:
			if len(raw) != cur.Seq.Len() {
				return nil, fmt.Errorf("seqio: FASTQ record %q: quality length %d != sequence length %d",
					cur.Name, len(raw), cur.Seq.Len())
			}
			cur.Qual = append([]byte(nil), raw...)
			out = append(out, cur)
		}
		line++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if line%4 != 0 {
		return nil, fmt.Errorf("seqio: truncated FASTQ: %d trailing lines", line%4)
	}
	return out, nil
}

// WriteFastq writes 4-line FASTQ records; records without quality get 'I'.
func WriteFastq(w io.Writer, seqs []Seq) error {
	bw := bufio.NewWriter(w)
	for _, s := range seqs {
		qual := s.Qual
		if len(qual) == 0 {
			qual = bytes.Repeat([]byte{'I'}, s.Seq.Len())
		}
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", s.Name, s.Seq.String(), qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}
