package seqio

import (
	"bytes"
	"strings"
	"testing"

	"github.com/lbl-repro/meraligner/internal/dna"
)

func TestSAMHeaderAndRecords(t *testing.T) {
	refs := []Seq{
		{Name: "contig_0", Seq: dna.MustPack("ACGTACGTAC")},
		{Name: "contig_1", Seq: dna.MustPack("TTTT")},
	}
	var buf bytes.Buffer
	sw, err := NewSAMWriter(&buf, refs, "meraligner", "1.0")
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Write(SAMRecord{
		QName: "r1", Flag: 0, RName: "contig_0", Pos: 3, MapQ: 60,
		Cigar: "4M", Seq: "GTAC", Qual: "IIII", TagAS: 4, TagNM: 0,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Write(SAMRecord{
		QName: "r2", Flag: FlagUnmapped, Seq: "AAAA", TagAS: -1, TagNM: -1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
	for _, want := range []string{
		"@HD\tVN:1.6",
		"@SQ\tSN:contig_0\tLN:10",
		"@SQ\tSN:contig_1\tLN:4",
		"@PG\tID:meraligner",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "r1\t0\tcontig_0\t3\t60\t4M\t*\t0\t0\tGTAC\tIIII\tAS:i:4\tNM:i:0") {
		t.Errorf("bad aligned record:\n%s", out)
	}
	// Unmapped record: RName and Cigar must be *.
	if !strings.Contains(out, "r2\t4\t*\t0\t0\t*\t*\t0\t0\tAAAA\t*") {
		t.Errorf("bad unmapped record:\n%s", out)
	}
}

func TestSAMFieldCount(t *testing.T) {
	refs := []Seq{{Name: "c", Seq: dna.MustPack("ACGT")}}
	var buf bytes.Buffer
	sw, err := NewSAMWriter(&buf, refs, "p", "v")
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Write(SAMRecord{QName: "q", RName: "c", Pos: 1, Cigar: "4M", Seq: "ACGT", TagAS: -1, TagNM: -1}); err != nil {
		t.Fatal(err)
	}
	sw.Flush()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := lines[len(lines)-1]
	if got := len(strings.Split(last, "\t")); got != 11 {
		t.Errorf("alignment line has %d fields, want 11: %q", got, last)
	}
}
