package seqio

import (
	"bytes"
	"strings"
	"testing"

	"github.com/lbl-repro/meraligner/internal/dna"
)

// FuzzReadFastq must never panic and must round-trip whatever it accepts.
func FuzzReadFastq(f *testing.F) {
	f.Add("@r1\nACGT\n+\nIIII\n")
	f.Add("@r1 desc\nacgt\n+\n!!!!\n@r2\nTT\n+\nII\n")
	f.Add("@\nN\n+\nI\n")
	f.Add("")
	f.Add("@r\nACGT\n+")
	f.Fuzz(func(t *testing.T, in string) {
		seqs, err := ReadFastq(strings.NewReader(in), ParseOptions{ReplaceN: true})
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFastq(&buf, seqs); err != nil {
			t.Fatalf("WriteFastq failed on accepted input: %v", err)
		}
		again, err := ReadFastq(&buf, ParseOptions{})
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if len(again) != len(seqs) {
			t.Fatalf("round-trip changed record count: %d vs %d", len(again), len(seqs))
		}
		for i := range seqs {
			if !again[i].Seq.Equal(seqs[i].Seq) {
				t.Fatalf("round-trip changed record %d", i)
			}
		}
	})
}

// FuzzReadFasta must never panic; accepted inputs round-trip.
func FuzzReadFasta(f *testing.F) {
	f.Add(">a\nACGT\n")
	f.Add(">a desc\nAC\nGT\n>b\nTTTT\n")
	f.Add(">\nACGT\n")
	f.Add("ACGT\n")
	f.Fuzz(func(t *testing.T, in string) {
		seqs, err := ReadFasta(strings.NewReader(in), ParseOptions{ReplaceN: true})
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFasta(&buf, seqs); err != nil {
			t.Fatalf("WriteFasta failed on accepted input: %v", err)
		}
	})
}

// FuzzDecodeRecord: arbitrary bytes must never panic the SeqDB record
// decoder, only return errors.
func FuzzDecodeRecord(f *testing.F) {
	// A valid record as seed: name "r", 4 bases, no qual.
	var buf bytes.Buffer
	encodeRecord(&buf, Seq{Name: "r", Seq: dna.MustPack("ACGT")})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, raw []byte) {
		pos := 0
		for pos < len(raw) {
			s, next, err := decodeRecord(raw, pos)
			if err != nil {
				return
			}
			if next <= pos {
				t.Fatal("decoder did not advance")
			}
			if s.Seq.Len() < 0 {
				t.Fatal("negative length")
			}
			pos = next
		}
	})
}
