package dht

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"unsafe"

	"github.com/lbl-repro/meraligner/internal/kmer"
)

// This file serializes the sealed index. The sealed form (flat.go) is
// already a serialization-ready memory image — per-shard slot arrays of
// fixed-size flatEntry structs over contiguous Loc arenas — so WriteTo dumps
// those arrays verbatim and OpenMapped reconstructs a sealed Sharded whose
// slices alias the snapshot bytes directly: zero copies, zero rehashing,
// and N processes mapping one snapshot share a single physical copy of the
// table through the page cache.
//
// The blob layout (the "DHTS" section payload of a .merx file; every
// integer little-endian, every array 64-byte aligned relative to the blob
// start) is specified field by field in docs/INDEX_FORMAT.md:
//
//	header (64 B): version, K, shards, maxLocList, numFragments,
//	               singleCopyOff, dirOff
//	singleCopy:    numFragments x i32
//	directory:     shards x 48 B {shift, slotsLen, slotsOff, locsLen, locsOff}
//	per shard:     slots = slotsLen x flatEntry (32 B), locs = locsLen x Loc (12 B)
//
// Raw struct dumps tie the format to the compiled struct layout, so the
// wire sizes are pinned by the exported *WireBytes constants and asserted
// at compile time below; a build whose layout differs cannot read or write
// snapshots silently (merx.Layout carries the fingerprint in the header).

// Wire sizes of the raw structs in a snapshot, asserted at compile time to
// match the in-memory layout this build serializes.
const (
	// FlatEntryWireBytes is the size of one sealed slot on disk: seed lo/hi
	// u64, arena offset i32, stored count i32, total count i32, 4 B padding.
	FlatEntryWireBytes = 32
	// LocWireBytes is the size of one location on disk: fragment i32,
	// offset i32, strand u8, 3 B padding.
	LocWireBytes = 12
)

// Compile-time layout assertions: index out of range if a struct size ever
// drifts from its documented wire size.
var (
	_ = [1]struct{}{}[unsafe.Sizeof(flatEntry{})-FlatEntryWireBytes]
	_ = [1]struct{}{}[unsafe.Sizeof(Loc{})-LocWireBytes]
)

const (
	snapVersion    = 1
	snapHeaderSize = 64
	snapDirEntry   = 48
	snapAlign      = 64
	maxSnapShards  = 1 << 22 // sanity bound on the shard count of a snapshot
)

// rawBytes views a slice's backing array as bytes (struct dumps are only
// meaningful on the little-endian layouts the snapshot format requires).
func rawBytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0])))
}

// viewSlice reinterprets count elements of T over b, verifying bounds and
// the natural alignment of T.
func viewSlice[T any](b []byte, count int) ([]T, error) {
	var zero T
	size, al := int(unsafe.Sizeof(zero)), uintptr(unsafe.Alignof(zero))
	if count == 0 {
		return nil, nil
	}
	if count < 0 || len(b)/size < count {
		return nil, fmt.Errorf("array of %d x %d bytes exceeds the %d available", count, size, len(b))
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%al != 0 {
		return nil, fmt.Errorf("array base misaligned for %d-byte alignment", al)
	}
	return unsafe.Slice((*T)(p), count), nil
}

func alignUp(x int64, a int64) int64 { return (x + a - 1) &^ (a - 1) }

// WriteTo serializes the sealed index as one self-contained blob (the
// "DHTS" section of a .merx snapshot). The index must be sealed: only the
// flat compact form is serialized. Offsets within the blob are relative to
// its start; the container is responsible for placing the blob at a
// 64-byte-aligned file offset so OpenMapped's zero-copy views stay aligned.
func (sx *Sharded) WriteTo(w io.Writer) (int64, error) {
	if !sx.sealed.Load() {
		return 0, fmt.Errorf("dht: WriteTo on an unsealed index")
	}
	shards := len(sx.flat)

	// Lay out the blob: header, singleCopy flags, directory, then each
	// shard's slot and location arrays, all 64-byte aligned.
	singleCopyOff := int64(snapHeaderSize)
	dirOff := alignUp(singleCopyOff+int64(len(sx.singleCopy))*4, snapAlign)
	off := alignUp(dirOff+int64(shards)*snapDirEntry, snapAlign)
	dir := make([]byte, shards*snapDirEntry)
	for i := range sx.flat {
		fs := &sx.flat[i]
		slotsOff := off
		off = alignUp(off+int64(len(fs.slots))*FlatEntryWireBytes, snapAlign)
		locsOff := off
		off = alignUp(off+int64(len(fs.locs))*LocWireBytes, snapAlign)
		e := dir[i*snapDirEntry:]
		binary.LittleEndian.PutUint32(e[0:], uint32(fs.shift))
		binary.LittleEndian.PutUint64(e[8:], uint64(len(fs.slots)))
		binary.LittleEndian.PutUint64(e[16:], uint64(slotsOff))
		binary.LittleEndian.PutUint64(e[24:], uint64(len(fs.locs)))
		binary.LittleEndian.PutUint64(e[32:], uint64(locsOff))
	}

	var hdr [snapHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], snapVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(sx.cfg.K))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(shards))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(sx.cfg.MaxLocList))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(sx.numFragments))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(singleCopyOff))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(dirOff))

	cw := &countWriter{w: w}
	if _, err := cw.Write(hdr[:]); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write(rawBytes(sx.singleCopy)); err != nil {
		return cw.n, err
	}
	if err := cw.padTo(dirOff); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write(dir); err != nil {
		return cw.n, err
	}
	for i := range sx.flat {
		fs := &sx.flat[i]
		e := dir[i*snapDirEntry:]
		if err := cw.padTo(int64(binary.LittleEndian.Uint64(e[16:]))); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(rawBytes(fs.slots)); err != nil {
			return cw.n, err
		}
		if err := cw.padTo(int64(binary.LittleEndian.Uint64(e[32:]))); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(rawBytes(fs.locs)); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// countWriter tracks the blob offset and pads to absolute positions.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (c *countWriter) padTo(off int64) error {
	if off < c.n {
		return fmt.Errorf("dht: snapshot layout error: writing at %d past target offset %d", c.n, off)
	}
	if off == c.n {
		return nil
	}
	_, err := c.Write(make([]byte, off-c.n))
	return err
}

// OpenMapped reconstructs a sealed index over a snapshot blob produced by
// WriteTo, without copying: the slot arrays, location arenas, and
// single-copy flags alias blob directly, so blob must stay valid (and
// unmodified — it is typically a read-only mmap) for the index's lifetime.
// Every offset and length is bounds-checked before the aliasing views are
// taken; a damaged blob yields an error, never a panic. Checksum
// verification is the container's job (package merx) — by the time a .merx
// section reaches OpenMapped its bytes are already validated, so failures
// here mean format drift rather than bit rot.
func OpenMapped(blob []byte) (*Sharded, error) {
	if len(blob) < snapHeaderSize {
		return nil, fmt.Errorf("dht: snapshot blob of %d bytes is smaller than the %d-byte header", len(blob), snapHeaderSize)
	}
	if v := binary.LittleEndian.Uint32(blob[0:]); v != snapVersion {
		return nil, fmt.Errorf("dht: snapshot blob version %d (this build reads version %d)", v, snapVersion)
	}
	k := int(binary.LittleEndian.Uint32(blob[4:]))
	shards := int(binary.LittleEndian.Uint32(blob[8:]))
	maxLocList := int(binary.LittleEndian.Uint32(blob[12:]))
	numFragments := int64(binary.LittleEndian.Uint64(blob[16:]))
	singleCopyOff := int64(binary.LittleEndian.Uint64(blob[24:]))
	dirOff := int64(binary.LittleEndian.Uint64(blob[32:]))
	if k <= 0 || k > kmer.MaxK {
		return nil, fmt.Errorf("dht: snapshot seed length %d out of range 1..%d", k, kmer.MaxK)
	}
	if shards <= 0 || shards > maxSnapShards {
		return nil, fmt.Errorf("dht: snapshot shard count %d out of range", shards)
	}
	if numFragments < 0 || numFragments > int64(len(blob)) {
		return nil, fmt.Errorf("dht: snapshot fragment count %d out of range", numFragments)
	}
	singleCopy, err := viewAt[int32](blob, singleCopyOff, int(numFragments))
	if err != nil {
		return nil, fmt.Errorf("dht: snapshot single-copy flags: %w", err)
	}
	dirBytes, err := sliceAt(blob, dirOff, int64(shards)*snapDirEntry)
	if err != nil {
		return nil, fmt.Errorf("dht: snapshot shard directory: %w", err)
	}

	sx := &Sharded{
		cfg:          ShardedConfig{K: k, MaxLocList: maxLocList, Shards: shards},
		flat:         make([]flatShard, shards),
		singleCopy:   singleCopy,
		numFragments: int(numFragments),
	}
	for i := 0; i < shards; i++ {
		e := dirBytes[i*snapDirEntry:]
		shift := uint(binary.LittleEndian.Uint32(e[0:]))
		slotsLen := int64(binary.LittleEndian.Uint64(e[8:]))
		slotsOff := int64(binary.LittleEndian.Uint64(e[16:]))
		locsLen := int64(binary.LittleEndian.Uint64(e[24:]))
		locsOff := int64(binary.LittleEndian.Uint64(e[32:]))
		if slotsLen <= 0 || slotsLen&(slotsLen-1) != 0 {
			return nil, fmt.Errorf("dht: snapshot shard %d: slot count %d is not a power of two", i, slotsLen)
		}
		if want := uint(64 - bits.Len64(uint64(slotsLen)-1)); shift != want {
			return nil, fmt.Errorf("dht: snapshot shard %d: shift %d does not match %d slots", i, shift, slotsLen)
		}
		slots, err := viewAt[flatEntry](blob, slotsOff, int(slotsLen))
		if err != nil {
			return nil, fmt.Errorf("dht: snapshot shard %d slots: %w", i, err)
		}
		locs, err := viewAt[Loc](blob, locsOff, int(locsLen))
		if err != nil {
			return nil, fmt.Errorf("dht: snapshot shard %d locations: %w", i, err)
		}
		// Every slot's location range must stay inside this shard's arena so
		// sealed lookups can slice it unchecked — and at least one slot must
		// be empty, because lookup's linear probe terminates only on an
		// empty slot or a seed match (buildFlat guarantees load <= 0.75; a
		// crafted full table would make lookups of absent seeds spin
		// forever).
		occupied := int64(0)
		for j := range slots {
			s := &slots[j]
			if s.n == 0 {
				continue
			}
			occupied++
			if s.off < 0 || s.n < 0 || int64(s.off)+int64(s.n) > locsLen {
				return nil, fmt.Errorf("dht: snapshot shard %d slot %d: location range [%d,%d) outside arena of %d", i, j, s.off, s.off+s.n, locsLen)
			}
		}
		if occupied == slotsLen {
			return nil, fmt.Errorf("dht: snapshot shard %d: table has no empty slot (%d of %d occupied)", i, occupied, slotsLen)
		}
		// Fragment IDs feed array indexing downstream (SingleCopy, the
		// aligner's fragment->target resolution), so a crafted arena must
		// not smuggle one past the open-time check.
		for j := range locs {
			if f := int64(locs[j].Frag); f < 0 || f >= numFragments {
				return nil, fmt.Errorf("dht: snapshot shard %d location %d: fragment %d outside 0..%d", i, j, locs[j].Frag, numFragments-1)
			}
		}
		sx.flat[i] = flatShard{shift: shift, slots: slots, locs: locs}
	}
	sx.sealed.Store(true)
	return sx, nil
}

// sliceAt bounds-checks blob[off:off+n].
func sliceAt(blob []byte, off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off > int64(len(blob)) || n > int64(len(blob))-off {
		return nil, fmt.Errorf("range [%d,%d) outside blob of %d bytes", off, off+n, len(blob))
	}
	return blob[off : off+n], nil
}

// viewAt takes a bounds- and alignment-checked struct view at off.
func viewAt[T any](blob []byte, off int64, count int) ([]T, error) {
	var zero T
	b, err := sliceAt(blob, off, int64(count)*int64(unsafe.Sizeof(zero)))
	if err != nil {
		return nil, err
	}
	return viewSlice[T](b, count)
}
