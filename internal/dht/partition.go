package dht

import (
	"fmt"

	"github.com/lbl-repro/meraligner/internal/kmer"
)

// This file partitions a sealed index across owner nodes by seed hash — the
// network realization of the paper's distributed hash table. The unit of
// distribution is the internal shard: ShardOf already buckets seeds by
// s.Hash() % Shards, so assigning whole internal shards to owners keeps the
// owner computable from the seed alone (no directory service) while reusing
// the sealed flat tables verbatim. Owner o of count nodes holds exactly the
// internal shards with shard % count == o.
//
// The assignment is part of the on-disk contract: seed-shard snapshots are
// saved under one mapping and queried under another process's idea of the
// same mapping, so ShardOwner/OwnerOf are pinned by golden tests in
// partition_test.go — a refactor that changes them silently re-partitions
// every saved fleet.

// ShardOwner returns the owner of internal shard id among count owners.
func ShardOwner(shard, count int) int { return shard % count }

// OwnerOf returns the owner node of a seed, for a table with the given
// internal shard count partitioned across count owners. It is the
// query-side mirror of ShardOf followed by ShardOwner.
func OwnerOf(s kmer.Kmer, shards, count int) int {
	return ShardOwner(int(s.Hash()%uint64(shards)), count)
}

// emptyFlatShard is the sealed shape of an internal shard with no entries:
// the minimum-size all-empty slot array (every probe misses on the first
// slot) and no location arena. Partition substitutes it for unowned shards;
// the snapshot writer and mapped loader both handle it like any other shard.
func emptyFlatShard() flatShard {
	return flatShard{shift: 64 - minFlatBits, slots: make([]flatEntry, 1<<minFlatBits)}
}

// Partition carves owner id's slice out of a sealed index: a new sealed
// *Sharded with the same configuration whose owned internal shards alias
// the receiver's flat tables (zero copy) and whose unowned shards are
// empty. Lookups for owned seeds are bit-identical to the full table;
// lookups for unowned seeds miss. The single-copy flags are global
// reference properties (§IV-A), not seed-local ones, so every partition
// carries the full flag array and the exact-match fast path keeps working
// at whichever node evaluates it.
func (sx *Sharded) Partition(id, count int) (*Sharded, error) {
	if !sx.sealed.Load() {
		return nil, fmt.Errorf("dht: Partition on an unsealed index")
	}
	if count <= 0 || id < 0 || id >= count {
		return nil, fmt.Errorf("dht: partition %d/%d out of range", id, count)
	}
	p := &Sharded{
		cfg:          sx.cfg,
		singleCopy:   sx.singleCopy,
		numFragments: sx.numFragments,
		flat:         make([]flatShard, len(sx.flat)),
	}
	for s := range sx.flat {
		if ShardOwner(s, count) == id {
			p.flat[s] = sx.flat[s]
		} else {
			p.flat[s] = emptyFlatShard()
		}
	}
	p.sealed.Store(true)
	return p, nil
}

// PartitionFingerprint digests the partition-relevant shape of the FULL
// sealed table for a given owner count: seed length, internal shard count,
// owner count, fragment count, and each internal shard's slot-array and
// arena sizes. Two seed-shard snapshots interoperate only if their
// fingerprints match — it is computed once at save time from the full
// table and stored in every partition's DHTP section, so a query node can
// reject a fleet mixing shards of different builds (a partition cannot
// recompute the full-table digest from its own slice).
func (sx *Sharded) PartitionFingerprint(count int) (uint64, error) {
	if !sx.sealed.Load() {
		return 0, fmt.Errorf("dht: PartitionFingerprint on an unsealed index")
	}
	if count <= 0 {
		return 0, fmt.Errorf("dht: partition count %d out of range", count)
	}
	// FNV-1a over the shape words; the offset basis and prime are the
	// standard 64-bit FNV constants.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(1) // fingerprint scheme version
	mix(uint64(sx.cfg.K))
	mix(uint64(sx.cfg.Shards))
	mix(uint64(count))
	mix(uint64(sx.numFragments))
	for s := range sx.flat {
		mix(uint64(len(sx.flat[s].slots)))
		mix(uint64(len(sx.flat[s].locs)))
	}
	return h, nil
}
