package dht

import (
	"testing"

	"github.com/lbl-repro/meraligner/internal/kmer"
)

// TestOwnerGolden pins the seed→owner mapping with precomputed values: the
// djb2 hash, the internal shard for a 64-shard table, and the owner for
// fleets of 2, 3, and 4 nodes. These numbers are part of the on-disk
// contract — seed-shard snapshots saved under this mapping are queried by
// other processes computing the same mapping — so if this test fails, the
// change silently re-partitions every saved fleet: bump the snapshot
// format instead of updating the goldens.
func TestOwnerGolden(t *testing.T) {
	cases := []struct {
		seed                   string
		hash                   uint64
		shard64                int
		owner2, owner3, owner4 int
	}{
		{"ACGTACGTACGTACGTACGTA", 219215706704965625, 57, 1, 0, 1},
		{"TTTTTTTTTTTTTTTTTTTTT", 11365062924789256099, 35, 1, 2, 3},
		{"AAAAAAAAAAAAAAAAAAAAA", 2470524917658648325, 5, 1, 2, 1},
		{"GATTACAGATTACAGATTACA", 6610038376152527239, 7, 1, 1, 3},
		{"CCCCGGGGCCCCGGGGCCCCG", 7025357428163531450, 58, 0, 1, 2},
		{"ACACACACACACACACACACA", 1151827641630021849, 25, 1, 1, 1},
		{"TGCATGCATGCATGCATGCAT", 13616372135742938799, 47, 1, 2, 3},
		{"AGGTTGGAACCTTGGAACCTT", 17226463517800597614, 46, 0, 1, 2},
	}
	for _, c := range cases {
		km := kmer.MustFromString(c.seed)
		if h := km.Hash(); h != c.hash {
			t.Errorf("%s: Hash() = %d, golden %d", c.seed, h, c.hash)
		}
		if s := int(km.Hash() % 64); s != c.shard64 {
			t.Errorf("%s: shard = %d, golden %d", c.seed, s, c.shard64)
		}
		for _, oc := range []struct{ count, want int }{{2, c.owner2}, {3, c.owner3}, {4, c.owner4}} {
			if got := OwnerOf(km, 64, oc.count); got != oc.want {
				t.Errorf("%s: OwnerOf(shards=64, count=%d) = %d, golden %d", c.seed, oc.count, got, oc.want)
			}
			if got := ShardOwner(c.shard64, oc.count); got != oc.want {
				t.Errorf("%s: ShardOwner(%d, %d) = %d, golden %d", c.seed, c.shard64, oc.count, got, oc.want)
			}
		}
	}
}

// TestOwnerSkewBound checks the hash distributes seeds evenly enough across
// owners that no node carries a pathological share: over a large random
// seed set, every owner's load stays within 20% of the even split.
func TestOwnerSkewBound(t *testing.T) {
	es := randomEntries(7, 32, 400, 8000, 21)
	const shards, owners = 64, 4
	counts := make([]int, owners)
	for _, e := range es {
		counts[OwnerOf(e.Seed, shards, owners)]++
	}
	even := float64(len(es)) / owners
	for o, n := range counts {
		if ratio := float64(n) / even; ratio < 0.8 || ratio > 1.2 {
			t.Errorf("owner %d holds %d of %d seeds (%.2fx the even share)", o, n, len(es), ratio)
		}
	}
}

// TestPartitionCoversTable checks that partitioning a sealed table across N
// owners is exact: every seed resolves bit-identically at exactly its
// owner's partition and misses everywhere else, and the single-copy flags
// survive in every partition.
func TestPartitionCoversTable(t *testing.T) {
	const numFrags = 16
	es := randomEntries(11, numFrags, 200, 600, 21)
	cfg := ShardedConfig{K: 21, S: 64, Shards: 16}
	sx := buildSharded(t, cfg, es, numFrags, 3)
	sx.Seal()

	for _, count := range []int{1, 2, 4} {
		parts := make([]*Sharded, count)
		for id := range parts {
			p, err := sx.Partition(id, count)
			if err != nil {
				t.Fatalf("Partition(%d, %d): %v", id, count, err)
			}
			parts[id] = p
		}
		seen := map[kmer.Kmer]bool{}
		for _, e := range es {
			if seen[e.Seed] {
				continue
			}
			seen[e.Seed] = true
			want, ok := sx.Lookup(e.Seed)
			if !ok {
				t.Fatalf("seed missing from full table")
			}
			owner := OwnerOf(e.Seed, sx.Shards(), count)
			for id, p := range parts {
				got, ok := p.Lookup(e.Seed)
				if id == owner {
					if !ok {
						t.Fatalf("count=%d: owner %d misses its own seed", count, id)
					}
					if got.Count != want.Count || len(got.Locs) != len(want.Locs) {
						t.Fatalf("count=%d: owner %d result differs: %+v vs %+v", count, id, got, want)
					}
					for i := range got.Locs {
						if got.Locs[i] != want.Locs[i] {
							t.Fatalf("count=%d: owner %d loc %d differs", count, id, i)
						}
					}
				} else if ok {
					t.Fatalf("count=%d: non-owner %d answered for owner %d's seed", count, id, owner)
				}
			}
		}
		for id, p := range parts {
			for f := 0; f < numFrags; f++ {
				if p.SingleCopy(f) != sx.SingleCopy(f) {
					t.Fatalf("count=%d: partition %d single-copy flag %d differs", count, id, f)
				}
			}
		}
	}
}

// TestPartitionFingerprint checks the interop fingerprint: stable across
// partitions of one build, different across owner counts and across builds
// with different content shape.
func TestPartitionFingerprint(t *testing.T) {
	const numFrags = 8
	cfg := ShardedConfig{K: 21, S: 64, Shards: 16}
	es := randomEntries(3, numFrags, 100, 300, 21)
	sx := buildSharded(t, cfg, es, numFrags, 2)
	sx.Seal()

	fp3, err := sx.PartitionFingerprint(3)
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := sx.PartitionFingerprint(3); again != fp3 {
		t.Fatalf("fingerprint not deterministic: %d vs %d", fp3, again)
	}
	if fp4, _ := sx.PartitionFingerprint(4); fp4 == fp3 {
		t.Fatalf("fingerprint ignores owner count")
	}

	other := buildSharded(t, cfg, randomEntries(4, numFrags, 100, 300, 21), numFrags, 2)
	other.Seal()
	if ofp, _ := other.PartitionFingerprint(3); ofp == fp3 {
		t.Fatalf("fingerprint ignores table content shape")
	}

	if _, err := sx.PartitionFingerprint(0); err == nil {
		t.Fatalf("fingerprint accepted count 0")
	}
}

// TestPartitionErrors checks range and seal validation.
func TestPartitionErrors(t *testing.T) {
	const numFrags = 4
	cfg := ShardedConfig{K: 21, S: 64, Shards: 16}
	es := randomEntries(5, numFrags, 50, 100, 21)
	sx := buildSharded(t, cfg, es, numFrags, 1)

	if _, err := sx.Partition(0, 1); err == nil {
		t.Fatalf("Partition accepted an unsealed index")
	}
	sx.Seal()
	for _, c := range []struct{ id, count int }{{-1, 2}, {2, 2}, {0, 0}, {0, -3}} {
		if _, err := sx.Partition(c.id, c.count); err == nil {
			t.Fatalf("Partition(%d, %d) accepted out-of-range arguments", c.id, c.count)
		}
	}
}
