package dht

import (
	"unsafe"

	"github.com/lbl-repro/meraligner/internal/kmer"
)

// This file implements the sealed, read-only form of the sharded seed index:
// at Seal each shard's build structures (a Go map plus per-entry location
// slices) are compacted into an open-addressing flat table over one
// contiguous location arena. Lookups then cost one hash, a short linear
// probe over densely packed 32-byte slots, and a bounds-checked slice of the
// arena — no map probes, no per-entry pointer chasing, no slice headers
// scattered across the heap. The layout is the SNAP-style cache-friendly
// seed table; the contents (location lists, their order, and occurrence
// counts) are bit-identical to the pre-compaction buckets, which the parity
// tests assert directly.

// flatEntry is one occupied slot of the sealed table. n == 0 marks an empty
// slot: every present seed stores at least one location, even when the list
// was capped by MaxLocList.
type flatEntry struct {
	seed kmer.Kmer
	off  int32 // first location in the shard's arena
	n    int32 // stored locations (list length)
	cnt  int32 // total occurrences (>= n when the list was capped)
}

// flatShard is one partition of the sealed index: a power-of-two
// open-addressing slot array plus the shard's packed location arena.
type flatShard struct {
	shift uint // 64 - log2(len(slots)); slot of hash h is (h*fibMix)>>shift
	slots []flatEntry
	locs  []Loc
}

// fibMix redistributes the djb2 hash before taking the top bits for the
// slot index. The shard id already consumed h mod Shards, so raw low (or
// high) bits of h cluster within a shard; the Fibonacci multiply decorrelates
// the two uses of the one hash value.
const fibMix = 0x9E3779B97F4A7C15

// minFlatBits keeps even tiny shards at a sane table size.
const minFlatBits = 4

// buildFlat compacts one shard's buckets. Entries are placed in insertion
// order (the drain's sorted order), so the sealed layout is deterministic
// for a given table content. The order is reconstructed from the map's
// seed→index pairs (index IS insertion order), so the build phase carries
// no extra bookkeeping — the simulated Index shares buckets and never
// compacts.
func buildFlat(bt *buckets) flatShard {
	n := len(bt.e)
	totalLocs := 0
	for i := range bt.e {
		totalLocs += len(bt.e[i].locs)
	}
	keys := make([]kmer.Kmer, n)
	for seed, idx := range bt.m {
		keys[idx] = seed
	}
	bits := uint(minFlatBits)
	// Load factor <= 0.75: n <= 0.75 * 2^bits.
	for 4*n > 3*(1<<bits) {
		bits++
	}
	fs := flatShard{
		shift: 64 - bits,
		slots: make([]flatEntry, 1<<bits),
		locs:  make([]Loc, 0, totalLocs),
	}
	mask := 1<<bits - 1
	for idx, seed := range keys {
		ent := &bt.e[idx]
		off := int32(len(fs.locs))
		fs.locs = append(fs.locs, ent.locs...)
		i := int(seed.Hash() * fibMix >> fs.shift)
		for fs.slots[i].n != 0 {
			i = (i + 1) & mask
		}
		fs.slots[i] = flatEntry{seed: seed, off: off, n: int32(len(ent.locs)), cnt: ent.count}
	}
	return fs
}

// lookup probes the sealed shard. h must be s.Hash(), computed once by the
// caller (which also derived the shard id from it). The returned Locs slice
// is capacity-limited so a caller's append cannot clobber the neighbouring
// entry's locations in the shared arena.
func (fs *flatShard) lookup(s kmer.Kmer, h uint64) (LookupResult, bool) {
	if len(fs.slots) == 0 {
		return LookupResult{}, false
	}
	mask := len(fs.slots) - 1
	i := int(h * fibMix >> fs.shift)
	for {
		e := &fs.slots[i]
		if e.n == 0 {
			return LookupResult{}, false
		}
		if e.seed == s {
			end := e.off + e.n
			return LookupResult{Locs: fs.locs[e.off:end:end], Count: e.cnt}, true
		}
		i = (i + 1) & mask
	}
}

// Exact per-element sizes of the sealed layout, used by ResidentBytes.
const (
	flatEntryBytes = int64(unsafe.Sizeof(flatEntry{}))
	locBytes       = int64(unsafe.Sizeof(Loc{}))
)

// residentBytes is the exact footprint of this shard's sealed structures:
// the slot array plus the location arena (allocated at exact capacity).
func (fs *flatShard) residentBytes() int64 {
	return int64(len(fs.slots))*flatEntryBytes + int64(cap(fs.locs))*locBytes
}
