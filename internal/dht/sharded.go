package dht

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/lbl-repro/meraligner/internal/kmer"
)

// This file implements the shared-memory realization of the paper's
// seed-index construction (§III-A) for the threaded execution engine: the
// same two-stage aggregating-stores scheme as Index, but with real
// goroutines and real atomics instead of the simulated machine.
//
// Stage 1 (Add/Flush, concurrent): each worker stages seeds into S-entry
// per-shard buffers; a full buffer is shipped with ONE reservation on a
// global atomic cursor into a pre-sized arena — the shared-memory analogue
// of the UPC code's atomic_fetchadd on the destination stack pointer
// followed by an aggregate transfer. No locks are taken anywhere on the
// build path.
//
// Stage 2 (DrainShard, shard-parallel): after a barrier, each shard's
// segments are collected, sorted with the same comparator as Index.Drain,
// and inserted into the shard's private buckets by exactly one goroutine —
// lock-free local work, as in the paper. The sort makes the table contents
// (and therefore downstream alignments) byte-identical to the simulated
// index built from the same entries, regardless of worker count or
// scheduling.

// ShardedConfig parameterizes a concurrent build.
type ShardedConfig struct {
	K          int // seed length
	S          int // staging buffer size per (worker, shard); paper uses 1000
	MaxLocList int // cap on stored locations per seed; 0 = unlimited
	Shards     int // table partitions; 0 picks a default from the worker count
}

// segment records one shipped batch: arena[Off:Off+N] belongs to Shard.
type segment struct {
	Shard int32
	Off   int64
	N     int32
}

// Sharded is the threaded engine's in-memory seed index.
type Sharded struct {
	cfg ShardedConfig

	// Build state. arena is sized to the exact total seed count, segs to the
	// worst-case ship count, so atomic reservations can never overflow.
	arena  []SeedEntry
	cursor atomic.Int64 // next free arena slot
	segs   []segment
	segCur atomic.Int64 // next free segs slot

	// groupOnce buckets published segments by shard exactly once, at the
	// start of the drain phase, so each DrainShard touches only its own
	// segments instead of filtering the global list.
	groupOnce   sync.Once
	segsByShard [][]segment

	shards []buckets

	// flat holds the sealed, read-only form of each shard — built by Seal,
	// after which shards' build structures are released. Publication is
	// ordinary (non-atomic): Seal happens-before every concurrent Lookup,
	// because unsynchronized lookups are only legal on a sealed index.
	flat []flatShard

	// singleCopy[frag] is 1 while every seed of the fragment is uniquely
	// located in it; cleared with atomic stores during MarkShard.
	singleCopy   []int32
	numFragments int

	// sealed is set by Seal once construction completes; from then on the
	// table is immutable and safe for unsynchronized concurrent lookups.
	sealed atomic.Bool
}

// DefaultShards picks a shard count for a worker count: enough partitions
// that drain/mark parallelize well past the worker count, independent of it
// only in spirit — the table CONTENTS never depend on the shard count.
func DefaultShards(workers int) int {
	s := 4 * workers
	if s < 16 {
		s = 16
	}
	return s
}

// NewSharded allocates a concurrent index for exactly totalSeeds staged
// entries produced by at most workers concurrent builders.
func NewSharded(cfg ShardedConfig, numFragments, totalSeeds, workers int) (*Sharded, error) {
	if cfg.K <= 0 || cfg.K > kmer.MaxK {
		return nil, fmt.Errorf("dht: seed length %d out of range", cfg.K)
	}
	if totalSeeds < 0 || workers <= 0 {
		return nil, fmt.Errorf("dht: need totalSeeds >= 0 and workers > 0, got %d/%d", totalSeeds, workers)
	}
	if cfg.S <= 0 {
		cfg.S = 1000
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards(workers)
	}
	sx := &Sharded{
		cfg:   cfg,
		arena: make([]SeedEntry, totalSeeds),
		// Every builder ships ceil(staged/S) full buffers plus at most one
		// partial per shard at Flush: totalSeeds/S + workers*Shards bounds
		// the segment count.
		segs:         make([]segment, totalSeeds/cfg.S+workers*cfg.Shards),
		shards:       make([]buckets, cfg.Shards),
		singleCopy:   make([]int32, numFragments),
		numFragments: numFragments,
	}
	for i := range sx.shards {
		sx.shards[i].m = make(map[kmer.Kmer]int32)
	}
	for i := range sx.singleCopy {
		sx.singleCopy[i] = 1
	}
	return sx, nil
}

// K returns the seed length the index was built with.
func (sx *Sharded) K() int { return sx.cfg.K }

// Shards returns the number of table partitions (DrainShard/MarkShard ids).
func (sx *Sharded) Shards() int { return sx.cfg.Shards }

// ShardOf returns the partition owning a seed (djb2 hash, as in Index).
func (sx *Sharded) ShardOf(s kmer.Kmer) int {
	return int(s.Hash() % uint64(sx.cfg.Shards))
}

// ShardedBuilder stages one worker's seed insertions. Each concurrent
// worker must use its own builder; builders share only the atomic arena.
type ShardedBuilder struct {
	sx   *Sharded
	bufs [][]SeedEntry // per shard

	// Ships counts aggregate transfers issued (for tests and stats).
	Ships int64
}

// NewBuilder returns a staging builder for one worker goroutine.
func (sx *Sharded) NewBuilder() *ShardedBuilder {
	sx.mustBeMutable("NewBuilder")
	return &ShardedBuilder{sx: sx, bufs: make([][]SeedEntry, sx.cfg.Shards)}
}

// Add stages one seed occurrence, shipping the destination buffer when it
// reaches S entries.
func (b *ShardedBuilder) Add(e SeedEntry) {
	dst := b.sx.ShardOf(e.Seed)
	buf := append(b.bufs[dst], e)
	if len(buf) >= b.sx.cfg.S {
		b.ship(dst, buf)
		buf = buf[:0]
	}
	b.bufs[dst] = buf
}

// ship reserves a range of the arena with one atomic fetch-add, copies the
// batch in, and publishes the segment — the real counterpart of the
// simulated Builder.ship.
func (b *ShardedBuilder) ship(dst int, batch []SeedEntry) {
	if len(batch) == 0 {
		return
	}
	b.sx.mustBeMutable("ShardedBuilder ship")
	sx := b.sx
	n := int64(len(batch))
	off := sx.cursor.Add(n) - n
	if off+n > int64(len(sx.arena)) {
		panic(fmt.Sprintf("dht: sharded arena overflow (%d+%d > %d): totalSeeds undercounted",
			off, n, len(sx.arena)))
	}
	copy(sx.arena[off:off+n], batch)
	si := sx.segCur.Add(1) - 1
	sx.segs[si] = segment{Shard: int32(dst), Off: off, N: int32(n)}
	b.Ships++
}

// Flush ships every non-empty staging buffer; every worker must call it
// before the drain barrier.
func (b *ShardedBuilder) Flush() {
	for dst, buf := range b.bufs {
		if len(buf) > 0 {
			b.ship(dst, buf)
			b.bufs[dst] = buf[:0]
		}
	}
}

// groupSegments buckets the published segments by shard — one linear pass,
// shared by all DrainShard calls via groupOnce. All ships happen-before the
// drain barrier, so the segment array is immutable here.
func (sx *Sharded) groupSegments() {
	sx.segsByShard = make([][]segment, sx.cfg.Shards)
	for i := 0; i < int(sx.segCur.Load()); i++ {
		sg := sx.segs[i]
		sx.segsByShard[sg.Shard] = append(sx.segsByShard[sg.Shard], sg)
	}
}

// DrainShard collects shard s's segments from the arena, sorts them, and
// inserts them into the shard's buckets. Exactly one goroutine may drain a
// given shard; different shards drain concurrently with no coordination
// beyond the one-time segment grouping.
func (sx *Sharded) DrainShard(s int) {
	sx.mustBeMutable("DrainShard")
	sx.groupOnce.Do(sx.groupSegments)
	var es []SeedEntry
	for _, sg := range sx.segsByShard[s] {
		es = append(es, sx.arena[sg.Off:sg.Off+int64(sg.N)]...)
	}
	sortEntries(es)
	bt := &sx.shards[s]
	for _, e := range es {
		bt.insert(e, sx.cfg.MaxLocList)
	}
}

// ReleaseArena frees the staging arena after every shard has drained.
func (sx *Sharded) ReleaseArena() {
	sx.arena = nil
	sx.segs = nil
	sx.segsByShard = nil
}

// Seal marks construction complete: the staging arena is released, each
// shard's map+bucket structure is compacted into its flat open-addressing
// form (see flat.go), the build-time buckets are freed, and the table
// becomes immutable — any number of goroutines may Lookup without
// synchronization for the rest of the index's life. Further builder or
// drain activity is a bug; NewBuilder, builder ships (Add on a full
// buffer, Flush), DrainShard, and MarkShard panic after Seal. Seal is
// idempotent: once sealed, further calls are no-ops (the build buckets are
// already gone, so recompacting would wipe the table).
func (sx *Sharded) Seal() {
	if sx.sealed.Load() {
		return
	}
	sx.ReleaseArena()
	flat := make([]flatShard, len(sx.shards))
	var wg sync.WaitGroup
	for i := range sx.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			flat[i] = buildFlat(&sx.shards[i])
			sx.shards[i] = buckets{} // release the build map and entry slices
		}(i)
	}
	wg.Wait()
	sx.flat = flat
	sx.sealed.Store(true)
}

// Sealed reports whether Seal has been called.
func (sx *Sharded) Sealed() bool { return sx.sealed.Load() }

func (sx *Sharded) mustBeMutable(op string) {
	if sx.sealed.Load() {
		panic("dht: " + op + " on a sealed index")
	}
}

// ResidentBytes reports the steady-state memory footprint of the index. On
// a sealed index it is EXACT for the structures the index owns: the flat
// slot arrays, the location arenas (allocated at exact capacity), and the
// single-copy flags — the number a serving process should budget per
// resident index. Before Seal it falls back to an estimate of the build-time
// buckets (entries, location slices, map overhead, and the key list).
func (sx *Sharded) ResidentBytes() int64 {
	n := int64(len(sx.singleCopy)) * 4
	if sx.flat != nil {
		for i := range sx.flat {
			n += sx.flat[i].residentBytes()
		}
		return n
	}
	const (
		entryBytes = 8 + 3*8 + 8 // kmer + locs slice header + count/padding
		mapBytes   = 24          // rough per-entry map overhead (key+value+meta)
	)
	for i := range sx.shards {
		bt := &sx.shards[i]
		n += int64(len(bt.e)) * entryBytes
		n += int64(len(bt.m)) * mapBytes
		for j := range bt.e {
			n += int64(len(bt.e[j].locs)) * locBytes
		}
	}
	return n
}

// MarkShard implements §IV-A for shard s: every seed occurring more than
// once clears the single_copy flag of each fragment it appears in. Flag
// writes are idempotent atomic stores, so shards mark concurrently.
func (sx *Sharded) MarkShard(s int) {
	sx.mustBeMutable("MarkShard")
	bt := &sx.shards[s]
	for i := range bt.e {
		ent := &bt.e[i]
		if ent.count <= 1 {
			continue
		}
		for _, loc := range ent.locs {
			atomic.StoreInt32(&sx.singleCopy[loc.Frag], 0)
		}
	}
}

// Lookup probes the table. Safe for concurrent use once construction (all
// DrainShard/MarkShard calls) has completed; the table is immutable from
// then on. On a sealed index the probe hits the flat compact layout and the
// seed is hashed exactly once, shared between shard selection and the
// in-shard slot index.
func (sx *Sharded) Lookup(s kmer.Kmer) (LookupResult, bool) {
	h := s.Hash()
	shard := h % uint64(sx.cfg.Shards)
	if sx.flat != nil {
		return sx.flat[shard].lookup(s, h)
	}
	return sx.shards[shard].lookup(s)
}

// SingleCopy reports whether every seed of fragment frag is uniquely
// located in it. Valid after all MarkShard calls.
func (sx *Sharded) SingleCopy(frag int) bool {
	return atomic.LoadInt32(&sx.singleCopy[frag]) != 0
}

// SingleCopyCount returns how many fragments kept the flag.
func (sx *Sharded) SingleCopyCount() int {
	n := 0
	for i := range sx.singleCopy {
		if atomic.LoadInt32(&sx.singleCopy[i]) != 0 {
			n++
		}
	}
	return n
}

// Stats scans the whole table (host-side). It works on both forms: the
// build-time buckets before Seal and the flat compact layout after.
func (sx *Sharded) Stats() Stats {
	st := Stats{MinOwnerSeeds: -1, SingleCopyFrags: sx.SingleCopyCount(), Fragments: sx.numFragments}
	if sx.flat != nil {
		for i := range sx.flat {
			fs := &sx.flat[i]
			n := 0
			for j := range fs.slots {
				e := &fs.slots[j]
				if e.n == 0 {
					continue
				}
				n++
				st.TotalLocs += int(e.n)
				if int(e.n) > st.MaxListLen {
					st.MaxListLen = int(e.n)
				}
				if e.cnt > 1 {
					st.RepeatSeeds++
				}
			}
			st.DistinctSeeds += n
			if n > st.MaxOwnerSeeds {
				st.MaxOwnerSeeds = n
			}
			if st.MinOwnerSeeds < 0 || n < st.MinOwnerSeeds {
				st.MinOwnerSeeds = n
			}
		}
		if st.MinOwnerSeeds < 0 {
			st.MinOwnerSeeds = 0
		}
		return st
	}
	for i := range sx.shards {
		bt := &sx.shards[i]
		n := len(bt.e)
		st.DistinctSeeds += n
		if n > st.MaxOwnerSeeds {
			st.MaxOwnerSeeds = n
		}
		if st.MinOwnerSeeds < 0 || n < st.MinOwnerSeeds {
			st.MinOwnerSeeds = n
		}
		for j := range bt.e {
			st.TotalLocs += len(bt.e[j].locs)
			if len(bt.e[j].locs) > st.MaxListLen {
				st.MaxListLen = len(bt.e[j].locs)
			}
			if bt.e[j].count > 1 {
				st.RepeatSeeds++
			}
		}
	}
	if st.MinOwnerSeeds < 0 {
		st.MinOwnerSeeds = 0
	}
	return st
}
