package dht

import (
	"bytes"
	"testing"

	"github.com/lbl-repro/meraligner/internal/kmer"
)

// fuzzSeedBlob builds a small sealed index and serializes it: the valid
// snapshot every corpus mutation starts from.
func fuzzSeedBlob(f *testing.F) []byte {
	f.Helper()
	const k, numFrags = 21, 8
	es := randomEntries(7, numFrags, 12, 40, k)
	sx, err := NewSharded(ShardedConfig{K: k, S: 16, MaxLocList: 4, Shards: 4}, numFrags, len(es), 1)
	if err != nil {
		f.Fatal(err)
	}
	b := sx.NewBuilder()
	for _, e := range es {
		b.Add(e)
	}
	b.Flush()
	for s := 0; s < sx.Shards(); s++ {
		sx.DrainShard(s)
	}
	for s := 0; s < sx.Shards(); s++ {
		sx.MarkShard(s)
	}
	sx.Seal()
	var buf bytes.Buffer
	if _, err := sx.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzOpenMapped: arbitrary DHTS-section bytes must either parse into a
// servable table or fail with an error — never panic, never index out of
// bounds, and never hand back a table whose read paths can walk outside the
// blob. Input alignment is a documented precondition (merx maps sections
// 64-byte aligned), so the harness re-aligns the fuzzer's bytes first.
func FuzzOpenMapped(f *testing.F) {
	seed := fuzzSeedBlob(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:snapHeaderSize])
	f.Add([]byte{})
	// Flip one byte in each header field so the fuzzer starts next to the
	// validation boundaries (version, k, shards, counts, offsets).
	for off := 0; off < snapHeaderSize && off < len(seed); off += 4 {
		mut := append([]byte(nil), seed...)
		mut[off] ^= 0xff
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := OpenMapped(alignedCopy(data))
		if err != nil {
			return
		}
		// A blob that parses must be fully servable. Stats walks every slot
		// and every location list; lookups probe the hash path. Both must
		// stay in bounds for whatever the fuzzer got past validation.
		if !m.Sealed() {
			t.Fatal("OpenMapped returned an unsealed index")
		}
		st := m.Stats()
		if st.DistinctSeeds < 0 || st.TotalLocs < 0 {
			t.Fatalf("negative stats from mapped table: %+v", st)
		}
		if m.ResidentBytes() < 0 {
			t.Fatal("negative ResidentBytes from mapped table")
		}
		probes := []kmer.Kmer{
			{},
			{Lo: 0x5555555555555555},
			{Lo: ^uint64(0), Hi: ^uint64(0)},
		}
		if len(data) >= 16 {
			probes = append(probes, kmer.Kmer{
				Lo: le64(data[0:]),
				Hi: le64(data[8:]),
			})
		}
		for _, km := range probes {
			res, ok := m.Lookup(km)
			if !ok {
				continue
			}
			if int(res.Count) < len(res.Locs) {
				t.Fatalf("lookup count %d < %d returned locations", res.Count, len(res.Locs))
			}
			for _, loc := range res.Locs {
				_ = m.SingleCopy(int(loc.Frag))
			}
		}
	})
}

// le64 decodes little-endian without pulling encoding/binary into the fuzz
// hot loop's corpus-visible surface.
func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
