package dht

import (
	"math/rand"
	"testing"

	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/kmer"
	"github.com/lbl-repro/meraligner/internal/upc"
)

func testMach(threads int) upc.MachineConfig {
	cfg := upc.Edison(threads)
	cfg.Workers = 4
	return cfg
}

// buildFromFragments builds an index over the given fragments using the real
// phase structure: extract+stage, barrier, drain, barrier, mark.
func buildFromFragments(t testing.TB, mach upc.MachineConfig, cfg Config, frags []dna.Packed) (*Index, *upc.Machine) {
	if t != nil {
		t.Helper()
	}
	m := upc.MustNewMachine(mach)
	ix, err := New(mach, cfg, len(frags))
	if err != nil {
		if t != nil {
			t.Fatal(err)
		}
		panic(err)
	}
	m.RunPhase("stage", func(th *upc.Thread) {
		b := ix.NewBuilder(th)
		lo, hi := mach.PartitionRange(len(frags), th.ID)
		for f := lo; f < hi; f++ {
			for off, s := range kmer.Extract(frags[f], cfg.K, nil) {
				b.Add(SeedEntry{Seed: s, Loc: Loc{Frag: int32(f), Off: int32(off)}})
			}
		}
		b.Flush()
	})
	m.RunPhase("drain", func(th *upc.Thread) { ix.Drain(th) })
	m.RunPhase("mark", func(th *upc.Thread) { ix.MarkSingleCopy(th) })
	return ix, m
}

// oracle builds the expected seed->locations multimap with a plain Go map.
func oracle(frags []dna.Packed, k int) map[kmer.Kmer][]Loc {
	want := make(map[kmer.Kmer][]Loc)
	for f, frag := range frags {
		for off, s := range kmer.Extract(frag, k, nil) {
			want[s] = append(want[s], Loc{Frag: int32(f), Off: int32(off)})
		}
	}
	return want
}

func randFrags(seed int64, n, minLen, maxLen int) []dna.Packed {
	rng := rand.New(rand.NewSource(seed))
	frags := make([]dna.Packed, n)
	for i := range frags {
		frags[i] = dna.Random(rng, minLen+rng.Intn(maxLen-minLen+1))
	}
	return frags
}

func TestBuildMatchesOracleBothModes(t *testing.T) {
	frags := randFrags(1, 40, 60, 300)
	for _, mode := range []BuildMode{Aggregating, FineGrained} {
		cfg := Config{K: 21, Mode: mode, S: 64}
		ix, _ := buildFromFragments(t, testMach(48), cfg, frags)
		want := oracle(frags, 21)

		st := ix.Stats()
		if st.DistinctSeeds != len(want) {
			t.Fatalf("%v: distinct seeds = %d, want %d", mode, st.DistinctSeeds, len(want))
		}
		for s, locs := range want {
			res, ok := ix.LookupNoCharge(s)
			if !ok {
				t.Fatalf("%v: seed missing from index", mode)
			}
			if int(res.Count) != len(locs) {
				t.Fatalf("%v: count = %d, want %d", mode, res.Count, len(locs))
			}
			got := map[Loc]bool{}
			for _, l := range res.Locs {
				got[l] = true
			}
			for _, l := range locs {
				if !got[l] {
					t.Fatalf("%v: location %+v missing", mode, l)
				}
			}
		}
		if ix.PendingStackEntries() != 0 {
			t.Errorf("%v: %d entries left undrained", mode, ix.PendingStackEntries())
		}
	}
}

func TestModesProduceIdenticalTables(t *testing.T) {
	frags := randFrags(2, 30, 80, 200)
	agg, _ := buildFromFragments(t, testMach(24), Config{K: 19, Mode: Aggregating, S: 32}, frags)
	fine, _ := buildFromFragments(t, testMach(24), Config{K: 19, Mode: FineGrained}, frags)
	sa, sf := agg.Stats(), fine.Stats()
	if sa.DistinctSeeds != sf.DistinctSeeds || sa.TotalLocs != sf.TotalLocs || sa.RepeatSeeds != sf.RepeatSeeds {
		t.Errorf("mode disagreement: agg %+v vs fine %+v", sa, sf)
	}
}

func TestAggregatingReducesMessagesAndAtomics(t *testing.T) {
	frags := randFrags(3, 60, 100, 400)
	const S = 100
	_, mAgg := buildFromFragments(t, testMach(48), Config{K: 21, Mode: Aggregating, S: S}, frags)
	_, mFine := buildFromFragments(t, testMach(48), Config{K: 21, Mode: FineGrained}, frags)

	ca, cf := mAgg.TotalCounters(), mFine.TotalCounters()
	if ca.Atomics*2 >= cf.Atomics {
		t.Errorf("aggregation did not cut atomics: %d vs %d", ca.Atomics, cf.Atomics)
	}
	msgsAgg := ca.MsgsRemote + ca.MsgsNode
	msgsFine := cf.MsgsRemote + cf.MsgsNode
	if msgsAgg*2 >= msgsFine {
		t.Errorf("aggregation did not cut messages: %d vs %d", msgsAgg, msgsFine)
	}

	// And simulated construction time must drop substantially (Fig 8 shape).
	wallAgg := mAgg.TotalWall()
	wallFine := mFine.TotalWall()
	if wallFine/wallAgg < 2 {
		t.Errorf("aggregating stores speedup = %.2fx, want >= 2x", wallFine/wallAgg)
	}
}

func TestFlushShipsPartialBuffers(t *testing.T) {
	mach := testMach(8)
	m := upc.MustNewMachine(mach)
	ix, _ := New(mach, Config{K: 11, Mode: Aggregating, S: 1000000}, 1)
	frag := dna.Random(rand.New(rand.NewSource(4)), 500)
	m.RunPhase("stage", func(th *upc.Thread) {
		if th.ID != 0 {
			return
		}
		b := ix.NewBuilder(th)
		for off, s := range kmer.Extract(frag, 11, nil) {
			b.Add(SeedEntry{Seed: s, Loc: Loc{Frag: 0, Off: int32(off)}})
		}
		if b.Flushes != 0 {
			t.Errorf("premature flush with huge S")
		}
		b.Flush()
		if b.Flushes == 0 {
			t.Errorf("Flush() shipped nothing")
		}
	})
	m.RunPhase("drain", func(th *upc.Thread) { ix.Drain(th) })
	if got := ix.Stats().TotalLocs; got != 490 {
		t.Errorf("TotalLocs = %d, want 490", got)
	}
}

func TestSingleCopyFlags(t *testing.T) {
	// Fragment 0: all unique seeds. Fragment 1 and 2 share a seed.
	// Use distinct low-complexity-free sequences.
	f0 := dna.MustPack("ACGTTGCAACGGATCC")  // unique 8-mers
	shared := "GATTACAG"                    // 8-mer present in both f1 and f2
	f1 := dna.MustPack("TTTTAACC" + shared) // contains shared
	f2 := dna.MustPack(shared + "CCGGAATT") // contains shared
	frags := []dna.Packed{f0, f1, f2}
	ix, _ := buildFromFragments(t, testMach(8), Config{K: 8, Mode: Aggregating, S: 16}, frags)

	if !ix.SingleCopy(0) {
		t.Error("fragment 0 should keep single-copy flag")
	}
	if ix.SingleCopy(1) || ix.SingleCopy(2) {
		t.Error("fragments sharing a seed kept single-copy flag")
	}
	if got := ix.SingleCopyCount(); got != 1 {
		t.Errorf("SingleCopyCount = %d, want 1", got)
	}
}

func TestSingleCopyWithinFragmentRepeat(t *testing.T) {
	// A fragment whose own seed repeats internally must lose the flag.
	rep := dna.MustPack("ACGTACGTACGT") // 4-mer ACGT occurs at 0,4,8
	ix, _ := buildFromFragments(t, testMach(4), Config{K: 4, Mode: Aggregating, S: 8}, []dna.Packed{rep})
	if ix.SingleCopy(0) {
		t.Error("internally repetitive fragment kept single-copy flag")
	}
}

func TestMaxLocListCapsListButCounts(t *testing.T) {
	// One seed repeated 10 times across fragments; cap the list at 3.
	frag := dna.MustPack("AAAAAAAAAAAAA") // 13 bases, 4-mer AAAA x10
	mach := testMach(4)
	m := upc.MustNewMachine(mach)
	ix, _ := New(mach, Config{K: 4, Mode: Aggregating, S: 4, MaxLocList: 3}, 1)
	m.RunPhase("stage", func(th *upc.Thread) {
		if th.ID != 0 {
			return
		}
		b := ix.NewBuilder(th)
		for off, s := range kmer.Extract(frag, 4, nil) {
			b.Add(SeedEntry{Seed: s, Loc: Loc{Frag: 0, Off: int32(off)}})
		}
		b.Flush()
	})
	m.RunPhase("drain", func(th *upc.Thread) { ix.Drain(th) })
	res, ok := ix.LookupNoCharge(kmer.MustFromString("AAAA"))
	if !ok {
		t.Fatal("seed missing")
	}
	if len(res.Locs) != 3 {
		t.Errorf("capped list length = %d, want 3", len(res.Locs))
	}
	if res.Count != 10 {
		t.Errorf("count = %d, want 10", res.Count)
	}
}

func TestLookupChargesCommunication(t *testing.T) {
	frags := randFrags(5, 10, 100, 200)
	mach := testMach(48)
	ix, _ := buildFromFragments(t, testMach(48), Config{K: 15, Mode: Aggregating, S: 50}, frags)
	seeds := kmer.Extract(frags[0], 15, nil)

	m := upc.MustNewMachine(mach)
	stat := m.RunPhase("lookup", func(th *upc.Thread) {
		if th.ID != 0 {
			return
		}
		for _, s := range seeds {
			if _, ok := ix.Lookup(th, s); !ok {
				t.Errorf("indexed seed not found")
			}
		}
	})
	if stat.Counters.SeedLookups != int64(len(seeds)) {
		t.Errorf("SeedLookups = %d, want %d", stat.Counters.SeedLookups, len(seeds))
	}
	if stat.Counters.MsgsRemote == 0 {
		t.Error("no remote lookups charged — djb2 should spread owners off-node")
	}
	solo := upc.NewStandaloneThread(mach, 0)
	if _, ok := ix.Lookup(solo, kmer.Kmer{}); ok {
		// empty-Kmer lookup on a fresh thread: absent is fine, must not panic
		t.Log("empty seed unexpectedly present")
	}
}

func TestLookupMissingSeed(t *testing.T) {
	frags := randFrags(6, 5, 100, 150)
	ix, _ := buildFromFragments(t, testMach(8), Config{K: 31, Mode: Aggregating, S: 10}, frags)
	// A 31-mer of all A repeated is vanishingly unlikely in 750 random bases.
	if _, ok := ix.LookupNoCharge(kmer.MustFromString("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA")); ok {
		t.Skip("pathological random content; skip")
	}
}

func TestNewRejectsBadK(t *testing.T) {
	mach := testMach(4)
	if _, err := New(mach, Config{K: 0}, 1); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := New(mach, Config{K: 65}, 1); err == nil {
		t.Error("K=65 accepted")
	}
}

func TestOwnerDistribution(t *testing.T) {
	frags := randFrags(7, 50, 200, 400)
	ix, _ := buildFromFragments(t, testMach(48), Config{K: 21, Mode: Aggregating, S: 100}, frags)
	st := ix.Stats()
	if st.DistinctSeeds == 0 {
		t.Fatal("empty index")
	}
	mean := float64(st.DistinctSeeds) / 48
	if float64(st.MaxOwnerSeeds) > 2*mean {
		t.Errorf("max owner load %d vs mean %.0f — djb2 distribution too skewed", st.MaxOwnerSeeds, mean)
	}
}

func TestWireBytes(t *testing.T) {
	if WireBytes(51) != 13+9 {
		t.Errorf("WireBytes(51) = %d, want 22", WireBytes(51))
	}
	if WireBytes(19) != 5+9 {
		t.Errorf("WireBytes(19) = %d, want 14", WireBytes(19))
	}
}

func TestBuildModeString(t *testing.T) {
	if Aggregating.String() != "aggregating" || FineGrained.String() != "fine-grained" {
		t.Error("BuildMode.String broken")
	}
}

func BenchmarkBuildAggregating(b *testing.B) {
	frags := randFrags(8, 100, 500, 1000)
	mach := testMach(48)
	mach.Workers = 8
	for i := 0; i < b.N; i++ {
		m := upc.MustNewMachine(mach)
		ix, _ := New(mach, Config{K: 31, Mode: Aggregating, S: 1000}, len(frags))
		m.RunPhase("stage", func(th *upc.Thread) {
			bld := ix.NewBuilder(th)
			lo, hi := mach.PartitionRange(len(frags), th.ID)
			for f := lo; f < hi; f++ {
				for off, s := range kmer.Extract(frags[f], 31, nil) {
					bld.Add(SeedEntry{Seed: s, Loc: Loc{Frag: int32(f), Off: int32(off)}})
				}
			}
			bld.Flush()
		})
		m.RunPhase("drain", func(th *upc.Thread) { ix.Drain(th) })
	}
}

func BenchmarkLookup(b *testing.B) {
	frags := randFrags(9, 50, 500, 1000)
	ix, _ := buildFromFragments(nil, testMach(48), Config{K: 31, Mode: Aggregating, S: 1000}, frags)
	seeds := kmer.Extract(frags[0], 31, nil)
	th := upc.NewStandaloneThread(testMach(48), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(th, seeds[i%len(seeds)])
	}
}
