package dht

import (
	"math/rand"
	"reflect"
	"testing"
	"unsafe"

	"github.com/lbl-repro/meraligner/internal/kmer"
)

// sealedWorkload builds a sharded index from a randomized entry set and
// returns it along with probe seeds: every distinct present seed plus a set
// of absent ones.
func sealedWorkload(t *testing.T, seed int64, maxLoc int) (*Sharded, []kmer.Kmer, []kmer.Kmer) {
	t.Helper()
	const k, numFrags = 21, 60
	es := randomEntries(seed, numFrags, 40, 400, k)
	sx := buildSharded(t, ShardedConfig{K: k, S: 64, MaxLocList: maxLoc, Shards: 16}, es, numFrags, 3)

	present := map[kmer.Kmer]struct{}{}
	for _, e := range es {
		present[e.Seed] = struct{}{}
	}
	var hits []kmer.Kmer
	for s := range present {
		hits = append(hits, s)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	var misses []kmer.Kmer
	for len(misses) < 200 {
		s := randomKmer(rng, k)
		if _, ok := present[s]; !ok {
			misses = append(misses, s)
		}
	}
	return sx, hits, misses
}

// TestSealedLookupMatchesBuckets is the compaction parity oracle: for every
// present seed and a batch of absent ones, the sealed flat table must return
// exactly the LookupResult the pre-compaction buckets returned — same
// location lists in the same order, same occurrence counts, same misses.
func TestSealedLookupMatchesBuckets(t *testing.T) {
	for _, maxLoc := range []int{0, 3} {
		sx, hits, misses := sealedWorkload(t, 11, maxLoc)

		type want struct {
			locs  []Loc
			count int32
			ok    bool
		}
		expect := make(map[kmer.Kmer]want, len(hits)+len(misses))
		record := func(s kmer.Kmer) {
			res, ok := sx.Lookup(s)
			expect[s] = want{locs: append([]Loc(nil), res.Locs...), count: res.Count, ok: ok}
		}
		for _, s := range hits {
			record(s)
		}
		for _, s := range misses {
			record(s)
		}

		sx.Seal()
		for s, w := range expect {
			res, ok := sx.Lookup(s)
			if ok != w.ok {
				t.Fatalf("maxLoc=%d seed %v: sealed ok=%v, buckets ok=%v", maxLoc, s, ok, w.ok)
			}
			if res.Count != w.count {
				t.Fatalf("maxLoc=%d seed %v: sealed count=%d, buckets count=%d", maxLoc, s, res.Count, w.count)
			}
			if len(res.Locs) != len(w.locs) || (len(w.locs) > 0 && !reflect.DeepEqual(res.Locs, w.locs)) {
				t.Fatalf("maxLoc=%d seed %v: sealed locs %v, buckets locs %v", maxLoc, s, res.Locs, w.locs)
			}
		}
	}
}

// TestSealedLocsCapacityLimited: an append on a returned location list must
// not clobber the neighbouring entry in the shared arena.
func TestSealedLocsCapacityLimited(t *testing.T) {
	sx, hits, _ := sealedWorkload(t, 13, 0)
	sx.Seal()
	for _, s := range hits[:10] {
		res, ok := sx.Lookup(s)
		if !ok {
			t.Fatal("present seed missing after seal")
		}
		if cap(res.Locs) != len(res.Locs) {
			t.Fatalf("sealed Locs cap %d > len %d: appends could overwrite the arena",
				cap(res.Locs), len(res.Locs))
		}
	}
}

// TestSealedStatsMatchBuckets: Stats computed from the flat layout must
// equal Stats computed from the build-time buckets.
func TestSealedStatsMatchBuckets(t *testing.T) {
	sx, _, _ := sealedWorkload(t, 17, 0)
	before := sx.Stats()
	sx.Seal()
	after := sx.Stats()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("stats diverged across Seal:\nbuckets: %+v\nflat:    %+v", before, after)
	}
}

// TestResidentBytesExact: the sealed ResidentBytes must equal, byte for
// byte, what the flat structures actually hold (slot arrays at their
// allocated length, arenas at capacity, the single-copy flag array).
func TestResidentBytesExact(t *testing.T) {
	for _, maxLoc := range []int{0, 5} {
		sx, _, _ := sealedWorkload(t, 19, maxLoc)
		sx.Seal()

		var want int64
		for i := range sx.flat {
			fs := &sx.flat[i]
			want += int64(len(fs.slots)) * int64(unsafe.Sizeof(flatEntry{}))
			want += int64(cap(fs.locs)) * int64(unsafe.Sizeof(Loc{}))
		}
		want += int64(len(sx.singleCopy)) * int64(unsafe.Sizeof(int32(0)))

		if got := sx.ResidentBytes(); got != want {
			t.Fatalf("maxLoc=%d: ResidentBytes=%d, structures hold %d", maxLoc, got, want)
		}

		// Sanity-bound the number against the content: it must cover at
		// least the packed payload (slots for every distinct seed + every
		// stored location) and, with a <= 0.75 load factor plus the power-of-
		// two rounding, at most ~8x the minimal slot bytes plus the arena.
		st := sx.Stats()
		minBytes := int64(st.DistinctSeeds)*int64(unsafe.Sizeof(flatEntry{})) +
			int64(st.TotalLocs)*int64(unsafe.Sizeof(Loc{}))
		if got := sx.ResidentBytes(); got < minBytes || got > 8*minBytes+int64(len(sx.singleCopy)*4)+int64(len(sx.flat))*(1<<minFlatBits)*int64(unsafe.Sizeof(flatEntry{})) {
			t.Fatalf("maxLoc=%d: ResidentBytes=%d implausible for payload %d", maxLoc, got, minBytes)
		}
	}
}

// TestSealIdempotent: a second Seal must be a no-op — recompacting the
// already-released build buckets would wipe the table.
func TestSealIdempotent(t *testing.T) {
	sx, hits, _ := sealedWorkload(t, 23, 0)
	sx.Seal()
	before := sx.Stats()
	sx.Seal()
	if after := sx.Stats(); !reflect.DeepEqual(before, after) {
		t.Fatalf("double Seal changed the table:\nfirst:  %+v\nsecond: %+v", before, after)
	}
	if _, ok := sx.Lookup(hits[0]); !ok {
		t.Fatal("present seed lost after double Seal")
	}
}

// TestSealedEmptyShards: an index with no entries (or with empty shards)
// must seal and answer lookups with clean misses.
func TestSealedEmptyShards(t *testing.T) {
	sx, err := NewSharded(ShardedConfig{K: 21, Shards: 8}, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < sx.Shards(); s++ {
		sx.DrainShard(s)
	}
	sx.Seal()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		if _, ok := sx.Lookup(randomKmer(rng, 21)); ok {
			t.Fatal("lookup hit in an empty sealed index")
		}
	}
	if st := sx.Stats(); st.DistinctSeeds != 0 || st.TotalLocs != 0 {
		t.Fatalf("empty sealed index stats: %+v", st)
	}
}

// BenchmarkSealedLookup compares the sealed flat-table probe against the
// build-time map probe on the same content and probe mix (90% hits).
func BenchmarkSealedLookup(b *testing.B) {
	const k, numFrags = 31, 80
	build := func() (*Sharded, []kmer.Kmer) {
		rng := rand.New(rand.NewSource(5))
		pool := make([]kmer.Kmer, 50_000)
		for i := range pool {
			pool[i] = randomKmer(rng, k)
		}
		es := make([]SeedEntry, 0, 120_000)
		for i := 0; i < 120_000; i++ {
			es = append(es, SeedEntry{
				Seed: pool[rng.Intn(len(pool))],
				Loc:  Loc{Frag: int32(i % numFrags), Off: int32(i), RC: i%2 == 0},
			})
		}
		sx, err := NewSharded(ShardedConfig{K: k, S: 1000, Shards: 16}, numFrags, len(es), 1)
		if err != nil {
			b.Fatal(err)
		}
		bd := sx.NewBuilder()
		for _, e := range es {
			bd.Add(e)
		}
		bd.Flush()
		for s := 0; s < sx.Shards(); s++ {
			sx.DrainShard(s)
		}
		probes := make([]kmer.Kmer, 4096)
		for i := range probes {
			if rng.Intn(10) == 0 {
				probes[i] = randomKmer(rng, k) // likely miss
			} else {
				probes[i] = pool[rng.Intn(len(pool))]
			}
		}
		return sx, probes
	}

	run := func(b *testing.B, sx *Sharded, probes []kmer.Kmer) {
		var locs int
		for i := 0; i < b.N; i++ {
			res, _ := sx.Lookup(probes[i%len(probes)])
			locs += len(res.Locs)
		}
		_ = locs
	}

	sxMap, probes := build()
	b.Run("map", func(b *testing.B) { run(b, sxMap, probes) })
	sxFlat, _ := build()
	sxFlat.Seal()
	b.Run("flat", func(b *testing.B) { run(b, sxFlat, probes) })
}
