package dht

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
	"unsafe"
)

// alignedCopy copies b into a fresh 8-byte-aligned buffer, the alignment
// OpenMapped's struct views need (a .merx mapping provides 64).
func alignedCopy(b []byte) []byte {
	words := make([]uint64, (len(b)+7)/8+1) // +1 so &words[0] exists even for empty input
	out := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(b))
	copy(out, b)
	return out
}

// snapshotRoundTrip serializes a sealed index and reopens it mapped.
func snapshotRoundTrip(t *testing.T, sx *Sharded) *Sharded {
	t.Helper()
	var buf bytes.Buffer
	n, err := sx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	m, err := OpenMapped(alignedCopy(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSnapshotRoundTrip: a mapped index must be indistinguishable from the
// sealed index it was serialized from — same lookups (lists, order, and
// counts), same single-copy flags, same stats, same exact resident size.
func TestSnapshotRoundTrip(t *testing.T) {
	const k, numFrags = 21, 40
	es := randomEntries(11, numFrags, 50, 300, k)
	for _, maxLoc := range []int{0, 3} {
		sx := buildSharded(t, ShardedConfig{K: k, S: 16, MaxLocList: maxLoc, Shards: 8}, es, numFrags, 4)
		sx.Seal()
		m := snapshotRoundTrip(t, sx)

		if m.K() != sx.K() || m.Shards() != sx.Shards() || !m.Sealed() {
			t.Fatalf("mapped index K=%d shards=%d sealed=%v, want K=%d shards=%d sealed", m.K(), m.Shards(), m.Sealed(), sx.K(), sx.Shards())
		}
		for _, e := range es {
			want, wok := sx.Lookup(e.Seed)
			got, gok := m.Lookup(e.Seed)
			if wok != gok || want.Count != got.Count || !reflect.DeepEqual(want.Locs, got.Locs) {
				t.Fatalf("maxLoc=%d seed %v: mapped lookup %+v/%v, want %+v/%v", maxLoc, e.Seed, got, gok, want, wok)
			}
		}
		for f := 0; f < numFrags; f++ {
			if m.SingleCopy(f) != sx.SingleCopy(f) {
				t.Fatalf("fragment %d: mapped SingleCopy %v, want %v", f, m.SingleCopy(f), sx.SingleCopy(f))
			}
		}
		if got, want := m.Stats(), sx.Stats(); got != want {
			t.Errorf("mapped stats %+v, want %+v", got, want)
		}
		if got, want := m.ResidentBytes(), sx.ResidentBytes(); got != want {
			t.Errorf("mapped ResidentBytes %d, want %d", got, want)
		}
	}
}

// TestSnapshotMappedIsImmutable: builder and drain operations must panic on
// a mapped index exactly as they do on a sealed one.
func TestSnapshotMappedIsImmutable(t *testing.T) {
	const k, numFrags = 21, 10
	es := randomEntries(3, numFrags, 20, 100, k)
	sx := buildSharded(t, ShardedConfig{K: k, S: 16, Shards: 4}, es, numFrags, 2)
	sx.Seal()
	m := snapshotRoundTrip(t, sx)
	mustPanic(t, "NewBuilder", func() { m.NewBuilder() })
	mustPanic(t, "DrainShard", func() { m.DrainShard(0) })
	mustPanic(t, "MarkShard", func() { m.MarkShard(0) })
}

func mustPanic(t *testing.T, op string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s on a mapped index did not panic", op)
		}
	}()
	fn()
}

// TestWriteToRequiresSealed: the build-time bucket form is never
// serialized.
func TestWriteToRequiresSealed(t *testing.T) {
	const k, numFrags = 21, 10
	es := randomEntries(5, numFrags, 20, 100, k)
	sx := buildSharded(t, ShardedConfig{K: k, S: 16, Shards: 4}, es, numFrags, 2)
	if _, err := sx.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTo on an unsealed index succeeded")
	}
}

// TestOpenMappedRejectsDamage: a structurally damaged blob must error (with
// a message naming what failed), never panic. The checksummed container
// normally catches bit rot before OpenMapped runs; these are the
// format-drift defenses.
func TestOpenMappedRejectsDamage(t *testing.T) {
	const k, numFrags = 21, 10
	es := randomEntries(9, numFrags, 20, 100, k)
	sx := buildSharded(t, ShardedConfig{K: k, S: 16, Shards: 4}, es, numFrags, 2)
	sx.Seal()
	var buf bytes.Buffer
	if _, err := sx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name   string
		mangle func([]byte) []byte
		want   string // substring of the error
	}{
		{"empty", func(b []byte) []byte { return nil }, "smaller than"},
		{"truncated header", func(b []byte) []byte { return b[:32] }, "smaller than"},
		{"truncated body", func(b []byte) []byte { return b[:len(b)/2] }, ""},
		{"bad version", func(b []byte) []byte { b[0] = 99; return b }, "version"},
		{"bad K", func(b []byte) []byte { b[4] = 0xFF; b[5] = 0xFF; return b }, "seed length"},
		{"bad shards", func(b []byte) []byte { b[8], b[9], b[10], b[11] = 0xFF, 0xFF, 0xFF, 0x7F; return b }, "shard count"},
	}
	for _, tc := range cases {
		blob := tc.mangle(alignedCopy(good))
		m, err := OpenMapped(blob)
		if err == nil {
			t.Fatalf("%s: OpenMapped succeeded (%d shards)", tc.name, m.Shards())
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestOpenMappedRejectsFullTable: a crafted snapshot whose slot table has
// no empty slot must be rejected — lookup's linear probe terminates only on
// an empty slot or a match, so accepting it would let a lookup of an absent
// seed spin forever.
func TestOpenMappedRejectsFullTable(t *testing.T) {
	const k, numFrags = 21, 10
	es := randomEntries(13, numFrags, 40, 100, k)
	sx := buildSharded(t, ShardedConfig{K: k, S: 16, Shards: 2}, es, numFrags, 2)
	sx.Seal()
	var buf bytes.Buffer
	if _, err := sx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	blob := alignedCopy(buf.Bytes())

	// Mark every empty slot of every shard occupied (n=1, off=0); each
	// shard stores at least one location here, so the per-slot arena range
	// check still passes and only the occupancy check can catch it.
	dirOff := binary.LittleEndian.Uint64(blob[32:])
	for i := 0; i < sx.Shards(); i++ {
		e := blob[dirOff+uint64(i)*snapDirEntry:]
		slotsLen := binary.LittleEndian.Uint64(e[8:])
		slotsOff := binary.LittleEndian.Uint64(e[16:])
		if binary.LittleEndian.Uint64(e[24:]) == 0 {
			t.Fatalf("shard %d stores no locations; pick a denser test workload", i)
		}
		for j := uint64(0); j < slotsLen; j++ {
			slot := blob[slotsOff+j*FlatEntryWireBytes:]
			if binary.LittleEndian.Uint32(slot[20:]) == 0 {
				binary.LittleEndian.PutUint32(slot[16:], 0) // off
				binary.LittleEndian.PutUint32(slot[20:], 1) // n
				binary.LittleEndian.PutUint32(slot[24:], 1) // cnt
			}
		}
	}
	if _, err := OpenMapped(blob); err == nil || !strings.Contains(err.Error(), "no empty slot") {
		t.Fatalf("full slot table: got %v, want a 'no empty slot' rejection", err)
	}
}
