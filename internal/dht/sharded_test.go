package dht

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/kmer"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// randomEntries builds a deterministic entry set with repeats: numFrags
// fragments each contributing seedsPer seeds drawn from a pool small enough
// that collisions (repeat seeds) occur.
func randomEntries(seed int64, numFrags, seedsPer, pool, k int) []SeedEntry {
	rng := rand.New(rand.NewSource(seed))
	poolSeeds := make([]kmer.Kmer, pool)
	for i := range poolSeeds {
		poolSeeds[i] = randomKmer(rng, k)
	}
	var es []SeedEntry
	for f := 0; f < numFrags; f++ {
		for s := 0; s < seedsPer; s++ {
			es = append(es, SeedEntry{
				Seed: poolSeeds[rng.Intn(pool)],
				Loc:  Loc{Frag: int32(f), Off: int32(s), RC: rng.Intn(2) == 1},
			})
		}
	}
	return es
}

func randomKmer(rng *rand.Rand, k int) kmer.Kmer {
	codes := make([]byte, k)
	for i := range codes {
		codes[i] = byte(rng.Intn(4))
	}
	return kmer.FromPacked(dna.FromCodes(codes), 0, k)
}

// buildSharded stages entries through `workers` concurrent builders (each
// taking an interleaved slice), then drains and marks every shard.
func buildSharded(t *testing.T, cfg ShardedConfig, es []SeedEntry, numFrags, workers int) *Sharded {
	t.Helper()
	sx, err := NewSharded(cfg, numFrags, len(es), workers)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := sx.NewBuilder()
			for i := w; i < len(es); i += workers {
				b.Add(es[i])
			}
			b.Flush()
		}(w)
	}
	wg.Wait()
	for s := 0; s < sx.Shards(); s++ {
		sx.DrainShard(s)
	}
	for s := 0; s < sx.Shards(); s++ {
		sx.MarkShard(s)
	}
	return sx
}

// buildSim builds the simulated Aggregating index from the same entries on
// a single simulated thread.
func buildSim(t *testing.T, cfg Config, es []SeedEntry, numFrags int) *Index {
	t.Helper()
	mach := upc.Edison(1)
	mach.PPN = 1
	ix, err := New(mach, cfg, numFrags)
	if err != nil {
		t.Fatal(err)
	}
	th := upc.NewStandaloneThread(mach, 0)
	b := ix.NewBuilder(th)
	for _, e := range es {
		b.Add(e)
	}
	b.Flush()
	ix.Drain(th)
	ix.MarkSingleCopy(th)
	return ix
}

// The sharded index must agree with the simulated index entry for entry:
// same location lists (same order), same counts, same single-copy flags —
// this is what makes the two engines produce identical alignments.
func TestShardedMatchesSimulatedIndex(t *testing.T) {
	const k, numFrags = 21, 40
	es := randomEntries(7, numFrags, 50, 300, k)
	for _, maxLoc := range []int{0, 3} {
		sx := buildSharded(t, ShardedConfig{K: k, S: 16, MaxLocList: maxLoc, Shards: 8}, es, numFrags, 4)
		ix := buildSim(t, Config{K: k, Mode: Aggregating, S: 16, MaxLocList: maxLoc}, es, numFrags)

		seen := map[kmer.Kmer]bool{}
		for _, e := range es {
			if seen[e.Seed] {
				continue
			}
			seen[e.Seed] = true
			sr, sok := sx.Lookup(e.Seed)
			ir, iok := ix.LookupNoCharge(e.Seed)
			if sok != iok {
				t.Fatalf("maxLoc=%d: presence disagrees for %v", maxLoc, e.Seed)
			}
			if sr.Count != ir.Count {
				t.Fatalf("maxLoc=%d: count %d != %d for %v", maxLoc, sr.Count, ir.Count, e.Seed)
			}
			if !reflect.DeepEqual(sr.Locs, ir.Locs) {
				t.Fatalf("maxLoc=%d: loc lists differ for %v:\n%v\n%v", maxLoc, e.Seed, sr.Locs, ir.Locs)
			}
		}
		for f := 0; f < numFrags; f++ {
			if sx.SingleCopy(f) != ix.SingleCopy(f) {
				t.Fatalf("maxLoc=%d: single-copy flag disagrees at frag %d", maxLoc, f)
			}
		}
		ss, is := sx.Stats(), ix.Stats()
		if ss.DistinctSeeds != is.DistinctSeeds || ss.TotalLocs != is.TotalLocs ||
			ss.RepeatSeeds != is.RepeatSeeds || ss.SingleCopyFrags != is.SingleCopyFrags {
			t.Fatalf("maxLoc=%d: stats differ:\n%+v\n%+v", maxLoc, ss, is)
		}
	}
}

// Table contents must not depend on how many workers staged the entries or
// on the shard count.
func TestShardedContentIndependentOfWorkersAndShards(t *testing.T) {
	const k, numFrags = 19, 30
	es := randomEntries(11, numFrags, 40, 200, k)
	ref := buildSharded(t, ShardedConfig{K: k, S: 8, Shards: 4}, es, numFrags, 1)
	for _, workers := range []int{2, 7} {
		for _, shards := range []int{4, 13} {
			got := buildSharded(t, ShardedConfig{K: k, S: 8, Shards: shards}, es, numFrags, workers)
			seen := map[kmer.Kmer]bool{}
			for _, e := range es {
				if seen[e.Seed] {
					continue
				}
				seen[e.Seed] = true
				rr, _ := ref.Lookup(e.Seed)
				gr, _ := got.Lookup(e.Seed)
				if rr.Count != gr.Count || !reflect.DeepEqual(rr.Locs, gr.Locs) {
					t.Fatalf("workers=%d shards=%d: table differs at %v", workers, shards, e.Seed)
				}
			}
		}
	}
}

// The arena and segment bounds must hold exactly when every staged batch is
// a partial flush (worst case for the segment count bound).
func TestShardedSegmentBoundPartialFlushes(t *testing.T) {
	const k = 15
	es := randomEntries(3, 10, 7, 50, k)
	// S much larger than per-shard staging: all ships happen at Flush.
	sx := buildSharded(t, ShardedConfig{K: k, S: 1 << 20, Shards: 32}, es, 10, 8)
	if got := sx.Stats().TotalLocs; got != len(es) {
		t.Fatalf("TotalLocs = %d, want %d", got, len(es))
	}
}

func TestShardedConfigValidation(t *testing.T) {
	if _, err := NewSharded(ShardedConfig{K: 0}, 1, 1, 1); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := NewSharded(ShardedConfig{K: 21}, 1, 1, 0); err == nil {
		t.Error("workers=0 accepted")
	}
	if _, err := NewSharded(ShardedConfig{K: 21}, 0, 0, 1); err != nil {
		t.Errorf("empty index rejected: %v", err)
	}
}

// Concurrent Lookup/SingleCopy after construction must be race-free (run
// under -race in CI's race job).
func TestShardedConcurrentLookup(t *testing.T) {
	const k, numFrags = 21, 20
	es := randomEntries(5, numFrags, 30, 100, k)
	sx := buildSharded(t, ShardedConfig{K: k, S: 16, Shards: 8}, es, numFrags, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(es); i += 8 {
				if _, ok := sx.Lookup(es[i].Seed); !ok {
					t.Errorf("staged seed missing: %v", es[i].Seed)
					return
				}
				sx.SingleCopy(int(es[i].Loc.Frag))
			}
		}(w)
	}
	wg.Wait()
}
